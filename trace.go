package aquago

import "aquago/internal/phy"

// Stage identifies one step of the adaptive packet exchange; see the
// Stage* constants. Stages fire in protocol order and a failed stage
// suppresses the ones after it.
type Stage = phy.Stage

// The protocol stages, in exchange order.
const (
	StagePreamble = phy.StagePreamble
	StageSNR      = phy.StageSNR
	StageBand     = phy.StageBand
	StageFeedback = phy.StageFeedback
	StageData     = phy.StageData
	StageACK      = phy.StageACK
)

// StageEvent is one per-stage observation: which stage, at what
// virtual time, whether it succeeded, and the stage's diagnostics
// (detection metric, per-subcarrier SNR, band, bit errors).
type StageEvent = phy.StageEvent

// Trace observes protocol stages as they execute. Both telemetry and
// tests consume the same hook: install one on a Session (SetTrace), a
// Node (WithNodeTrace) or a whole Network (WithNetworkTrace).
//
// Callbacks run synchronously inside the exchange, so they must
// return quickly and must not call back into the session, node or
// network. A network-wide trace is additionally serialized by the
// network (exchanges on non-interfering pairs execute in parallel,
// but OnStage never runs concurrently with itself). A per-node trace
// is serialized per node; sharing one Trace value across several
// WithNodeTrace nodes requires its OnStage to be safe for concurrent
// use.
type Trace interface {
	OnStage(StageEvent)
}

// TraceFunc adapts a plain function to the Trace interface.
type TraceFunc func(StageEvent)

// OnStage implements Trace.
func (f TraceFunc) OnStage(ev StageEvent) { f(ev) }

// stageHook converts a Trace into the internal callback form; a nil
// trace yields a nil hook.
func stageHook(t Trace) func(StageEvent) {
	if t == nil {
		return nil
	}
	return t.OnStage
}
