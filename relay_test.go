package aquago_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"aquago"
)

// relayLineSpacingM and relayCSRangeM shape the relay test topology:
// adjacent nodes are audible (and decode comfortably), skip-one
// neighbors are not, so every multi-node line *must* relay.
const (
	relayLineSpacingM = 25.0
	relayCSRangeM     = 30.0
)

// buildRelayLine joins hops+1 nodes on the X axis, spacing apart,
// clocks pinned to zero for deterministic timelines.
func buildRelayLine(t *testing.T, hops int, opts ...aquago.NetworkOption) (*aquago.Network, []*aquago.Node) {
	t.Helper()
	net, err := aquago.NewNetwork(aquago.Bridge,
		append([]aquago.NetworkOption{
			aquago.WithNetworkSeed(3),
			aquago.WithCSRange(relayCSRangeM),
		}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*aquago.Node, hops+1)
	for i := range nodes {
		nd, err := net.Join(aquago.DeviceID(i),
			aquago.Position{X: float64(i) * relayLineSpacingM, Z: 1},
			aquago.WithNodeClock(0))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	return net, nodes
}

// relayTrace records stage events with their relay context.
type relayTrace struct {
	mu     sync.Mutex
	events []aquago.StageEvent
}

func (rt *relayTrace) OnStage(ev aquago.StageEvent) {
	rt.mu.Lock()
	rt.events = append(rt.events, ev)
	rt.mu.Unlock()
}

// checkHopOrder asserts the trace walked the transfer in causal
// order: packets nondecreasing, and within one packet hops strictly
// walking 0, 1, ..., pathHops-1 (each hop seen, none skipped).
func checkHopOrder(t *testing.T, events []aquago.StageEvent, pathHops, pkts int) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("no stage events traced")
	}
	lastPkt, lastHop := 0, -1
	hopsSeen := map[[2]int]bool{}
	for i, ev := range events {
		if ev.PathHops != pathHops {
			t.Fatalf("event %d: PathHops = %d, want %d (%+v)", i, ev.PathHops, pathHops, ev)
		}
		if ev.BulkPkt < lastPkt {
			t.Fatalf("event %d: packet %d after packet %d", i, ev.BulkPkt, lastPkt)
		}
		if ev.BulkPkt > lastPkt {
			lastPkt, lastHop = ev.BulkPkt, -1
		}
		if ev.Hop < lastHop {
			t.Fatalf("event %d: hop %d after hop %d inside packet %d", i, ev.Hop, lastHop, lastPkt)
		}
		lastHop = ev.Hop
		hopsSeen[[2]int{ev.BulkPkt, ev.Hop}] = true
	}
	for p := 0; p < pkts; p++ {
		for h := 0; h < pathHops; h++ {
			if !hopsSeen[[2]int{p, h}] {
				t.Fatalf("packet %d hop %d emitted no stage events", p, h)
			}
		}
	}
}

// TestRelayScenarioMatrix is the end-to-end matrix: {2,3,5}-hop lines
// and a 3x3 grid, bulk payloads conserved byte-for-byte end to end,
// per-hop stage events in causal order, and the route pinned to the
// expected hop count.
func TestRelayScenarioMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full adaptive exchanges per hop")
	}
	payload := []byte("dive relay payload!") // 19 bytes -> 10 packets, odd tail
	for _, hops := range []int{2, 3, 5} {
		t.Run(map[int]string{2: "line-2hop", 3: "line-3hop", 5: "line-5hop"}[hops], func(t *testing.T) {
			trace := &relayTrace{}
			net, nodes := buildRelayLine(t, hops, aquago.WithNetworkTrace(trace))
			dst := aquago.DeviceID(hops)
			path, err := net.Route(0, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(path)-1 != hops {
				t.Fatalf("route %v has %d hops, want %d", path, len(path)-1, hops)
			}
			res, err := nodes[0].SendBulk(context.Background(), dst, payload)
			if err != nil {
				t.Fatalf("bulk transfer: %v (result %+v)", err, res)
			}
			if !bytes.Equal(res.Received, payload) {
				t.Fatalf("payload not conserved end to end:\nsent     %q\nreceived %q", payload, res.Received)
			}
			wantPkts := (len(payload) + 1) / 2
			if res.Packets != wantPkts || res.DeliveredPackets != wantPkts || res.DeliveredBytes != len(payload) {
				t.Fatalf("delivery accounting wrong: %+v (want %d packets, %d bytes)", res, wantPkts, len(payload))
			}
			if len(res.Bands) != wantPkts {
				t.Fatalf("per-packet band trace has %d entries, want %d", len(res.Bands), wantPkts)
			}
			if res.EndS <= res.StartS {
				t.Fatalf("transfer window degenerate: start %g, end %g", res.StartS, res.EndS)
			}
			if !reflect.DeepEqual(res.Path, path) {
				t.Fatalf("bulk walked %v, routed %v", res.Path, path)
			}
			checkHopOrder(t, trace.events, hops, wantPkts)
		})
	}

	t.Run("grid-3x3", func(t *testing.T) {
		// Corner to corner on a 3x3 grid: orthogonal neighbors audible,
		// diagonals (35.4 m) not, so the min-hop route has 4 hops.
		net, err := aquago.NewNetwork(aquago.Bridge,
			aquago.WithNetworkSeed(3), aquago.WithCSRange(relayCSRangeM))
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				if _, err := net.Join(aquago.DeviceID(3*r+c), aquago.Position{
					X: float64(c) * relayLineSpacingM,
					Y: float64(r) * relayLineSpacingM,
					Z: 1,
				}, aquago.WithNodeClock(0)); err != nil {
					t.Fatal(err)
				}
			}
		}
		path, err := net.Route(0, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(path)-1 != 4 {
			t.Fatalf("grid corner-to-corner route %v has %d hops, want 4", path, len(path)-1)
		}
		okMsg, _ := aquago.LookupMessage("OK?")
		res, err := net.SendVia(context.Background(), path, okMsg.ID)
		if err != nil {
			t.Fatalf("grid relay: %v (%+v)", err, res)
		}
		if len(res.Hops) != 4 || res.DeliveredS <= 0 {
			t.Fatalf("grid relay result wrong: %+v", res)
		}
		for h, hr := range res.Hops {
			if !hr.Delivered {
				t.Fatalf("grid hop %d not delivered: %+v", h, hr)
			}
		}
	})
}

// TestRelayBulkWaveform3Hop is the acceptance scenario: a 3-hop relay
// must deliver a bulk payload end to end under waveform-true
// contention, with per-hop stage events in order. Hop exchanges are
// sequential on the shared timeline, so carrier sense keeps the air
// clean and sample-level superposition corrupts nothing.
func TestRelayBulkWaveform3Hop(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform exchanges are several times costlier")
	}
	payload := []byte("sos!") // 2 packets
	trace := &relayTrace{}
	net, nodes := buildRelayLine(t, 3,
		aquago.WithContentionMode(aquago.WaveformContention),
		aquago.WithNetworkTrace(trace))
	res, err := nodes[0].SendBulk(context.Background(), 3, payload)
	if err != nil {
		t.Fatalf("waveform bulk relay: %v (%+v)", err, res)
	}
	if !bytes.Equal(res.Received, payload) {
		t.Fatalf("waveform relay corrupted the payload: %q != %q", res.Received, payload)
	}
	if _, frac := net.CollisionStats(); frac != 0 {
		t.Fatalf("sequential relay hops should never collide (fraction %g)", frac)
	}
	checkHopOrder(t, trace.events, 3, 2)
}

// TestRelayFailureSurfacesRelayError: a transfer that dies mid-path
// must return a *RelayError carrying the failed hop (via errors.As)
// that also unwraps to the hop's underlying cause, and the BulkResult
// must report the partial delivery honestly.
func TestRelayFailureSurfacesRelayError(t *testing.T) {
	t.Run("dead-hop", func(t *testing.T) {
		// Explicit path whose middle hop spans 600 m: the preamble never
		// arrives, so the hop exhausts its attempts into ErrNoACK.
		net, err := aquago.NewNetwork(aquago.Bridge,
			aquago.WithNetworkSeed(3), aquago.WithNetworkRetries(0))
		if err != nil {
			t.Fatal(err)
		}
		for i, pos := range []aquago.Position{{X: 0, Z: 1}, {X: 25, Z: 1}, {X: 625, Z: 1}} {
			if _, err := net.Join(aquago.DeviceID(i), pos, aquago.WithNodeClock(0)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := net.SendBulkVia(context.Background(), []aquago.DeviceID{0, 1, 2}, []byte("hi"))
		if err == nil {
			t.Fatalf("600 m hop delivered?! %+v", res)
		}
		var hopErr *aquago.RelayError
		if !errors.As(err, &hopErr) {
			t.Fatalf("error %v does not carry *RelayError", err)
		}
		if hopErr.Hop != 1 || hopErr.From != 1 || hopErr.To != 2 || hopErr.Pkt != 0 {
			t.Fatalf("RelayError names the wrong hop: %+v", hopErr)
		}
		if !errors.Is(err, aquago.ErrNoACK) {
			t.Fatalf("RelayError does not unwrap to the hop's ErrNoACK: %v", err)
		}
		if res.DeliveredPackets != 0 || len(res.Received) != 0 {
			t.Fatalf("nothing should have arrived end to end: %+v", res)
		}
	})

	t.Run("cancel-mid-transfer", func(t *testing.T) {
		// Cancel the context once packet 1 goes on the air: packet 0 is
		// already delivered end to end, and the failure surfaces on
		// packet 1 with the partial result intact.
		ctx, cancel := context.WithCancel(context.Background())
		trace := aquago.TraceFunc(func(ev aquago.StageEvent) {
			if ev.BulkPkt == 1 {
				cancel()
			}
		})
		_, nodes := buildRelayLine(t, 2, aquago.WithNetworkTrace(trace))
		payload := []byte("abcd") // 2 packets
		res, err := nodes[0].SendBulk(ctx, 2, payload)
		if err == nil {
			t.Fatalf("cancelled transfer succeeded?! %+v", res)
		}
		var hopErr *aquago.RelayError
		if !errors.As(err, &hopErr) {
			t.Fatalf("error %v does not carry *RelayError", err)
		}
		if hopErr.Pkt != 1 {
			t.Fatalf("failure attributed to packet %d, want 1 (%+v)", hopErr.Pkt, hopErr)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RelayError does not unwrap to context.Canceled: %v", err)
		}
		if res.DeliveredPackets != 1 || !bytes.Equal(res.Received, payload[:2]) {
			t.Fatalf("partial delivery misreported: %+v", res)
		}
	})

	t.Run("bad-paths", func(t *testing.T) {
		net, nodes := buildRelayLine(t, 2)
		ctx := context.Background()
		okMsg, _ := aquago.LookupMessage("OK?")
		if _, err := nodes[0].SendBulk(ctx, 2, nil); !errors.Is(err, aquago.ErrBadMessage) {
			t.Fatalf("empty payload: %v", err)
		}
		if _, err := net.SendVia(ctx, []aquago.DeviceID{0}, okMsg.ID); !errors.Is(err, aquago.ErrBadPath) {
			t.Fatalf("single-node path: %v", err)
		}
		if _, err := net.SendVia(ctx, []aquago.DeviceID{0, 1, 0}, okMsg.ID); !errors.Is(err, aquago.ErrBadPath) {
			t.Fatalf("cyclic path: %v", err)
		}
		if _, err := net.SendVia(ctx, []aquago.DeviceID{0, 1}, okMsg.ID, okMsg.ID, okMsg.ID); !errors.Is(err, aquago.ErrBadMessage) {
			t.Fatalf("3-message relay: %v", err)
		}
	})
}
