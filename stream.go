package aquago

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
)

// This file is the reliable stream transport: a selective-repeat
// sliding-window ARQ running above the async transmit subsystem
// (txq.go). The link protocol underneath is the paper's stop-and-wait
// exchange — one packet, one ACK, a small retry budget — which makes
// a single dead packet fatal to anything longer than a packet. A
// Stream turns that into a connected byte pipe: the payload chunks
// into sequence-numbered segments, a bounded window of them rides the
// node's TxBulk queue concurrently, the link-layer ACK of each
// exchange doubles as a selective acknowledgment, and unacknowledged
// segments retransmit on the virtual clock with exponentially backed
// NotBeforeS floors until a bounded retry budget runs out.
//
// Framing. The protocol's payload is 16 bits, so a segment carries
// [seq byte, data byte]: one payload byte per segment, with the
// segment's absolute index modulo 256 as the on-air sequence number.
// The classic selective-repeat correctness bound applies: with an
// 8-bit sequence space the window must not exceed half the space
// (MaxStreamWindow = 128), or a late duplicate would be
// indistinguishable from a new segment. The receiver demaps a wire
// sequence number relative to its in-order frontier; anything half a
// space behind is a duplicate of a segment it already advanced past
// (the ACK was lost — the two-generals cost resurfacing one level up).
//
// Timers without wall time. A retransmission "timer" is not a
// time.Timer — aqualint's wallclock analyzer forbids those in the
// core — but a NotBeforeS floor on the requeued job: the retransmit
// becomes ready on the virtual timeline at (previous attempt's end +
// quantum * 2^tries) and then contends through the MAC and the
// conflict-graph scheduler like any other send. The quantum is the
// node's adaptive backoff quantum (the last committed attempt's
// actual on-air duration, PR 7) when one exists, else the
// conservative full-band airtime; WithStreamRTO pins it.
//
// Determinism. All ARQ state is guarded by the network's transmit
// queue lock and mutated only from Write/CloseWrite/Close (program
// order) and job continuations (txJob.after, which run atomically
// under tx.mu before any unblocked job dispatches) — the same
// contract the pipelined bulk relay rides. Stream results are
// therefore worker-count invariant whenever the caller's own enqueue
// pattern is deterministic.

const (
	// DefaultStreamWindow is the sender window (segments in flight)
	// when WithStreamWindow is not given.
	DefaultStreamWindow = 8
	// MaxStreamWindow bounds the window to half the 8-bit on-air
	// sequence space, the selective-repeat ambiguity limit.
	MaxStreamWindow = 128
	// DefaultStreamRetries is the per-segment retransmission budget
	// (transmissions beyond the first) when WithStreamRetries is not
	// given. Each transmission is itself a full link-layer exchange
	// with the network's own retry budget, so the end-to-end attempt
	// count per segment is (1 + retries) * (1 + network retries).
	DefaultStreamRetries = 4

	// streamSeqSpace is the on-air sequence space: one byte.
	streamSeqSpace = 256
	// streamBackoffCap caps the retransmission backoff exponent.
	streamBackoffCap = 6
)

// StreamOption customizes Node.OpenStream.
type StreamOption func(*streamConfig)

type streamConfig struct {
	window     int
	maxRetries int
	rtoS       float64
}

// WithStreamWindow sets the sender window: how many segments may be
// in flight (queued or on the air) beyond the cumulative
// acknowledgment frontier. Must be in [1, MaxStreamWindow]; default
// DefaultStreamWindow.
func WithStreamWindow(segments int) StreamOption {
	return func(c *streamConfig) { c.window = segments }
}

// WithStreamRetries sets the per-segment retransmission budget:
// transmissions beyond the first before the stream fails with a
// *StreamError. 0 disables retransmission (a single lost segment
// kills the stream, the stop-and-wait behavior the transport exists
// to fix); must not be negative. Default DefaultStreamRetries.
func WithStreamRetries(n int) StreamOption {
	return func(c *streamConfig) { c.maxRetries = n }
}

// WithStreamRTO pins the retransmission backoff quantum in virtual
// seconds: retransmission k of a segment becomes ready quantum*2^(k-1)
// after the failed attempt left the air. Zero (the default) uses the
// node's adaptive quantum — its last committed attempt's actual
// on-air duration when one exists, else the full-band worst case.
// Must be finite and non-negative.
func WithStreamRTO(seconds float64) StreamOption {
	return func(c *streamConfig) { c.rtoS = seconds }
}

// StreamStats is a snapshot of a stream's ARQ accounting
// (Stream.Stats).
type StreamStats struct {
	// BytesWritten counts bytes accepted by Write; BytesAcked the
	// sender's cumulative+selective acknowledgment progress;
	// BytesDelivered the receiver's in-order frontier (bytes available
	// to Read, whether or not read yet).
	BytesWritten, BytesAcked, BytesDelivered int
	// Segments counts distinct segments first transmitted; Attempts
	// the physical link-layer transmission attempts underneath them
	// (the link protocol's own retries included); Retransmits the ARQ
	// retransmissions scheduled above the link layer.
	Segments, Attempts, Retransmits int
	// DupSegments counts deliveries the receiver discarded as
	// duplicates — segments retransmitted because only their ACK was
	// lost.
	DupSegments int
	// MaxReorder is the largest out-of-order reassembly buffer the
	// receiver held (segments past a gap in the in-order frontier).
	MaxReorder int
	// Window is the configured sender window.
	Window int
	// StartS is the source's virtual clock when the stream opened;
	// EndS the latest virtual time any segment's final attempt left
	// the air.
	StartS, EndS float64
}

// streamRetry is one parked retransmission: segment seg becomes ready
// at floorS on the virtual timeline.
type streamRetry struct {
	seg    int
	floorS float64
}

// Stream is a reliable in-order byte stream between two nodes, from
// Node.OpenStream. Write appends payload bytes and returns without
// waiting for the air; the ARQ machinery slices them into
// sequence-numbered segments and keeps a bounded window of them in
// the source's TxBulk queue, so conversational traffic overtakes a
// stream at every dispatch. Read returns the receiver's in-order
// bytes, blocking while the pipe is empty. CloseWrite marks the end
// of the payload; after it, Read drains to io.EOF and Wait blocks
// until every byte is acknowledged or the stream has failed.
//
// A stream fails — Write/Read/Wait return a *StreamError wrapping the
// cause — when a segment exhausts its retransmission budget, the
// context is cancelled, or either node leaves. Failure never corrupts
// delivered data: the receiver's in-order prefix remains readable.
//
// Methods are safe for concurrent use.
type Stream struct {
	n   *Network
	src *Node
	dst *Node
	cfg streamConfig

	ctx    context.Context
	cancel context.CancelFunc

	// Everything below is guarded by n.tx.mu and mutated only from
	// public methods (program order) and job continuations (atomic
	// under completion processing).

	// buf holds every byte written; segment i carries buf[i].
	buf []byte
	// base is the cumulative acknowledgment frontier (lowest unacked
	// segment); next the first never-transmitted segment; acked and
	// tries track per-segment state.
	base, next int
	acked      []bool
	tries      []int
	// inflight maps segment -> its current job handle (queued or on
	// the air); retryQ holds retransmissions parked while the node's
	// queue is at capacity.
	inflight map[int]*TxHandle
	retryQ   []streamRetry

	// Receiver state: rcvd is the out-of-order reassembly buffer,
	// frontier the in-order byte count, readBuf the bytes Read has not
	// yet consumed, frontierAtS[i] the virtual time the in-order
	// frontier first covered i+1 bytes.
	rcvd        map[int]byte
	frontier    int
	readBuf     []byte
	frontierAtS []float64

	closedWrite bool
	closed      bool
	failed      error
	// wake is closed (and recreated on demand) whenever readable
	// state changes; Read parks on it.
	wake chan struct{}
	// done closes once the stream is terminal: failed, or write side
	// closed with every segment acknowledged.
	done       chan struct{}
	doneClosed bool

	stats StreamStats
}

// OpenStream opens a reliable byte stream to dst — the
// selective-repeat ARQ transport over the node's TxBulk queue; see
// Stream for the semantics. ctx governs the whole stream: cancelling
// it fails the stream and aborts its outstanding segments. Errors at
// open: ErrUnknownDevice, ErrBadDeviceID (self), ErrNodeLeft, and
// ErrBadStream for an invalid option (window outside
// [1, MaxStreamWindow], negative retries, non-finite or negative
// RTO).
func (nd *Node) OpenStream(ctx context.Context, dst DeviceID, opts ...StreamOption) (*Stream, error) {
	cfg := streamConfig{window: DefaultStreamWindow, maxRetries: DefaultStreamRetries}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.window < 1 || cfg.window > MaxStreamWindow {
		return nil, fmt.Errorf("%w: window %d outside [1, %d]", ErrBadStream, cfg.window, MaxStreamWindow)
	}
	if cfg.maxRetries < 0 {
		return nil, fmt.Errorf("%w: negative retry budget %d", ErrBadStream, cfg.maxRetries)
	}
	if !(cfg.rtoS >= 0) || cfg.rtoS > 1e12 { // rejects NaN, negatives and infinities in one comparison
		return nil, fmt.Errorf("%w: retransmission quantum %v is not a finite non-negative duration", ErrBadStream, cfg.rtoS)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := nd.net
	n.tx.mu.Lock()
	defer n.tx.mu.Unlock()
	n.mu.Lock()
	if nd.departed {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: source %d", ErrNodeLeft, nd.id)
	}
	peer, err := n.peerLocked(nd, dst)
	startS := nd.clockS
	n.mu.Unlock()
	if err != nil {
		return nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Stream{
		n: n, src: nd, dst: peer, cfg: cfg,
		ctx: sctx, cancel: cancel,
		inflight: make(map[int]*TxHandle),
		rcvd:     make(map[int]byte),
		done:     make(chan struct{}),
	}
	s.stats.Window = cfg.window
	s.stats.StartS = startS
	return s, nil
}

// Write appends p to the stream's payload and returns immediately;
// the window machinery transmits it as queue space and the window
// allow. It never blocks on the air. Errors: the stream's failure
// cause after a failure, ErrStreamClosed after Close or CloseWrite.
func (s *Stream) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	s.n.tx.mu.Lock()
	defer s.n.tx.mu.Unlock()
	switch {
	case s.failed != nil:
		return 0, s.failed
	case s.closed:
		return 0, fmt.Errorf("%w: write on closed stream", ErrStreamClosed)
	case s.closedWrite:
		return 0, fmt.Errorf("%w: write after CloseWrite", ErrStreamClosed)
	}
	s.buf = append(s.buf, p...)
	s.acked = append(s.acked, make([]bool, len(p))...)
	s.tries = append(s.tries, make([]int, len(p))...)
	s.stats.BytesWritten += len(p)
	s.pumpLocked()
	s.n.txEvaluateLocked()
	return len(p), nil
}

// CloseWrite marks the end of the payload: no more Writes are
// accepted, the receive side drains to io.EOF, and Wait unblocks once
// every written byte is acknowledged. It does not cancel outstanding
// segments. Idempotent.
func (s *Stream) CloseWrite() error {
	s.n.tx.mu.Lock()
	defer s.n.tx.mu.Unlock()
	if s.closedWrite || s.closed || s.failed != nil {
		return nil
	}
	s.closedWrite = true
	s.wakeLocked()
	s.finishIfDoneLocked()
	return nil
}

// Read copies in-order received bytes into p, blocking while none are
// available. After CloseWrite it drains the remaining bytes and then
// returns io.EOF; after a failure it drains the delivered in-order
// prefix and then returns the failure.
func (s *Stream) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	s.n.tx.mu.Lock()
	for {
		if len(s.readBuf) > 0 {
			k := copy(p, s.readBuf)
			s.readBuf = s.readBuf[k:]
			s.n.tx.mu.Unlock()
			return k, nil
		}
		if s.closedWrite && s.frontier == len(s.buf) {
			// Everything written was delivered in order — EOF even if
			// the sender side later failed chasing lost ACKs.
			s.n.tx.mu.Unlock()
			return 0, io.EOF
		}
		if s.failed != nil {
			err := s.failed
			s.n.tx.mu.Unlock()
			return 0, err
		}
		if s.wake == nil {
			s.wake = make(chan struct{})
		}
		w := s.wake
		s.n.tx.mu.Unlock()
		<-w
		s.n.tx.mu.Lock()
	}
}

// Done returns a channel closed when the stream is terminal: failed,
// or write side closed with every segment acknowledged.
func (s *Stream) Done() <-chan struct{} { return s.done }

// Wait blocks until the stream is terminal (returning nil on full
// acknowledgment, the failure cause otherwise) or ctx expires. The
// stream only becomes terminal after CloseWrite — an open write side
// may always carry more data.
func (s *Stream) Wait(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-s.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.n.tx.mu.Lock()
	defer s.n.tx.mu.Unlock()
	return s.failed
}

// Close tears the stream down: outstanding segments are withdrawn or
// aborted and subsequent Writes fail with ErrStreamClosed. Closing a
// completed stream is a no-op; closing a live one fails it (Read
// still drains the delivered prefix). Always returns nil.
func (s *Stream) Close() error {
	s.n.tx.mu.Lock()
	s.closed = true
	if !s.doneClosed && s.failed == nil {
		s.failLocked(fmt.Errorf("%w: stream closed with %d byte(s) unacknowledged", ErrStreamClosed, len(s.buf)-s.base))
		s.n.txEvaluateLocked()
		s.n.txCheckIdleLocked()
	}
	s.wakeLocked()
	s.finishIfDoneLocked()
	s.n.tx.mu.Unlock()
	s.cancel()
	return nil
}

// Stats returns a snapshot of the stream's ARQ accounting.
func (s *Stream) Stats() StreamStats {
	s.n.tx.mu.Lock()
	defer s.n.tx.mu.Unlock()
	return s.stats
}

// FrontierAtS returns the virtual time the receiver's in-order
// frontier first covered n bytes (1 <= n <= Stats().BytesDelivered),
// or 0 when the frontier has not reached n yet. The progressive-image
// workload reads time-to-first-usable-preview off it.
func (s *Stream) FrontierAtS(n int) float64 {
	s.n.tx.mu.Lock()
	defer s.n.tx.mu.Unlock()
	if n < 1 || n > len(s.frontierAtS) {
		return 0
	}
	return s.frontierAtS[n-1]
}

// pumpLocked keeps the window full: parked retransmissions first
// (they hold the oldest outstanding data), then never-sent segments
// up to base+window, stopping while the node's transmit queue is at
// capacity (tx.mu held). Callers own gate re-evaluation.
func (s *Stream) pumpLocked() {
	if s.failed != nil || s.closed {
		return
	}
	for len(s.retryQ) > 0 {
		if s.src.txq.n >= s.n.cfg.txQueueCap {
			s.stallCheckLocked()
			return
		}
		e := s.retryQ[0]
		s.retryQ = s.retryQ[1:]
		s.enqueueSegLocked(e.seg, e.floorS)
		if s.failed != nil {
			return
		}
	}
	for s.next < len(s.buf) && s.next < s.base+s.cfg.window {
		if s.src.txq.n >= s.n.cfg.txQueueCap {
			s.stallCheckLocked()
			return
		}
		s.stats.Segments++
		seg := s.next
		s.next++
		s.enqueueSegLocked(seg, 0)
		if s.failed != nil {
			return
		}
	}
}

// stallCheckLocked fails the stream when the queue is full of foreign
// traffic and the stream has nothing in flight — no future completion
// of ours would ever re-pump, so waiting would hang forever (tx.mu
// held).
func (s *Stream) stallCheckLocked() {
	if len(s.inflight) == 0 {
		s.failLocked(fmt.Errorf("%w: node %d transmit queue full with no stream segment in flight", ErrQueueFull, s.src.id))
	}
}

// enqueueSegLocked queues segment seg's transmission with the given
// ready floor (tx.mu held). An enqueue rejection fails the stream —
// pumpLocked's capacity check means it only trips on real errors
// (node left).
func (s *Stream) enqueueSegLocked(seg int, floorS float64) {
	s.tries[seg]++
	raw := [2]byte{byte(seg % streamSeqSpace), s.buf[seg]}
	h, err := s.n.txEnqueueLocked(s.src, s.dst, TxBulk, floorS, &raw, 0, 0, relayCtx{}, s.ctx, nil, s.segDone(seg))
	if err != nil {
		s.failLocked(&StreamError{Seq: seg, From: s.src.id, To: s.dst.id, Err: err})
		return
	}
	s.inflight[seg] = h
}

// segDone builds segment seg's completion continuation. It runs under
// tx.mu inside completion processing, atomically before any newly
// unblocked job dispatches — the same slot the pipelined relay
// forwards packets from.
func (s *Stream) segDone(seg int) func(TxDelivery) {
	return func(d TxDelivery) {
		delete(s.inflight, seg)
		s.stats.Attempts += d.Result.Attempts
		if d.EndS > s.stats.EndS {
			s.stats.EndS = d.EndS
		}
		if d.Result.Delivered {
			// Possession is decode, not acknowledgment: the receiver
			// holds the segment even when every ACK was lost.
			s.recvLocked(seg, d.EndS)
		}
		switch {
		case s.failed != nil || s.closed:
			// The stream died while this segment was on the air.
		case d.Err == nil && d.Result.Acknowledged:
			s.ackLocked(seg)
		default:
			s.retryOrFailLocked(seg, d)
		}
		s.wakeLocked()
		s.finishIfDoneLocked()
	}
}

// streamRetryable reports whether a segment failure is worth a
// retransmission: lost ACKs and busy channels are transient; context
// cancellation and node departure are not.
func streamRetryable(err error) bool {
	return errors.Is(err, ErrNoACK) || errors.Is(err, ErrChannelBusy)
}

// retryOrFailLocked handles an unacknowledged segment completion:
// schedule a backed-off retransmission while budget remains, fail the
// stream otherwise (tx.mu held).
func (s *Stream) retryOrFailLocked(seg int, d TxDelivery) {
	ferr := d.Err
	if ferr == nil {
		ferr = ErrNoACK
	}
	if !streamRetryable(ferr) || s.tries[seg] > s.cfg.maxRetries {
		s.failLocked(&StreamError{Seq: seg, From: s.src.id, To: s.dst.id, Err: ferr})
		return
	}
	s.stats.Retransmits++
	floor := d.EndS
	var busy *ChannelBusyError
	if errors.As(ferr, &busy) && busy.BusyUntilS > floor {
		floor = busy.BusyUntilS
	}
	if floor == 0 {
		// The job never reached the air; back off from the node's own
		// clock instead.
		floor = s.src.ClockS()
	}
	exp := s.tries[seg] - 1
	if exp > streamBackoffCap {
		exp = streamBackoffCap
	}
	quantum := s.cfg.rtoS
	if quantum == 0 {
		quantum = s.src.backoffQuantumS()
	}
	s.retryQ = append(s.retryQ, streamRetry{seg: seg, floorS: floor + quantum*float64(int(1)<<exp)})
	s.pumpLocked()
}

// recvLocked is the receiver: demap the wire sequence number relative
// to the in-order frontier, discard duplicates, buffer out-of-order
// segments and advance the frontier over contiguous data (tx.mu
// held). endS is the delivering attempt's virtual arrival time.
func (s *Stream) recvLocked(seg int, endS float64) {
	// Delivered means the decode was bit-exact, so the wire bytes are
	// the sent bytes; demap honestly from the 8-bit on-air number.
	wire := seg % streamSeqSpace
	rel := (wire - s.frontier%streamSeqSpace + streamSeqSpace) % streamSeqSpace
	if rel >= MaxStreamWindow {
		// Half a sequence space behind the frontier: a duplicate of a
		// segment already advanced past (only its ACK was lost).
		s.stats.DupSegments++
		return
	}
	abs := s.frontier + rel
	if _, dup := s.rcvd[abs]; dup || abs >= len(s.buf) {
		s.stats.DupSegments++
		return
	}
	s.rcvd[abs] = s.buf[abs]
	if len(s.rcvd) > s.stats.MaxReorder {
		s.stats.MaxReorder = len(s.rcvd)
	}
	for {
		b, ok := s.rcvd[s.frontier]
		if !ok {
			break
		}
		delete(s.rcvd, s.frontier)
		s.readBuf = append(s.readBuf, b)
		s.frontierAtS = append(s.frontierAtS, endS)
		s.frontier++
	}
	s.stats.BytesDelivered = s.frontier
}

// ackLocked records segment seg's selective acknowledgment, slides
// the cumulative base over contiguous acked segments and refills the
// window (tx.mu held).
func (s *Stream) ackLocked(seg int) {
	if !s.acked[seg] {
		s.acked[seg] = true
		s.stats.BytesAcked++
	}
	for s.base < s.next && s.acked[s.base] {
		s.base++
	}
	s.pumpLocked()
}

// failLocked marks the stream failed, drops parked retransmissions
// and withdraws outstanding segments: queued jobs resolve immediately
// (their continuations re-enter segDone synchronously and take the
// already-failed path), inflight ones get their contexts cancelled
// and resolve through their own completions (tx.mu held).
func (s *Stream) failLocked(err error) {
	if s.failed != nil {
		return
	}
	s.failed = err
	s.retryQ = nil
	// Withdrawals resolve handles in continuation order, so cancel in
	// segment order, never the map's randomized one.
	segs := make([]int, 0, len(s.inflight))
	//aqualint:order-independent keys are collected then sorted before use
	for seg := range s.inflight {
		segs = append(segs, seg)
	}
	sort.Ints(segs)
	for _, seg := range segs {
		h, ok := s.inflight[seg]
		if !ok {
			// A synchronous cancellation continuation already resolved it.
			continue
		}
		switch h.job.state {
		case txQueued:
			s.n.txCancelQueuedLocked(h.job, fmt.Errorf("%w: stream failed", ErrTxCancelled))
		case txInflight:
			if !h.job.cancelled {
				h.job.cancelled = true
				h.job.cancel()
			}
		}
	}
	s.wakeLocked()
	s.finishIfDoneLocked()
}

// wakeLocked releases parked Readers (tx.mu held). Close, never send:
// every waiter re-checks state under the lock.
func (s *Stream) wakeLocked() {
	if s.wake != nil {
		close(s.wake)
		s.wake = nil
	}
}

// finishIfDoneLocked closes the terminal channel once no segment is
// outstanding and the stream is either failed or fully acknowledged
// with its write side closed (tx.mu held).
func (s *Stream) finishIfDoneLocked() {
	if s.doneClosed || len(s.inflight) != 0 || len(s.retryQ) != 0 {
		return
	}
	switch {
	case s.failed != nil:
	case s.closedWrite && s.base == len(s.buf):
	default:
		return
	}
	s.doneClosed = true
	close(s.done)
	s.cancel()
}
