module aquago

go 1.24
