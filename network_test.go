package aquago_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"aquago"

	"aquago/internal/mac"
	"aquago/internal/sim"
)

// countingTrace counts stage callbacks and remembers stage order.
type countingTrace struct {
	mu     sync.Mutex
	events []aquago.StageEvent
}

func (ct *countingTrace) OnStage(ev aquago.StageEvent) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.events = append(ct.events, ev)
}

func (ct *countingTrace) count() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return len(ct.events)
}

// buildTriangle makes a 3-node network: receiver 0 plus senders 1, 2
// within a few meters, in the calm bridge site (static water, so the
// per-pair channels are time-invariant and concurrent scheduling
// cannot change exchange outcomes).
func buildTriangle(t *testing.T, seed int64, opts ...aquago.NetworkOption) (*aquago.Network, *aquago.Node, *aquago.Node, *aquago.Node) {
	t.Helper()
	net, err := aquago.NewNetwork(aquago.Bridge,
		append([]aquago.NetworkOption{aquago.WithNetworkSeed(seed)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := net.Join(0, aquago.Position{X: 0, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.Join(1, aquago.Position{X: 5, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Join(2, aquago.Position{X: -4, Y: 3, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	return net, recv, a, b
}

// concurrentSends fires one Send from each of a and b on separate
// goroutines and returns the results keyed by sender ID.
func concurrentSends(t *testing.T, a, b *aquago.Node) map[aquago.DeviceID]aquago.SendResult {
	t.Helper()
	okMsg, _ := aquago.LookupMessage("OK?")
	upMsg, _ := aquago.LookupMessage("Go up")
	results := make(map[aquago.DeviceID]aquago.SendResult, 2)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, nd := range []*aquago.Node{a, b} {
		wg.Add(1)
		go func(nd *aquago.Node) {
			defer wg.Done()
			res, err := nd.Send(context.Background(), 0, okMsg.ID, upMsg.ID)
			if err != nil {
				t.Errorf("node %d send: %v", nd.ID(), err)
			}
			mu.Lock()
			results[nd.ID()] = res
			mu.Unlock()
		}(nd)
	}
	wg.Wait()
	return results
}

func TestNetworkConcurrentSendsUnderCarrierSense(t *testing.T) {
	trace := &countingTrace{}
	net, _, a, b := buildTriangle(t, 3, aquago.WithNetworkTrace(trace))

	results := concurrentSends(t, a, b)
	for id, res := range results {
		if !res.Delivered || !res.Acknowledged {
			t.Fatalf("node %d: not delivered/acknowledged: %+v", id, res)
		}
		if res.Attempts != 1 {
			t.Fatalf("node %d: %d attempts on a clean channel", id, res.Attempts)
		}
	}
	if trace.count() == 0 {
		t.Fatal("no trace stage callbacks fired")
	}

	// Carrier sense serialized the two senders: nothing collided.
	per, frac := net.CollisionStats()
	if frac != 0 {
		t.Fatalf("collision fraction %.2f with carrier sense, want 0 (%v)", frac, per)
	}
	sent := 0
	for _, c := range per {
		sent += c[1]
	}
	if sent != 2 {
		t.Fatalf("envelope medium saw %d packets, want 2", sent)
	}
}

func TestNetworkDeterministicAcrossRuns(t *testing.T) {
	// Fixed seed => identical SendResults, run to run, regardless of
	// how the two sending goroutines interleave: per-pair channels are
	// seeded per pair and (static bridge water) time-invariant, and
	// each node's MAC randomness is its own stream.
	run := func() map[aquago.DeviceID]aquago.SendResult {
		_, _, a, b := buildTriangle(t, 3)
		return concurrentSends(t, a, b)
	}
	first := run()
	for trial := 0; trial < 3; trial++ {
		if got := run(); !reflect.DeepEqual(first, got) {
			t.Fatalf("run %d diverged:\nfirst: %+v\ngot:   %+v", trial, first, got)
		}
	}
}

func TestNetworkWithoutCarrierSenseCollides(t *testing.T) {
	// Pin both senders' clocks to 0 so their transmissions overlap;
	// with the MAC disabled nobody listens first and the envelope
	// accounting sees the collision.
	net, err := aquago.NewNetwork(aquago.Bridge,
		aquago.WithNetworkSeed(3), aquago.WithoutCarrierSense())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
		t.Fatal(err)
	}
	a, err := net.Join(1, aquago.Position{X: 5, Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Join(2, aquago.Position{X: -4, Y: 3, Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	concurrentSends(t, a, b)
	_, frac := net.CollisionStats()
	if frac != 1 {
		t.Fatalf("collision fraction %.2f without carrier sense, want 1", frac)
	}
}

func TestNetworkTraceStageOrder(t *testing.T) {
	trace := &countingTrace{}
	net, err := aquago.NewNetwork(aquago.Bridge, aquago.WithNetworkSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
		t.Fatal(err)
	}
	// Per-node trace overrides the (absent) network trace.
	sender, err := net.Join(1, aquago.Position{X: 5, Z: 1}, aquago.WithNodeTrace(trace))
	if err != nil {
		t.Fatal(err)
	}
	okMsg, _ := aquago.LookupMessage("OK?")
	res, err := sender.Send(context.Background(), 0, okMsg.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Acknowledged {
		t.Fatalf("send not acknowledged: %+v", res)
	}
	want := []aquago.Stage{
		aquago.StagePreamble, aquago.StageSNR, aquago.StageBand,
		aquago.StageFeedback, aquago.StageData, aquago.StageACK,
	}
	if len(trace.events) != len(want) {
		t.Fatalf("got %d stage events, want %d: %+v", len(trace.events), len(want), trace.events)
	}
	for i, ev := range trace.events {
		if ev.Stage != want[i] {
			t.Fatalf("stage %d = %v, want %v", i, ev.Stage, want[i])
		}
		if !ev.OK {
			t.Fatalf("stage %v reported failure on a clean exchange", ev.Stage)
		}
	}
	// SNR stage carries the per-subcarrier estimate.
	if len(trace.events[1].SNRdB) == 0 {
		t.Fatal("SNR stage event missing the per-subcarrier estimate")
	}
}

func TestNetworkErrorTaxonomy(t *testing.T) {
	net, _, a, _ := buildTriangle(t, 9)
	ctx := context.Background()
	okMsg, _ := aquago.LookupMessage("OK?")

	if _, err := net.Join(1, aquago.Position{X: 9, Z: 1}); !errors.Is(err, aquago.ErrDuplicateDevice) {
		t.Fatalf("duplicate join: %v", err)
	}
	if _, err := net.Join(77, aquago.Position{X: 9, Z: 1}); !errors.Is(err, aquago.ErrBadDeviceID) {
		t.Fatalf("out-of-range join: %v", err)
	}
	if _, err := a.Send(ctx, 42, okMsg.ID); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("send to stranger: %v", err)
	}
	if _, err := a.Send(ctx, 0); !errors.Is(err, aquago.ErrBadMessage) {
		t.Fatalf("empty send: %v", err)
	}
	if _, err := a.Send(ctx, 0, 1, 2, 3); !errors.Is(err, aquago.ErrBadMessage) {
		t.Fatalf("3-message send: %v", err)
	}
	if _, err := a.Send(ctx, 0, 250); !errors.Is(err, aquago.ErrBadMessage) {
		t.Fatalf("out-of-codebook send: %v", err)
	}
	if _, err := a.Send(ctx, a.ID(), okMsg.ID); !errors.Is(err, aquago.ErrBadDeviceID) {
		t.Fatalf("self send: %v", err)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := a.Send(cancelled, 0, okMsg.ID); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled send: %v", err)
	}
}

func TestNetworkChannelBusyDeadline(t *testing.T) {
	// A tiny access deadline: the first sender parks a packet on the
	// air starting at 0; the second becomes ready 100 ms in — well
	// inside that airtime — and its backoff cannot drain in time.
	net, err := aquago.NewNetwork(aquago.Bridge,
		aquago.WithNetworkSeed(3), aquago.WithAccessDeadline(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
		t.Fatal(err)
	}
	a, err := net.Join(1, aquago.Position{X: 5, Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Join(2, aquago.Position{X: -4, Y: 3, Z: 1}, aquago.WithNodeClock(0.1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	okMsg, _ := aquago.LookupMessage("OK?")
	if _, err := a.Send(ctx, 0, okMsg.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Send(ctx, 0, okMsg.ID); !errors.Is(err, aquago.ErrChannelBusy) {
		t.Fatalf("want ErrChannelBusy, got %v", err)
	}
}

func TestNodeMediumToRunsASession(t *testing.T) {
	// The two-endpoint Session is the 2-node special case: run one
	// over a network pair's geometry-derived medium.
	_, _, a, b := buildTriangle(t, 3)
	med, err := a.MediumTo(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := aquago.Dial(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	okMsg, _ := aquago.LookupMessage("OK?")
	res, err := sess.Send(med, b.ID(), okMsg.ID, aquago.NoMessage)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("session over network pair failed: %+v", res)
	}
	if _, err := a.MediumTo(42); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("MediumTo stranger: %v", err)
	}
}

// TestMediumToConcurrentWithNetworkTraffic drives a Session over a
// node pair's detached medium while the same pair carries live
// network sends — the two surfaces must not share mutable link state
// (run under -race in CI).
func TestMediumToConcurrentWithNetworkTraffic(t *testing.T) {
	_, _, a, b := buildTriangle(t, 3)
	med, err := a.MediumTo(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := aquago.Dial(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	okMsg, _ := aquago.LookupMessage("OK?")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if _, err := sess.Send(med, b.ID(), okMsg.ID, aquago.NoMessage); err != nil {
				t.Errorf("session over MediumTo: %v", err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if _, err := a.Send(context.Background(), b.ID(), okMsg.ID); err != nil {
				t.Errorf("network send: %v", err)
			}
		}
	}()
	wg.Wait()
}

func TestSimulateContentionMatchesInternalMAC(t *testing.T) {
	// The public batch simulation must reproduce the internal engine
	// exactly (cmd/aquanet's Fig 19 numbers ride on this).
	net, err := aquago.NewNetwork(aquago.Bridge)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
		t.Fatal(err)
	}
	var tx []*aquago.Node
	for i := 0; i < 3; i++ {
		nd, err := net.Join(aquago.DeviceID(i+1),
			aquago.Position{X: 5 + 2.5*float64(i), Y: float64(i), Z: 1})
		if err != nil {
			t.Fatal(err)
		}
		tx = append(tx, nd)
	}
	cfg := aquago.ContentionConfig{CarrierSense: true, PacketsPerTx: 40, Seed: 11}
	got := net.SimulateContention(tx, cfg)

	med := sim.New(aquago.Bridge)
	med.AddNode(sim.Position{X: 0, Z: 1})
	var ids []int
	for i := 0; i < 3; i++ {
		ids = append(ids, med.AddNode(sim.Position{X: 5 + 2.5*float64(i), Y: float64(i), Z: 1}))
	}
	want := mac.RunNetwork(med, ids, mac.Config{CarrierSense: true, PacketsPerTx: 40, Seed: 11})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("public contention result diverged:\ngot  %+v\nwant %+v", got, want)
	}

	// Batch traffic must not pollute live collision accounting.
	if per, _ := net.CollisionStats(); len(per) != 0 {
		t.Fatalf("batch packets leaked into live accounting: %v", per)
	}
}
