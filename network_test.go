package aquago_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"aquago"

	"aquago/internal/mac"
	"aquago/internal/sim"
)

// countingTrace counts stage callbacks and remembers stage order.
type countingTrace struct {
	mu     sync.Mutex
	events []aquago.StageEvent
}

func (ct *countingTrace) OnStage(ev aquago.StageEvent) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.events = append(ct.events, ev)
}

func (ct *countingTrace) count() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return len(ct.events)
}

// buildTriangle makes a 3-node network: receiver 0 plus senders 1, 2
// within a few meters, in the calm bridge site (static water, so the
// per-pair channels are time-invariant and concurrent scheduling
// cannot change exchange outcomes).
func buildTriangle(t *testing.T, seed int64, opts ...aquago.NetworkOption) (*aquago.Network, *aquago.Node, *aquago.Node, *aquago.Node) {
	t.Helper()
	net, err := aquago.NewNetwork(aquago.Bridge,
		append([]aquago.NetworkOption{aquago.WithNetworkSeed(seed)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := net.Join(0, aquago.Position{X: 0, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.Join(1, aquago.Position{X: 5, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Join(2, aquago.Position{X: -4, Y: 3, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	return net, recv, a, b
}

// concurrentSends fires one Send from each of a and b on separate
// goroutines and returns the results keyed by sender ID.
func concurrentSends(t *testing.T, a, b *aquago.Node) map[aquago.DeviceID]aquago.SendResult {
	t.Helper()
	okMsg, _ := aquago.LookupMessage("OK?")
	upMsg, _ := aquago.LookupMessage("Go up")
	results := make(map[aquago.DeviceID]aquago.SendResult, 2)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, nd := range []*aquago.Node{a, b} {
		wg.Add(1)
		go func(nd *aquago.Node) {
			defer wg.Done()
			res, err := nd.Send(context.Background(), 0, okMsg.ID, upMsg.ID)
			if err != nil {
				t.Errorf("node %d send: %v", nd.ID(), err)
			}
			mu.Lock()
			results[nd.ID()] = res
			mu.Unlock()
		}(nd)
	}
	wg.Wait()
	return results
}

func TestNetworkConcurrentSendsUnderCarrierSense(t *testing.T) {
	trace := &countingTrace{}
	net, _, a, b := buildTriangle(t, 3, aquago.WithNetworkTrace(trace))

	results := concurrentSends(t, a, b)
	for id, res := range results {
		if !res.Delivered || !res.Acknowledged {
			t.Fatalf("node %d: not delivered/acknowledged: %+v", id, res)
		}
		if res.Attempts != 1 {
			t.Fatalf("node %d: %d attempts on a clean channel", id, res.Attempts)
		}
	}
	if trace.count() == 0 {
		t.Fatal("no trace stage callbacks fired")
	}

	// Carrier sense serialized the two senders: nothing collided.
	per, frac := net.CollisionStats()
	if frac != 0 {
		t.Fatalf("collision fraction %.2f with carrier sense, want 0 (%v)", frac, per)
	}
	sent := 0
	for _, c := range per {
		sent += c[1]
	}
	if sent != 2 {
		t.Fatalf("envelope medium saw %d packets, want 2", sent)
	}
}

func TestNetworkDeterministicAcrossRuns(t *testing.T) {
	// Fixed seed => identical SendResults, run to run, regardless of
	// how the two sending goroutines interleave: per-pair channels are
	// seeded per pair and (static bridge water) time-invariant, and
	// each node's MAC randomness is its own stream.
	run := func() map[aquago.DeviceID]aquago.SendResult {
		_, _, a, b := buildTriangle(t, 3)
		return concurrentSends(t, a, b)
	}
	first := run()
	for trial := 0; trial < 3; trial++ {
		if got := run(); !reflect.DeepEqual(first, got) {
			t.Fatalf("run %d diverged:\nfirst: %+v\ngot:   %+v", trial, first, got)
		}
	}
}

func TestNetworkWithoutCarrierSenseCollides(t *testing.T) {
	// Pin both senders' clocks to 0 so their transmissions overlap;
	// with the MAC disabled nobody listens first and the envelope
	// accounting sees the collision.
	net, err := aquago.NewNetwork(aquago.Bridge,
		aquago.WithNetworkSeed(3), aquago.WithoutCarrierSense())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
		t.Fatal(err)
	}
	a, err := net.Join(1, aquago.Position{X: 5, Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Join(2, aquago.Position{X: -4, Y: 3, Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	concurrentSends(t, a, b)
	_, frac := net.CollisionStats()
	if frac != 1 {
		t.Fatalf("collision fraction %.2f without carrier sense, want 1", frac)
	}
}

func TestNetworkTraceStageOrder(t *testing.T) {
	trace := &countingTrace{}
	net, err := aquago.NewNetwork(aquago.Bridge, aquago.WithNetworkSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
		t.Fatal(err)
	}
	// Per-node trace overrides the (absent) network trace.
	sender, err := net.Join(1, aquago.Position{X: 5, Z: 1}, aquago.WithNodeTrace(trace))
	if err != nil {
		t.Fatal(err)
	}
	okMsg, _ := aquago.LookupMessage("OK?")
	res, err := sender.Send(context.Background(), 0, okMsg.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Acknowledged {
		t.Fatalf("send not acknowledged: %+v", res)
	}
	want := []aquago.Stage{
		aquago.StagePreamble, aquago.StageSNR, aquago.StageBand,
		aquago.StageFeedback, aquago.StageData, aquago.StageACK,
	}
	if len(trace.events) != len(want) {
		t.Fatalf("got %d stage events, want %d: %+v", len(trace.events), len(want), trace.events)
	}
	for i, ev := range trace.events {
		if ev.Stage != want[i] {
			t.Fatalf("stage %d = %v, want %v", i, ev.Stage, want[i])
		}
		if !ev.OK {
			t.Fatalf("stage %v reported failure on a clean exchange", ev.Stage)
		}
	}
	// SNR stage carries the per-subcarrier estimate.
	if len(trace.events[1].SNRdB) == 0 {
		t.Fatal("SNR stage event missing the per-subcarrier estimate")
	}
}

func TestNetworkErrorTaxonomy(t *testing.T) {
	net, _, a, _ := buildTriangle(t, 9)
	ctx := context.Background()
	okMsg, _ := aquago.LookupMessage("OK?")

	if _, err := net.Join(1, aquago.Position{X: 9, Z: 1}); !errors.Is(err, aquago.ErrDuplicateDevice) {
		t.Fatalf("duplicate join: %v", err)
	}
	if _, err := net.Join(aquago.MaxNetworkDevices, aquago.Position{X: 9, Z: 1}); !errors.Is(err, aquago.ErrBadDeviceID) {
		t.Fatalf("out-of-range join: %v", err)
	}
	if _, err := net.Join(-1, aquago.Position{X: 9, Z: 1}); !errors.Is(err, aquago.ErrBadDeviceID) {
		t.Fatalf("negative join: %v", err)
	}
	// ID 61 maps to on-air tone 1, already held by node a within the
	// (unlimited) carrier-sense range: the 60-tone space only recycles
	// beyond audibility.
	if _, err := net.Join(61, aquago.Position{X: 9, Z: 1}); !errors.Is(err, aquago.ErrAddressClash) {
		t.Fatalf("tone-clash join: %v", err)
	}
	if _, err := a.Send(ctx, 42, okMsg.ID); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("send to stranger: %v", err)
	}
	if _, err := a.Send(ctx, 0); !errors.Is(err, aquago.ErrBadMessage) {
		t.Fatalf("empty send: %v", err)
	}
	if _, err := a.Send(ctx, 0, 1, 2, 3); !errors.Is(err, aquago.ErrBadMessage) {
		t.Fatalf("3-message send: %v", err)
	}
	if _, err := a.Send(ctx, 0, 250); !errors.Is(err, aquago.ErrBadMessage) {
		t.Fatalf("out-of-codebook send: %v", err)
	}
	if _, err := a.Send(ctx, a.ID(), okMsg.ID); !errors.Is(err, aquago.ErrBadDeviceID) {
		t.Fatalf("self send: %v", err)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := a.Send(cancelled, 0, okMsg.ID); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled send: %v", err)
	}
}

func TestNetworkChannelBusyDeadline(t *testing.T) {
	// A tiny access deadline: the first sender parks a packet on the
	// air starting at 0; the second becomes ready 100 ms in — well
	// inside that airtime — and its backoff cannot drain in time.
	net, err := aquago.NewNetwork(aquago.Bridge,
		aquago.WithNetworkSeed(3), aquago.WithAccessDeadline(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
		t.Fatal(err)
	}
	a, err := net.Join(1, aquago.Position{X: 5, Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Join(2, aquago.Position{X: -4, Y: 3, Z: 1}, aquago.WithNodeClock(0.1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	okMsg, _ := aquago.LookupMessage("OK?")
	if _, err := a.Send(ctx, 0, okMsg.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Send(ctx, 0, okMsg.ID); !errors.Is(err, aquago.ErrChannelBusy) {
		t.Fatalf("want ErrChannelBusy, got %v", err)
	}
}

func TestNodeMediumToRunsASession(t *testing.T) {
	// The two-endpoint Session is the 2-node special case: run one
	// over a network pair's geometry-derived medium.
	_, _, a, b := buildTriangle(t, 3)
	med, err := a.MediumTo(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := aquago.Dial(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	okMsg, _ := aquago.LookupMessage("OK?")
	res, err := sess.Send(med, b.ID(), okMsg.ID, aquago.NoMessage)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("session over network pair failed: %+v", res)
	}
	if _, err := a.MediumTo(42); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("MediumTo stranger: %v", err)
	}
}

// TestMediumToConcurrentWithNetworkTraffic drives a Session over a
// node pair's detached medium while the same pair carries live
// network sends — the two surfaces must not share mutable link state
// (run under -race in CI).
func TestMediumToConcurrentWithNetworkTraffic(t *testing.T) {
	_, _, a, b := buildTriangle(t, 3)
	med, err := a.MediumTo(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := aquago.Dial(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	okMsg, _ := aquago.LookupMessage("OK?")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if _, err := sess.Send(med, b.ID(), okMsg.ID, aquago.NoMessage); err != nil {
				t.Errorf("session over MediumTo: %v", err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if _, err := a.Send(context.Background(), b.ID(), okMsg.ID); err != nil {
				t.Errorf("network send: %v", err)
			}
		}
	}()
	wg.Wait()
}

func TestSimulateContentionMatchesInternalMAC(t *testing.T) {
	// The public batch simulation must reproduce the internal engine
	// exactly (cmd/aquanet's Fig 19 numbers ride on this).
	net, err := aquago.NewNetwork(aquago.Bridge)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
		t.Fatal(err)
	}
	var tx []*aquago.Node
	for i := 0; i < 3; i++ {
		nd, err := net.Join(aquago.DeviceID(i+1),
			aquago.Position{X: 5 + 2.5*float64(i), Y: float64(i), Z: 1})
		if err != nil {
			t.Fatal(err)
		}
		tx = append(tx, nd)
	}
	cfg := aquago.ContentionConfig{CarrierSense: true, PacketsPerTx: 40, Seed: 11}
	got := net.SimulateContention(tx, cfg)

	med := sim.New(aquago.Bridge)
	med.AddNode(sim.Position{X: 0, Z: 1})
	var ids []int
	for i := 0; i < 3; i++ {
		ids = append(ids, med.AddNode(sim.Position{X: 5 + 2.5*float64(i), Y: float64(i), Z: 1}))
	}
	want := mac.RunNetwork(med, ids, mac.Config{CarrierSense: true, PacketsPerTx: 40, Seed: 11})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("public contention result diverged:\ngot  %+v\nwant %+v", got, want)
	}

	// Batch traffic must not pollute live collision accounting.
	if per, _ := net.CollisionStats(); len(per) != 0 {
		t.Fatalf("batch packets leaked into live accounting: %v", per)
	}
}

// TestChannelBusyErrorCarriesBusyUntil: the deadline failure must
// round-trip errors.Is(ErrChannelBusy) and expose the virtual time the
// MAC gave up at through errors.As.
func TestChannelBusyErrorCarriesBusyUntil(t *testing.T) {
	net, err := aquago.NewNetwork(aquago.Bridge,
		aquago.WithNetworkSeed(3), aquago.WithAccessDeadline(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
		t.Fatal(err)
	}
	a, err := net.Join(1, aquago.Position{X: 5, Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Join(2, aquago.Position{X: -4, Y: 3, Z: 1}, aquago.WithNodeClock(0.1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	okMsg, _ := aquago.LookupMessage("OK?")
	if _, err := a.Send(ctx, 0, okMsg.ID); err != nil {
		t.Fatal(err)
	}
	_, err = b.Send(ctx, 0, okMsg.ID)
	if !errors.Is(err, aquago.ErrChannelBusy) {
		t.Fatalf("want ErrChannelBusy, got %v", err)
	}
	var busy *aquago.ChannelBusyError
	if !errors.As(err, &busy) {
		t.Fatalf("error %v does not carry *ChannelBusyError", err)
	}
	if busy.DeadlineS != 0.05 {
		t.Fatalf("DeadlineS = %g, want 0.05", busy.DeadlineS)
	}
	// b became ready at 0.1 and searched past the 0.05 s deadline, so
	// the channel was busy until strictly after 0.15 virtual seconds.
	if busy.BusyUntilS <= 0.15 {
		t.Fatalf("BusyUntilS = %g, want > 0.15", busy.BusyUntilS)
	}
}

// waveformOutcome is one deterministic two-sender overlap run in
// waveform contention mode (errors flattened for DeepEqual).
type waveformOutcome struct {
	ResA, ResB aquago.SendResult
	ErrA, ErrB string
	Fraction   float64
}

// runWaveformOverlap forces two senders onto the air at (virtually)
// the same time with the MAC disabled, in the given contention mode,
// and reports what each exchange decoded.
func runWaveformOverlap(t *testing.T, seed int64, workers int, mode aquago.ContentionMode) waveformOutcome {
	t.Helper()
	net, err := aquago.NewNetwork(aquago.Bridge,
		aquago.WithNetworkSeed(seed),
		aquago.WithContentionMode(mode),
		aquago.WithoutCarrierSense(),
		aquago.WithNetworkRetries(0),
		aquago.WithNetworkWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
		t.Fatal(err)
	}
	a, err := net.Join(1, aquago.Position{X: 5, Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Join(2, aquago.Position{X: -4, Y: 3, Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	okMsg, _ := aquago.LookupMessage("OK?")
	ctx := context.Background()
	var out waveformOutcome
	var errA, errB error
	// Sequential sends pin the grant order; the commit frontier still
	// forces b onto the air one sense interval into a's packet.
	out.ResA, errA = a.Send(ctx, 0, okMsg.ID)
	out.ResB, errB = b.Send(ctx, 0, okMsg.ID)
	if errA != nil {
		out.ErrA = errA.Error()
	}
	if errB != nil {
		out.ErrB = errB.Error()
	}
	_, out.Fraction = net.CollisionStats()
	return out
}

// TestNetworkWaveformCollisionCorruptsDecode is the golden waveform
// test: a forced two-sender overlap must corrupt the second exchange's
// received samples — decode fails and the send reports ErrNoACK —
// identically across seeds and worker counts, while the envelope fast
// path (same scenario) only counts the collision and still delivers.
func TestNetworkWaveformCollisionCorruptsDecode(t *testing.T) {
	for _, seed := range []int64{1, 3, 5, 11} {
		base := runWaveformOverlap(t, seed, 1, aquago.WaveformContention)
		if !base.ResA.Delivered || base.ErrA != "" {
			t.Fatalf("seed %d: first sender should land cleanly: %+v err=%q", seed, base.ResA, base.ErrA)
		}
		if base.ResB.Delivered || base.ResB.Acknowledged {
			t.Fatalf("seed %d: overlapping send decoded despite sample-level collision: %+v", seed, base.ResB)
		}
		if base.ErrB == "" || !strings.Contains(base.ErrB, "no acknowledgment") {
			t.Fatalf("seed %d: want ErrNoACK from the corrupted exchange, got %q", seed, base.ErrB)
		}
		if base.Fraction != 1 {
			t.Fatalf("seed %d: envelope accounting missed the collision (fraction %g)", seed, base.Fraction)
		}
		// Same grant order, any worker count: byte-identical outcome.
		for _, workers := range []int{2, 4} {
			if got := runWaveformOverlap(t, seed, workers, aquago.WaveformContention); !reflect.DeepEqual(base, got) {
				t.Fatalf("seed %d: workers %d diverged:\nwant %+v\ngot  %+v", seed, workers, base, got)
			}
		}
		// The envelope fast path counts the same collision but decodes
		// over clean pair channels — the documented difference.
		env := runWaveformOverlap(t, seed, 1, aquago.EnvelopeContention)
		if !env.ResB.Delivered || env.Fraction != 1 {
			t.Fatalf("seed %d: envelope mode should deliver through a counted collision: %+v frac=%g",
				seed, env.ResB, env.Fraction)
		}
	}
}

// TestNetworkWaveformCarrierSenseAvoidsCorruption: with the MAC on,
// the second sender defers past the first packet, so waveform mode
// decodes cleanly — collisions come from overlap, not from the mode.
func TestNetworkWaveformCarrierSenseAvoidsCorruption(t *testing.T) {
	net, _, a, b := buildTriangle(t, 3, aquago.WithContentionMode(aquago.WaveformContention))
	results := concurrentSends(t, a, b)
	for id, res := range results {
		if !res.Delivered || !res.Acknowledged {
			t.Fatalf("node %d: waveform-mode send failed on a sensed channel: %+v", id, res)
		}
	}
	if _, frac := net.CollisionStats(); frac != 0 {
		t.Fatalf("carrier sense failed to serialize the air (fraction %g)", frac)
	}
}

// buildTwoIslands makes two 2-node pairs 1 km apart with a 30 m
// carrier-sense range: exchanges across pairs cannot interfere, so the
// conflict-graph scheduler may run them concurrently.
func buildTwoIslands(t *testing.T, workers int) (*aquago.Network, [4]*aquago.Node) {
	t.Helper()
	net, err := aquago.NewNetwork(aquago.Bridge,
		aquago.WithNetworkSeed(3),
		aquago.WithCSRange(30),
		aquago.WithNetworkWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	var nodes [4]*aquago.Node
	for i, pos := range []aquago.Position{
		{X: 0, Z: 1}, {X: 5, Z: 1}, {X: 1000, Z: 1}, {X: 1005, Z: 1},
	} {
		nd, err := net.Join(aquago.DeviceID(i), pos)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	return net, nodes
}

// TestNetworkSchedulerParallelism: non-interfering pair exchanges must
// overlap in wall-clock (MaxConcurrent >= 2) and produce results
// independent of the worker count.
func TestNetworkSchedulerParallelism(t *testing.T) {
	const sendsPerPair = 3
	run := func(workers int) (map[aquago.DeviceID][]aquago.SendResult, aquago.SchedulerStats) {
		net, nodes := buildTwoIslands(t, workers)
		okMsg, _ := aquago.LookupMessage("OK?")
		results := make(map[aquago.DeviceID][]aquago.SendResult)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, pair := range [][2]*aquago.Node{{nodes[1], nodes[0]}, {nodes[3], nodes[2]}} {
			wg.Add(1)
			go func(tx, rx *aquago.Node) {
				defer wg.Done()
				for i := 0; i < sendsPerPair; i++ {
					res, err := tx.Send(context.Background(), rx.ID(), okMsg.ID)
					if err != nil {
						t.Errorf("node %d send %d: %v", tx.ID(), i, err)
					}
					mu.Lock()
					results[tx.ID()] = append(results[tx.ID()], res)
					mu.Unlock()
				}
			}(pair[0], pair[1])
		}
		wg.Wait()
		return results, net.SchedulerStats()
	}

	parallel, stats := run(4)
	if stats.MaxConcurrent < 2 {
		t.Fatalf("non-interfering exchanges never overlapped: %+v", stats)
	}
	if stats.Granted != 2*sendsPerPair {
		t.Fatalf("granted %d attempts, want %d", stats.Granted, 2*sendsPerPair)
	}
	serial, _ := run(1)
	if !reflect.DeepEqual(parallel, serial) {
		t.Fatalf("worker count changed results:\nworkers=4: %+v\nworkers=1: %+v", parallel, serial)
	}
}

// rendezvousTrace blocks each exchange at its first stage until `need`
// exchanges have arrived, forcing them to overlap in wall-clock — the
// deterministic way to observe scheduler concurrency. If the scheduler
// wrongly serializes the exchanges the rendezvous can never complete,
// so arrivals time out (and fail the test) instead of deadlocking.
type rendezvousTrace struct {
	mu      sync.Mutex
	arrived int
	need    int
	release chan struct{}
	t       *testing.T
}

func newRendezvous(t *testing.T, need int) *rendezvousTrace {
	return &rendezvousTrace{need: need, release: make(chan struct{}), t: t}
}

func (r *rendezvousTrace) OnStage(ev aquago.StageEvent) {
	if ev.Stage != aquago.StagePreamble {
		return
	}
	r.mu.Lock()
	r.arrived++
	if r.arrived == r.need {
		close(r.release)
	}
	r.mu.Unlock()
	select {
	case <-r.release:
	case <-time.After(30 * time.Second):
		r.t.Errorf("rendezvous: only %d of %d exchanges arrived; scheduler serialized non-interfering sends", r.arrived, r.need)
	}
}

// TestNetworkSchedulerExactConcurrency pins the conflict-graph
// concurrency on a 4-node line topology — two pairs 1 km apart with a
// 30 m carrier-sense range — instead of the earlier `>= 2` smoke
// assertion. One send per pair, rendezvoused at the preamble so both
// are provably in flight together: MaxConcurrent must be exactly 2.
// A third send on a pair that shares the near island must serialize
// behind it, leaving the peak untouched; and a worker budget of 1 must
// cap the peak at exactly 1 even for non-interfering pairs.
func TestNetworkSchedulerExactConcurrency(t *testing.T) {
	okMsg, _ := aquago.LookupMessage("OK?")
	line := []aquago.Position{
		{X: 0, Z: 1}, {X: 6, Z: 1}, {X: 1000, Z: 1}, {X: 1006, Z: 1},
	}
	build := func(workers int, rv *rendezvousTrace) (*aquago.Network, [4]*aquago.Node) {
		net, err := aquago.NewNetwork(aquago.Bridge,
			aquago.WithNetworkSeed(3),
			aquago.WithCSRange(30),
			aquago.WithNetworkWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		var nodes [4]*aquago.Node
		for i, pos := range line {
			var nopts []aquago.NodeOption
			// The rendezvous goes on the two island senders as per-node
			// traces: a network-wide trace is serialized across
			// exchanges (OnStage never runs concurrently with itself),
			// so blocking inside it would itself forbid the overlap
			// this test must observe.
			if rv != nil && (i == 1 || i == 3) {
				nopts = append(nopts, aquago.WithNodeTrace(rv))
			}
			nd, err := net.Join(aquago.DeviceID(i), pos, nopts...)
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = nd
		}
		return net, nodes
	}
	send := func(wg *sync.WaitGroup, tx, rx *aquago.Node) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := tx.Send(context.Background(), rx.ID(), okMsg.ID); err != nil {
				t.Errorf("node %d send: %v", tx.ID(), err)
			}
		}()
	}

	// Two non-interfering islands, forced to overlap: exactly 2.
	rv := newRendezvous(t, 2)
	net, nodes := build(4, rv)
	var wg sync.WaitGroup
	send(&wg, nodes[1], nodes[0])
	send(&wg, nodes[3], nodes[2])
	wg.Wait()
	if got := net.SchedulerStats().MaxConcurrent; got != 2 {
		t.Fatalf("two isolated pairs: MaxConcurrent = %d, want exactly 2", got)
	}

	// Adding a conflicting send on the near island must not raise the
	// peak: it shares node 0, so the scheduler serializes it even
	// though worker slots are free. The rendezvous only gates the two
	// island sends' first attempt (need=2; later arrivals pass a
	// closed channel immediately).
	rv = newRendezvous(t, 2)
	net, nodes = build(4, rv)
	wg = sync.WaitGroup{}
	send(&wg, nodes[1], nodes[0])
	send(&wg, nodes[3], nodes[2])
	send(&wg, nodes[0], nodes[1])
	wg.Wait()
	st := net.SchedulerStats()
	if st.MaxConcurrent != 2 {
		t.Fatalf("island pair + conflicting send: MaxConcurrent = %d, want exactly 2 (%+v)", st.MaxConcurrent, st)
	}
	if st.Granted != 3 || st.Committed != 3 {
		t.Fatalf("granted/committed = %d/%d, want 3/3 (%+v)", st.Granted, st.Committed, st)
	}

	// One worker slot serializes even non-interfering pairs. No
	// rendezvous here: gating both exchanges to overlap would deadlock
	// the single slot by construction.
	net, nodes = build(1, nil)
	wg = sync.WaitGroup{}
	send(&wg, nodes[1], nodes[0])
	send(&wg, nodes[3], nodes[2])
	wg.Wait()
	if got := net.SchedulerStats().MaxConcurrent; got != 1 {
		t.Fatalf("workers=1: MaxConcurrent = %d, want exactly 1", got)
	}
}

// TestNetworkExchangeProbeAndAirtime: every committed attempt must be
// probed with its endpoints and actual airtime, and the probe total
// must reconcile exactly with SchedulerStats.AirtimeS.
func TestNetworkExchangeProbeAndAirtime(t *testing.T) {
	var mu sync.Mutex
	var events []aquago.ExchangeEvent
	net, _, a, b := buildTriangle(t, 3, aquago.WithExchangeProbe(func(ev aquago.ExchangeEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))
	concurrentSends(t, a, b)
	st := net.SchedulerStats()
	if st.Committed != 2 || len(events) != 2 {
		t.Fatalf("committed %d, probed %d events, want 2 and 2", st.Committed, len(events))
	}
	var total float64
	for _, ev := range events {
		if ev.AirtimeS <= 0 {
			t.Fatalf("probe reported non-positive airtime: %+v", ev)
		}
		if ev.Rx != 0 || (ev.Tx != a.ID() && ev.Tx != b.ID()) {
			t.Fatalf("probe endpoints wrong: %+v", ev)
		}
		total += ev.AirtimeS
	}
	if math.Abs(total-st.AirtimeS) > 1e-12 {
		t.Fatalf("probe airtime total %g != SchedulerStats.AirtimeS %g", total, st.AirtimeS)
	}
}

// TestNetworkSIRProbe: waveform mode must report per-window powers — a
// clean exchange has positive signal power and zero interference
// (SIRdB +Inf), a forced overlap a finite SIR on the corrupted
// windows; envelope mode must never fire the probe.
func TestNetworkSIRProbe(t *testing.T) {
	okMsg, _ := aquago.LookupMessage("OK?")
	run := func(mode aquago.ContentionMode, overlap bool) []aquago.SIRSample {
		var mu sync.Mutex
		var samples []aquago.SIRSample
		opts := []aquago.NetworkOption{
			aquago.WithNetworkSeed(3),
			aquago.WithContentionMode(mode),
			aquago.WithNetworkRetries(0),
			aquago.WithSIRProbe(func(s aquago.SIRSample) {
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}),
		}
		if overlap {
			opts = append(opts, aquago.WithoutCarrierSense())
		}
		net, err := aquago.NewNetwork(aquago.Bridge, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
			t.Fatal(err)
		}
		a, err := net.Join(1, aquago.Position{X: 5, Z: 1}, aquago.WithNodeClock(0))
		if err != nil {
			t.Fatal(err)
		}
		b, err := net.Join(2, aquago.Position{X: -4, Y: 3, Z: 1}, aquago.WithNodeClock(0))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if _, err := a.Send(ctx, 0, okMsg.ID); err != nil && !errors.Is(err, aquago.ErrNoACK) {
			t.Fatal(err)
		}
		if overlap {
			if _, err := b.Send(ctx, 0, okMsg.ID); err != nil && !errors.Is(err, aquago.ErrNoACK) {
				t.Fatal(err)
			}
		}
		return samples
	}

	if got := run(aquago.EnvelopeContention, false); len(got) != 0 {
		t.Fatalf("envelope mode fired %d SIR samples, want 0", len(got))
	}
	clean := run(aquago.WaveformContention, false)
	if len(clean) == 0 {
		t.Fatal("waveform mode fired no SIR samples")
	}
	for _, s := range clean {
		if s.SignalPower <= 0 {
			t.Fatalf("clean window without signal power: %+v", s)
		}
		if s.InterferencePower != 0 || !math.IsInf(s.SIRdB(), 1) {
			t.Fatalf("clean window reports interference: %+v", s)
		}
	}
	mixed := run(aquago.WaveformContention, true)
	sawInterference := false
	for _, s := range mixed {
		if s.InterferencePower > 0 {
			sawInterference = true
			if db := s.SIRdB(); math.IsInf(db, 0) || math.IsNaN(db) {
				t.Fatalf("overlapped window has degenerate SIR: %+v", s)
			}
		}
	}
	if !sawInterference {
		t.Fatal("forced overlap produced no window with interference power")
	}
}

// TestNetworkScopedFrontierCountsCrossTimeCollisions: with a finite
// carrier-sense range, an out-of-range pair keeps its own virtual
// timeline — a lagging sender may legitimately transmit at a virtual
// time another island has long simulated past, and the envelope ledger
// (pinned by the minimum prune horizon, not the fastest island's
// frontier) must still count the resulting transmitter-side collision.
func TestNetworkScopedFrontierCountsCrossTimeCollisions(t *testing.T) {
	net, err := aquago.NewNetwork(aquago.Bridge,
		aquago.WithNetworkSeed(3),
		aquago.WithCSRange(30),
		aquago.WithoutCarrierSense(),
		aquago.WithNetworkRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	var nodes [4]*aquago.Node
	for i, pos := range []aquago.Position{
		{X: 0, Z: 1}, {X: 5, Z: 1}, {X: 1000, Z: 1}, {X: 1005, Z: 1},
	} {
		nd, err := net.Join(aquago.DeviceID(i), pos, aquago.WithNodeClock(0))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	okMsg, _ := aquago.LookupMessage("OK?")
	ctx := context.Background()
	// The near island races ahead: three packets, virtual seconds of
	// traffic, several prune opportunities.
	for i := 0; i < 3; i++ {
		if _, err := nodes[1].Send(ctx, 0, okMsg.ID); err != nil {
			t.Fatal(err)
		}
	}
	// The far island's first packet starts at virtual 0 — out of
	// carrier-sense range, its frontier was never bumped — overlapping
	// the near island's first packet in virtual time.
	if _, err := nodes[3].Send(ctx, 2, okMsg.ID); err != nil {
		t.Fatal(err)
	}
	per, frac := net.CollisionStats()
	if got := per[3]; got != [2]int{1, 1} {
		t.Fatalf("far sender counts %v, want [1 1] (its packet overlaps the prune-resistant ledger)", got)
	}
	if got := per[1]; got[0] != 1 || got[1] != 3 {
		t.Fatalf("near sender counts %v, want 1 of 3 collided", got)
	}
	if want := 2.0 / 4.0; frac != want {
		t.Fatalf("collision fraction %g, want %g", frac, want)
	}
}
