package aquago

import (
	"sync"

	"aquago/internal/app"
	"aquago/internal/channel"
	"aquago/internal/modem"
	"aquago/internal/phy"
)

// WaterOption customizes SimulatedWater.
type WaterOption func(*channel.LinkParams)

// AtDistance sets the horizontal transmitter-receiver distance in
// meters (default 5).
func AtDistance(m float64) WaterOption {
	return func(p *channel.LinkParams) { p.DistanceM = m }
}

// AtDepth sets both devices' depth in meters (default 1).
func AtDepth(m float64) WaterOption {
	return func(p *channel.LinkParams) { p.TxDepthM, p.RxDepthM = m, m }
}

// WithDevices selects the transmitting and receiving device models.
func WithDevices(tx, rx Device) WaterOption {
	return func(p *channel.LinkParams) { p.TxDevice, p.RxDevice = tx, rx }
}

// WithMotion applies a motion model (Static, SlowMotion, FastMotion).
func WithMotion(m Motion) WaterOption {
	return func(p *channel.LinkParams) { p.Motion = m }
}

// WithOrientation sets the azimuth offset in degrees between the
// devices (0 = facing each other).
func WithOrientation(deg float64) WaterOption {
	return func(p *channel.LinkParams) { p.OrientationDeg = deg }
}

// WithHardCase encloses the devices in the 15 m-rated hard case
// instead of the soft pouch.
func WithHardCase() WaterOption {
	return func(p *channel.LinkParams) { p.Casing = channel.CasingHardCase }
}

// WithSeed fixes the random realization (default 1).
func WithSeed(seed int64) WaterOption {
	return func(p *channel.LinkParams) { p.Seed = seed }
}

// SimulatedWater builds a Medium that behaves like the given
// environment: multipath from the site geometry, device frequency
// responses, ambient noise and optional motion. It is the stand-in
// for real water that every experiment in this repository runs on.
func SimulatedWater(env Environment, opts ...WaterOption) (Medium, error) {
	p := channel.LinkParams{Env: env, Seed: 1}
	for _, o := range opts {
		o(&p)
	}
	return phy.NewChannelMedium(p)
}

// SwapDirection returns the same water seen from the other end: its
// Forward is the original's Backward. Two peers sharing one simulated
// medium should each talk over their own view.
func SwapDirection(m Medium) Medium { return swappedMedium{m} }

type swappedMedium struct{ inner Medium }

func (s swappedMedium) Forward(tx []float64, atS float64) []float64 {
	return s.inner.Backward(tx, atS)
}

func (s swappedMedium) Backward(tx []float64, atS float64) []float64 {
	return s.inner.Forward(tx, atS)
}

// Session runs the full adaptive protocol (preamble, SNR estimation,
// band adaptation, feedback, data, ACK with retransmission) between
// two endpoints over a Medium. It is the 2-node special case of the
// Network/Node surface: the same protocol stack without geometry or a
// MAC (see Node.MediumTo for running a Session over a network pair).
//
// A Session is safe for concurrent use; a mutex serializes sends, so
// concurrent callers queue rather than interleave on the virtual
// clock.
type Session struct {
	mu    sync.Mutex
	proto *phy.Protocol
	msgr  *app.Messenger
	clock float64
}

// Dial creates a session for the local device ID.
func Dial(self DeviceID) (*Session, error) {
	m, err := modem.New(modem.DefaultConfig())
	if err != nil {
		return nil, err
	}
	proto := phy.New(m, phy.Options{})
	return &Session{proto: proto, msgr: app.NewMessenger(proto, self)}, nil
}

// SendResult is re-exported from the messaging layer.
type SendResult = app.SendResult

// SetTrace installs (or, with nil, removes) a per-stage observer on
// the session's protocol exchanges. See the Trace interface.
func (s *Session) SetTrace(t Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.proto.SetStageHook(stageHook(t))
}

// Send delivers one or two codebook messages to dst over the medium,
// retrying on missing ACKs. The session keeps a virtual clock so
// consecutive sends see an evolving channel.
//
// Errors wrap the public taxonomy (errors.Is): ErrBadMessage for IDs
// outside the codebook, ErrNoACK when every attempt went
// unacknowledged — the returned SendResult still reports what the
// attempts achieved (Delivered can be true with only the ACK lost).
func (s *Session) Send(med Medium, dst DeviceID, first, second uint8) (SendResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.msgr.Send(med, dst, first, second, s.clock)
	// Advance the clock past whatever made it onto the air, ACKed or
	// not (approximate airtime).
	s.clock += float64(res.Attempts) * (s.proto.PacketAirtimeS(res.Last.Band) + 0.25)
	return res, err
}

// Exchange runs a single adaptive packet exchange without the
// messaging layer (full per-stage result access).
func (s *Session) Exchange(med Medium, pkt Packet) (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.proto.Exchange(med, pkt, s.clock)
	if err != nil {
		return res, err
	}
	s.clock += s.proto.PacketAirtimeS(res.Band) + 0.25
	return res, nil
}

// Beacon is the long-range FSK SoS transmitter/receiver.
type Beacon = phy.Beacon

// NewBeacon returns a beacon codec at 5, 10 or 20 bps.
func NewBeacon(bitRate int) (*Beacon, error) { return phy.NewBeacon(bitRate) }

// NoMessage is the second-slot filler for single-message packets.
const NoMessage = app.NoMessage
