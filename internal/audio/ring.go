package audio

import (
	"errors"
	"sync"
)

// Ring is a thread-safe ring buffer of audio samples, the hand-off
// structure between a capture goroutine and the modem's continuous
// preamble detector (which on the phone runs in real time against the
// microphone stream).
type Ring struct {
	mu    sync.Mutex
	buf   []float64
	start int // index of the oldest sample
	size  int // samples currently stored
	total int64
}

// NewRing allocates a ring holding up to capacity samples.
func NewRing(capacity int) (*Ring, error) {
	if capacity <= 0 {
		return nil, errors.New("audio: ring capacity must be positive")
	}
	return &Ring{buf: make([]float64, capacity)}, nil
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of buffered samples.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Total returns the count of samples ever written (stream position).
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Write appends samples, overwriting the oldest data when full.
func (r *Ring) Write(samples []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range samples {
		idx := (r.start + r.size) % len(r.buf)
		if r.size == len(r.buf) {
			// Overwrite oldest.
			r.buf[r.start] = s
			r.start = (r.start + 1) % len(r.buf)
		} else {
			r.buf[idx] = s
			r.size++
		}
	}
	r.total += int64(len(samples))
}

// Read copies up to len(dst) of the oldest samples into dst and
// consumes them, returning the count.
func (r *Ring) Read(dst []float64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := min(len(dst), r.size)
	for i := 0; i < n; i++ {
		dst[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	r.start = (r.start + n) % len(r.buf)
	r.size -= n
	return n
}

// Peek copies up to len(dst) of the oldest samples without consuming
// them.
func (r *Ring) Peek(dst []float64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := min(len(dst), r.size)
	for i := 0; i < n; i++ {
		dst[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return n
}

// Discard drops up to n oldest samples, returning how many were
// dropped (the detector advances past scanned audio this way).
func (r *Ring) Discard(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.size {
		n = r.size
	}
	r.start = (r.start + n) % len(r.buf)
	r.size -= n
	return n
}
