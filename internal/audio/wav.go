// Package audio provides the sample-level I/O substrate: PCM16 WAV
// reading and writing (so waveforms can round-trip through files and
// external tools), float/int16 conversion with clipping, and a ring
// buffer for streaming receivers.
package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// WriteWAV writes mono float64 samples in [-1, 1] as a 16-bit PCM WAV.
// Samples outside the range are clipped.
func WriteWAV(w io.Writer, samples []float64, sampleRate int) error {
	if sampleRate <= 0 {
		return errors.New("audio: non-positive sample rate")
	}
	dataLen := uint32(len(samples) * 2)
	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], 36+dataLen)
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16)           // fmt chunk size
	binary.LittleEndian.PutUint16(hdr[20:22], 1)            // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], 1)            // mono
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(sampleRate))
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(sampleRate*2)) // byte rate
	binary.LittleEndian.PutUint16(hdr[32:34], 2)                    // block align
	binary.LittleEndian.PutUint16(hdr[34:36], 16)                   // bits per sample
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], dataLen)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 2*len(samples))
	for i, s := range samples {
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(FloatToPCM16(s)))
	}
	_, err := w.Write(buf)
	return err
}

// ReadWAV reads a 16-bit PCM WAV; multi-channel files are downmixed
// to mono by averaging. It returns the samples (scaled to [-1, 1])
// and the sample rate.
func ReadWAV(r io.Reader) ([]float64, int, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("audio: short RIFF header: %w", err)
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" {
		return nil, 0, errors.New("audio: not a RIFF/WAVE file")
	}
	var (
		sampleRate int
		channels   int
		bits       int
		data       []byte
	)
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			return nil, 0, err
		}
		size := binary.LittleEndian.Uint32(chunk[4:8])
		body := make([]byte, size+size%2) // chunks are word aligned
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, 0, fmt.Errorf("audio: truncated chunk %q: %w", chunk[0:4], err)
		}
		switch string(chunk[0:4]) {
		case "fmt ":
			if size < 16 {
				return nil, 0, errors.New("audio: malformed fmt chunk")
			}
			format := binary.LittleEndian.Uint16(body[0:2])
			if format != 1 {
				return nil, 0, fmt.Errorf("audio: unsupported WAV format %d (want PCM)", format)
			}
			channels = int(binary.LittleEndian.Uint16(body[2:4]))
			sampleRate = int(binary.LittleEndian.Uint32(body[4:8]))
			bits = int(binary.LittleEndian.Uint16(body[14:16]))
		case "data":
			data = body[:size]
		}
	}
	if sampleRate == 0 || data == nil {
		return nil, 0, errors.New("audio: missing fmt or data chunk")
	}
	if bits != 16 {
		return nil, 0, fmt.Errorf("audio: unsupported bit depth %d (want 16)", bits)
	}
	if channels < 1 {
		return nil, 0, errors.New("audio: zero channels")
	}
	frames := len(data) / (2 * channels)
	out := make([]float64, frames)
	for f := 0; f < frames; f++ {
		var acc float64
		for c := 0; c < channels; c++ {
			v := int16(binary.LittleEndian.Uint16(data[2*(f*channels+c):]))
			acc += PCM16ToFloat(v)
		}
		out[f] = acc / float64(channels)
	}
	return out, sampleRate, nil
}

// WriteWAVFile writes samples to a WAV file at path.
func WriteWAVFile(path string, samples []float64, sampleRate int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteWAV(f, samples, sampleRate); err != nil {
		return err
	}
	return f.Close()
}

// ReadWAVFile reads a WAV file from path.
func ReadWAVFile(path string) ([]float64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadWAV(f)
}

// FloatToPCM16 converts a [-1, 1] sample to int16 with clipping.
func FloatToPCM16(s float64) int16 {
	if math.IsNaN(s) {
		return 0
	}
	v := math.Round(s * 32767)
	if v > 32767 {
		v = 32767
	}
	if v < -32768 {
		v = -32768
	}
	return int16(v)
}

// PCM16ToFloat converts an int16 sample to [-1, 1].
func PCM16ToFloat(v int16) float64 { return float64(v) / 32767 }
