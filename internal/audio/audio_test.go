package audio

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestWAVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	samples := make([]float64, 4801) // odd length exercises padding
	for i := range samples {
		samples[i] = 0.8 * math.Sin(2*math.Pi*440*float64(i)/48000*(1+0.2*rng.Float64()))
	}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, samples, 48000); err != nil {
		t.Fatal(err)
	}
	got, rate, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 48000 {
		t.Fatalf("rate %d", rate)
	}
	if len(got) != len(samples) {
		t.Fatalf("length %d, want %d", len(got), len(samples))
	}
	for i := range samples {
		if math.Abs(got[i]-samples[i]) > 1.0/32767*1.01 {
			t.Fatalf("sample %d: %g vs %g", i, got[i], samples[i])
		}
	}
}

func TestWAVRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	f := func(raw []float64) bool {
		samples := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			samples[i] = math.Mod(v, 1) // keep in [-1,1)
		}
		var buf bytes.Buffer
		if err := WriteWAV(&buf, samples, 48000); err != nil {
			return false
		}
		got, _, err := ReadWAV(&buf)
		if err != nil || len(got) != len(samples) {
			return false
		}
		for i := range samples {
			if math.Abs(got[i]-samples[i]) > 1.0/32767*1.01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestWAVClipping(t *testing.T) {
	samples := []float64{2.5, -3.0, math.NaN()}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, samples, 8000); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] < 0.99 || got[1] > -0.99 {
		t.Fatalf("clipping failed: %v", got)
	}
	if got[2] != 0 {
		t.Fatalf("NaN should map to 0, got %g", got[2])
	}
}

func TestWAVRejectsGarbage(t *testing.T) {
	if _, _, err := ReadWAV(bytes.NewReader([]byte("not a wav file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := WriteWAV(&bytes.Buffer{}, []float64{0}, 0); err == nil {
		t.Fatal("zero sample rate accepted")
	}
}

func TestWAVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "probe.wav")
	samples := []float64{0, 0.5, -0.5, 1, -1}
	if err := WriteWAVFile(path, samples, 44100); err != nil {
		t.Fatal(err)
	}
	got, rate, err := ReadWAVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 44100 || len(got) != len(samples) {
		t.Fatalf("rate %d len %d", rate, len(got))
	}
}

func TestPCMConversion(t *testing.T) {
	if FloatToPCM16(1) != 32767 || FloatToPCM16(-1) != -32767 {
		t.Fatal("unit conversion")
	}
	if FloatToPCM16(0) != 0 {
		t.Fatal("zero conversion")
	}
	if FloatToPCM16(100) != 32767 || FloatToPCM16(-100) != -32768 {
		t.Fatal("clipping")
	}
	if v := PCM16ToFloat(32767); math.Abs(v-1) > 1e-12 {
		t.Fatalf("PCM16ToFloat(32767) = %g", v)
	}
}

func TestRingBasics(t *testing.T) {
	r, err := NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 8 || r.Len() != 0 {
		t.Fatal("fresh ring state")
	}
	r.Write([]float64{1, 2, 3})
	if r.Len() != 3 || r.Total() != 3 {
		t.Fatal("write accounting")
	}
	dst := make([]float64, 2)
	if n := r.Read(dst); n != 2 || dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("read %d %v", n, dst)
	}
	if r.Len() != 1 {
		t.Fatal("consume accounting")
	}
	if _, err := NewRing(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestRingOverwriteOldest(t *testing.T) {
	r, _ := NewRing(4)
	r.Write([]float64{1, 2, 3, 4, 5, 6}) // 1, 2 overwritten
	dst := make([]float64, 4)
	if n := r.Read(dst); n != 4 {
		t.Fatalf("read %d", n)
	}
	want := []float64{3, 4, 5, 6}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("got %v want %v", dst, want)
		}
	}
}

func TestRingPeekAndDiscard(t *testing.T) {
	r, _ := NewRing(8)
	r.Write([]float64{1, 2, 3, 4})
	dst := make([]float64, 2)
	if n := r.Peek(dst); n != 2 || dst[0] != 1 {
		t.Fatal("peek")
	}
	if r.Len() != 4 {
		t.Fatal("peek must not consume")
	}
	if n := r.Discard(3); n != 3 {
		t.Fatal("discard count")
	}
	if n := r.Discard(10); n != 1 {
		t.Fatalf("over-discard returned %d", n)
	}
}

func TestRingConcurrency(t *testing.T) {
	r, _ := NewRing(1024)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			r.Write(make([]float64, 64))
		}
	}()
	go func() {
		defer wg.Done()
		dst := make([]float64, 128)
		for i := 0; i < 100; i++ {
			r.Read(dst)
		}
	}()
	wg.Wait()
	if r.Total() != 6400 {
		t.Fatalf("total %d", r.Total())
	}
}
