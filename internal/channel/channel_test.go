package channel

import (
	"math"
	"math/rand"
	"testing"

	"aquago/internal/dsp"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestEnvironmentPresets(t *testing.T) {
	envs := Environments()
	if len(envs) != 6 {
		t.Fatalf("want the paper's 6 sites, got %d", len(envs))
	}
	names := map[string]bool{}
	for _, e := range envs {
		if e.DepthM <= 0 || e.MaxRangeM <= 0 {
			t.Errorf("%s: non-positive geometry", e.Name)
		}
		if e.SurfaceReflect >= 0 {
			t.Errorf("%s: surface reflection must be negative (pressure release)", e.Name)
		}
		if e.BottomReflect <= 0 || e.BottomReflect >= 1 {
			t.Errorf("%s: bottom reflection %g out of (0,1)", e.Name, e.BottomReflect)
		}
		names[e.Name] = true
	}
	// Paper-stated depths.
	if Lake.DepthM != 5 || Museum.DepthM != 9 || Bay.DepthM != 15 {
		t.Error("lake/museum/bay depths must be 5/9/15 m")
	}
	if Beach.MaxRangeM < 100 {
		t.Error("beach must support the 100+ m range experiments")
	}
	// Bridge is the quiet reference; lake is the noisiest (9 dB spread
	// per Fig 4b).
	if Bridge.NoiseDB != 0 || Lake.NoiseDB != 9 {
		t.Error("noise calibration: bridge 0 dB, lake 9 dB")
	}
	if _, ok := ByName("lake"); !ok {
		t.Error("ByName(lake) failed")
	}
	if _, ok := ByName("atlantis"); ok {
		t.Error("ByName should reject unknown sites")
	}
}

func TestThorpAbsorption(t *testing.T) {
	// Known shape: tiny at modem frequencies, growing with f^2.
	a1 := ThorpAbsorptionDB(1000)
	a4 := ThorpAbsorptionDB(4000)
	a100 := ThorpAbsorptionDB(100000)
	if a1 <= 0 || a4 <= a1 || a100 <= a4 {
		t.Fatalf("absorption not increasing: %g %g %g", a1, a4, a100)
	}
	if a4 > 1 {
		t.Fatalf("4 kHz absorption %g dB/km implausible (should be < 1)", a4)
	}
	// At 113 m and 4 kHz, absorption is negligible (< 0.1 dB) —
	// the premise for treating the in-band response as delay+gain.
	if loss := ThorpAbsorptionDB(4000) * 113 / 1000; loss > 0.1 {
		t.Fatalf("in-band absorption over 113 m = %g dB", loss)
	}
}

func TestSpreadingLoss(t *testing.T) {
	if SpreadingLossDB(1) != 0 {
		t.Error("reference distance 1 m should be 0 dB")
	}
	if math.Abs(SpreadingLossDB(10)-15) > 1e-9 {
		t.Errorf("10 m practical spreading = %g, want 15 dB", SpreadingLossDB(10))
	}
	if SpreadingLossDB(0.5) != 0 {
		t.Error("sub-meter distances clamp to the reference")
	}
}

func TestImagePathsStructure(t *testing.T) {
	g := Geometry{Env: Lake, DistanceM: 10, TxDepthM: 1, RxDepthM: 1}
	paths := g.ImagePaths(3)
	if len(paths) != 16 { // 4 families * 4 cycles
		t.Fatalf("path count %d, want 16", len(paths))
	}
	direct := paths[0]
	if math.Abs(direct.LengthM-10) > 1e-9 {
		t.Fatalf("direct path length %g, want 10", direct.LengthM)
	}
	if direct.Surface != 0 || direct.Bottom != 0 {
		t.Fatal("first path must be the direct one")
	}
	// The direct path must be the strongest; all paths weaker.
	for i, p := range paths[1:] {
		if math.Abs(p.Gain) > math.Abs(direct.Gain) {
			t.Fatalf("path %d stronger than direct", i+1)
		}
		if p.LengthM < direct.LengthM {
			t.Fatalf("path %d shorter than direct", i+1)
		}
	}
	// Surface-only bounce flips sign (negative reflection coefficient).
	for _, p := range paths {
		if p.Surface == 1 && p.Bottom == 0 && p.Gain >= 0 {
			t.Fatal("single surface bounce must invert phase")
		}
	}
}

func TestImpulseResponseDeterministic(t *testing.T) {
	g := Geometry{Env: Lake, DistanceM: 5, TxDepthM: 1, RxDepthM: 1}
	p := ImpulseResponseParams{SampleRate: 48000, Scatter: Lake.Scatter}
	h1 := g.ImpulseResponse(p, newRand(7))
	h2 := g.ImpulseResponse(p, newRand(7))
	if len(h1) != len(h2) {
		t.Fatal("same seed, different lengths")
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("same seed, different impulse responses")
		}
	}
	h3 := g.ImpulseResponse(p, newRand(8))
	same := true
	for i := 0; i < min(len(h1), len(h3)); i++ {
		if h1[i] != h3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical scatter tails")
	}
}

func TestImpulseResponseFrequencySelective(t *testing.T) {
	// Multipath must carve notches: the channel magnitude across
	// 1-4 kHz should vary by >= 10 dB (paper: 10-20 dB within a few
	// kHz).
	g := Geometry{Env: Lake, DistanceM: 10, TxDepthM: 1, RxDepthM: 1}
	h := g.ImpulseResponse(ImpulseResponseParams{SampleRate: 48000, Scatter: 0.5}, newRand(3))
	spec := dsp.FFTReal(padTo(h, 4800))
	var lo, hi = math.Inf(1), math.Inf(-1)
	for bin := 100; bin < 400; bin++ { // 1-4 kHz at 10 Hz resolution
		mag := math.Sqrt(dsp.CAbs2(spec[bin]))
		lo = math.Min(lo, mag)
		hi = math.Max(hi, mag)
	}
	rangeDB := dsp.AmpDB(hi / math.Max(lo, 1e-12))
	if rangeDB < 10 {
		t.Fatalf("frequency selectivity only %g dB, want >= 10", rangeDB)
	}
}

func TestImpulseResponseScatterAddsDiffuseEnergy(t *testing.T) {
	g := Geometry{Env: Lake, DistanceM: 10, TxDepthM: 1, RxDepthM: 1}
	clean := g.ImpulseResponse(ImpulseResponseParams{SampleRate: 48000, Scatter: 0}, newRand(4))
	rich := g.ImpulseResponse(ImpulseResponseParams{SampleRate: 48000, Scatter: 0.9}, newRand(4))
	// Diffuse reverberation perturbs the response between the discrete
	// arrivals: the difference signal must carry energy.
	n := min(len(clean), len(rich))
	var diffE float64
	for i := 0; i < n; i++ {
		d := rich[i] - clean[i]
		diffE += d * d
	}
	if diffE <= 0 {
		t.Fatalf("scatter added no diffuse component (diff energy %g)", diffE)
	}
}

func padTo(x []float64, n int) []float64 {
	if len(x) >= n {
		return x[:n]
	}
	out := make([]float64, n)
	copy(out, x)
	return out
}

func TestDeviceResponsesBandlimitedAndDistinct(t *testing.T) {
	for _, d := range Devices() {
		f := d.TxFilter(48000)
		mid := f.Gain(2000, 48000)
		low := f.Gain(150, 48000)
		high := f.Gain(8000, 48000)
		if mid <= 0 {
			t.Fatalf("%s: no passband gain", d.Name)
		}
		if low > mid/3 {
			t.Errorf("%s: low-frequency leakage %g vs mid %g", d.Name, low, mid)
		}
		if high > mid/3 {
			t.Errorf("%s: response above 4 kHz should diminish: %g vs %g", d.Name, high, mid)
		}
	}
	// Distinct devices must have distinct notch structure (Fig 3a).
	a := GalaxyS9.TxFilter(48000)
	b := Pixel4.TxFilter(48000)
	var diff float64
	for _, f := range []float64{1200, 1800, 2400, 3000, 3600} {
		diff += math.Abs(dsp.AmpDB(a.Gain(f, 48000)+1e-12) - dsp.AmpDB(b.Gain(f, 48000)+1e-12))
	}
	if diff < 3 {
		t.Fatalf("device responses too similar: total |diff| %g dB", diff)
	}
	// Determinism: same device, same curve.
	a2 := GalaxyS9.TxFilter(48000)
	for i := range a.Taps {
		if a.Taps[i] != a2.Taps[i] {
			t.Fatal("device response not deterministic")
		}
	}
	if _, ok := DeviceByName("galaxy-s9"); !ok {
		t.Error("DeviceByName failed")
	}
	if _, ok := DeviceByName("nokia-3310"); ok {
		t.Error("DeviceByName should reject unknown devices")
	}
}

func TestWatchWeakerThanPhone(t *testing.T) {
	if GalaxyWatch4.TxLevelDB >= GalaxyS9.TxLevelDB {
		t.Fatal("watch should transmit at lower level than phone")
	}
}

func TestCasingLoss(t *testing.T) {
	for _, f := range []float64{1000, 2500, 4000} {
		soft := CasingSoftPouch.GainDB(f)
		hard := CasingHardCase.GainDB(f)
		if hard >= soft {
			t.Fatalf("hard case must lose more than soft pouch at %g Hz: %g vs %g", f, hard, soft)
		}
	}
	// Hard case tilts against high frequencies.
	if CasingHardCase.GainDB(4000) >= CasingHardCase.GainDB(1500) {
		t.Fatal("hard case should attenuate high frequencies more")
	}
	if CasingNone.GainDB(2000) != 0 {
		t.Fatal("no casing should be transparent")
	}
	for _, c := range []Casing{CasingNone, CasingSoftPouch, CasingHardCase, CasingSoftPouchAir} {
		if c.String() == "unknown" {
			t.Fatalf("casing %d missing name", c)
		}
	}
}

func TestNoiseCalibrationAndShape(t *testing.T) {
	g := NewNoiseGen(Bridge, 48000, 11)
	x := g.Generate(48000)
	bp := dsp.DesignBandpass(1000, 4000, 48000, 128, dsp.Hamming)
	inBand := dsp.RMS(bp.Filter(x)[256:])
	if math.Abs(inBand-g.InBandRMS()) > 0.3*g.InBandRMS() {
		t.Fatalf("in-band RMS %g, target %g", inBand, g.InBandRMS())
	}
	// Fig 4: noise is strongest below 1 kHz.
	sp := dsp.WelchPSD(x, 2048, 48000, dsp.Hann)
	lowDensity := sp.BandPower(100, 900) / 800
	midDensity := sp.BandPower(1500, 3500) / 2000
	if lowDensity < 2*midDensity {
		t.Fatalf("low-frequency noise density %g not dominant over mid %g", lowDensity, midDensity)
	}
}

func TestNoiseLevelsAcrossEnvironments(t *testing.T) {
	bridge := NewNoiseGen(Bridge, 48000, 5)
	lake := NewNoiseGen(Lake, 48000, 5)
	// 9 dB difference per Fig 4b.
	ratio := dsp.AmpDB(lake.InBandRMS() / bridge.InBandRMS())
	if math.Abs(ratio-9) > 0.5 {
		t.Fatalf("lake vs bridge noise = %g dB, want 9", ratio)
	}
}
