package channel

import (
	"math"
	"math/rand"

	"aquago/internal/dsp"
)

// Path is one propagation path between transmitter and receiver.
type Path struct {
	// LengthM is the geometric path length in meters.
	LengthM float64
	// DelayS is the propagation delay in seconds.
	DelayS float64
	// Gain is the (possibly negative) amplitude coefficient after
	// spreading loss, absorption at band center, and boundary
	// reflection losses.
	Gain float64
	// Surface and Bottom count boundary interactions.
	Surface, Bottom int
}

// Geometry positions one link inside an environment.
type Geometry struct {
	Env Environment
	// DistanceM is the horizontal transmitter-receiver distance.
	DistanceM float64
	// TxDepthM and RxDepthM are device depths below the surface.
	TxDepthM, RxDepthM float64
}

// ImagePaths enumerates multipath arrivals with the image method for
// a shallow-water waveguide bounded by the pressure-release surface
// and a lossy bottom. maxOrder bounds the number of boundary-bounce
// cycles (4 path families per cycle, as in Jensen et al.,
// Computational Ocean Acoustics §3).
func (g Geometry) ImagePaths(maxOrder int) []Path {
	d := g.Env.DepthM
	zs, zr := g.TxDepthM, g.RxDepthM
	r := g.DistanceM
	rs, rb := g.Env.SurfaceReflect, g.Env.BottomReflect
	var paths []Path
	add := func(z float64, nSurf, nBot int) {
		l := math.Hypot(r, z)
		if l < 0.1 {
			l = 0.1
		}
		gain := math.Pow(math.Abs(rs), float64(nSurf)) * math.Pow(rb, float64(nBot))
		if nSurf%2 == 1 && rs < 0 {
			gain = -gain
		}
		// Practical spreading (15 log10) on amplitude plus Thorp
		// absorption at the 2.5 kHz band center.
		gain *= dsp.AmpFromDB(-PathLossDB(l, 2500))
		paths = append(paths, Path{
			LengthM: l,
			DelayS:  l / SoundSpeed,
			Gain:    gain,
			Surface: nSurf,
			Bottom:  nBot,
		})
	}
	for n := 0; n <= maxOrder; n++ {
		dn := 2 * float64(n) * d
		// The four image families of cycle n.
		add(dn+(zr-zs), n, n)
		add(dn+(zr+zs), n+1, n)
		add(2*float64(n+1)*d-(zr+zs), n, n+1)
		add(2*float64(n+1)*d-(zr-zs), n+1, n+1)
	}
	return paths
}

// ImpulseResponseParams tunes discrete impulse response synthesis.
type ImpulseResponseParams struct {
	SampleRate int
	// MaxOrder is the image-method bounce limit (default 5).
	MaxOrder int
	// Scatter in [0,1] adds a diffuse exponentially-decaying
	// reverberation tail (pilings, hulls, fish).
	Scatter float64
	// ScatterDecayS is the reverb time constant (default 3 ms,
	// RT60 ~ 20 ms — typical for shallow fresh water).
	ScatterDecayS float64
	// MinGain prunes paths weaker than MinGain times the strongest.
	MinGain float64
}

// ImpulseResponse synthesizes the channel impulse response at the
// given sample rate. The bulk propagation delay of the earliest
// arrival is removed (kept in Path data and the link's Delay); tap 0
// is the first arrival. Fractional delays use 8-tap windowed-sinc
// interpolation so the spectral notches land at physically-correct
// frequencies rather than being quantized to the sample grid.
func (g Geometry) ImpulseResponse(p ImpulseResponseParams, rng *rand.Rand) []float64 {
	if p.MaxOrder <= 0 {
		p.MaxOrder = 5
	}
	if p.ScatterDecayS == 0 {
		p.ScatterDecayS = 0.003
	}
	if p.MinGain == 0 {
		p.MinGain = 1e-3
	}
	paths := g.ImagePaths(p.MaxOrder)
	if len(paths) == 0 {
		return []float64{1}
	}
	minDelay := paths[0].DelayS
	maxDelay := paths[0].DelayS
	maxGain := 0.0
	for _, pt := range paths {
		minDelay = math.Min(minDelay, pt.DelayS)
		maxDelay = math.Max(maxDelay, pt.DelayS)
		maxGain = math.Max(maxGain, math.Abs(pt.Gain))
	}
	fs := float64(p.SampleRate)
	spread := maxDelay - minDelay
	n := int(spread*fs) + 64
	if p.Scatter > 0 {
		n += int(4 * p.ScatterDecayS * fs)
	}
	h := make([]float64, n)
	const sincHalf = 8
	for _, pt := range paths {
		if math.Abs(pt.Gain) < p.MinGain*maxGain {
			continue
		}
		gain := pt.Gain
		delayS := pt.DelayS
		// Surface roughness: a wavy air-water interface scatters each
		// surface bounce slightly (amplitude and path length), so the
		// idealized image comb never cancels perfectly — without this
		// a symmetric mid-column geometry produces unphysically deep
		// deterministic notches.
		if pt.Surface > 0 && rng != nil {
			rough := float64(pt.Surface)
			gain *= 1 + 0.12*rough*rng.NormFloat64()
			delayS += 0.01 * rough * rng.NormFloat64() / SoundSpeed // ~1 cm per bounce
		}
		pos := (delayS - minDelay) * fs
		if pos < 0 {
			pos = 0
		}
		center := int(math.Floor(pos))
		frac := pos - float64(center)
		for i := -sincHalf + 1; i <= sincHalf; i++ {
			idx := center + i
			if idx < 0 || idx >= n {
				continue
			}
			x := float64(i) - frac
			w := 0.5 + 0.5*math.Cos(math.Pi*x/float64(sincHalf)) // Hann
			h[idx] += gain * sinc(x) * w
		}
	}
	// Diffuse scatter tail: white sequence with exponential decay,
	// power proportional to Scatter^2 relative to the strongest path.
	if p.Scatter > 0 && rng != nil {
		tail := int(4 * p.ScatterDecayS * fs)
		amp := 0.12 * p.Scatter * maxGain
		// Tail starts right after the first arrival cluster.
		start := 16
		for i := 0; i < tail && start+i < n; i++ {
			decay := math.Exp(-float64(i) / (p.ScatterDecayS * fs))
			h[start+i] += amp * decay * rng.NormFloat64() * 0.3
		}
	}
	// Trim trailing near-zeros.
	last := len(h) - 1
	for last > 0 && math.Abs(h[last]) < 1e-9*maxGain {
		last--
	}
	return h[:last+1]
}

func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// DirectDelayS returns the first-arrival propagation delay for the
// geometry (used by the medium simulator for absolute timing).
func (g Geometry) DirectDelayS() float64 {
	z := g.RxDepthM - g.TxDepthM
	return math.Hypot(g.DistanceM, z) / SoundSpeed
}
