package channel

import (
	"fmt"
	"math"
	"math/rand"

	"aquago/internal/dsp"
)

// Motion describes device movement during a transmission, matching
// the paper's mobility experiments (§3 "Effect of mobility"):
// accelerometer magnitudes of 2.5 and 5.1 m/s^2 for slow and fast.
type Motion struct {
	// AccelMS2 is the gravity-compensated accelerometer magnitude.
	// 0 = static (residual water motion still applies per the
	// environment's Current).
	AccelMS2 float64
	// SpeedMS is the peak relative radial speed in m/s for Doppler.
	// Zero derives a speed from AccelMS2.
	SpeedMS float64
}

// Preset motions from the paper.
var (
	Static     = Motion{}
	SlowMotion = Motion{AccelMS2: 2.5}
	FastMotion = Motion{AccelMS2: 5.1}
)

// speed returns the Doppler speed: derived from acceleration assuming
// ~0.25 s strokes when unset. The paper bounds safe diver motion at
// 1-2 m/s; its "fast" 5.1 m/s^2 maps to ~1 m/s here.
func (mo Motion) speed() float64 {
	if mo.SpeedMS > 0 {
		return mo.SpeedMS
	}
	return mo.AccelMS2 * 0.2 // 2.5 m/s^2 -> 0.5 m/s, 5.1 -> ~1 m/s
}

// coherenceS returns the approximate channel coherence time.
func (mo Motion) coherenceS(current float64) float64 {
	base := 3.0 / (1 + 15*current) // static water: seconds
	if mo.AccelMS2 > 0 {
		m := 0.9 / mo.AccelMS2 // 2.5 -> 0.36 s, 5.1 -> 0.18 s
		if m < base {
			base = m
		}
	}
	return base
}

// LinkParams configures one directed transmitter->receiver link.
type LinkParams struct {
	Env       Environment
	DistanceM float64
	// TxDepthM/RxDepthM default to 1 m (the paper's standard rig).
	TxDepthM, RxDepthM float64
	TxDevice, RxDevice Device
	// OrientationDeg is the azimuth offset between the devices'
	// speaker/mic axes: 0 = facing, 180 = opposed (Fig 15).
	OrientationDeg float64
	Casing         Casing
	Motion         Motion
	SampleRate     int
	// Seed controls the multipath realization and noise. Forward and
	// reverse links with different seeds model the paper's observed
	// non-reciprocity (Fig 3d).
	Seed int64
	// NoiseOff disables ambient noise (characterization runs).
	NoiseOff bool
}

// withDefaults fills zero fields.
func (p LinkParams) withDefaults() LinkParams {
	if p.TxDepthM == 0 {
		p.TxDepthM = 1
	}
	if p.RxDepthM == 0 {
		p.RxDepthM = 1
	}
	if p.SampleRate == 0 {
		p.SampleRate = 48000
	}
	if p.TxDevice.Name == "" {
		p.TxDevice = GalaxyS9
	}
	if p.RxDevice.Name == "" {
		p.RxDevice = GalaxyS9
	}
	if p.Env.Name == "" {
		p.Env = Lake
	}
	if p.DistanceM <= 0 {
		p.DistanceM = 5
	}
	if p.Casing == CasingNone {
		p.Casing = CasingSoftPouch
	}
	return p
}

// Link is a directed acoustic channel. It is not safe for concurrent
// use (it owns streaming filter state and an RNG).
type Link struct {
	p       LinkParams
	rng     *rand.Rand
	h       []float64 // composite static impulse response
	hAlt    []float64 // alternate realization for time variation
	conv    *dsp.OverlapAdd
	convAlt *dsp.OverlapAdd
	noise   *NoiseGen
	// orientGain scales the whole response per Fig 15's directivity.
	orientGain float64
	elapsedS   float64 // virtual time, advances with each transmit call
	// scratch buffers for the time-varying path's two realization
	// convolutions (their crossfade is consumed immediately, so the
	// intermediates never escape the link).
	scratchA, scratchB []float64
}

// NewLink builds the composite channel: device TX response -> casing
// -> water multipath -> casing -> device RX response, plus ambient
// noise injection at the receiver.
func NewLink(p LinkParams) (*Link, error) {
	p = p.withDefaults()
	if p.DistanceM <= 0 || p.SampleRate <= 0 {
		return nil, fmt.Errorf("channel: invalid link params %+v", p)
	}
	if p.TxDepthM <= 0 || p.TxDepthM >= p.Env.DepthM || p.RxDepthM <= 0 || p.RxDepthM >= p.Env.DepthM {
		return nil, fmt.Errorf("channel: depths (%g, %g) outside water column (0, %g)",
			p.TxDepthM, p.RxDepthM, p.Env.DepthM)
	}
	l := &Link{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	geo := Geometry{Env: p.Env, DistanceM: p.DistanceM, TxDepthM: p.TxDepthM, RxDepthM: p.RxDepthM}
	irp := ImpulseResponseParams{
		SampleRate: p.SampleRate,
		Scatter:    p.Env.Scatter,
	}
	water := geo.ImpulseResponse(irp, l.rng)
	// The alternate realization models how far the channel wanders
	// over one coherence interval: motion perturbs the path geometry
	// by roughly the stroke amplitude, which shifts the multipath
	// notches rather than re-randomizing the channel. Static water
	// wanders centimeters; fast hand motion tens of centimeters.
	geoAlt := geo
	geoAlt.DistanceM += 0.03 + 0.35*p.Motion.speed()
	geoAlt.TxDepthM += 0.01 + 0.1*p.Motion.speed()
	waterAlt := geoAlt.ImpulseResponse(irp, l.rng)
	// Compose with device, casing and placement responses. The
	// placement filter is seeded per link, so forward and backward
	// directions (different seeds) see different composite channels
	// even with identical device models — the paper's Fig 3d.
	chain := func(w []float64) []float64 {
		h := dsp.Convolve(w, p.TxDevice.TxFilter(p.SampleRate).Taps)
		h = dsp.Convolve(h, p.Casing.Filter(p.SampleRate).Taps)
		h = dsp.Convolve(h, p.Casing.Filter(p.SampleRate).Taps) // both ends
		h = dsp.Convolve(h, p.RxDevice.RxFilter(p.SampleRate).Taps)
		h = dsp.Convolve(h, PlacementFilter(p.SampleRate, p.Seed^0x9e3779b9).Taps)
		return trimIR(h)
	}
	l.h = chain(water)
	l.hAlt = chain(waterAlt)
	// The linear-phase filter cascade contributes ~450 samples of pure
	// bulk delay; strip it so tap 0 is the first significant arrival
	// (receivers treat bulk delay as absolute timing, handled by the
	// medium simulator). Both realizations are trimmed by the same
	// amount to preserve their relative alignment for crossfading.
	lead := leadingDead(l.h)
	if la := leadingDead(l.hAlt); la < lead {
		lead = la
	}
	l.h = l.h[lead:]
	l.hAlt = l.hAlt[lead:]
	// TX level applies flat; orientation applies as a frequency-
	// dependent filter (speaker directivity grows with frequency, so
	// facing away costs the top of the band most — Fig 15).
	gain := dsp.AmpFromDB(p.TxDevice.TxLevelDB)
	dsp.Scale(l.h, gain)
	dsp.Scale(l.hAlt, gain)
	if p.OrientationDeg != 0 {
		of := orientationFilter(p.OrientationDeg, p.SampleRate)
		l.h = trimIR(dsp.Convolve(l.h, of.Taps))
		l.hAlt = trimIR(dsp.Convolve(l.hAlt, of.Taps))
	}
	l.conv = dsp.NewOverlapAdd(l.h)
	l.convAlt = dsp.NewOverlapAdd(l.hAlt)
	if !p.NoiseOff {
		l.noise = NewNoiseGen(p.Env, p.SampleRate, p.Seed^0x5eed)
	}
	l.orientGain = orientationGain(p.OrientationDeg)
	return l, nil
}

// orientationLossDB returns the directivity loss at frequency f for
// an azimuth offset: zero when facing, growing with angle, and
// stronger at higher frequencies where the small speaker aperture is
// more directional. At 180° this is 4 dB at 1 kHz and ~12 dB at
// 4 kHz — enough to halve the paper's median bitrate (Fig 15).
func orientationLossDB(deg, fHz float64) float64 {
	rad := deg * math.Pi / 180
	angleFactor := (1 - math.Cos(rad)) / 2 // 0 at 0°, 1 at 180°
	base := 5.0
	slope := 10.0 * (fHz - 1000) / 3000
	if slope < 0 {
		slope = 0
	}
	return (base + slope) * angleFactor
}

// orientationFilter materializes the directivity loss as an FIR.
func orientationFilter(deg float64, sampleRate int) *dsp.FIR {
	const gridN = 1024
	amp := make([]float64, gridN/2+1)
	for k := range amp {
		f := float64(k) * float64(sampleRate) / gridN
		amp[k] = dsp.AmpFromDB(-orientationLossDB(deg, f))
	}
	return &dsp.FIR{Taps: firFromAmplitude(amp, 129)}
}

// orientationGain keeps the scalar view of the directivity model at
// the band center (diagnostics and tests).
func orientationGain(deg float64) float64 {
	return dsp.AmpFromDB(-orientationLossDB(deg, 2500))
}

// trimIR drops negligible trailing response samples.
func trimIR(h []float64) []float64 {
	peak := dsp.MaxAbs(h)
	if peak == 0 {
		return []float64{0}
	}
	last := len(h) - 1
	for last > 0 && math.Abs(h[last]) < 1e-4*peak {
		last--
	}
	return h[:last+1]
}

// leadingDead counts negligible leading samples (pure bulk delay).
func leadingDead(h []float64) int {
	peak := dsp.MaxAbs(h)
	if peak == 0 {
		return 0
	}
	lead := 0
	for lead < len(h)-1 && math.Abs(h[lead]) < 1e-3*peak {
		lead++
	}
	return lead
}

// ImpulseResponse returns a copy of the link's (initial) composite
// impulse response.
func (l *Link) ImpulseResponse() []float64 {
	return append([]float64(nil), l.h...)
}

// Params returns the link parameters (defaults resolved).
func (l *Link) Params() LinkParams { return l.p }

// DelaySamples returns the bulk propagation delay of the direct path
// in samples (removed from the impulse response; the medium simulator
// re-applies it for absolute timing).
func (l *Link) DelaySamples() int {
	geo := Geometry{Env: l.p.Env, DistanceM: l.p.DistanceM, TxDepthM: l.p.TxDepthM, RxDepthM: l.p.RxDepthM}
	return int(geo.DirectDelayS() * float64(l.p.SampleRate))
}

// Transmit passes tx through the channel and returns the received
// waveform (length len(tx) + len(h) - 1), including ambient noise.
// Successive calls advance the link's virtual clock, so a moving
// channel keeps drifting from call to call.
func (l *Link) Transmit(tx []float64) []float64 {
	dur := float64(len(tx)) / float64(l.p.SampleRate)
	var rx []float64
	if l.timeVarying() {
		rx = l.transmitTimeVarying(tx)
	} else {
		rx = l.conv.Apply(tx)
	}
	l.elapsedS += dur
	if l.noise != nil {
		n := l.noise.Generate(len(rx))
		dsp.Add(rx, n)
	}
	return rx
}

// TransmitAt is Transmit preceded by explicit virtual-clock control:
// it sets the link's elapsed time before transmitting (used by the
// medium simulator to keep multiple links on one timeline).
func (l *Link) TransmitAt(tx []float64, atS float64) []float64 {
	l.elapsedS = atS
	return l.Transmit(tx)
}

// timeVarying reports whether the channel changes within a packet.
func (l *Link) timeVarying() bool {
	return l.p.Motion.AccelMS2 > 0 || l.p.Env.Current > 0.05
}

// transmitTimeVarying models motion as (a) global Doppler resampling
// from the oscillating radial velocity and (b) a slow crossfade
// between two multipath realizations with period set by the coherence
// time. The crossfade phase advances with the link's virtual clock so
// consecutive packets see different channels (Fig 16).
func (l *Link) transmitTimeVarying(tx []float64) []float64 {
	fs := float64(l.p.SampleRate)
	coh := l.p.Motion.coherenceS(l.p.Env.Current)
	// Doppler: sinusoidal radial velocity, phase tied to virtual time.
	v := l.p.Motion.speed()
	if v > 0 {
		phase := 2 * math.Pi * l.elapsedS / (4 * coh)
		inst := v * math.Sin(phase)
		factor := 1 / (1 + inst/SoundSpeed)
		tx = dsp.ResampleLinear(tx, factor)
	}
	l.scratchA = l.conv.ApplyTo(l.scratchA, tx)
	l.scratchB = l.convAlt.ApplyTo(l.scratchB, tx)
	a, b := l.scratchA, l.scratchB
	// The two realizations may have slightly different lengths.
	n := max(len(a), len(b))
	out := make([]float64, n)
	at := func(x []float64, i int) float64 {
		if i < len(x) {
			return x[i]
		}
		return 0
	}
	// Crossfade between realizations with period ~2*coherence time.
	w := 2 * math.Pi / (2 * coh)
	for i := range out {
		t := l.elapsedS + float64(i)/fs
		alpha := 0.5 + 0.5*math.Sin(w*t)
		out[i] = (1-alpha)*at(a, i) + alpha*at(b, i)
	}
	return out
}

// Reverse builds the opposite-direction link. Underwater the forward
// and backward channels differ (paper Fig 3d): the reverse link swaps
// devices and depths and draws an independent multipath realization.
func (l *Link) Reverse() (*Link, error) {
	p := l.p
	p.TxDevice, p.RxDevice = p.RxDevice, p.TxDevice
	p.TxDepthM, p.RxDepthM = p.RxDepthM, p.TxDepthM
	p.Seed = p.Seed*31 + 17
	return NewLink(p)
}

// NoiseOnly returns n samples of the link's ambient noise without any
// signal (carrier-sense calibration, Fig 4 measurements).
func (l *Link) NoiseOnly(n int) []float64 {
	if l.noise == nil {
		return make([]float64, n)
	}
	return l.noise.Generate(n)
}

// InBandNoiseRMS returns the receiver's ambient in-band noise RMS.
func (l *Link) InBandNoiseRMS() float64 {
	if l.noise == nil {
		return 0
	}
	return l.noise.InBandRMS()
}
