// Package channel simulates the underwater acoustic channel between
// two mobile devices: shallow-water multipath via the image method,
// practical spreading loss, Thorp absorption, device speaker and
// microphone frequency responses, per-environment colored ambient
// noise with impulsive components, waterproof-case filtering,
// orientation-dependent directivity, and motion-induced channel
// variation with Doppler.
//
// The package substitutes for the paper's six real field sites; see
// DESIGN.md §2 for the substitution argument. All randomness is
// drawn from explicit seeds, so every experiment is reproducible.
package channel

import "math"

// SoundSpeed is the nominal underwater speed of sound in m/s.
const SoundSpeed = 1500.0

// SoundSpeedAir is the in-air speed of sound in m/s (used by the
// reciprocity experiments of Fig 3c).
const SoundSpeedAir = 343.0

// Environment describes one deployment site. The six presets mirror
// the paper's field locations (Fig 7).
type Environment struct {
	// Name identifies the site in experiment output.
	Name string
	// DepthM is the water column depth in meters.
	DepthM float64
	// MaxRangeM is the usable horizontal span of the site.
	MaxRangeM float64
	// NoiseDB sets the ambient noise floor relative to the quietest
	// site (Bridge = 0 dB); the paper measures up to 9 dB spread.
	NoiseDB float64
	// SurfaceReflect is the surface reflection coefficient (negative:
	// pressure-release boundary flips phase).
	SurfaceReflect float64
	// BottomReflect is the bottom reflection coefficient (lossy).
	BottomReflect float64
	// Scatter in [0,1] controls the diffuse reverberation tail from
	// pilings, boats, kayaks, fish — the lake's deep spectral dips.
	Scatter float64
	// Current in [0,1] sets residual channel variation when devices
	// are nominally static (waves, flowing water).
	Current float64
	// Impulsive in [0,1] sets the rate of spiky bubble/splash noise.
	Impulsive float64
	// TonalHz lists narrowband interferers (boat engines, pumps); may
	// be empty.
	TonalHz []float64
}

// The paper's six sites (§3, Fig 7). Parameters are qualitative
// matches to the described conditions: Bridge quiet and still, Park
// busy with boats, Lake busy with heavy multipath from a fishing
// dock's pilings, Beach long and open, Museum a 9 m deep dock, Bay a
// 15 m deep wavy site.
var (
	Bridge = Environment{
		Name: "bridge", DepthM: 3, MaxRangeM: 20, NoiseDB: 0,
		SurfaceReflect: -0.92, BottomReflect: 0.35, Scatter: 0.15,
		Current: 0.05, Impulsive: 0.05,
	}
	Park = Environment{
		Name: "park", DepthM: 4, MaxRangeM: 40, NoiseDB: 6,
		SurfaceReflect: -0.95, BottomReflect: 0.45, Scatter: 0.45,
		Current: 0.35, Impulsive: 0.3, TonalHz: []float64{420, 880},
	}
	Lake = Environment{
		Name: "lake", DepthM: 5, MaxRangeM: 30, NoiseDB: 9,
		SurfaceReflect: -0.96, BottomReflect: 0.55, Scatter: 0.8,
		Current: 0.25, Impulsive: 0.4, TonalHz: []float64{300},
	}
	Beach = Environment{
		Name: "beach", DepthM: 4, MaxRangeM: 113, NoiseDB: 5,
		SurfaceReflect: -0.95, BottomReflect: 0.4, Scatter: 0.3,
		Current: 0.3, Impulsive: 0.25,
	}
	Museum = Environment{
		Name: "museum", DepthM: 9, MaxRangeM: 25, NoiseDB: 7,
		SurfaceReflect: -0.94, BottomReflect: 0.5, Scatter: 0.6,
		Current: 0.15, Impulsive: 0.2, TonalHz: []float64{350, 700},
	}
	Bay = Environment{
		Name: "bay", DepthM: 15, MaxRangeM: 40, NoiseDB: 6,
		SurfaceReflect: -0.97, BottomReflect: 0.45, Scatter: 0.4,
		Current: 0.5, Impulsive: 0.35,
	}
)

// Environments lists the presets in the paper's order.
func Environments() []Environment {
	return []Environment{Bridge, Park, Lake, Beach, Museum, Bay}
}

// ByName returns the preset environment with the given name.
func ByName(name string) (Environment, bool) {
	for _, e := range Environments() {
		if e.Name == name {
			return e, true
		}
	}
	return Environment{}, false
}

// ThorpAbsorptionDB returns the seawater absorption coefficient in
// dB/km at frequency f (Hz) per Thorp's empirical formula. At the
// modem's 1-4 kHz and <= 113 m ranges this is fractions of a dB —
// the implementation exposes it for completeness and uses it in the
// long-range path-loss budget.
func ThorpAbsorptionDB(fHz float64) float64 {
	f2 := (fHz / 1000) * (fHz / 1000) // kHz^2
	return 0.11*f2/(1+f2) + 44*f2/(4100+f2) + 2.75e-4*f2 + 0.003
}

// SpreadingLossDB returns the transmission loss in dB at distance d
// meters with practical spreading (k = 1.5, between cylindrical and
// spherical), referenced to 1 m.
func SpreadingLossDB(dM float64) float64 {
	if dM < 1 {
		dM = 1
	}
	return 15 * math.Log10(dM)
}

// PathLossDB combines spreading and absorption for a path of length
// dM at frequency fHz.
func PathLossDB(dM, fHz float64) float64 {
	return SpreadingLossDB(dM) + ThorpAbsorptionDB(fHz)*dM/1000
}
