package channel

import (
	"math"
	"math/rand"
	"sync"

	"aquago/internal/dsp"
)

// NoiseGen produces the ambient underwater noise of one environment as
// heard by one device: colored Gaussian background (flow noise heavy
// below 1 kHz, per the paper's Fig 4), optional narrowband tonal
// interferers, and impulsive bubble/splash bursts.
type NoiseGen struct {
	env        Environment
	sampleRate int
	levelRMS   float64 // target in-band (1-4 kHz) RMS
	shape      *dsp.FIRState
	rng        *rand.Rand
	calib      float64 // shaping-filter gain compensation
	tonePhases []float64
	toneAmp    float64
}

// NoiseRefRMS is the in-band (1-4 kHz) noise RMS of the quietest
// environment (Bridge). Environment NoiseDB offsets stack on top.
// The constant is calibrated so that at 5 m in the lake the link SNR
// supports the paper's observed ~19-subcarrier bands (median
// ~633 bps), 30 m forces the narrow ~4-bin bands (~133 bps), and
// 100 m is reachable only by single-tone beacons.
const NoiseRefRMS = 0.0056

// NewNoiseGen builds a generator for env at the given sample rate.
// The seed controls the realization; the same seed replays the same
// noise.
func NewNoiseGen(env Environment, sampleRate int, seed int64) *NoiseGen {
	g := &NoiseGen{
		env:        env,
		sampleRate: sampleRate,
		levelRMS:   NoiseRefRMS * dsp.AmpFromDB(env.NoiseDB),
		rng:        rand.New(rand.NewSource(seed)),
	}
	g.shape = dsp.NewFIRState(&dsp.FIR{Taps: noiseShapeTaps(sampleRate)})
	g.calib = shapeCalibration(sampleRate)
	g.tonePhases = make([]float64, len(env.TonalHz))
	for i := range g.tonePhases {
		g.tonePhases[i] = 2 * math.Pi * g.rng.Float64()
	}
	g.toneAmp = 0.3
	return g
}

var (
	calibMu    sync.Mutex
	calibCache = map[int]float64{}
)

// shapeCalibration measures (once per sample rate) the in-band RMS
// the coloring filter produces for unit-variance white input, so
// Generate can hit the environment's target level exactly.
func shapeCalibration(sampleRate int) float64 {
	calibMu.Lock()
	defer calibMu.Unlock()
	if v, ok := calibCache[sampleRate]; ok {
		return v
	}
	probe := make([]float64, 8192)
	r := rand.New(rand.NewSource(1))
	for i := range probe {
		probe[i] = r.NormFloat64()
	}
	tmp := dsp.NewFIRState(&dsp.FIR{Taps: noiseShapeTaps(sampleRate)})
	out := tmp.Process(probe)
	bp := dsp.DesignBandpass(1000, 4000, float64(sampleRate), 128, dsp.Hamming)
	band := bp.Filter(out)
	v := dsp.RMS(band[256:])
	if v <= 0 {
		v = 1
	}
	calibCache[sampleRate] = v
	return v
}

// noiseShapeTaps designs the ambient-noise coloring filter: strong
// below 1 kHz (water flow, bubbles), gently sloping through the
// 1-4.5 kHz band, rolling off above (Fig 4's measured shape).
func noiseShapeTaps(sampleRate int) []float64 {
	const gridN = 1024
	amp := make([]float64, gridN/2+1)
	for k := range amp {
		f := float64(k) * float64(sampleRate) / gridN
		var db float64
		switch {
		case f < 50:
			db = 14
		case f < 1000:
			// +12 dB at low frequency sloping to 0 dB at 1 kHz.
			db = 12 * (1000 - f) / 950
		case f < 4500:
			// Mild decline through the communication band.
			db = -3 * (f - 1000) / 3500
		default:
			// Rolloff above 4.5 kHz.
			db = -3 - 10*(f-4500)/3000
		}
		if db < -40 {
			db = -40
		}
		amp[k] = dsp.AmpFromDB(db)
	}
	return firFromAmplitude(amp, 129)
}

// Generate returns n samples of ambient noise.
func (g *NoiseGen) Generate(n int) []float64 {
	white := make([]float64, n)
	for i := range white {
		white[i] = g.rng.NormFloat64()
	}
	out := g.shape.Process(white)
	// Scale so the in-band RMS hits the environment target.
	dsp.Scale(out, g.levelRMS/g.calib)
	// Tonal interferers.
	for ti, f := range g.env.TonalHz {
		w := 2 * math.Pi * f / float64(g.sampleRate)
		a := g.toneAmp * g.levelRMS
		ph := g.tonePhases[ti]
		for i := range out {
			out[i] += a * math.Sin(w*float64(i)+ph)
		}
		g.tonePhases[ti] = math.Mod(ph+w*float64(n), 2*math.Pi)
	}
	// Impulsive bursts: Poisson arrivals, ~2-5 ms decaying transients.
	if g.env.Impulsive > 0 {
		ratePerSec := 4 * g.env.Impulsive
		expected := ratePerSec * float64(n) / float64(g.sampleRate)
		bursts := poisson(g.rng, expected)
		for b := 0; b < bursts; b++ {
			at := g.rng.Intn(n)
			dur := g.sampleRate * (2 + g.rng.Intn(4)) / 1000
			amp := g.levelRMS * (8 + 12*g.rng.Float64())
			tau := float64(dur) / 3
			for i := 0; i < dur && at+i < n; i++ {
				out[at+i] += amp * math.Exp(-float64(i)/tau) * g.rng.NormFloat64()
			}
		}
	}
	return out
}

// InBandRMS returns the generator's target 1-4 kHz noise RMS.
func (g *NoiseGen) InBandRMS() float64 { return g.levelRMS }

// poisson draws a Poisson-distributed count with the given mean using
// Knuth's method (means here are tiny).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
