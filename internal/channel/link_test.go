package channel

import (
	"math"
	"testing"

	"aquago/internal/dsp"
)

func mustLink(t testing.TB, p LinkParams) *Link {
	t.Helper()
	l, err := NewLink(p)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLinkDefaults(t *testing.T) {
	l := mustLink(t, LinkParams{Seed: 1})
	p := l.Params()
	if p.Env.Name != "lake" || p.DistanceM != 5 || p.TxDepthM != 1 || p.SampleRate != 48000 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	if p.TxDevice.Name != "galaxy-s9" {
		t.Fatal("default device should be the Galaxy S9")
	}
}

func TestLinkValidation(t *testing.T) {
	if _, err := NewLink(LinkParams{Env: Lake, TxDepthM: 10, RxDepthM: 1, DistanceM: 5}); err == nil {
		t.Fatal("device below the bottom should be rejected")
	}
}

func TestLinkTransmitLengthAndDeterminism(t *testing.T) {
	tx := dsp.Tone(2000, 0.05, 48000)
	l1 := mustLink(t, LinkParams{Env: Bridge, DistanceM: 5, Seed: 42})
	l2 := mustLink(t, LinkParams{Env: Bridge, DistanceM: 5, Seed: 42})
	rx1 := l1.Transmit(tx)
	rx2 := l2.Transmit(tx)
	if len(rx1) != len(tx)+len(l1.ImpulseResponse())-1 {
		t.Fatalf("rx length %d", len(rx1))
	}
	for i := range rx1 {
		if rx1[i] != rx2[i] {
			t.Fatal("same seed, different link output")
		}
	}
	l3 := mustLink(t, LinkParams{Env: Bridge, DistanceM: 5, Seed: 43})
	rx3 := l3.Transmit(tx)
	same := true
	for i := range rx1 {
		if rx1[i] != rx3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical channels")
	}
}

func TestAttenuationGrowsWithDistance(t *testing.T) {
	// Broadband probe, averaged over several multipath realizations:
	// individual realizations can reorder adjacent distances through
	// constructive fading, but the trend must hold.
	tx := dsp.Chirp(1000, 4000, 0.1, 48000)
	avgRMS := func(d float64) float64 {
		var sum float64
		for seed := int64(1); seed <= 4; seed++ {
			l := mustLink(t, LinkParams{Env: Lake, DistanceM: d, Seed: seed, NoiseOff: true})
			sum += dsp.RMS(l.Transmit(tx))
		}
		return sum / 4
	}
	var prev = math.Inf(1)
	for _, d := range []float64{5, 10, 20, 30} {
		rms := avgRMS(d)
		if rms >= prev {
			t.Fatalf("mean RMS at %g m (%g) not below previous (%g)", d, rms, prev)
		}
		prev = rms
	}
}

func TestForwardBackwardDiffer(t *testing.T) {
	// Fig 3d: underwater forward and backward channels differ.
	fwd := mustLink(t, LinkParams{Env: Lake, DistanceM: 5, Seed: 77, NoiseOff: true})
	bwd, err := fwd.Reverse()
	if err != nil {
		t.Fatal(err)
	}
	hf := fwd.ImpulseResponse()
	hb := bwd.ImpulseResponse()
	// Compare magnitude responses at a few probe frequencies.
	var diff float64
	for _, f := range []float64{1200, 1900, 2600, 3300} {
		gf := dsp.FIR{Taps: hf}
		gb := dsp.FIR{Taps: hb}
		diff += math.Abs(dsp.AmpDB(gf.Gain(f, 48000)+1e-15) - dsp.AmpDB(gb.Gain(f, 48000)+1e-15))
	}
	if diff < 3 {
		t.Fatalf("forward/backward responses nearly identical (%g dB total)", diff)
	}
}

func TestOrientationReducesGain(t *testing.T) {
	tx := dsp.Tone(2500, 0.05, 48000)
	facing := mustLink(t, LinkParams{Env: Bridge, DistanceM: 5, Seed: 5, NoiseOff: true})
	opposed := mustLink(t, LinkParams{Env: Bridge, DistanceM: 5, Seed: 5, NoiseOff: true, OrientationDeg: 180})
	rf := dsp.RMS(facing.Transmit(tx))
	ro := dsp.RMS(opposed.Transmit(tx))
	lossDB := dsp.AmpDB(rf / ro)
	if lossDB < 5 || lossDB > 15 {
		t.Fatalf("orientation loss %g dB at 2.5 kHz, want ~10", lossDB)
	}
}

func TestHardCaseQuieterThanSoft(t *testing.T) {
	tx := dsp.Tone(2500, 0.05, 48000)
	soft := mustLink(t, LinkParams{Env: Bay, DistanceM: 5, Seed: 6, NoiseOff: true, Casing: CasingSoftPouch})
	hard := mustLink(t, LinkParams{Env: Bay, DistanceM: 5, Seed: 6, NoiseOff: true, Casing: CasingHardCase})
	if dsp.RMS(hard.Transmit(tx)) >= dsp.RMS(soft.Transmit(tx)) {
		t.Fatal("hard case should attenuate more than soft pouch")
	}
}

func TestMotionMakesChannelTimeVarying(t *testing.T) {
	tx := dsp.Tone(2500, 0.1, 48000)
	l := mustLink(t, LinkParams{Env: Lake, DistanceM: 5, Seed: 8, NoiseOff: true, Motion: FastMotion})
	rx1 := l.Transmit(tx)
	rx2 := l.Transmit(tx) // later on the virtual clock
	// The two receptions must differ meaningfully (lengths can differ
	// slightly because of Doppler resampling).
	n := min(len(rx1), len(rx2))
	var num, den float64
	for i := 0; i < n; i++ {
		d := rx1[i] - rx2[i]
		num += d * d
		den += rx1[i] * rx1[i]
	}
	if den == 0 || num/den < 1e-4 {
		t.Fatalf("moving channel did not vary between packets (rel diff %g)", num/den)
	}
}

func TestStaticBridgeChannelIsStable(t *testing.T) {
	tx := dsp.Tone(2500, 0.05, 48000)
	l := mustLink(t, LinkParams{Env: Bridge, DistanceM: 5, Seed: 8, NoiseOff: true})
	rx1 := l.Transmit(tx)
	rx2 := l.Transmit(tx)
	for i := range rx1 {
		if rx1[i] != rx2[i] {
			t.Fatal("static bridge channel should be time invariant")
		}
	}
}

func TestNoiseFloorPresentWithoutSignal(t *testing.T) {
	l := mustLink(t, LinkParams{Env: Lake, DistanceM: 5, Seed: 10})
	n := l.NoiseOnly(48000)
	if dsp.RMS(n) <= 0 {
		t.Fatal("ambient noise missing")
	}
	if l.InBandNoiseRMS() <= 0 {
		t.Fatal("in-band noise RMS not reported")
	}
	quiet := mustLink(t, LinkParams{Env: Lake, DistanceM: 5, Seed: 10, NoiseOff: true})
	if dsp.RMS(quiet.NoiseOnly(4800)) != 0 {
		t.Fatal("NoiseOff link should be silent")
	}
}

func TestDelaySamples(t *testing.T) {
	l := mustLink(t, LinkParams{Env: Lake, DistanceM: 15, Seed: 2})
	// 15 m at 1500 m/s = 10 ms = 480 samples.
	if d := l.DelaySamples(); d < 470 || d > 490 {
		t.Fatalf("delay %d samples, want ~480", d)
	}
}

func TestAirLinkReciprocity(t *testing.T) {
	// Fig 3c: in air, forward and backward are near-identical. The
	// paper's setup uses two phones of the same model (Galaxy S9).
	fwd := NewAirLink(2, GalaxyS9, GalaxyS9, 48000, 33)
	bwd := NewAirLink(2, GalaxyS9, GalaxyS9, 48000, 33)
	hf := fwd.ImpulseResponse()
	hb := bwd.ImpulseResponse()
	var diff float64
	for _, f := range []float64{1200, 1900, 2600} {
		gf := dsp.FIR{Taps: hf}
		gb := dsp.FIR{Taps: hb}
		diff += math.Abs(dsp.AmpDB(gf.Gain(f, 48000)+1e-15) - dsp.AmpDB(gb.Gain(f, 48000)+1e-15))
	}
	if diff > 1 {
		t.Fatalf("air channel should be reciprocal, got %g dB total difference", diff)
	}
	rx := fwd.Transmit(dsp.Tone(2000, 0.02, 48000))
	if dsp.RMS(rx) == 0 {
		t.Fatal("air link transmit silent")
	}
}

func TestSNRDecreasesWithDistanceEndToEnd(t *testing.T) {
	// Calibration guard: in-band SNR at 5 m must comfortably exceed
	// the adaptation threshold; 30 m should be marginal; 100 m below
	// data threshold but above zero (beacon-only).
	tx := dsp.Tone(2500, 0.2, 48000)
	dsp.Scale(tx, 1.0) // unit amplitude tone
	snrAt := func(d float64, env Environment) float64 {
		l := mustLink(t, LinkParams{Env: env, DistanceM: d, Seed: 3, NoiseOff: true})
		rx := l.Transmit(tx)
		sig := dsp.RMS(rx)
		noise := mustLink(t, LinkParams{Env: env, DistanceM: d, Seed: 3}).InBandNoiseRMS()
		return dsp.AmpDB(sig / noise)
	}
	// One environment throughout so the comparison isolates distance.
	s5 := snrAt(5, Beach)
	s30 := snrAt(30, Beach)
	s100 := snrAt(100, Beach)
	t.Logf("tone SNR: 5 m %.1f dB, 30 m %.1f dB, 100 m %.1f dB", s5, s30, s100)
	if !(s5 > s30 && s30 > s100) {
		t.Fatalf("SNR not monotonic: %g %g %g", s5, s30, s100)
	}
	if s5 < 18 {
		t.Fatalf("5 m link too weak (%g dB): data rates would collapse", s5)
	}
	// The beacon's Goertzel detector integrates a full symbol
	// (2400-9600 samples), gaining ~25 dB against broadband noise, so
	// a few dB of raw tone SNR suffices at 100 m.
	if s100 < 3 {
		t.Fatalf("100 m tone too weak (%g dB): beacons would fail", s100)
	}
}
