package channel

import (
	"hash/fnv"
	"math"
	"math/rand"

	"aquago/internal/dsp"
)

// Device models a mobile device's acoustic front end: the composite
// speaker (transmit) and microphone (receive) frequency responses.
// The responses are synthetic stand-ins for the hardware diversity the
// paper measures in Fig 3a: band-limited with device-specific ripple
// and notches, rolling off sharply above 4 kHz.
type Device struct {
	// Name identifies the device and seeds its response curve, so a
	// given model always sounds the same.
	Name string
	// TxLevelDB is the speaker output level relative to the Galaxy S9
	// at maximum volume (watches are quieter).
	TxLevelDB float64
	// PlateauLowHz..PlateauHighHz is the flat-ish passband.
	PlateauLowHz, PlateauHighHz float64
	// RippleDB is the in-band ripple amplitude.
	RippleDB float64
	// Notches is the number of device-specific response notches.
	Notches int
}

// The paper's four evaluation devices (§2.1).
var (
	GalaxyS9 = Device{
		Name: "galaxy-s9", TxLevelDB: 0,
		PlateauLowHz: 500, PlateauHighHz: 4000, RippleDB: 3, Notches: 2,
	}
	Pixel4 = Device{
		Name: "pixel-4", TxLevelDB: -1,
		PlateauLowHz: 600, PlateauHighHz: 3900, RippleDB: 4, Notches: 3,
	}
	OnePlus8Pro = Device{
		Name: "oneplus-8-pro", TxLevelDB: -0.5,
		PlateauLowHz: 450, PlateauHighHz: 4100, RippleDB: 3.5, Notches: 2,
	}
	GalaxyWatch4 = Device{
		Name: "galaxy-watch-4", TxLevelDB: -6,
		PlateauLowHz: 800, PlateauHighHz: 3500, RippleDB: 5, Notches: 3,
	}
)

// Devices lists the four evaluation devices.
func Devices() []Device {
	return []Device{GalaxyS9, Pixel4, OnePlus8Pro, GalaxyWatch4}
}

// DeviceByName returns the preset device with the given name.
func DeviceByName(name string) (Device, bool) {
	for _, d := range Devices() {
		if d.Name == name {
			return d, true
		}
	}
	return Device{}, false
}

// responseTaps designs the device's FIR response (speaker or mic) by
// frequency sampling. kind distinguishes the speaker ("tx") from the
// slightly broader microphone ("rx") so the two directions differ.
func (d Device) responseTaps(sampleRate int, kind string, nTaps int) []float64 {
	if nTaps%2 == 0 {
		nTaps++
	}
	seed := fnv.New64a()
	seed.Write([]byte(d.Name))
	seed.Write([]byte(kind))
	rng := rand.New(rand.NewSource(int64(seed.Sum64() & 0x7fffffffffffffff)))

	// Amplitude response on a dense grid.
	const gridN = 1024
	amp := make([]float64, gridN/2+1)
	lo, hi := d.PlateauLowHz, d.PlateauHighHz
	if kind == "rx" {
		lo *= 0.8
		hi *= 1.1
	}
	// Random ripple phases and notch placements, fixed per device.
	type ripple struct{ freq, phase, amp float64 }
	ripples := make([]ripple, 4)
	for i := range ripples {
		ripples[i] = ripple{
			freq:  0.8 + 2.5*rng.Float64(),     // cycles per decade-ish
			phase: 2 * math.Pi * rng.Float64(),
			amp:   d.RippleDB * (0.4 + 0.6*rng.Float64()) / 2,
		}
	}
	type notch struct{ freq, width, depth float64 }
	notches := make([]notch, d.Notches)
	for i := range notches {
		notches[i] = notch{
			freq:  lo + (hi-lo)*(0.15+0.7*rng.Float64()),
			width: 120 + 250*rng.Float64(),
			depth: 8 + 10*rng.Float64(),
		}
	}
	for k := range amp {
		f := float64(k) * float64(sampleRate) / gridN
		db := 0.0
		// Band edges: 2nd-order-ish rolloffs; very steep above 4 kHz
		// (paper: response diminishes above 4 kHz).
		switch {
		case f < lo:
			db -= 24 * (lo - f) / lo * 2
		case f > hi:
			db -= 30 * (f - hi) / 1000 // ~30 dB/kHz rolloff
		}
		// In-band ripple (log-frequency sinusoids).
		if f > 100 {
			lf := math.Log10(f)
			for _, r := range ripples {
				db += r.amp * math.Sin(2*math.Pi*r.freq*lf+r.phase)
			}
		}
		// Notches.
		for _, n := range notches {
			d2 := (f - n.freq) / n.width
			db -= n.depth * math.Exp(-d2*d2)
		}
		if db < -60 {
			db = -60
		}
		amp[k] = dsp.AmpFromDB(db)
	}
	return firFromAmplitude(amp, nTaps)
}

// firFromAmplitude converts a one-sided amplitude grid (gridN/2+1
// points spanning 0..Nyquist) into a linear-phase FIR of nTaps taps
// via IFFT and windowing.
func firFromAmplitude(amp []float64, nTaps int) []float64 {
	gridN := (len(amp) - 1) * 2
	spec := make([]complex128, gridN)
	for k, a := range amp {
		spec[k] = complex(a, 0)
		if k > 0 && k < gridN/2 {
			spec[gridN-k] = complex(a, 0)
		}
	}
	impulse := dsp.IFFT(spec)
	// Center the (even-symmetric) impulse response and window it.
	taps := make([]float64, nTaps)
	half := nTaps / 2
	for i := -half; i <= half; i++ {
		idx := ((i % gridN) + gridN) % gridN
		taps[i+half] = real(impulse[idx])
	}
	win := dsp.Hamming.Coefficients(nTaps)
	for i := range taps {
		taps[i] *= win[i]
	}
	return taps
}

// TxFilter returns the speaker response FIR at the given sample rate.
func (d Device) TxFilter(sampleRate int) *dsp.FIR {
	return &dsp.FIR{Taps: d.responseTaps(sampleRate, "tx", 257)}
}

// RxFilter returns the microphone response FIR.
func (d Device) RxFilter(sampleRate int) *dsp.FIR {
	return &dsp.FIR{Taps: d.responseTaps(sampleRate, "rx", 257)}
}

// PlacementFilter models everything that differs between two
// nominally-identical deployments of the same hardware: unit-to-unit
// transducer spread, how the phone sits in its pouch, the holder's
// grip, and near-field obstructions. It is the physical reason the
// paper's forward and backward channels differ even with two phones
// of the same model (Fig 3d). The response is a mild ripple (±2 dB)
// with one or two shallow notches, deterministic in the seed.
func PlacementFilter(sampleRate int, seed int64) *dsp.FIR {
	rng := rand.New(rand.NewSource(seed))
	const gridN = 1024
	amp := make([]float64, gridN/2+1)
	type ripple struct{ freq, phase, amp float64 }
	ripples := make([]ripple, 3)
	for i := range ripples {
		ripples[i] = ripple{
			freq:  1 + 3*rng.Float64(),
			phase: 2 * math.Pi * rng.Float64(),
			amp:   0.8 + 1.2*rng.Float64(),
		}
	}
	nNotch := 1 + rng.Intn(2)
	type notch struct{ freq, width, depth float64 }
	notches := make([]notch, nNotch)
	for i := range notches {
		notches[i] = notch{
			freq:  1100 + 2800*rng.Float64(),
			width: 150 + 250*rng.Float64(),
			depth: 2 + 4*rng.Float64(),
		}
	}
	for k := range amp {
		f := float64(k) * float64(sampleRate) / gridN
		db := 0.0
		if f > 100 {
			lf := math.Log10(f)
			for _, r := range ripples {
				db += r.amp * math.Sin(2*math.Pi*r.freq*lf+r.phase)
			}
		}
		for _, n := range notches {
			d2 := (f - n.freq) / n.width
			db -= n.depth * math.Exp(-d2*d2)
		}
		amp[k] = dsp.AmpFromDB(db)
	}
	return &dsp.FIR{Taps: firFromAmplitude(amp, 129)}
}

// Casing models the waterproof enclosure between the device and the
// water (§3 "Testing in deeper waters" and Fig 18).
type Casing int

const (
	// CasingNone: bare device (characterization only).
	CasingNone Casing = iota
	// CasingSoftPouch: the thin PVC pouch used in most experiments;
	// mild flat attenuation.
	CasingSoftPouch
	// CasingHardCase: the polycarbonate 15 m-rated case of Fig 11;
	// stronger attenuation, tilted against high frequencies.
	CasingHardCase
	// CasingSoftPouchAir: soft pouch with trapped air (Fig 18);
	// slightly different ripple but similar mean power in 1-4 kHz.
	CasingSoftPouchAir
)

// String names the casing.
func (c Casing) String() string {
	switch c {
	case CasingNone:
		return "none"
	case CasingSoftPouch:
		return "soft-pouch"
	case CasingHardCase:
		return "hard-case"
	case CasingSoftPouchAir:
		return "soft-pouch-air"
	default:
		return "unknown"
	}
}

// GainDB returns the casing's insertion loss in dB at frequency f.
func (c Casing) GainDB(fHz float64) float64 {
	switch c {
	case CasingSoftPouch:
		return -1.5
	case CasingHardCase:
		// 6 dB base loss plus ~2 dB/kHz tilt above 1 kHz.
		loss := -6.0
		if fHz > 1000 {
			loss -= 2 * (fHz - 1000) / 1000
		}
		return loss
	case CasingSoftPouchAir:
		// Air gap: comparable mean power with extra ripple.
		return -2 + 1.5*math.Sin(2*math.Pi*fHz/900)
	default:
		return 0
	}
}

// Filter returns the casing response as an FIR at the sample rate.
func (c Casing) Filter(sampleRate int) *dsp.FIR {
	const gridN = 1024
	amp := make([]float64, gridN/2+1)
	for k := range amp {
		f := float64(k) * float64(sampleRate) / gridN
		amp[k] = dsp.AmpFromDB(c.GainDB(f))
	}
	return &dsp.FIR{Taps: firFromAmplitude(amp, 129)}
}
