package channel

import (
	"math/rand"

	"aquago/internal/dsp"
)

// AirLink models the in-air control condition of the paper's
// reciprocity experiment (Fig 3c): a short direct path with mild,
// *reciprocal* room reflections — the property the underwater channel
// lacks. Only used by the characterization experiments.
type AirLink struct {
	h     []float64
	conv  *dsp.OverlapAdd
	noise *rand.Rand
	amp   float64
}

// NewAirLink builds an in-air link at the given distance. Both
// directions of the same seed produce the same response (reciprocity).
func NewAirLink(distanceM float64, dev1, dev2 Device, sampleRate int, seed int64) *AirLink {
	rng := rand.New(rand.NewSource(seed))
	// Direct path plus a few weak early reflections.
	n := int(0.01 * float64(sampleRate)) // 10 ms of response
	h := make([]float64, n)
	h[0] = 1
	for r := 0; r < 4; r++ {
		at := 1 + rng.Intn(n-1)
		h[at] += (rng.Float64() - 0.5) * 0.2
	}
	// Device responses apply symmetrically so swapping devices leaves
	// the composite unchanged — reciprocity by construction.
	comp := dsp.Convolve(h, dev1.TxFilter(sampleRate).Taps)
	comp = dsp.Convolve(comp, dev2.RxFilter(sampleRate).Taps)
	comp = trimIR(comp)
	// In-air spreading at short range.
	amp := dsp.AmpFromDB(-SpreadingLossDB(distanceM)) // reuse practical spreading
	dsp.Scale(comp, amp)
	return &AirLink{h: comp, conv: dsp.NewOverlapAdd(comp), noise: rng, amp: amp}
}

// Transmit passes tx through the air channel with light noise.
func (a *AirLink) Transmit(tx []float64) []float64 {
	rx := a.conv.Apply(tx)
	for i := range rx {
		rx[i] += 1e-4 * a.noise.NormFloat64()
	}
	return rx
}

// ImpulseResponse returns a copy of the composite response.
func (a *AirLink) ImpulseResponse() []float64 {
	return append([]float64(nil), a.h...)
}
