package dsp

import "math"

// Window identifies a tapering window for filter design and spectral
// analysis.
type Window int

const (
	// Rectangular applies no tapering.
	Rectangular Window = iota
	// Hamming is the classic 0.54 - 0.46 cos window; good sidelobe
	// suppression for FIR design (-53 dB).
	Hamming
	// Hann is the raised cosine window.
	Hann
	// Blackman trades main-lobe width for -74 dB sidelobes.
	Blackman
)

// String returns the window's conventional name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hamming:
		return "hamming"
	case Hann:
		return "hann"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window samples. For n == 1 the window is
// the single sample 1.
func (w Window) Coefficients(n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	d := float64(n - 1)
	for i := 0; i < n; i++ {
		t := float64(i) / d
		switch w {
		case Rectangular:
			out[i] = 1
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			out[i] = 1
		}
	}
	return out
}

// Apply multiplies x in place by the window samples and returns x.
func (w Window) Apply(x []float64) []float64 {
	c := w.Coefficients(len(x))
	for i := range x {
		x[i] *= c[i]
	}
	return x
}
