package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestGoertzelMatchesFFTBin(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	fs := 48000.0
	n := 960
	x := randReal(n, rng)
	spec := FFTReal(x)
	for _, bin := range []int{1, 20, 40, 79, 200} {
		freq := float64(bin) * fs / float64(n)
		g := Goertzel(x, freq, fs)
		wantP := CAbs2(spec[bin])
		gotP := CAbs2(g)
		if math.Abs(gotP-wantP) > 1e-6*(wantP+1) {
			t.Errorf("bin %d: goertzel power %g, fft power %g", bin, gotP, wantP)
		}
	}
}

func TestGoertzelDetectsTone(t *testing.T) {
	fs := 48000.0
	x := Tone(2000, 0.05, fs)
	p2000 := GoertzelPower(x, 2000, fs)
	p3000 := GoertzelPower(x, 3000, fs)
	if p2000 < 100*p3000 {
		t.Fatalf("tone not concentrated: on=%g off=%g", p2000, p3000)
	}
}

func TestTonePowersOrder(t *testing.T) {
	fs := 48000.0
	x := Tone(1500, 0.02, fs)
	p := TonePowers(x, []float64{1500, 2500, 3500}, fs)
	if !(p[0] > p[1] && p[0] > p[2]) {
		t.Fatalf("tone powers not dominated by transmitted tone: %v", p)
	}
}

func TestChirpSweepsBand(t *testing.T) {
	fs := 48000.0
	c := Chirp(1000, 5000, 0.5, fs)
	if len(c) != int(0.5*fs) {
		t.Fatalf("chirp length %d", len(c))
	}
	// Instantaneous frequency early vs late: compare band powers of
	// the first and last quarter.
	q := len(c) / 4
	early := WelchPSD(c[:q], 1024, fs, Hann)
	late := WelchPSD(c[3*q:], 1024, fs, Hann)
	if early.BandPower(1000, 2200) < 10*early.BandPower(3800, 5000) {
		t.Error("early chirp segment should sit in the low band")
	}
	if late.BandPower(3800, 5000) < 10*late.BandPower(1000, 2200) {
		t.Error("late chirp segment should sit in the high band")
	}
}

func TestResampleLinearIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := randReal(1000, rng)
	y := ResampleLinear(x, 1.0)
	if len(y) != len(x) {
		t.Fatalf("identity resample length %d", len(y))
	}
	if maxAbsDiff(x, y) > 1e-12 {
		t.Fatal("identity resample altered the signal")
	}
}

func TestResamplePreservesToneFrequency(t *testing.T) {
	fs := 48000.0
	x := Tone(2000, 0.1, fs)
	// Doppler factor for 2 m/s closing speed at c=1500 m/s.
	factor := 1.0 / (1 + 2.0/1500.0)
	y := ResampleLinear(x, factor)
	// Tone should now appear at 2000*(1+2/1500) ≈ 2002.7 Hz.
	want := 2000 * (1 + 2.0/1500.0)
	pWant := GoertzelPower(y[:4000], want, fs)
	pOrig := GoertzelPower(y[:4000], 2000-10, fs)
	if pWant < pOrig {
		t.Fatalf("Doppler shift not visible: shifted %g original %g", pWant, pOrig)
	}
}

func TestResampleSincBetterThanLinear(t *testing.T) {
	fs := 48000.0
	x := Tone(3900, 0.05, fs) // near the top of the modem band
	factor := 1.001
	ref := make([]float64, 0, len(x))
	// Analytic resample of a pure tone for ground truth.
	w := 2 * math.Pi * 3900 / fs
	n := int(float64(len(x)-1)*factor) + 1
	for i := 0; i < n; i++ {
		ref = append(ref, math.Sin(w*float64(i)/factor))
	}
	lin := ResampleLinear(x, factor)
	snc := ResampleSinc(x, factor, 12)
	// Ignore sinc edge effects.
	lo, hi := 100, n-100
	var errLin, errSinc float64
	for i := lo; i < hi; i++ {
		errLin += (lin[i] - ref[i]) * (lin[i] - ref[i])
		errSinc += (snc[i] - ref[i]) * (snc[i] - ref[i])
	}
	if errSinc >= errLin {
		t.Fatalf("sinc interpolation (err %g) not better than linear (err %g)", errSinc, errLin)
	}
}

func TestWelchPSDLocatesTone(t *testing.T) {
	fs := 48000.0
	x := Tone(2500, 0.5, fs)
	sp := WelchPSD(x, 2048, fs, Hann)
	peak := ArgMax(sp.Power)
	got := sp.Freqs[peak]
	if math.Abs(got-2500) > fs/2048*1.5 {
		t.Fatalf("PSD peak at %g Hz, want 2500", got)
	}
}

func TestWelchPSDBandPower(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fs := 48000.0
	// White noise: band power should scale with bandwidth.
	x := randReal(48000, rng)
	sp := WelchPSD(x, 1024, fs, Hann)
	narrow := sp.BandPower(1000, 2000)
	wide := sp.BandPower(1000, 4000)
	if wide < 2*narrow || wide > 4*narrow {
		t.Fatalf("white noise band power ratio %g, want ~3", wide/narrow)
	}
}

func TestSpectrumPowerDBPeakIsZero(t *testing.T) {
	fs := 48000.0
	x := Tone(2000, 0.2, fs)
	sp := WelchPSD(x, 1024, fs, Hann)
	db := sp.PowerDB()
	peak := ArgMax(db)
	if math.Abs(db[peak]) > 1e-9 {
		t.Fatalf("normalized peak %g dB, want 0", db[peak])
	}
}

func TestDBHelpers(t *testing.T) {
	if v := DB(100); math.Abs(v-20) > 1e-12 {
		t.Errorf("DB(100)=%g", v)
	}
	if v := AmpDB(100); math.Abs(v-40) > 1e-12 {
		t.Errorf("AmpDB(100)=%g", v)
	}
	if !math.IsInf(DB(0), -1) {
		t.Error("DB(0) should be -inf")
	}
	if v := FromDB(30); math.Abs(v-1000) > 1e-9 {
		t.Errorf("FromDB(30)=%g", v)
	}
	if v := AmpFromDB(-20); math.Abs(v-0.1) > 1e-12 {
		t.Errorf("AmpFromDB(-20)=%g", v)
	}
}

func TestVecHelpers(t *testing.T) {
	x := []float64{3, -4, 1}
	if MaxAbs(x) != 4 {
		t.Error("MaxAbs")
	}
	if ArgMax(x) != 0 {
		t.Error("ArgMax")
	}
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil)")
	}
	if Energy(x) != 26 {
		t.Error("Energy")
	}
	if math.Abs(Power(x)-26.0/3) > 1e-12 {
		t.Error("Power")
	}
	if Power(nil) != 0 {
		t.Error("Power(nil)")
	}
	y := Normalize(append([]float64(nil), x...), 1)
	if math.Abs(MaxAbs(y)-1) > 1e-12 {
		t.Error("Normalize")
	}
	z := make([]float64, 5)
	AddAt(z, []float64{1, 1}, 4) // clipped at the end
	if z[4] != 1 {
		t.Error("AddAt clip end")
	}
	AddAt(z, []float64{1, 1}, -1) // clipped at the start
	if z[0] != 1 {
		t.Error("AddAt clip start")
	}
}

func TestMedianPercentile(t *testing.T) {
	x := []float64{5, 1, 4, 2, 3}
	if Median(x) != 3 {
		t.Errorf("Median=%g", Median(x))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even median")
	}
	if Percentile(x, 0) != 1 || Percentile(x, 100) != 5 {
		t.Error("percentile extremes")
	}
	if p := Percentile(x, 50); p != 3 {
		t.Errorf("P50=%g", p)
	}
	// Input must not be reordered.
	if x[0] != 5 || x[1] != 1 {
		t.Error("Median/Percentile mutated input")
	}
}

func TestWindowShapes(t *testing.T) {
	for _, w := range []Window{Rectangular, Hamming, Hann, Blackman} {
		c := w.Coefficients(64)
		if len(c) != 64 {
			t.Fatalf("%v: wrong length", w)
		}
		for i, v := range c {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("%v: coefficient %d out of range: %g", w, i, v)
			}
		}
		// Symmetry.
		for i := 0; i < 32; i++ {
			if math.Abs(c[i]-c[63-i]) > 1e-12 {
				t.Fatalf("%v not symmetric", w)
			}
		}
	}
	if Hann.Coefficients(1)[0] != 1 {
		t.Error("single-sample window must be 1")
	}
	if Rectangular.String() != "rectangular" || Window(99).String() != "unknown" {
		t.Error("Window.String")
	}
}
