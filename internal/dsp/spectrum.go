package dsp

import "math"

// Spectrum holds a one-sided power spectral density estimate.
type Spectrum struct {
	Freqs []float64 // bin center frequencies, Hz
	Power []float64 // power per bin (linear units)
}

// WelchPSD estimates the power spectral density of x by Welch's
// method: segLen-sample segments with 50% overlap, windowed, averaged
// periodograms. Returns a one-sided spectrum with segLen/2+1 bins.
// The frequency-selectivity and ambient-noise experiments (Figs 3, 4)
// are rendered from this estimate.
func WelchPSD(x []float64, segLen int, sampleRate float64, w Window) Spectrum {
	if segLen < 2 {
		segLen = 256
	}
	if segLen > len(x) {
		segLen = len(x)
	}
	hop := segLen / 2
	if hop < 1 {
		hop = 1
	}
	win := w.Coefficients(segLen)
	winE := Energy(win)
	plan := NewPlan(segLen)
	buf := make([]complex128, segLen)
	nBins := segLen/2 + 1
	acc := make([]float64, nBins)
	var count int
	for start := 0; start+segLen <= len(x); start += hop {
		for i := 0; i < segLen; i++ {
			buf[i] = complex(x[start+i]*win[i], 0)
		}
		plan.Forward(buf, buf)
		for k := 0; k < nBins; k++ {
			acc[k] += CAbs2(buf[k])
		}
		count++
	}
	sp := Spectrum{
		Freqs: make([]float64, nBins),
		Power: make([]float64, nBins),
	}
	for k := 0; k < nBins; k++ {
		sp.Freqs[k] = float64(k) * sampleRate / float64(segLen)
		if count > 0 && winE > 0 {
			sp.Power[k] = acc[k] / (float64(count) * winE)
		}
	}
	return sp
}

// PowerDB returns the spectrum's power in dB relative to its maximum,
// i.e. normalized so the peak bin is 0 dB (matching the paper's
// normalized noise plots).
func (s Spectrum) PowerDB() []float64 {
	peak := 0.0
	for _, p := range s.Power {
		if p > peak {
			peak = p
		}
	}
	out := make([]float64, len(s.Power))
	for i, p := range s.Power {
		if peak <= 0 || p <= 0 {
			out[i] = math.Inf(-1)
			continue
		}
		out[i] = DB(p / peak)
	}
	return out
}

// BandPower integrates the PSD over [f1, f2] Hz.
func (s Spectrum) BandPower(f1, f2 float64) float64 {
	var sum float64
	for i, f := range s.Freqs {
		if f >= f1 && f <= f2 {
			sum += s.Power[i]
		}
	}
	return sum
}

// BandPower measures the mean power of x within [f1, f2] Hz directly
// (Welch under the hood with a 1024-point segment).
func BandPower(x []float64, sampleRate, f1, f2 float64) float64 {
	sp := WelchPSD(x, 1024, sampleRate, Hann)
	return sp.BandPower(f1, f2)
}
