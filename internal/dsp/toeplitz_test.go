package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randPosDefToeplitz builds a positive-definite autocorrelation-style
// first column: r[0] dominant, decaying off-diagonals.
func randPosDefToeplitz(n int, rng *rand.Rand) []float64 {
	t := make([]float64, n)
	t[0] = 1 + rng.Float64()
	for k := 1; k < n; k++ {
		t[k] = (rng.Float64() - 0.5) * t[0] / float64(n)
	}
	return t
}

func TestLevinsonMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, n := range []int{1, 2, 3, 8, 32, 100} {
		tc := randPosDefToeplitz(n, rng)
		y := randReal(n, rng)
		got, err := SolveSymmetricToeplitz(tc, y)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := SolveDense(ToeplitzMatrix(tc), y)
		if err != nil {
			t.Fatalf("dense n=%d: %v", n, err)
		}
		if e := maxAbsDiff(got, want); e > 1e-6 {
			t.Errorf("n=%d: Levinson vs dense max err %g", n, e)
		}
	}
}

func TestLevinsonResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// Property: the returned x actually satisfies T x = y.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(r.Int31n(60))
		tc := randPosDefToeplitz(n, r)
		y := randReal(n, r)
		x, err := SolveSymmetricToeplitz(tc, y)
		if err != nil {
			return false
		}
		m := ToeplitzMatrix(tc)
		for i := 0; i < n; i++ {
			var acc float64
			for j := 0; j < n; j++ {
				acc += m[i][j] * x[j]
			}
			if math.Abs(acc-y[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestLevinsonIdentity(t *testing.T) {
	// T = I: solution is y itself.
	n := 10
	tc := make([]float64, n)
	tc[0] = 1
	y := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	x, err := SolveSymmetricToeplitz(tc, y)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(x, y) > 1e-12 {
		t.Fatalf("identity solve: %v", x)
	}
}

func TestLevinsonRejectsIndefinite(t *testing.T) {
	// First column [1, 1, 1...] is singular (rank 1) — must be rejected.
	tc := []float64{1, 1, 1, 1}
	y := []float64{1, 2, 3, 4}
	if _, err := SolveSymmetricToeplitz(tc, y); err == nil {
		t.Fatal("expected rejection of singular system")
	}
	if _, err := SolveSymmetricToeplitz([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("expected rejection of zero diagonal")
	}
}

func TestLevinsonSizeMismatch(t *testing.T) {
	if _, err := SolveSymmetricToeplitz([]float64{1, 0}, []float64{1}); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if _, err := SolveSymmetricToeplitz(nil, nil); err == nil {
		t.Fatal("expected error for empty system")
	}
}

func TestSolveDensePivoting(t *testing.T) {
	// A system that requires row exchange (zero pivot in place).
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	x, err := SolveDense(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("pivot solve got %v", x)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := SolveDense(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular matrix error")
	}
}

func BenchmarkLevinson480(b *testing.B) {
	// The equalizer's actual system size (channel length 480).
	rng := rand.New(rand.NewSource(32))
	tc := randPosDefToeplitz(480, rng)
	y := randReal(480, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSymmetricToeplitz(tc, y); err != nil {
			b.Fatal(err)
		}
	}
}
