package dsp

// STFT computes a short-time Fourier transform magnitude matrix:
// frames of winLen samples, hop samples apart, windowed and
// transformed; the result is out[frame][bin] with winLen/2+1 one-sided
// bins. Used by the aquascope packet inspector to visualize received
// audio.
func STFT(x []float64, winLen, hop int, w Window) [][]float64 {
	if winLen < 2 || hop < 1 || len(x) < winLen {
		return nil
	}
	win := w.Coefficients(winLen)
	plan := NewPlan(winLen)
	buf := make([]complex128, winLen)
	nBins := winLen/2 + 1
	var out [][]float64
	for start := 0; start+winLen <= len(x); start += hop {
		for i := 0; i < winLen; i++ {
			buf[i] = complex(x[start+i]*win[i], 0)
		}
		plan.Forward(buf, buf)
		row := make([]float64, nBins)
		for k := 0; k < nBins; k++ {
			row[k] = CAbs2(buf[k])
		}
		out = append(out, row)
	}
	return out
}

// SpectrogramASCII renders an STFT magnitude matrix as rough ASCII
// art: time runs left to right, frequency bottom to top, limited to
// [loHz, hiHz]. rows controls the vertical resolution. Intended for
// terminal inspection of packet structure (preamble, header, data
// bursts stand out clearly).
func SpectrogramASCII(stft [][]float64, winLen int, sampleRate float64, loHz, hiHz float64, rows int) []string {
	if len(stft) == 0 || rows < 1 {
		return nil
	}
	nBins := len(stft[0])
	binHz := sampleRate / float64(winLen)
	loBin := int(loHz / binHz)
	hiBin := int(hiHz / binHz)
	if loBin < 0 {
		loBin = 0
	}
	if hiBin >= nBins {
		hiBin = nBins - 1
	}
	if hiBin <= loBin {
		return nil
	}
	// Downsample time to at most 100 columns.
	cols := len(stft)
	colStep := 1
	if cols > 100 {
		colStep = (cols + 99) / 100
		cols = (cols + colStep - 1) / colStep
	}
	// Aggregate into rows x cols power cells.
	cells := make([][]float64, rows)
	for r := range cells {
		cells[r] = make([]float64, cols)
	}
	peak := 0.0
	for t := 0; t < len(stft); t++ {
		c := t / colStep
		if c >= cols {
			break
		}
		for b := loBin; b <= hiBin; b++ {
			r := (b - loBin) * rows / (hiBin - loBin + 1)
			if r >= rows {
				r = rows - 1
			}
			cells[r][c] += stft[t][b]
			if cells[r][c] > peak {
				peak = cells[r][c]
			}
		}
	}
	if peak <= 0 {
		return nil
	}
	const shades = " .:-=+*#%@"
	lines := make([]string, rows)
	for r := 0; r < rows; r++ {
		// Row 0 of output = highest frequency.
		src := cells[rows-1-r]
		line := make([]byte, cols)
		for c := 0; c < cols; c++ {
			db := DB(src[c]/peak + 1e-12)
			// Map -40..0 dB to the shade ramp.
			idx := int((db + 40) / 40 * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			line[c] = shades[idx]
		}
		lines[r] = string(line)
	}
	return lines
}
