package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randReal(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if e := math.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestConvolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Sizes straddling the FFT crossover.
	cases := [][2]int{{1, 1}, {5, 3}, {63, 64}, {64, 64}, {100, 200}, {500, 129}, {1000, 480}}
	for _, c := range cases {
		a := randReal(c[0], rng)
		b := randReal(c[1], rng)
		want := convolveDirect(a, b)
		got := Convolve(a, b)
		if len(got) != len(want) {
			t.Fatalf("size %v: got len %d want %d", c, len(got), len(want))
		}
		if e := maxAbsDiff(got, want); e > 1e-8 {
			t.Errorf("size %v: max err %g", c, e)
		}
	}
}

func TestConvolveCommutativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(na, nb uint8) bool {
		a := randReal(int(na%200)+1, rng)
		b := randReal(int(nb%200)+1, rng)
		ab := Convolve(a, b)
		ba := Convolve(b, a)
		return maxAbsDiff(ab, ba) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestConvolveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randReal(300, rng)
	got := Convolve(x, []float64{1})
	if maxAbsDiff(got, x) > 1e-12 {
		t.Fatal("convolution with unit impulse is not identity")
	}
	// Delayed impulse shifts the signal.
	delayed := Convolve(x, []float64{0, 0, 1})
	for i := range x {
		if math.Abs(delayed[i+2]-x[i]) > 1e-12 {
			t.Fatal("convolution with delayed impulse does not shift")
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []float64{1}) != nil {
		t.Fatal("nil input should give nil output")
	}
	if Convolve([]float64{1}, nil) != nil {
		t.Fatal("nil kernel should give nil output")
	}
}

func TestOverlapAddMatchesConvolve(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, nk := range []int{1, 5, 67, 128, 480} {
		kernel := randReal(nk, rng)
		oa := NewOverlapAdd(kernel)
		for _, nx := range []int{1, 100, 1000, 5000} {
			x := randReal(nx, rng)
			want := Convolve(x, kernel)
			got := oa.Apply(x)
			if len(got) != len(want) {
				t.Fatalf("nk=%d nx=%d: len %d want %d", nk, nx, len(got), len(want))
			}
			if e := maxAbsDiff(got, want); e > 1e-7 {
				t.Errorf("nk=%d nx=%d: max err %g", nk, nx, e)
			}
		}
	}
}

func TestOverlapAddReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	kernel := randReal(100, rng)
	oa := NewOverlapAdd(kernel)
	x1 := randReal(777, rng)
	x2 := randReal(333, rng)
	got1a := oa.Apply(x1)
	_ = oa.Apply(x2)
	got1b := oa.Apply(x1)
	if maxAbsDiff(got1a, got1b) > 1e-12 {
		t.Fatal("OverlapAdd is not stateless across Apply calls")
	}
}

func TestCrossCorrelateFindsTemplate(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tmpl := randReal(200, rng)
	x := make([]float64, 1000)
	for i := range x {
		x[i] = 0.1 * rng.NormFloat64()
	}
	const at = 431
	for i, v := range tmpl {
		x[at+i] += v
	}
	corr := NormalizedCrossCorrelate(x, tmpl)
	peak := ArgMax(corr)
	if peak != at {
		t.Fatalf("correlation peak at %d, want %d", peak, at)
	}
	if corr[peak] < 0.9 {
		t.Fatalf("normalized peak %g, want > 0.9", corr[peak])
	}
}

func TestNormalizedCrossCorrelateRange(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := randReal(2000, rng)
	tmpl := randReal(100, rng)
	corr := NormalizedCrossCorrelate(x, tmpl)
	for i, v := range corr {
		if v > 1.0000001 || v < -1.0000001 {
			t.Fatalf("normalized correlation out of range at %d: %g", i, v)
		}
	}
}

func TestCrossCorrelateAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Force the FFT path (template >= 128, signal >= 512) and check
	// against the direct path.
	x := randReal(2048, rng)
	tmpl := randReal(256, rng)
	got := CrossCorrelate(x, tmpl)
	for k := 0; k < len(got); k += 97 {
		want := Dot(x[k:], tmpl)
		if math.Abs(got[k]-want) > 1e-7 {
			t.Fatalf("lag %d: got %g want %g", k, got[k], want)
		}
	}
}

func TestSegmentCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := randReal(128, rng)
	if c := SegmentCorrelation(a, a); math.Abs(c-1) > 1e-12 {
		t.Fatalf("self correlation %g, want 1", c)
	}
	neg := make([]float64, len(a))
	for i := range a {
		neg[i] = -a[i]
	}
	if c := SegmentCorrelation(a, neg); math.Abs(c+1) > 1e-12 {
		t.Fatalf("anti correlation %g, want -1", c)
	}
	if c := SegmentCorrelation(a, make([]float64, len(a))); c != 0 {
		t.Fatalf("zero-energy correlation %g, want 0", c)
	}
}

func TestAutoCorrelationBasics(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	r := AutoCorrelation(x, 3)
	// Biased estimator: r[k] = (4-k)/4.
	want := []float64{1, 0.75, 0.5, 0.25}
	if maxAbsDiff(r, want) > 1e-12 {
		t.Fatalf("autocorrelation %v, want %v", r, want)
	}
	if AutoCorrelation(nil, 3) != nil {
		t.Fatal("empty input should give nil")
	}
}

func BenchmarkOverlapAdd480TapChannel(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	kernel := randReal(480, rng)
	x := randReal(48000, rng) // one second of audio at 48 kHz
	oa := NewOverlapAdd(kernel)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oa.Apply(x)
	}
}

// BenchmarkOverlapAddApply measures the steady-state convolution cost
// with a fresh output per call (the Transmit path, whose result
// escapes to the caller).
func BenchmarkOverlapAddApply(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	kernel := randReal(480, rng)
	x := randReal(48000, rng)
	oa := NewOverlapAdd(kernel)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oa.Apply(x)
	}
}

// BenchmarkOverlapAddApplyTo measures the allocation-free path: the
// output buffer is recycled across calls, as the time-varying channel
// does for its two realization convolutions.
func BenchmarkOverlapAddApplyTo(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	kernel := randReal(480, rng)
	x := randReal(48000, rng)
	oa := NewOverlapAdd(kernel)
	var out []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = oa.ApplyTo(out, x)
	}
}

// TestOverlapAddApplyToMatchesApply checks the buffer-reuse path
// against the allocating path across growing and shrinking inputs.
func TestOverlapAddApplyToMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	kernel := randReal(100, rng)
	oa := NewOverlapAdd(kernel)
	var out []float64
	for _, n := range []int{1000, 5000, 300, 5000, 1} {
		x := randReal(n, rng)
		want := oa.Apply(x)
		out = oa.ApplyTo(out, x)
		if len(out) != len(want) {
			t.Fatalf("n=%d: ApplyTo length %d, want %d", n, len(out), len(want))
		}
		for i := range want {
			if math.Abs(out[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d: sample %d differs: %g vs %g", n, i, out[i], want[i])
			}
		}
	}
	if got := oa.ApplyTo(out, nil); len(got) != 0 {
		t.Fatal("empty input should give empty output")
	}
	if oa.OutLen(0) != 0 || oa.OutLen(10) != 10+len(kernel)-1 {
		t.Fatal("OutLen mismatch")
	}
}
