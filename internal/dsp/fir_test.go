package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestBandpassResponse(t *testing.T) {
	// The paper's receiver filter: order-128 bandpass, 1-4 kHz passband
	// at 48 kHz.
	f := DesignBandpass(1000, 4000, 48000, 128, Hamming)
	if len(f.Taps) != 129 {
		t.Fatalf("tap count %d, want 129", len(f.Taps))
	}
	// Passband ripple within 3 dB.
	for _, freq := range []float64{1500, 2000, 2500, 3000, 3500} {
		g := f.Gain(freq, 48000)
		if g < AmpFromDB(-3) || g > AmpFromDB(3) {
			t.Errorf("passband gain at %g Hz = %.3f (%.1f dB)", freq, g, AmpDB(g))
		}
	}
	// Stopband rejection at least 20 dB well outside the band.
	for _, freq := range []float64{100, 200, 8000, 12000, 20000} {
		g := f.Gain(freq, 48000)
		if g > AmpFromDB(-20) {
			t.Errorf("stopband gain at %g Hz = %.1f dB, want < -20", freq, AmpDB(g))
		}
	}
}

func TestLowpassResponse(t *testing.T) {
	f := DesignLowpass(2000, 48000, 96, Hamming)
	if g := f.Gain(0, 48000); math.Abs(g-1) > 0.01 {
		t.Fatalf("DC gain %g, want 1", g)
	}
	if g := f.Gain(500, 48000); g < 0.9 {
		t.Errorf("passband gain at 500 Hz %g", g)
	}
	if g := f.Gain(6000, 48000); g > 0.05 {
		t.Errorf("stopband gain at 6 kHz %g", g)
	}
}

func TestFilterRemovesOutOfBandTone(t *testing.T) {
	fs := 48000.0
	f := DesignBandpass(1000, 4000, fs, 128, Hamming)
	in := Tone(2500, 0.1, fs) // in-band
	out := f.Filter(in)
	inPow := Power(in[200 : len(in)-200])
	outPow := Power(out[200 : len(out)-200])
	if outPow < 0.5*inPow {
		t.Fatalf("in-band tone attenuated: in %g out %g", inPow, outPow)
	}
	noise := Tone(200, 0.1, fs) // out of band (low-frequency flow noise)
	out = f.Filter(noise)
	if p := Power(out[200 : len(out)-200]); p > 0.01*Power(noise) {
		t.Fatalf("out-of-band tone leaked: %g", p)
	}
}

func TestFilterSameLength(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	f := DesignBandpass(1000, 4000, 48000, 64, Hamming)
	x := randReal(1234, rng)
	y := f.Filter(x)
	if len(y) != len(x) {
		t.Fatalf("filtered length %d, want %d", len(y), len(x))
	}
}

func TestFIRStateMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := DesignBandpass(1000, 4000, 48000, 64, Hamming)
	x := randReal(4096, rng)
	// Batch causal output = full convolution truncated to len(x).
	full := Convolve(x, f.Taps)
	want := full[:len(x)]
	// Streaming in uneven chunks.
	s := NewFIRState(f)
	var got []float64
	for start := 0; start < len(x); {
		end := start + 100 + int(rng.Int31n(300))
		if end > len(x) {
			end = len(x)
		}
		got = append(got, s.Process(x[start:end])...)
		start = end
	}
	if len(got) != len(want) {
		t.Fatalf("streaming output length %d, want %d", len(got), len(want))
	}
	if e := maxAbsDiff(got, want); e > 1e-9 {
		t.Fatalf("streaming differs from batch: %g", e)
	}
}

func TestFIRStateReset(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := DesignLowpass(4000, 48000, 32, Hann)
	s := NewFIRState(f)
	x := randReal(500, rng)
	first := s.Process(x)
	s.Reset()
	second := s.Process(x)
	if maxAbsDiff(first, second) > 1e-12 {
		t.Fatal("Reset did not clear history")
	}
}

func TestDesignValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("lowpass cutoff 0", func() { DesignLowpass(0, 48000, 64, Hamming) })
	mustPanic("lowpass above nyquist", func() { DesignLowpass(30000, 48000, 64, Hamming) })
	mustPanic("bandpass inverted", func() { DesignBandpass(4000, 1000, 48000, 64, Hamming) })
}

func BenchmarkBandpassFilter1s(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	f := DesignBandpass(1000, 4000, 48000, 128, Hamming)
	x := randReal(48000, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Filter(x)
	}
}
