// Package dsp provides the signal-processing substrate used by the
// aquago underwater modem: fast Fourier transforms, FIR filter design,
// fast convolution and correlation, tone detection, Toeplitz solvers,
// resampling and spectral statistics.
//
// Everything is implemented from scratch on the standard library. All
// transforms operate on complex128/float64 slices; none of the
// functions retain references to their arguments.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// planTables holds the immutable precomputed state for transforms of
// one size: factorization, twiddle factors (forward and conjugate),
// the bit-reversal permutation for power-of-two sizes and the
// Bluestein chirp kernel for sizes with large prime factors. Tables
// are shared by every Plan of the same size through a global cache
// (tablesFor), so building a Plan costs no trigonometry after the
// first one — only its private scratch buffers.
type planTables struct {
	n        int
	factors  []int        // prime factors of n in ascending order
	maxRadix int          // largest factor (caps the small-DFT scratch)
	pow2     bool         // n is a power of two: iterative radix-2 path
	tw       []complex128 // tw[j] = exp(-2*pi*i*j/n)
	twInv    []complex128 // conj(tw[j]), used by inverse transforms
	rev      []int32      // bit-reversal permutation (pow2 only)

	// Bluestein state, built only when n has a factor > 5.
	blu *bluTables
}

// bluTables is the immutable part of the Bluestein chirp-z transform.
type bluTables struct {
	n    int
	m    int         // power-of-two convolution size >= 2n-1
	sub  *planTables // tables for the size-m sub-transform
	w    []complex128
	bfft []complex128 // forward FFT of the chirp kernel
}

// planTableCache maps transform size -> *planTables. Tables are
// immutable after construction, so sharing them across goroutines is
// safe even though a Plan itself is not.
var planTableCache sync.Map

// tablesFor returns the shared tables for size n, building them on
// first use.
func tablesFor(n int) *planTables {
	if v, ok := planTableCache.Load(n); ok {
		return v.(*planTables)
	}
	t := buildTables(n)
	actual, _ := planTableCache.LoadOrStore(n, t)
	return actual.(*planTables)
}

func buildTables(n int) *planTables {
	t := &planTables{n: n}
	t.factors = factorize(n)
	t.maxRadix = 1
	for _, f := range t.factors {
		if f > t.maxRadix {
			t.maxRadix = f
		}
	}
	if t.maxRadix > 5 {
		t.blu = newBluTables(n)
		return t
	}
	t.tw = make([]complex128, n)
	t.twInv = make([]complex128, n)
	for j := 0; j < n; j++ {
		s, c := math.Sincos(-2 * math.Pi * float64(j) / float64(n))
		t.tw[j] = complex(c, s)
		t.twInv[j] = complex(c, -s)
	}
	if n&(n-1) == 0 {
		t.pow2 = true
		t.rev = bitReversal(n)
	}
	return t
}

// bitReversal returns the bit-reversal permutation for a power-of-two
// size (rev[rev[i]] == i, so it doubles as an in-place swap schedule).
func bitReversal(n int) []int32 {
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	rev := make([]int32, n)
	for i := range rev {
		rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	return rev
}

// Plan holds the per-instance state (shared tables plus private
// scratch space) for transforms of one fixed size. A Plan is cheap to
// build — the trigonometric tables are cached per size process-wide —
// and amortizes all scratch allocation across calls.
//
// A Plan is NOT safe for concurrent use; each goroutine should own its
// plan (see NewPlan). The zero value is not usable.
type Plan struct {
	t       *planTables
	n       int
	scratch []complex128 // mixed-radix combine scratch, length n
	dft     []complex128 // small-DFT scratch (max factor wide)
	alias   []complex128 // lazily built copy buffer for aliased calls

	// Bluestein scratch, allocated only when n has a factor > 5.
	blu *bluestein
}

// NewPlan returns a transform plan for size n. Power-of-two sizes use
// an iterative radix-2 kernel; other sizes whose prime factors are all
// in {2,3,5} (this covers the modem's 960, 1920 and 4800-point
// symbols) use a mixed-radix Cooley-Tukey decomposition; any other
// size transparently falls back to Bluestein's chirp-z algorithm.
// NewPlan panics if n < 1.
func NewPlan(n int) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("dsp: invalid FFT size %d", n))
	}
	t := tablesFor(n)
	p := &Plan{t: t, n: n}
	switch {
	case t.blu != nil:
		p.blu = newBluestein(t.blu)
	case t.pow2:
		// The iterative kernel works in place after the bit-reversal
		// permutation; no scratch needed.
	default:
		p.scratch = make([]complex128, n)
		p.dft = make([]complex128, t.maxRadix)
	}
	return p
}

// Size returns the transform length the plan was built for.
func (p *Plan) Size() int { return p.n }

// Forward computes the unnormalized forward DFT of src into dst.
// dst and src must both have length Size(); they may alias.
func (p *Plan) Forward(dst, src []complex128) {
	p.checkLen(dst, src)
	p.transform(dst, src, false)
}

// Inverse computes the inverse DFT of src into dst, normalized by 1/n
// so that Inverse(Forward(x)) == x. dst and src may alias.
func (p *Plan) Inverse(dst, src []complex128) {
	p.checkLen(dst, src)
	p.transform(dst, src, true)
	scale := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= scale
	}
}

func (p *Plan) transform(dst, src []complex128, inverse bool) {
	t := p.t
	switch {
	case t.blu != nil:
		p.blu.transform(dst, src, inverse)
	case t.pow2:
		p.pow2Transform(dst, src, inverse)
	default:
		if &dst[0] == &src[0] {
			if p.alias == nil {
				p.alias = make([]complex128, p.n)
			}
			copy(p.alias, src)
			src = p.alias
		}
		tw := t.tw
		if inverse {
			tw = t.twInv
		}
		p.recurse(dst, src, p.n, 1, 0, tw, inverse)
	}
}

func (p *Plan) checkLen(dst, src []complex128) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("dsp: plan size %d, got dst %d src %d", p.n, len(dst), len(src)))
	}
}

// pow2Transform is the iterative radix-2 decimation-in-time kernel:
// bit-reversal permutation followed by log2(n) butterfly passes, fully
// in place. It is the hot path of the overlap-add convolvers, whose
// FFT sizes are always powers of two.
func (p *Plan) pow2Transform(dst, src []complex128, inverse bool) {
	n := p.n
	rev := p.t.rev
	if &dst[0] == &src[0] {
		// rev is an involution: swapping each pair once permutes in
		// place without scratch.
		for i, j := range rev {
			if int32(i) < j {
				dst[i], dst[j] = dst[j], dst[i]
			}
		}
	} else {
		for i, j := range rev {
			dst[i] = src[j]
		}
	}
	tw := p.t.tw
	if inverse {
		tw = p.t.twInv
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for base := 0; base < n; base += size {
			ti := 0
			for k := base; k < base+half; k++ {
				a := dst[k]
				b := dst[k+half] * tw[ti]
				dst[k] = a + b
				dst[k+half] = a - b
				ti += step
			}
		}
	}
}

// recurse performs a decimation-in-time step: the length-n transform
// at the given stride of src is written contiguously into dst.
// factIdx indexes the next factor to peel off; tw is the (forward or
// conjugate) twiddle table.
func (p *Plan) recurse(dst, src []complex128, n, stride, factIdx int, tw []complex128, inverse bool) {
	if n == 1 {
		dst[0] = src[0]
		return
	}
	r := p.t.factors[factIdx] // radix for this stage
	m := n / r
	// Transform the r decimated subsequences.
	for q := 0; q < r; q++ {
		p.recurse(dst[q*m:(q+1)*m], src[q*stride:], m, stride*r, factIdx+1, tw, inverse)
	}
	// Combine: X[k1 + m*k2] = sum_q W_n^(k1*q) * W_r^(k2*q) * Y_q[k1].
	twStep := p.n / n
	out := p.scratch[:n]
	z := p.dft[:r]
	for k1 := 0; k1 < m; k1++ {
		// The twiddle index k1*q*twStep advances by wStep per q;
		// wStep < p.n, so a single conditional subtraction replaces
		// the modulo in the inner loop.
		wStep := k1 * twStep
		idx := 0
		for q := 0; q < r; q++ {
			z[q] = dst[q*m+k1] * tw[idx]
			idx += wStep
			if idx >= p.n {
				idx -= p.n
			}
		}
		switch r {
		case 2:
			out[k1] = z[0] + z[1]
			out[k1+m] = z[0] - z[1]
		case 3:
			dft3(out, z, k1, m, inverse)
		case 5:
			dft5(out, z, k1, m, inverse)
		default:
			p.dftGeneric(out, z, k1, m, r, tw)
		}
	}
	copy(dst[:n], out)
}

// dft3 writes the 3-point DFT of z into out[k1], out[k1+m], out[k1+2m].
func dft3(out, z []complex128, k1, m int, inverse bool) {
	const s3 = 0.8660254037844386 // sin(pi/3)
	t1 := z[1] + z[2]
	t2 := z[0] - t1*complex(0.5, 0)
	t3 := (z[1] - z[2]) * complex(0, -s3)
	if inverse {
		t3 = -t3
	}
	out[k1] = z[0] + t1
	out[k1+m] = t2 + t3
	out[k1+2*m] = t2 - t3
}

// dft5 writes the 5-point DFT of z into out[k1+q*m] for q=0..4 using
// the Winograd-style decomposition.
func dft5(out, z []complex128, k1, m int, inverse bool) {
	const (
		c1 = 0.30901699437494745 // cos(2pi/5)
		c2 = -0.8090169943749475 // cos(4pi/5)
		s1 = 0.9510565162951535  // sin(2pi/5)
		s2 = 0.5877852522924731  // sin(4pi/5)
	)
	sa, sb := s1, s2
	if inverse {
		sa, sb = -sa, -sb
	}
	t1 := z[1] + z[4]
	t2 := z[2] + z[3]
	t3 := z[1] - z[4]
	t4 := z[2] - z[3]
	out[k1] = z[0] + t1 + t2
	a1 := z[0] + t1*complex(c1, 0) + t2*complex(c2, 0)
	a2 := z[0] + t1*complex(c2, 0) + t2*complex(c1, 0)
	b1 := t3*complex(0, -sa) + t4*complex(0, -sb)
	b2 := t3*complex(0, -sb) - t4*complex(0, -sa)
	out[k1+m] = a1 + b1
	out[k1+2*m] = a2 + b2
	out[k1+3*m] = a2 - b2
	out[k1+4*m] = a1 - b1
}

// dftGeneric is the O(r^2) fallback for radices other than 2/3/5.
// It is only reachable when factorize admits larger primes, which the
// current implementation routes to Bluestein instead; it is kept so the
// combine step stays correct if the factor policy ever changes.
func (p *Plan) dftGeneric(out, z []complex128, k1, m, r int, tw []complex128) {
	twStep := p.n / r
	for k2 := 0; k2 < r; k2++ {
		var acc complex128
		idx := 0
		wStep := k2 * twStep % p.n
		for q := 0; q < r; q++ {
			acc += z[q] * tw[idx]
			idx += wStep
			if idx >= p.n {
				idx -= p.n
			}
		}
		out[k1+k2*m] = acc
	}
}

// factorize returns the prime factorization of n in ascending order.
func factorize(n int) []int {
	var f []int
	for _, p := range []int{2, 3, 5} {
		for n%p == 0 {
			f = append(f, p)
			n /= p
		}
	}
	for d := 7; d*d <= n; d += 2 {
		for n%d == 0 {
			f = append(f, d)
			n /= d
		}
	}
	if n > 1 {
		f = append(f, n)
	}
	return f
}

// newBluTables precomputes the chirp and its transformed kernel for
// Bluestein's algorithm: an arbitrary-length DFT expressed as a
// convolution, evaluated with a power-of-two FFT.
func newBluTables(n int) *bluTables {
	m := 1 << uint(bits.Len(uint(2*n-1)))
	bt := &bluTables{n: n, m: m, sub: tablesFor(m)}
	bt.w = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for large n; reduce mod 2n first.
		kk := (int64(k) * int64(k)) % int64(2*n)
		s, c := math.Sincos(-math.Pi * float64(kk) / float64(n))
		bt.w[k] = complex(c, s)
	}
	kernel := make([]complex128, m)
	kernel[0] = complex(1, 0)
	for k := 1; k < n; k++ {
		conj := complex(real(bt.w[k]), -imag(bt.w[k]))
		kernel[k] = conj
		kernel[m-k] = conj
	}
	bt.bfft = make([]complex128, m)
	NewPlan(m).Forward(bt.bfft, kernel)
	return bt
}

// bluestein carries the per-plan scratch for the chirp-z transform.
type bluestein struct {
	t   *bluTables
	sub *Plan
	a   []complex128
	b   []complex128
}

func newBluestein(t *bluTables) *bluestein {
	return &bluestein{
		t:   t,
		sub: NewPlan(t.m),
		a:   make([]complex128, t.m),
		b:   make([]complex128, t.m),
	}
}

func (bs *bluestein) transform(dst, src []complex128, inverse bool) {
	n, m := bs.t.n, bs.t.m
	w, bfft := bs.t.w, bs.t.bfft
	for i := range bs.a {
		bs.a[i] = 0
	}
	for k := 0; k < n; k++ {
		x := src[k]
		if inverse {
			// Inverse DFT of x == conj(forward DFT of conj(x)).
			x = complex(real(x), -imag(x))
		}
		bs.a[k] = x * w[k]
	}
	bs.sub.Forward(bs.b, bs.a)
	for i := 0; i < m; i++ {
		bs.b[i] *= bfft[i]
	}
	bs.sub.Inverse(bs.a, bs.b)
	for k := 0; k < n; k++ {
		v := bs.a[k] * w[k]
		if inverse {
			v = complex(real(v), -imag(v))
		}
		dst[k] = v
	}
}

// FFT returns the forward DFT of x as a new slice. For repeated
// transforms of the same size prefer NewPlan.
func FFT(x []complex128) []complex128 {
	p := NewPlan(len(x))
	out := make([]complex128, len(x))
	p.Forward(out, x)
	return out
}

// IFFT returns the normalized inverse DFT of x as a new slice.
func IFFT(x []complex128) []complex128 {
	p := NewPlan(len(x))
	out := make([]complex128, len(x))
	p.Inverse(out, x)
	return out
}

// FFTReal transforms a real signal, returning the full complex
// spectrum (length len(x)).
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}
