package dsp

import "math"

// CrossCorrelate returns the sliding cross-correlation of signal x
// with template t:
//
//	out[k] = sum_j x[k+j] * t[j],  k = 0 .. len(x)-len(t)
//
// i.e. "valid" lags only. It switches to an FFT implementation for
// large products. The modem's coarse preamble detector is built on
// this.
func CrossCorrelate(x, t []float64) []float64 {
	if len(t) == 0 || len(x) < len(t) {
		return nil
	}
	nOut := len(x) - len(t) + 1
	if len(t) < 128 || len(x) < 512 {
		out := make([]float64, nOut)
		for k := 0; k < nOut; k++ {
			out[k] = Dot(x[k:], t)
		}
		return out
	}
	// Correlation = convolution with the reversed template.
	rev := make([]float64, len(t))
	for i, v := range t {
		rev[len(t)-1-i] = v
	}
	full := Convolve(x, rev)
	out := make([]float64, nOut)
	copy(out, full[len(t)-1:])
	return out
}

// NormalizedCrossCorrelate returns the cross-correlation of x with t
// where each lag is normalized by sqrt(E_window * E_template), yielding
// values in [-1, 1]. Windows with zero energy produce 0.
func NormalizedCrossCorrelate(x, t []float64) []float64 {
	raw := CrossCorrelate(x, t)
	if raw == nil {
		return nil
	}
	et := Energy(t)
	if et == 0 {
		return make([]float64, len(raw))
	}
	// Running window energy of x.
	var we float64
	for _, v := range x[:len(t)] {
		we += v * v
	}
	out := make([]float64, len(raw))
	for k := range raw {
		if we > 0 {
			out[k] = raw[k] / math.Sqrt(we*et)
		}
		if k+len(t) < len(x) {
			we += x[k+len(t)]*x[k+len(t)] - x[k]*x[k]
			if we < 0 {
				we = 0 // numeric drift guard
			}
		}
	}
	return out
}

// AutoCorrelation returns the biased autocorrelation r[0..maxLag] of x:
// r[k] = (1/N) sum_n x[n] x[n+k]. The MMSE equalizer builds its
// Toeplitz system from this.
func AutoCorrelation(x []float64, maxLag int) []float64 {
	if maxLag >= len(x) {
		maxLag = len(x) - 1
	}
	if maxLag < 0 {
		return nil
	}
	out := make([]float64, maxLag+1)
	n := float64(len(x))
	for k := 0; k <= maxLag; k++ {
		var s float64
		for i := 0; i+k < len(x); i++ {
			s += x[i] * x[i+k]
		}
		out[k] = s / n
	}
	return out
}

// SegmentCorrelation computes the normalized correlation between two
// equal-length real segments: <a,b> / sqrt(<a,a><b,b>). Returns 0 if
// either segment has no energy. The paper's sliding-correlation
// preamble metric correlates adjacent PN-designed OFDM segments with
// this primitive.
func SegmentCorrelation(a, b []float64) float64 {
	ea, eb := Energy(a), Energy(b)
	if ea == 0 || eb == 0 {
		return 0
	}
	return Dot(a, b) / math.Sqrt(ea*eb)
}
