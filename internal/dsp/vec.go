package dsp

import (
	"math"
	"sort"
)

// Energy returns the sum of squared samples of x.
func Energy(x []float64) float64 {
	var e float64
	for _, v := range x {
		e += v * v
	}
	return e
}

// Power returns the mean squared sample value of x (0 for empty x).
func Power(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// RMS returns the root-mean-square amplitude of x.
func RMS(x []float64) float64 { return math.Sqrt(Power(x)) }

// Dot returns the inner product of a and b over their common length.
func Dot(a, b []float64) float64 {
	n := min(len(a), len(b))
	var s float64
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Scale multiplies every sample of x by g in place and returns x.
func Scale(x []float64, g float64) []float64 {
	for i := range x {
		x[i] *= g
	}
	return x
}

// Add accumulates src into dst element-wise over the common length.
func Add(dst, src []float64) {
	n := min(len(dst), len(src))
	for i := 0; i < n; i++ {
		dst[i] += src[i]
	}
}

// AddAt accumulates src into dst starting at offset off, clipping to
// the bounds of dst. Offsets beyond dst or negative offsets that move
// src entirely out of range contribute nothing.
func AddAt(dst, src []float64, off int) {
	for i, v := range src {
		j := off + i
		if j < 0 {
			continue
		}
		if j >= len(dst) {
			break
		}
		dst[j] += v
	}
}

// MaxAbs returns the largest absolute sample value in x.
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Normalize scales x in place so its peak absolute value is peak.
// A zero signal is returned unchanged.
func Normalize(x []float64, peak float64) []float64 {
	m := MaxAbs(x)
	if m == 0 {
		return x
	}
	return Scale(x, peak/m)
}

// ArgMax returns the index of the maximum value of x, or -1 for empty x.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, arg := x[0], 0
	for i, v := range x {
		if v > best {
			best, arg = v, i
		}
	}
	return arg
}

// DB converts a power ratio to decibels (10*log10). Non-positive
// ratios map to -inf.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// AmpDB converts an amplitude ratio to decibels (20*log10).
func AmpDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(ratio)
}

// FromDB converts decibels to a power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// AmpFromDB converts decibels to an amplitude ratio.
func AmpFromDB(db float64) float64 { return math.Pow(10, db/20) }

// CAbs2 returns |z|^2 without the square root of cmplx.Abs.
func CAbs2(z complex128) float64 {
	return real(z)*real(z) + imag(z)*imag(z)
}

// Conj returns the complex conjugate (avoids importing math/cmplx at
// call sites that only need conjugation).
func Conj(z complex128) complex128 { return complex(real(z), -imag(z)) }

// Real extracts the real parts of a complex vector.
func Real(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = real(v)
	}
	return out
}

// Complex widens a real vector into a complex one.
func Complex(x []float64) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	return out
}

// Mean returns the arithmetic mean of x (0 for empty x).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Median returns the median of x without modifying it (0 for empty x).
func Median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	c := append([]float64(nil), x...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return 0.5 * (c[n/2-1] + c[n/2])
}

// Percentile returns the p-th percentile (0..100) of x using linear
// interpolation between order statistics.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	c := append([]float64(nil), x...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	pos := p / 100 * float64(len(c)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c) {
		return c[lo]
	}
	return c[lo]*(1-frac) + c[lo+1]*frac
}
