package dsp

import "math"

// Goertzel evaluates the DFT of x at a single frequency (Hz) using the
// Goertzel recurrence — O(n) per tone with no FFT. The SoS beacon
// demodulator compares tone energies with this.
func Goertzel(x []float64, freqHz, sampleRate float64) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	// Exact-frequency Goertzel (not bin-quantized).
	w := 2 * math.Pi * freqHz / sampleRate
	cw := math.Cos(w)
	sw := math.Sin(w)
	coeff := 2 * cw
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	re := s1*cw - s2
	im := s1 * sw
	return complex(re, im)
}

// GoertzelPower returns |X(f)|^2 at the given frequency.
func GoertzelPower(x []float64, freqHz, sampleRate float64) float64 {
	return CAbs2(Goertzel(x, freqHz, sampleRate))
}

// TonePowers evaluates GoertzelPower for each frequency in freqs,
// reusing one pass over x per tone. Intended for small tone sets (FSK
// demodulation, ID/ACK detection).
func TonePowers(x []float64, freqs []float64, sampleRate float64) []float64 {
	out := make([]float64, len(freqs))
	for i, f := range freqs {
		out[i] = GoertzelPower(x, f, sampleRate)
	}
	return out
}
