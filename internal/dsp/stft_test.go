package dsp

import (
	"strings"
	"testing"
)

func TestSTFTShapeAndToneLocation(t *testing.T) {
	fs := 48000.0
	x := Tone(2000, 0.5, fs)
	stft := STFT(x, 1024, 512, Hann)
	if len(stft) == 0 {
		t.Fatal("no frames")
	}
	wantFrames := (len(x)-1024)/512 + 1
	if len(stft) != wantFrames {
		t.Fatalf("frames %d, want %d", len(stft), wantFrames)
	}
	if len(stft[0]) != 513 {
		t.Fatalf("bins %d, want 513", len(stft[0]))
	}
	// Peak bin must be at 2000 Hz in every frame.
	wantBin := int(2000 / (fs / 1024))
	for f, row := range stft {
		best := ArgMax(row)
		if best < wantBin-1 || best > wantBin+1 {
			t.Fatalf("frame %d: peak bin %d, want ~%d", f, best, wantBin)
		}
	}
}

func TestSTFTInvalidInputs(t *testing.T) {
	if STFT(make([]float64, 10), 1024, 512, Hann) != nil {
		t.Fatal("short input should give nil")
	}
	if STFT(make([]float64, 2048), 1, 512, Hann) != nil {
		t.Fatal("tiny window should give nil")
	}
	if STFT(make([]float64, 2048), 1024, 0, Hann) != nil {
		t.Fatal("zero hop should give nil")
	}
}

func TestSpectrogramASCII(t *testing.T) {
	fs := 48000.0
	// A chirp sweeps bottom-left to top-right on the spectrogram.
	x := Chirp(1000, 4000, 0.5, fs)
	stft := STFT(x, 1024, 512, Hann)
	lines := SpectrogramASCII(stft, 1024, fs, 500, 4500, 10)
	if len(lines) != 10 {
		t.Fatalf("rows %d, want 10", len(lines))
	}
	width := len(lines[0])
	for _, l := range lines {
		if len(l) != width {
			t.Fatal("ragged spectrogram")
		}
	}
	// A rising chirp: the energy centroid of the top (high-frequency)
	// row must sit later in time than the bottom row's.
	centroid := func(line string) float64 {
		const shades = " .:-=+*#%@"
		var wsum, moment float64
		for i := 0; i < len(line); i++ {
			w := float64(strings.IndexByte(shades, line[i]))
			if w < 0 {
				w = 0
			}
			wsum += w
			moment += w * float64(i)
		}
		if wsum == 0 {
			return -1
		}
		return moment / wsum
	}
	top := centroid(lines[0])               // highest frequency row
	bottom := centroid(lines[len(lines)-1]) // lowest frequency row
	if top >= 0 && bottom >= 0 && top <= bottom {
		t.Fatalf("chirp should ascend: high-freq centroid %.1f, low-freq %.1f", top, bottom)
	}
}

func TestSpectrogramASCIIEmpty(t *testing.T) {
	if SpectrogramASCII(nil, 1024, 48000, 500, 4500, 8) != nil {
		t.Fatal("empty STFT should give nil")
	}
	stft := STFT(Tone(2000, 0.1, 48000), 1024, 512, Hann)
	if SpectrogramASCII(stft, 1024, 48000, 4000, 1000, 8) != nil {
		t.Fatal("inverted band should give nil")
	}
}
