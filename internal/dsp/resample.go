package dsp

import "math"

// ResampleLinear time-scales x by the given factor using linear
// interpolation: output sample i is x evaluated at position i/factor.
// factor > 1 stretches (slows down / Doppler away), factor < 1
// compresses (Doppler toward). Output length is
// floor(float64(len(x)-1)*factor)+1.
//
// Linear interpolation is accurate to well under -40 dB error for the
// sub-0.5 % rate offsets underwater motion produces (2 m/s relative
// speed over 1500 m/s sound speed), which is the modem's use case.
func ResampleLinear(x []float64, factor float64) []float64 {
	if len(x) == 0 || factor <= 0 {
		return nil
	}
	n := int(float64(len(x)-1)*factor) + 1
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		pos := float64(i) / factor
		j := int(pos)
		if j >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(j)
		out[i] = x[j]*(1-frac) + x[j+1]*frac
	}
	return out
}

// ResampleSinc time-scales x by factor using a Hann-windowed sinc
// interpolator with the given number of taps per side (8-16 is
// typical). Higher quality than ResampleLinear at the cost of
// taps*2 multiplies per output sample.
func ResampleSinc(x []float64, factor float64, taps int) []float64 {
	if len(x) == 0 || factor <= 0 {
		return nil
	}
	if taps < 1 {
		taps = 8
	}
	n := int(float64(len(x)-1)*factor) + 1
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		pos := float64(i) / factor
		center := int(math.Floor(pos))
		var acc, wsum float64
		for k := center - taps + 1; k <= center+taps; k++ {
			if k < 0 || k >= len(x) {
				continue
			}
			d := pos - float64(k)
			w := sinc(d) * hannAt(d, float64(taps))
			acc += x[k] * w
			wsum += w
		}
		if wsum != 0 {
			out[i] = acc / wsum
		}
	}
	return out
}

// hannAt is the Hann window evaluated at offset d in [-taps, taps].
func hannAt(d, taps float64) float64 {
	if d < -taps || d > taps {
		return 0
	}
	return 0.5 + 0.5*math.Cos(math.Pi*d/taps)
}
