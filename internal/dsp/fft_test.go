package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// dftNaive is the O(n^2) reference DFT.
func dftNaive(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			acc += x[j] * cmplx.Exp(complex(0, ang))
		}
		if inverse {
			acc /= complex(float64(n), 0)
		}
		out[k] = acc
	}
	return out
}

func randComplex(n int, rng *rand.Rand) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Cover radix-2/3/5 mixes, the modem's real sizes, and Bluestein
	// sizes (primes and prime-containing composites).
	sizes := []int{1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 20, 25, 27, 30, 32,
		48, 60, 64, 7, 11, 13, 14, 21, 22, 31, 33, 37, 49, 96, 120, 240, 960}
	for _, n := range sizes {
		x := randComplex(n, rng)
		want := dftNaive(x, false)
		got := FFT(x)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Errorf("FFT size %d: max error %g", n, e)
		}
	}
}

func TestIFFTMatchesNaiveInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 6, 7, 12, 30, 37, 60, 96, 100} {
		x := randComplex(n, rng)
		want := dftNaive(x, true)
		got := IFFT(x)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Errorf("IFFT size %d: max error %g", n, e)
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Property: IFFT(FFT(x)) == x for arbitrary complex vectors.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 512 {
			raw = raw[:512]
		}
		// Clamp magnitudes so quick's extreme values don't overflow.
		x := make([]complex128, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			v = math.Mod(v, 1e6)
			x[i] = complex(v, -v/2)
		}
		p := NewPlan(len(x))
		fw := make([]complex128, len(x))
		bw := make([]complex128, len(x))
		p.Forward(fw, x)
		p.Inverse(bw, fw)
		scale := 0.0
		for _, v := range x {
			if a := cmplx.Abs(v); a > scale {
				scale = a
			}
		}
		tol := 1e-9 * (scale + 1) * float64(len(x))
		return maxErr(bw, x) <= tol
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 60
	for trial := 0; trial < 25; trial++ {
		x := randComplex(n, rng)
		y := randComplex(n, rng)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		fx, fy, fs := FFT(x), FFT(y), FFT(sum)
		for i := range fs {
			want := a*fx[i] + fy[i]
			if cmplx.Abs(fs[i]-want) > 1e-9*float64(n) {
				t.Fatalf("linearity violated at bin %d", i)
			}
		}
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{32, 60, 960, 97} {
		x := randComplex(n, rng)
		var tEnergy float64
		for _, v := range x {
			tEnergy += CAbs2(v)
		}
		f := FFT(x)
		var fEnergy float64
		for _, v := range f {
			fEnergy += CAbs2(v)
		}
		fEnergy /= float64(n)
		if math.Abs(tEnergy-fEnergy) > 1e-7*tEnergy {
			t.Errorf("Parseval violated for n=%d: time %g freq %g", n, tEnergy, fEnergy)
		}
	}
}

func TestFFTImpulseAndDC(t *testing.T) {
	n := 30
	impulse := make([]complex128, n)
	impulse[0] = 1
	f := FFT(impulse)
	for k, v := range f {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v, want 1", k, v)
		}
	}
	dc := make([]complex128, n)
	for i := range dc {
		dc[i] = 1
	}
	f = FFT(dc)
	if cmplx.Abs(f[0]-complex(float64(n), 0)) > 1e-9 {
		t.Fatalf("DC bin = %v, want %d", f[0], n)
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(f[k]) > 1e-9 {
			t.Fatalf("DC leakage at bin %d: %v", k, f[k])
		}
	}
}

func TestFFTSingleToneBin(t *testing.T) {
	// A complex exponential at bin k must concentrate all energy there.
	n := 960
	k := 40
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * float64(k) * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, ang))
	}
	f := FFT(x)
	if cmplx.Abs(f[k]-complex(float64(n), 0)) > 1e-6 {
		t.Fatalf("tone bin magnitude %v, want %d", f[k], n)
	}
	for j := range f {
		if j != k && cmplx.Abs(f[j]) > 1e-6 {
			t.Fatalf("leakage at bin %d: %g", j, cmplx.Abs(f[j]))
		}
	}
}

func TestPlanForwardAliasedBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randComplex(96, rng)
	want := FFT(x)
	p := NewPlan(96)
	buf := append([]complex128(nil), x...)
	p.Forward(buf, buf) // in-place
	if maxErr(buf, want) > 1e-9 {
		t.Fatal("in-place Forward differs from out-of-place")
	}
}

func TestPlanSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPlan(0) should panic")
		}
	}()
	NewPlan(0)
}

func TestPlanLengthMismatchPanics(t *testing.T) {
	p := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("Forward with wrong lengths should panic")
		}
	}()
	p.Forward(make([]complex128, 4), make([]complex128, 8))
}

func TestFactorize(t *testing.T) {
	cases := map[int][]int{
		1:    nil,
		2:    {2},
		12:   {2, 2, 3},
		960:  {2, 2, 2, 2, 2, 2, 3, 5},
		97:   {97},
		4800: {2, 2, 2, 2, 2, 2, 3, 5, 5},
		77:   {7, 11},
	}
	for n, want := range cases {
		got := factorize(n)
		if len(got) != len(want) {
			t.Errorf("factorize(%d) = %v, want %v", n, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("factorize(%d) = %v, want %v", n, got, want)
				break
			}
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 960: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTRealMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 120)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := FFTReal(x)
	want := FFT(Complex(x))
	if maxErr(got, want) > 1e-12 {
		t.Fatal("FFTReal differs from complex FFT")
	}
	// Hermitian symmetry of a real signal's spectrum.
	n := len(x)
	for k := 1; k < n/2; k++ {
		if cmplx.Abs(got[k]-Conj(got[n-k])) > 1e-9 {
			t.Fatalf("Hermitian symmetry violated at bin %d", k)
		}
	}
}

func BenchmarkFFT960(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randComplex(960, rng)
	out := make([]complex128, 960)
	p := NewPlan(960)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(out, x)
	}
}

func BenchmarkFFT4800(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randComplex(4800, rng)
	out := make([]complex128, 4800)
	p := NewPlan(4800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(out, x)
	}
}
