package dsp

import "math"

// Chirp generates a linear frequency-modulated (LFM) sweep from f0 to
// f1 Hz over dur seconds at the given sample rate, with unit amplitude.
// The paper's channel-sounding experiments use 1-5 kHz and 1-3 kHz
// chirps of 0.5-1 s.
func Chirp(f0, f1, dur, sampleRate float64) []float64 {
	n := int(dur * sampleRate)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	k := (f1 - f0) / dur // sweep rate Hz/s
	for i := 0; i < n; i++ {
		t := float64(i) / sampleRate
		phase := 2 * math.Pi * (f0*t + 0.5*k*t*t)
		out[i] = math.Sin(phase)
	}
	return out
}

// Tone generates a pure sinusoid at freq Hz for dur seconds.
func Tone(freq, dur, sampleRate float64) []float64 {
	n := int(dur * sampleRate)
	out := make([]float64, n)
	w := 2 * math.Pi * freq / sampleRate
	for i := range out {
		out[i] = math.Sin(w * float64(i))
	}
	return out
}

// ToneN generates n samples of a pure sinusoid at freq Hz.
func ToneN(freq float64, n int, sampleRate float64) []float64 {
	out := make([]float64, n)
	w := 2 * math.Pi * freq / sampleRate
	for i := range out {
		out[i] = math.Sin(w * float64(i))
	}
	return out
}

// Silence returns n zero samples.
func Silence(n int) []float64 { return make([]float64, n) }
