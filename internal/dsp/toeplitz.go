package dsp

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by SolveSymmetricToeplitz when the
// Levinson recursion encounters a non-positive-definite system (e.g. a
// degenerate autocorrelation). Callers typically regularize the
// diagonal and retry, or fall back to SolveDense.
var ErrNotPositiveDefinite = errors.New("dsp: toeplitz system not positive definite")

// SolveSymmetricToeplitz solves T x = y where T is the n-by-n symmetric
// Toeplitz matrix whose first column is t (T[i][j] = t[|i-j|]), using
// the Levinson recursion in O(n^2) time and O(n) extra space.
//
// This is the workhorse behind the time-domain MMSE equalizer: with a
// 480-tap design (the paper's channel length) a dense solve would be
// ~480^3 flops per packet, Levinson is ~480^2.
func SolveSymmetricToeplitz(t, y []float64) ([]float64, error) {
	n := len(t)
	if n == 0 || len(y) != n {
		return nil, errors.New("dsp: toeplitz size mismatch")
	}
	if t[0] == 0 {
		return nil, ErrNotPositiveDefinite
	}
	x := make([]float64, n)
	f := make([]float64, n) // forward vector
	newf := make([]float64, n)
	f[0] = 1 / t[0]
	x[0] = y[0] / t[0]
	for k := 1; k < n; k++ {
		// Forward error: row k of T against (f, 0).
		var ef float64
		for i := 0; i < k; i++ {
			ef += t[k-i] * f[i]
		}
		d := 1 - ef*ef
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		alpha := 1 / d
		beta := -ef * alpha
		for i := 0; i <= k; i++ {
			var a, b float64
			if i < k {
				a = f[i]
			}
			if i > 0 {
				b = f[k-i]
			}
			newf[i] = alpha*a + beta*b
		}
		copy(f[:k+1], newf[:k+1])
		// Solution error: row k of T against (x, 0).
		var ex float64
		for i := 0; i < k; i++ {
			ex += t[k-i] * x[i]
		}
		coef := y[k] - ex
		// Backward vector of the symmetric system is reverse(f).
		for i := 0; i <= k; i++ {
			x[i] += coef * f[k-i]
		}
	}
	return x, nil
}

// SolveDense solves the dense linear system A x = b by Gaussian
// elimination with partial pivoting. A is modified. Used as the
// fallback when Levinson rejects a system, and as the oracle in tests.
func SolveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("dsp: dense system size mismatch")
	}
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, piv = v, r
			}
		}
		if best == 0 {
			return nil, errors.New("dsp: singular dense system")
		}
		a[col], a[piv] = a[piv], a[col]
		x[col], x[piv] = x[piv], x[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			x[r] -= factor * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		x[col] /= a[col][col]
		for r := 0; r < col; r++ {
			x[r] -= a[r][col] * x[col]
			a[r][col] = 0
		}
	}
	return x, nil
}

// ToeplitzMatrix materializes the symmetric Toeplitz matrix with first
// column t (for tests and the dense fallback).
func ToeplitzMatrix(t []float64) [][]float64 {
	n := len(t)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			d := i - j
			if d < 0 {
				d = -d
			}
			m[i][j] = t[d]
		}
	}
	return m
}
