package dsp

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1). Small workloads use the direct O(n*m)
// algorithm; larger ones switch to FFT overlap-free convolution.
// Empty inputs yield an empty result.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	// Heuristic crossover: direct wins below ~64 taps on either side.
	if len(a) < 64 || len(b) < 64 {
		return convolveDirect(a, b)
	}
	return convolveFFT(a, b)
}

func convolveDirect(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

func convolveFFT(a, b []float64) []float64 {
	n := len(a) + len(b) - 1
	m := NextPow2(n)
	p := NewPlan(m)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	p.Forward(fa, fa)
	p.Forward(fb, fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.Inverse(fa, fa)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// OverlapAdd is a reusable fast convolver for one fixed FIR kernel
// applied to arbitrarily long signals, using the overlap-add method.
// It exists because the channel simulator convolves hundreds of long
// waveforms with the same few-hundred-tap impulse response.
type OverlapAdd struct {
	kernel  []float64
	block   int // input block length per segment
	fftSize int
	plan    *Plan
	kfft    []complex128
	seg     []complex128
}

// NewOverlapAdd prepares an overlap-add convolver for the kernel.
func NewOverlapAdd(kernel []float64) *OverlapAdd {
	nk := len(kernel)
	if nk == 0 {
		panic("dsp: empty overlap-add kernel")
	}
	// Pick an FFT size ~8x the kernel for good efficiency.
	fftSize := NextPow2(8 * nk)
	if fftSize < 256 {
		fftSize = 256
	}
	block := fftSize - nk + 1
	oa := &OverlapAdd{
		kernel:  append([]float64(nil), kernel...),
		block:   block,
		fftSize: fftSize,
		plan:    NewPlan(fftSize),
		kfft:    make([]complex128, fftSize),
		seg:     make([]complex128, fftSize),
	}
	for i, v := range kernel {
		oa.kfft[i] = complex(v, 0)
	}
	oa.plan.Forward(oa.kfft, oa.kfft)
	return oa
}

// KernelLen returns the kernel length.
func (oa *OverlapAdd) KernelLen() int { return len(oa.kernel) }

// OutLen returns the length of the convolution of an n-sample input
// with the kernel.
func (oa *OverlapAdd) OutLen(n int) int {
	if n == 0 {
		return 0
	}
	return n + len(oa.kernel) - 1
}

// Apply returns the full convolution of x with the kernel
// (length len(x)+len(kernel)-1) as a freshly allocated slice.
func (oa *OverlapAdd) Apply(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	return oa.ApplyTo(make([]float64, oa.OutLen(len(x))), x)
}

// ApplyTo convolves x with the kernel into dst, growing dst only when
// its capacity is short, and returns the (possibly reallocated) result
// slice of length OutLen(len(x)). Callers running many convolutions
// can pass the previous result back in to stay allocation-free; the
// returned slice is always safe to retain until the next ApplyTo.
func (oa *OverlapAdd) ApplyTo(dst []float64, x []float64) []float64 {
	if len(x) == 0 {
		return dst[:0]
	}
	n := oa.OutLen(len(x))
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
		for i := range dst {
			dst[i] = 0
		}
	}
	for start := 0; start < len(x); start += oa.block {
		end := min(start+oa.block, len(x))
		chunk := x[start:end]
		for i, v := range chunk {
			oa.seg[i] = complex(v, 0)
		}
		// Only the tail beyond the chunk needs clearing: the chunk
		// samples above just overwrote the head.
		for i := len(chunk); i < len(oa.seg); i++ {
			oa.seg[i] = 0
		}
		oa.plan.Forward(oa.seg, oa.seg)
		for i := range oa.seg {
			oa.seg[i] *= oa.kfft[i]
		}
		oa.plan.Inverse(oa.seg, oa.seg)
		limit := len(chunk) + len(oa.kernel) - 1
		for i := 0; i < limit && start+i < len(dst); i++ {
			dst[start+i] += real(oa.seg[i])
		}
	}
	return dst
}
