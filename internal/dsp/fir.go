package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter described by its tap
// coefficients. Filtering is stateless (Filter) or streaming
// (NewFIRState).
type FIR struct {
	Taps []float64
}

// sinc returns sin(pi x)/(pi x) with the removable singularity filled.
func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// DesignLowpass designs a windowed-sinc lowpass FIR with the given
// cutoff frequency (Hz), sample rate (Hz) and order (number of taps is
// order+1). The paper's receiver uses order 128.
func DesignLowpass(cutoffHz, sampleRate float64, order int, w Window) *FIR {
	if cutoffHz <= 0 || cutoffHz >= sampleRate/2 {
		panic(fmt.Sprintf("dsp: lowpass cutoff %g out of (0, %g)", cutoffHz, sampleRate/2))
	}
	n := order + 1
	fc := cutoffHz / sampleRate
	taps := make([]float64, n)
	mid := float64(order) / 2
	for i := 0; i < n; i++ {
		taps[i] = 2 * fc * sinc(2*fc*(float64(i)-mid))
	}
	win := w.Coefficients(n)
	var sum float64
	for i := range taps {
		taps[i] *= win[i]
		sum += taps[i]
	}
	// Normalize for unit DC gain.
	if sum != 0 {
		Scale(taps, 1/sum)
	}
	return &FIR{Taps: taps}
}

// DesignBandpass designs a windowed-sinc bandpass FIR passing
// [lowHz, highHz]. The gain is normalized to 1 at the band center.
// AquaApp's receiver front end is DesignBandpass(1000, 4000, 48000,
// 128, Hamming).
func DesignBandpass(lowHz, highHz, sampleRate float64, order int, w Window) *FIR {
	if !(0 < lowHz && lowHz < highHz && highHz < sampleRate/2) {
		panic(fmt.Sprintf("dsp: bandpass band [%g,%g] invalid for fs=%g", lowHz, highHz, sampleRate))
	}
	n := order + 1
	f1 := lowHz / sampleRate
	f2 := highHz / sampleRate
	taps := make([]float64, n)
	mid := float64(order) / 2
	for i := 0; i < n; i++ {
		t := float64(i) - mid
		taps[i] = 2*f2*sinc(2*f2*t) - 2*f1*sinc(2*f1*t)
	}
	win := w.Coefficients(n)
	for i := range taps {
		taps[i] *= win[i]
	}
	// Normalize to unit gain at the geometric band center.
	fc := math.Sqrt(lowHz * highHz)
	g := gainAt(taps, fc, sampleRate)
	if g > 0 {
		Scale(taps, 1/g)
	}
	return &FIR{Taps: taps}
}

// gainAt evaluates |H(f)| of the tap vector at frequency f.
func gainAt(taps []float64, f, sampleRate float64) float64 {
	var re, im float64
	w := 2 * math.Pi * f / sampleRate
	for i, t := range taps {
		s, c := math.Sincos(w * float64(i))
		re += t * c
		im -= t * s
	}
	return math.Hypot(re, im)
}

// Gain returns the filter's amplitude response |H(f)| at frequency f
// (Hz) for the given sample rate.
func (f *FIR) Gain(freqHz, sampleRate float64) float64 {
	return gainAt(f.Taps, freqHz, sampleRate)
}

// Filter convolves x with the filter taps and returns the "same"-mode
// result: output k aligns with input k after compensating the filter's
// group delay of len(Taps)/2 samples, so a symmetric filter does not
// shift the signal.
func (f *FIR) Filter(x []float64) []float64 {
	full := Convolve(x, f.Taps)
	delay := len(f.Taps) / 2
	out := make([]float64, len(x))
	copy(out, full[delay:])
	return out
}

// FIRState is a streaming FIR filter with retained history so that a
// long signal can be filtered in chunks with no boundary artifacts.
type FIRState struct {
	taps []float64
	hist []float64 // last len(taps)-1 input samples
}

// NewFIRState returns a streaming filter over the given FIR.
func NewFIRState(f *FIR) *FIRState {
	return &FIRState{taps: append([]float64(nil), f.Taps...), hist: make([]float64, len(f.Taps)-1)}
}

// Process filters one chunk and returns the corresponding output
// samples (causal, i.e. including the filter's group delay).
func (s *FIRState) Process(x []float64) []float64 {
	nt := len(s.taps)
	ext := make([]float64, len(s.hist)+len(x))
	copy(ext, s.hist)
	copy(ext[len(s.hist):], x)
	out := make([]float64, len(x))
	for i := range x {
		// ext index of current sample: i + nt - 1
		var acc float64
		base := i + nt - 1
		for j := 0; j < nt; j++ {
			acc += s.taps[j] * ext[base-j]
		}
		out[i] = acc
	}
	// Retain the last nt-1 inputs.
	if len(ext) >= nt-1 {
		copy(s.hist, ext[len(ext)-(nt-1):])
	}
	return out
}

// Reset clears the streaming history.
func (s *FIRState) Reset() {
	for i := range s.hist {
		s.hist[i] = 0
	}
}
