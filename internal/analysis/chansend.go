package analysis

import (
	"go/ast"
)

// Chansend flags channel sends performed while holding a lock.
//
// A send can park its goroutine until a receiver arrives; parked
// while holding a network lock, it stalls every path that needs the
// lock — including the consumer it is waiting for, if draining the
// channel ever takes the same lock (the Deliveries channel's
// documented failure mode, which is why the delivery pump sends only
// after releasing tx.mu). The rule covers explicit Lock()/Unlock()
// windows and the implicit caller-held lock of *Locked functions.
//
// Two escapes:
//
//   - a send that provably cannot block — a clause of a select with a
//     default — passes;
//   - a send whose channel has guaranteed headroom by construction
//     (the per-node daemon handoff slot, capacity 1 with at most one
//     dispatchable job) carries //aqualint:chansend-ok <why>.
var Chansend = &Analyzer{
	Name: "chansend",
	Doc: "flags channel sends while a mutex is held (select-with-default is " +
		"exempt; justified sends carry //aqualint:chansend-ok <why>)",
	Run: runChansend,
}

func runChansend(pass *Pass) error {
	scanFunctions(pass, lockHooks{
		send: func(s *ast.SendStmt, held []heldLock, nonblocking bool) {
			if len(held) == 0 || nonblocking {
				return
			}
			if pass.Annotated(s.Pos(), "chansend-ok") {
				return
			}
			pass.Reportf(s.Pos(),
				"channel send while holding %s can park the goroutine with the lock held, "+
					"stalling every contender (and deadlocking if the receiver needs the lock); "+
					"send after unlocking, use a select with default, or annotate "+
					"//aqualint:chansend-ok <why>",
				heldLabel(held))
		},
	})
	return nil
}
