// Fixture for the lockorder analyzer. It re-declares the shapes the
// rank table keys on — lockRanks uses bare "OwnerType.field" names
// precisely so the documented discipline is checkable here without
// importing the real package.
package fixture

import "sync"

type txState struct {
	mu      sync.Mutex
	pending int
}

type Trace interface {
	OnStage(stage string)
}

type Network struct {
	mu      sync.Mutex
	traceMu sync.Mutex
	tx      txState
	trace   Trace
	onDone  func(int)
}

type Node struct {
	sendMu sync.Mutex
	net    *Network
}

// orderedOK acquires along the documented order: txState.mu (10)
// before Network.mu (30).
func (n *Network) orderedOK() {
	n.tx.mu.Lock()
	n.mu.Lock()
	n.tx.pending++
	n.mu.Unlock()
	n.tx.mu.Unlock()
}

func (n *Network) inverted() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tx.mu.Lock() // want "txState.mu acquired while holding Network.mu inverts the documented lock order"
	n.tx.mu.Unlock()
}

func (nd *Node) invertedFromLeaf() {
	nd.net.traceMu.Lock()
	defer nd.net.traceMu.Unlock()
	nd.sendMu.Lock() // want "Node.sendMu acquired while holding Network.traceMu inverts the documented lock order"
	nd.sendMu.Unlock()
}

func (n *Network) reentrant() {
	n.mu.Lock()
	n.mu.Lock() // want "Network.mu locked while already held"
	n.mu.Unlock()
	n.mu.Unlock()
}

func (n *Network) callbackUnderLock(d int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onDone(d) // want "callback field onDone invoked while holding Network.mu"
}

func (n *Network) traceUnderLock(stage string) {
	n.traceMu.Lock()
	defer n.traceMu.Unlock()
	n.trace.OnStage(stage) // want "callback Trace.OnStage invoked while holding Network.traceMu"
}

// probeUnderLock loads the callback into a local first; the engine
// still attributes the call to the field it came from.
func (n *Network) probeUnderLock(d int) {
	probe := n.onDone
	n.mu.Lock()
	defer n.mu.Unlock()
	probe(d) // want "callback local probe invoked while holding Network.mu"
}

// finishLocked holds its caller's lock by the *Locked convention: no
// visible Lock() call, but callbacks are still off-limits.
func (n *Network) finishLocked(d int) {
	n.onDone(d) // want "a caller-held lock"
}

func (n *Network) callbackAfterUnlockOK(d int) {
	n.mu.Lock()
	d += n.tx.pending
	n.mu.Unlock()
	n.onDone(d)
}

// earlyReturnKeepsState: the unlocking branch returns, so the
// fall-through path is still under the lock.
func (n *Network) earlyReturnKeepsState(d int) {
	n.mu.Lock()
	if d < 0 {
		n.mu.Unlock()
		return
	}
	n.onDone(d) // want "callback field onDone invoked while holding Network.mu"
	n.mu.Unlock()
}

func (n *Network) annotatedOK(d int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	//aqualint:callback-under-lock fixture stands in for the pipelined relay continuation, documented never to re-enter the network
	n.onDone(d)
}
