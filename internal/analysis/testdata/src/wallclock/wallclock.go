// Fixture for the wallclock analyzer, type-checked as a library
// package ("aquago/internal/exp") and again as a cmd/ package (where
// everything below must pass) by the harness.
package fixture

import (
	"math/rand"
	"time"
)

func flaggedNow() int64 {
	return time.Now().Unix() // want "time.Now reads wall-clock time"
}

func flaggedSleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads wall-clock time"
}

func flaggedSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads wall-clock time"
}

func flaggedGlobalRand() int {
	return rand.Intn(6) // want "rand.Intn reads the global math/rand source"
}

func flaggedGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle reads the global math/rand source"
}

func seededOK(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // seeded source: methods are fine
	return rng.Float64()
}

func durationOK(d time.Duration) float64 {
	return d.Seconds() // duration arithmetic never touches the host clock
}

func annotatedOK() time.Time {
	//aqualint:wallclock-ok fixture stands in for benchmark bookkeeping that never feeds simulation state
	return time.Now()
}
