// Fixture for the mapiter analyzer, type-checked as a deterministic
// core package ("aquago/internal/sim") by the harness.
package fixture

import "sort"

func flagged(m map[int]string) {
	for k, v := range m { // want "range over map[int]string iterates in randomized order"
		_, _ = k, v
	}
}

func flaggedKeysOnly(m map[int]int) []int {
	var keys []int
	for k := range m { // want "iterates in randomized order"
		keys = append(keys, k)
	}
	return keys // materialized but never sorted: order still leaks
}

func countingOK(m map[int]string) int {
	n := 0
	for range m { // no bindings: order cannot be observed
		n++
	}
	return n
}

func annotatedOK(m map[int]float64) float64 {
	s := 0.0
	//aqualint:order-independent floating-point sum is the only observation and the fixture declares it commutative
	for _, v := range m {
		s += v
	}
	return s
}

func collectSortOK(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // collect-then-sort: transient order erased below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func collectSortFilteredOK(m map[int]int) []int {
	var keys []int
	for k, v := range m { // if-filtered appends still qualify
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

func annotatedNoWhy(m map[int]int) {
	/* want "needs a justification" */ //aqualint:order-independent
	for k := range m {
		_ = k
	}
}
