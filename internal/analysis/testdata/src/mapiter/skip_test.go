package fixture

// Test files are exempt from every aqualint check: tests own their
// determinism through goldens, not through the library invariants.

func testOnlyIteration(m map[int]int) int {
	s := 0
	for k := range m { // no want: _test.go files are skipped
		s += k
	}
	return s
}
