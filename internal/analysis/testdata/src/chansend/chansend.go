// Fixture for the chansend analyzer: sends while a lock is held can
// park the goroutine with the lock, stalling every contender.
package fixture

import "sync"

type queue struct {
	mu   sync.Mutex
	jobs chan int
}

func (q *queue) blockedSend(j int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.jobs <- j // want "channel send while holding queue.mu"
}

func (q *queue) sendAfterUnlockOK(j int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.jobs <- j
}

func (q *queue) nonblockingOK(j int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.jobs <- j: // a clause of a select with default cannot park
	default:
	}
}

func (q *queue) selectWithoutDefault(j int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.jobs <- j: // want "channel send while holding queue.mu"
	}
}

func (q *queue) annotatedOK(j int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//aqualint:chansend-ok fixture stands in for a capacity-one handoff slot that is provably empty here
	q.jobs <- j
}

// drainLocked runs under a caller-held lock by the *Locked convention.
func (q *queue) drainLocked() {
	q.jobs <- 0 // want "a caller-held lock"
}

func (q *queue) goroutineStartsFreshOK(j int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.jobs <- j // the goroutine body starts with no locks held
	}()
}

func plainSendOK(ch chan int) {
	ch <- 1
}
