package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared intraprocedural lock-state engine behind
// the lockorder and chansend analyzers. It walks each function body
// in source order tracking which sync.Mutex / sync.RWMutex values are
// held, with just enough control-flow awareness for the codebase's
// dominant idioms:
//
//   - an early-return branch (if ... { mu.Unlock(); return err }) does
//     not leak its unlocks into the fall-through state;
//   - defer mu.Unlock() keeps the lock held to the end of the scan;
//   - loop / switch / select bodies are scanned for findings but do
//     not alter the fall-through state (bodies are assumed
//     lock-balanced, which `go vet -copylocks` style reviews keep
//     true in practice);
//   - a function literal starts from an empty held set (goroutines
//     and deferred closures do not inherit the caller's locks... and
//     if they re-acquire them the scan sees it).
//
// By convention, a function whose name ends in "Locked" runs with a
// caller-held lock; the engine models that as an implicit held lock
// of unknown rank, so the callback and channel-send rules apply
// inside such functions even though no Lock() call is visible.

// heldLock is one tracked acquisition.
type heldLock struct {
	// key names the mutex: "OwnerType.field" for a struct field
	// ("txState.mu", "Network.mu"), the variable name for a plain
	// local/package mutex, or callerHeldKey for the implicit lock of a
	// *Locked function.
	key string
	// rank is the mutex's position in the documented order, or -1 when
	// the mutex is not ranked.
	rank int
	pos  token.Pos
}

// callerHeldKey models the lock a *Locked function's caller holds.
const callerHeldKey = "«caller-held»"

// lockRanks is the documented aquago lock ordering: tx.mu before
// Network.mu before node-local state before the trace serializer.
// Acquiring a lower rank while holding a higher one is a lockorder
// diagnostic. The table is keyed by "OwnerType.field" so the same
// discipline is checkable in analyzer fixtures that re-declare the
// shapes. (txState.mu and Node.sendMu are not ordered against each
// other — no code path holds both — but both precede Network.mu.)
var lockRanks = map[string]int{
	"txState.mu":      10, // async transmit queue state (txq.go)
	"Node.sendMu":     20, // per-node radio serialization (node.go)
	"Network.mu":      30, // virtual-time bookkeeping (network.go)
	"Network.traceMu": 40, // shared trace/probe serializer (leaf)
}

// lockHooks are the analyzer-specific reactions the engine invokes.
type lockHooks struct {
	// acquire fires when mu is about to be pushed onto held.
	acquire func(mu heldLock, held []heldLock)
	// send fires for every channel send; nonblocking marks a send that
	// provably cannot park (a clause of a select with a default).
	send func(s *ast.SendStmt, held []heldLock, nonblocking bool)
	// call fires for every call that is not a mutex operation.
	call func(c *ast.CallExpr, held []heldLock)
}

// scanFunctions runs the engine over every function declaration and
// function literal in the pass's non-test files.
func scanFunctions(pass *Pass, hooks lockHooks) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				s := &lockScanner{pass: pass, hooks: hooks, callbackVars: map[types.Object]bool{}}
				var held []heldLock
				if strings.HasSuffix(fd.Name.Name, "Locked") {
					held = append(held, heldLock{key: callerHeldKey, rank: -1, pos: fd.Pos()})
				}
				currentScanner = s
				s.block(fd.Body.List, held)
				currentScanner = nil
			}
		}
	}
}

type lockScanner struct {
	pass  *Pass
	hooks lockHooks
	// callbackVars marks local variables holding a callback loaded
	// from a struct field (probe := n.cfg.exchangeProbe), so a later
	// probe(...) call is recognized as a call into that field.
	callbackVars map[types.Object]bool
}

// block scans a statement list, threading the held-lock state through
// it, and returns the state at its end.
func (s *lockScanner) block(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, st := range stmts {
		held = s.stmt(st, held)
	}
	return held
}

func (s *lockScanner) stmt(st ast.Stmt, held []heldLock) []heldLock {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return s.expr(st.X, held)
	case *ast.SendStmt:
		held = s.expr(st.Chan, held)
		held = s.expr(st.Value, held)
		s.emitSend(st, held, false)
		return held
	case *ast.AssignStmt:
		s.noteCallbackVars(st)
		for _, e := range st.Rhs {
			held = s.expr(e, held)
		}
		for _, e := range st.Lhs {
			held = s.expr(e, held)
		}
		return held
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						held = s.expr(e, held)
					}
				}
			}
		}
		return held
	case *ast.DeferStmt:
		// defer mu.Unlock() pins the lock to function exit: the lock
		// stays held for the rest of the scan, which is exactly the
		// state every later statement runs under. Other deferred calls
		// run at exit under unknowable state; only their argument
		// expressions and literal bodies are scanned.
		if key, op, ok := s.mutexOp(st.Call); ok && op == "Unlock" {
			_ = key // deliberately kept held
			return held
		}
		for _, a := range st.Call.Args {
			held = s.expr(a, held)
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.block(lit.Body.List, nil)
		}
		return held
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			held = s.expr(a, held)
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.block(lit.Body.List, nil)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			held = s.expr(e, held)
		}
		return held
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		held = s.expr(st.Cond, held)
		bodyHeld := s.block(st.Body.List, cloneHeld(held))
		var after []heldLock
		switch {
		case terminates(st.Body):
			after = held
		default:
			after = bodyHeld
		}
		if st.Else != nil {
			elseHeld := s.stmt(st.Else, cloneHeld(held))
			switch {
			case elseTerminates(st.Else):
				// keep after
			case terminates(st.Body):
				after = elseHeld
			default:
				// Both fall through; keep the smaller held set so the
				// engine under-reports rather than false-positives.
				if len(elseHeld) < len(after) {
					after = elseHeld
				}
			}
		}
		return after
	case *ast.BlockStmt:
		return s.block(st.List, held)
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			held = s.expr(st.Cond, held)
		}
		s.block(st.Body.List, cloneHeld(held))
		return held
	case *ast.RangeStmt:
		held = s.expr(st.X, held)
		s.block(st.Body.List, cloneHeld(held))
		return held
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			held = s.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, cloneHeld(held))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, cloneHeld(held))
			}
		}
		return held
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				s.emitSend(send, held, hasDefault)
			}
			s.block(cc.Body, cloneHeld(held))
		}
		return held
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, held)
	default:
		return held
	}
}

// expr scans an expression tree, reacting to mutex operations, calls
// and function literals, and returns the updated held state.
func (s *lockScanner) expr(e ast.Expr, held []heldLock) []heldLock {
	switch e := e.(type) {
	case nil:
		return held
	case *ast.CallExpr:
		if key, op, ok := s.mutexOp(e); ok {
			switch op {
			case "Lock":
				mu := heldLock{key: key, rank: rankOf(key), pos: e.Pos()}
				if s.hooks.acquire != nil {
					s.hooks.acquire(mu, held)
				}
				return append(held, mu)
			case "Unlock":
				return popHeld(held, key)
			}
			return held
		}
		held = s.expr(e.Fun, held)
		for _, a := range e.Args {
			held = s.expr(a, held)
		}
		if s.hooks.call != nil {
			s.hooks.call(e, held)
		}
		return held
	case *ast.FuncLit:
		s.block(e.Body.List, nil)
		return held
	case *ast.ParenExpr:
		return s.expr(e.X, held)
	case *ast.SelectorExpr:
		return s.expr(e.X, held)
	case *ast.BinaryExpr:
		held = s.expr(e.X, held)
		return s.expr(e.Y, held)
	case *ast.UnaryExpr:
		return s.expr(e.X, held)
	case *ast.StarExpr:
		return s.expr(e.X, held)
	case *ast.IndexExpr:
		held = s.expr(e.X, held)
		return s.expr(e.Index, held)
	case *ast.SliceExpr:
		held = s.expr(e.X, held)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			held = s.expr(idx, held)
		}
		return held
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			held = s.expr(el, held)
		}
		return held
	case *ast.KeyValueExpr:
		return s.expr(e.Value, held)
	case *ast.TypeAssertExpr:
		return s.expr(e.X, held)
	default:
		return held
	}
}

func (s *lockScanner) emitSend(send *ast.SendStmt, held []heldLock, nonblocking bool) {
	if s.hooks.send != nil {
		s.hooks.send(send, held, nonblocking)
	}
}

// mutexOp reports whether call is <mutex>.Lock/Unlock/RLock/RUnlock
// (or TryLock) on a sync.Mutex / sync.RWMutex, with the mutex's key
// and the normalized operation ("Lock" or "Unlock").
func (s *lockScanner) mutexOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	var normalized string
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock":
		normalized = "Lock"
	case "Unlock", "RUnlock":
		normalized = "Unlock"
	default:
		return "", "", false
	}
	if !isSyncMutex(s.pass.typeOf(sel.X)) {
		return "", "", false
	}
	return s.mutexKey(sel.X), normalized, true
}

// mutexKey names a mutex expression: "OwnerType.field" when the
// mutex is a struct field, the identifier name otherwise.
func (s *lockScanner) mutexKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		owner := s.pass.typeOf(e.X)
		if owner != nil {
			if named, ok := deref(owner).(*types.Named); ok {
				return named.Obj().Name() + "." + e.Sel.Name
			}
		}
		return e.Sel.Name
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return s.mutexKey(e.X)
	case *ast.UnaryExpr:
		return s.mutexKey(e.X)
	default:
		return "mutex"
	}
}

// noteCallbackVars records `probe := x.y.someCallbackField` so a later
// probe(...) is attributed to the field it was loaded from.
func (s *lockScanner) noteCallbackVars(st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := s.pass.Info.Defs[id]
		if obj == nil {
			obj = s.pass.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if fieldCallback(s.pass, st.Rhs[i]) {
			s.callbackVars[obj] = true
		}
	}
}

// fieldCallback reports whether e selects a struct field of function
// type taking at least one parameter — the shape of a user callback
// (OnDone, probes, trace hooks), as opposed to a context.CancelFunc.
func fieldCallback(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	sig, ok := s.Type().Underlying().(*types.Signature)
	return ok && sig.Params().Len() >= 1
}

func rankOf(key string) int {
	if r, ok := lockRanks[key]; ok {
		return r
	}
	return -1
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func popHeld(held []heldLock, key string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].key == key {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// terminates reports whether a block's last statement transfers
// control out (return, branch, panic, os.Exit-style call is NOT
// detected — return/branch/panic cover the codebase's idioms).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func elseTerminates(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return terminates(st)
	case *ast.IfStmt:
		return terminates(st.Body) && st.Else != nil && elseTerminates(st.Else)
	}
	return false
}

// typeOf is Info.Types with pointer-safety.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// isSyncMutex reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
