package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Mapiter flags `for ... range` over a map in the deterministic core.
//
// The simulator's contract — worker-count-invariant, seed-reproducible
// results on the shared virtual timeline — dies quietly wherever an
// iteration order leaks into scheduling or output, and Go randomizes
// map order specifically so such bugs cannot hide behind one lucky
// layout. Inside the deterministic core (the root package and
// internal/{exp,sim,mac,phy}) a map loop is therefore guilty until
// proven innocent. Two proofs are accepted:
//
//   - the loop only materializes the map into slices that the same
//     function then sorts (the collect-then-sort idiom), or the loop
//     binds no variables at all (`for range m` — pure counting);
//   - the loop carries //aqualint:order-independent <why> on it or
//     the line above, putting the justification next to the code.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc: "flags map iteration in the deterministic core unless keys are " +
		"materialized and sorted or the loop is annotated " +
		"//aqualint:order-independent <why>",
	Run: runMapiter,
}

// mapiterScope lists the import paths whose results must be
// iteration-order independent: the public network simulator and the
// experiment/physics packages whose outputs are golden-tested.
var mapiterScope = map[string]bool{
	"aquago":              true,
	"aquago/internal/exp": true,
	"aquago/internal/sim": true,
	"aquago/internal/mac": true,
	"aquago/internal/phy": true,
}

func runMapiter(pass *Pass) error {
	if !mapiterScope[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.typeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := deref(t).Underlying().(*types.Map); !isMap {
					return true
				}
				if rs.Key == nil && rs.Value == nil {
					// `for range m {}` executes len(m) times with no
					// binding: order cannot be observed.
					return true
				}
				if pass.Annotated(rs.Pos(), "order-independent") {
					return true
				}
				if collectThenSort(pass, fd, rs) {
					return true
				}
				pass.Reportf(rs.Pos(),
					"range over %s iterates in randomized order inside the deterministic core; "+
						"materialize into a slice and sort it, or annotate the loop "+
						"//aqualint:order-independent <why>",
					typeLabel(pass, rs.X))
				return true
			})
		}
	}
	return nil
}

// collectThenSort recognizes the sanctioned materialization idiom: a
// loop whose body does nothing but append loop-visible values to
// slices (possibly behind if-filters), at least one of which the
// enclosing function later passes to a sort (sort.* or
// slices.Sort*). Iterating the map then only determines a transient
// order that the sort erases.
func collectThenSort(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	var sinks []types.Object
	if !appendOnly(pass, rs.Body.List, &sinks) || len(sinks) == 0 {
		return false
	}
	for _, sink := range sinks {
		if sortedInFunc(pass, fd, sink) {
			return true
		}
	}
	return false
}

// appendOnly reports whether stmts consist solely of `s = append(s,
// ...)` assignments, possibly nested under plain if-filters (no
// else), collecting each append target into sinks.
func appendOnly(pass *Pass, stmts []ast.Stmt, sinks *[]types.Object) bool {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return false
			}
			lhs, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				return false
			}
			obj := pass.Info.Uses[lhs]
			if obj == nil {
				obj = pass.Info.Defs[lhs]
			}
			if obj == nil {
				return false
			}
			*sinks = append(*sinks, obj)
		case *ast.IfStmt:
			if st.Init != nil || st.Else != nil {
				return false
			}
			if !appendOnly(pass, st.Body.List, sinks) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortedInFunc reports whether fd contains a call into package sort
// or slices with obj among its arguments.
func sortedInFunc(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		name := sel.Sel.Name
		sorts := (path == "sort" && (strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "Slice") ||
			name == "Stable" || name == "Strings" || name == "Ints" || name == "Float64s")) ||
			(path == "slices" && strings.HasPrefix(name, "Sort"))
		if !sorts {
			return true
		}
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// typeLabel renders the ranged expression for the diagnostic.
func typeLabel(pass *Pass, e ast.Expr) string {
	if t := pass.typeOf(e); t != nil {
		return t.String()
	}
	return "map"
}
