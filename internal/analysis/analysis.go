// Package analysis is aquago's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, diagnostics) plus the four
// aqualint analyzers that turn the simulator's determinism and
// concurrency invariants into compile-time checks:
//
//   - mapiter: no raw map iteration in the deterministic core
//   - wallclock: no wall-clock time or global math/rand in library code
//   - lockorder: the documented mutex ranking, and no user callbacks
//     invoked with a lock held
//   - chansend: no channel sends while holding a network lock
//
// The framework is self-contained on the standard library's go/ast +
// go/types so the suite builds offline (golang.org/x/tools is not a
// dependency of this module); cmd/aqualint is the driver, runnable
// standalone (`go run ./cmd/aqualint ./...`) or as a `go vet
// -vettool`.
//
// # Annotations
//
// Every analyzer honors a justification annotation on the flagged
// line or the line directly above it:
//
//	//aqualint:<directive> <why>
//
// The directives are order-independent (mapiter), wallclock-ok
// (wallclock), callback-under-lock (lockorder) and chansend-ok
// (chansend). The justification text is mandatory: an annotation
// without one is itself a diagnostic, so the "why" lives next to the
// code it excuses.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The API mirrors
// golang.org/x/tools/go/analysis so the suite could migrate onto it
// verbatim if the dependency ever lands.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and annotations.
	Name string
	// Doc is the one-paragraph description `aqualint -help` prints.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// All lists the aqualint analyzers in reporting order.
var All = []*Analyzer{Mapiter, Wallclock, Lockorder, Chansend}

// A Diagnostic is one reported finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path. Test-binary variants ("pkg
	// [pkg.test]") are normalized to the plain path by the loaders.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
	notes map[*ast.File]map[int]annotation
}

// annotation is one parsed //aqualint: comment.
type annotation struct {
	directive     string
	justification string
	pos           token.Pos
}

const annotationPrefix = "//aqualint:"

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether f came from a _test.go file. The
// analyzers enforce invariants of the shipped simulator, not of its
// tests (which own their determinism through goldens), so every check
// skips test files.
func (p *Pass) IsTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// Annotated reports whether pos carries the given aqualint directive
// on its own line or the line directly above. An annotation with an
// empty justification counts as present but draws its own diagnostic,
// so silencing a finding always costs a written reason.
func (p *Pass) Annotated(pos token.Pos, directive string) bool {
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	if p.notes == nil {
		p.notes = make(map[*ast.File]map[int]annotation)
	}
	byLine, ok := p.notes[f]
	if !ok {
		byLine = parseAnnotations(p.Fset, f)
		p.notes[f] = byLine
	}
	line := p.Fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		a, ok := byLine[l]
		if !ok || a.directive != directive {
			continue
		}
		if a.justification == "" {
			p.Reportf(a.pos, "aqualint:%s annotation needs a justification — say why the invariant holds here", directive)
		}
		return true
	}
	return false
}

// parseAnnotations indexes a file's //aqualint: comments by the line
// they annotate: the comment's own line, so an annotation suppresses
// findings on that line and the one below it.
func parseAnnotations(fset *token.FileSet, f *ast.File) map[int]annotation {
	byLine := make(map[int]annotation)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, annotationPrefix)
			if !ok {
				continue
			}
			directive, why, _ := strings.Cut(rest, " ")
			byLine[fset.Position(c.Pos()).Line] = annotation{
				directive:     directive,
				justification: strings.TrimSpace(why),
				pos:           c.Pos(),
			}
		}
	}
	return byLine
}

func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// RunAnalyzers applies every analyzer to every package and returns
// the findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		d, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, d...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunPackage applies the analyzers to one loaded package.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
