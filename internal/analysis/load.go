package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one parsed and type-checked unit ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// Load resolves patterns (e.g. "./...") against the module rooted in
// dir and returns its non-dependency packages, type-checked against
// compiler export data. It shells out to `go list -deps -export`,
// which works offline from the local build cache — the loader has no
// dependency beyond the go tool and the standard library, by design:
// the module must build (and lint) without golang.org/x/tools.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, gf := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, gf)
		}
		pkg, err := CheckFiles(t.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses and type-checks one package from its file list.
func CheckFiles(path string, fset *token.FileSet, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", fn, err)
		}
		files = append(files, f)
	}
	return checkParsed(path, fset, files, imp)
}

// checkParsed type-checks already-parsed files into a Package.
func checkParsed(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// ExportImporter returns a types.Importer that reads compiler export
// data located by resolve (import path -> export file). The gc
// importer behind go/importer understands both raw export data and
// the archive wrapping `go list -export` produces.
func ExportImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := resolve(path)
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// ExportsFor shells out to `go list -deps -export` for the given
// import paths (typically a fixture's stdlib imports) and returns the
// path -> export file map. Used by the fixture harness, where the
// files under test live outside any real package.
func ExportsFor(dir string, importPaths []string) (map[string]string, error) {
	exports := make(map[string]string)
	if len(importPaths) == 0 {
		return exports, nil
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Export",
	}, importPaths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", strings.Join(importPaths, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
