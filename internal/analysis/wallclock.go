package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Wallclock forbids wall-clock time and the global math/rand state in
// library code.
//
// The simulator runs on a virtual timeline: node clocks, MAC grants
// and propagation delays are all virtual seconds derived from seeded
// state, which is what makes a run reproducible and worker-count
// invariant. time.Now / time.Sleep smuggle the host's wall clock into
// that world, and the global math/rand functions draw from a
// process-wide source that other code (or the runtime's random seed)
// perturbs. Only the cmd/ harnesses — which measure real elapsed time
// for benchmark records — are allowlisted by path; library code that
// legitimately measures wall time (an experiment recording its own
// cost) annotates the site //aqualint:wallclock-ok <why>.
//
// Seeded sources remain first-class: rand.New(rand.NewSource(seed))
// and every method on *rand.Rand are fine, as are time.Duration
// values and arithmetic.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/Sleep-style wall-clock access and global math/rand " +
		"in library code; cmd/ is allowlisted, other sites need " +
		"//aqualint:wallclock-ok <why>",
	Run: runWallclock,
}

// wallclockTimeFns are the package time functions that read or wait on
// the host clock.
var wallclockTimeFns = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// wallclockRandFns are the math/rand (and math/rand/v2) package-level
// functions backed by the shared global source. Constructors for
// seeded sources (New, NewSource, NewPCG, NewChaCha8, NewZipf) are
// deliberately absent.
var wallclockRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true, "Seed": true,
}

func runWallclock(pass *Pass) error {
	if strings.HasPrefix(pass.Path, "aquago/cmd/") {
		// The CLI harnesses time real executions (BENCH_exp.json wall
		// columns) and own the process; the virtual-clock rule is a
		// library invariant.
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. *rand.Rand) are seeded state
			}
			var what string
			switch obj.Pkg().Path() {
			case "time":
				if wallclockTimeFns[obj.Name()] {
					what = "wall-clock time"
				}
			case "math/rand", "math/rand/v2":
				if wallclockRandFns[obj.Name()] {
					what = "the global math/rand source"
				}
			}
			if what == "" {
				return true
			}
			if pass.Annotated(sel.Pos(), "wallclock-ok") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s reads %s in library code; simulation state must come from "+
					"the virtual clock and seeded RNGs — or annotate "+
					"//aqualint:wallclock-ok <why>",
				obj.Pkg().Name(), obj.Name(), what)
			return true
		})
	}
	return nil
}
