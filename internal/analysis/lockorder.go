package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Lockorder enforces the documented mutex ranking and keeps user
// callbacks out of critical sections.
//
// The network's locks form a strict order — txState.mu before
// Node.sendMu before Network.mu before Network.traceMu (see the
// txState and Network doc comments) — that until this analyzer lived
// only in comments. Lockorder checks two things intraprocedurally:
//
//   - ordering: acquiring a ranked mutex while already holding a
//     higher-ranked one (or re-acquiring a held mutex) is a
//     diagnostic. Such an inversion is never annotatable away: two
//     goroutines taking the same pair of locks in opposite orders is
//     a deadlock, full stop.
//
//   - callbacks: invoking a user callback — a function-typed struct
//     field taking arguments (OnDone, probes), a value loaded from
//     one, or a method on a Trace interface — while any lock is held
//     (including the implicit lock of a *Locked function) is a
//     diagnostic, because a callback that re-enters the network
//     (Enqueue, Send) recurses into the lock order from its leaf. A
//     deliberate, documented exception (the pipelined relay's
//     continuation, the serialized probe hooks) carries
//     //aqualint:callback-under-lock <why>.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "enforces the tx.mu -> sendMu -> Network.mu -> traceMu lock order and " +
		"flags user callbacks invoked with a mutex held (annotate deliberate " +
		"ones //aqualint:callback-under-lock <why>)",
	Run: runLockorder,
}

func runLockorder(pass *Pass) error {
	scanFunctions(pass, lockHooks{
		acquire: func(mu heldLock, held []heldLock) {
			for _, h := range held {
				if h.key == mu.key {
					pass.Reportf(mu.pos, "%s locked while already held (acquired at %s): self-deadlock",
						mu.key, pass.Fset.Position(h.pos))
					return
				}
				if mu.rank >= 0 && h.rank >= 0 && mu.rank < h.rank {
					pass.Reportf(mu.pos,
						"%s acquired while holding %s inverts the documented lock order (%s); "+
							"a concurrent path taking them in order deadlocks against this one",
						mu.key, h.key, lockOrderLabel())
					return
				}
			}
		},
		call: func(c *ast.CallExpr, held []heldLock) {
			if len(held) == 0 {
				return
			}
			label, ok := callbackLabel(pass, c)
			if !ok {
				return
			}
			if pass.Annotated(c.Pos(), "callback-under-lock") {
				return
			}
			pass.Reportf(c.Pos(),
				"callback %s invoked while holding %s: a callback that re-enters the "+
					"network (Enqueue, Send) deadlocks; run it after unlocking, or annotate "+
					"//aqualint:callback-under-lock <why> if re-entry is documented away",
				label, heldLabel(held))
		},
	})
	return nil
}

// callbackLabel classifies a call as a user-callback invocation and
// names it for the diagnostic.
func callbackLabel(pass *Pass, c *ast.CallExpr) (string, bool) {
	fun := ast.Unparen(c.Fun)
	switch fun := fun.(type) {
	case *ast.SelectorExpr:
		s, ok := pass.Info.Selections[fun]
		if !ok {
			return "", false
		}
		switch s.Kind() {
		case types.FieldVal:
			if sig, ok := s.Type().Underlying().(*types.Signature); ok && sig.Params().Len() >= 1 {
				return "field " + fun.Sel.Name, true
			}
		case types.MethodVal:
			// A method on an interface named Trace is the stage-hook
			// surface; concrete methods are ordinary code.
			recv := s.Recv()
			if named, ok := deref(recv).(*types.Named); ok {
				if _, isIface := named.Underlying().(*types.Interface); isIface && named.Obj().Name() == "Trace" {
					return named.Obj().Name() + "." + fun.Sel.Name, true
				}
			}
		}
	case *ast.Ident:
		// A local loaded from a callback field (probe := cfg.probe).
		obj := pass.Info.Uses[fun]
		if obj == nil {
			return "", false
		}
		if scanned, ok := pass.callbackOrigin(obj); ok {
			return scanned, true
		}
	}
	return "", false
}

// callbackOrigin consults the current scanner's callback-variable
// table. The table lives on the scanner; the pass proxies it through
// a package-level hook set by scanFunctions for the duration of a
// function walk.
func (p *Pass) callbackOrigin(obj types.Object) (string, bool) {
	if currentScanner != nil && currentScanner.callbackVars[obj] {
		return "local " + obj.Name(), true
	}
	return "", false
}

// currentScanner exposes the active lockScanner to callbackLabel; the
// engine is single-goroutine per pass, so a package variable is safe.
var currentScanner *lockScanner

func lockOrderLabel() string {
	type kv struct {
		k string
		r int
	}
	var order []kv
	for k, r := range lockRanks { //aqualint:order-independent collected into a slice and sorted by rank on the next line
		order = append(order, kv{k, r})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].r < order[j].r })
	names := make([]string, len(order))
	for i, e := range order {
		names[i] = e.k
	}
	return strings.Join(names, " -> ")
}

func heldLabel(held []heldLock) string {
	names := make([]string, 0, len(held))
	for _, h := range held {
		if h.key == callerHeldKey {
			names = append(names, "a caller-held lock (*Locked convention)")
			continue
		}
		names = append(names, h.key)
	}
	return strings.Join(names, ", ")
}
