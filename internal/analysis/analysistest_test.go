// Package analysis_test checks each aqualint analyzer against a
// fixture package under testdata/src/<analyzer>/, in the style of
// golang.org/x/tools' analysistest: a fixture line carrying
//
//	// want "substring"
//
// must draw a diagnostic on that line whose message contains the
// substring, and every diagnostic must be claimed by such a comment.
// The block-comment form /* want "..." */ exists for annotation lines,
// where everything after //aqualint:<directive> is the justification
// and a trailing line comment would become part of it.
//
// Fixtures are type-checked under a caller-chosen import path, which
// is how the path-scoped rules (mapiter's deterministic core, the
// wallclock cmd/ allowlist) get both their positive and negative
// cases from one fixture.
package analysis_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"aquago/internal/analysis"
)

var wantRe = regexp.MustCompile(`(?://|/\*) want ("(?:[^"\\]|\\.)*")`)

// expectation is one parsed want comment.
type expectation struct {
	file   string
	line   int
	substr string
	hit    bool
}

func fixtureFiles(t *testing.T, name string) []string {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("no fixture files under %s", dir)
	}
	return files
}

// loadFixture type-checks the named fixture as if it were the package
// at pkgPath, resolving its (stdlib) imports through compiler export
// data exactly like the real aqualint loader does.
func loadFixture(t *testing.T, name, pkgPath string) *analysis.Package {
	t.Helper()
	files := fixtureFiles(t, name)
	exports, err := analysis.ExportsFor(".", fixtureImports(t, files))
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	fset := token.NewFileSet()
	imp := analysis.ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	pkg, err := analysis.CheckFiles(pkgPath, fset, files, imp)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}
	return pkg
}

func fixtureImports(t *testing.T, files []string) []string {
	t.Helper()
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var imports []string
	for _, fn := range files {
		f, err := parser.ParseFile(fset, fn, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parsing %s: %v", fn, err)
		}
		for _, im := range f.Imports {
			p, err := strconv.Unquote(im.Path.Value)
			if err != nil {
				t.Fatalf("import path %s: %v", im.Path.Value, err)
			}
			if !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	sort.Strings(imports)
	return imports
}

func parseExpectations(t *testing.T, files []string) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, fn := range files {
		src, err := os.ReadFile(fn)
		if err != nil {
			t.Fatalf("reading %s: %v", fn, err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				substr, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want %s: %v", fn, i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: fn, line: i + 1, substr: substr})
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over its fixture and compares the
// diagnostics against the fixture's want comments in both directions.
func checkFixture(t *testing.T, az *analysis.Analyzer, name, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, name, pkgPath)
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{az})
	if err != nil {
		t.Fatalf("running %s: %v", az.Name, err)
	}
	wants := parseExpectations(t, fixtureFiles(t, name))
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.substr)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
	}
}

// claim marks the first unclaimed expectation matching d.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
			w.hit = true
			return true
		}
	}
	return false
}

func mustBeClean(t *testing.T, az *analysis.Analyzer, name, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, name, pkgPath)
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{az})
	if err != nil {
		t.Fatalf("running %s: %v", az.Name, err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic outside %s scope as %s: %s", az.Name, pkgPath, d)
	}
}

func TestMapiterFixture(t *testing.T) {
	checkFixture(t, analysis.Mapiter, "mapiter", "aquago/internal/sim")
}

// TestMapiterScope re-checks the same fixture under an import path
// outside the deterministic core: every finding must vanish.
func TestMapiterScope(t *testing.T) {
	mustBeClean(t, analysis.Mapiter, "mapiter", "aquago/internal/channel")
}

func TestWallclockFixture(t *testing.T) {
	checkFixture(t, analysis.Wallclock, "wallclock", "aquago/internal/exp")
}

// TestWallclockCmdAllowlist re-checks the wallclock fixture under a
// cmd/ import path, where real elapsed-time measurement is allowed.
func TestWallclockCmdAllowlist(t *testing.T) {
	mustBeClean(t, analysis.Wallclock, "wallclock", "aquago/cmd/aqualint")
}

func TestLockorderFixture(t *testing.T) {
	checkFixture(t, analysis.Lockorder, "lockorder", "aquago")
}

func TestChansendFixture(t *testing.T) {
	checkFixture(t, analysis.Chansend, "chansend", "aquago")
}

// TestRepoIsClean runs the full suite over the module itself: the
// shipped tree must stay aqualint-clean, so a change that introduces a
// violation fails `go test` even before CI's dedicated lint job runs.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
