package app

import (
	"errors"
	"testing"

	"aquago/internal/channel"
	"aquago/internal/modem"
	"aquago/internal/phy"
)

func TestCodebookSizeAndStructure(t *testing.T) {
	msgs := Messages()
	if len(msgs) != NumMessages {
		t.Fatalf("codebook has %d messages, want %d", len(msgs), NumMessages)
	}
	// IDs are dense and ordered.
	for i, m := range msgs {
		if int(m.ID) != i {
			t.Fatalf("message %d has ID %d", i, m.ID)
		}
		if m.Text == "" {
			t.Fatalf("message %d has empty text", i)
		}
	}
	// Eight categories with 30 messages each.
	if len(Categories()) != 8 {
		t.Fatal("want 8 categories")
	}
	for _, c := range Categories() {
		if got := len(ByCategory(c)); got != MessagesPerCategory {
			t.Fatalf("category %v has %d messages, want %d", c, got, MessagesPerCategory)
		}
		if c.String() == "unknown" {
			t.Fatalf("category %d missing name", c)
		}
	}
}

func TestCodebookTextsUnique(t *testing.T) {
	seen := map[string]uint8{}
	for _, m := range Messages() {
		if prev, dup := seen[m.Text]; dup {
			t.Fatalf("duplicate text %q (IDs %d and %d)", m.Text, prev, m.ID)
		}
		seen[m.Text] = m.ID
	}
}

func TestCommonMessages(t *testing.T) {
	common := Common()
	if len(common) != 20 {
		t.Fatalf("%d common messages, want the paper's 20", len(common))
	}
	// The canonical diver signals must be present and common.
	for _, text := range []string{"OK?", "Out of air", "Go up", "Emergency - surface now"} {
		m, ok := ByText(text)
		if !ok {
			t.Fatalf("%q missing from codebook", text)
		}
		if !m.Common {
			t.Fatalf("%q should be a common signal", text)
		}
	}
}

func TestLookups(t *testing.T) {
	if _, ok := ByID(239); !ok {
		t.Fatal("ID 239 must exist")
	}
	if _, ok := ByID(240); ok {
		t.Fatal("ID 240 must not exist")
	}
	if _, ok := ByText("No such message"); ok {
		t.Fatal("unknown text matched")
	}
	hits := Search("air")
	if len(hits) < 5 {
		t.Fatalf("search 'air' found only %d messages", len(hits))
	}
	for _, m := range hits {
		low := false
		for i := 0; i+3 <= len(m.Text); i++ {
			s := m.Text[i : i+3]
			if s == "air" || s == "Air" || s == "AIR" {
				low = true
			}
		}
		if !low {
			t.Fatalf("search hit %q does not contain 'air'", m.Text)
		}
	}
}

func TestPackPair(t *testing.T) {
	p, err := PackPair(3, 200)
	if err != nil {
		t.Fatal(err)
	}
	a, b, ok2 := UnpackPair(p)
	if a != 3 || b != 200 || !ok2 {
		t.Fatalf("unpack (%d, %d, %v)", a, b, ok2)
	}
	// Single-message packet.
	p, err = PackPair(7, NoMessage)
	if err != nil {
		t.Fatal(err)
	}
	a, _, ok2 = UnpackPair(p)
	if a != 7 || ok2 {
		t.Fatal("single-message packet mis-unpacked")
	}
	if _, err := PackPair(240, 0); err == nil {
		t.Fatal("out-of-range first ID accepted")
	}
	if _, err := PackPair(0, 241); err == nil {
		t.Fatal("out-of-range second ID accepted")
	}
}

func TestDecodePayload(t *testing.T) {
	p, _ := PackPair(0, 31)
	msgs, err := DecodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].ID != 0 || msgs[1].ID != 31 {
		t.Fatalf("decoded %v", msgs)
	}
	if _, err := DecodePayload([2]byte{250, 0}); err == nil {
		t.Fatal("garbage first ID accepted")
	}
}

func TestMessengerEndToEnd(t *testing.T) {
	m, err := modem.New(modem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	proto := phy.New(m, phy.Options{})
	med, err := phy.NewChannelMedium(channel.LinkParams{
		Env: channel.Bridge, DistanceM: 5, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMessenger(proto, 4)
	ok1, _ := ByText("OK?")
	shark, _ := ByText("Look - shark")
	res, err := ms.Send(med, 9, ok1.ID, shark.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("message not delivered: %+v", res.Last)
	}
	if !res.Acknowledged {
		t.Fatal("ACK not heard at 5 m bridge")
	}
	if res.Attempts != 1 {
		t.Fatalf("clean channel needed %d attempts", res.Attempts)
	}
}

func TestMessengerRetriesOnDeadMedium(t *testing.T) {
	m, err := modem.New(modem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	proto := phy.New(m, phy.Options{})
	ms := NewMessenger(proto, 4)
	ms.Retries = 2
	res, err := ms.Send(deadMedium{}, 9, 0, NoMessage, 0)
	if !errors.Is(err, ErrNoACK) {
		t.Fatalf("want ErrNoACK from dead medium, got %v", err)
	}
	if res.Delivered || res.Acknowledged {
		t.Fatal("dead medium cannot deliver")
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts %d, want 3 (1 + 2 retries)", res.Attempts)
	}
}

// deadMedium absorbs everything.
type deadMedium struct{}

func (deadMedium) Forward(tx []float64, atS float64) []float64 {
	return make([]float64, len(tx))
}
func (deadMedium) Backward(tx []float64, atS float64) []float64 {
	return make([]float64, len(tx))
}
