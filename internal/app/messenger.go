package app

import (
	"fmt"

	"aquago/internal/phy"
)

// NoMessage is the payload filler when a packet carries one message
// instead of two (any value >= NumMessages works; 0xFF is canonical).
const NoMessage = 0xFF

// PackPair packs one or two message IDs into a 16-bit packet payload
// ("users can choose to send two hand signals in a single packet").
func PackPair(first uint8, second uint8) ([2]byte, error) {
	if int(first) >= NumMessages {
		return [2]byte{}, fmt.Errorf("app: message ID %d out of range", first)
	}
	if int(second) >= NumMessages && second != NoMessage {
		return [2]byte{}, fmt.Errorf("app: message ID %d out of range", second)
	}
	return [2]byte{first, second}, nil
}

// UnpackPair recovers the message IDs from a payload; ok2 reports
// whether a second message is present.
func UnpackPair(payload [2]byte) (first uint8, second uint8, ok2 bool) {
	return payload[0], payload[1], int(payload[1]) < NumMessages
}

// Messenger sends codebook messages over the packet protocol with
// retransmission on missing ACKs.
type Messenger struct {
	proto *phy.Protocol
	// Retries is the extra attempt budget after the first try.
	Retries int
	// Src is this device's ID.
	Src phy.DeviceID
}

// NewMessenger wraps a protocol instance.
func NewMessenger(proto *phy.Protocol, src phy.DeviceID) *Messenger {
	return &Messenger{proto: proto, Retries: 2, Src: src}
}

// SendResult describes a (possibly retried) message delivery.
type SendResult struct {
	// Attempts counts transmissions performed (1 = no retry needed).
	Attempts int
	// Delivered reports end-to-end success (payload decoded by Bob).
	Delivered bool
	// Acknowledged reports that the sender heard the ACK. A delivered
	// but unacknowledged message triggers a wasteful retry — exactly
	// the classic two-generals cost this field makes visible.
	Acknowledged bool
	// Last is the final attempt's protocol result.
	Last phy.Result
}

// Send transmits one or two messages to dst over the medium, retrying
// while no ACK is heard. atS advances with the retry traffic so the
// channel keeps evolving.
func (ms *Messenger) Send(med phy.Medium, dst phy.DeviceID, first, second uint8, atS float64) (SendResult, error) {
	payload, err := PackPair(first, second)
	if err != nil {
		return SendResult{}, err
	}
	pkt := phy.Packet{Dst: dst, Src: ms.Src, Payload: payload}
	var out SendResult
	now := atS
	for attempt := 0; attempt <= ms.Retries; attempt++ {
		out.Attempts = attempt + 1
		res, err := ms.proto.Exchange(med, pkt, now)
		if err != nil {
			return out, err
		}
		out.Last = res
		out.Delivered = out.Delivered || res.Delivered
		if res.ACKReceived {
			out.Acknowledged = true
			return out, nil
		}
		// Back off one packet airtime before retrying.
		now += ms.proto.PacketAirtimeS(res.Band) + 0.25
	}
	return out, nil
}

// DecodePayload maps a received packet payload back to messages.
func DecodePayload(payload [2]byte) ([]Message, error) {
	first, second, ok2 := UnpackPair(payload)
	m1, ok := ByID(first)
	if !ok {
		return nil, fmt.Errorf("app: unknown message ID %d", first)
	}
	msgs := []Message{m1}
	if ok2 {
		m2, ok := ByID(second)
		if !ok {
			return nil, fmt.Errorf("app: unknown message ID %d", second)
		}
		msgs = append(msgs, m2)
	}
	return msgs, nil
}
