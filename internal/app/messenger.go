package app

import (
	"errors"
	"fmt"

	"aquago/internal/phy"
)

// NoMessage is the payload filler when a packet carries one message
// instead of two (any value >= NumMessages works; 0xFF is canonical).
const NoMessage = 0xFF

// Sentinel errors for the messaging layer; match with errors.Is.
var (
	// ErrBadMessage reports an unsendable message: an ID outside the
	// codebook, or a malformed message set.
	ErrBadMessage = errors.New("app: bad message")
	// ErrUnknownMessage reports a received payload naming no codebook
	// entry.
	ErrUnknownMessage = errors.New("app: unknown message ID")
	// ErrNoACK reports that every transmission attempt went
	// unacknowledged. The accompanying SendResult still describes what
	// happened — Delivered may be true when only the ACK was lost (the
	// two-generals cost).
	ErrNoACK = errors.New("app: no acknowledgment heard")
)

// PackPair packs one or two message IDs into a 16-bit packet payload
// ("users can choose to send two hand signals in a single packet").
func PackPair(first uint8, second uint8) ([2]byte, error) {
	if int(first) >= NumMessages {
		return [2]byte{}, fmt.Errorf("%w: ID %d out of range", ErrBadMessage, first)
	}
	if int(second) >= NumMessages && second != NoMessage {
		return [2]byte{}, fmt.Errorf("%w: ID %d out of range", ErrBadMessage, second)
	}
	return [2]byte{first, second}, nil
}

// UnpackPair recovers the message IDs from a payload; ok2 reports
// whether a second message is present.
func UnpackPair(payload [2]byte) (first uint8, second uint8, ok2 bool) {
	return payload[0], payload[1], int(payload[1]) < NumMessages
}

// Messenger sends codebook messages over the packet protocol with
// retransmission on missing ACKs.
type Messenger struct {
	proto *phy.Protocol
	// Retries is the extra attempt budget after the first try.
	Retries int
	// Src is this device's ID.
	Src phy.DeviceID
	// Gate, when non-nil, grants medium access before each attempt: it
	// receives the earliest virtual time the attempt could start and
	// returns the granted transmit time (e.g. after carrier-sense
	// backoff) or an error (channel busy past a deadline, context
	// cancelled). A nil Gate transmits immediately.
	Gate func(readyS float64) (float64, error)
	// OnAttempt, when non-nil, observes each attempt right after its
	// exchange: the (granted) start time and the protocol result. The
	// public Network uses it to put the attempt on the air in envelope
	// mode with its actual duration.
	OnAttempt func(startS float64, res phy.Result)
}

// NewMessenger wraps a protocol instance.
func NewMessenger(proto *phy.Protocol, src phy.DeviceID) *Messenger {
	return &Messenger{proto: proto, Retries: 2, Src: src}
}

// SendResult describes a (possibly retried) message delivery.
type SendResult struct {
	// Attempts counts transmissions performed (1 = no retry needed).
	Attempts int
	// Delivered reports end-to-end success (payload decoded by Bob).
	Delivered bool
	// Acknowledged reports that the sender heard the ACK. A delivered
	// but unacknowledged message triggers a wasteful retry — exactly
	// the classic two-generals cost this field makes visible.
	Acknowledged bool
	// Last is the final attempt's protocol result.
	Last phy.Result
}

// Send transmits one or two messages to dst over the medium, retrying
// while no ACK is heard. atS advances with the retry traffic so the
// channel keeps evolving. When every attempt goes unacknowledged the
// returned error wraps ErrNoACK; the SendResult still reports what the
// attempts achieved (Delivered can be true with a lost ACK).
func (ms *Messenger) Send(med phy.Medium, dst phy.DeviceID, first, second uint8, atS float64) (SendResult, error) {
	payload, err := PackPair(first, second)
	if err != nil {
		return SendResult{}, err
	}
	return ms.SendRaw(med, dst, payload, atS)
}

// SendRaw is Send for an arbitrary 16-bit payload: the same gated,
// retried exchange loop, minus the codebook validation. Bulk transfer
// rides on it — a payload chunk is two raw bytes, not two hand-signal
// IDs.
func (ms *Messenger) SendRaw(med phy.Medium, dst phy.DeviceID, payload [2]byte, atS float64) (SendResult, error) {
	pkt := phy.Packet{Dst: dst, Src: ms.Src, Payload: payload}
	var out SendResult
	now := atS
	for attempt := 0; attempt <= ms.Retries; attempt++ {
		start := now
		if ms.Gate != nil {
			granted, err := ms.Gate(now)
			if err != nil {
				return out, err
			}
			start = granted
		}
		out.Attempts = attempt + 1
		res, err := ms.proto.Exchange(med, pkt, start)
		if err != nil {
			return out, err
		}
		if ms.OnAttempt != nil {
			ms.OnAttempt(start, res)
		}
		out.Last = res
		out.Delivered = out.Delivered || res.Delivered
		if res.ACKReceived {
			out.Acknowledged = true
			return out, nil
		}
		// Back off one packet airtime before retrying.
		now = start + ms.proto.PacketAirtimeS(res.Band) + 0.25
	}
	return out, fmt.Errorf("%w after %d attempts", ErrNoACK, out.Attempts)
}

// DecodePayload maps a received packet payload back to messages.
func DecodePayload(payload [2]byte) ([]Message, error) {
	first, second, ok2 := UnpackPair(payload)
	m1, ok := ByID(first)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownMessage, first)
	}
	msgs := []Message{m1}
	if ok2 {
		m2, ok := ByID(second)
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrUnknownMessage, second)
		}
		msgs = append(msgs, m2)
	}
	return msgs, nil
}
