// Package app implements AquaApp's messaging layer: the codebook of
// 240 canned messages corresponding to diver hand signals, organized
// into eight categories with the twenty most common flagged for quick
// access (the paper's Fig 2 interface), plus message packing — two
// 8-bit message IDs per 16-bit packet — and a send/receive messenger
// with retransmission on missing ACKs.
package app

import "strings"

// Category groups messages the way the app's filter UI does.
type Category int

// The eight message categories.
const (
	Safety Category = iota
	AirAndGas
	Navigation
	MarineLife
	Equipment
	Coordination
	Emergency
	General
	numCategories
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Safety:
		return "safety"
	case AirAndGas:
		return "air-and-gas"
	case Navigation:
		return "navigation"
	case MarineLife:
		return "marine-life"
	case Equipment:
		return "equipment"
	case Coordination:
		return "coordination"
	case Emergency:
		return "emergency"
	case General:
		return "general"
	default:
		return "unknown"
	}
}

// Categories lists all eight categories.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Message is one canned hand-signal message.
type Message struct {
	// ID is the 8-bit over-the-air code (0..239).
	ID uint8
	// Text is the message shown in the app.
	Text string
	// Category filters the list.
	Category Category
	// Common marks the twenty most-used signals displayed
	// prominently.
	Common bool
}

// NumMessages is the codebook size (the paper's 240 messages).
const NumMessages = 240

// MessagesPerCategory is the uniform category size.
const MessagesPerCategory = NumMessages / int(numCategories)

// perCategoryTexts lists 30 messages per category, in category order.
var perCategoryTexts = [numCategories][MessagesPerCategory]string{
	Safety: {
		"OK?",
		"OK!",
		"Something is wrong",
		"Help me",
		"Emergency - surface now",
		"Watch me",
		"Stay together",
		"Buddy up",
		"Stop",
		"Slow down",
		"Hold on",
		"Danger ahead",
		"Turn the dive",
		"End the dive",
		"Safety stop - 3 minutes",
		"Decompression stop needed",
		"You are too deep",
		"Check your depth",
		"Check your time",
		"Do not touch",
		"Stay calm",
		"Breathe slowly",
		"Share air with me",
		"Minor issue - I am OK",
		"Cramp - leg",
		"Cramp - arm",
		"I am cold",
		"I am tired",
		"Vertigo - help stabilize",
		"Ears not equalizing",
	},
	AirAndGas: {
		"How much air do you have?",
		"I have plenty of air",
		"Air at half tank",
		"Air low - 50 bar",
		"Air critical - on reserve",
		"Out of air",
		"Share air - octopus",
		"Switch to backup regulator",
		"Regulator free-flowing",
		"Check your gauge",
		"Air at 100 bar",
		"Air at 70 bar",
		"Breathing hard",
		"Conserve air",
		"Tank valve issue",
		"Bubbles from your tank",
		"Bubbles from your hose",
		"Regulator tastes of water",
		"Switch to snorkel at surface",
		"Air share drill - begin",
		"Air share drill - done",
		"Gas mix question",
		"Nitrox check",
		"Oxygen concern",
		"Deep stop for gas",
		"Ascend for air",
		"Buddy breathing - start",
		"Buddy breathing - stop",
		"Air OK",
		"Gauge reading unclear",
	},
	Navigation: {
		"Go up",
		"Go down",
		"Level off",
		"Go left",
		"Go right",
		"Turn around",
		"Go straight",
		"Follow me",
		"You lead",
		"Go under the obstacle",
		"Go over the obstacle",
		"Head to the boat",
		"Head to the shore",
		"Head to the anchor line",
		"Circle here",
		"Hold this depth",
		"Which way?",
		"This way",
		"Return to entry point",
		"Navigate by compass",
		"Check compass heading",
		"Current - swim across it",
		"Swim against the current",
		"Drift with the current",
		"Surface swim from here",
		"Descend on the line",
		"Ascend on the line",
		"Meet at the bottom",
		"Meet at the surface",
		"Waypoint reached",
	},
	MarineLife: {
		"Look - fish school",
		"Look - shark",
		"Look - ray",
		"Look - turtle",
		"Look - octopus",
		"Look - eel",
		"Look - dolphin",
		"Look - seal",
		"Look - jellyfish",
		"Caution - lionfish",
		"Caution - stonefish",
		"Caution - sea urchins",
		"Caution - fire coral",
		"Do not touch the coral",
		"Fragile habitat - keep off",
		"Photo opportunity",
		"Film this",
		"Small creature - macro",
		"Under the ledge",
		"In the crevice",
		"On the sand",
		"Out in the blue",
		"Above us",
		"Below us",
		"It is gone",
		"Stay still - observe",
		"Back away slowly",
		"Feeding activity",
		"Nesting site - avoid",
		"Species unknown",
	},
	Equipment: {
		"Check your equipment",
		"My mask is flooding",
		"Mask cleared",
		"Fin strap loose",
		"Fin lost",
		"Weight belt issue",
		"Drop your weights",
		"Inflate BCD",
		"Deflate BCD",
		"BCD valve stuck",
		"Computer error",
		"Computer battery low",
		"Torch failing",
		"Torch on",
		"Torch off",
		"Camera issue",
		"Reel tangled",
		"Need to cut the line",
		"Knife needed",
		"Send up the marker buoy",
		"Deploy surface marker",
		"Gauge misreading",
		"Strap needs adjustment",
		"Hood too tight",
		"Spare mask needed",
		"Secure the octopus",
		"Tank slipping - re-strap",
		"Dry suit leak",
		"Zip me up",
		"Equipment OK",
	},
	Coordination: {
		"Wait here",
		"Come here",
		"Give me a moment",
		"Ready?",
		"I am ready",
		"Not ready",
		"One more minute",
		"Five more minutes",
		"Begin the task",
		"Task complete",
		"Switch positions",
		"You shoot, I light",
		"Hold the line",
		"Tie off here",
		"Untie the line",
		"Lift together",
		"Put it down",
		"Search pattern - start",
		"Search pattern - done",
		"Cover that side",
		"I cover this side",
		"Count off",
		"Pair check",
		"Team of three",
		"Rotate leader",
		"Signal the boat",
		"Wait for the group",
		"Group is complete",
		"Missing one diver",
		"Regroup at the line",
	},
	Emergency: {
		"Diver down - assist",
		"Entangled - help",
		"Trapped - get help",
		"Lost buddy procedure",
		"I am lost",
		"Low visibility - hold hands",
		"Strong current - abort",
		"Boat traffic above",
		"Do not surface - obstacle",
		"Surface immediately",
		"Suspected decompression sickness",
		"Numbness - DCS sign",
		"Chest pain",
		"Breathing problem",
		"Panic - calm me",
		"Inflate my BCD",
		"Tow me to the boat",
		"Call for evacuation",
		"Oxygen needed at surface",
		"First aid needed",
		"Head injury",
		"Bleeding",
		"Venomous sting",
		"Bite injury",
		"Hypothermia setting in",
		"Exhausted - cannot swim",
		"Mask lost - guide me",
		"Rope me in",
		"Abort and debrief",
		"All clear - false alarm",
	},
	General: {
		"Yes",
		"No",
		"Maybe",
		"I do not understand",
		"Repeat please",
		"Write it on the slate",
		"Look at me",
		"Look there",
		"Listen",
		"Depth 5 meters",
		"Depth 10 meters",
		"Depth 15 meters",
		"Depth 20 meters",
		"Time 5 minutes",
		"Time 10 minutes",
		"Time 20 minutes",
		"Time 30 minutes",
		"Number 1",
		"Number 2",
		"Number 3",
		"Number 4",
		"Number 5",
		"Number 10",
		"Number 50",
		"Number 100",
		"Good job",
		"Thank you",
		"Sorry",
		"Hello",
		"Goodbye",
	},
}

// commonTexts are the twenty signals the app surfaces prominently.
var commonTexts = map[string]bool{
	"OK?":                     true,
	"OK!":                     true,
	"Something is wrong":      true,
	"Help me":                 true,
	"Emergency - surface now": true,
	"Go up":                   true,
	"Go down":                 true,
	"Stop":                    true,
	"Follow me":               true,
	"This way":                true,
	"How much air do you have?": true,
	"Air low - 50 bar":          true,
	"Out of air":                true,
	"Share air - octopus":       true,
	"End the dive":              true,
	"Stay together":             true,
	"Look - shark":              true,
	"Yes":                       true,
	"No":                        true,
	"Come here":                 true,
}

var codebook []Message

func init() {
	codebook = make([]Message, 0, NumMessages)
	id := uint8(0)
	for c := Category(0); c < numCategories; c++ {
		for _, text := range perCategoryTexts[c] {
			codebook = append(codebook, Message{
				ID:       id,
				Text:     text,
				Category: c,
				Common:   commonTexts[text],
			})
			id++
		}
	}
}

// Messages returns the full 240-message codebook in ID order. The
// slice is shared; callers must not modify it.
func Messages() []Message { return codebook }

// ByID looks a message up by its over-the-air code.
func ByID(id uint8) (Message, bool) {
	if int(id) >= len(codebook) {
		return Message{}, false
	}
	return codebook[id], true
}

// ByText finds the message with the exact text.
func ByText(text string) (Message, bool) {
	for _, m := range codebook {
		if m.Text == text {
			return m, true
		}
	}
	return Message{}, false
}

// ByCategory returns the 30 messages of one category.
func ByCategory(c Category) []Message {
	var out []Message
	for _, m := range codebook {
		if m.Category == c {
			out = append(out, m)
		}
	}
	return out
}

// Common returns the twenty prominently-displayed messages.
func Common() []Message {
	var out []Message
	for _, m := range codebook {
		if m.Common {
			out = append(out, m)
		}
	}
	return out
}

// Search returns messages whose text contains the query
// (case-insensitive), mirroring the app's filter box.
func Search(query string) []Message {
	q := strings.ToLower(query)
	var out []Message
	for _, m := range codebook {
		if strings.Contains(strings.ToLower(m.Text), q) {
			out = append(out, m)
		}
	}
	return out
}
