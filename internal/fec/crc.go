package fec

// CRC8 computes the CRC-8 (polynomial x^8 + x^2 + x + 1, 0x07,
// init 0x00) over a bit slice, MSB-first. AquaApp's 16-bit packets
// carry no checksum in the paper (errors were counted against known
// ground truth); the library offers CRC-8 as an optional trailer so
// real deployments can detect residual Viterbi errors.
func CRC8(bits []int) uint8 {
	var crc uint8
	for _, b := range bits {
		crc ^= uint8(b&1) << 7
		if crc&0x80 != 0 {
			crc = crc<<1 ^ 0x07
		} else {
			crc <<= 1
		}
	}
	return crc
}

// AppendCRC8 returns bits with the 8 CRC bits appended (MSB first).
func AppendCRC8(bits []int) []int {
	crc := CRC8(bits)
	out := make([]int, 0, len(bits)+8)
	out = append(out, bits...)
	for i := 7; i >= 0; i-- {
		out = append(out, int(crc>>uint(i))&1)
	}
	return out
}

// CheckCRC8 verifies a bit slice produced by AppendCRC8. It returns
// the payload bits and whether the checksum matched.
func CheckCRC8(bits []int) ([]int, bool) {
	if len(bits) < 8 {
		return nil, false
	}
	payload := bits[:len(bits)-8]
	var got uint8
	for _, b := range bits[len(bits)-8:] {
		got = got<<1 | uint8(b&1)
	}
	return payload, CRC8(payload) == got
}

// BitsFromBytes unpacks bytes into bits, MSB first.
func BitsFromBytes(data []byte) []int {
	out := make([]int, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, int(b>>uint(i))&1)
		}
	}
	return out
}

// BytesFromBits packs bits (MSB first) into bytes; the bit count must
// be a multiple of 8.
func BytesFromBits(bits []int) []byte {
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b != 0 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}
