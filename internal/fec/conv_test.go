package fec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(n int, rng *rand.Rand) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = int(rng.Int31n(2))
	}
	return out
}

func bitsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCodedLen(t *testing.T) {
	c23 := NewCodec(Rate23, Truncated)
	// The paper's packet: 16 data bits -> 24 coded bits at rate 2/3.
	if got := c23.CodedLen(16); got != 24 {
		t.Fatalf("rate 2/3 CodedLen(16) = %d, want 24", got)
	}
	c12 := NewCodec(Rate12, Truncated)
	if got := c12.CodedLen(16); got != 32 {
		t.Fatalf("rate 1/2 CodedLen(16) = %d, want 32", got)
	}
	c23t := NewCodec(Rate23, Terminated)
	if got := c23t.CodedLen(16); got != 33 {
		t.Fatalf("terminated rate 2/3 CodedLen(16) = %d, want 33", got)
	}
}

func TestEncodeKnownVector(t *testing.T) {
	// The all-zero input must encode to all zeros (linear code).
	c := NewCodec(Rate12, Truncated)
	out := c.Encode(make([]int, 8))
	for i, b := range out {
		if b != 0 {
			t.Fatalf("all-zero input produced non-zero coded bit at %d", i)
		}
	}
	// A single leading 1 produces the generator impulse response:
	// G1=171o taps 1+D+D^2+D^3+D^6, G2=133o taps 1+D^2+D^3+D^5+D^6.
	in := []int{1, 0, 0, 0, 0, 0, 0}
	out = c.Encode(in)
	wantG1 := []int{1, 1, 1, 1, 0, 0, 1} // impulse response of G1
	wantG2 := []int{1, 0, 1, 1, 0, 1, 1} // impulse response of G2
	for i := 0; i < 7; i++ {
		if out[2*i] != wantG1[i] || out[2*i+1] != wantG2[i] {
			t.Fatalf("impulse response mismatch at step %d: got (%d,%d) want (%d,%d)",
				i, out[2*i], out[2*i+1], wantG1[i], wantG2[i])
		}
	}
}

func TestRoundTripNoNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, rate := range []Rate{Rate12, Rate23} {
		for _, term := range []Termination{Truncated, Terminated, TailBiting} {
			c := NewCodec(rate, term)
			for _, n := range []int{1, 2, 8, 16, 100} {
				bits := randBits(n, rng)
				coded := c.Encode(bits)
				if len(coded) != c.CodedLen(n) {
					t.Fatalf("rate=%v term=%v n=%d: coded len %d want %d",
						rate, term, n, len(coded), c.CodedLen(n))
				}
				dec, err := c.DecodeHard(coded, n)
				if err != nil {
					t.Fatal(err)
				}
				if !bitsEqual(dec, bits) {
					t.Fatalf("rate=%v term=%v n=%d: round trip failed", rate, term, n)
				}
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	c := NewCodec(Rate23, Truncated)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + int(r.Int31n(60))
		bits := randBits(n, r)
		dec, err := c.DecodeHard(c.Encode(bits), n)
		return err == nil && bitsEqual(dec, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestErrorCorrectionSingleErrors(t *testing.T) {
	// The K=7 code has free distance 10 (rate 1/2); any single coded
	// bit error in a terminated block must be corrected.
	rng := rand.New(rand.NewSource(52))
	c := NewCodec(Rate12, Terminated)
	bits := randBits(16, rng)
	coded := c.Encode(bits)
	for pos := range coded {
		corrupted := append([]int(nil), coded...)
		corrupted[pos] ^= 1
		dec, err := c.DecodeHard(corrupted, 16)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(dec, bits) {
			t.Fatalf("single error at %d not corrected", pos)
		}
	}
}

func TestErrorCorrectionDoubleErrorsRate23(t *testing.T) {
	// Punctured 2/3 (free distance 6) still corrects two well-separated
	// errors in a terminated block.
	rng := rand.New(rand.NewSource(53))
	c := NewCodec(Rate23, Terminated)
	bits := randBits(24, rng)
	coded := c.Encode(bits)
	corrupted := append([]int(nil), coded...)
	corrupted[3] ^= 1
	corrupted[len(corrupted)-5] ^= 1
	dec, err := c.DecodeHard(corrupted, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(dec, bits) {
		t.Fatal("two separated errors not corrected at rate 2/3")
	}
}

func TestSoftBeatsHardUnderNoise(t *testing.T) {
	// With Gaussian soft values, soft-decision Viterbi must achieve a
	// lower (or equal) bit error rate than hard decisions at the same
	// SNR. Run a small Monte-Carlo and compare.
	rng := rand.New(rand.NewSource(54))
	c := NewCodec(Rate12, Terminated)
	const trials = 200
	const n = 32
	sigma := 0.9 // ~1 dB Eb/N0: noisy enough for visible differences
	hardErrs, softErrs := 0, 0
	for trial := 0; trial < trials; trial++ {
		bits := randBits(n, rng)
		coded := c.Encode(bits)
		soft := make([]float64, len(coded))
		hard := make([]int, len(coded))
		for i, b := range coded {
			tx := 1.0
			if b == 1 {
				tx = -1.0
			}
			rx := tx + sigma*rng.NormFloat64()
			soft[i] = rx
			if rx >= 0 {
				hard[i] = 0
			} else {
				hard[i] = 1
			}
		}
		decH, err := c.DecodeHard(hard, n)
		if err != nil {
			t.Fatal(err)
		}
		decS, err := c.DecodeSoft(soft, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if decH[i] != bits[i] {
				hardErrs++
			}
			if decS[i] != bits[i] {
				softErrs++
			}
		}
	}
	if softErrs > hardErrs {
		t.Fatalf("soft decoding (%d errors) worse than hard (%d errors)", softErrs, hardErrs)
	}
	if hardErrs == 0 {
		t.Log("warning: noise too low to distinguish decoders")
	}
}

func TestDecodeLengthValidation(t *testing.T) {
	c := NewCodec(Rate23, Truncated)
	if _, err := c.DecodeHard(make([]int, 10), 16); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := c.DecodeSoft(make([]float64, 25), 16); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := c.DecodeHard([]int{0, 1, 2}, 2); err == nil {
		t.Fatal("expected invalid bit value error")
	}
}

func TestEncodePanicsOnInvalidBit(t *testing.T) {
	c := NewCodec(Rate12, Truncated)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid bit")
		}
	}()
	c.Encode([]int{0, 1, 7})
}

func TestRateString(t *testing.T) {
	if Rate12.String() != "1/2" || Rate23.String() != "2/3" || Rate(9).String() != "unknown" {
		t.Fatal("Rate.String")
	}
	if Truncated.String() != "truncated" || TailBiting.String() != "tail-biting" ||
		Terminated.String() != "terminated" || Termination(9).String() != "unknown" {
		t.Fatal("Termination.String")
	}
}

func TestTailBitingCodedLen(t *testing.T) {
	// Tail-biting preserves the paper's exact 16 -> 24 expansion.
	c := NewCodec(Rate23, TailBiting)
	if got := c.CodedLen(16); got != 24 {
		t.Fatalf("tail-biting CodedLen(16) = %d, want 24", got)
	}
}

func TestTailBitingStateConsistency(t *testing.T) {
	// Property: encoding starts and ends in the same trellis state.
	rng := rand.New(rand.NewSource(56))
	c := NewCodec(Rate12, TailBiting)
	for trial := 0; trial < 50; trial++ {
		n := 7 + int(rng.Int31n(40))
		bits := randBits(n, rng)
		start := c.tailBitingState(bits)
		state := start
		for _, b := range bits {
			state = c.nextState[state][b]
		}
		if state != start {
			t.Fatalf("trial %d: start state %d, end state %d", trial, start, state)
		}
	}
}

func TestTailBitingCorrectsErrorsAtBlockEnd(t *testing.T) {
	// The motivation for tail-biting in this system: with a truncated
	// trellis, single coded-bit errors near the block end frequently
	// decode wrong; tail-biting's uniform protection fixes them.
	rng := rand.New(rand.NewSource(57))
	tb := NewCodec(Rate23, TailBiting)
	tr := NewCodec(Rate23, Truncated)
	const trials = 40
	tbFails, trFails := 0, 0
	for trial := 0; trial < trials; trial++ {
		bits := randBits(16, rng)
		for _, c := range []struct {
			codec *Codec
			fails *int
		}{{tb, &tbFails}, {tr, &trFails}} {
			coded := c.codec.Encode(bits)
			// Flip one of the last three coded bits.
			pos := len(coded) - 1 - int(rng.Int31n(3))
			coded[pos] ^= 1
			dec, err := c.codec.DecodeHard(coded, 16)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(dec, bits) {
				*c.fails++
			}
		}
	}
	t.Logf("block-end single error: tail-biting %d/%d failures, truncated %d/%d",
		tbFails, trials, trFails, trials)
	if tbFails > trFails {
		t.Fatalf("tail-biting (%d fails) worse than truncated (%d)", tbFails, trFails)
	}
	if tbFails > trials/10 {
		t.Fatalf("tail-biting fails %d/%d on single block-end errors", tbFails, trials)
	}
}

func TestTailBitingSingleErrorsAnywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	c := NewCodec(Rate23, TailBiting)
	bits := randBits(16, rng)
	coded := c.Encode(bits)
	fails := 0
	for pos := range coded {
		bad := append([]int(nil), coded...)
		bad[pos] ^= 1
		dec, err := c.DecodeHard(bad, 16)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(dec, bits) {
			fails++
		}
	}
	if fails > 0 {
		t.Fatalf("tail-biting failed on %d/%d single-error positions", fails, len(coded))
	}
}

func BenchmarkViterbiDecode24Bits(b *testing.B) {
	// The paper's per-packet decode: 24 coded bits. Its budget is
	// < 20 ms per symbol on a Galaxy S9; on a laptop-class CPU this
	// should be microseconds.
	rng := rand.New(rand.NewSource(55))
	c := NewCodec(Rate23, Truncated)
	bits := randBits(16, rng)
	coded := c.Encode(bits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeHard(coded, 16); err != nil {
			b.Fatal(err)
		}
	}
}
