// Package fec implements the forward-error-correction chain of the
// AquaApp modem: the rate-1/2 constraint-length-7 convolutional code
// (generators 171/133 octal) punctured to rate 2/3, hard- and
// soft-decision Viterbi decoding, the paper's subcarrier interleaver,
// and a CRC-8 for explicit packet error detection.
package fec

import (
	"fmt"
	"math"
)

// Generator polynomials of the industry-standard K=7 code (octal
// 171/133), the pair the paper cites from GSM and satellite systems.
const (
	genG1 = 0o171 // 1 + D + D^2 + D^3 + D^6
	genG2 = 0o133 // 1 + D^2 + D^3 + D^5 + D^6
	// ConstraintLength is K: the encoder output depends on the current
	// and the K-1 previous input bits.
	ConstraintLength = 7
	numStates        = 1 << (ConstraintLength - 1) // 64
)

// Rate selects the code rate of a Codec.
type Rate int

const (
	// Rate12 is the unpunctured 1/2 mother code.
	Rate12 Rate = iota
	// Rate23 punctures the mother code with pattern [[1,1],[1,0]] to
	// rate 2/3 — the rate AquaApp uses (16 data bits -> 24 coded bits).
	Rate23
)

// String returns "1/2" or "2/3".
func (r Rate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	default:
		return "unknown"
	}
}

// puncture23 keeps mother-code bits in the repeating pattern
// c0 c1 c0 (drop the second c1 of every 2-input-bit group).
var puncture23 = []bool{true, true, true, false}

// Termination selects how the trellis is closed.
type Termination int

const (
	// Truncated appends nothing; the decoder picks the best-metric
	// end state. Cheapest, but the last K-1 information bits get
	// reduced protection.
	Truncated Termination = iota
	// Terminated appends K-1 zero tail bits; the decoder forces the
	// all-zero end state. Strongest, but inflates the coded length.
	Terminated
	// TailBiting initializes the encoder state from the final K-1
	// information bits so the trellis starts and ends in the same
	// state: uniform protection with no extra bits — AquaApp's
	// 16-bit payload encodes to exactly 24 coded bits.
	TailBiting
)

// String names the termination mode.
func (t Termination) String() string {
	switch t {
	case Truncated:
		return "truncated"
	case Terminated:
		return "terminated"
	case TailBiting:
		return "tail-biting"
	default:
		return "unknown"
	}
}

// Codec encodes and decodes one convolutional code configuration.
// NewCodec is the conventional constructor; the zero value is a
// truncated rate-1/2 codec.
type Codec struct {
	Rate        Rate
	Termination Termination

	// Trellis tables, built lazily: for prior state s and input bit b,
	// nextState[s][b] and output[s][b] (2 coded bits packed as c0<<1|c1).
	nextState [numStates][2]uint8
	output    [numStates][2]uint8
	built     bool
}

// NewCodec returns a codec with the given rate and termination mode.
func NewCodec(rate Rate, term Termination) *Codec {
	c := &Codec{Rate: rate, Termination: term}
	c.build()
	return c
}

func (c *Codec) build() {
	if c.built {
		return
	}
	for s := 0; s < numStates; s++ {
		for b := 0; b < 2; b++ {
			window := uint32(b)<<6 | uint32(s) // newest bit at bit 6
			c0 := parity7(window & genG1)
			c1 := parity7(window & genG2)
			c.output[s][b] = uint8(c0<<1 | c1)
			c.nextState[s][b] = uint8(window >> 1)
		}
	}
	c.built = true
}

func parity7(x uint32) uint32 {
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

// CodedLen returns the number of coded bits Encode will produce for n
// information bits.
func (c *Codec) CodedLen(n int) int {
	if c.Termination == Terminated {
		n += ConstraintLength - 1
	}
	mother := 2 * n
	if c.Rate == Rate23 {
		// Keep 3 of every 4 mother bits; partial groups keep their
		// prefix of the pattern.
		kept := (mother / 4) * 3
		switch mother % 4 {
		case 1:
			kept++
		case 2:
			kept += 2
		case 3:
			kept += 3
		}
		return kept
	}
	return mother
}

// tailBitingState returns the encoder start state implied by the last
// K-1 information bits (with modular wraparound for short blocks).
func (c *Codec) tailBitingState(bits []int) uint8 {
	n := len(bits)
	if n == 0 {
		return 0
	}
	var state uint8
	// State bit layout: newest previous bit at bit 5 (see build).
	for i := 1; i <= ConstraintLength-1; i++ {
		idx := ((n - i) % n + n) % n
		if bits[idx] == 1 {
			state |= 1 << uint(ConstraintLength-1-i)
		}
	}
	return state
}

// Encode convolutionally encodes bits (values 0/1) and applies the
// codec's puncturing. The result length equals CodedLen(len(bits)).
func (c *Codec) Encode(bits []int) []int {
	c.build()
	for _, b := range bits {
		if b != 0 && b != 1 {
			panic(fmt.Sprintf("fec: bit value %d out of {0,1}", b))
		}
	}
	in := bits
	var state uint8
	switch c.Termination {
	case Terminated:
		in = make([]int, 0, len(bits)+ConstraintLength-1)
		in = append(in, bits...)
		for i := 0; i < ConstraintLength-1; i++ {
			in = append(in, 0)
		}
	case TailBiting:
		state = c.tailBitingState(bits)
	}
	mother := make([]int, 0, 2*len(in))
	for _, b := range in {
		out := c.output[state][b]
		mother = append(mother, int(out>>1), int(out&1))
		state = c.nextState[state][b]
	}
	if c.Rate == Rate12 {
		return mother
	}
	kept := make([]int, 0, c.CodedLen(len(bits)))
	for i, b := range mother {
		if puncture23[i%4] {
			kept = append(kept, b)
		}
	}
	return kept
}

// DecodeHard runs hard-decision Viterbi over received coded bits
// (0/1) and returns the maximum-likelihood information bits.
// n is the number of information bits expected; the received slice
// must have length CodedLen(n). Punctured positions are treated as
// erasures internally.
func (c *Codec) DecodeHard(received []int, n int) ([]int, error) {
	soft := make([]float64, len(received))
	for i, b := range received {
		switch b {
		case 0:
			soft[i] = 1 // bit 0 -> +1
		case 1:
			soft[i] = -1
		default:
			return nil, fmt.Errorf("fec: received bit %d out of {0,1}", b)
		}
	}
	return c.DecodeSoft(soft, n)
}

// DecodeSoft runs soft-decision Viterbi decoding. Each element of
// received is a confidence value for one coded bit with the mapping
// bit 0 -> positive, bit 1 -> negative; magnitude is reliability
// (e.g. the demodulator's correlation value). Length must equal
// CodedLen(n). Returns the n decoded information bits.
//
// Tail-biting decoding runs one constrained Viterbi pass per candidate
// start state (64 for K=7) and keeps the best self-consistent path —
// exact maximum-likelihood, affordable at AquaApp's 24-bit packets.
func (c *Codec) DecodeSoft(received []float64, n int) ([]int, error) {
	c.build()
	if want := c.CodedLen(n); len(received) != want {
		return nil, fmt.Errorf("fec: got %d coded values, want %d for %d info bits", len(received), want, n)
	}
	steps := n
	if c.Termination == Terminated {
		steps += ConstraintLength - 1
	}
	// Depuncture into per-step soft pairs; 0 marks an erasure.
	pairs := make([][2]float64, steps)
	idx := 0
	for step := 0; step < steps; step++ {
		for half := 0; half < 2; half++ {
			motherPos := step*2 + half
			keep := c.Rate == Rate12 || puncture23[motherPos%4]
			if keep && idx < len(received) {
				pairs[step][half] = received[idx]
				idx++
			} // else erasure: 0 contributes nothing
		}
	}

	switch c.Termination {
	case TailBiting:
		var bestBits []int
		bestMetric := math.Inf(1)
		for s0 := 0; s0 < numStates; s0++ {
			bits, m := c.viterbi(pairs, steps, s0, s0)
			if m < bestMetric {
				bestMetric = m
				bestBits = bits
			}
		}
		if bestBits == nil {
			return nil, fmt.Errorf("fec: tail-biting decode found no valid path")
		}
		return bestBits[:n], nil
	case Terminated:
		bits, _ := c.viterbi(pairs, steps, 0, 0)
		return bits[:n], nil
	default: // Truncated
		bits, _ := c.viterbi(pairs, steps, 0, -1)
		return bits[:n], nil
	}
}

// viterbi runs one Viterbi pass over depunctured soft pairs with the
// given start state; endState == -1 frees the end state (best metric
// wins). It returns the decoded inputs and the final path metric.
func (c *Codec) viterbi(pairs [][2]float64, steps, startState, endState int) ([]int, float64) {
	const inf = math.MaxFloat64 / 4
	metric := make([]float64, numStates)
	next := make([]float64, numStates)
	for s := range metric {
		metric[s] = inf
	}
	metric[startState] = 0
	survivor := make([][]uint8, steps)
	pred := make([][]uint8, steps)
	for i := range survivor {
		survivor[i] = make([]uint8, numStates)
		pred[i] = make([]uint8, numStates)
	}
	for step := 0; step < steps; step++ {
		for s := range next {
			next[s] = inf
		}
		r0, r1 := pairs[step][0], pairs[step][1]
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for b := 0; b < 2; b++ {
				out := c.output[s][b]
				// Branch metric: negative correlation with expected
				// signs (+1 for coded 0, -1 for coded 1); minimized.
				var bm float64
				if out&2 != 0 {
					bm += r0
				} else {
					bm -= r0
				}
				if out&1 != 0 {
					bm += r1
				} else {
					bm -= r1
				}
				ns := c.nextState[s][b]
				if cand := m + bm; cand < next[ns] {
					next[ns] = cand
					survivor[step][ns] = uint8(b)
					pred[step][ns] = uint8(s)
				}
			}
		}
		metric, next = next, metric
	}
	best := endState
	if best < 0 {
		best = 0
		bestM := metric[0]
		for s := 1; s < numStates; s++ {
			if metric[s] < bestM {
				bestM = metric[s]
				best = s
			}
		}
	}
	decoded := make([]int, steps)
	state := uint8(best)
	for step := steps - 1; step >= 0; step-- {
		decoded[step] = int(survivor[step][state])
		state = pred[step][state]
	}
	return decoded, metric[best]
}
