package fec

import "fmt"

// Interleaver implements the paper's bit-to-subcarrier assignment:
// coded bits fill one OFDM symbol completely before moving to the
// next (so consecutive errors on one subcarrier land in different
// symbols), and within a symbol bits are placed with a stride of
// one-third of the selected band so that adjacent-subcarrier error
// bursts — the failure mode the authors observed — are separated in
// the code stream. Bands narrower than three subcarriers degrade to
// no interleaving, as specified.
//
// The interleaver is a fixed permutation for a given (subcarriers,
// total bits) pair; Interleave and Deinterleave are exact inverses.
type Interleaver struct {
	subcarriers int
	total       int
	perm        []int // perm[i] = grid position of coded bit i
	inv         []int
}

// NewInterleaver builds the permutation for total coded bits spread
// over symbols of `subcarriers` positions each. total may be any
// positive count; the final symbol may be partially filled.
func NewInterleaver(subcarriers, total int) (*Interleaver, error) {
	if subcarriers < 1 {
		return nil, fmt.Errorf("fec: interleaver needs >= 1 subcarrier, got %d", subcarriers)
	}
	if total < 0 {
		return nil, fmt.Errorf("fec: negative bit count %d", total)
	}
	il := &Interleaver{subcarriers: subcarriers, total: total}
	il.perm = make([]int, total)
	il.inv = make([]int, total)

	order := visitOrder(subcarriers)
	for i := 0; i < total; i++ {
		sym := i / subcarriers
		within := i % subcarriers
		il.perm[i] = sym*subcarriers + order[within]
	}
	// A partially-filled final symbol would leave holes in the grid;
	// compact the permutation to a bijection on [0,total) by ranking.
	il.perm = compact(il.perm)
	for i, p := range il.perm {
		il.inv[p] = i
	}
	return il, nil
}

// visitOrder returns the within-symbol subcarrier visit order for a
// band of n subcarriers: stride n/3 (identity when n < 3).
func visitOrder(n int) []int {
	order := make([]int, 0, n)
	step := n / 3
	if step < 1 {
		step = 1
	}
	for r := 0; r < step; r++ {
		for idx := r; idx < n; idx += step {
			order = append(order, idx)
		}
	}
	return order
}

// compact maps a slice of distinct non-negative ints to their ranks,
// preserving order, so the result is a permutation of [0, len).
func compact(p []int) []int {
	n := len(p)
	type kv struct{ val, idx int }
	s := make([]kv, n)
	for i, v := range p {
		s[i] = kv{v, i}
	}
	// insertion sort by value (n is tens of bits; fine)
	for i := 1; i < n; i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j].val > v.val {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
	out := make([]int, n)
	for rank, e := range s {
		out[e.idx] = rank
	}
	return out
}

// Interleave reorders coded bits into transmission (grid) order.
func (il *Interleaver) Interleave(bits []int) ([]int, error) {
	if len(bits) != il.total {
		return nil, fmt.Errorf("fec: interleave %d bits, built for %d", len(bits), il.total)
	}
	out := make([]int, il.total)
	for i, b := range bits {
		out[il.perm[i]] = b
	}
	return out, nil
}

// Deinterleave restores code-stream order from grid order. It is the
// exact inverse of Interleave.
func (il *Interleaver) Deinterleave(bits []int) ([]int, error) {
	if len(bits) != il.total {
		return nil, fmt.Errorf("fec: deinterleave %d bits, built for %d", len(bits), il.total)
	}
	out := make([]int, il.total)
	for i, b := range bits {
		out[il.inv[i]] = b
	}
	return out, nil
}

// DeinterleaveSoft restores code-stream order for soft values.
func (il *Interleaver) DeinterleaveSoft(vals []float64) ([]float64, error) {
	if len(vals) != il.total {
		return nil, fmt.Errorf("fec: deinterleave %d values, built for %d", len(vals), il.total)
	}
	out := make([]float64, il.total)
	for i, v := range vals {
		out[il.inv[i]] = v
	}
	return out, nil
}

// Subcarriers returns the per-symbol width the permutation was built
// for; Total returns the bit count.
func (il *Interleaver) Subcarriers() int { return il.subcarriers }

// Total returns the number of bits the interleaver permutes.
func (il *Interleaver) Total() int { return il.total }
