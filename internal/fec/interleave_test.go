package fec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterleaverRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, sc := range []int{1, 2, 3, 4, 10, 19, 60} {
		for _, total := range []int{0, 1, 24, 60, 61, 120, 123} {
			il, err := NewInterleaver(sc, total)
			if err != nil {
				t.Fatal(err)
			}
			bits := randBits(total, rng)
			inter, err := il.Interleave(bits)
			if err != nil {
				t.Fatal(err)
			}
			back, err := il.Deinterleave(inter)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(back, bits) {
				t.Fatalf("sc=%d total=%d: round trip failed", sc, total)
			}
		}
	}
}

func TestInterleaverIsPermutation(t *testing.T) {
	il, err := NewInterleaver(19, 24) // L=19 band, 24 coded bits
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 24)
	for _, p := range il.perm {
		if p < 0 || p >= 24 || seen[p] {
			t.Fatalf("perm not a bijection: %v", il.perm)
		}
		seen[p] = true
	}
}

func TestInterleaverRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	f := func(scRaw, totalRaw uint8) bool {
		sc := int(scRaw%64) + 1
		total := int(totalRaw) * 2
		il, err := NewInterleaver(sc, total)
		if err != nil {
			return false
		}
		bits := randBits(total, rng)
		inter, err := il.Interleave(bits)
		if err != nil {
			return false
		}
		back, err := il.Deinterleave(inter)
		return err == nil && bitsEqual(back, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestInterleaverSpreadsAdjacentBits(t *testing.T) {
	// The design goal: consecutive coded bits must not land on
	// adjacent subcarriers of the same symbol (for bands >= 3 bins).
	il, err := NewInterleaver(30, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < il.Total(); i++ {
		p0, p1 := il.perm[i], il.perm[i+1]
		if p0/30 != p1/30 {
			continue // different symbols: fine
		}
		d := p0%30 - p1%30
		if d < 0 {
			d = -d
		}
		if d == 1 {
			t.Fatalf("coded bits %d,%d landed on adjacent subcarriers", i, i+1)
		}
	}
}

func TestInterleaverNarrowBandIdentity(t *testing.T) {
	// Fewer than 3 subcarriers: paper says no interleaving (within a
	// symbol the order is sequential).
	il, err := NewInterleaver(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range il.perm {
		if p != i {
			t.Fatalf("narrow band should be identity: perm[%d]=%d", i, p)
		}
	}
}

func TestInterleaverSymbolFirstFill(t *testing.T) {
	// Bits 0..L-1 must all land in symbol 0, bits L..2L-1 in symbol 1.
	il, err := NewInterleaver(10, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range il.perm {
		if p/10 != i/10 {
			t.Fatalf("bit %d crossed into symbol %d", i, p/10)
		}
	}
}

func TestInterleaverSoft(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	il, err := NewInterleaver(19, 24)
	if err != nil {
		t.Fatal(err)
	}
	bits := randBits(24, rng)
	soft := make([]float64, 24)
	inter, _ := il.Interleave(bits)
	for i, b := range inter {
		if b == 0 {
			soft[i] = 1
		} else {
			soft[i] = -1
		}
	}
	back, err := il.DeinterleaveSoft(soft)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bits {
		want := 1.0
		if b == 1 {
			want = -1.0
		}
		if back[i] != want {
			t.Fatalf("soft deinterleave mismatch at %d", i)
		}
	}
}

func TestInterleaverValidation(t *testing.T) {
	if _, err := NewInterleaver(0, 10); err == nil {
		t.Fatal("expected error for 0 subcarriers")
	}
	if _, err := NewInterleaver(4, -1); err == nil {
		t.Fatal("expected error for negative total")
	}
	il, _ := NewInterleaver(4, 8)
	if _, err := il.Interleave(make([]int, 7)); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := il.Deinterleave(make([]int, 9)); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := il.DeinterleaveSoft(make([]float64, 9)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestCRC8RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, n := range []int{0, 1, 8, 16, 100} {
		bits := randBits(n, rng)
		withCRC := AppendCRC8(bits)
		if len(withCRC) != n+8 {
			t.Fatalf("AppendCRC8 length %d, want %d", len(withCRC), n+8)
		}
		payload, ok := CheckCRC8(withCRC)
		if !ok {
			t.Fatalf("n=%d: valid CRC rejected", n)
		}
		if !bitsEqual(payload, bits) {
			t.Fatalf("n=%d: payload mangled", n)
		}
	}
}

func TestCRC8DetectsAllSingleBitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	bits := randBits(16, rng)
	withCRC := AppendCRC8(bits)
	for pos := range withCRC {
		bad := append([]int(nil), withCRC...)
		bad[pos] ^= 1
		if _, ok := CheckCRC8(bad); ok {
			t.Fatalf("single-bit error at %d not detected", pos)
		}
	}
}

func TestCRC8DetectsBurstErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	bits := randBits(24, rng)
	withCRC := AppendCRC8(bits)
	// All burst errors of length <= 8 are detectable by an 8-bit CRC.
	for start := 0; start+8 <= len(withCRC); start++ {
		bad := append([]int(nil), withCRC...)
		for i := start; i < start+8; i++ {
			bad[i] ^= 1
		}
		if _, ok := CheckCRC8(bad); ok {
			t.Fatalf("8-bit burst at %d not detected", start)
		}
	}
}

func TestCheckCRC8Short(t *testing.T) {
	if _, ok := CheckCRC8(make([]int, 5)); ok {
		t.Fatal("short input should fail")
	}
}

func TestBitsBytes(t *testing.T) {
	data := []byte{0xA5, 0x3C}
	bits := BitsFromBytes(data)
	want := []int{1, 0, 1, 0, 0, 1, 0, 1, 0, 0, 1, 1, 1, 1, 0, 0}
	if !bitsEqual(bits, want) {
		t.Fatalf("BitsFromBytes = %v", bits)
	}
	back := BytesFromBits(bits)
	if back[0] != 0xA5 || back[1] != 0x3C {
		t.Fatalf("BytesFromBits = %x", back)
	}
}
