package modem

import (
	"math"
	"math/rand"
	"testing"

	"aquago/internal/dsp"
)

func mustModem(t testing.TB, cfg Config) *Modem {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigDerivedParameters(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 960 {
		t.Errorf("N = %d, want 960", cfg.N())
	}
	if cfg.CPLen != 67 {
		t.Errorf("CPLen = %d, want 67", cfg.CPLen)
	}
	if cfg.SymbolLen() != 1027 {
		t.Errorf("SymbolLen = %d, want 1027", cfg.SymbolLen())
	}
	if cfg.BinLow() != 20 || cfg.BinHigh() != 80 {
		t.Errorf("bins [%d,%d), want [20,80)", cfg.BinLow(), cfg.BinHigh())
	}
	if cfg.NumBins() != 60 {
		t.Errorf("NumBins = %d, want 60 (the paper's N0)", cfg.NumBins())
	}
	if d := cfg.SymbolDuration(); math.Abs(d-0.020) > 1e-12 {
		t.Errorf("symbol duration %g, want 20 ms", d)
	}
	if f := cfg.BinFreq(0); f != 1000 {
		t.Errorf("BinFreq(0) = %g, want 1000", f)
	}
	if f := cfg.BinFreq(59); f != 3950 {
		t.Errorf("BinFreq(59) = %g, want 3950", f)
	}
}

func TestConfigSpacingVariants(t *testing.T) {
	// Fig 17's numerologies.
	for _, tc := range []struct {
		spacing, n, bins int
	}{
		{50, 960, 60},
		{25, 1920, 120},
		{10, 4800, 300},
	} {
		cfg := DefaultConfig().WithSpacing(tc.spacing)
		m := mustModem(t, cfg)
		got := m.Config()
		if got.N() != tc.n {
			t.Errorf("spacing %d: N = %d, want %d", tc.spacing, got.N(), tc.n)
		}
		if got.NumBins() != tc.bins {
			t.Errorf("spacing %d: bins = %d, want %d", tc.spacing, got.NumBins(), tc.bins)
		}
		// CP stays at the paper's fraction.
		frac := float64(got.CPLen) / float64(got.N())
		if math.Abs(frac-67.0/960) > 0.01 {
			t.Errorf("spacing %d: CP fraction %g", tc.spacing, frac)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SampleRate: 0, SpacingHz: 50, BandLowHz: 1000, BandHighHz: 4000},
		{SampleRate: 48000, SpacingHz: 7, BandLowHz: 1000, BandHighHz: 4000},   // not divisible
		{SampleRate: 48000, SpacingHz: 50, BandLowHz: 4000, BandHighHz: 1000},  // inverted
		{SampleRate: 48000, SpacingHz: 50, BandLowHz: 1000, BandHighHz: 25000}, // beyond Nyquist
		{SampleRate: 48000, SpacingHz: 50, BandLowHz: 1025, BandHighHz: 4000},  // misaligned
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBandBasics(t *testing.T) {
	cfg := DefaultConfig()
	full := FullBand(cfg)
	if full.Lo != 0 || full.Hi != 59 || full.Width() != 60 {
		t.Fatalf("FullBand = %+v", full)
	}
	if !full.Valid(60) {
		t.Fatal("full band should be valid")
	}
	if (Band{-1, 5}).Valid(60) || (Band{5, 60}).Valid(60) || (Band{7, 6}).Valid(60) {
		t.Fatal("invalid bands accepted")
	}
	if (Band{3, 3}).Width() != 1 {
		t.Fatal("single-bin band width")
	}
}

func TestSymbolRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	m := mustModem(t, DefaultConfig())
	bins := make([]complex128, 60)
	for i := range bins {
		// Random BPSK-ish unit phasors.
		ang := 2 * math.Pi * rng.Float64()
		bins[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	sym, err := m.ModulateSymbol(bins)
	if err != nil {
		t.Fatal(err)
	}
	if len(sym) != 1027 {
		t.Fatalf("symbol length %d", len(sym))
	}
	// Cyclic prefix must equal the body's tail.
	cp := m.cfg.CPLen
	n := m.cfg.N()
	for i := 0; i < cp; i++ {
		if math.Abs(sym[i]-sym[n+i]) > 1e-12 {
			t.Fatal("cyclic prefix mismatch")
		}
	}
	got, err := m.DemodSymbol(sym[cp:])
	if err != nil {
		t.Fatal(err)
	}
	for i := range bins {
		if e := dsp.CAbs2(got[i] - bins[i]); e > 1e-18 {
			if e > 1e-12 {
				t.Fatalf("bin %d: got %v want %v", i, got[i], bins[i])
			}
		}
	}
}

func TestModulateSymbolValidation(t *testing.T) {
	m := mustModem(t, DefaultConfig())
	if _, err := m.ModulateSymbol(make([]complex128, 59)); err == nil {
		t.Fatal("expected bin-count error")
	}
	if _, err := m.DemodSymbol(make([]float64, 100)); err == nil {
		t.Fatal("expected body-length error")
	}
}

func TestSymbolBandLimited(t *testing.T) {
	m := mustModem(t, DefaultConfig())
	bins := make([]complex128, 60)
	for i := range bins {
		bins[i] = 1
	}
	sym, _ := m.ModulateSymbol(bins)
	body := sym[m.cfg.CPLen:]
	sp := dsp.WelchPSD(body, 960, 48000, Rectangular())
	inBand := sp.BandPower(1000, 4000)
	outLow := sp.BandPower(0, 900)
	outHigh := sp.BandPower(4100, 20000)
	if inBand < 100*(outLow+outHigh+1e-30) {
		t.Fatalf("symbol not band limited: in %g, out %g", inBand, outLow+outHigh)
	}
}

func TestPreambleStructure(t *testing.T) {
	m := mustModem(t, DefaultConfig())
	pre := m.Preamble()
	if len(pre) != 8*960 {
		t.Fatalf("preamble length %d, want %d", len(pre), 8*960)
	}
	// PN signs: segment s equals segment 1 times pn[s]*pn[1] (segments
	// 1..5 share sign +1, segments 0 and 6 are negated).
	seg := func(s int) []float64 { return pre[s*960 : (s+1)*960] }
	if dsp.SegmentCorrelation(seg(1), seg(2)) < 0.999 {
		t.Error("segments 1,2 should be identical")
	}
	if dsp.SegmentCorrelation(seg(0), seg(1)) > -0.999 {
		t.Error("segment 0 should be negated")
	}
	if dsp.SegmentCorrelation(seg(6), seg(5)) > -0.999 {
		t.Error("segment 6 should be negated")
	}
	// Unit RMS per symbol.
	if r := dsp.RMS(seg(0)); math.Abs(r-1) > 1e-9 {
		t.Errorf("preamble symbol RMS %g", r)
	}
}

func TestDetectCleanPreamble(t *testing.T) {
	m := mustModem(t, DefaultConfig())
	d := NewDetector(m)
	// Preamble embedded in silence at a known offset.
	x := make([]float64, 30000)
	const at = 12345
	copy(x[at:], m.Preamble())
	det, ok := d.Detect(x)
	if !ok {
		t.Fatal("clean preamble not detected")
	}
	if det.Metric < 0.95 {
		t.Errorf("clean metric %g, want ~1", det.Metric)
	}
	if off := det.Offset - at; off < -8 || off > 8 {
		t.Errorf("sync offset %d samples (detected %d, true %d)", off, det.Offset, at)
	}
}

func TestDetectNoisyPreamble(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m := mustModem(t, DefaultConfig())
	d := NewDetector(m)
	x := make([]float64, 30000)
	for i := range x {
		x[i] = 0.5 * rng.NormFloat64() // SNR ~ 3 dB vs unit-RMS preamble
	}
	const at = 4321
	dsp.AddAt(x, m.Preamble(), at)
	det, ok := d.Detect(x)
	if !ok {
		t.Fatal("noisy preamble not detected")
	}
	if off := det.Offset - at; off < -16 || off > 16 {
		t.Errorf("sync offset %d samples under noise", off)
	}
}

func TestNoFalseDetectionInNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	m := mustModem(t, DefaultConfig())
	d := NewDetector(m)
	x := make([]float64, 40000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if det, ok := d.Detect(x); ok {
		t.Fatalf("false detection in pure noise: %+v", det)
	}
}

func TestNoFalseDetectionOnImpulse(t *testing.T) {
	// Spiky noise (bubbles) can fool plain cross-correlation; the
	// sliding correlation must reject it (paper: < 0.2).
	m := mustModem(t, DefaultConfig())
	d := NewDetector(m)
	x := make([]float64, 20000)
	x[9000] = 100 // huge impulse
	x[9001] = -80
	if _, ok := d.Detect(x); ok {
		t.Fatal("impulse caused false detection")
	}
}

func TestDetectAllMultiplePreambles(t *testing.T) {
	m := mustModem(t, DefaultConfig())
	d := NewDetector(m)
	x := make([]float64, 60000)
	offsets := []int{2000, 30000, 50000}
	for _, at := range offsets {
		dsp.AddAt(x, m.Preamble(), at)
	}
	dets := d.DetectAll(x)
	if len(dets) != len(offsets) {
		t.Fatalf("detected %d preambles, want %d", len(dets), len(offsets))
	}
	for i, det := range dets {
		if off := det.Offset - offsets[i]; off < -8 || off > 8 {
			t.Errorf("detection %d at %d, want %d", i, det.Offset, offsets[i])
		}
	}
}

func TestSlidingCorrelationBounds(t *testing.T) {
	m := mustModem(t, DefaultConfig())
	d := NewDetector(m)
	x := make([]float64, 1000) // shorter than a preamble window
	if v := d.SlidingCorrelation(x, 0); v != 0 {
		t.Fatal("out-of-bounds sliding correlation should be 0")
	}
	if v := d.SlidingCorrelation(x, -5); v != 0 {
		t.Fatal("negative offset should be 0")
	}
}

// Rectangular returns the dsp rectangular window (test convenience
// bridging the package boundary).
func Rectangular() dsp.Window { return dsp.Rectangular }
