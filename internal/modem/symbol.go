package modem

import (
	"fmt"

	"aquago/internal/dsp"
	"aquago/internal/seq"
)

// fftPlan wraps the dsp plan with the real-passband OFDM conventions:
// data rides on positive-frequency bins with Hermitian mirroring so
// the time-domain waveform is real.
type fftPlan struct {
	n    int
	plan *dsp.Plan
	buf  []complex128
}

func newFFTPlan(n int) *fftPlan {
	return &fftPlan{n: n, plan: dsp.NewPlan(n), buf: make([]complex128, n)}
}

// synthesize converts data-bin values (length numBins, mapped to FFT
// bins [binLow, binLow+numBins)) into a real time-domain symbol body
// of n samples. Bins outside the data band are zero. The output is
// scaled so that each active subcarrier contributes unit RMS.
func (p *fftPlan) synthesize(bins []complex128, binLow int, out []float64) {
	for i := range p.buf {
		p.buf[i] = 0
	}
	for i, v := range bins {
		k := binLow + i
		p.buf[k] = v
		p.buf[p.n-k] = dsp.Conj(v)
	}
	p.plan.Inverse(p.buf, p.buf)
	// The normalized inverse turns a unit bin into a 2/n-amplitude
	// cosine; rescale by n/2 so each unit-magnitude subcarrier is a
	// unit-amplitude cosine in time.
	scale := float64(p.n) / 2
	for i := 0; i < p.n; i++ {
		out[i] = real(p.buf[i]) * scale
	}
}

// analyze converts a real symbol body (n samples) into data-bin values
// with the inverse scaling of synthesize.
func (p *fftPlan) analyze(body []float64, binLow, numBins int, out []complex128) {
	for i := 0; i < p.n; i++ {
		p.buf[i] = complex(body[i], 0)
	}
	p.plan.Forward(p.buf, p.buf)
	// A unit-amplitude cosine at bin k transforms to (n/2) at that
	// bin, so 2/n makes analyze(synthesize(v)) == v.
	scale := complex(2/float64(p.n), 0)
	for i := 0; i < numBins; i++ {
		out[i] = p.buf[binLow+i] * scale
	}
}

// ModulateSymbol builds one OFDM symbol (cyclic prefix + body) from
// data-bin values. bins must have length NumBins; entries set to 0
// leave the corresponding subcarrier silent.
func (m *Modem) ModulateSymbol(bins []complex128) ([]float64, error) {
	out := make([]float64, m.cfg.SymbolLen())
	if err := m.modulateSymbolInto(bins, out); err != nil {
		return nil, err
	}
	return out, nil
}

// modulateSymbolInto is ModulateSymbol writing into a caller-provided
// buffer of exactly SymbolLen samples, so the per-symbol hot path can
// reuse packet-sized buffers instead of allocating every symbol.
func (m *Modem) modulateSymbolInto(bins []complex128, out []float64) error {
	if len(bins) != m.cfg.NumBins() {
		return fmt.Errorf("modem: %d bin values, want %d", len(bins), m.cfg.NumBins())
	}
	n := m.cfg.N()
	cp := m.cfg.CPLen
	if len(out) != cp+n {
		return fmt.Errorf("modem: symbol buffer %d samples, want %d", len(out), cp+n)
	}
	m.plan.synthesize(bins, m.cfg.BinLow(), out[cp:])
	copy(out[:cp], out[cp+n-cp:]) // cyclic prefix = tail of the body
	return nil
}

// DemodSymbol recovers data-bin values from a received symbol body
// (exactly N samples, cyclic prefix already stripped).
func (m *Modem) DemodSymbol(body []float64) ([]complex128, error) {
	out := make([]complex128, m.cfg.NumBins())
	if err := m.demodSymbolInto(body, out); err != nil {
		return nil, err
	}
	return out, nil
}

// demodSymbolInto is DemodSymbol writing into a caller-provided buffer
// of exactly NumBins values (the allocation-free per-symbol path).
func (m *Modem) demodSymbolInto(body []float64, out []complex128) error {
	if len(body) != m.cfg.N() {
		return fmt.Errorf("modem: symbol body %d samples, want %d", len(body), m.cfg.N())
	}
	if len(out) != m.cfg.NumBins() {
		return fmt.Errorf("modem: bin buffer %d values, want %d", len(out), m.cfg.NumBins())
	}
	m.plan.analyze(body, m.cfg.BinLow(), m.cfg.NumBins(), out)
	return nil
}

// buildPreamble constructs the 8-symbol preamble: one CAZAC-filled
// OFDM body repeated with the PN sign pattern. Following the paper the
// preamble symbols carry no cyclic prefix (detection uses sliding
// segment correlation, not FFT windows).
func (m *Modem) buildPreamble() {
	n := m.cfg.N()
	body := make([]float64, n)
	m.plan.synthesize(m.zcBins, m.cfg.BinLow(), body)
	// Normalize the symbol to unit RMS so transmit power is defined
	// by the caller's amplitude scaling.
	rms := dsp.RMS(body)
	m.preScale = 1
	if rms > 0 {
		dsp.Scale(body, 1/rms)
		m.preScale = 1 / rms
	}
	m.preSym = body
	m.preamble = make([]float64, 0, PreambleSymbols*n)
	for s := 0; s < PreambleSymbols; s++ {
		sign := float64(seq.PreamblePN[s%len(seq.PreamblePN)])
		for _, v := range body {
			m.preamble = append(m.preamble, sign*v)
		}
	}
}

// TrainingSymbol builds the known training OFDM symbol restricted to
// the given band (bins outside the band are zero), with cyclic prefix.
// The same waveform is used by the receiver to estimate the MMSE
// equalizer and as the differential-coding phase reference.
func (m *Modem) TrainingSymbol(b Band) ([]float64, error) {
	out := make([]float64, m.cfg.SymbolLen())
	if err := m.trainingSymbolInto(b, out); err != nil {
		return nil, err
	}
	return out, nil
}

// trainingSymbolInto writes the training symbol for band b into a
// caller-provided SymbolLen buffer, using the modem's scratch bins.
func (m *Modem) trainingSymbolInto(b Band, out []float64) error {
	if !b.Valid(m.cfg.NumBins()) {
		return fmt.Errorf("modem: invalid band %+v for %d bins", b, m.cfg.NumBins())
	}
	bins := m.scratchBins()
	for i := range bins {
		bins[i] = 0
	}
	for i := b.Lo; i <= b.Hi; i++ {
		bins[i] = m.trBins[i]
	}
	return m.modulateSymbolInto(bins, out)
}

// TrainingBins returns the known training constellation restricted to
// band b (zero outside). The slice is freshly allocated.
func (m *Modem) TrainingBins(b Band) []complex128 {
	bins := make([]complex128, m.cfg.NumBins())
	for i := b.Lo; i <= b.Hi && i < len(m.trBins); i++ {
		if i >= 0 {
			bins[i] = m.trBins[i]
		}
	}
	return bins
}

// PreambleBins returns the CAZAC constellation used by the preamble
// across all data bins. The slice is freshly allocated.
func (m *Modem) PreambleBins() []complex128 {
	return append([]complex128(nil), m.zcBins...)
}
