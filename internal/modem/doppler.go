package modem

import (
	"math"

	"aquago/internal/dsp"
)

// EstimateDopplerFactor measures the received time-scale factor from a
// synchronized preamble: the eight preamble symbols repeat with period
// N at the transmitter, so relative motion stretches or compresses the
// observed repetition period. The estimator cross-correlates the first
// preamble segment against the last and locates the peak near the
// expected lag of 7N with parabolic sub-sample interpolation.
//
// The returned factor is observedPeriod/N: > 1 means the devices are
// separating (signal stretched), < 1 closing. ok is false when the
// correlation peak is too weak to trust. At the paper's bound of
// ~2 m/s relative speed the factor deviates by only ~1.3e-3, so the
// estimate resolves speeds down to a few cm/s.
//
// rx must contain the synchronized preamble (PreambleSymbols * N
// samples, possibly time-scaled, plus a little margin).
func (m *Modem) EstimateDopplerFactor(rx []float64) (factor float64, ok bool) {
	n := m.cfg.N()
	span := (PreambleSymbols - 1) * n // nominal first-to-last lag
	// Allow for ±0.5% scale (far beyond diver speeds).
	margin := span / 200
	if margin < 8 {
		margin = 8
	}
	if len(rx) < span+n+margin {
		return 1, false
	}
	first := rx[:n]
	// PN signs: segment 0 is -1, segment 7 is +1 -> correlation sign
	// flips; correct by the known product.
	signProduct := -1.0 // pn[0] * pn[7] = (-1)(+1)
	bestLag, bestV := -1, 0.0
	lo := span - margin
	hi := span + margin
	var corr []float64
	for lag := lo; lag <= hi; lag++ {
		if lag+n > len(rx) {
			break
		}
		v := signProduct * dsp.Dot(first, rx[lag:lag+n])
		corr = append(corr, v)
		if v > bestV {
			bestV, bestLag = v, lag
		}
	}
	if bestLag < 0 {
		return 1, false
	}
	// Quality gate: normalized correlation at the peak.
	e1 := dsp.Energy(first)
	e2 := dsp.Energy(rx[bestLag : bestLag+n])
	if e1 <= 0 || e2 <= 0 {
		return 1, false
	}
	norm := bestV / (math.Sqrt(e1) * math.Sqrt(e2))
	if norm < 0.3 {
		return 1, false
	}
	// Parabolic interpolation around the peak for sub-sample lag.
	refined := float64(bestLag)
	i := bestLag - lo
	if i > 0 && i < len(corr)-1 {
		y0, y1, y2 := corr[i-1], corr[i], corr[i+1]
		den := y0 - 2*y1 + y2
		if den != 0 {
			refined += 0.5 * (y0 - y2) / den
		}
	}
	return refined / float64(span), true
}

// CompensateDoppler resamples rx to undo a measured time-scale factor
// (from EstimateDopplerFactor): the output plays at the transmitter's
// clock so symbol boundaries and subcarriers land on grid again.
func CompensateDoppler(rx []float64, factor float64) []float64 {
	if factor == 1 || factor <= 0 {
		return rx
	}
	return dsp.ResampleLinear(rx, factor)
}
