package modem

import (
	"math"
	"math/rand"
	"testing"

	"aquago/internal/dsp"
)

func TestDopplerEstimateCleanPreamble(t *testing.T) {
	m := mustModem(t, DefaultConfig())
	for _, speed := range []float64{0, 0.5, 1.0, -1.0, 2.0} {
		trueFactor := 1 + speed/1500.0 // separating at `speed` m/s
		rx := dsp.ResampleLinear(m.Preamble(), trueFactor)
		// Margin so the last segment is fully present.
		rx = append(rx, make([]float64, 64)...)
		got, ok := m.EstimateDopplerFactor(rx)
		if !ok {
			t.Fatalf("speed %g: estimate rejected", speed)
		}
		// Factor error tolerance equals ~5 cm/s of speed.
		if e := math.Abs(got - trueFactor); e > 4e-5 {
			t.Fatalf("speed %g: factor %.6f, want %.6f (err %.2g)", speed, got, trueFactor, e)
		}
	}
}

func TestDopplerEstimateUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	m := mustModem(t, DefaultConfig())
	trueFactor := 1 + 0.8/1500.0
	rx := dsp.ResampleLinear(m.Preamble(), trueFactor)
	rx = append(rx, make([]float64, 64)...)
	for i := range rx {
		rx[i] += 0.2 * rng.NormFloat64() // ~14 dB SNR
	}
	got, ok := m.EstimateDopplerFactor(rx)
	if !ok {
		t.Fatal("noisy estimate rejected")
	}
	if e := math.Abs(got - trueFactor); e > 2e-4 {
		t.Fatalf("noisy factor %.6f, want %.6f", got, trueFactor)
	}
}

func TestDopplerRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	m := mustModem(t, DefaultConfig())
	rx := make([]float64, m.PreambleLen()+200)
	for i := range rx {
		rx[i] = rng.NormFloat64()
	}
	if _, ok := m.EstimateDopplerFactor(rx); ok {
		t.Fatal("pure noise produced a Doppler estimate")
	}
	if _, ok := m.EstimateDopplerFactor(make([]float64, 100)); ok {
		t.Fatal("short input produced a Doppler estimate")
	}
}

func TestCompensateDopplerRestoresSubcarriers(t *testing.T) {
	m := mustModem(t, DefaultConfig())
	band := Band{Lo: 10, Hi: 40}
	rng := rand.New(rand.NewSource(98))
	bits := randomBits(band.Width()*4, rng)
	tx, err := m.ModulateData(bits, band, DataOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 1.5 m/s separation: strong enough to hurt long data sections.
	factor := 1 + 1.5/1500.0
	rx := dsp.ResampleLinear(tx, factor)

	// Without compensation.
	softRaw, err := m.DemodulateData(rx[:len(tx)], band, len(bits), DataOptions{})
	if err != nil {
		t.Fatal(err)
	}
	errRaw := countBitErrors(HardBits(softRaw), bits)

	// With compensation at the estimated factor (simulate estimation
	// from the co-transmitted preamble).
	pre := dsp.ResampleLinear(m.Preamble(), factor)
	pre = append(pre, make([]float64, 64)...)
	est, ok := m.EstimateDopplerFactor(pre)
	if !ok {
		t.Fatal("factor estimation failed")
	}
	fixed := CompensateDoppler(rx, est)
	if len(fixed) < m.DataLen(len(bits), band) {
		t.Fatal("compensated signal too short")
	}
	softFix, err := m.DemodulateData(fixed[:m.DataLen(len(bits), band)], band, len(bits), DataOptions{})
	if err != nil {
		t.Fatal(err)
	}
	errFix := countBitErrors(HardBits(softFix), bits)
	t.Logf("Doppler 1.5 m/s over %d symbols: %d errors raw, %d compensated", 4, errRaw, errFix)
	if errFix > errRaw {
		t.Fatalf("compensation increased errors: %d -> %d", errRaw, errFix)
	}
}

func TestCompensateDopplerIdentity(t *testing.T) {
	x := []float64{1, 2, 3}
	if got := CompensateDoppler(x, 1); &got[0] != &x[0] {
		t.Fatal("identity factor should return the input")
	}
	if got := CompensateDoppler(x, 0); &got[0] != &x[0] {
		t.Fatal("invalid factor should return the input")
	}
}
