package modem

import (
	"fmt"
	"math"

	"aquago/internal/dsp"
	"aquago/internal/seq"
)

// ChannelEstimate holds the per-subcarrier channel and SNR estimated
// from a received preamble. Indexing is relative to the modem's data
// bins (0 .. NumBins-1).
type ChannelEstimate struct {
	// H is the complex channel response per data subcarrier.
	H []complex128
	// SNRdB is the estimated signal-to-noise ratio per subcarrier in
	// dB, computed as the paper's 20*log10(||H x|| / ||y - H x||).
	SNRdB []float64
	// NoisePower is the mean residual power across bins (diagnostic).
	NoisePower float64
}

// EstimateChannel performs frequency-domain MMSE channel estimation
// over the 8 preamble symbols. rx must be the synchronized preamble
// samples (exactly PreambleSymbols*N, starting at the detected
// offset).
//
// For each subcarrier k with known transmitted values x_j(k)
// (CAZAC value times the PN sign of symbol j) and received values
// y_j(k), the estimator is
//
//	H(k) = sum_j conj(x_j) y_j / (sum_j |x_j|^2 + eps)
//
// and the SNR follows the paper's definition
// 20*log10(||H(k) x(k)|| / ||y(k) - H(k) x(k)||).
func (m *Modem) EstimateChannel(rx []float64) (*ChannelEstimate, error) {
	n := m.cfg.N()
	if len(rx) != PreambleSymbols*n {
		return nil, fmt.Errorf("modem: preamble estimate needs %d samples, got %d", PreambleSymbols*n, len(rx))
	}
	nb := m.cfg.NumBins()
	est := &ChannelEstimate{
		H:     make([]complex128, nb),
		SNRdB: make([]float64, nb),
	}
	// Demodulate each preamble segment. The preamble was normalized
	// to unit RMS at build time; recover the per-bin scale factor so
	// H reflects the physical channel gain.
	ys := make([][]complex128, PreambleSymbols)
	for j := 0; j < PreambleSymbols; j++ {
		body := rx[j*n : (j+1)*n]
		bins, err := m.DemodSymbol(body)
		if err != nil {
			return nil, err
		}
		ys[j] = bins
	}
	// Known transmitted bin values, including the preamble's RMS
	// normalization: recompute the scale applied in buildPreamble.
	txScale := m.preambleBinScale()
	var residTotal float64
	for k := 0; k < nb; k++ {
		var num complex128
		var den float64
		for j := 0; j < PreambleSymbols; j++ {
			xj := m.zcBins[k] * complex(float64(seq.PreamblePN[j])*txScale, 0)
			num += dsp.Conj(xj) * ys[j][k]
			den += dsp.CAbs2(xj)
		}
		const eps = 1e-12
		h := num / complex(den+eps, 0)
		est.H[k] = h
		// Residual-based SNR.
		var sig, resid float64
		for j := 0; j < PreambleSymbols; j++ {
			xj := m.zcBins[k] * complex(float64(seq.PreamblePN[j])*txScale, 0)
			hx := h * xj
			sig += dsp.CAbs2(hx)
			d := ys[j][k] - hx
			resid += dsp.CAbs2(d)
		}
		residTotal += resid
		if resid <= 0 {
			est.SNRdB[k] = 60 // effectively noiseless
			continue
		}
		snr := 20 * math.Log10(math.Sqrt(sig)/math.Sqrt(resid))
		// Clamp to a sane range for downstream algorithms.
		if snr > 60 {
			snr = 60
		}
		if snr < -30 {
			snr = -30
		}
		est.SNRdB[k] = snr
	}
	est.NoisePower = residTotal / float64(nb*PreambleSymbols)
	return est, nil
}

// preambleBinScale returns the amplitude applied to each data bin by
// the preamble's unit-RMS normalization (cached at build time).
func (m *Modem) preambleBinScale() float64 { return m.preScale }

// MinSNRInBand returns the minimum estimated SNR over band b — the
// metric the paper's channel-stability experiment (Fig 16) tracks.
func (e *ChannelEstimate) MinSNRInBand(b Band) float64 {
	minSNR := math.Inf(1)
	for k := b.Lo; k <= b.Hi && k < len(e.SNRdB); k++ {
		if k < 0 {
			continue
		}
		if e.SNRdB[k] < minSNR {
			minSNR = e.SNRdB[k]
		}
	}
	return minSNR
}
