package modem

import (
	"fmt"
	"math"

	"aquago/internal/dsp"
)

// DataOptions tunes the data-path encode/decode chain. The zero value
// is the paper's configuration (differential coding and equalization
// both enabled).
type DataOptions struct {
	// NoDifferential disables differential coding across symbols
	// (coherent BPSK against the training-symbol channel estimate).
	// Fig 14c ablates exactly this switch.
	NoDifferential bool
	// NoEqualizer skips time-domain MMSE equalization.
	NoEqualizer bool
	// EqualizerTaps overrides the equalizer length (0 = default).
	EqualizerTaps int
}

// DataSymbols returns how many OFDM data symbols carry nBits over
// band b (excluding the training symbol).
func DataSymbols(nBits int, b Band) int {
	l := b.Width()
	return (nBits + l - 1) / l
}

// DataLen returns the sample count of the data section ModulateData
// produces for nBits over band b: one training symbol plus
// DataSymbols data symbols, each with cyclic prefix.
func (m *Modem) DataLen(nBits int, b Band) int {
	return (1 + DataSymbols(nBits, b)) * m.cfg.SymbolLen()
}

// ModulateData builds the data section of a packet: the known
// band-limited training symbol followed by the differentially-coded
// BPSK data symbols. bits must already be FEC-encoded and interleaved
// (grid order: bit i rides on symbol i/L, subcarrier b.Lo + i%L).
//
// The waveform is normalized to unit RMS regardless of band width, so
// narrowing the band concentrates the fixed transmit power into fewer
// subcarriers — the 10*log10(N0/L) SNR gain the adaptation algorithm
// (Algorithm 1) accounts for.
func (m *Modem) ModulateData(bits []int, b Band, opts DataOptions) ([]float64, error) {
	if !b.Valid(m.cfg.NumBins()) {
		return nil, fmt.Errorf("modem: invalid band %+v", b)
	}
	l := b.Width()
	nSym := DataSymbols(len(bits), b)
	if nSym == 0 {
		return nil, fmt.Errorf("modem: no data bits")
	}
	// Pad to fill the final symbol.
	padded := m.paddedScratch(nSym * l)
	copy(padded, bits)

	symLen := m.cfg.SymbolLen()
	out := make([]float64, (1+nSym)*symLen)
	if err := m.trainingSymbolInto(b, out[:symLen]); err != nil {
		return nil, err
	}

	bins, prev := m.dataScratch()
	for i := range prev {
		prev[i] = 0
	}
	for i := b.Lo; i <= b.Hi; i++ {
		prev[i] = m.trBins[i] // differential reference
	}
	for s := 0; s < nSym; s++ {
		for i := range bins {
			bins[i] = 0
		}
		for j := 0; j < l; j++ {
			k := b.Lo + j
			sign := complex(1-2*float64(padded[s*l+j]), 0)
			if opts.NoDifferential {
				bins[k] = m.trBins[k] * sign
			} else {
				bins[k] = prev[k] * sign
			}
		}
		if err := m.modulateSymbolInto(bins, out[(1+s)*symLen:(2+s)*symLen]); err != nil {
			return nil, err
		}
		if !opts.NoDifferential {
			copy(prev, bins)
		}
	}
	// Unit-RMS normalization: a symbol with L unit-magnitude bins has
	// body power exactly L/2 (orthogonal unit cosines).
	dsp.Scale(out, math.Sqrt(2/float64(l)))
	return out, nil
}

// DemodulateData decodes soft bit values from a received data section.
// rx must be aligned to the start of the training symbol and contain
// at least DataLen(nBits, b) samples. Returned soft values follow the
// fec convention: positive = bit 0, negative = bit 1, magnitude =
// confidence; grid order matches ModulateData.
func (m *Modem) DemodulateData(rx []float64, b Band, nBits int, opts DataOptions) ([]float64, error) {
	if !b.Valid(m.cfg.NumBins()) {
		return nil, fmt.Errorf("modem: invalid band %+v", b)
	}
	l := b.Width()
	nSym := DataSymbols(nBits, b)
	need := (1 + nSym) * m.cfg.SymbolLen()
	if len(rx) < need {
		return nil, fmt.Errorf("modem: data section needs %d samples, got %d", need, len(rx))
	}
	rx = rx[:need]
	symLen := m.cfg.SymbolLen()
	cp := m.cfg.CPLen
	n := m.cfg.N()

	// Equalize using the training symbol.
	work := rx
	if !opts.NoEqualizer {
		ref := m.refScratch()
		if err := m.trainingSymbolInto(b, ref); err != nil {
			return nil, err
		}
		dsp.Scale(ref, math.Sqrt(2/float64(l)))
		taps := opts.EqualizerTaps
		if taps <= 0 {
			taps = m.EqualizerTaps()
		}
		if taps > symLen {
			taps = symLen
		}
		// Autocorrelation benefits from the whole received section;
		// cross-correlation uses only the known training prefix.
		eq, err := m.TrainEqualizer(rx, ref, taps, -1)
		if err == nil {
			work = eq.Apply(rx)
		}
		// On singular training fall back to unequalized samples.
	}

	// Demodulate all symbols (training first).
	cur, prev := m.dataScratch()
	if err := m.demodSymbolInto(work[cp:cp+n], prev); err != nil {
		return nil, err
	}
	// Channel estimate for the coherent (non-differential) path.
	var hRef []complex128
	if opts.NoDifferential {
		hRef = make([]complex128, m.cfg.NumBins())
		tb := m.TrainingBins(b)
		for k := b.Lo; k <= b.Hi; k++ {
			if dsp.CAbs2(tb[k]) > 0 {
				hRef[k] = prev[k] / tb[k]
			}
		}
	}

	// Soft values keep their amplitude: a bin in a deep fade produces
	// a small product |cur||prev| and therefore a weak soft value the
	// Viterbi decoder can discount, while a clean bin votes strongly.
	// Only a single per-packet scale (the mean magnitude) normalizes
	// the range.
	soft := make([]float64, nSym*l)
	var magSum float64
	for s := 0; s < nSym; s++ {
		start := (1+s)*symLen + cp
		if err := m.demodSymbolInto(work[start:start+n], cur); err != nil {
			return nil, err
		}
		for j := 0; j < l; j++ {
			k := b.Lo + j
			var v, mag float64
			if opts.NoDifferential {
				expect := hRef[k] * m.trBins[k]
				v = real(cur[k] * dsp.Conj(expect))
				mag = math.Sqrt(dsp.CAbs2(cur[k]) * dsp.CAbs2(expect))
			} else {
				v = real(cur[k] * dsp.Conj(prev[k]))
				mag = math.Sqrt(dsp.CAbs2(cur[k]) * dsp.CAbs2(prev[k]))
			}
			soft[s*l+j] = v
			magSum += mag
		}
		if !opts.NoDifferential {
			copy(prev, cur)
		}
	}
	if magSum > 0 {
		scale := float64(len(soft)) / magSum
		for i := range soft {
			soft[i] *= scale
		}
	}
	return soft[:nBits], nil
}

// HardBits converts soft values to hard bit decisions.
func HardBits(soft []float64) []int {
	out := make([]int, len(soft))
	for i, v := range soft {
		if v < 0 {
			out[i] = 1
		}
	}
	return out
}
