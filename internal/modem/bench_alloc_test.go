package modem

import (
	"math/rand"
	"testing"
)

// BenchmarkModemRoundtrip measures the per-packet modulate +
// demodulate cost on the full band — the hot path every worker of the
// parallel experiment engine executes per trial. ReportAllocs makes
// the scratch-buffer reuse visible: the remaining allocations are the
// returned waveform and soft values plus the equalizer solve, not
// per-symbol buffers.
func BenchmarkModemRoundtrip(b *testing.B) {
	m, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	band := FullBand(m.Config())
	rng := rand.New(rand.NewSource(23))
	nBits := band.Width() * 10
	bits := make([]int, nBits)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := m.ModulateData(bits, band, DataOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.DemodulateData(tx, band, nBits, DataOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModulateSymbol isolates the per-symbol OFDM synthesis.
func BenchmarkModulateSymbol(b *testing.B) {
	m, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	bins := make([]complex128, m.Config().NumBins())
	for i := range bins {
		bins[i] = complex(1-2*float64(i%2), 0)
	}
	out := make([]float64, m.Config().SymbolLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.modulateSymbolInto(bins, out); err != nil {
			b.Fatal(err)
		}
	}
}
