package modem

import (
	"math"
	"math/rand"
	"testing"

	"aquago/internal/dsp"
)

// applyChannel convolves tx with taps and adds white noise at the
// given amplitude.
func applyChannel(tx, taps []float64, noiseAmp float64, rng *rand.Rand) []float64 {
	rx := dsp.Convolve(tx, taps)
	for i := range rx {
		rx[i] += noiseAmp * rng.NormFloat64()
	}
	return rx
}

func TestEstimateChannelFlat(t *testing.T) {
	m := mustModem(t, DefaultConfig())
	rx := append([]float64(nil), m.Preamble()...)
	dsp.Scale(rx, 0.5) // flat attenuation
	est, err := m.EstimateChannel(rx)
	if err != nil {
		t.Fatal(err)
	}
	for k, h := range est.H {
		if math.Abs(math.Sqrt(dsp.CAbs2(h))-0.5) > 0.01 {
			t.Fatalf("bin %d: |H| = %g, want 0.5", k, math.Sqrt(dsp.CAbs2(h)))
		}
	}
	// Noiseless: SNR should rail at the clamp.
	for k, s := range est.SNRdB {
		if s < 50 {
			t.Fatalf("bin %d: noiseless SNR %g dB", k, s)
		}
	}
}

func TestEstimateChannelSNRTracksNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	m := mustModem(t, DefaultConfig())
	// Per-bin signal amplitude: preamble symbol has 60 unit bins
	// scaled to unit RMS, so bin amplitude = preScale. Noise power per
	// bin after demod: for white noise of variance s^2, each analyzed
	// bin sees variance 2*s^2/N.
	for _, noiseAmp := range []float64{0.05, 0.2} {
		rx := append([]float64(nil), m.Preamble()...)
		for i := range rx {
			rx[i] += noiseAmp * rng.NormFloat64()
		}
		est, err := m.EstimateChannel(rx)
		if err != nil {
			t.Fatal(err)
		}
		meanSNR := dsp.Mean(est.SNRdB)
		// Expected per-bin SNR: signal amp a = preScale, signal power
		// a^2/2 per bin... empirically validate monotonicity instead
		// of the absolute constant: higher noise -> lower SNR.
		if noiseAmp == 0.05 {
			if meanSNR < 10 {
				t.Errorf("low noise: mean SNR %g dB too low", meanSNR)
			}
		} else if meanSNR > 25 {
			t.Errorf("high noise: mean SNR %g dB too high", meanSNR)
		}
	}
}

func TestEstimateChannelFrequencySelective(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	m := mustModem(t, DefaultConfig())
	// Two-tap channel: deep notches at regular frequency intervals.
	taps := make([]float64, 200)
	taps[0] = 1
	taps[160] = 0.9 // notch spacing = fs/160 = 300 Hz
	rx := applyChannel(m.Preamble(), taps, 0.001, rng)
	est, err := m.EstimateChannel(rx[:m.PreambleLen()])
	if err != nil {
		t.Fatal(err)
	}
	// |H| should vary strongly across bins (multipath selectivity).
	var lo, hi = math.Inf(1), math.Inf(-1)
	for _, h := range est.H {
		a := math.Sqrt(dsp.CAbs2(h))
		lo = math.Min(lo, a)
		hi = math.Max(hi, a)
	}
	if hi/math.Max(lo, 1e-9) < 3 {
		t.Fatalf("expected frequency selectivity, got |H| range [%g, %g]", lo, hi)
	}
}

func TestEstimateChannelValidation(t *testing.T) {
	m := mustModem(t, DefaultConfig())
	if _, err := m.EstimateChannel(make([]float64, 100)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestMinSNRInBand(t *testing.T) {
	e := &ChannelEstimate{SNRdB: []float64{10, 5, 20, 3, 15}}
	if v := e.MinSNRInBand(Band{0, 4}); v != 3 {
		t.Fatalf("min SNR %g, want 3", v)
	}
	if v := e.MinSNRInBand(Band{0, 2}); v != 5 {
		t.Fatalf("min SNR %g, want 5", v)
	}
}

func TestEqualizerShortensChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	m := mustModem(t, DefaultConfig())
	band := FullBand(m.Config())
	ref, err := m.TrainingSymbol(band)
	if err != nil {
		t.Fatal(err)
	}
	// A channel with a long echo well beyond the cyclic prefix. Give
	// the estimator extra context after the training symbol, as the
	// decoder does (it passes the whole data section).
	taps := make([]float64, 300)
	taps[0] = 1
	taps[150] = 0.5
	taps[299] = 0.25
	extended := append(append([]float64(nil), ref...), ref...)
	extended = append(extended, ref...)
	rxAll := applyChannel(extended, taps, 0.001, rng)
	rx := rxAll[:len(ref)]
	eq, err := m.TrainEqualizer(rxAll[:3*len(ref)], ref, 480, -1)
	if err != nil {
		t.Fatal(err)
	}
	// The equalized training symbol should be much closer to the
	// reference than the raw received one.
	eqd := eq.Apply(rx)
	rawErr, eqErr := 0.0, 0.0
	for i := 200; i < len(ref)-200; i++ {
		rawErr += (rx[i] - ref[i]) * (rx[i] - ref[i])
		eqErr += (eqd[i] - ref[i]) * (eqd[i] - ref[i])
	}
	if eqErr > 0.3*rawErr {
		t.Fatalf("equalizer ineffective: raw err %g, equalized err %g", rawErr, eqErr)
	}
}

func TestEqualizerValidation(t *testing.T) {
	m := mustModem(t, DefaultConfig())
	if _, err := m.TrainEqualizer(make([]float64, 10), make([]float64, 20), 0, -1); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := m.TrainEqualizer(make([]float64, 10), make([]float64, 10), 480, -1); err == nil {
		t.Fatal("expected too-short error")
	}
	if _, err := m.TrainEqualizer(make([]float64, 600), make([]float64, 600), 480, -1); err == nil {
		t.Fatal("expected zero-energy error")
	}
}

func TestIdentityEqualizer(t *testing.T) {
	eq := Identity()
	x := []float64{1, 2, 3}
	y := eq.Apply(x)
	if maxDiff(x, y) > 1e-15 {
		t.Fatal("identity equalizer changed the signal")
	}
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randomBits(n int, rng *rand.Rand) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = int(rng.Int31n(2))
	}
	return out
}

func countBitErrors(a, b []int) int {
	errs := 0
	for i := range a {
		if a[i] != b[i] {
			errs++
		}
	}
	return errs
}

func TestDataRoundTripClean(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	m := mustModem(t, DefaultConfig())
	for _, band := range []Band{FullBand(m.Config()), {10, 28}, {5, 5}, {0, 2}} {
		for _, nBits := range []int{24, 60, 7} {
			bits := randomBits(nBits, rng)
			tx, err := m.ModulateData(bits, band, DataOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(tx) != m.DataLen(nBits, band) {
				t.Fatalf("band %+v: waveform %d samples, want %d", band, len(tx), m.DataLen(nBits, band))
			}
			soft, err := m.DemodulateData(tx, band, nBits, DataOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if errs := countBitErrors(HardBits(soft), bits); errs != 0 {
				t.Fatalf("band %+v nBits=%d: %d bit errors over clean channel", band, nBits, errs)
			}
		}
	}
}

func TestDataRoundTripMultipathNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	m := mustModem(t, DefaultConfig())
	band := Band{5, 40}
	bits := randomBits(72, rng)
	tx, err := m.ModulateData(bits, band, DataOptions{})
	if err != nil {
		t.Fatal(err)
	}
	taps := make([]float64, 120)
	taps[0] = 1
	taps[40] = 0.4
	taps[119] = 0.2
	rx := applyChannel(tx, taps, 0.005, rng)
	soft, err := m.DemodulateData(rx, band, len(bits), DataOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if errs := countBitErrors(HardBits(soft), bits); errs != 0 {
		t.Fatalf("%d bit errors over mild multipath", errs)
	}
}

func TestEqualizerAblationLongEcho(t *testing.T) {
	// With an echo much longer than the cyclic prefix, decoding with
	// the equalizer must outperform decoding without it.
	rng := rand.New(rand.NewSource(85))
	m := mustModem(t, DefaultConfig())
	band := Band{0, 39}
	taps := make([]float64, 400)
	taps[0] = 1
	taps[250] = 0.8 // echo at 250 samples >> CP of 67
	var errsEq, errsRaw int
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		bits := randomBits(80, rng)
		tx, err := m.ModulateData(bits, band, DataOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rx := applyChannel(tx, taps, 0.002, rng)
		softEq, err := m.DemodulateData(rx, band, len(bits), DataOptions{})
		if err != nil {
			t.Fatal(err)
		}
		softRaw, err := m.DemodulateData(rx, band, len(bits), DataOptions{NoEqualizer: true})
		if err != nil {
			t.Fatal(err)
		}
		errsEq += countBitErrors(HardBits(softEq), bits)
		errsRaw += countBitErrors(HardBits(softRaw), bits)
	}
	if errsEq > errsRaw {
		t.Fatalf("equalizer hurt: %d errors with, %d without", errsEq, errsRaw)
	}
	t.Logf("long echo: %d errors with equalizer, %d without", errsEq, errsRaw)
}

func TestDifferentialSurvivesPhaseDrift(t *testing.T) {
	// Slow channel rotation across the packet: differential coding
	// must survive it, coherent decoding must degrade (Fig 14c).
	rng := rand.New(rand.NewSource(86))
	m := mustModem(t, DefaultConfig())
	band := Band{0, 39}
	bits := randomBits(200, rng)
	tx, err := m.ModulateData(bits, band, DataOptions{})
	if err != nil {
		t.Fatal(err)
	}
	txNoDiff, err := m.ModulateData(bits, band, DataOptions{NoDifferential: true})
	if err != nil {
		t.Fatal(err)
	}
	// Time-varying channel: phase rotation that completes ~2 radians
	// over the packet, plus light noise. Implemented as slowly mixing
	// between an identity tap and a delayed tap.
	drift := func(x []float64) []float64 {
		out := make([]float64, len(x))
		for i := range x {
			theta := 2.0 * float64(i) / float64(len(x))
			// Approximate a phase rotation via a two-tap time-varying mix.
			out[i] = math.Cos(theta) * x[i]
			if i >= 12 {
				out[i] += math.Sin(theta) * x[i-12] // quadrature-ish delayed copy
			}
			out[i] += 0.005 * rng.NormFloat64()
		}
		return out
	}
	softDiff, err := m.DemodulateData(drift(tx), band, len(bits), DataOptions{})
	if err != nil {
		t.Fatal(err)
	}
	softCoh, err := m.DemodulateData(drift(txNoDiff), band, len(bits), DataOptions{NoDifferential: true})
	if err != nil {
		t.Fatal(err)
	}
	errDiff := countBitErrors(HardBits(softDiff), bits)
	errCoh := countBitErrors(HardBits(softCoh), bits)
	t.Logf("phase drift: differential %d errors, coherent %d errors", errDiff, errCoh)
	if errDiff > errCoh {
		t.Fatalf("differential (%d) worse than coherent (%d) under drift", errDiff, errCoh)
	}
	if errDiff > len(bits)/10 {
		t.Fatalf("differential BER too high under drift: %d/%d", errDiff, len(bits))
	}
}

func TestDataValidation(t *testing.T) {
	m := mustModem(t, DefaultConfig())
	if _, err := m.ModulateData([]int{1}, Band{50, 70}, DataOptions{}); err == nil {
		t.Fatal("expected invalid band error")
	}
	if _, err := m.ModulateData(nil, Band{0, 5}, DataOptions{}); err == nil {
		t.Fatal("expected no-bits error")
	}
	if _, err := m.DemodulateData(make([]float64, 10), Band{0, 5}, 12, DataOptions{}); err == nil {
		t.Fatal("expected short-buffer error")
	}
	if _, err := m.DemodulateData(make([]float64, 10), Band{70, 90}, 12, DataOptions{}); err == nil {
		t.Fatal("expected invalid band error")
	}
}

func TestDataSymbolsCount(t *testing.T) {
	b := Band{0, 18} // 19 bins, the paper's median band at 5 m
	if n := DataSymbols(24, b); n != 2 {
		t.Fatalf("24 bits over 19 bins = %d symbols, want 2", n)
	}
	if n := DataSymbols(19, b); n != 1 {
		t.Fatalf("19 bits over 19 bins = %d symbols, want 1", n)
	}
	if n := DataSymbols(20, b); n != 2 {
		t.Fatalf("20 bits over 19 bins = %d symbols, want 2", n)
	}
}

func TestHardBits(t *testing.T) {
	soft := []float64{0.5, -0.2, 0, -9, 3}
	want := []int{0, 1, 0, 1, 0}
	got := HardBits(soft)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HardBits = %v, want %v", got, want)
		}
	}
}

func TestTransmitPowerIndependentOfBand(t *testing.T) {
	// The power-reallocation premise: data sections must have the same
	// RMS no matter how narrow the band.
	rng := rand.New(rand.NewSource(87))
	m := mustModem(t, DefaultConfig())
	var rmsValues []float64
	for _, band := range []Band{{0, 59}, {0, 29}, {0, 9}, {0, 1}} {
		bits := randomBits(2*band.Width(), rng)
		tx, err := m.ModulateData(bits, band, DataOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rmsValues = append(rmsValues, dsp.RMS(tx))
	}
	for i := 1; i < len(rmsValues); i++ {
		if math.Abs(rmsValues[i]-rmsValues[0]) > 0.05*rmsValues[0] {
			t.Fatalf("RMS varies with band width: %v", rmsValues)
		}
	}
}

func BenchmarkEstimateChannel(b *testing.B) {
	m, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rx := append([]float64(nil), m.Preamble()...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.EstimateChannel(rx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEqualizer480(b *testing.B) {
	rng := rand.New(rand.NewSource(88))
	m, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ref, err := m.TrainingSymbol(FullBand(m.Config()))
	if err != nil {
		b.Fatal(err)
	}
	taps := make([]float64, 100)
	taps[0] = 1
	taps[99] = 0.4
	rx := applyChannel(ref, taps, 0.01, rng)[:len(ref)]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TrainEqualizer(rx, ref, 480, -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectPreamble1s(b *testing.B) {
	rng := rand.New(rand.NewSource(89))
	m, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	d := NewDetector(m)
	x := make([]float64, 48000)
	for i := range x {
		x[i] = 0.3 * rng.NormFloat64()
	}
	dsp.AddAt(x, m.Preamble(), 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Detect(x); !ok {
			b.Fatal("missed preamble")
		}
	}
}
