package modem

import (
	"aquago/internal/dsp"
	"aquago/internal/seq"
)

// Detection thresholds from the paper (§2.2.1): a true preamble's
// normalized sliding correlation exceeds 0.6 while spiky noise stays
// below 0.2; the sliding-correlation step is 8 samples to balance
// compute against synchronization resolution.
const (
	DefaultDetectThreshold = 0.6
	DefaultSlideStep       = 8
)

// Detection describes one detected preamble.
type Detection struct {
	// Offset is the sample index in the searched buffer where the
	// preamble begins.
	Offset int
	// Metric is the normalized sliding-correlation peak in [0, 1].
	Metric float64
	// Coarse is the normalized cross-correlation value that triggered
	// the fine stage.
	Coarse float64
}

// Detector finds preambles in received audio using the paper's
// two-stage scheme: cheap normalized cross-correlation against the
// known preamble waveform proposes candidates; the PN-segment sliding
// correlation (robust to SNR changes and spiky noise) confirms and
// refines timing.
type Detector struct {
	m *Modem
	// Threshold for the sliding-correlation metric (default 0.6).
	Threshold float64
	// CoarseThreshold gates the first stage (normalized xcorr).
	CoarseThreshold float64
	// Step is the sliding-correlation stride in samples (default 8).
	Step int
}

// NewDetector returns a detector with the paper's thresholds.
func NewDetector(m *Modem) *Detector {
	return &Detector{m: m, Threshold: DefaultDetectThreshold, CoarseThreshold: 0.25, Step: DefaultSlideStep}
}

// SlidingCorrelation evaluates the paper's detection metric at offset
// t of x: the window of 8 OFDM-symbol segments starting at t is
// sign-corrected by the PN pattern, adjacent segments are correlated,
// and the sum is normalized by the window energy. The true preamble
// yields ~7/8 at high SNR; noise stays near zero.
func (d *Detector) SlidingCorrelation(x []float64, t int) float64 {
	n := d.m.cfg.N()
	win := PreambleSymbols * n
	if t < 0 || t+win > len(x) {
		return 0
	}
	var sum float64
	var energy float64
	for s := 0; s < PreambleSymbols; s++ {
		segA := x[t+s*n : t+(s+1)*n]
		energy += dsp.Energy(segA)
		if s == PreambleSymbols-1 {
			break
		}
		segB := x[t+(s+1)*n : t+(s+2)*n]
		signA := float64(seq.PreamblePN[s])
		signB := float64(seq.PreamblePN[s+1])
		sum += signA * signB * dsp.Dot(segA, segB)
	}
	if energy <= 0 {
		return 0
	}
	// Scale by 8/7 so a perfect noiseless preamble scores 1.0.
	return sum / energy * float64(PreambleSymbols) / float64(PreambleSymbols-1)
}

// Detect searches x for the first preamble. It returns ok=false if no
// candidate passes both stages.
func (d *Detector) Detect(x []float64) (Detection, bool) {
	dets := d.detect(x, true)
	if len(dets) == 0 {
		return Detection{}, false
	}
	return dets[0], true
}

// DetectAll returns every non-overlapping preamble detection in x in
// time order.
func (d *Detector) DetectAll(x []float64) []Detection {
	return d.detect(x, false)
}

func (d *Detector) detect(x []float64, firstOnly bool) []Detection {
	pre := d.m.preamble
	if len(x) < len(pre) {
		return nil
	}
	coarse := dsp.NormalizedCrossCorrelate(x, pre)
	win := len(pre)
	var out []Detection
	i := 0
	for i < len(coarse) {
		if coarse[i] < d.CoarseThreshold {
			i++
			continue
		}
		// Find the local coarse maximum over one symbol span.
		peak := i
		end := min(i+d.m.cfg.N(), len(coarse))
		for j := i; j < end; j++ {
			if coarse[j] > coarse[peak] {
				peak = j
			}
		}
		// Fine stage: sliding correlation around the coarse peak.
		lo := max(0, peak-d.m.cfg.N()/2)
		hi := min(len(x)-win, peak+d.m.cfg.N()/2)
		bestT, bestM := -1, 0.0
		for t := lo; t <= hi; t += d.Step {
			if m := d.SlidingCorrelation(x, t); m > bestM {
				bestM, bestT = m, t
			}
		}
		if bestT >= 0 && bestM >= d.Threshold {
			out = append(out, Detection{Offset: bestT, Metric: bestM, Coarse: coarse[peak]})
			if firstOnly {
				return out
			}
			// Skip past this preamble to find the next one.
			i = bestT + win
			continue
		}
		i = end
	}
	return out
}
