package modem

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"aquago/internal/dsp"
)

// DefaultEqualizerTaps is the paper's time-domain equalizer length
// ("channel length L of 480 samples") at 50 Hz spacing; other
// spacings scale proportionally to the symbol length.
const DefaultEqualizerTaps = 480

// Equalizer is a time-domain MMSE FIR equalizer estimated from the
// known training symbol. Applying it to received samples shortens the
// effective channel so the short cyclic prefix (6.9 % of a symbol)
// suffices despite long underwater delay spreads.
type Equalizer struct {
	// Taps are the FIR coefficients g.
	Taps []float64
	// Delay is the decision delay d: output sample n estimates the
	// transmitted sample n-d. Consumers must shift by Delay when
	// aligning equalized output.
	Delay int
}

// EqualizerTaps returns the equalizer length for this modem's
// numerology (480 at 50 Hz spacing, scaled with symbol length).
func (m *Modem) EqualizerTaps() int {
	return DefaultEqualizerTaps * m.cfg.N() / 960
}

// TrainEqualizer estimates MMSE equalizer taps from one received
// training symbol. rx must start with the received training waveform
// aligned to ref (the known transmitted training symbol, body plus
// cyclic prefix); any samples of rx beyond len(ref) — i.e. the data
// symbols that follow — are used to improve the autocorrelation
// estimate, which is legitimate because the data symbols occupy the
// same band through the same channel. nTaps <= 0 selects
// EqualizerTaps(); delay < 0 selects nTaps/8.
//
// The estimator solves the Wiener-Hopf normal equations
//
//	R_yy g = r_yx(delay)
//
// with R_yy the received autocorrelation (symmetric Toeplitz, solved
// by Levinson in O(n^2)) and r_yx the cross-correlation against the
// delayed reference. Diagonal loading regularizes the system; if
// Levinson still rejects it the loading is increased geometrically.
func (m *Modem) TrainEqualizer(rx, ref []float64, nTaps, delay int) (*Equalizer, error) {
	if len(rx) < len(ref) {
		return nil, fmt.Errorf("modem: train equalizer rx %d shorter than ref %d", len(rx), len(ref))
	}
	if nTaps <= 0 {
		nTaps = m.EqualizerTaps()
	}
	if len(ref) < nTaps {
		return nil, fmt.Errorf("modem: training of %d samples shorter than %d taps", len(ref), nTaps)
	}
	if delay < 0 {
		delay = nTaps / 8
	}
	// Autocorrelation over everything available (training + data).
	r := dsp.AutoCorrelation(rx, nTaps-1)
	// Cross-correlation against the known training only:
	// p[j] = mean_n ref[n-delay] * rx[n-j].
	p := make([]float64, nTaps)
	for j := 0; j < nTaps; j++ {
		var acc float64
		for i := 0; i < len(ref); i++ {
			n := i + delay // rx sample index aligned with ref[i]
			if n-j < 0 || n-j >= len(rx) {
				continue
			}
			acc += ref[i] * rx[n-j]
		}
		p[j] = acc / float64(len(ref))
	}
	// Diagonal loading sweep. The solve is a pure function of
	// (r, p, nTaps, delay), and simulation harnesses replay identical
	// receive conditions constantly (repeated exchanges over the same
	// seeded link), so the result is cached process-wide.
	if g, ok := eqSolveCache.get(r, p, nTaps, delay); ok {
		return &Equalizer{Taps: g, Delay: delay}, nil
	}
	base := r[0]
	if base <= 0 {
		return nil, errors.New("modem: training signal has no energy")
	}
	for _, loading := range []float64{1e-4, 1e-3, 1e-2, 1e-1} {
		reg := append([]float64(nil), r...)
		reg[0] = base * (1 + loading)
		g, err := dsp.SolveSymmetricToeplitz(reg, p)
		if err == nil {
			eqSolveCache.put(r, p, nTaps, delay, g)
			return &Equalizer{Taps: g, Delay: delay}, nil
		}
	}
	return nil, ErrEqualizerSingular
}

// eqSolveCacheCap bounds the solve cache; when full it is emptied
// wholesale (the workload is streams of repeats, not a working set
// worth aging gracefully). At 480 taps an entry is ~12 KB, so the cap
// bounds the cache near 6 MB.
const eqSolveCacheCap = 512

// equalizerSolveCache memoizes the Levinson solve of TrainEqualizer,
// keyed by a 64-bit FNV-1a fingerprint over the bit patterns of the
// autocorrelation, the cross-correlation and the (nTaps, delay)
// shape. A fingerprint hit is verified against the full stored key —
// float-for-float — before the cached taps are returned, so a hash
// collision degrades to a miss, never a wrong answer; caching
// therefore cannot change any result, only skip the O(nTaps^2)
// re-derivation of one it already knows.
type equalizerSolveCache struct {
	mu           sync.Mutex
	entries      map[uint64]*eqSolveEntry
	hits, misses uint64
}

type eqSolveEntry struct {
	r, p         []float64
	nTaps, delay int
	taps         []float64
}

var eqSolveCache equalizerSolveCache

// fingerprint folds the solve inputs into the FNV-1a key.
func (c *equalizerSolveCache) fingerprint(r, p []float64, nTaps, delay int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	word := func(w uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> s) & 0xff
			h *= prime
		}
	}
	word(uint64(nTaps))
	word(uint64(delay))
	word(uint64(len(r)))
	for _, v := range r {
		word(math.Float64bits(v))
	}
	for _, v := range p {
		word(math.Float64bits(v))
	}
	return h
}

func eqKeyEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// get returns a copy of the cached taps for the exact solve inputs.
func (c *equalizerSolveCache) get(r, p []float64, nTaps, delay int) ([]float64, bool) {
	key := c.fingerprint(r, p, nTaps, delay)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok && e.nTaps == nTaps && e.delay == delay && eqKeyEqual(e.r, r) && eqKeyEqual(e.p, p) {
		c.hits++
		return append([]float64(nil), e.taps...), true
	}
	c.misses++
	return nil, false
}

// put stores a successful solve (inputs copied; colliding fingerprints
// overwrite).
func (c *equalizerSolveCache) put(r, p []float64, nTaps, delay int, taps []float64) {
	key := c.fingerprint(r, p, nTaps, delay)
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= eqSolveCacheCap {
		c.entries = nil
	}
	if c.entries == nil {
		c.entries = make(map[uint64]*eqSolveEntry)
	}
	c.entries[key] = &eqSolveEntry{
		r:     append([]float64(nil), r...),
		p:     append([]float64(nil), p...),
		nTaps: nTaps,
		delay: delay,
		taps:  append([]float64(nil), taps...),
	}
}

// EqualizerCacheStats reports the process-wide equalizer solve cache's
// hit and miss counts (a verified-fingerprint reuse is a hit; a cold
// or collided lookup is a miss).
func EqualizerCacheStats() (hits, misses uint64) {
	eqSolveCache.mu.Lock()
	defer eqSolveCache.mu.Unlock()
	return eqSolveCache.hits, eqSolveCache.misses
}

// ErrEqualizerSingular reports that equalizer training failed even
// with maximum regularization.
var ErrEqualizerSingular = errors.New("modem: equalizer training system singular")

// Apply filters x with the equalizer and compensates the decision
// delay: output k estimates the transmitted sample at x's index k.
// The result has the same length as x (tail samples beyond the
// available input are zero).
func (eq *Equalizer) Apply(x []float64) []float64 {
	full := dsp.Convolve(x, eq.Taps)
	out := make([]float64, len(x))
	for i := range out {
		j := i + eq.Delay
		if j < len(full) {
			out[i] = full[j]
		}
	}
	return out
}

// Identity returns a pass-through equalizer (single unit tap). Used
// by ablation benchmarks that disable equalization.
func Identity() *Equalizer {
	return &Equalizer{Taps: []float64{1}, Delay: 0}
}
