package modem

import (
	"math"
	"math/rand"
	"testing"
)

// TestEqualizerSolveCache pins the Levinson solve cache: training
// twice on identical receive conditions must reuse the solve (hit
// counter moves, taps identical), and a perturbed input must miss and
// produce its own solve.
func TestEqualizerSolveCache(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	nTaps := 64
	ref := make([]float64, 512)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	rx := make([]float64, 1024)
	for i := range rx {
		rx[i] = 0.8*refAt(ref, i) + 0.1*rng.NormFloat64()
	}

	h0, m0 := EqualizerCacheStats()
	eq1, err := m.TrainEqualizer(rx, ref, nTaps, 8)
	if err != nil {
		t.Fatal(err)
	}
	eq2, err := m.TrainEqualizer(rx, ref, nTaps, 8)
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := EqualizerCacheStats()
	if h1 <= h0 {
		t.Fatalf("identical retrain did not hit the cache (hits %d -> %d)", h0, h1)
	}
	if len(eq1.Taps) != len(eq2.Taps) {
		t.Fatalf("tap lengths differ: %d vs %d", len(eq1.Taps), len(eq2.Taps))
	}
	for i := range eq1.Taps {
		if math.Float64bits(eq1.Taps[i]) != math.Float64bits(eq2.Taps[i]) {
			t.Fatalf("tap %d differs across cached retrain: %g vs %g", i, eq1.Taps[i], eq2.Taps[i])
		}
	}
	// Cached taps are copies: mutating one result must not leak into
	// the next.
	eq2.Taps[0] += 1
	eq3, err := m.TrainEqualizer(rx, ref, nTaps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(eq3.Taps[0]) != math.Float64bits(eq1.Taps[0]) {
		t.Fatal("cache entry aliased a returned tap slice")
	}

	// A perturbed input is a different solve.
	rx2 := append([]float64(nil), rx...)
	rx2[100] += 0.5
	_, mBefore := EqualizerCacheStats()
	if _, err := m.TrainEqualizer(rx2, ref, nTaps, 8); err != nil {
		t.Fatal(err)
	}
	_, mAfter := EqualizerCacheStats()
	if mAfter <= mBefore && mBefore >= m0 {
		t.Fatalf("perturbed retrain did not miss (misses %d -> %d)", mBefore, mAfter)
	}
}

// refAt indexes ref cyclically so rx carries correlated structure.
func refAt(ref []float64, i int) float64 { return ref[i%len(ref)] }
