// Package modem implements the AquaApp OFDM physical layer: symbol
// modulation and demodulation in the 1-4 kHz acoustic band, the
// CAZAC/PN preamble with two-stage detection, per-subcarrier MMSE
// channel and SNR estimation, the time-domain MMSE equalizer, and
// differential BPSK coding across symbols.
//
// The packet protocol (preamble -> feedback -> data) that composes
// these pieces lives in package phy; the frequency band adaptation
// algorithm in package adapt.
package modem

import (
	"fmt"

	"aquago/internal/seq"
)

// Default parameters from the paper (§2.3.1): 48 kHz audio sampling,
// 50 Hz subcarrier spacing (960-sample / 20 ms symbols), a 67-sample
// cyclic prefix (6.9 % overhead), and the 1-4 kHz usable band, giving
// 60 data subcarriers.
const (
	DefaultSampleRate = 48000
	DefaultSpacingHz  = 50
	DefaultBandLowHz  = 1000
	DefaultBandHighHz = 4000
	DefaultCPLen960   = 67
	// PreambleSymbols is the number of identical CAZAC OFDM symbols
	// concatenated (with PN signs) to form the preamble.
	PreambleSymbols = 8
)

// Config selects the OFDM numerology. The zero value is not valid;
// use DefaultConfig or fill all fields. SampleRate must be divisible
// by SpacingHz.
type Config struct {
	SampleRate int     // samples per second (48000)
	SpacingHz  int     // subcarrier spacing in Hz (50, 25 or 10)
	BandLowHz  int     // lowest data subcarrier frequency (1000)
	BandHighHz int     // highest data subcarrier frequency (4000)
	CPLen      int     // cyclic prefix samples; 0 picks the paper's 6.98 %
	ZCRoot     int     // Zadoff-Chu root for the preamble (default 1)
	TrainRoot  int     // Zadoff-Chu root for the training symbol (default 7)
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		SampleRate: DefaultSampleRate,
		SpacingHz:  DefaultSpacingHz,
		BandLowHz:  DefaultBandLowHz,
		BandHighHz: DefaultBandHighHz,
	}
}

// WithSpacing returns a copy of the config at a different subcarrier
// spacing (the Fig 17 experiments use 50, 25 and 10 Hz).
func (c Config) WithSpacing(hz int) Config {
	c.SpacingHz = hz
	c.CPLen = 0 // re-derive proportionally
	return c
}

// validate normalizes defaults and checks invariants.
func (c *Config) validate() error {
	if c.SampleRate <= 0 || c.SpacingHz <= 0 {
		return fmt.Errorf("modem: sample rate %d and spacing %d must be positive", c.SampleRate, c.SpacingHz)
	}
	if c.SampleRate%c.SpacingHz != 0 {
		return fmt.Errorf("modem: sample rate %d not divisible by spacing %d", c.SampleRate, c.SpacingHz)
	}
	if c.BandLowHz <= 0 || c.BandHighHz <= c.BandLowHz {
		return fmt.Errorf("modem: invalid band [%d, %d]", c.BandLowHz, c.BandHighHz)
	}
	if c.BandHighHz >= c.SampleRate/2 {
		return fmt.Errorf("modem: band edge %d beyond Nyquist %d", c.BandHighHz, c.SampleRate/2)
	}
	if c.BandLowHz%c.SpacingHz != 0 || c.BandHighHz%c.SpacingHz != 0 {
		return fmt.Errorf("modem: band edges must align to subcarrier spacing %d", c.SpacingHz)
	}
	n := c.SampleRate / c.SpacingHz
	if c.CPLen == 0 {
		// The paper's 67/960 ratio, scaled to the symbol length.
		c.CPLen = n * DefaultCPLen960 / 960
	}
	if c.CPLen < 0 || c.CPLen >= n {
		return fmt.Errorf("modem: cyclic prefix %d out of range for symbol %d", c.CPLen, n)
	}
	if c.ZCRoot == 0 {
		c.ZCRoot = 1
	}
	if c.TrainRoot == 0 {
		c.TrainRoot = 7
	}
	return nil
}

// N returns the OFDM symbol body length in samples (FFT size).
func (c Config) N() int { return c.SampleRate / c.SpacingHz }

// SymbolLen returns the full symbol length including cyclic prefix.
func (c Config) SymbolLen() int { return c.N() + c.CPLen }

// SymbolDuration returns the symbol body duration in seconds.
func (c Config) SymbolDuration() float64 {
	return float64(c.N()) / float64(c.SampleRate)
}

// BinLow returns the FFT bin index of the lowest data subcarrier.
func (c Config) BinLow() int { return c.BandLowHz / c.SpacingHz }

// BinHigh returns the FFT bin index one past the highest data
// subcarrier: usable bins are [BinLow, BinHigh).
func (c Config) BinHigh() int { return c.BandHighHz / c.SpacingHz }

// NumBins returns the number of usable data subcarriers. With the
// default configuration this is 60, the paper's N0.
func (c Config) NumBins() int { return c.BinHigh() - c.BinLow() }

// BinFreq returns the center frequency in Hz of the i-th data
// subcarrier (i in [0, NumBins)).
func (c Config) BinFreq(i int) float64 {
	return float64((c.BinLow() + i) * c.SpacingHz)
}

// Band is a contiguous range of data subcarriers, indexed relative to
// BinLow: [Lo, Hi] inclusive. It is the unit of the paper's frequency
// band adaptation — the feedback symbol carries exactly one Band.
type Band struct {
	Lo, Hi int
}

// Width returns the number of subcarriers in the band.
func (b Band) Width() int { return b.Hi - b.Lo + 1 }

// Valid reports whether the band is non-empty and inside [0, numBins).
func (b Band) Valid(numBins int) bool {
	return b.Lo >= 0 && b.Lo <= b.Hi && b.Hi < numBins
}

// FullBand returns the band covering every data subcarrier of cfg.
func FullBand(cfg Config) Band { return Band{0, cfg.NumBins() - 1} }

// Modem precomputes the transform plan, preamble waveform and training
// symbols for one Config. Safe for concurrent use only through
// separate instances (the FFT plan carries scratch buffers).
type Modem struct {
	cfg      Config
	plan     *fftPlan
	zcBins   []complex128 // CAZAC values on the data bins (preamble)
	trBins   []complex128 // CAZAC values on the data bins (training)
	preamble []float64    // full preamble waveform (8 symbols, no CP)
	preSym   []float64    // one preamble symbol (body only)
	preScale float64      // per-bin amplitude after unit-RMS normalization

	// Reusable hot-path buffers. The Modem is single-goroutine by
	// contract (each worker of the parallel experiment engine owns its
	// own instance), so the per-symbol modulate/demodulate loops can
	// recycle these instead of allocating per symbol. Each buffer has
	// exactly one owner path so they never alias:
	//   symBins   — trainingSymbolInto's transient constellation
	//   dataBins  — ModulateData/DemodulateData current-symbol bins
	//   prevBins  — the differential phase reference
	//   refSym    — DemodulateData's scaled training reference
	//   padded    — ModulateData's padded bit grid
	symBins  []complex128
	dataBins []complex128
	prevBins []complex128
	refSym   []float64
	padded   []int
}

// scratchBins returns the transient constellation buffer used by
// trainingSymbolInto, sized on first use.
func (m *Modem) scratchBins() []complex128 {
	if m.symBins == nil {
		m.symBins = make([]complex128, m.cfg.NumBins())
	}
	return m.symBins
}

// dataScratch returns the (current, previous) bin buffers for the
// per-symbol data loops, sized on first use.
func (m *Modem) dataScratch() (cur, prev []complex128) {
	if m.dataBins == nil {
		m.dataBins = make([]complex128, m.cfg.NumBins())
		m.prevBins = make([]complex128, m.cfg.NumBins())
	}
	return m.dataBins, m.prevBins
}

// refScratch returns a SymbolLen buffer for the training reference.
func (m *Modem) refScratch() []float64 {
	if m.refSym == nil {
		m.refSym = make([]float64, m.cfg.SymbolLen())
	}
	return m.refSym
}

// paddedScratch returns an int grid of at least n entries, zeroed.
func (m *Modem) paddedScratch(n int) []int {
	if cap(m.padded) < n {
		m.padded = make([]int, n)
	}
	m.padded = m.padded[:n]
	for i := range m.padded {
		m.padded[i] = 0
	}
	return m.padded
}

// New builds a modem for the configuration. It returns an error if
// the configuration is invalid.
func New(cfg Config) (*Modem, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Modem{cfg: cfg, plan: newFFTPlan(cfg.N())}
	nb := cfg.NumBins()
	m.zcBins = zcForBins(cfg.ZCRoot, nb)
	m.trBins = zcForBins(cfg.TrainRoot, nb)
	m.buildPreamble()
	return m, nil
}

// zcForBins returns a length-nb CAZAC sequence with the given root,
// choosing the nearest coprime root if needed.
func zcForBins(root, nb int) []complex128 {
	u := root % nb
	if u < 1 {
		u = 1
	}
	for gcdInt(u, nb) != 1 {
		u++
		if u >= nb {
			u = 1
		}
	}
	return seq.ZadoffChu(u, nb)
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Config returns the modem's configuration (with defaults resolved).
func (m *Modem) Config() Config { return m.cfg }

// PreambleLen returns the preamble length in samples
// (PreambleSymbols * N, no cyclic prefixes).
func (m *Modem) PreambleLen() int { return len(m.preamble) }

// Preamble returns the transmit preamble waveform. The slice is
// shared; callers must not modify it.
func (m *Modem) Preamble() []float64 { return m.preamble }
