package mac

import (
	"testing"

	"aquago/internal/channel"
	"aquago/internal/sim"
)

// buildNetwork places n transmitters 5-10 m from one receiver, as in
// the paper's MAC evaluation at the bridge location.
func buildNetwork(nTx int) (*sim.Medium, []int) {
	med := sim.New(channel.Bridge)
	med.AddNode(sim.Position{X: 0, Z: 1}) // receiver
	tx := make([]int, nTx)
	for i := range tx {
		tx[i] = med.AddNode(sim.Position{X: 5 + 2.5*float64(i), Y: float64(i), Z: 1})
	}
	return med, tx
}

func TestSingleTransmitterNeverCollides(t *testing.T) {
	med, tx := buildNetwork(1)
	res := RunNetwork(med, tx, Config{CarrierSense: false, PacketsPerTx: 50, Seed: 1})
	if res.CollisionFraction != 0 {
		t.Fatalf("single transmitter collision fraction %g", res.CollisionFraction)
	}
	if res.Sent != 50 {
		t.Fatalf("sent %d packets, want 50", res.Sent)
	}
}

func TestCarrierSenseReducesCollisions3Tx(t *testing.T) {
	// Fig 19: three transmitters collide ~53% of the time without
	// carrier sense, ~7% with it.
	med, tx := buildNetwork(3)
	without := RunNetwork(med, tx, Config{CarrierSense: false, PacketsPerTx: 120, Seed: 7})
	med.Reset()
	with := RunNetwork(med, tx, Config{CarrierSense: true, PacketsPerTx: 120, Seed: 7})
	t.Logf("3 tx: without CS %.1f%%, with CS %.1f%%",
		100*without.CollisionFraction, 100*with.CollisionFraction)
	if without.CollisionFraction < 0.3 {
		t.Fatalf("without CS fraction %g too low to be interesting", without.CollisionFraction)
	}
	if with.CollisionFraction > without.CollisionFraction/3 {
		t.Fatalf("carrier sense ineffective: %g -> %g",
			without.CollisionFraction, with.CollisionFraction)
	}
	if with.CollisionFraction > 0.15 {
		t.Fatalf("with CS fraction %g too high", with.CollisionFraction)
	}
}

func TestCarrierSenseReducesCollisions2Tx(t *testing.T) {
	// Fig 19's two-transmitter network: 33% -> 5%.
	med, tx := buildNetwork(2)
	without := RunNetwork(med, tx, Config{CarrierSense: false, PacketsPerTx: 120, Seed: 9})
	med.Reset()
	with := RunNetwork(med, tx, Config{CarrierSense: true, PacketsPerTx: 120, Seed: 9})
	t.Logf("2 tx: without CS %.1f%%, with CS %.1f%%",
		100*without.CollisionFraction, 100*with.CollisionFraction)
	if without.CollisionFraction < 0.15 {
		t.Fatalf("without CS fraction %g too low", without.CollisionFraction)
	}
	if with.CollisionFraction > 0.12 {
		t.Fatalf("with CS fraction %g too high", with.CollisionFraction)
	}
	if with.CollisionFraction >= without.CollisionFraction {
		t.Fatal("carrier sense did not help")
	}
}

func TestAllPacketsEventuallySent(t *testing.T) {
	med, tx := buildNetwork(3)
	res := RunNetwork(med, tx, Config{CarrierSense: true, PacketsPerTx: 40, Seed: 3})
	if res.Sent != 3*40 {
		t.Fatalf("sent %d packets, want 120 (backoff deadlock?)", res.Sent)
	}
	for _, id := range tx {
		c := res.PerNode[id]
		if c[1] != 40 {
			t.Fatalf("node %d sent %d, want 40", id, c[1])
		}
	}
	if res.DurationS <= 0 {
		t.Fatal("duration not tracked")
	}
}

func TestPreambleAwareCSBeatsEnergyOnly(t *testing.T) {
	// The paper's §2.4 improvement note: preamble detection closes
	// the silent-feedback-window vulnerability of energy-only carrier
	// sense. Averaged over several runs it must not collide more, and
	// should generally collide less.
	var energySum, preambleSum float64
	const runs = 6
	for r := 0; r < runs; r++ {
		med, tx := buildNetwork(3)
		energy := RunNetwork(med, tx, Config{
			CarrierSense: true, PacketsPerTx: 120, Seed: 100 + int64(r),
		})
		med.Reset()
		aware := RunNetwork(med, tx, Config{
			CarrierSense: true, PacketsPerTx: 120, Seed: 100 + int64(r),
			PreambleAware: true,
		})
		energySum += energy.CollisionFraction
		preambleSum += aware.CollisionFraction
	}
	t.Logf("carrier sense collisions: energy-only %.1f%%, preamble-aware %.1f%%",
		100*energySum/runs, 100*preambleSum/runs)
	if preambleSum > energySum {
		t.Fatalf("preamble-aware CS (%g) worse than energy-only (%g)",
			preambleSum/runs, energySum/runs)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.PacketDurS != 0.6 || cfg.PacketsPerTx != 120 || cfg.MeanGapS != 3.2 {
		t.Fatalf("defaults %+v", cfg)
	}
}

func TestDeterminism(t *testing.T) {
	med1, tx1 := buildNetwork(3)
	r1 := RunNetwork(med1, tx1, Config{CarrierSense: true, PacketsPerTx: 60, Seed: 42})
	med2, tx2 := buildNetwork(3)
	r2 := RunNetwork(med2, tx2, Config{CarrierSense: true, PacketsPerTx: 60, Seed: 42})
	if r1.CollisionFraction != r2.CollisionFraction || r1.Sent != r2.Sent {
		t.Fatal("same seed produced different runs")
	}
}

func BenchmarkRunNetwork3Tx(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		med, tx := buildNetwork(3)
		RunNetwork(med, tx, Config{CarrierSense: true, PacketsPerTx: 120, Seed: int64(i)})
	}
}
