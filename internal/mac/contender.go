package mac

import (
	"math/rand"

	"aquago/internal/sim"
)

// Contender is the incremental form of the carrier-sense MAC for one
// live transmitter. Where RunNetwork steps a whole batch of scripted
// nodes through a simulated schedule, a Contender is driven from
// outside (the public Network's Node.Send) one packet at a time on a
// virtual clock: the caller asks when it may transmit, the contender
// applies the paper's rules — sense every 80 ms, back off a random
// whole number of packet durations when busy, extend the backoff by a
// packet duration whenever the channel is heard busy during it.
//
// All randomness comes from the contender's own seeded source, so a
// node's backoff draws are deterministic regardless of what the rest
// of the network does between its transmissions.
type Contender struct {
	cfg Config
	rng *rand.Rand
}

// NewContender builds a contender; cfg zero-values take the paper
// defaults (see Config.withDefaults). Acquire consults CarrierSense,
// PacketDurS and Seed; Transmission additionally consults the quiet
// window and PreambleAware.
func NewContender(cfg Config) *Contender {
	cfg = cfg.withDefaults()
	return &Contender{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Transmission builds the envelope transmission for a granted
// attempt under this contender's sensing model (the batch engine's
// transmit() applies the identical rules).
func (c *Contender) Transmission(from int, startS, durS float64, seq int) sim.Transmission {
	return transmissionFor(c.cfg, from, startS, durS, seq)
}

// Acquire returns the earliest virtual time >= readyS at which the
// MAC grants a transmission of duration durS (durS <= 0 falls back to
// the configured packet duration), polling busy at the sense cadence.
// ok is false when no grant happens within maxWaitS of readyS
// (maxWaitS <= 0 waits without bound); the returned time then is the
// instant the search gave up.
//
// durS doubles as the backoff quantum — the unit the paper's backoff
// draws and busy-extensions count in. Callers that know the adapted
// band's true airtime can pass it to tighten the backoff (the adaptive
// quanta the public Network exposes as WithAdaptiveBackoff); passing
// the worst-case airtime reproduces the paper's conservative rule.
//
// With cfg.Persist set, the backoff discipline is p-persistent
// slotted access instead: see acquirePPersistent.
func (c *Contender) Acquire(busy func(tS float64) bool, readyS, durS, maxWaitS float64) (startS float64, ok bool) {
	if !c.cfg.CarrierSense {
		return readyS, true
	}
	if c.cfg.Persist > 0 {
		return c.acquirePPersistent(busy, readyS, maxWaitS)
	}
	quantum := durS
	if quantum <= 0 {
		quantum = c.cfg.PacketDurS
	}
	t := readyS
	inBackoff := false
	backoffS := 0.0
	for {
		if maxWaitS > 0 && t-readyS > maxWaitS {
			return t, false
		}
		heard := busy(t)
		switch {
		case !inBackoff:
			if !heard {
				return t, true
			}
			// Draw a backoff in whole packet durations.
			backoffS = float64(1+c.rng.Intn(MaxBackoffPackets)) * quantum
			inBackoff = true
		case heard:
			// The paper's rule: a busy channel during backoff extends
			// it by one packet duration, so it cannot elapse while a
			// packet is on the air.
			backoffS += quantum
		default:
			backoffS -= SenseIntervalS
			if backoffS <= 0 {
				return t, true
			}
		}
		t += SenseIntervalS
	}
}

// acquirePPersistent is the p-persistent slotted discipline: sense at
// the usual cadence until the channel is idle, then at each slot
// boundary transmit with probability cfg.Persist or defer one slot
// (cfg.SlotS) and sense again. A channel heard busy again mid-deferral
// simply re-enters the idle wait — there is no accumulated backoff to
// extend, which is exactly why a node behind a busy relay chain gets
// back on the air within a few slots of the channel clearing instead
// of serving a multi-packet penalty. All draws come from the
// contender's seeded source, one per idle slot, so the grant time is a
// deterministic function of the busy history the node observed.
func (c *Contender) acquirePPersistent(busy func(tS float64) bool, readyS, maxWaitS float64) (startS float64, ok bool) {
	t := readyS
	for {
		if maxWaitS > 0 && t-readyS > maxWaitS {
			return t, false
		}
		if busy(t) {
			t += SenseIntervalS
			continue
		}
		if c.rng.Float64() <= c.cfg.Persist {
			return t, true
		}
		t += c.cfg.SlotS
	}
}
