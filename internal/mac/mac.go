// Package mac implements AquaApp's carrier-sense medium access
// (§2.4): each phone measures the 1-4 kHz band energy every 80 ms
// before transmitting; a busy channel triggers a random backoff in
// multiples of the packet duration, and hearing the channel busy
// during backoff extends it by one packet duration so the backoff
// never expires mid-packet.
package mac

import (
	"math/rand"

	"aquago/internal/sim"
)

// Paper constants.
const (
	// SenseIntervalS is the carrier-sense measurement cadence (80 ms).
	SenseIntervalS = 0.080
	// MaxBackoffPackets bounds the initial random backoff draw.
	MaxBackoffPackets = 4
)

// Config parameterizes a network run.
type Config struct {
	// CarrierSense toggles the MAC (Fig 19 compares both).
	CarrierSense bool
	// PacketDurS is the on-air packet duration (sets the backoff
	// quantum).
	PacketDurS float64
	// PacketsPerTx is the number of packets each transmitter sends
	// (120 in the paper).
	PacketsPerTx int
	// MeanGapS is the mean of each node's random inter-packet pause
	// ("send continuously after a random backoff period of multiple
	// seconds").
	MeanGapS float64
	// QuietOffS/QuietDurS describe the silent feedback window inside
	// each exchange (energy-only carrier sense cannot hear through
	// it). Zero QuietDurS models a solid packet. Defaults follow the
	// protocol timing: header ends ~0.19 s in, silence ~0.13 s.
	QuietOffS, QuietDurS float64
	// PreambleAware adds the paper's suggested improvement (§2.4):
	// carrier sense that also detects preambles knows an exchange is
	// in progress and treats the channel as busy through the silent
	// feedback window, eliminating the residual collisions of
	// energy-only sensing.
	PreambleAware bool
	// Persist, when in (0, 1], switches Contender.Acquire from the
	// paper's multi-packet random backoff to p-persistent slotted
	// access (the classic packet-radio CSMA variant): the contender
	// waits for the channel to fall idle, then transmits with
	// probability Persist at each slot boundary, deferring one slot
	// otherwise. Where the paper's backoff grows by a whole packet
	// duration on every busy poll — pathological when a relay chain
	// keeps the channel warm — p-persistence re-contends within a few
	// slots of the channel clearing. Zero keeps the paper's rule.
	// Only the incremental Contender honors it; the batch engine
	// (RunNetwork) always runs the paper's MAC.
	Persist float64
	// SlotS is the p-persistent slot duration (default one sense
	// interval). Ignored when Persist is zero.
	SlotS float64
	// Seed drives all randomness.
	Seed int64
}

// withDefaults fills paper defaults.
func (c Config) withDefaults() Config {
	if c.PacketDurS <= 0 {
		c.PacketDurS = 0.6
	}
	if c.PacketsPerTx <= 0 {
		c.PacketsPerTx = 120
	}
	if c.MeanGapS <= 0 {
		c.MeanGapS = 3.2
	}
	if c.QuietDurS == 0 {
		c.QuietOffS = 0.19
		c.QuietDurS = 0.13
	}
	if c.QuietDurS < 0 {
		c.QuietDurS = 0 // explicit solid-packet mode
	}
	if c.SlotS <= 0 {
		c.SlotS = SenseIntervalS
	}
	return c
}

// transmissionFor builds the envelope transmission one attempt puts
// on the air under cfg's sensing model: the configured silent
// feedback window, zeroed when PreambleAware models carrier sense
// that hears through it. cfg must already have defaults applied.
func transmissionFor(cfg Config, from int, startS, durS float64, seq int) sim.Transmission {
	quietOff, quietDur := cfg.QuietOffS, cfg.QuietDurS
	if cfg.PreambleAware {
		// A preamble-detecting carrier sense knows the exchange spans
		// the quiet window too; model it as a solid busy interval.
		quietOff, quietDur = 0, 0
	}
	return sim.Transmission{
		From: from, StartS: startS, DurS: durS,
		QuietOffS: quietOff, QuietDurS: quietDur,
		Seq: seq,
	}
}

// Result summarizes one network run.
type Result struct {
	// PerNode maps node index to (collided, sent).
	PerNode map[int][2]int
	// CollisionFraction is packets-in-collision / packets-sent.
	CollisionFraction float64
	// Sent is the total packet count.
	Sent int
	// DurationS is the simulated time until the last node finished.
	DurationS float64
}

// nodeState tracks one transmitter through the simulation.
type nodeState struct {
	id        int
	sent      int
	nextTryS  float64 // time the next packet becomes ready
	backoffS  float64 // remaining backoff (carrier-sense mode)
	inBackoff bool
	txUntilS  float64 // busy transmitting until
	seq       int
}

// RunNetwork simulates transmitters contending on the medium and
// returns collision statistics. txNodes lists the transmitting node
// indices (the receiver(s) stay silent). The medium accumulates the
// transmission log; callers share one medium per run.
func RunNetwork(med *sim.Medium, txNodes []int, cfg Config) Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	states := make([]*nodeState, len(txNodes))
	for i, id := range txNodes {
		states[i] = &nodeState{
			id: id,
			// Initial random stagger of "multiple seconds".
			nextTryS: rng.Float64() * 2 * cfg.MeanGapS,
		}
	}
	now := 0.0
	active := len(states)
	for active > 0 {
		active = 0
		for _, st := range states {
			if st.sent >= cfg.PacketsPerTx {
				continue
			}
			active++
			st.step(med, cfg, now, rng)
		}
		now += SenseIntervalS
		if now > 1e6 {
			break // safety bound
		}
	}
	perNode, frac := med.CollisionStats()
	total := 0
	//aqualint:order-independent integer addition commutes; only the sum of the per-node sent counts is observed
	for _, c := range perNode {
		total += c[1]
	}
	return Result{PerNode: perNode, CollisionFraction: frac, Sent: total, DurationS: now}
}

// step advances one node by one sense interval.
func (st *nodeState) step(med *sim.Medium, cfg Config, now float64, rng *rand.Rand) {
	if now < st.txUntilS || now < st.nextTryS {
		return // transmitting or waiting out the inter-packet pause
	}
	if !cfg.CarrierSense {
		st.transmit(med, cfg, now, rng)
		return
	}
	busy := med.BusyAt(st.id, now)
	if !st.inBackoff {
		if busy {
			// Draw a backoff in whole packet durations.
			n := 1 + rng.Intn(MaxBackoffPackets)
			st.backoffS = float64(n) * cfg.PacketDurS
			st.inBackoff = true
			return
		}
		st.transmit(med, cfg, now, rng)
		return
	}
	// In backoff: a busy channel extends the backoff by one packet
	// duration (the paper's rule ensuring it cannot elapse while a
	// packet is on the air); an idle channel lets it drain.
	if busy {
		st.backoffS += cfg.PacketDurS
		return
	}
	st.backoffS -= SenseIntervalS
	if st.backoffS <= 0 {
		st.inBackoff = false
		st.transmit(med, cfg, now, rng)
	}
}

func (st *nodeState) transmit(med *sim.Medium, cfg Config, now float64, rng *rand.Rand) {
	med.Transmit(transmissionFor(cfg, st.id, now, cfg.PacketDurS, st.seq))
	st.seq++
	st.sent++
	st.txUntilS = now + cfg.PacketDurS
	// Exponential inter-packet pause (mean MeanGapS) after finishing.
	st.nextTryS = st.txUntilS + rng.ExpFloat64()*cfg.MeanGapS
}
