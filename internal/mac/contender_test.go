package mac

import (
	"math"
	"testing"

	"aquago/internal/sim"

	"aquago/internal/channel"
)

func TestContenderIdleChannelGrantsImmediately(t *testing.T) {
	c := NewContender(Config{CarrierSense: true, Seed: 1})
	start, ok := c.Acquire(func(float64) bool { return false }, 2.5, 0.6, 0)
	if !ok || start != 2.5 {
		t.Fatalf("idle channel: got (%g, %v), want (2.5, true)", start, ok)
	}
}

func TestContenderNoCarrierSenseIgnoresBusy(t *testing.T) {
	c := NewContender(Config{CarrierSense: false, Seed: 1})
	start, ok := c.Acquire(func(float64) bool { return true }, 1.0, 0.6, 0)
	if !ok || start != 1.0 {
		t.Fatalf("MAC off: got (%g, %v), want (1.0, true)", start, ok)
	}
}

func TestContenderBacksOffPastBusyInterval(t *testing.T) {
	// Channel busy during [0, 1.0): the grant must land at or after
	// the busy interval ends, aligned to the sense cadence, and the
	// backoff draw makes it strictly later than the first idle poll.
	busyUntil := 1.0
	c := NewContender(Config{CarrierSense: true, PacketDurS: 0.6, Seed: 7})
	start, ok := c.Acquire(func(tS float64) bool { return tS < busyUntil }, 0, 0.6, 0)
	if !ok {
		t.Fatal("no grant on a channel that goes idle")
	}
	if start < busyUntil {
		t.Fatalf("granted %g while channel busy until %g", start, busyUntil)
	}
	// The grant happens on the sense lattice.
	steps := start / SenseIntervalS
	if math.Abs(steps-math.Round(steps)) > 1e-9 {
		t.Fatalf("grant %g off the %gs sense cadence", start, SenseIntervalS)
	}
}

func TestContenderDeadlineGivesUp(t *testing.T) {
	c := NewContender(Config{CarrierSense: true, PacketDurS: 0.6, Seed: 7})
	_, ok := c.Acquire(func(float64) bool { return true }, 0, 0.6, 0.5)
	if ok {
		t.Fatal("granted access on a permanently busy channel")
	}
}

func TestContenderDeterministicDraws(t *testing.T) {
	busy := func(tS float64) bool { return tS < 2.0 }
	run := func() []float64 {
		c := NewContender(Config{CarrierSense: true, PacketDurS: 0.6, Seed: 3})
		var grants []float64
		ready := 0.0
		for i := 0; i < 4; i++ {
			s, ok := c.Acquire(busy, ready, 0.6, 0)
			if !ok {
				t.Fatal("unexpected deadline")
			}
			grants = append(grants, s)
			ready = s + 0.6
		}
		return grants
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grant %d diverged: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestContenderAgreesWithRunNetworkRules cross-checks the incremental
// contender against the batch engine on the scenario both understand:
// one transmitter on an otherwise silent medium transmits exactly at
// its ready times.
func TestContenderAgreesWithRunNetworkRules(t *testing.T) {
	med := sim.New(channel.Bridge)
	med.AddNode(sim.Position{X: 0, Z: 1})
	tx := med.AddNode(sim.Position{X: 5, Z: 1})
	res := RunNetwork(med, []int{tx}, Config{CarrierSense: true, PacketsPerTx: 5, Seed: 2})
	if res.CollisionFraction != 0 || res.Sent != 5 {
		t.Fatalf("batch baseline: %+v", res)
	}
	c := NewContender(Config{CarrierSense: true, Seed: 2})
	start, ok := c.Acquire(func(tS float64) bool { return med.BusyAt(tx, tS) }, 1e6, 0.6, 0)
	if !ok || start != 1e6 {
		t.Fatalf("quiet medium after batch run: got (%g, %v)", start, ok)
	}
}

// TestContenderPPersistentGrantsNearIdle pins the point of the
// p-persistent variant: after a busy interval ends, the grant lands
// within a handful of slots — there is no multi-packet backoff to
// serve. With persist p the deferral count is geometric, so ten slots
// bound it at any reasonable p without flakiness (the draws are
// seeded, so the bound is really a determinism check).
func TestContenderPPersistentGrantsNearIdle(t *testing.T) {
	busyUntil := 3.0
	c := NewContender(Config{CarrierSense: true, Persist: 0.5, Seed: 11})
	start, ok := c.Acquire(func(tS float64) bool { return tS < busyUntil }, 0, 0.6, 0)
	if !ok {
		t.Fatal("no grant on a channel that goes idle")
	}
	if start < busyUntil {
		t.Fatalf("granted %g while channel busy until %g", start, busyUntil)
	}
	if start > busyUntil+10*SenseIntervalS {
		t.Fatalf("p-persistent grant at %g, want within ten slots of idle at %g", start, busyUntil)
	}
}

// TestContenderPPersistentDeterministicDraws mirrors the classic
// determinism check: same seed, same busy history, same grants.
func TestContenderPPersistentDeterministicDraws(t *testing.T) {
	busy := func(tS float64) bool { return tS < 1.0 }
	run := func() []float64 {
		c := NewContender(Config{CarrierSense: true, Persist: 0.4, Seed: 5})
		var grants []float64
		ready := 0.0
		for i := 0; i < 4; i++ {
			s, ok := c.Acquire(busy, ready, 0.6, 0)
			if !ok {
				t.Fatal("unexpected deadline")
			}
			grants = append(grants, s)
			ready = s + 0.6
		}
		return grants
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grant %d diverged: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestContenderPPersistentDeadlineGivesUp: the deadline contract is
// shared with the classic discipline.
func TestContenderPPersistentDeadlineGivesUp(t *testing.T) {
	c := NewContender(Config{CarrierSense: true, Persist: 0.8, Seed: 7})
	until, ok := c.Acquire(func(float64) bool { return true }, 1.0, 0.6, 0.5)
	if ok {
		t.Fatal("granted access on a permanently busy channel")
	}
	if until <= 1.5 {
		t.Fatalf("gave up at %g, want strictly past ready+deadline (1.5)", until)
	}
}

// TestContenderGiveUpReportsBusyUntil pins the failure contract the
// public ChannelBusyError rides on: when Acquire gives up, the
// returned time is the first poll instant past readyS + maxWaitS —
// the channel was busy (or backoff pending) until then.
func TestContenderGiveUpReportsBusyUntil(t *testing.T) {
	c := NewContender(Config{CarrierSense: true, PacketDurS: 0.6, Seed: 7})
	until, ok := c.Acquire(func(float64) bool { return true }, 2.0, 0.6, 0.5)
	if ok {
		t.Fatal("granted access on a permanently busy channel")
	}
	if until <= 2.5 {
		t.Fatalf("gave up at %g, want strictly past ready+deadline (2.5)", until)
	}
	if until > 2.5+2*SenseIntervalS {
		t.Fatalf("gave up at %g, want within two sense intervals of the deadline", until)
	}
}
