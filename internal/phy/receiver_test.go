package phy

import (
	"math/rand"
	"testing"

	"aquago/internal/adapt"
	"aquago/internal/channel"
	"aquago/internal/fec"
	"aquago/internal/modem"
)

// buildExchangeAudio renders the receive-side audio of one full
// exchange: preamble+header, then (after a gap) the data section on
// the band the receiver will select. Returns the audio and the band
// used for the data. The helper runs selection itself by peeking at
// the receiver's first pass.
func buildExchangeAudio(t *testing.T, m *modem.Modem, link *channel.Link, dst DeviceID, payload [2]byte) ([]float64, modem.Band) {
	t.Helper()
	tones := NewTones(m)
	idSym, err := tones.IDSymbol(dst)
	if err != nil {
		t.Fatal(err)
	}
	tx1 := append(append([]float64{}, m.Preamble()...), idSym...)
	rx1 := link.TransmitAt(tx1, 0)

	// What band will the receiver pick? Run the same estimation.
	det := modem.NewDetector(m)
	d, ok := det.Detect(rx1)
	if !ok {
		t.Fatal("helper: preamble undetectable")
	}
	est, err := m.EstimateChannel(rx1[d.Offset : d.Offset+m.PreambleLen()])
	if err != nil {
		t.Fatal(err)
	}
	band, ok := adapt.NewSelector().Select(est.SNRdB)
	if !ok {
		t.Fatal("helper: no band")
	}

	codec := fec.NewCodec(fec.Rate23, fec.TailBiting)
	pkt := Packet{Dst: dst, Payload: payload}
	coded := codec.Encode(pkt.PayloadBitSlice())
	il, err := fec.NewInterleaver(band.Width(), len(coded))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := il.Interleave(coded)
	if err != nil {
		t.Fatal(err)
	}
	dataTx, err := m.ModulateData(grid, band, modem.DataOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rx2 := link.TransmitAt(dataTx, 0.5)

	// Stitch: rx1, a short silent gap, rx2, then trailing quiet — a
	// real microphone stream keeps running after the packet.
	gap := make([]float64, 6*m.Config().SymbolLen())
	tail := make([]float64, 16*m.Config().SymbolLen())
	audio := append(append(append(append([]float64{}, rx1...), gap...), rx2...), tail...)
	return audio, band
}

func TestReceiverStreamingDecode(t *testing.T) {
	m := defaultModem(t)
	link, err := channel.NewLink(channel.LinkParams{Env: channel.Bridge, DistanceM: 5, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	payload := [2]byte{0xBE, 0xEF}
	stream, wantBand := buildExchangeAudio(t, m, link, 7, payload)

	rx, err := NewReceiver(m, 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Feed in awkward chunk sizes, as an audio callback would.
	rng := rand.New(rand.NewSource(92))
	var events []Event
	for start := 0; start < len(stream); {
		end := start + 800 + rng.Intn(2400)
		if end > len(stream) {
			end = len(stream)
		}
		rx.Push(stream[start:end])
		events = append(events, rx.Events()...)
		start = end
	}
	var gotPreamble, gotPacket bool
	for _, ev := range events {
		switch ev.Kind {
		case EventPreamble:
			gotPreamble = true
			if ev.Band != wantBand {
				t.Fatalf("receiver selected %+v, helper predicted %+v", ev.Band, wantBand)
			}
			if len(ev.Feedback) == 0 {
				t.Fatal("no feedback waveform emitted")
			}
		case EventPacket:
			gotPacket = true
			if ev.Packet.Payload != payload {
				t.Fatalf("payload %x, want %x", ev.Packet.Payload, payload)
			}
		}
	}
	if !gotPreamble {
		t.Fatal("no preamble event")
	}
	if !gotPacket {
		t.Fatal("no packet event")
	}
}

func TestReceiverIgnoresOtherDestinations(t *testing.T) {
	m := defaultModem(t)
	link, err := channel.NewLink(channel.LinkParams{Env: channel.Bridge, DistanceM: 5, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := buildExchangeAudio(t, m, link, 12, [2]byte{1, 2})
	rx, err := NewReceiver(m, 33, 6) // we are 33; packet is for 12
	if err != nil {
		t.Fatal(err)
	}
	rx.Push(stream)
	for _, ev := range rx.Events() {
		if ev.Kind == EventPacket || ev.Kind == EventPreamble {
			t.Fatalf("packet for 12 produced %v event at device 33", ev.Kind)
		}
	}
}

func TestReceiverSurvivesNoiseOnlyStream(t *testing.T) {
	m := defaultModem(t)
	rx, err := NewReceiver(m, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(94))
	for chunk := 0; chunk < 40; chunk++ {
		buf := make([]float64, 4800)
		for i := range buf {
			buf[i] = rng.NormFloat64()
		}
		rx.Push(buf)
	}
	for _, ev := range rx.Events() {
		if ev.Kind == EventPacket {
			t.Fatal("noise decoded into a packet")
		}
	}
}

func TestReceiverBackToBackPackets(t *testing.T) {
	m := defaultModem(t)
	link, err := channel.NewLink(channel.LinkParams{Env: channel.Bridge, DistanceM: 5, Seed: 95})
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := buildExchangeAudio(t, m, link, 7, [2]byte{0x11, 0x22})
	s2, _ := buildExchangeAudio(t, m, link, 7, [2]byte{0x33, 0x44})
	gap := make([]float64, 48000/2)
	stream := append(append(append([]float64{}, s1...), gap...), s2...)

	rx, err := NewReceiver(m, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	rx.Push(stream)
	var payloads [][2]byte
	for _, ev := range rx.Events() {
		if ev.Kind == EventPacket {
			payloads = append(payloads, ev.Packet.Payload)
		}
	}
	if len(payloads) != 2 {
		t.Fatalf("decoded %d packets, want 2", len(payloads))
	}
	if payloads[0] != [2]byte{0x11, 0x22} || payloads[1] != [2]byte{0x33, 0x44} {
		t.Fatalf("payloads %x", payloads)
	}
}

func TestEventKindString(t *testing.T) {
	if EventPreamble.String() != "preamble" || EventPacket.String() != "packet" ||
		EventIgnored.String() != "ignored" {
		t.Fatal("EventKind.String")
	}
}
