package phy

import "aquago/internal/modem"

// Stage identifies one step of the adaptive packet exchange (Fig 5 of
// the paper). Stages fire in order; a failed stage suppresses the
// ones after it (a lost preamble never reaches the SNR estimate).
type Stage uint8

const (
	// StagePreamble is Bob's two-stage preamble detection plus the
	// header ID-tone check.
	StagePreamble Stage = iota
	// StageSNR is Bob's per-subcarrier SNR estimate from the preamble.
	StageSNR
	// StageBand is Bob's frequency band selection (Algorithm 1).
	StageBand
	// StageFeedback is the two-tone feedback symbol: Bob encodes his
	// band choice, Alice decodes what she transmits on.
	StageFeedback
	// StageData is the training + data section decode.
	StageData
	// StageACK is Bob's single-tone acknowledgment.
	StageACK
)

// String names the stage for logs.
func (s Stage) String() string {
	switch s {
	case StagePreamble:
		return "preamble"
	case StageSNR:
		return "snr"
	case StageBand:
		return "band"
	case StageFeedback:
		return "feedback"
	case StageData:
		return "data"
	case StageACK:
		return "ack"
	}
	return "unknown"
}

// StageEvent is one per-stage observation delivered to a stage hook.
// Hooks run synchronously inside Exchange; they must be fast and must
// not call back into the protocol or its medium.
type StageEvent struct {
	// Stage identifies the protocol step.
	Stage Stage
	// AtS is the virtual time at which the stage concluded.
	AtS float64
	// OK reports stage success (detection fired, band found, payload
	// decoded, ACK heard, ...).
	OK bool
	// Metric is the stage's scalar diagnostic: the sliding-correlation
	// peak for StagePreamble, the mean subcarrier SNR in dB for
	// StageSNR, zero elsewhere.
	Metric float64
	// Band is the band involved in StageBand (Bob's choice),
	// StageFeedback (what Alice decoded) and StageData (decode band).
	Band modem.Band
	// SNRdB is the per-subcarrier estimate (StageSNR only). The slice
	// is shared with the protocol result; copy it before retaining.
	SNRdB []float64
	// BitErrors is the post-Viterbi payload error count (StageData).
	BitErrors int

	// Relay context. The protocol itself never sets these: the network's
	// relay layer stamps them onto every event of a hop's exchange, so a
	// trace can follow a message down a multi-hop path. Hop is the
	// zero-based hop whose exchange emitted the event and PathHops the
	// path's total hop count (both zero for a plain single-hop Send —
	// a relayed transfer always has PathHops >= 1). BulkPkt/BulkPkts
	// locate the event inside a bulk transfer's packet sequence the same
	// way (BulkPkts is zero outside Node.SendBulk).
	Hop      int
	PathHops int
	BulkPkt  int
	BulkPkts int

	// TxID tags every event of a queued (async) send's exchanges with
	// the transmit handle's ID, stamped by the network's transmit
	// daemon the same way the relay layer stamps the hop context. Zero
	// for blocking sends, which have no handle.
	TxID uint64
}

// SetStageHook installs (or, with nil, removes) the per-stage
// callback. Telemetry and tests consume the same hook the public
// Trace interface wraps.
func (p *Protocol) SetStageHook(hook func(StageEvent)) { p.opts.OnStage = hook }

// emit delivers a stage event to the installed hook, if any.
func (p *Protocol) emit(ev StageEvent) {
	if p.opts.OnStage != nil {
		p.opts.OnStage(ev)
	}
}
