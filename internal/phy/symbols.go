// Package phy assembles the modem, adaptation and FEC layers into
// AquaApp's packet protocol (Fig 5 of the paper): preamble + header
// with receiver ID, post-preamble feedback carrying the selected
// band, the training + data section, and single-tone ACKs. It also
// implements the long-range FSK SoS beacon (§3).
package phy

import (
	"fmt"

	"aquago/internal/dsp"
	"aquago/internal/modem"
)

// MaxDeviceID is the number of addressable devices: one per OFDM data
// subcarrier (the paper's 60-user limit).
const MaxDeviceID = 60

// DeviceID is a local network address in [0, MaxDeviceID).
type DeviceID int

// Valid reports whether the ID is in range for the modem config.
func (id DeviceID) Valid(cfg modem.Config) bool {
	return id >= 0 && int(id) < cfg.NumBins() && int(id) < MaxDeviceID
}

// Tones encodes and decodes the protocol's single-tone OFDM symbols:
// device IDs (header, addressing) and ACKs. Allocating the entire
// symbol power to one subcarrier makes these reliable without channel
// knowledge.
type Tones struct {
	m *modem.Modem
}

// NewTones returns a tone codec for the modem.
func NewTones(m *modem.Modem) *Tones { return &Tones{m: m} }

// ackBin is the data-bin index of the ACK tone: the paper assigns the
// OFDM bin at 1 kHz, which is data bin 0 in the default numerology.
const ackBin = 0

// IDSymbol builds the header symbol addressing dst: all power on the
// dst-th data subcarrier.
func (t *Tones) IDSymbol(dst DeviceID) ([]float64, error) {
	if !dst.Valid(t.m.Config()) {
		return nil, fmt.Errorf("%w: header tone for device %d", ErrBadDeviceID, dst)
	}
	return t.tone(int(dst))
}

// ACKSymbol builds the acknowledgment symbol (all power at 1 kHz).
func (t *Tones) ACKSymbol() ([]float64, error) { return t.tone(ackBin) }

func (t *Tones) tone(bin int) ([]float64, error) {
	bins := make([]complex128, t.m.Config().NumBins())
	bins[bin] = 1
	sym, err := t.m.ModulateSymbol(bins)
	if err != nil {
		return nil, err
	}
	rms := dsp.RMS(sym)
	if rms > 0 {
		dsp.Scale(sym, 1/rms)
	}
	return sym, nil
}

// ToneDecision reports what DecodeTone saw in one symbol window.
type ToneDecision struct {
	// Bin is the strongest data subcarrier.
	Bin int
	// Fraction is the tone's share of total bin power (near 1 for a
	// clean tone, ~0.08 for Gaussian noise over 60 bins).
	Fraction float64
	// Prominence is the tone power over the median bin power — robust
	// when the tone sits in a channel notch but other bins only carry
	// noise.
	Prominence float64
}

// DecodeTone finds the dominant subcarrier in a received symbol whose
// body starts at rx[offset+CPLen].
func (t *Tones) DecodeTone(rx []float64, offset int) (ToneDecision, error) {
	cfg := t.m.Config()
	start := offset + cfg.CPLen
	if start < 0 || start+cfg.N() > len(rx) {
		return ToneDecision{}, fmt.Errorf("%w: tone symbol out of bounds (offset %d, len %d)", ErrShortInput, offset, len(rx))
	}
	bins, err := t.m.DemodSymbol(rx[start : start+cfg.N()])
	if err != nil {
		return ToneDecision{}, err
	}
	powers := make([]float64, len(bins))
	var total, best float64
	bestBin := 0
	for i, v := range bins {
		p := dsp.CAbs2(v)
		powers[i] = p
		total += p
		if p > best {
			best, bestBin = p, i
		}
	}
	if total <= 0 {
		return ToneDecision{}, nil
	}
	med := dsp.Median(powers)
	prom := best / (med + 1e-30)
	return ToneDecision{Bin: bestBin, Fraction: best / total, Prominence: prom}, nil
}

// MatchesTone reports whether the decision plausibly is the given
// tone bin. The bin must win the argmax and either dominate the total
// power or stand well above the median bin (which survives channel
// notches on the tone while still rejecting noise).
func (d ToneDecision) MatchesTone(bin int) bool {
	return d.Bin == bin && (d.Fraction > 0.2 || d.Prominence > 6)
}

// DecodeToneIntegrated aggregates bin powers over a set of candidate
// offsets before classifying. Integrating across the timing scan
// averages out multipath phase structure and noise bursts, making the
// header check robust when the tone bin sits in a fade at the nominal
// offset.
func (t *Tones) DecodeToneIntegrated(rx []float64, offsets []int) (ToneDecision, error) {
	cfg := t.m.Config()
	nb := cfg.NumBins()
	acc := make([]float64, nb)
	windows := 0
	for _, off := range offsets {
		start := off + cfg.CPLen
		if start < 0 || start+cfg.N() > len(rx) {
			continue
		}
		bins, err := t.m.DemodSymbol(rx[start : start+cfg.N()])
		if err != nil {
			return ToneDecision{}, err
		}
		for i, v := range bins {
			acc[i] += dsp.CAbs2(v)
		}
		windows++
	}
	if windows == 0 {
		return ToneDecision{}, fmt.Errorf("%w: no valid tone windows", ErrShortInput)
	}
	var total, best float64
	bestBin := 0
	for i, p := range acc {
		total += p
		if p > best {
			best, bestBin = p, i
		}
	}
	if total <= 0 {
		return ToneDecision{}, nil
	}
	med := dsp.Median(acc)
	return ToneDecision{Bin: bestBin, Fraction: best / total, Prominence: best / (med + 1e-30)}, nil
}

// DetectACK scans rx in quarter-symbol steps for an ACK tone.
// minFraction is the power-share gate; a fraction above it (noise
// sits near 1/numBins) at any offset counts as an ACK.
func (t *Tones) DetectACK(rx []float64, minFraction float64) bool {
	cfg := t.m.Config()
	step := cfg.SymbolLen() / 4
	if step < 1 {
		step = 1
	}
	for off := 0; off+cfg.SymbolLen() <= len(rx); off += step {
		d, err := t.DecodeTone(rx, off)
		if err != nil {
			return false
		}
		if d.Bin == ackBin && d.Fraction >= minFraction {
			return true
		}
	}
	return false
}
