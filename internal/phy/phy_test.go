package phy

import (
	"math/rand"
	"testing"

	"aquago/internal/channel"
	"aquago/internal/dsp"
	"aquago/internal/modem"
)

func defaultModem(t testing.TB) *modem.Modem {
	t.Helper()
	m, err := modem.New(modem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDeviceIDValidation(t *testing.T) {
	cfg := modem.DefaultConfig()
	if !DeviceID(0).Valid(cfg) || !DeviceID(59).Valid(cfg) {
		t.Fatal("IDs 0 and 59 must be valid")
	}
	if DeviceID(60).Valid(cfg) || DeviceID(-1).Valid(cfg) {
		t.Fatal("IDs outside [0,60) must be invalid")
	}
}

func TestToneSymbolsRoundTrip(t *testing.T) {
	m := defaultModem(t)
	tones := NewTones(m)
	for _, id := range []DeviceID{0, 7, 31, 59} {
		sym, err := tones.IDSymbol(id)
		if err != nil {
			t.Fatal(err)
		}
		d, err := tones.DecodeTone(sym, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d.Bin != int(id) {
			t.Fatalf("ID %d decoded as bin %d", id, d.Bin)
		}
		if d.Fraction < 0.9 {
			t.Fatalf("ID %d clean dominance %g", id, d.Fraction)
		}
		if !d.MatchesTone(int(id)) {
			t.Fatalf("ID %d decision %+v rejected", id, d)
		}
	}
	if _, err := tones.IDSymbol(99); err == nil {
		t.Fatal("expected error for out-of-range ID")
	}
}

func TestToneSymbolsThroughChannel(t *testing.T) {
	m := defaultModem(t)
	tones := NewTones(m)
	link, err := channel.NewLink(channel.LinkParams{Env: channel.Lake, DistanceM: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := tones.IDSymbol(33)
	if err != nil {
		t.Fatal(err)
	}
	rx := link.Transmit(sym)
	// The tone should still dominate somewhere in the early window.
	found := false
	for off := 0; off < 200 && !found; off += 8 {
		d, err := tones.DecodeTone(rx, off)
		if err != nil {
			break
		}
		if d.MatchesTone(33) {
			found = true
		}
	}
	if !found {
		t.Fatal("ID tone lost through 10 m lake channel")
	}
}

func TestACKDetection(t *testing.T) {
	m := defaultModem(t)
	tones := NewTones(m)
	ack, err := tones.ACKSymbol()
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]float64, len(ack)+3000)
	dsp.AddAt(rx, ack, 1234)
	if !tones.DetectACK(rx, 0.3) {
		t.Fatal("clean ACK not detected")
	}
	rng := rand.New(rand.NewSource(22))
	noise := make([]float64, 8000)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	if tones.DetectACK(noise, 0.3) {
		t.Fatal("noise mistaken for ACK")
	}
}

func TestPacketBits(t *testing.T) {
	pkt := Packet{Dst: 3, Src: 5, Payload: [2]byte{0xAB, 0xCD}}
	bits := pkt.PayloadBitSlice()
	if len(bits) != PayloadBits {
		t.Fatalf("payload bits %d", len(bits))
	}
	back, err := PacketFromBits(bits, pkt.Dst, pkt.Src)
	if err != nil {
		t.Fatal(err)
	}
	if back.Payload != pkt.Payload {
		t.Fatalf("payload mangled: %x", back.Payload)
	}
	if _, err := PacketFromBits(bits[:10], 0, 0); err == nil {
		t.Fatal("expected bit-count error")
	}
}

func mediumAt(t testing.TB, env channel.Environment, dist float64, seed int64, motion channel.Motion) *ChannelMedium {
	t.Helper()
	med, err := NewChannelMedium(channel.LinkParams{
		Env: env, DistanceM: dist, Seed: seed, Motion: motion,
	})
	if err != nil {
		t.Fatal(err)
	}
	return med
}

func TestExchangeDeliversAt5m(t *testing.T) {
	m := defaultModem(t)
	p := New(m, Options{})
	med := mediumAt(t, channel.Bridge, 5, 101, channel.Static)
	pkt := Packet{Dst: 9, Src: 4, Payload: [2]byte{0xDE, 0xAD}}
	res, err := p.Exchange(med, pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PreambleDetected {
		t.Fatalf("preamble missed (metric %g)", res.DetectMetric)
	}
	if !res.HeaderOK {
		t.Fatal("header tone not recognized")
	}
	if !res.BandOK {
		t.Fatal("no band selected at 5 m bridge")
	}
	if !res.FeedbackDecoded {
		t.Fatal("feedback lost")
	}
	if res.FeedbackBand != res.Band {
		t.Fatalf("feedback band %+v != selected %+v", res.FeedbackBand, res.Band)
	}
	if !res.Delivered {
		t.Fatalf("packet not delivered: %v (coded errors %d/%d)", res, res.CodedErrors, res.CodedBits)
	}
	if !res.ACKReceived {
		t.Fatal("ACK not received")
	}
	if res.BitrateBPS < 100 {
		t.Fatalf("bitrate %g bps implausibly low at 5 m", res.BitrateBPS)
	}
	t.Logf("5 m bridge: band %+v, %.0f bps, %s", res.Band, res.BitrateBPS, res)
}

func TestExchangeMultiplePacketsPER(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-packet PER run")
	}
	m := defaultModem(t)
	p := New(m, Options{SkipACK: true})
	rng := rand.New(rand.NewSource(23))
	fails, trials := 0, 0
	// Several placements (the paper re-submerges the phones every 25
	// packets) so one unlucky realization cannot dominate.
	for _, seed := range []int64{202, 203, 204} {
		med := mediumAt(t, channel.Lake, 5, seed, channel.Static)
		at := 0.0
		for i := 0; i < 6; i++ {
			pkt := Packet{
				Dst:     DeviceID(5 + i*7), // rotate addressees
				Payload: [2]byte{byte(rng.Intn(256)), byte(rng.Intn(256))},
			}
			res, err := p.Exchange(med, pkt, at)
			if err != nil {
				t.Fatal(err)
			}
			at += 2.0
			trials++
			if res.Failed() {
				fails++
			}
		}
	}
	// Lake at 5 m: the paper reports ~1% PER with adaptation; allow a
	// few losses in a small sample.
	if fails > trials/4 {
		t.Fatalf("PER %d/%d at 5 m lake with adaptation", fails, trials)
	}
}

func TestExchangeNarrowsBandWithDistance(t *testing.T) {
	m := defaultModem(t)
	p := New(m, Options{SkipACK: true})
	width := func(dist float64) int {
		med := mediumAt(t, channel.Lake, dist, 303, channel.Static)
		res, err := p.Exchange(med, Packet{Dst: 9, Payload: [2]byte{0x12, 0x34}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.BandOK {
			return 0
		}
		return res.Band.Width()
	}
	w5 := width(5)
	w30 := width(30)
	t.Logf("band width: 5 m -> %d bins, 30 m -> %d bins", w5, w30)
	if w5 == 0 {
		t.Fatal("no band at 5 m")
	}
	if w30 >= w5 {
		t.Fatalf("band should narrow with distance: %d at 5 m vs %d at 30 m", w5, w30)
	}
}

func TestFixedBandBypassesAdaptation(t *testing.T) {
	m := defaultModem(t)
	full := modem.FullBand(m.Config())
	p := New(m, Options{FixedBand: &full, SkipACK: true})
	med := mediumAt(t, channel.Bridge, 5, 404, channel.Static)
	res, err := p.Exchange(med, Packet{Dst: 2, Payload: [2]byte{0xFF, 0x00}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Band != full {
		t.Fatalf("fixed band not used: %+v", res.Band)
	}
	if !res.FeedbackDecoded {
		t.Fatal("fixed-band mode should skip feedback and mark it decoded")
	}
}

func TestExchangeWrongDestinationIgnored(t *testing.T) {
	m := defaultModem(t)
	p := New(m, Options{})
	med := mediumAt(t, channel.Bridge, 5, 505, channel.Static)
	// Bob's ID is what the header carries; simulate Bob expecting a
	// different ID by addressing someone else: header check fails.
	pkt := Packet{Dst: 9, Payload: [2]byte{1, 2}}
	res, err := p.Exchange(med, pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HeaderOK {
		t.Skip("header marginal on this realization") // guard, should not happen
	}
	// Now pretend the medium garbles the header: use a medium whose
	// forward path nulls the header symbol.
	gm := &garbleHeaderMedium{inner: med, m: m}
	res, err = p.Exchange(gm, pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.HeaderOK || res.Delivered {
		t.Fatal("garbled header must abort the exchange")
	}
}

// garbleHeaderMedium zeroes the header symbol region of the first
// forward transmission.
type garbleHeaderMedium struct {
	inner *ChannelMedium
	m     *modem.Modem
	calls int
}

func (g *garbleHeaderMedium) Forward(tx []float64, atS float64) []float64 {
	g.calls++
	if g.calls == 1 {
		tx = append([]float64(nil), tx...)
		for i := g.m.PreambleLen(); i < len(tx); i++ {
			tx[i] = 0
		}
	}
	return g.inner.Forward(tx, atS)
}

func (g *garbleHeaderMedium) Backward(tx []float64, atS float64) []float64 {
	return g.inner.Backward(tx, atS)
}

func TestProbeChannelStability(t *testing.T) {
	m := defaultModem(t)
	p := New(m, Options{})
	med := mediumAt(t, channel.Lake, 10, 606, channel.Static)
	minSNR, band, ok := p.ProbeChannelStability(med, 0, 0.2)
	if !ok {
		t.Fatal("stability probe failed")
	}
	if band.Width() < 1 {
		t.Fatal("no band")
	}
	// Static: second-preamble min SNR should stay near or above the
	// 4 dB stability reference (paper Fig 16a shows static runs well
	// above it).
	if minSNR < 0 {
		t.Fatalf("static min SNR %g dB collapsed", minSNR)
	}
	t.Logf("stability: band %+v, min SNR on 2nd preamble %.1f dB", band, minSNR)
}

func TestPacketAirtime(t *testing.T) {
	m := defaultModem(t)
	p := New(m, Options{})
	full := modem.FullBand(m.Config())
	narrow := modem.Band{Lo: 0, Hi: 3}
	tFull := p.PacketAirtimeS(full)
	tNarrow := p.PacketAirtimeS(narrow)
	if tFull <= 0 || tNarrow <= 0 {
		t.Fatal("non-positive airtime")
	}
	// Narrow bands need more data symbols -> longer airtime.
	if tNarrow <= tFull {
		t.Fatalf("narrow band airtime %g should exceed full band %g", tNarrow, tFull)
	}
}

func TestResultString(t *testing.T) {
	cases := []struct {
		r    Result
		want string
	}{
		{Result{}, "lost:preamble"},
		{Result{PreambleDetected: true}, "lost:header"},
		{Result{PreambleDetected: true, HeaderOK: true}, "lost:no-band"},
		{Result{PreambleDetected: true, HeaderOK: true, BandOK: true}, "lost:feedback"},
		{Result{PreambleDetected: true, HeaderOK: true, BandOK: true, FeedbackDecoded: true, InfoErrors: 2}, "error:2-bit"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Result.String() = %q, want %q", got, c.want)
		}
	}
}
