package phy

import (
	"fmt"

	"aquago/internal/fec"
)

// PayloadBits is the paper's packet payload: 16 data bits (two hand
// signals), which the 2/3 convolutional code expands to 24 coded bits.
const PayloadBits = 16

// Packet is one application packet.
type Packet struct {
	// Dst addresses the receiver (header tone).
	Dst DeviceID
	// Src identifies the sender (used by the ACK path and the MAC).
	Src DeviceID
	// Payload carries PayloadBits bits as 2 bytes.
	Payload [2]byte
}

// PayloadBitSlice expands the payload into a bit slice (MSB first).
func (p Packet) PayloadBitSlice() []int {
	return fec.BitsFromBytes(p.Payload[:])
}

// PacketFromBits reassembles a payload from decoded bits.
func PacketFromBits(bits []int, dst, src DeviceID) (Packet, error) {
	if len(bits) != PayloadBits {
		return Packet{}, fmt.Errorf("%w: payload must be %d bits, got %d", ErrBadPayload, PayloadBits, len(bits))
	}
	b := fec.BytesFromBits(bits)
	var pkt Packet
	pkt.Dst, pkt.Src = dst, src
	copy(pkt.Payload[:], b)
	return pkt, nil
}
