package phy

import (
	"fmt"

	"aquago/internal/adapt"
	"aquago/internal/audio"
	"aquago/internal/dsp"
	"aquago/internal/fec"
	"aquago/internal/modem"
)

// Receiver is the streaming receive path: it consumes microphone audio
// chunk by chunk (as the phone app does — preamble detection runs
// continuously in real time), tracks protocol state across chunks, and
// emits decoded packets and the feedback symbols a transmitter needs.
//
// Feed audio with Push; collect events with Events. The receiver
// never blocks: all work happens inside Push on the caller's
// goroutine, bounded per chunk.
type Receiver struct {
	m     *modem.Modem
	det   *modem.Detector
	sel   *adapt.Selector
	fb    *adapt.Feedback
	tones *Tones
	codec *fec.Codec
	self  DeviceID

	buf    *audio.Ring
	window []float64 // working copy of buffered audio
	// consumed counts samples dropped from the front of the stream.
	consumed int64

	state    rxState
	band     modem.Band
	expected int // samples still needed before the next stage can run

	events []Event
}

type rxState int

const (
	rxHunting rxState = iota // searching for a preamble
	rxData                   // synchronized, waiting for the data section
)

// EventKind tags receiver events.
type EventKind int

const (
	// EventPreamble: a preamble addressed to this device was detected
	// and a band selected; Feedback holds the symbol to transmit back.
	EventPreamble EventKind = iota
	// EventPacket: a data section decoded into a packet.
	EventPacket
	// EventIgnored: a preamble for another device passed by.
	EventIgnored
)

// Event is one receiver output.
type Event struct {
	Kind EventKind
	// Packet is set for EventPacket.
	Packet Packet
	// Band is the selected band (EventPreamble, EventPacket).
	Band modem.Band
	// Feedback is the waveform to transmit back (EventPreamble).
	Feedback []float64
	// Metric is the detection confidence (EventPreamble).
	Metric float64
	// StreamPos is the absolute sample position of the event.
	StreamPos int64
}

// NewReceiver builds a streaming receiver for device self. bufSeconds
// bounds the audio history kept (>= 2 s recommended: preamble +
// header + data at the narrowest band).
func NewReceiver(m *modem.Modem, self DeviceID, bufSeconds float64) (*Receiver, error) {
	if bufSeconds <= 0 {
		bufSeconds = 4
	}
	capacity := int(bufSeconds * float64(m.Config().SampleRate))
	ring, err := audio.NewRing(capacity)
	if err != nil {
		return nil, err
	}
	return &Receiver{
		m:     m,
		det:   modem.NewDetector(m),
		sel:   adapt.NewSelector(),
		fb:    adapt.NewFeedback(m),
		tones: NewTones(m),
		codec: fec.NewCodec(fec.Rate23, fec.TailBiting),
		self:  self,
		buf:   ring,
	}, nil
}

// Push feeds a chunk of received audio and processes as much of the
// stream as possible.
func (r *Receiver) Push(samples []float64) {
	r.buf.Write(samples)
	for r.step() {
	}
}

// Events drains and returns accumulated events.
func (r *Receiver) Events() []Event {
	out := r.events
	r.events = nil
	return out
}

// step runs one state transition; false means more audio is needed.
func (r *Receiver) step() bool {
	switch r.state {
	case rxHunting:
		return r.hunt()
	case rxData:
		return r.decodeData()
	default:
		return false
	}
}

// minHunt is the least audio worth scanning: preamble + header.
func (r *Receiver) minHunt() int {
	return r.m.PreambleLen() + r.m.Config().SymbolLen()
}

// loadWindow snapshots the ring into the working buffer.
func (r *Receiver) loadWindow() []float64 {
	n := r.buf.Len()
	if cap(r.window) < n {
		r.window = make([]float64, n)
	}
	r.window = r.window[:n]
	r.buf.Peek(r.window)
	return r.window
}

func (r *Receiver) hunt() bool {
	if r.buf.Len() < r.minHunt() {
		return false
	}
	w := r.loadWindow()
	det, ok := r.det.Detect(w)
	if !ok {
		// Nothing in this window; keep one preamble length of tail
		// (a preamble could be straddling the chunk boundary).
		keep := r.m.PreambleLen() + r.m.Config().SymbolLen()
		if drop := len(w) - keep; drop > 0 {
			r.buf.Discard(drop)
			r.consumed += int64(drop)
		}
		return false
	}
	// Need the full preamble + header beyond the detection offset.
	need := det.Offset + r.m.PreambleLen() + r.m.Config().SymbolLen()
	if len(w) < need {
		return false // wait for more audio
	}
	// Header: addressed to us?
	hdrOff := det.Offset + r.m.PreambleLen()
	var offsets []int
	cp := r.m.Config().CPLen
	for delta := -cp; delta <= cp; delta += 8 {
		offsets = append(offsets, hdrOff+delta)
	}
	dec, err := r.tones.DecodeToneIntegrated(w, offsets)
	matches := err == nil && dec.MatchesTone(int(r.self))
	if !matches {
		r.events = append(r.events, Event{
			Kind: EventIgnored, Metric: det.Metric,
			StreamPos: r.consumed + int64(det.Offset),
		})
		drop := det.Offset + r.m.PreambleLen()
		r.buf.Discard(drop)
		r.consumed += int64(drop)
		return true
	}
	// Estimate, select, emit feedback.
	est, err := r.m.EstimateChannel(w[det.Offset : det.Offset+r.m.PreambleLen()])
	if err != nil {
		return false
	}
	band, ok := r.sel.Select(est.SNRdB)
	if !ok {
		// No feasible band: skip this packet.
		drop := det.Offset + r.m.PreambleLen()
		r.buf.Discard(drop)
		r.consumed += int64(drop)
		return true
	}
	fbSym, err := r.fb.Encode(band)
	if err != nil {
		return false
	}
	r.band = band
	r.state = rxData
	// Budget: the transmitter's processing gap (silence) plus the
	// data section itself, with margin for timing skew.
	r.expected = r.m.DataLen(r.codec.CodedLen(PayloadBits), band) + 10*r.m.Config().SymbolLen()
	r.events = append(r.events, Event{
		Kind: EventPreamble, Band: band, Feedback: fbSym,
		Metric: det.Metric, StreamPos: r.consumed + int64(det.Offset),
	})
	// Drop everything through the header; the data section follows.
	drop := det.Offset + r.m.PreambleLen() + r.m.Config().SymbolLen()
	r.buf.Discard(drop)
	r.consumed += int64(drop)
	return true
}

func (r *Receiver) decodeData() bool {
	if r.buf.Len() < r.expected {
		return false
	}
	w := r.loadWindow()
	codedLen := r.codec.CodedLen(PayloadBits)
	start, corrOK := findDataStartIn(r.m, w, r.band)
	r.state = rxHunting
	if !corrOK {
		return true // training symbol never arrived; resume hunting
	}
	soft, err := r.m.DemodulateData(w[start:], r.band, codedLen, modem.DataOptions{})
	if err != nil {
		return true // resume hunting; the data never arrived intact
	}
	il, err := fec.NewInterleaver(r.band.Width(), codedLen)
	if err != nil {
		return true
	}
	deSoft, err := il.DeinterleaveSoft(soft)
	if err != nil {
		return true
	}
	bits, err := r.codec.DecodeSoft(deSoft, PayloadBits)
	if err != nil {
		return true
	}
	pkt, err := PacketFromBits(bits, r.self, -1)
	if err != nil {
		return true
	}
	r.events = append(r.events, Event{
		Kind: EventPacket, Packet: pkt, Band: r.band,
		StreamPos: r.consumed + int64(start),
	})
	drop := start + r.m.DataLen(codedLen, r.band)
	if drop > len(w) {
		drop = len(w)
	}
	r.buf.Discard(drop)
	r.consumed += int64(drop)
	return true
}

// findDataStartIn mirrors the protocol's training-symbol correlation
// search over a standalone buffer. ok is false when no window
// correlates plausibly with the training waveform (pure noise).
func findDataStartIn(m *modem.Modem, rx []float64, band modem.Band) (start int, ok bool) {
	ref, err := m.TrainingSymbol(band)
	if err != nil {
		return 0, false
	}
	searchLen := min(len(rx), len(ref)+10*m.Config().SymbolLen())
	if searchLen <= len(ref) {
		return 0, false
	}
	corr := dsp.NormalizedCrossCorrelate(rx[:searchLen], ref)
	best := dsp.ArgMax(corr)
	if best < 0 || corr[best] < 0.15 {
		return 0, false
	}
	return best, true
}

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventPreamble:
		return "preamble"
	case EventPacket:
		return "packet"
	case EventIgnored:
		return "ignored"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}
