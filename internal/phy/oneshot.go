package phy

import (
	"fmt"

	"aquago/internal/fec"
	"aquago/internal/modem"
)

// OneShot frames packets without the feedback round: preamble, header
// tone, then training + data on a pre-agreed band. This is the mode
// used when the reverse channel is unavailable — encoding to audio
// files, broadcast messages, or store-and-forward relays. The
// adaptive protocol (Exchange) outperforms it whenever feedback is
// possible; the fixed-band experiments quantify by how much.
type OneShot struct {
	m     *modem.Modem
	tones *Tones
	det   *modem.Detector
	codec *fec.Codec
	// Band is the pre-agreed transmission band.
	Band modem.Band
	// DataOpts forwards modem ablation switches.
	DataOpts modem.DataOptions
}

// NewOneShot builds a one-shot framer on the given band.
func NewOneShot(m *modem.Modem, band modem.Band) (*OneShot, error) {
	if !band.Valid(m.Config().NumBins()) {
		return nil, fmt.Errorf("%w: %+v", ErrInvalidBand, band)
	}
	return &OneShot{
		m:     m,
		tones: NewTones(m),
		det:   modem.NewDetector(m),
		codec: fec.NewCodec(fec.Rate23, fec.TailBiting),
		Band:  band,
	}, nil
}

// Encode builds the complete one-shot waveform for a packet.
func (o *OneShot) Encode(pkt Packet) ([]float64, error) {
	idSym, err := o.tones.IDSymbol(pkt.Dst)
	if err != nil {
		return nil, err
	}
	coded := o.codec.Encode(pkt.PayloadBitSlice())
	il, err := fec.NewInterleaver(o.Band.Width(), len(coded))
	if err != nil {
		return nil, err
	}
	grid, err := il.Interleave(coded)
	if err != nil {
		return nil, err
	}
	data, err := o.m.ModulateData(grid, o.Band, o.DataOpts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, o.m.PreambleLen()+len(idSym)+len(data))
	out = append(out, o.m.Preamble()...)
	out = append(out, idSym...)
	out = append(out, data...)
	return out, nil
}

// Decoded is a successfully decoded one-shot packet.
type Decoded struct {
	Packet Packet
	// Offset is where the preamble started in the searched buffer.
	Offset int
	// Metric is the preamble detection confidence.
	Metric float64
}

// Decode searches rx for a one-shot packet addressed to self (or to
// anyone when self < 0) and decodes it.
func (o *OneShot) Decode(rx []float64, self DeviceID) (Decoded, bool) {
	det, ok := o.det.Detect(rx)
	if !ok {
		return Decoded{}, false
	}
	hdrOff := det.Offset + o.m.PreambleLen()
	tone, err := o.tones.DecodeTone(rx, hdrOff)
	if err != nil {
		return Decoded{}, false
	}
	if self >= 0 && !tone.MatchesTone(int(self)) {
		return Decoded{}, false
	}
	dst := DeviceID(tone.Bin)

	cfg := o.m.Config()
	dataStart := hdrOff + cfg.SymbolLen()
	if dataStart >= len(rx) {
		return Decoded{}, false
	}
	codedLen := o.codec.CodedLen(PayloadBits)
	soft, err := o.m.DemodulateData(rx[dataStart:], o.Band, codedLen, o.DataOpts)
	if err != nil {
		return Decoded{}, false
	}
	il, err := fec.NewInterleaver(o.Band.Width(), codedLen)
	if err != nil {
		return Decoded{}, false
	}
	deSoft, err := il.DeinterleaveSoft(soft)
	if err != nil {
		return Decoded{}, false
	}
	bits, err := o.codec.DecodeSoft(deSoft, PayloadBits)
	if err != nil {
		return Decoded{}, false
	}
	pkt, err := PacketFromBits(bits, dst, -1)
	if err != nil {
		return Decoded{}, false
	}
	return Decoded{Packet: pkt, Offset: det.Offset, Metric: det.Metric}, true
}
