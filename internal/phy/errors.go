package phy

import "errors"

// Sentinel errors for the protocol layer. Every error returned from
// this package wraps one of these (or ErrNoBand in protocol.go), so
// callers classify failures with errors.Is instead of matching
// message strings.
var (
	// ErrBadDeviceID reports a device or SoS ID outside the
	// addressable range.
	ErrBadDeviceID = errors.New("phy: device ID out of range")
	// ErrInvalidBand reports a band whose edges do not fit the modem
	// numerology.
	ErrInvalidBand = errors.New("phy: invalid band")
	// ErrBadPayload reports payload bits of the wrong size or alphabet.
	ErrBadPayload = errors.New("phy: bad payload")
	// ErrShortInput reports a receive buffer too short for the
	// requested decode.
	ErrShortInput = errors.New("phy: input too short")
	// ErrBadBeaconRate reports an unsupported SoS beacon bit rate.
	ErrBadBeaconRate = errors.New("phy: unsupported beacon rate")
)
