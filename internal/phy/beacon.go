package phy

import (
	"fmt"

	"aquago/internal/dsp"
)

// Beacon implements the long-range SoS messaging mode (§3): binary
// FSK with one tone per symbol, all transmit power concentrated in a
// single frequency. Slower symbol rates (50/100/200 ms symbols for
// 20/10/5 bps) integrate longer and reach past 100 m where OFDM
// cannot.
type Beacon struct {
	// SampleRate in Hz (48000).
	SampleRate int
	// BitRateBPS is one of 5, 10 or 20 in the paper.
	BitRateBPS int
	// F0 and F1 are the tone frequencies for bits 0 and 1, inside the
	// 1.5-4 kHz band the paper assigns to beacons.
	F0, F1 float64
}

// Beacon sync preamble: a fixed 8-bit pattern with good aperiodic
// autocorrelation under the two-tone alphabet.
var beaconSync = []int{1, 1, 1, 0, 0, 1, 0, 1}

// SOSIDBits is the ID payload width for SoS beacons (6-bit user ID).
const SOSIDBits = 6

// NewBeacon returns a beacon codec with the paper's defaults
// (f0 = 2 kHz, f1 = 3 kHz) at the given bit rate.
func NewBeacon(bitRate int) (*Beacon, error) {
	switch bitRate {
	case 5, 10, 20:
	default:
		return nil, fmt.Errorf("%w: %d bps not in {5, 10, 20}", ErrBadBeaconRate, bitRate)
	}
	return &Beacon{SampleRate: 48000, BitRateBPS: bitRate, F0: 2000, F1: 3000}, nil
}

// SymbolSamples returns the per-bit duration in samples
// (50/100/200 ms for 20/10/5 bps).
func (b *Beacon) SymbolSamples() int { return b.SampleRate / b.BitRateBPS }

// Encode builds the beacon waveform: sync pattern followed by the
// payload bits, one tone per bit at unit amplitude.
func (b *Beacon) Encode(bits []int) ([]float64, error) {
	for _, v := range bits {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("%w: beacon bit %d out of {0,1}", ErrBadPayload, v)
		}
	}
	all := append(append([]int{}, beaconSync...), bits...)
	n := b.SymbolSamples()
	out := make([]float64, 0, len(all)*n)
	for _, bit := range all {
		f := b.F0
		if bit == 1 {
			f = b.F1
		}
		out = append(out, dsp.ToneN(f, n, float64(b.SampleRate))...)
	}
	return out, nil
}

// EncodeID builds an SoS beacon carrying a 6-bit user ID.
func (b *Beacon) EncodeID(id DeviceID) ([]float64, error) {
	if id < 0 || int(id) >= 1<<SOSIDBits {
		return nil, fmt.Errorf("%w: SoS ID %d out of 6-bit range", ErrBadDeviceID, id)
	}
	bits := make([]int, SOSIDBits)
	for i := 0; i < SOSIDBits; i++ {
		bits[i] = int(id>>uint(SOSIDBits-1-i)) & 1
	}
	return b.Encode(bits)
}

// Decode synchronizes on the sync pattern and demodulates nBits
// payload bits from rx. It returns the bits and the detected start
// offset; ok is false when the sync pattern cannot be located.
func (b *Beacon) Decode(rx []float64, nBits int) (bits []int, offset int, ok bool) {
	n := b.SymbolSamples()
	total := (len(beaconSync) + nBits) * n
	if len(rx) < total {
		return nil, 0, false
	}
	// Coarse sync: score the sync pattern at a grid of offsets.
	bestOff, bestScore := -1, 0.0
	step := n / 8
	if step < 1 {
		step = 1
	}
	for off := 0; off+total <= len(rx); off += step {
		score := b.syncScore(rx, off)
		if score > bestScore {
			bestScore, bestOff = score, off
		}
	}
	if bestOff < 0 || bestScore < 0.55 {
		return nil, 0, false
	}
	// Fine sync around the coarse peak.
	fineBest, fineScore := bestOff, bestScore
	for off := bestOff - step; off <= bestOff+step; off++ {
		if off < 0 || off+total > len(rx) {
			continue
		}
		if s := b.syncScore(rx, off); s > fineScore {
			fineScore, fineBest = s, off
		}
	}
	offset = fineBest
	bits = make([]int, nBits)
	payloadStart := offset + len(beaconSync)*n
	for i := 0; i < nBits; i++ {
		seg := rx[payloadStart+i*n : payloadStart+(i+1)*n]
		bits[i] = b.demodBit(seg)
	}
	return bits, offset, true
}

// DecodeAligned demodulates nBits starting exactly after the sync
// pattern at a known offset — the BER harness path (Fig 12d), where
// alignment is known and only tone discrimination is under test.
func (b *Beacon) DecodeAligned(rx []float64, offset, nBits int) ([]int, error) {
	n := b.SymbolSamples()
	start := offset + len(beaconSync)*n
	if start+nBits*n > len(rx) {
		return nil, fmt.Errorf("%w: beacon rx shorter than %d bits", ErrShortInput, nBits)
	}
	bits := make([]int, nBits)
	for i := range bits {
		bits[i] = b.demodBit(rx[start+i*n : start+(i+1)*n])
	}
	return bits, nil
}

// syncScore measures tone contrast over the sync pattern at the
// candidate offset: mean of (P_expected - P_other)/(P_expected +
// P_other) across sync bits. A matching beacon scores near +1; noise
// (where the two tone powers are statistically equal) scores near 0,
// so the 0.55 gate rejects it.
func (b *Beacon) syncScore(rx []float64, off int) float64 {
	n := b.SymbolSamples()
	var score float64
	for i, bit := range beaconSync {
		seg := rx[off+i*n : off+(i+1)*n]
		p0 := dsp.GoertzelPower(seg, b.F0, float64(b.SampleRate))
		p1 := dsp.GoertzelPower(seg, b.F1, float64(b.SampleRate))
		tot := p0 + p1
		if tot <= 0 {
			continue
		}
		if bit == 0 {
			score += (p0 - p1) / tot
		} else {
			score += (p1 - p0) / tot
		}
	}
	return score / float64(len(beaconSync))
}

// demodBit compares tone energies over one symbol.
func (b *Beacon) demodBit(seg []float64) int {
	p0 := dsp.GoertzelPower(seg, b.F0, float64(b.SampleRate))
	p1 := dsp.GoertzelPower(seg, b.F1, float64(b.SampleRate))
	if p1 > p0 {
		return 1
	}
	return 0
}

// SyncLen returns the sync pattern length in samples.
func (b *Beacon) SyncLen() int { return len(beaconSync) * b.SymbolSamples() }
