package phy

import (
	"math/rand"
	"testing"

	"aquago/internal/channel"
	"aquago/internal/dsp"
)

func TestBeaconRates(t *testing.T) {
	for _, rate := range []int{5, 10, 20} {
		b, err := NewBeacon(rate)
		if err != nil {
			t.Fatal(err)
		}
		wantSamples := map[int]int{5: 9600, 10: 4800, 20: 2400}[rate]
		if b.SymbolSamples() != wantSamples {
			t.Fatalf("rate %d: symbol %d samples, want %d", rate, b.SymbolSamples(), wantSamples)
		}
	}
	if _, err := NewBeacon(7); err == nil {
		t.Fatal("expected error for unsupported rate")
	}
}

func TestBeaconRoundTripClean(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, rate := range []int{5, 10, 20} {
		b, err := NewBeacon(rate)
		if err != nil {
			t.Fatal(err)
		}
		bits := make([]int, 8)
		for i := range bits {
			bits[i] = rng.Intn(2)
		}
		tx, err := b.Encode(bits)
		if err != nil {
			t.Fatal(err)
		}
		rx := make([]float64, len(tx)+b.SymbolSamples())
		dsp.AddAt(rx, tx, 333)
		got, off, ok := b.Decode(rx, len(bits))
		if !ok {
			t.Fatalf("rate %d: sync failed", rate)
		}
		if off < 333-b.SymbolSamples()/8 || off > 333+b.SymbolSamples()/8 {
			t.Fatalf("rate %d: sync offset %d, want ~333", rate, off)
		}
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("rate %d: bit %d flipped", rate, i)
			}
		}
	}
}

func TestBeaconIDRoundTrip(t *testing.T) {
	b, err := NewBeacon(10)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := b.EncodeID(41) // 101001
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]float64, len(tx)+1000)
	dsp.AddAt(rx, tx, 200)
	bits, _, ok := b.Decode(rx, SOSIDBits)
	if !ok {
		t.Fatal("ID beacon sync failed")
	}
	id := 0
	for _, bit := range bits {
		id = id<<1 | bit
	}
	if id != 41 {
		t.Fatalf("decoded ID %d, want 41", id)
	}
	if _, err := b.EncodeID(64); err == nil {
		t.Fatal("expected error for 7-bit ID")
	}
}

func TestBeaconValidation(t *testing.T) {
	b, _ := NewBeacon(20)
	if _, err := b.Encode([]int{0, 1, 2}); err == nil {
		t.Fatal("expected invalid bit error")
	}
	if _, _, ok := b.Decode(make([]float64, 100), 8); ok {
		t.Fatal("too-short rx must not sync")
	}
	if _, err := b.DecodeAligned(make([]float64, 100), 0, 8); err == nil {
		t.Fatal("expected short-rx error")
	}
}

func TestBeaconNoSyncOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	b, _ := NewBeacon(20)
	rx := make([]float64, 60000)
	for i := range rx {
		rx[i] = rng.NormFloat64()
	}
	if _, _, ok := b.Decode(rx, 8); ok {
		t.Fatal("noise must not sync")
	}
}

func TestBeaconLongRangeThroughChannel(t *testing.T) {
	// The headline long-range claim: at 10 bps the beacon decodes at
	// 100 m where OFDM data cannot (Fig 12d: BER < 1% at 113 m for
	// 5 and 10 bps).
	rng := rand.New(rand.NewSource(33))
	b, err := NewBeacon(10)
	if err != nil {
		t.Fatal(err)
	}
	link, err := channel.NewLink(channel.LinkParams{
		Env: channel.Beach, DistanceM: 100, Seed: 44,
	})
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]int, 8)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	tx, err := b.Encode(bits)
	if err != nil {
		t.Fatal(err)
	}
	rx := link.Transmit(tx)
	got, _, ok := b.Decode(rx, len(bits))
	if !ok {
		t.Fatal("beacon sync failed at 100 m")
	}
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	if errs > 0 {
		t.Fatalf("%d/8 beacon bit errors at 100 m", errs)
	}
}

func BenchmarkBeaconDecode(b *testing.B) {
	bc, err := NewBeacon(20)
	if err != nil {
		b.Fatal(err)
	}
	bits := []int{1, 0, 1, 1, 0, 0, 1, 0}
	tx, err := bc.Encode(bits)
	if err != nil {
		b.Fatal(err)
	}
	rx := make([]float64, len(tx)+4800)
	dsp.AddAt(rx, tx, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := bc.Decode(rx, len(bits)); !ok {
			b.Fatal("sync failed")
		}
	}
}
