package phy

import (
	"testing"

	"aquago/internal/channel"
	"aquago/internal/modem"
)

func TestOneShotRoundTripClean(t *testing.T) {
	m := defaultModem(t)
	band := modem.Band{Lo: 5, Hi: 40}
	o, err := NewOneShot(m, band)
	if err != nil {
		t.Fatal(err)
	}
	pkt := Packet{Dst: 17, Payload: [2]byte{0xC0, 0xFE}}
	tx, err := o.Encode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	// Embed in a longer buffer with leading silence.
	rx := make([]float64, len(tx)+5000)
	copy(rx[3000:], tx)
	dec, ok := o.Decode(rx, 17)
	if !ok {
		t.Fatal("one-shot packet not decoded")
	}
	if dec.Packet.Payload != pkt.Payload {
		t.Fatalf("payload %x, want %x", dec.Packet.Payload, pkt.Payload)
	}
	if dec.Packet.Dst != 17 {
		t.Fatalf("dst %d", dec.Packet.Dst)
	}
	// Wrong recipient ignores the packet.
	if _, ok := o.Decode(rx, 18); ok {
		t.Fatal("packet for 17 decoded by 18")
	}
	// Promiscuous mode accepts it.
	if _, ok := o.Decode(rx, -1); !ok {
		t.Fatal("promiscuous decode failed")
	}
}

func TestOneShotThroughWater(t *testing.T) {
	m := defaultModem(t)
	band := modem.Band{Lo: 10, Hi: 45}
	o, err := NewOneShot(m, band)
	if err != nil {
		t.Fatal(err)
	}
	link, err := channel.NewLink(channel.LinkParams{
		Env: channel.Bridge, DistanceM: 5, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	pkt := Packet{Dst: 3, Payload: [2]byte{0x5A, 0xA5}}
	tx, err := o.Encode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	rx := link.Transmit(tx)
	dec, ok := o.Decode(rx, 3)
	if !ok {
		t.Fatal("one-shot packet lost through 5 m bridge water")
	}
	if dec.Packet.Payload != pkt.Payload {
		t.Fatalf("payload corrupted: %x", dec.Packet.Payload)
	}
}

func TestOneShotBandValidation(t *testing.T) {
	m := defaultModem(t)
	if _, err := NewOneShot(m, modem.Band{Lo: 50, Hi: 70}); err == nil {
		t.Fatal("invalid band accepted")
	}
}
