package phy

import (
	"errors"
	"fmt"

	"aquago/internal/adapt"
	"aquago/internal/channel"
	"aquago/internal/dsp"
	"aquago/internal/fec"
	"aquago/internal/modem"
)

// Medium abstracts the two directions of one conversation so the
// protocol can run over the channel simulator, recorded audio, or the
// multi-node medium in package sim. atS is the virtual transmit time
// in seconds, letting time-varying channels evolve between protocol
// stages exactly as they do between real transmissions.
type Medium interface {
	// Forward carries Alice -> Bob.
	Forward(tx []float64, atS float64) []float64
	// Backward carries Bob -> Alice.
	Backward(tx []float64, atS float64) []float64
}

// ChannelMedium adapts a forward/backward pair of channel links.
type ChannelMedium struct {
	F, B *channel.Link
}

// NewChannelMedium builds the forward link from p and derives the
// (non-reciprocal) backward link from it.
func NewChannelMedium(p channel.LinkParams) (*ChannelMedium, error) {
	f, err := channel.NewLink(p)
	if err != nil {
		return nil, err
	}
	b, err := f.Reverse()
	if err != nil {
		return nil, err
	}
	return &ChannelMedium{F: f, B: b}, nil
}

// Forward implements Medium.
func (c *ChannelMedium) Forward(tx []float64, atS float64) []float64 {
	return c.F.TransmitAt(tx, atS)
}

// Backward implements Medium.
func (c *ChannelMedium) Backward(tx []float64, atS float64) []float64 {
	return c.B.TransmitAt(tx, atS)
}

// Options configures one protocol instance.
type Options struct {
	// FixedBand, when non-nil, disables adaptation and transmits on
	// this band (the paper's fixed-bandwidth baselines: 60, 30 and 10
	// bins).
	FixedBand *modem.Band
	// DataOpts forwards ablation switches to the modem data path.
	DataOpts modem.DataOptions
	// HardDecision feeds the Viterbi decoder hard bit decisions
	// instead of soft reliabilities. Soft decoding lets the decoder
	// discount subcarriers in deep fades; hard decoding (the likely
	// configuration of the paper's implementation) makes wide fixed
	// bands fail exactly the way Fig 9d/12c report.
	HardDecision bool
	// SkipACK omits the acknowledgment round.
	SkipACK bool
	// ProcessingGapSymbols is Alice's silence between the header and
	// the data section (covers Bob's feedback and processing; the
	// paper estimates ~5 symbol intervals).
	ProcessingGapSymbols int
	// OnStage, when non-nil, receives a StageEvent after each protocol
	// stage concludes (preamble, SNR, band, feedback, data, ACK). See
	// trace.go; SetStageHook changes it after construction.
	OnStage func(StageEvent)
}

// Protocol runs the AquaApp packet exchange. Construct with New.
type Protocol struct {
	m     *modem.Modem
	sel   *adapt.Selector
	fb    *adapt.Feedback
	tones *Tones
	det   *modem.Detector
	codec *fec.Codec
	opts  Options
}

// New builds a protocol instance with the paper's component settings.
func New(m *modem.Modem, opts Options) *Protocol {
	if opts.ProcessingGapSymbols <= 0 {
		opts.ProcessingGapSymbols = 5
	}
	return &Protocol{
		m:     m,
		sel:   adapt.NewSelector(),
		fb:    adapt.NewFeedback(m),
		tones: NewTones(m),
		det:   modem.NewDetector(m),
		codec: fec.NewCodec(fec.Rate23, fec.TailBiting),
		opts:  opts,
	}
}

// Modem exposes the underlying modem (experiments need its config).
func (p *Protocol) Modem() *modem.Modem { return p.m }

// Selector exposes the band selector for parameter ablations.
func (p *Protocol) Selector() *adapt.Selector { return p.sel }

// Result reports everything that happened during one packet exchange,
// with the per-stage detail the paper's evaluation plots require.
type Result struct {
	// PreambleDetected: Bob's two-stage detector fired.
	PreambleDetected bool
	// DetectMetric is the sliding-correlation peak.
	DetectMetric float64
	// HeaderOK: the header tone matched Bob's device ID.
	HeaderOK bool
	// SNRdB is Bob's per-subcarrier estimate from the preamble.
	SNRdB []float64
	// BandOK: the adaptation algorithm found a feasible band.
	BandOK bool
	// Band is Bob's selected (or the fixed) band.
	Band modem.Band
	// FeedbackDecoded: Alice recovered a band from the feedback
	// symbol; FeedbackBand is what she recovered (it may differ from
	// Band — that mismatch is a real error mode the paper measures at
	// ~1 %).
	FeedbackDecoded bool
	FeedbackBand    modem.Band
	// BitrateBPS is the information rate implied by the used band.
	BitrateBPS float64
	// CodedBits/CodedErrors: pre-Viterbi (channel) bit statistics.
	CodedBits, CodedErrors int
	// InfoErrors: post-Viterbi payload bit errors.
	InfoErrors int
	// Decoded is the payload as Bob actually decoded it — dirty bits
	// included — valid once the data stage ran to completion, and equal
	// to the transmitted payload exactly when Delivered. The relay
	// layer's hop-conservation audit rides on it.
	Decoded [2]byte
	// Delivered: payload decoded exactly.
	Delivered bool
	// ACKReceived: Alice heard Bob's ACK.
	ACKReceived bool
}

// PER-style helpers.

// Failed reports packet failure (any payload bit error or an aborted
// exchange) — the paper's packet error definition.
func (r Result) Failed() bool { return !r.Delivered }

// ErrNoBand is reported via Result (BandOK=false) when even a single
// subcarrier cannot clear the SNR threshold; exported for tests.
var ErrNoBand = errors.New("phy: no feasible frequency band")

// Exchange runs one full packet exchange over the medium starting at
// virtual time atS, returning per-stage results. Bob is addressed by
// pkt.Dst; ground-truth payload bits allow exact BER accounting.
func (p *Protocol) Exchange(med Medium, pkt Packet, atS float64) (Result, error) {
	var res Result
	cfg := p.m.Config()
	fs := float64(cfg.SampleRate)
	now := atS

	// ---- Stage 1: Alice sends preamble + header. ----
	idSym, err := p.tones.IDSymbol(pkt.Dst)
	if err != nil {
		return res, err
	}
	tx1 := make([]float64, 0, p.m.PreambleLen()+len(idSym))
	tx1 = append(tx1, p.m.Preamble()...)
	tx1 = append(tx1, idSym...)
	rxBob := med.Forward(tx1, now)
	now += float64(len(tx1)) / fs

	det, ok := p.det.Detect(rxBob)
	res.PreambleDetected = ok
	res.DetectMetric = det.Metric
	if !ok {
		p.emit(StageEvent{Stage: StagePreamble, AtS: now, Metric: det.Metric})
		return res, nil
	}
	// Header check: scan offsets across the symbol's cyclic prefix so
	// multipath timing skew cannot hide the ID tone, accepting either
	// any single matching window or the scan-integrated decision.
	hdrOff := det.Offset + p.m.PreambleLen()
	var hdrOffsets []int
	for delta := -cfg.CPLen; delta <= cfg.CPLen; delta += 8 {
		hdrOffsets = append(hdrOffsets, hdrOff+delta)
		hdr, err := p.tones.DecodeTone(rxBob, hdrOff+delta)
		if err == nil && hdr.MatchesTone(int(pkt.Dst)) {
			res.HeaderOK = true
		}
	}
	if !res.HeaderOK {
		if agg, err := p.tones.DecodeToneIntegrated(rxBob, hdrOffsets); err == nil &&
			agg.MatchesTone(int(pkt.Dst)) {
			res.HeaderOK = true
		}
	}
	p.emit(StageEvent{Stage: StagePreamble, AtS: now, OK: res.HeaderOK, Metric: det.Metric})
	if !res.HeaderOK {
		return res, nil
	}

	// ---- Stage 2: Bob estimates SNR and selects the band. ----
	preEnd := det.Offset + p.m.PreambleLen()
	if preEnd > len(rxBob) {
		return res, nil
	}
	est, err := p.m.EstimateChannel(rxBob[det.Offset:preEnd])
	if err != nil {
		return res, err
	}
	res.SNRdB = est.SNRdB
	p.emit(StageEvent{Stage: StageSNR, AtS: now, OK: true, Metric: dsp.Mean(est.SNRdB), SNRdB: est.SNRdB})
	var band modem.Band
	if p.opts.FixedBand != nil {
		band = *p.opts.FixedBand
		res.BandOK = true
	} else {
		band, ok = p.sel.Select(est.SNRdB)
		res.BandOK = ok
	}
	p.emit(StageEvent{Stage: StageBand, AtS: now, OK: res.BandOK, Band: band})
	if !res.BandOK {
		return res, nil
	}
	res.Band = band
	res.BitrateBPS = adapt.BitrateBPS(band, cfg, 2.0/3.0)

	// ---- Stage 3: Bob sends feedback; Alice decodes it. ----
	usedBand := band
	if p.opts.FixedBand == nil {
		fbSym, err := p.fb.Encode(band)
		if err != nil {
			return res, err
		}
		rxAlice := med.Backward(fbSym, now)
		now += float64(len(fbSym)) / fs
		got, ok := p.fb.Decode(rxAlice, cfg.N(), 8)
		res.FeedbackDecoded = ok
		p.emit(StageEvent{Stage: StageFeedback, AtS: now, OK: ok, Band: got})
		if !ok {
			return res, nil
		}
		res.FeedbackBand = got
		usedBand = got // Alice transmits on what she heard
	} else {
		res.FeedbackDecoded = true
		res.FeedbackBand = band
		p.emit(StageEvent{Stage: StageFeedback, AtS: now, OK: true, Band: band})
	}

	// ---- Stage 4: Alice transmits the data section. ----
	now += float64(p.opts.ProcessingGapSymbols*cfg.SymbolLen()) / fs
	payload := pkt.PayloadBitSlice()
	coded := p.codec.Encode(payload)
	il, err := fec.NewInterleaver(usedBand.Width(), len(coded))
	if err != nil {
		return res, err
	}
	grid, err := il.Interleave(coded)
	if err != nil {
		return res, err
	}
	dataTx, err := p.m.ModulateData(grid, usedBand, p.opts.DataOpts)
	if err != nil {
		return res, err
	}
	rxData := med.Forward(dataTx, now)
	now += float64(len(dataTx)) / fs

	// ---- Stage 5: Bob locates and decodes the data. ----
	// Bob expects the data on *his* selected band; if Alice used a
	// different band (feedback error) decoding degrades — that is the
	// real failure mode.
	start := p.findDataStart(rxData, band)
	soft, err := p.m.DemodulateData(rxData[start:], band, len(grid), p.opts.DataOpts)
	if err != nil {
		// Too short after a sync error: packet lost.
		p.emit(StageEvent{Stage: StageData, AtS: now, Band: band})
		return res, nil
	}
	// Pre-Viterbi accounting against ground truth.
	if band == usedBand {
		hard := modem.HardBits(soft)
		res.CodedBits = len(grid)
		for i := range grid {
			if hard[i] != grid[i] {
				res.CodedErrors++
			}
		}
	}
	ilBob, err := fec.NewInterleaver(band.Width(), p.codec.CodedLen(PayloadBits))
	if err != nil {
		return res, err
	}
	deSoft, err := ilBob.DeinterleaveSoft(soft)
	if err != nil {
		return res, err
	}
	if p.opts.HardDecision {
		for i, v := range deSoft {
			if v >= 0 {
				deSoft[i] = 1
			} else {
				deSoft[i] = -1
			}
		}
	}
	decoded, err := p.codec.DecodeSoft(deSoft, PayloadBits)
	if err != nil {
		return res, err
	}
	for i := range payload {
		if decoded[i] != payload[i] {
			res.InfoErrors++
		}
	}
	copy(res.Decoded[:], fec.BytesFromBits(decoded))
	res.Delivered = res.InfoErrors == 0
	p.emit(StageEvent{Stage: StageData, AtS: now, OK: res.Delivered, Band: band, BitErrors: res.InfoErrors})

	// ---- Stage 6: Bob ACKs. ----
	if !p.opts.SkipACK && res.Delivered {
		ackSym, err := p.tones.ACKSymbol()
		if err != nil {
			return res, err
		}
		rxAck := med.Backward(ackSym, now)
		res.ACKReceived = p.tones.DetectACK(rxAck, 0.3)
		p.emit(StageEvent{Stage: StageACK, AtS: now, OK: res.ACKReceived})
	}
	return res, nil
}

// findDataStart cross-correlates the received data section against the
// band-limited training waveform to locate the first sample of the
// training symbol (the paper's "cross-correlation and energy detection
// in every OFDM symbol interval").
func (p *Protocol) findDataStart(rx []float64, band modem.Band) int {
	ref, err := p.m.TrainingSymbol(band)
	if err != nil {
		return 0
	}
	searchLen := min(len(rx), len(ref)+2*p.m.Config().SymbolLen())
	if searchLen <= len(ref) {
		return 0
	}
	corr := dsp.NormalizedCrossCorrelate(rx[:searchLen], ref)
	best := dsp.ArgMax(corr)
	if best < 0 {
		return 0
	}
	return best
}

// ProbeChannelStability runs the Fig 16 experiment primitive: Alice
// sends a preamble, Bob selects a band; after gapS seconds (the
// feedback/processing interval) Alice sends a second preamble and Bob
// reports the minimum SNR inside the previously selected band. The
// returned ok is false if detection or selection failed.
func (p *Protocol) ProbeChannelStability(med Medium, atS, gapS float64) (minSNR float64, band modem.Band, ok bool) {
	rx1 := med.Forward(p.m.Preamble(), atS)
	det1, found := p.det.Detect(rx1)
	if !found {
		return 0, band, false
	}
	end1 := det1.Offset + p.m.PreambleLen()
	if end1 > len(rx1) {
		return 0, band, false
	}
	est1, err := p.m.EstimateChannel(rx1[det1.Offset:end1])
	if err != nil {
		return 0, band, false
	}
	band, found = p.sel.Select(est1.SNRdB)
	if !found {
		return 0, band, false
	}
	rx2 := med.Forward(p.m.Preamble(), atS+gapS)
	det2, found := p.det.Detect(rx2)
	if !found {
		return 0, band, false
	}
	end2 := det2.Offset + p.m.PreambleLen()
	if end2 > len(rx2) {
		return 0, band, false
	}
	est2, err := p.m.EstimateChannel(rx2[det2.Offset:end2])
	if err != nil {
		return 0, band, false
	}
	// Report the SNR the data transmission would see: raw subcarrier
	// SNR plus the power-reallocation gain of the selected band (the
	// data concentrates full transmit power into band.Width() bins).
	gain := p.sel.EffectiveSNR(0, band.Width(), p.m.Config().NumBins())
	return est2.MinSNRInBand(band) + gain, band, true
}

// PacketAirtimeS estimates the on-air duration of one full exchange
// for a given band (preamble + header + gap + data + ACK), used by
// the MAC's backoff quantum.
func (p *Protocol) PacketAirtimeS(band modem.Band) float64 {
	cfg := p.m.Config()
	fs := float64(cfg.SampleRate)
	n := p.m.PreambleLen() // preamble
	n += cfg.SymbolLen()   // header
	n += p.opts.ProcessingGapSymbols * cfg.SymbolLen()
	n += cfg.SymbolLen() // feedback
	n += p.m.DataLen(p.codec.CodedLen(PayloadBits), band)
	n += cfg.SymbolLen() // ACK
	return float64(n) / fs
}

// String summarizes a result for logs.
func (r Result) String() string {
	switch {
	case !r.PreambleDetected:
		return "lost:preamble"
	case !r.HeaderOK:
		return "lost:header"
	case !r.BandOK:
		return "lost:no-band"
	case !r.FeedbackDecoded:
		return "lost:feedback"
	case !r.Delivered:
		return fmt.Sprintf("error:%d-bit", r.InfoErrors)
	default:
		return fmt.Sprintf("ok:%.0fbps", r.BitrateBPS)
	}
}
