// Package seq generates the deterministic sequences the modem is built
// on: Zadoff-Chu (CAZAC) sequences for the OFDM preamble and channel
// estimation, and LFSR-based pseudo-noise sequences for the preamble's
// segment sign pattern.
package seq

import (
	"fmt"
	"math"
)

// ZadoffChu returns the length-n Zadoff-Chu sequence with root u:
//
//	x[k] = exp(-i*pi*u*k*(k+1)/n)        for odd n
//	x[k] = exp(-i*pi*u*k^2/n)            for even n
//
// Zadoff-Chu sequences are CAZAC (constant amplitude, zero
// autocorrelation): every element has unit magnitude and the periodic
// autocorrelation is zero at all non-zero lags when gcd(u, n) == 1.
// The paper fills the preamble's OFDM bins with a CAZAC sequence for
// its unit peak-to-average power ratio and sharp correlation.
//
// ZadoffChu panics if n < 1, u < 1, or gcd(u, n) != 1.
func ZadoffChu(u, n int) []complex128 {
	if n < 1 || u < 1 || u >= n {
		panic(fmt.Sprintf("seq: invalid Zadoff-Chu parameters u=%d n=%d", u, n))
	}
	if gcd(u, n) != 1 {
		panic(fmt.Sprintf("seq: Zadoff-Chu root %d not coprime with length %d", u, n))
	}
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var num int64
		if n%2 == 1 {
			num = int64(k) * int64(k+1)
		} else {
			num = int64(k) * int64(k)
		}
		// Reduce the phase index modulo 2n to keep float precision.
		num = (num * int64(u)) % int64(2*n)
		phase := -math.Pi * float64(num) / float64(n)
		s, c := math.Sincos(phase)
		out[k] = complex(c, s)
	}
	return out
}

// PeriodicAutocorrelation returns |R(lag)| / n of the sequence at the
// given circular lag — a test/diagnostic helper for the CAZAC property.
func PeriodicAutocorrelation(x []complex128, lag int) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	lag = ((lag % n) + n) % n
	var acc complex128
	for k := 0; k < n; k++ {
		acc += x[k] * conj(x[(k+lag)%n])
	}
	return cabs(acc) / float64(n)
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }

func cabs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
