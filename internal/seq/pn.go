package seq

import "fmt"

// PreamblePN is the fixed 8-element sign pattern the paper multiplies
// onto the eight identical preamble OFDM symbols ([-1,1,1,1,1,1,-1,1])
// to sharpen the sliding-correlation timing metric and suppress its
// side lobes.
var PreamblePN = [8]int{-1, 1, 1, 1, 1, 1, -1, 1}

// LFSR is a Galois linear-feedback shift register producing maximal-
// length (m-sequence) pseudo-noise bits. Used for training payloads
// and synthetic test data.
type LFSR struct {
	state uint32
	taps  uint32
	bits  uint
}

// NewLFSR returns an LFSR of the given register width (one of 2-10,
// 15, 16, 23, 31 bits) with a primitive feedback polynomial chosen
// from a built-in table, seeded with the given non-zero state.
func NewLFSR(width uint, seed uint32) *LFSR {
	// Galois tap masks: bit e-1 set for each polynomial term x^e
	// (constant term excluded). All polynomials are primitive, so the
	// register walks all 2^width-1 non-zero states.
	table := map[uint]uint32{
		2:  0b11,                              // x^2+x+1
		3:  0b110,                             // x^3+x^2+1
		4:  0b1100,                            // x^4+x^3+1
		5:  0b10100,                           // x^5+x^3+1
		6:  0b110000,                          // x^6+x^5+1
		7:  0b1100000,                         // x^7+x^6+1
		8:  0b10111000,                        // x^8+x^6+x^5+x^4+1
		9:  0b100010000,                       // x^9+x^5+1
		10: 0b1001000000,                      // x^10+x^7+1
		15: 0b110000000000000,                 // x^15+x^14+1
		16: 0b1011010000000000,                // x^16+x^14+x^13+x^11+1
		23: 0b10000100000000000000000,         // x^23+x^18+1
		31: 0b1001000000000000000000000000000, // x^31+x^28+1
	}
	taps, ok := table[width]
	if !ok {
		panic(fmt.Sprintf("seq: unsupported LFSR width %d", width))
	}
	mask := uint32(1)<<width - 1
	seed &= mask
	if seed == 0 {
		seed = 1
	}
	return &LFSR{state: seed, taps: taps, bits: width}
}

// NextBit advances the register one Galois step and returns the
// output bit.
func (l *LFSR) NextBit() int {
	out := l.state & 1
	l.state >>= 1
	if out == 1 {
		l.state ^= l.taps
	}
	return int(out)
}

// Bits returns the next n output bits.
func (l *LFSR) Bits(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = l.NextBit()
	}
	return out
}

// Signs returns the next n outputs mapped to ±1 (0 -> +1, 1 -> -1).
func (l *LFSR) Signs(n int) []int {
	out := make([]int, n)
	for i := range out {
		if l.NextBit() == 1 {
			out[i] = -1
		} else {
			out[i] = 1
		}
	}
	return out
}

// Period returns the sequence period for a maximal-length register of
// this width (2^width - 1).
func (l *LFSR) Period() int { return int(uint32(1)<<l.bits - 1) }
