package seq

import (
	"math"
	"testing"
)

func TestZadoffChuConstantAmplitude(t *testing.T) {
	for _, c := range []struct{ u, n int }{{1, 60}, {7, 60}, {1, 63}, {5, 64}, {7, 120}} {
		z := ZadoffChu(c.u, c.n)
		if len(z) != c.n {
			t.Fatalf("u=%d n=%d: length %d", c.u, c.n, len(z))
		}
		for k, v := range z {
			if math.Abs(cabs(v)-1) > 1e-12 {
				t.Fatalf("u=%d n=%d: |z[%d]| = %g, want 1", c.u, c.n, k, cabs(v))
			}
		}
	}
}

func TestZadoffChuZeroAutocorrelation(t *testing.T) {
	// CAZAC property: periodic autocorrelation vanishes at all
	// non-zero lags when gcd(u, n) = 1.
	for _, c := range []struct{ u, n int }{{1, 63}, {5, 63}, {7, 60}, {11, 60}} {
		z := ZadoffChu(c.u, c.n)
		if r := PeriodicAutocorrelation(z, 0); math.Abs(r-1) > 1e-9 {
			t.Fatalf("u=%d n=%d: R(0) = %g, want 1", c.u, c.n, r)
		}
		for lag := 1; lag < c.n; lag++ {
			if r := PeriodicAutocorrelation(z, lag); r > 1e-9 {
				t.Fatalf("u=%d n=%d: |R(%d)| = %g, want 0", c.u, c.n, lag, r)
			}
		}
	}
}

func TestZadoffChuDistinctRoots(t *testing.T) {
	a := ZadoffChu(1, 63)
	b := ZadoffChu(2, 63)
	same := true
	for i := range a {
		if cabs(a[i]-b[i]) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different roots produced identical sequences")
	}
}

func TestZadoffChuValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("u=0", func() { ZadoffChu(0, 10) })
	mustPanic("n=0", func() { ZadoffChu(1, 0) })
	mustPanic("not coprime", func() { ZadoffChu(2, 10) })
	mustPanic("u >= n", func() { ZadoffChu(10, 10) })
}

func TestPreamblePNPattern(t *testing.T) {
	want := [8]int{-1, 1, 1, 1, 1, 1, -1, 1}
	if PreamblePN != want {
		t.Fatalf("PreamblePN = %v, want %v", PreamblePN, want)
	}
}

func TestLFSRMaximalPeriod(t *testing.T) {
	for _, width := range []uint{3, 4, 5, 6, 7, 8, 9, 10} {
		l := NewLFSR(width, 1)
		period := l.Period()
		if period != (1<<width)-1 {
			t.Fatalf("width %d: Period() = %d", width, period)
		}
		// The state must return to the seed after exactly `period`
		// steps and not before.
		seen := map[uint32]bool{}
		state := l.state
		for i := 0; i < period; i++ {
			if seen[l.state] {
				t.Fatalf("width %d: state repeated before full period at step %d", width, i)
			}
			seen[l.state] = true
			l.NextBit()
		}
		if l.state != state {
			t.Fatalf("width %d: state did not return to seed after period", width)
		}
	}
}

func TestLFSRBalance(t *testing.T) {
	// A maximal-length sequence of width w has 2^(w-1) ones and
	// 2^(w-1)-1 zeros per period.
	l := NewLFSR(8, 0xAB)
	bits := l.Bits(l.Period())
	ones := 0
	for _, b := range bits {
		ones += b
	}
	if ones != 128 {
		t.Fatalf("ones = %d, want 128", ones)
	}
}

func TestLFSRSigns(t *testing.T) {
	l := NewLFSR(8, 1)
	s := l.Signs(100)
	for i, v := range s {
		if v != 1 && v != -1 {
			t.Fatalf("sign %d = %d", i, v)
		}
	}
}

func TestLFSRZeroSeedCoerced(t *testing.T) {
	l := NewLFSR(8, 0)
	// Must not be stuck at all-zero state.
	bits := l.Bits(16)
	any := false
	for _, b := range bits {
		if b != 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("zero seed produced the all-zero sequence")
	}
}

func TestLFSRUnsupportedWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported width")
		}
	}()
	NewLFSR(12, 1)
}

func TestLFSRDeterminism(t *testing.T) {
	a := NewLFSR(10, 77).Bits(200)
	b := NewLFSR(10, 77).Bits(200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
}
