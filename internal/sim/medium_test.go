package sim

import (
	"math"
	"testing"

	"aquago/internal/channel"
	"aquago/internal/dsp"
)

// TestPruneBoundaryBusyAudibility pins Prune's drop boundary against
// carrier sense: for any horizon, a pruned medium must answer BusyAt
// exactly like an unpruned one for every poll at or after the horizon
// — in particular, a transmission still audible somewhere (end time
// plus worst-case propagation delay) must survive a prune at horizons
// up to that boundary, and polls within maxFutureDurS of the horizon
// must keep hearing it.
func TestPruneBoundaryBusyAudibility(t *testing.T) {
	tr := Transmission{From: 0, StartS: 1.0, DurS: 0.6}
	const maxFuture = 0.6
	build := func() *Medium {
		m := New(channel.Bridge) // MaxRangeM 20 -> maxDelay ~13.3 ms
		m.AddNode(Position{X: 0, Z: 1})
		m.AddNode(Position{X: 15, Z: 1})
		m.Transmit(tr)
		return m
	}
	ref := build()
	boundary := tr.EndS() + ref.maxDelayS()
	horizons := []float64{
		tr.StartS,        // transmission still on the air
		tr.EndS(),        // just ended, still propagating
		boundary - 0.01,  // audible at the horizon itself
		boundary,         // exact drop boundary
		boundary + 0.01,  // safely droppable
		tr.StartS + 0.55, // inside the collision window of a future start
	}
	for _, h := range horizons {
		pruned := build()
		pruned.Prune(h, maxFuture)
		for tS := h; tS <= h+maxFuture+1.0; tS += 0.01 {
			want := ref.BusyAt(1, tS)
			got := pruned.BusyAt(1, tS)
			if want != got {
				t.Fatalf("horizon %.4f, poll %.4f: pruned BusyAt=%v, unpruned=%v",
					h, tS, got, want)
			}
		}
	}
}

// TestPruneBoundaryCollisionAccounting pins the second prune clause: a
// transmission must survive any horizon from which a future start
// (>= horizon, duration <= maxFutureDurS) could still collide with it,
// so CollisionStats after prune+future-traffic matches the unpruned
// ledger.
func TestPruneBoundaryCollisionAccounting(t *testing.T) {
	tr := Transmission{From: 0, StartS: 1.0, DurS: 0.6}
	const maxFuture = 0.6
	build := func() *Medium {
		m := New(channel.Bridge)
		m.AddNode(Position{X: 0, Z: 1})
		m.AddNode(Position{X: 15, Z: 1})
		m.Transmit(tr)
		return m
	}
	for _, h := range []float64{1.3, 1.55, 1.6, 1.61, 2.0} {
		ref := build()
		pruned := build()
		pruned.Prune(h, maxFuture)
		future := Transmission{From: 1, StartS: h, DurS: maxFuture, Seq: 1}
		ref.Transmit(future)
		pruned.Transmit(future)
		refPer, refFrac := ref.CollisionStats()
		gotPer, gotFrac := pruned.CollisionStats()
		if refFrac != gotFrac {
			t.Fatalf("horizon %.3f: collision fraction %v after prune, want %v", h, gotFrac, refFrac)
		}
		for node, want := range refPer {
			if gotPer[node] != want {
				t.Fatalf("horizon %.3f node %d: counts %v after prune, want %v",
					h, node, gotPer[node], want)
			}
		}
	}
}

// TestWaveBankInterferenceMatchesReceiveWindow checks that the bank's
// unlimited-range mix is exactly the WaveMedium window minus noise.
func TestWaveBankInterferenceMatchesReceiveWindow(t *testing.T) {
	w := NewWaveMedium(channel.Bridge, 48000, 71)
	a := w.AddNode(Position{X: 0, Z: 1})
	b := w.AddNode(Position{X: 6, Z: 1})
	rx := w.AddNode(Position{X: 3, Y: 2, Z: 1})
	w.TransmitWave(a, 0.01, 0, dsp.Tone(2000, 0.1, 48000))
	w.TransmitWave(b, 0.05, 0, dsp.Tone(3000, 0.1, 48000))

	out := make([]float64, 48000/5)
	pow, err := w.bank.Interference(out, rx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := dsp.Power(out); math.Abs(pow-want) > 1e-15 {
		t.Fatalf("interference power %g, want the window's mean square %g", pow, want)
	}
	win, err := w.ReceiveWindow(rx, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// win = interference + one noise dose with the same seed recipe
	// (compare with a rounding allowance: the window sums in place).
	noise := make([]float64, len(out))
	w.bank.AmbientNoise(noise, rx, 0)
	for i := range out {
		if diff := math.Abs(win[i] - out[i] - noise[i]); diff > 1e-12 {
			t.Fatalf("sample %d: window %g != interference %g + noise %g", i, win[i], out[i], noise[i])
		}
	}
}

// TestWaveBankRangeAndExclusion: waves from excluded nodes or beyond
// the range bound must not leak into a mix.
func TestWaveBankRangeAndExclusion(t *testing.T) {
	med := New(channel.Bridge)
	near := med.AddNode(Position{X: 0, Z: 1})
	far := med.AddNode(Position{X: 500, Z: 1})
	rx := med.AddNode(Position{X: 4, Z: 1})
	bank := NewWaveBank(med, 48000, 9)
	bank.Add(near, 0.01, 0, dsp.Tone(2000, 0.1, 48000))
	bank.Add(far, 0.01, 0, dsp.Tone(2500, 0.1, 48000))

	mix := func(rangeM float64, exclude ...int) float64 {
		out := make([]float64, 48000/5)
		pow, err := bank.Interference(out, rx, 0, rangeM, exclude...)
		if err != nil {
			t.Fatal(err)
		}
		if peak := dsp.MaxAbs(out); (pow == 0) != (peak == 0) {
			t.Fatalf("interference power %g inconsistent with mixed peak %g", pow, peak)
		}
		return dsp.MaxAbs(out)
	}
	if m := mix(0); m == 0 {
		t.Fatal("unlimited range heard nothing")
	}
	// A 10 m bound excludes the 500 m transmitter but keeps the near one.
	if m := mix(10); m == 0 {
		t.Fatal("range bound silenced an in-range transmitter")
	}
	if m := mix(10, near); m != 0 {
		t.Fatalf("excluded near node still audible (peak %g)", m)
	}
	if m := mix(2); m != 0 {
		t.Fatalf("2 m range still hears a 4 m transmitter (peak %g)", m)
	}
}

// TestWaveBankPrune: waves drop only once inaudible everywhere.
func TestWaveBankPrune(t *testing.T) {
	med := New(channel.Bridge)
	med.AddNode(Position{X: 0, Z: 1})
	med.AddNode(Position{X: 10, Z: 1})
	bank := NewWaveBank(med, 48000, 1)
	bank.Add(0, 0, 0, dsp.Tone(2000, 0.5, 48000))
	boundary := 0.5 + med.maxDelayS() + waveTailS
	bank.Prune(boundary - 0.01)
	if bank.NumWaves() != 1 {
		t.Fatal("prune dropped a wave still inside the audibility tail")
	}
	bank.Prune(boundary + 0.01)
	if bank.NumWaves() != 0 {
		t.Fatal("prune kept a wave past its audibility tail")
	}
}

// TestWaveBankInterferencePowerAccounting pins the per-window
// interferer power: it measures only what the bank added (independent
// of the direct signal already in the window), is zero with nothing
// audible, and falls with interferer distance — the geometry knob SIR
// capture studies sweep.
func TestWaveBankInterferencePowerAccounting(t *testing.T) {
	powerAt := func(dM float64) float64 {
		med := New(channel.Bridge)
		rx := med.AddNode(Position{X: 0, Z: 1})
		itf := med.AddNode(Position{X: dM, Z: 1})
		bank := NewWaveBank(med, 48000, 21)
		bank.Add(itf, 0, 0, dsp.Tone(2500, 0.1, 48000))
		// Pre-load the window with a "direct signal": the reported
		// power must not include it.
		out := dsp.Tone(2000, 0.2, 48000)
		before := append([]float64(nil), out...)
		pow, err := bank.Interference(out, rx, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		added := make([]float64, len(out))
		for i := range out {
			added[i] = out[i] - before[i]
		}
		if want := dsp.Power(added); math.Abs(pow-want) > 1e-12*math.Max(want, 1) {
			t.Fatalf("d=%g m: power %g, want mean square of added samples %g", dM, pow, want)
		}
		return pow
	}
	near, far := powerAt(5), powerAt(60)
	if near <= 0 || far <= 0 {
		t.Fatalf("audible interferers reported zero power (near %g, far %g)", near, far)
	}
	if far >= near {
		t.Fatalf("interferer power did not fall with distance: %g at 5 m vs %g at 60 m", near, far)
	}

	// Nothing audible (range bound) -> exactly zero.
	med := New(channel.Bridge)
	rx := med.AddNode(Position{X: 0, Z: 1})
	itf := med.AddNode(Position{X: 500, Z: 1})
	bank := NewWaveBank(med, 48000, 21)
	bank.Add(itf, 0, 0, dsp.Tone(2500, 0.1, 48000))
	out := make([]float64, 48000/10)
	pow, err := bank.Interference(out, rx, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pow != 0 {
		t.Fatalf("out-of-range interferer reported power %g, want 0", pow)
	}
}

// TestWaveBankInterferenceOrderIndependent: the mix must be
// bit-identical regardless of the order waves were registered in
// (concurrent out-of-range exchanges append in wall-clock order).
func TestWaveBankInterferenceOrderIndependent(t *testing.T) {
	mix := func(order [2]int) []float64 {
		med := New(channel.Bridge)
		med.AddNode(Position{X: 0, Z: 1})
		med.AddNode(Position{X: 6, Z: 1})
		rx := med.AddNode(Position{X: 3, Y: 2, Z: 1})
		bank := NewWaveBank(med, 48000, 5)
		waves := [2]struct {
			from   int
			startS float64
			tone   float64
		}{{0, 0.03, 2000}, {1, 0.01, 3000}}
		for _, i := range order {
			w := waves[i]
			bank.Add(w.from, w.startS, 0, dsp.Tone(w.tone, 0.1, 48000))
		}
		out := make([]float64, 48000/5)
		if _, err := bank.Interference(out, rx, 0, 0); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := mix([2]int{0, 1}), mix([2]int{1, 0})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs with registration order: %g vs %g", i, a[i], b[i])
		}
	}
}
