package sim

import (
	"fmt"
	"math"

	"aquago/internal/channel"
)

// Endpoint carries the per-node acoustic properties that shape the
// links a node participates in. The zero value uses the channel
// package defaults (Galaxy S9, static).
type Endpoint struct {
	Device channel.Device
	Motion channel.Motion
}

// Links lazily builds and caches a directed channel.Link for every
// (tx, rx) node pair of a Medium, deriving link geometry (distance,
// depths) from node positions. It is the waveform-level counterpart
// of the envelope medium: protocol exchanges between two nodes run
// over the pair's links while the envelope side does carrier sense
// and collision accounting. Each directed link owns its own noise and
// multipath realization seeded per pair, so exchanges on one pair are
// deterministic regardless of what other pairs carry.
//
// Links is not safe for concurrent use; callers (the public Network)
// serialize access.
type Links struct {
	med        *Medium
	sampleRate int
	seed       int64
	noiseOff   bool
	endpoints  map[int]Endpoint
	cache      map[[2]int]*channel.Link
}

// NewLinks wraps a medium. noiseOff disables per-link ambient noise
// for callers that inject noise once per receiver window (WaveMedium).
func NewLinks(med *Medium, sampleRate int, seed int64, noiseOff bool) *Links {
	return &Links{
		med:        med,
		sampleRate: sampleRate,
		seed:       seed,
		noiseOff:   noiseOff,
		endpoints:  make(map[int]Endpoint),
		cache:      make(map[[2]int]*channel.Link),
	}
}

// SetEndpoint records a node's acoustic properties. It must run
// before the node's first link is built; later calls have no effect
// on cached links.
func (ls *Links) SetEndpoint(node int, ep Endpoint) { ls.endpoints[node] = ep }

// Link returns (building on first use) the directed channel from node
// tx to node rx.
func (ls *Links) Link(tx, rx int) (*channel.Link, error) {
	key := [2]int{tx, rx}
	if l, ok := ls.cache[key]; ok {
		return l, nil
	}
	l, err := ls.buildLink(tx, rx)
	if err != nil {
		return nil, err
	}
	ls.cache[key] = l
	return l, nil
}

// InvalidateNode drops every cached directed link touching the node —
// the link layer's position-epoch hook: after a move, the node's pair
// geometry is stale, and the next Link/Pair rebuilds it (impulse
// response, delays, noise realization) from the medium's current
// positions. Links of unmoved pairs keep their state, so their
// channel evolution is untouched by someone else's motion.
func (ls *Links) InvalidateNode(node int) {
	//aqualint:order-independent each key is tested against the moved node and deleted independently; the surviving cache is the same whatever order the entries are visited in
	for key := range ls.cache {
		if key[0] == node || key[1] == node {
			delete(ls.cache, key)
		}
	}
}

// buildLink constructs the directed channel from node geometry and
// the endpoints' properties, bypassing the cache.
func (ls *Links) buildLink(tx, rx int) (*channel.Link, error) {
	n := ls.med.NumNodes()
	if tx < 0 || tx >= n || rx < 0 || rx >= n || tx == rx {
		return nil, fmt.Errorf("sim: no link between nodes %d and %d", tx, rx)
	}
	pt, pr := ls.med.positions[tx], ls.med.positions[rx]
	dist := pt.DistanceTo(pr)
	if dist < 0.5 {
		dist = 0.5
	}
	et, er := ls.endpoints[tx], ls.endpoints[rx]
	return channel.NewLink(channel.LinkParams{
		Env:        ls.med.env,
		DistanceM:  dist,
		TxDepthM:   clampDepth(pt.Z, ls.med.env.DepthM),
		RxDepthM:   clampDepth(pr.Z, ls.med.env.DepthM),
		TxDevice:   et.Device,
		RxDevice:   er.Device,
		Motion:     strongerMotion(et.Motion, er.Motion),
		SampleRate: ls.sampleRate,
		Seed:       ls.seed + int64(tx)*1009 + int64(rx)*9176,
		NoiseOff:   ls.noiseOff,
	})
}

// strongerMotion combines two endpoints' motion into the link's: the
// channel varies as fast as the faster-moving end.
func strongerMotion(a, b channel.Motion) channel.Motion {
	if b.AccelMS2 > a.AccelMS2 || b.SpeedMS > a.SpeedMS {
		return b
	}
	return a
}

func clampDepth(z, depth float64) float64 {
	if z <= 0 {
		return 1
	}
	if z >= depth {
		return depth - 0.5
	}
	return z
}

// PairSNRdB estimates the per-direction channel quality of a node
// pair: the in-band SNR a unit-power transmission from a would enjoy
// at b's ear (fwd) and vice versa (bwd), in dB. The estimate is the
// composite impulse response's energy over the receiver's ambient
// in-band noise power — the same links an exchange would use, but
// freshly built (never the cache), so probing quality shares no
// mutable state with live traffic. Noise-free link sets (NoiseOff)
// report +Inf. Deterministic: same seeds, same geometry, same answer.
func (ls *Links) PairSNRdB(a, b int) (fwd, bwd float64, err error) {
	fl, err := ls.buildLink(a, b)
	if err != nil {
		return 0, 0, err
	}
	bl, err := ls.buildLink(b, a)
	if err != nil {
		return 0, 0, err
	}
	return linkSNRdB(fl), linkSNRdB(bl), nil
}

// linkSNRdB reduces one directed link to a scalar quality: received
// signal energy (sum of squared impulse-response taps, which includes
// device TX level and filter chains) over ambient noise power.
func linkSNRdB(l *channel.Link) float64 {
	var sig float64
	for _, h := range l.ImpulseResponse() {
		sig += h * h
	}
	n := l.InBandNoiseRMS()
	if n <= 0 {
		return math.Inf(1)
	}
	if sig <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(sig/(n*n))
}

// PairMedium adapts one node pair into the protocol's two-direction
// medium contract (it satisfies phy.Medium): Forward carries a -> b,
// Backward carries b -> a. Both directed links are built eagerly so
// the sample-path methods cannot fail.
type PairMedium struct {
	fwd, bwd *channel.Link
}

// Pair returns the (a, b) pair medium, building both directed links
// through the cache (the result shares link state with every other
// Pair of the same nodes — serialize access with them).
func (ls *Links) Pair(a, b int) (*PairMedium, error) {
	fwd, err := ls.Link(a, b)
	if err != nil {
		return nil, err
	}
	bwd, err := ls.Link(b, a)
	if err != nil {
		return nil, err
	}
	return &PairMedium{fwd: fwd, bwd: bwd}, nil
}

// DetachedPair builds a pair medium with the same parameters and
// seeds as Pair — so it realizes the identical channel — but with
// freshly constructed links that share no mutable state with the
// cache. Callers may drive it independently of (and concurrently
// with) the owning network's own exchanges.
func (ls *Links) DetachedPair(a, b int) (*PairMedium, error) {
	fwd, err := ls.buildLink(a, b)
	if err != nil {
		return nil, err
	}
	bwd, err := ls.buildLink(b, a)
	if err != nil {
		return nil, err
	}
	return &PairMedium{fwd: fwd, bwd: bwd}, nil
}

// Forward carries a -> b at virtual time atS.
func (pm *PairMedium) Forward(tx []float64, atS float64) []float64 {
	return pm.fwd.TransmitAt(tx, atS)
}

// Backward carries b -> a at virtual time atS.
func (pm *PairMedium) Backward(tx []float64, atS float64) []float64 {
	return pm.bwd.TransmitAt(tx, atS)
}
