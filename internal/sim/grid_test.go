package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestGridWithinMatchesBrute checks the range query against the O(N)
// scan over random scatters, including draws quantized to cell-pitch
// fractions so nodes straddle cell boundaries and distances hit the
// radius exactly.
func TestGridWithinMatchesBrute(t *testing.T) {
	for _, cell := range []float64{7.5, 30} {
		for seed := int64(1); seed <= 4; seed++ {
			rng := rand.New(rand.NewSource(seed * 2357))
			g := NewGrid(cell)
			var pts []Position
			for i := 0; i < 150; i++ {
				p := Position{
					X: (rng.Float64() - 0.5) * 6 * cell,
					Y: (rng.Float64() - 0.5) * 6 * cell,
					Z: rng.Float64() * cell,
				}
				if rng.Intn(2) == 0 {
					// Snap to half-cell pitch: exact boundary straddles.
					p.X = float64(int(p.X/(cell/2))) * (cell / 2)
					p.Y = float64(int(p.Y/(cell/2))) * (cell / 2)
					p.Z = 0
				}
				g.Add(i, p)
				pts = append(pts, p)
			}
			for _, r := range []float64{cell / 3, cell} {
				for trial := 0; trial < 50; trial++ {
					q := pts[rng.Intn(len(pts))]
					if trial%2 == 0 {
						q = Position{X: (rng.Float64() - 0.5) * 7 * cell, Y: (rng.Float64() - 0.5) * 7 * cell}
					}
					got := g.AppendWithin(nil, q, r)
					var want []int
					for i, p := range pts {
						if p.DistanceTo(q) <= r {
							want = append(want, i)
						}
					}
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("cell=%g seed=%d r=%g query %v: grid %v != brute %v", cell, seed, r, q, got, want)
					}
					for i := 1; i < len(got); i++ {
						if got[i-1] >= got[i] {
							t.Fatalf("unsorted candidates %v", got)
						}
					}
				}
			}
		}
	}
}

// TestGridDisabled pins brute-force mode: cell size <= 0 indexes
// nothing and answers nothing.
func TestGridDisabled(t *testing.T) {
	g := NewGrid(0)
	if g.Enabled() {
		t.Fatal("zero-cell grid reports enabled")
	}
	g.Add(0, Position{X: 1})
	if g.NumNodes() != 1 {
		t.Fatal("disabled grid must still count nodes")
	}
	if got := g.AppendWithin([]int{7}, Position{}, 5); len(got) != 1 || got[0] != 7 {
		t.Fatalf("disabled grid answered a range query: %v", got)
	}
}

// TestGridPanics pins the misuse guards: out-of-order adds and
// queries wider than the cell (which would silently miss candidates).
func TestGridPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	g := NewGrid(10)
	g.Add(0, Position{})
	expectPanic("out-of-order add", func() { g.Add(2, Position{X: 1}) })
	expectPanic("oversized radius", func() { g.AppendWithin(nil, Position{}, 10.5) })
}

// TestGridAppendReusesDst pins the scratch-buffer contract: results
// append after existing elements and reuse capacity.
func TestGridAppendReusesDst(t *testing.T) {
	g := NewGrid(10)
	g.Add(0, Position{X: 1})
	g.Add(1, Position{X: 100})
	buf := make([]int, 0, 8)
	out := g.AppendWithin(buf, Position{}, 5)
	if len(out) != 1 || out[0] != 0 {
		t.Fatalf("query = %v, want [0]", out)
	}
	if &out[:1][0] != &buf[:1][0] {
		t.Fatal("result did not reuse the scratch buffer")
	}
}
