package sim

import (
	"math"
	"sort"
)

// Grid is a uniform spatial hash over node positions, keyed by a cell
// size chosen to match the query radius (the carrier-sense range):
// every node within r of a point lies in the 3x3x3 block of cells
// around it, so range queries touch candidate cells instead of the
// whole population. It is the index behind the network's audibility
// adjacency, scheduler conflict edges and Dijkstra expansion — the
// structure that turns the O(N^2) pairwise geometry scans into
// O(neighborhood) work at 1 000-10 000 nodes.
//
// Nodes never leave the grid (a departed radio does not move the
// water), but they may move through it: Move re-buckets a node whose
// position epoch crossed a cell boundary. Grid is not safe for
// concurrent use; callers serialize access, like the Medium it
// mirrors. A cell size <= 0 disables indexing — the caller's
// brute-force "everyone is a candidate" mode.
type Grid struct {
	cellM float64
	cells map[[3]int32][]int32
	pos   []Position
}

// NewGrid creates a grid with the given cell size in meters. cellM <=
// 0 builds a disabled grid: Within answers nothing and Enabled
// reports false, so callers fall back to brute force.
func NewGrid(cellM float64) *Grid {
	g := &Grid{cellM: cellM}
	if cellM > 0 {
		g.cells = make(map[[3]int32][]int32)
	}
	return g
}

// Enabled reports whether the grid indexes anything (cell size > 0).
func (g *Grid) Enabled() bool { return g.cellM > 0 }

// NumNodes returns how many nodes the grid holds.
func (g *Grid) NumNodes() int { return len(g.pos) }

// cellOf maps a position to its cell key. Floor (not truncation)
// keeps negative coordinates in distinct cells from positive ones.
func (g *Grid) cellOf(p Position) [3]int32 {
	return [3]int32{
		int32(math.Floor(p.X / g.cellM)),
		int32(math.Floor(p.Y / g.cellM)),
		int32(math.Floor(p.Z / g.cellM)),
	}
}

// Add registers the next node (index len-1 before the call must equal
// idx) at p.
func (g *Grid) Add(idx int, p Position) {
	if idx != len(g.pos) {
		panic("sim: grid nodes must be added in index order")
	}
	g.pos = append(g.pos, p)
	if !g.Enabled() {
		return
	}
	key := g.cellOf(p)
	g.cells[key] = append(g.cells[key], int32(idx))
}

// Move relocates node idx to p, re-bucketing it when the move crosses
// a cell boundary. Bucket order within a cell is not maintained —
// AppendWithin sorts its candidates, so every consumer still sees
// ascending indices.
func (g *Grid) Move(idx int, p Position) {
	if idx < 0 || idx >= len(g.pos) {
		panic("sim: grid move of unknown node")
	}
	if !g.Enabled() {
		g.pos[idx] = p
		return
	}
	oldKey, newKey := g.cellOf(g.pos[idx]), g.cellOf(p)
	g.pos[idx] = p
	if oldKey == newKey {
		return
	}
	bucket := g.cells[oldKey]
	for i, j := range bucket {
		if int(j) == idx {
			g.cells[oldKey] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(g.cells[oldKey]) == 0 {
		delete(g.cells, oldKey)
	}
	g.cells[newKey] = append(g.cells[newKey], int32(idx))
}

// AppendWithin appends to dst every node index whose position lies
// within rM of p (inclusive, matching the carrier-sense audibility
// rule elsewhere), in ascending index order, and returns the extended
// slice. The query radius must not exceed the cell size — the scan
// covers only the one-cell neighborhood. A disabled grid returns dst
// unchanged (callers brute-force instead).
func (g *Grid) AppendWithin(dst []int, p Position, rM float64) []int {
	if !g.Enabled() || rM <= 0 {
		return dst
	}
	if rM > g.cellM {
		panic("sim: grid query radius exceeds cell size")
	}
	start := len(dst)
	c := g.cellOf(p)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for dz := int32(-1); dz <= 1; dz++ {
				bucket := g.cells[[3]int32{c[0] + dx, c[1] + dy, c[2] + dz}]
				for _, j := range bucket {
					if g.pos[j].DistanceTo(p) <= rM {
						dst = append(dst, int(j))
					}
				}
			}
		}
	}
	// Cells scan in deterministic key order but not index order; a
	// sorted candidate list keeps every consumer (adjacency lists,
	// conflict edges, Dijkstra expansion) deterministic by
	// construction.
	tail := dst[start:]
	sort.Ints(tail)
	return dst
}
