package sim

import (
	"fmt"
	"slices"
	"sync"

	"aquago/internal/channel"
	"aquago/internal/dsp"
)

// waveTailS is the allowance for channel reverberation past a
// transmission's nominal end: a wave keeps smearing into a receiver's
// ear for roughly the impulse-response length after its last sample.
const waveTailS = 0.2

// WaveTransmission attaches a waveform to an envelope transmission so
// a receiver can be given the superposition of everything on the air —
// concurrent packets interfere exactly as colliding sound does.
type WaveTransmission struct {
	Transmission
	Samples []float64
}

// WaveBank is the sample-level half of the shared medium: it stores
// the waveform of every transmission and mixes, on demand, what any
// node hears over a window — each wave convolved through its directed
// (tx, rx) channel link, delayed by propagation, and summed. Unlike
// WaveMedium it does no envelope accounting of its own, so callers
// (the public Network's waveform contention mode) can keep envelope
// collision bookkeeping at one entry per packet while registering one
// wave per protocol stage.
//
// All methods are safe for concurrent use with one caveat: the
// per-pair channel links it convolves through are stateful, and a
// link into receiver r is touched by every mix for r. Two concurrent
// mixes are only safe when their receivers cannot hear a common
// transmitter — the exact condition the Network's conflict-graph
// scheduler enforces before letting exchanges run in parallel.
type WaveBank struct {
	med        *Medium
	links      *Links
	sampleRate int
	seed       int64

	mu    sync.Mutex
	waves []WaveTransmission
}

// NewWaveBank builds a bank over the medium's node geometry. Links are
// built noise-off; ambient noise is added once per receive window
// (AmbientNoise), not once per interfering wave.
func NewWaveBank(med *Medium, sampleRate int, seed int64) *WaveBank {
	return &WaveBank{
		med:        med,
		links:      NewLinks(med, sampleRate, seed, true),
		sampleRate: sampleRate,
		seed:       seed,
	}
}

// Sync runs fn while holding the bank's lock. The owning network uses
// it to mutate shared geometry (Medium.AddNode, SetEndpoint) that
// concurrent mixes read.
func (wb *WaveBank) Sync(fn func()) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	fn()
}

// SetEndpoint records a node's acoustic properties for future links
// (see Links.SetEndpoint). Call inside Sync when joins can race mixes.
func (wb *WaveBank) SetEndpoint(node int, ep Endpoint) {
	wb.links.SetEndpoint(node, ep)
}

// InvalidateNode drops the bank's cached links touching the node (see
// Links.InvalidateNode). Call inside Sync when moves can race mixes.
func (wb *WaveBank) InvalidateNode(node int) {
	wb.links.InvalidateNode(node)
}

// Add registers a transmitted waveform starting at startS. DurS is
// derived from the sample count; the samples are retained by reference
// and must not be mutated afterwards.
func (wb *WaveBank) Add(from int, startS float64, seq int, samples []float64) {
	dur := float64(len(samples)) / float64(wb.sampleRate)
	wb.mu.Lock()
	defer wb.mu.Unlock()
	wb.waves = append(wb.waves, WaveTransmission{
		Transmission: Transmission{From: from, StartS: startS, DurS: dur, Seq: seq},
		Samples:      samples,
	})
}

// Link returns (building on first use) the directed noise-free channel
// from tx to rx, guarding the shared cache.
func (wb *WaveBank) Link(tx, rx int) (*channel.Link, error) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return wb.links.Link(tx, rx)
}

// DelayS returns the propagation delay between nodes, reading geometry
// under the bank's lock (safe against concurrent joins).
func (wb *WaveBank) DelayS(a, b int) float64 {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return wb.med.DelayS(a, b)
}

// interferer is one wave scheduled into a mix: resolved link, source
// wave and sample offset of its arrival relative to the window start
// (possibly negative for waves already in flight).
type interferer struct {
	link *channel.Link
	wt   WaveTransmission
	off  int
}

// Interference accumulates into out everything node rx hears over the
// absolute-time window starting at baseS (out's length sets the window
// duration): every stored wave audible at rx — excluding waves radiated
// by rx itself, by any node in exclude, or (when rangeM > 0) by nodes
// farther than rangeM — convolved through its (from, rx) link and
// offset by propagation delay. Use rangeM 0 for unlimited audibility.
//
// The returned power is the mean square, over the window, of the
// summed interference that was added (0 when nothing audible
// overlapped it) — the per-window interferer power accounting behind
// capture-effect SIR studies: signal power over interference power at
// the receiver's ear, not at the transmitters.
//
// The direct signal of an exchange is normally carried by the pair
// link itself; callers exclude both exchange endpoints and let the
// bank contribute only foreign interference.
func (wb *WaveBank) Interference(out []float64, rx int, baseS, rangeM float64, exclude ...int) (power float64, err error) {
	fs := float64(wb.sampleRate)
	durS := float64(len(out)) / fs
	wb.mu.Lock()
	var hits []interferer
	for _, wt := range wb.waves {
		if wt.From == rx || slices.Contains(exclude, wt.From) {
			continue
		}
		if rangeM > 0 && wb.med.positions[wt.From].DistanceTo(wb.med.positions[rx]) > rangeM {
			continue
		}
		d := wb.med.DelayS(wt.From, rx)
		arriveS := wt.StartS + d
		if arriveS+wt.DurS+waveTailS <= baseS || arriveS >= baseS+durS {
			continue
		}
		l, err := wb.links.Link(wt.From, rx)
		if err != nil {
			wb.mu.Unlock()
			return 0, err
		}
		hits = append(hits, interferer{link: l, wt: wt, off: int((arriveS - baseS) * fs)})
	}
	wb.mu.Unlock()
	if len(hits) == 0 {
		return 0, nil
	}
	// Sum in (start, transmitter) order, not store order: concurrent
	// out-of-range exchanges append to wb.waves in wall-clock order,
	// and float addition is non-associative — a virtual-time order
	// keeps every window's samples bit-identical across schedules.
	slices.SortStableFunc(hits, func(a, b interferer) int {
		if a.wt.StartS != b.wt.StartS {
			if a.wt.StartS < b.wt.StartS {
				return -1
			}
			return 1
		}
		return a.wt.From - b.wt.From
	})
	// Convolve outside the lock: each link here points into rx, and the
	// caller guarantees no concurrent mix shares an audible transmitter
	// with this one (see the type comment), so the link state is ours.
	// The power measured is that of the *summed* interference — the
	// per-wave contributions are not what competes with the direct
	// signal once they overlap. With one interferer (the common case)
	// its received wave is the sum, windowed to out; several interferers
	// sum into a scratch window first.
	if len(hits) == 1 {
		h := hits[0]
		rxWave := h.link.TransmitAt(h.wt.Samples, h.wt.StartS)
		dsp.AddAt(out, rxWave, h.off)
		return windowPower(rxWave, h.off, len(out)), nil
	}
	mix := make([]float64, len(out))
	for _, h := range hits {
		rxWave := h.link.TransmitAt(h.wt.Samples, h.wt.StartS)
		dsp.AddAt(mix, rxWave, h.off)
	}
	dsp.Add(out, mix)
	return dsp.Power(mix), nil
}

// windowPower is the mean square, over a window of n samples, of a
// wave placed at offset off into it (samples outside the window count
// as the zeros they contribute).
func windowPower(wave []float64, off, n int) float64 {
	if n == 0 {
		return 0
	}
	lo, hi := 0, len(wave)
	if off < 0 {
		lo = -off
	}
	if off+hi > n {
		hi = n - off
	}
	var sum float64
	for i := lo; i < hi; i++ {
		sum += wave[i] * wave[i]
	}
	return sum / float64(n)
}

// AmbientNoise adds one dose of the site's ambient noise to a receive
// window, seeded by (receiver, window start) so identical windows get
// identical realizations regardless of scheduling.
func (wb *WaveBank) AmbientNoise(out []float64, rx int, baseS float64) {
	ng := channel.NewNoiseGen(wb.med.env, wb.sampleRate, wb.seed^int64(rx)^int64(baseS*1000))
	dsp.Add(out, ng.Generate(len(out)))
}

// Prune drops waves that can no longer reach any receiver at or after
// horizonS (end + worst-case propagation + channel tail), bounding the
// retained sample memory under sustained traffic. The caller
// guarantees no future mix window starts before horizonS. Note that a
// receiver's window times are set by its *transmitter's* timeline —
// any node may address any audible receiver — so the horizon must be
// the minimum over every node's earliest possible transmit time, not
// just over plausible receivers.
func (wb *WaveBank) Prune(horizonS float64) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	maxDelay := wb.med.maxDelayS()
	kept := wb.waves[:0]
	for _, wt := range wb.waves {
		if wt.EndS()+maxDelay+waveTailS <= horizonS {
			continue
		}
		kept = append(kept, wt)
	}
	// Zero the dropped tail so the backing array releases its sample
	// slices to the GC.
	for i := len(kept); i < len(wb.waves); i++ {
		wb.waves[i] = WaveTransmission{}
	}
	wb.waves = kept
}

// NumWaves reports how many waveforms the bank currently retains.
func (wb *WaveBank) NumWaves() int {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return len(wb.waves)
}

// WaveMedium mixes transmissions into per-receiver audio using one
// channel link per (tx, rx) pair: the envelope medium plus a WaveBank,
// with every TransmitWave registered in both (one envelope entry and
// one wave per call).
type WaveMedium struct {
	*Medium
	sampleRate int
	bank       *WaveBank
}

// NewWaveMedium wraps a medium for waveform mixing.
func NewWaveMedium(env channel.Environment, sampleRate int, seed int64) *WaveMedium {
	med := New(env)
	return &WaveMedium{
		Medium:     med,
		sampleRate: sampleRate,
		bank:       NewWaveBank(med, sampleRate, seed),
	}
}

// TransmitWave registers a transmission with its waveform. DurS is
// derived from the sample count.
func (w *WaveMedium) TransmitWave(from int, startS float64, seq int, samples []float64) {
	dur := float64(len(samples)) / float64(w.sampleRate)
	w.Transmit(Transmission{From: from, StartS: startS, DurS: dur, Seq: seq})
	w.bank.Add(from, startS, seq, samples)
}

// ReceiveWindow renders what node rx hears during [fromS, toS): all
// audible transmissions convolved through their pairwise channels,
// delayed by propagation, summed, plus one dose of ambient noise.
func (w *WaveMedium) ReceiveWindow(rx int, fromS, toS float64) ([]float64, error) {
	if toS <= fromS {
		return nil, fmt.Errorf("sim: empty window [%g, %g)", fromS, toS)
	}
	n := int((toS - fromS) * float64(w.sampleRate))
	out := make([]float64, n)
	if _, err := w.bank.Interference(out, rx, fromS, 0); err != nil {
		return nil, err
	}
	w.bank.AmbientNoise(out, rx, fromS)
	return out, nil
}
