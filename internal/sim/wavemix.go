package sim

import (
	"fmt"

	"aquago/internal/channel"
	"aquago/internal/dsp"
)

// WaveTransmission attaches a waveform to an envelope transmission so
// a receiver can be given the superposition of everything on the air —
// concurrent packets interfere exactly as colliding sound does.
type WaveTransmission struct {
	Transmission
	Samples []float64
}

// WaveMedium mixes transmissions into per-receiver audio using one
// channel link per (tx, rx) pair. Links are built lazily through a
// shared Links cache (noise-off: ambient noise is added once per
// receiver window, not per link).
type WaveMedium struct {
	*Medium
	sampleRate int
	seed       int64
	links      *Links
	waves      []WaveTransmission
}

// NewWaveMedium wraps a medium for waveform mixing.
func NewWaveMedium(env channel.Environment, sampleRate int, seed int64) *WaveMedium {
	med := New(env)
	return &WaveMedium{
		Medium:     med,
		sampleRate: sampleRate,
		seed:       seed,
		links:      NewLinks(med, sampleRate, seed, true),
	}
}

// TransmitWave registers a transmission with its waveform. DurS is
// derived from the sample count.
func (w *WaveMedium) TransmitWave(from int, startS float64, seq int, samples []float64) {
	dur := float64(len(samples)) / float64(w.sampleRate)
	tr := Transmission{From: from, StartS: startS, DurS: dur, Seq: seq}
	w.Transmit(tr)
	w.waves = append(w.waves, WaveTransmission{Transmission: tr, Samples: samples})
}

// ReceiveWindow renders what node rx hears during [fromS, toS): all
// audible transmissions convolved through their pairwise channels,
// delayed by propagation, summed, plus one dose of ambient noise.
func (w *WaveMedium) ReceiveWindow(rx int, fromS, toS float64) ([]float64, error) {
	if toS <= fromS {
		return nil, fmt.Errorf("sim: empty window [%g, %g)", fromS, toS)
	}
	n := int((toS - fromS) * float64(w.sampleRate))
	out := make([]float64, n)
	for _, wt := range w.waves {
		if wt.From == rx {
			continue
		}
		d := w.DelayS(wt.From, rx)
		arriveS := wt.StartS + d
		endS := arriveS + wt.DurS + 0.2 // allow channel tail
		if endS <= fromS || arriveS >= toS {
			continue
		}
		l, err := w.links.Link(wt.From, rx)
		if err != nil {
			return nil, err
		}
		rxWave := l.TransmitAt(wt.Samples, wt.StartS)
		off := int((arriveS - fromS) * float64(w.sampleRate))
		dsp.AddAt(out, rxWave, off)
	}
	// Ambient noise for the window.
	ng := channel.NewNoiseGen(w.env, w.sampleRate, w.seed^int64(rx)^int64(fromS*1000))
	dsp.Add(out, ng.Generate(n))
	return out, nil
}
