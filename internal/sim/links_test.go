package sim

import (
	"testing"

	"aquago/internal/channel"
	"aquago/internal/dsp"
	"aquago/internal/phy"
)

// The pair medium must satisfy the protocol's medium contract.
var _ phy.Medium = (*PairMedium)(nil)

func TestLinksBuildsAndCachesPairLinks(t *testing.T) {
	med := New(channel.Bridge)
	a := med.AddNode(Position{X: 0, Z: 1})
	b := med.AddNode(Position{X: 6, Z: 1})
	ls := NewLinks(med, 48000, 5, false)

	l1, err := ls.Link(a, b)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := ls.Link(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatal("link not cached")
	}
	if got := l1.Params().DistanceM; got != 6 {
		t.Fatalf("link distance %g, want 6 from geometry", got)
	}
	// Directions are independent realizations (underwater links are
	// non-reciprocal, Fig 3d).
	rev, err := ls.Link(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if rev == l1 {
		t.Fatal("reverse direction shares the forward link")
	}
}

func TestLinksRejectsBadPairs(t *testing.T) {
	med := New(channel.Bridge)
	a := med.AddNode(Position{X: 0, Z: 1})
	ls := NewLinks(med, 48000, 5, false)
	if _, err := ls.Link(a, a); err == nil {
		t.Fatal("self link accepted")
	}
	if _, err := ls.Link(a, 7); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := ls.Pair(a, 7); err == nil {
		t.Fatal("unknown pair accepted")
	}
}

func TestLinksClampsGeometry(t *testing.T) {
	med := New(channel.Bridge)                // 3 m water column
	a := med.AddNode(Position{X: 0, Z: 0})    // at the surface
	b := med.AddNode(Position{X: 0.1, Z: 99}) // below the bottom, 10 cm away
	ls := NewLinks(med, 48000, 5, false)
	l, err := ls.Link(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p := l.Params()
	if p.DistanceM < 0.5 {
		t.Fatalf("distance %g not clamped to 0.5", p.DistanceM)
	}
	if p.TxDepthM <= 0 || p.TxDepthM >= channel.Bridge.DepthM {
		t.Fatalf("tx depth %g outside water column", p.TxDepthM)
	}
	if p.RxDepthM <= 0 || p.RxDepthM >= channel.Bridge.DepthM {
		t.Fatalf("rx depth %g outside water column", p.RxDepthM)
	}
}

func TestLinksEndpointsShapeTheLink(t *testing.T) {
	med := New(channel.Bridge)
	a := med.AddNode(Position{X: 0, Z: 1})
	b := med.AddNode(Position{X: 6, Z: 1})
	ls := NewLinks(med, 48000, 5, false)
	ls.SetEndpoint(a, Endpoint{Device: channel.Pixel4, Motion: channel.FastMotion})
	ls.SetEndpoint(b, Endpoint{Device: channel.GalaxyWatch4})
	l, err := ls.Link(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p := l.Params()
	if p.TxDevice.Name != channel.Pixel4.Name || p.RxDevice.Name != channel.GalaxyWatch4.Name {
		t.Fatalf("devices (%s, %s) not taken from endpoints", p.TxDevice.Name, p.RxDevice.Name)
	}
	// The faster end sets the link motion.
	if p.Motion.AccelMS2 != channel.FastMotion.AccelMS2 {
		t.Fatalf("link motion %+v, want the faster end's", p.Motion)
	}
}

func TestDetachedPairMatchesCachedRealization(t *testing.T) {
	med := New(channel.Bridge)
	a := med.AddNode(Position{X: 0, Z: 1})
	b := med.AddNode(Position{X: 5, Z: 1})
	ls := NewLinks(med, 48000, 5, true) // noise off: compare raw channels
	cached, err := ls.Pair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	detached, err := ls.DetachedPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if detached.fwd == cached.fwd || detached.bwd == cached.bwd {
		t.Fatal("detached pair shares link state with the cache")
	}
	tone := dsp.Tone(2000, 0.05, 48000)
	c := cached.Forward(tone, 0)
	d := detached.Forward(tone, 0)
	if len(c) != len(d) {
		t.Fatalf("lengths differ: %d vs %d", len(c), len(d))
	}
	for i := range c {
		if c[i] != d[i] {
			t.Fatal("detached pair realizes a different channel")
		}
	}
}

func TestPruneKeepsCollisionStatsAndBusyAt(t *testing.T) {
	build := func() *Medium {
		med := New(channel.Bridge)
		med.AddNode(Position{X: 0, Z: 1})
		med.AddNode(Position{X: 6, Z: 1})
		med.AddNode(Position{X: 0, Y: 8, Z: 1})
		// Two early colliding packets, one isolated, then later traffic.
		med.Transmit(Transmission{From: 0, StartS: 0.0, DurS: 0.6, Seq: 0})
		med.Transmit(Transmission{From: 1, StartS: 0.3, DurS: 0.6, Seq: 0})
		med.Transmit(Transmission{From: 2, StartS: 2.0, DurS: 0.6, Seq: 0})
		med.Transmit(Transmission{From: 0, StartS: 9.5, DurS: 0.6, Seq: 1})
		med.Transmit(Transmission{From: 1, StartS: 9.8, DurS: 0.6, Seq: 1})
		return med
	}
	pruned, plain := build(), build()
	const horizon = 9.0 // future starts >= 9.0; early packets prunable
	pruned.Prune(horizon, 0.6)
	if got := len(pruned.Transmissions()); got >= len(plain.Transmissions()) {
		t.Fatalf("prune kept all %d transmissions", got)
	}
	perP, fracP := pruned.CollisionStats()
	perN, fracN := plain.CollisionStats()
	if fracP != fracN {
		t.Fatalf("collision fraction changed: %g -> %g", fracN, fracP)
	}
	for n, c := range perN {
		if perP[n] != c {
			t.Fatalf("node %d stats changed: %v -> %v", n, c, perP[n])
		}
	}
	// BusyAt agrees everywhere at or after the horizon.
	for _, at := range []int{0, 1, 2} {
		for tS := horizon; tS < 11; tS += 0.04 {
			if pruned.BusyAt(at, tS) != plain.BusyAt(at, tS) {
				t.Fatalf("BusyAt(%d, %g) diverged after prune", at, tS)
			}
		}
	}
	// New traffic after pruning keeps accumulating correctly.
	pruned.Transmit(Transmission{From: 2, StartS: 9.9, DurS: 0.6, Seq: 1})
	plain.Transmit(Transmission{From: 2, StartS: 9.9, DurS: 0.6, Seq: 1})
	perP, fracP = pruned.CollisionStats()
	perN, fracN = plain.CollisionStats()
	if fracP != fracN {
		t.Fatalf("post-prune traffic: fraction %g != %g", fracP, fracN)
	}
	for n, c := range perN {
		if perP[n] != c {
			t.Fatalf("post-prune traffic: node %d %v != %v", n, perP[n], c)
		}
	}
	// Reset clears the aggregates too.
	pruned.Reset()
	if per, frac := pruned.CollisionStats(); len(per) != 0 || frac != 0 {
		t.Fatalf("reset left accounting behind: %v %g", per, frac)
	}
}

func TestPairMediumCarriesSignal(t *testing.T) {
	med := New(channel.Bridge)
	a := med.AddNode(Position{X: 0, Z: 1})
	b := med.AddNode(Position{X: 5, Z: 1})
	ls := NewLinks(med, 48000, 5, false)
	pm, err := ls.Pair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	tone := dsp.Tone(2000, 0.1, 48000)
	fwd := pm.Forward(tone, 0)
	bwd := pm.Backward(tone, 0)
	if dsp.RMS(fwd) <= 0 || dsp.RMS(bwd) <= 0 {
		t.Fatal("pair medium lost the signal")
	}
	// Different multipath realizations per direction.
	if len(fwd) == len(bwd) {
		same := true
		for i := range fwd {
			if fwd[i] != bwd[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("forward and backward realizations identical")
		}
	}
}

// TestPairSNRdBQualityOrdering: the routing layer's channel-quality
// probe must be deterministic, must degrade with distance (more path
// loss, same ambient noise), and must never touch the link cache
// (probing quality cannot perturb live traffic's channel state).
func TestPairSNRdBQualityOrdering(t *testing.T) {
	med := New(channel.Bridge)
	o := med.AddNode(Position{X: 0, Z: 1})
	near := med.AddNode(Position{X: 5, Z: 1})
	far := med.AddNode(Position{X: 80, Z: 1})
	ls := NewLinks(med, 48000, 5, false)

	nf, nb, err := ls.PairSNRdB(o, near)
	if err != nil {
		t.Fatal(err)
	}
	ff, fb, err := ls.PairSNRdB(o, far)
	if err != nil {
		t.Fatal(err)
	}
	if nf <= ff || nb <= fb {
		t.Fatalf("5 m pair (%.1f/%.1f dB) not better than 80 m pair (%.1f/%.1f dB)", nf, nb, ff, fb)
	}
	if nf2, nb2, err := ls.PairSNRdB(o, near); err != nil || nf2 != nf || nb2 != nb {
		t.Fatalf("probe not deterministic: (%g, %g, %v) then (%g, %g)", nf, nb, err, nf2, nb2)
	}
	if len(ls.cache) != 0 {
		t.Fatalf("quality probe populated the link cache (%d entries)", len(ls.cache))
	}
	if _, _, err := ls.PairSNRdB(o, o); err == nil {
		t.Fatal("self pair must error")
	}
}
