// Package sim provides a discrete-event shared acoustic medium for
// multi-node experiments: node geometry, sound-speed propagation
// delays, an envelope mode that tracks which transmissions are audible
// where and when (carrier sense, collision accounting — Fig 19), and a
// waveform mode that mixes concurrent transmissions into a receiver's
// ear through per-pair channel links.
package sim

import (
	"fmt"
	"math"
	"sort"

	"aquago/internal/channel"
)

// Position locates a node in meters; Z is depth below the surface.
type Position struct {
	X, Y, Z float64
}

// DistanceTo returns the Euclidean distance between positions.
func (p Position) DistanceTo(q Position) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Transmission is one on-air packet in envelope mode.
type Transmission struct {
	// From is the transmitting node's index.
	From int
	// StartS and DurS delimit the full exchange interval at the
	// transmitter.
	StartS, DurS float64
	// QuietOffS/QuietDurS delimit an optional silent window inside
	// the exchange (AquaApp's transmitter goes quiet between the
	// header and the data section while waiting for feedback). Energy
	// detection hears nothing during it — the residual collision
	// source the paper's Fig 19 measures, since its carrier sense
	// uses no preamble detection or CTS.
	QuietOffS, QuietDurS float64
	// Seq tags the packet for collision accounting.
	Seq int
}

// EndS returns the transmit end time.
func (t Transmission) EndS() float64 { return t.StartS + t.DurS }

// emitting reports whether the transmitter is actually radiating at
// absolute time tS (false inside the quiet window).
func (t Transmission) emitting(tS float64) bool {
	if tS < t.StartS || tS >= t.EndS() {
		return false
	}
	if t.QuietDurS > 0 {
		q0 := t.StartS + t.QuietOffS
		if tS >= q0 && tS < q0+t.QuietDurS {
			return false
		}
	}
	return true
}

// Medium is the shared acoustic channel. Envelope-mode queries are
// O(log n) after sorting; the zero value is unusable — call New.
type Medium struct {
	env       channel.Environment
	positions []Position
	trans     []Transmission
	// collided is parallel to trans: sticky per-transmission collision
	// flags, so collisions with partners that Prune has since dropped
	// stay counted.
	collided []bool
	sorted   bool
	// maxDurS is the longest transmission duration ever registered
	// (Prune's bound on how far back a future start can collide).
	maxDurS float64
	// Aggregate accounting for transmissions dropped by Prune.
	prunedPerNode        map[int][2]int
	prunedHit, prunedAll int
	// CSRangeM bounds carrier-sense audibility (0 = unlimited); real
	// deployments hear well past the 5-10 m node spacing.
	CSRangeM float64
	// Bounding box over node positions, maintained incrementally by
	// AddNode: its diagonal upper-bounds every pairwise distance, so
	// maxDelayS stays O(1) instead of O(N^2) per Prune at 10k nodes.
	bboxMin, bboxMax Position
}

// New creates a medium in the given environment.
func New(env channel.Environment) *Medium {
	return &Medium{env: env}
}

// AddNode registers a node and returns its index.
func (m *Medium) AddNode(p Position) int {
	if len(m.positions) == 0 {
		m.bboxMin, m.bboxMax = p, p
	} else {
		m.bboxMin.X = math.Min(m.bboxMin.X, p.X)
		m.bboxMin.Y = math.Min(m.bboxMin.Y, p.Y)
		m.bboxMin.Z = math.Min(m.bboxMin.Z, p.Z)
		m.bboxMax.X = math.Max(m.bboxMax.X, p.X)
		m.bboxMax.Y = math.Max(m.bboxMax.Y, p.Y)
		m.bboxMax.Z = math.Max(m.bboxMax.Z, p.Z)
	}
	m.positions = append(m.positions, p)
	return len(m.positions) - 1
}

// SetPosition relocates a node — one position epoch of the motion
// layer. The bounding box only ever grows: it must upper-bound the
// distance between any two positions nodes *ever* held, because
// retained transmissions were emitted from old positions and a looser
// bound only keeps a transmission slightly longer, never drops one
// early.
func (m *Medium) SetPosition(idx int, p Position) {
	if idx < 0 || idx >= len(m.positions) {
		panic(fmt.Sprintf("sim: position epoch for unknown node %d", idx))
	}
	m.positions[idx] = p
	m.bboxMin.X = math.Min(m.bboxMin.X, p.X)
	m.bboxMin.Y = math.Min(m.bboxMin.Y, p.Y)
	m.bboxMin.Z = math.Min(m.bboxMin.Z, p.Z)
	m.bboxMax.X = math.Max(m.bboxMax.X, p.X)
	m.bboxMax.Y = math.Max(m.bboxMax.Y, p.Y)
	m.bboxMax.Z = math.Max(m.bboxMax.Z, p.Z)
}

// NumNodes returns the node count.
func (m *Medium) NumNodes() int { return len(m.positions) }

// Positions returns a copy of node positions.
func (m *Medium) Positions() []Position {
	return append([]Position(nil), m.positions...)
}

// DelayS returns the propagation delay between nodes a and b.
func (m *Medium) DelayS(a, b int) float64 {
	return m.positions[a].DistanceTo(m.positions[b]) / channel.SoundSpeed
}

// Transmit registers an envelope-mode transmission.
func (m *Medium) Transmit(tr Transmission) {
	if tr.From < 0 || tr.From >= len(m.positions) {
		panic(fmt.Sprintf("sim: transmission from unknown node %d", tr.From))
	}
	m.trans = append(m.trans, tr)
	m.collided = append(m.collided, false)
	if tr.DurS > m.maxDurS {
		m.maxDurS = tr.DurS
	}
	m.sorted = false
}

// Transmissions returns the retained transmissions sorted by start
// time (Prune may have folded older ones into aggregate counters).
func (m *Medium) Transmissions() []Transmission {
	m.ensureSorted()
	return append([]Transmission(nil), m.trans...)
}

func (m *Medium) ensureSorted() {
	if m.sorted {
		return
	}
	sort.Sort(byStart{m})
	m.sorted = true
}

// byStart co-sorts trans and its parallel collided flags.
type byStart struct{ m *Medium }

func (s byStart) Len() int { return len(s.m.trans) }
func (s byStart) Less(i, j int) bool {
	return s.m.trans[i].StartS < s.m.trans[j].StartS
}
func (s byStart) Swap(i, j int) {
	s.m.trans[i], s.m.trans[j] = s.m.trans[j], s.m.trans[i]
	s.m.collided[i], s.m.collided[j] = s.m.collided[j], s.m.collided[i]
}

// BusyAt reports whether node `at` hears any other node's signal at
// time tS: each transmission [start, start+dur) arrives delayed by
// propagation; carrier sense integrates over its 80 ms window, which
// the caller models by polling BusyAt at its sense cadence.
func (m *Medium) BusyAt(at int, tS float64) bool {
	for _, tr := range m.trans {
		if tr.From == at {
			continue
		}
		if m.audible(at, tr) {
			d := m.DelayS(tr.From, at)
			if tr.emitting(tS - d) {
				return true
			}
		}
	}
	return false
}

// audible applies the carrier-sense range bound.
func (m *Medium) audible(at int, tr Transmission) bool {
	if m.CSRangeM <= 0 {
		return true
	}
	return m.positions[tr.From].DistanceTo(m.positions[at]) <= m.CSRangeM
}

// markCollisions refreshes the sticky per-transmission collision
// flags using the paper's transmitter-side definition: two packets
// collide when their transmit times fall within one packet duration
// of each other. Flags only ever turn on (collisions with partners
// Prune has since dropped stay counted).
func (m *Medium) markCollisions() {
	m.ensureSorted()
	for i := 0; i < len(m.trans); i++ {
		for j := i + 1; j < len(m.trans); j++ {
			a, b := m.trans[i], m.trans[j]
			gap := b.StartS - a.StartS
			// Sorted by start: stop once b starts later than the
			// longest duration ever registered after a — no packet,
			// whatever its duration, can still reach back to a.
			if gap >= m.maxDurS {
				break
			}
			// Durations vary per band: this pair may be clear while a
			// later, longer packet still collides with a.
			if gap >= math.Max(a.DurS, b.DurS) {
				continue
			}
			if a.From == b.From {
				continue
			}
			m.collided[i] = true
			m.collided[j] = true
		}
	}
}

// CollisionStats counts packets involved in collisions (see
// markCollisions for the definition), including everything Prune has
// folded away. The map gives, per node, (collided, total) counts.
func (m *Medium) CollisionStats() (perNode map[int][2]int, fraction float64) {
	m.markCollisions()
	perNode = make(map[int][2]int)
	total, hit := m.prunedAll, m.prunedHit
	//aqualint:order-independent key-for-key copy into the result map; the resulting map is the same whatever order the entries are visited in
	for n, c := range m.prunedPerNode {
		perNode[n] = c
	}
	for i, tr := range m.trans {
		c := perNode[tr.From]
		c[1]++
		if m.collided[i] {
			c[0]++
			hit++
		}
		perNode[tr.From] = c
		total++
	}
	if total > 0 {
		fraction = float64(hit) / float64(total)
	}
	return perNode, fraction
}

// Prune folds transmissions that can no longer interact with virtual
// times at or after horizonS into the aggregate collision counters,
// bounding the retained log. maxFutureDurS bounds the duration of any
// transmission the caller may yet register (the Network passes its
// worst-case narrowest-band airtime); durations already seen extend
// the bound automatically. The caller guarantees that every future
// transmission starts at horizonS or later and that BusyAt is never
// again polled before horizonS (the public Network's monotonic commit
// frontier provides both). Pruned packets stay in CollisionStats.
func (m *Medium) Prune(horizonS, maxFutureDurS float64) {
	if len(m.trans) == 0 {
		return
	}
	// Finalize collision flags while every partner is still present.
	m.markCollisions()
	maxDur := math.Max(m.maxDurS, maxFutureDurS)
	maxDelay := m.maxDelayS()
	if m.prunedPerNode == nil {
		m.prunedPerNode = make(map[int][2]int)
	}
	kept := m.trans[:0]
	keptFlags := m.collided[:0]
	for i, tr := range m.trans {
		// Safe to drop only when inaudible everywhere from horizonS on
		// (EndS + max propagation delay) and unable to collide with
		// any future start (StartS + the longest possible duration).
		if tr.EndS()+maxDelay <= horizonS && tr.StartS+maxDur <= horizonS {
			c := m.prunedPerNode[tr.From]
			c[1]++
			m.prunedAll++
			if m.collided[i] {
				c[0]++
				m.prunedHit++
			}
			m.prunedPerNode[tr.From] = c
			continue
		}
		kept = append(kept, tr)
		keptFlags = append(keptFlags, m.collided[i])
	}
	m.trans = kept
	m.collided = keptFlags
}

// maxDelayS returns an upper bound on the propagation delay to any
// node, present or plausibly future: the larger of the node bounding
// box's diagonal (which upper-bounds every pairwise distance, exactly
// for two nodes) and the environment's usable span (covering nodes
// that join, anywhere on the site, after a prune). The incremental
// bounding box replaces a former O(N^2) pairwise scan that dominated
// Prune at thousands of nodes; a looser bound only keeps a
// transmission slightly longer, never drops one early.
func (m *Medium) maxDelayS() float64 {
	maxD := m.env.MaxRangeM
	if len(m.positions) > 0 {
		if d := m.bboxMin.DistanceTo(m.bboxMax); d > maxD {
			maxD = d
		}
	}
	return maxD / channel.SoundSpeed
}

// Reset clears registered transmissions and all collision accounting
// (including Prune's aggregates) but keeps nodes.
func (m *Medium) Reset() {
	m.trans = m.trans[:0]
	m.collided = m.collided[:0]
	m.prunedPerNode = nil
	m.prunedHit, m.prunedAll = 0, 0
	m.sorted = true
}
