// Package sim provides a discrete-event shared acoustic medium for
// multi-node experiments: node geometry, sound-speed propagation
// delays, an envelope mode that tracks which transmissions are audible
// where and when (carrier sense, collision accounting — Fig 19), and a
// waveform mode that mixes concurrent transmissions into a receiver's
// ear through per-pair channel links.
package sim

import (
	"fmt"
	"math"
	"sort"

	"aquago/internal/channel"
)

// Position locates a node in meters; Z is depth below the surface.
type Position struct {
	X, Y, Z float64
}

// DistanceTo returns the Euclidean distance between positions.
func (p Position) DistanceTo(q Position) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Transmission is one on-air packet in envelope mode.
type Transmission struct {
	// From is the transmitting node's index.
	From int
	// StartS and DurS delimit the full exchange interval at the
	// transmitter.
	StartS, DurS float64
	// QuietOffS/QuietDurS delimit an optional silent window inside
	// the exchange (AquaApp's transmitter goes quiet between the
	// header and the data section while waiting for feedback). Energy
	// detection hears nothing during it — the residual collision
	// source the paper's Fig 19 measures, since its carrier sense
	// uses no preamble detection or CTS.
	QuietOffS, QuietDurS float64
	// Seq tags the packet for collision accounting.
	Seq int
}

// EndS returns the transmit end time.
func (t Transmission) EndS() float64 { return t.StartS + t.DurS }

// emitting reports whether the transmitter is actually radiating at
// absolute time tS (false inside the quiet window).
func (t Transmission) emitting(tS float64) bool {
	if tS < t.StartS || tS >= t.EndS() {
		return false
	}
	if t.QuietDurS > 0 {
		q0 := t.StartS + t.QuietOffS
		if tS >= q0 && tS < q0+t.QuietDurS {
			return false
		}
	}
	return true
}

// Medium is the shared acoustic channel. Envelope-mode queries are
// O(log n) after sorting; the zero value is unusable — call New.
type Medium struct {
	env       channel.Environment
	positions []Position
	trans     []Transmission
	sorted    bool
	// CSRangeM bounds carrier-sense audibility (0 = unlimited); real
	// deployments hear well past the 5-10 m node spacing.
	CSRangeM float64
}

// New creates a medium in the given environment.
func New(env channel.Environment) *Medium {
	return &Medium{env: env}
}

// AddNode registers a node and returns its index.
func (m *Medium) AddNode(p Position) int {
	m.positions = append(m.positions, p)
	return len(m.positions) - 1
}

// NumNodes returns the node count.
func (m *Medium) NumNodes() int { return len(m.positions) }

// Positions returns a copy of node positions.
func (m *Medium) Positions() []Position {
	return append([]Position(nil), m.positions...)
}

// DelayS returns the propagation delay between nodes a and b.
func (m *Medium) DelayS(a, b int) float64 {
	return m.positions[a].DistanceTo(m.positions[b]) / channel.SoundSpeed
}

// Transmit registers an envelope-mode transmission.
func (m *Medium) Transmit(tr Transmission) {
	if tr.From < 0 || tr.From >= len(m.positions) {
		panic(fmt.Sprintf("sim: transmission from unknown node %d", tr.From))
	}
	m.trans = append(m.trans, tr)
	m.sorted = false
}

// Transmissions returns all registered transmissions sorted by start
// time.
func (m *Medium) Transmissions() []Transmission {
	m.ensureSorted()
	return append([]Transmission(nil), m.trans...)
}

func (m *Medium) ensureSorted() {
	if m.sorted {
		return
	}
	sort.Slice(m.trans, func(i, j int) bool { return m.trans[i].StartS < m.trans[j].StartS })
	m.sorted = true
}

// BusyAt reports whether node `at` hears any other node's signal at
// time tS: each transmission [start, start+dur) arrives delayed by
// propagation; carrier sense integrates over its 80 ms window, which
// the caller models by polling BusyAt at its sense cadence.
func (m *Medium) BusyAt(at int, tS float64) bool {
	for _, tr := range m.trans {
		if tr.From == at {
			continue
		}
		if m.audible(at, tr) {
			d := m.DelayS(tr.From, at)
			if tr.emitting(tS - d) {
				return true
			}
		}
	}
	return false
}

// audible applies the carrier-sense range bound.
func (m *Medium) audible(at int, tr Transmission) bool {
	if m.CSRangeM <= 0 {
		return true
	}
	return m.positions[tr.From].DistanceTo(m.positions[at]) <= m.CSRangeM
}

// CollisionStats counts packets involved in collisions using the
// paper's transmitter-side definition: two packets collide when their
// transmit times fall within one packet duration of each other. The
// returned slice gives, per node, (collided, total) packet counts.
func (m *Medium) CollisionStats() (perNode map[int][2]int, fraction float64) {
	m.ensureSorted()
	collided := make([]bool, len(m.trans))
	for i := 0; i < len(m.trans); i++ {
		for j := i + 1; j < len(m.trans); j++ {
			a, b := m.trans[i], m.trans[j]
			// Sorted by start: stop once b starts a full packet
			// duration after a (no further overlap possible).
			if b.StartS-a.StartS >= math.Max(a.DurS, b.DurS) {
				break
			}
			if a.From == b.From {
				continue
			}
			collided[i] = true
			collided[j] = true
		}
	}
	perNode = make(map[int][2]int)
	total, hit := 0, 0
	for i, tr := range m.trans {
		c := perNode[tr.From]
		c[1]++
		if collided[i] {
			c[0]++
			hit++
		}
		perNode[tr.From] = c
		total++
	}
	if total > 0 {
		fraction = float64(hit) / float64(total)
	}
	return perNode, fraction
}

// Reset clears registered transmissions but keeps nodes.
func (m *Medium) Reset() {
	m.trans = m.trans[:0]
	m.sorted = true
}
