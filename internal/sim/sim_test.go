package sim

import (
	"math"
	"testing"

	"aquago/internal/channel"
	"aquago/internal/dsp"
)

func TestPositionsAndDelay(t *testing.T) {
	m := New(channel.Bridge)
	a := m.AddNode(Position{X: 0, Z: 1})
	b := m.AddNode(Position{X: 15, Z: 1})
	if m.NumNodes() != 2 {
		t.Fatal("node count")
	}
	// 15 m at 1500 m/s = 10 ms.
	if d := m.DelayS(a, b); math.Abs(d-0.01) > 1e-9 {
		t.Fatalf("delay %g, want 0.01", d)
	}
	if d := m.DelayS(a, a); d != 0 {
		t.Fatal("self delay should be 0")
	}
}

func TestBusyAtWithPropagation(t *testing.T) {
	m := New(channel.Bridge)
	tx := m.AddNode(Position{X: 0, Z: 1})
	rx := m.AddNode(Position{X: 150, Z: 1}) // 100 ms away
	m.Transmit(Transmission{From: tx, StartS: 1.0, DurS: 0.5, Seq: 0})
	// Before the sound arrives.
	if m.BusyAt(rx, 1.05) {
		t.Fatal("signal cannot arrive before propagation delay")
	}
	// While audible: [1.1, 1.6).
	if !m.BusyAt(rx, 1.2) {
		t.Fatal("channel should be busy mid-packet")
	}
	if m.BusyAt(rx, 1.65) {
		t.Fatal("channel should be idle after the packet passes")
	}
	// The transmitter does not hear itself as "other".
	if m.BusyAt(tx, 1.2) {
		t.Fatal("own transmission must not trigger carrier sense")
	}
}

func TestCSRangeLimitsAudibility(t *testing.T) {
	m := New(channel.Bridge)
	tx := m.AddNode(Position{X: 0, Z: 1})
	far := m.AddNode(Position{X: 500, Z: 1})
	m.CSRangeM = 100
	m.Transmit(Transmission{From: tx, StartS: 0, DurS: 10, Seq: 0})
	if m.BusyAt(far, 5) {
		t.Fatal("node beyond carrier-sense range should not hear")
	}
}

func TestCollisionStats(t *testing.T) {
	m := New(channel.Bridge)
	a := m.AddNode(Position{X: 0, Z: 1})
	b := m.AddNode(Position{X: 5, Z: 1})
	// Two overlapping packets and one clear packet.
	m.Transmit(Transmission{From: a, StartS: 0.0, DurS: 0.6, Seq: 0})
	m.Transmit(Transmission{From: b, StartS: 0.3, DurS: 0.6, Seq: 0})
	m.Transmit(Transmission{From: a, StartS: 5.0, DurS: 0.6, Seq: 1})
	per, frac := m.CollisionStats()
	if per[a] != [2]int{1, 2} {
		t.Fatalf("node a stats %v, want {1,2}", per[a])
	}
	if per[b] != [2]int{1, 1} {
		t.Fatalf("node b stats %v, want {1,1}", per[b])
	}
	if math.Abs(frac-2.0/3.0) > 1e-9 {
		t.Fatalf("collision fraction %g, want 2/3", frac)
	}
}

func TestCollisionStatsSameNodeNoSelfCollision(t *testing.T) {
	m := New(channel.Bridge)
	a := m.AddNode(Position{})
	m.AddNode(Position{X: 5})
	// Back-to-back packets from the same node never "collide".
	m.Transmit(Transmission{From: a, StartS: 0.0, DurS: 0.6, Seq: 0})
	m.Transmit(Transmission{From: a, StartS: 0.3, DurS: 0.6, Seq: 1})
	_, frac := m.CollisionStats()
	if frac != 0 {
		t.Fatalf("self-overlap counted as collision: %g", frac)
	}
}

func TestMediumReset(t *testing.T) {
	m := New(channel.Bridge)
	m.AddNode(Position{})
	m.Transmit(Transmission{From: 0, StartS: 0, DurS: 1})
	m.Reset()
	if len(m.Transmissions()) != 0 {
		t.Fatal("reset did not clear transmissions")
	}
	if m.NumNodes() != 1 {
		t.Fatal("reset should keep nodes")
	}
}

func TestWaveMediumMixesConcurrentTransmissions(t *testing.T) {
	w := NewWaveMedium(channel.Bridge, 48000, 71)
	a := w.AddNode(Position{X: 0, Z: 1})
	b := w.AddNode(Position{X: 10, Z: 1})
	rx := w.AddNode(Position{X: 5, Z: 1})
	toneA := dsp.Tone(2000, 0.1, 48000)
	toneB := dsp.Tone(3000, 0.1, 48000)
	w.TransmitWave(a, 0.01, 0, toneA)
	w.TransmitWave(b, 0.02, 0, toneB)
	win, err := w.ReceiveWindow(rx, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(win) != int(0.3*48000) {
		t.Fatalf("window length %d", len(win))
	}
	// Both tones must be present in the mix.
	p2k := dsp.GoertzelPower(win[1000:6000], 2000, 48000)
	p3k := dsp.GoertzelPower(win[1500:6500], 3000, 48000)
	noiseRef := dsp.GoertzelPower(win[13000:14000], 2500, 48000)
	if p2k < 10*noiseRef || p3k < 10*noiseRef {
		t.Fatalf("mixed tones not audible: 2k=%g 3k=%g ref=%g", p2k, p3k, noiseRef)
	}
}

func TestWaveMediumWindowValidation(t *testing.T) {
	w := NewWaveMedium(channel.Bridge, 48000, 1)
	w.AddNode(Position{})
	if _, err := w.ReceiveWindow(0, 1, 1); err == nil {
		t.Fatal("empty window must error")
	}
}
