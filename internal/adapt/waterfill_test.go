package adapt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWaterFillUniformChannel(t *testing.T) {
	// Equal SNRs: water-filling degenerates to uniform allocation.
	alloc, rate := WaterFill(flatSNR(10, 10))
	for i, p := range alloc {
		if math.Abs(p-1) > 1e-9 {
			t.Fatalf("bin %d power %g, want 1", i, p)
		}
	}
	want := 10 * math.Log2(1+10.0) // 10 bins at SNR 10 dB = 10x
	if math.Abs(rate-want) > 1e-9 {
		t.Fatalf("rate %g, want %g", rate, want)
	}
}

func TestWaterFillDropsDeadBins(t *testing.T) {
	snr := []float64{20, 20, -40, 20}
	alloc, _ := WaterFill(snr)
	if alloc[2] > 0.01 {
		t.Fatalf("dead bin allocated %g", alloc[2])
	}
	// The freed power goes to the others.
	total := alloc[0] + alloc[1] + alloc[3] + alloc[2]
	if math.Abs(total-4) > 1e-9 {
		t.Fatalf("total power %g, want 4", total)
	}
}

func TestWaterFillBudgetConservedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + int(r.Int31n(60))
		snr := make([]float64, n)
		for i := range snr {
			snr[i] = -10 + 40*r.Float64()
		}
		alloc, rate := WaterFill(snr)
		var total float64
		for _, p := range alloc {
			if p < 0 {
				return false
			}
			total += p
		}
		// Budget is n units (within numerics); rate non-negative.
		return math.Abs(total-float64(n)) < 1e-6 && rate >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestWaterFillDominatesUniformAndBands(t *testing.T) {
	// Water-filling is the optimum: it must beat (or tie) the rate of
	// every contiguous band with uniform reallocation.
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		n := 20 + int(rng.Int31n(40))
		snr := make([]float64, n)
		for i := range snr {
			snr[i] = -10 + 35*rng.Float64()
		}
		_, wf := WaterFill(snr)
		for lo := 0; lo < n; lo += 5 {
			for hi := lo; hi < n; hi += 7 {
				if br := BandRateBits(snr, lo, hi); br > wf+1e-6 {
					t.Fatalf("band [%d,%d] rate %g exceeds water-filling %g", lo, hi, br, wf)
				}
			}
		}
	}
}

func TestBandSelectionNearWaterFillingRate(t *testing.T) {
	// The design claim behind the paper's low-overhead feedback: on
	// realistic SNR profiles the selected band achieves a large
	// fraction of the water-filling rate at a tiny fraction of the
	// feedback cost.
	rng := rand.New(rand.NewSource(72))
	sel := NewSelector()
	var ratioSum float64
	var count int
	for trial := 0; trial < 40; trial++ {
		snr := make([]float64, 60)
		base := 5 + 20*rng.Float64()
		for i := range snr {
			snr[i] = base + 6*rng.NormFloat64()
		}
		// Carve a couple of multipath notches.
		for k := 0; k < 2; k++ {
			at := rng.Intn(50)
			for j := 0; j < 6 && at+j < 60; j++ {
				snr[at+j] -= 18
			}
		}
		band, ok := sel.Select(snr)
		if !ok {
			continue
		}
		_, wf := WaterFill(snr)
		if wf <= 0 {
			continue
		}
		ratioSum += BandRateBits(snr, band.Lo, band.Hi) / wf
		count++
	}
	if count == 0 {
		t.Fatal("no feasible trials")
	}
	ratio := ratioSum / float64(count)
	t.Logf("band selection achieves %.0f%% of the water-filling rate on average", 100*ratio)
	if ratio < 0.5 {
		t.Fatalf("band selection achieves only %.0f%% of water-filling", 100*ratio)
	}
	// And the feedback asymmetry that justifies it:
	bs, wfBits := FeedbackCostBits(60, 6)
	if bs >= wfBits/10 {
		t.Fatalf("feedback cost: band %d bits vs water-filling %d bits", bs, wfBits)
	}
}

func TestWaterFillEmptyAndDead(t *testing.T) {
	if alloc, rate := WaterFill(nil); alloc != nil || rate != 0 {
		t.Fatal("empty input")
	}
	alloc, rate := WaterFill([]float64{math.Inf(-1), math.Inf(-1)})
	if rate != 0 {
		t.Fatal("all-dead channel should carry nothing")
	}
	for _, p := range alloc {
		if p != 0 {
			t.Fatal("all-dead channel allocated power")
		}
	}
}

func TestBandRateBitsBounds(t *testing.T) {
	snr := flatSNR(10, 10)
	if BandRateBits(snr, -1, 5) != 0 || BandRateBits(snr, 5, 10) != 0 || BandRateBits(snr, 7, 3) != 0 {
		t.Fatal("invalid bands should rate 0")
	}
	if BandRateBits(nil, 0, 0) != 0 {
		t.Fatal("empty SNR")
	}
}
