package adapt

import (
	"math"
	"sort"
)

// WaterFill computes the classic water-filling power allocation the
// paper cites as the ideal-but-impractical alternative to band
// selection (§2.2.2): given per-subcarrier SNRs (dB, measured at
// uniform unit power per bin), distribute the same total power
// (numBins units) to maximize the Shannon sum rate.
//
// It returns the per-bin power allocation and the achieved sum rate
// in bits per OFDM symbol. The point of the comparison is not to use
// this on air — conveying the allocation costs O(numBins) feedback
// bits versus the two tones of band selection — but to quantify how
// little rate the low-overhead scheme gives up (the AblWaterfill
// experiment).
func WaterFill(snrDB []float64) (alloc []float64, sumRateBits float64) {
	n := len(snrDB)
	if n == 0 {
		return nil, 0
	}
	// Linear per-unit-power gains.
	g := make([]float64, n)
	for i, s := range snrDB {
		g[i] = math.Pow(10, s/10)
	}
	// Water level: sort inverse gains ascending, fill until the
	// budget (n units) is spent.
	inv := make([]float64, n)
	for i, gi := range g {
		if gi <= 0 {
			inv[i] = math.Inf(1)
		} else {
			inv[i] = 1 / gi
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return inv[order[a]] < inv[order[b]] })

	// Classic search: admit the m best bins and set the water level
	// mu_m = (budget + sum inv)/m; the largest m whose level still
	// covers its worst admitted bin (mu_m > inv_(m)) is optimal.
	budget := float64(n)
	bestM := 0
	var level float64
	var invSum float64
	for m := 1; m <= n; m++ {
		im := inv[order[m-1]]
		if math.IsInf(im, 1) {
			break
		}
		invSum += im
		mu := (budget + invSum) / float64(m)
		if mu > im {
			bestM = m
			level = mu
		}
	}
	alloc = make([]float64, n)
	if bestM == 0 {
		return alloc, 0
	}
	for i := 0; i < bestM; i++ {
		idx := order[i]
		if p := level - inv[idx]; p > 0 {
			alloc[idx] = p
			sumRateBits += math.Log2(1 + p*g[idx])
		}
	}
	return alloc, sumRateBits
}

// BandRateBits returns the Shannon sum rate (bits per OFDM symbol) of
// transmitting on band [lo, hi] with the total power (numBins units)
// spread uniformly across the band — the rate the paper's band
// selection actually realizes, for comparison against WaterFill.
func BandRateBits(snrDB []float64, lo, hi int) float64 {
	n := len(snrDB)
	if n == 0 || lo < 0 || hi >= n || lo > hi {
		return 0
	}
	width := float64(hi - lo + 1)
	perBin := float64(n) / width // reallocation factor
	var rate float64
	for k := lo; k <= hi; k++ {
		g := math.Pow(10, snrDB[k]/10)
		rate += math.Log2(1 + perBin*g)
	}
	return rate
}

// FeedbackCostBits estimates the feedback payload each scheme needs:
// band selection sends two tone positions (one OFDM symbol); water-
// filling must quantize one power value per bin (bitsPerBin each).
func FeedbackCostBits(numBins, bitsPerBin int) (bandSelection, waterFilling int) {
	// Two indices out of numBins, but physically one symbol: count
	// the information content.
	bandSelection = 2 * ceilLog2(numBins)
	waterFilling = numBins * bitsPerBin
	return
}

func ceilLog2(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}
