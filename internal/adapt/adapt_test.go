package adapt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aquago/internal/dsp"
	"aquago/internal/modem"
)

func flatSNR(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSelectAllAboveThreshold(t *testing.T) {
	s := NewSelector()
	band, ok := s.Select(flatSNR(60, 20))
	if !ok {
		t.Fatal("high SNR not selected")
	}
	if band.Lo != 0 || band.Hi != 59 {
		t.Fatalf("expected full band, got %+v", band)
	}
}

func TestSelectAllBelowThreshold(t *testing.T) {
	s := NewSelector()
	// Even one bin with all power reallocated:
	// -30 + 0.8*10*log10(60) ≈ -15.8 dB < 7 dB -> no band.
	if _, ok := s.Select(flatSNR(60, -30)); ok {
		t.Fatal("hopeless SNR should select nothing")
	}
}

func TestSelectReallocationEnablesNarrowBand(t *testing.T) {
	s := NewSelector()
	// 4 dB flat: below the 7 dB threshold at full width, but narrowing
	// gains 0.8*10*log10(60/L); for L small enough the constraint
	// holds: need 4 + 8*log10(60/L) > 7 -> log10(60/L) > 0.375 ->
	// L < 60/10^0.375 ≈ 25.3, so the widest feasible band is 25 bins.
	band, ok := s.Select(flatSNR(60, 4))
	if !ok {
		t.Fatal("reallocation should make a narrow band feasible")
	}
	if band.Width() != 25 {
		t.Fatalf("band width %d, want 25", band.Width())
	}
	if band.Lo != 0 {
		t.Fatalf("tie should break to the leftmost window, got %+v", band)
	}
}

func TestSelectAvoidsNotch(t *testing.T) {
	s := NewSelector()
	snr := flatSNR(60, 20)
	// Deep multipath notch at bins 25-29.
	for k := 25; k < 30; k++ {
		snr[k] = -10
	}
	band, ok := s.Select(snr)
	if !ok {
		t.Fatal("should find a band beside the notch")
	}
	if band.Lo <= 29 && band.Hi >= 25 {
		t.Fatalf("band %+v overlaps the notch", band)
	}
	if band.Width() != 30 {
		// The right side [30,59] is the widest clean window.
		t.Fatalf("band %+v, want the 30-bin window right of the notch", band)
	}
}

func TestSelectConstraintHolds(t *testing.T) {
	// Property: the returned band always satisfies the optimization
	// constraint, and widening it by one bin on either side violates
	// feasibility or the band is already maximal for its width.
	rng := rand.New(rand.NewSource(90))
	s := NewSelector()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n0 := 10 + int(r.Int31n(60))
		snr := make([]float64, n0)
		for i := range snr {
			snr[i] = -10 + 40*r.Float64()
		}
		band, ok := s.Select(snr)
		if !ok {
			// Verify infeasibility of every single bin.
			for k := 0; k < n0; k++ {
				if s.EffectiveSNR(snr[k], 1, n0) > s.ThresholdDB {
					return false
				}
			}
			return true
		}
		l := band.Width()
		for k := band.Lo; k <= band.Hi; k++ {
			if s.EffectiveSNR(snr[k], l, n0) <= s.ThresholdDB {
				return false
			}
		}
		// No window of width l+1 may be feasible (maximality).
		if l < n0 {
			for m := 0; m+l+1 <= n0; m++ {
				feasible := true
				for k := m; k < m+l+1; k++ {
					if s.EffectiveSNR(snr[k], l+1, n0) <= s.ThresholdDB {
						feasible = false
						break
					}
				}
				if feasible {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSelectFastMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	s := NewSelector()
	for trial := 0; trial < 300; trial++ {
		n0 := 1 + int(rng.Int31n(80))
		snr := make([]float64, n0)
		for i := range snr {
			snr[i] = -15 + 40*rng.Float64()
		}
		b1, ok1 := s.Select(snr)
		b2, ok2 := s.SelectFast(snr)
		if ok1 != ok2 || (ok1 && (b1 != b2)) {
			t.Fatalf("trial %d: Select=%+v(%v) SelectFast=%+v(%v) snr=%v",
				trial, b1, ok1, b2, ok2, snr)
		}
	}
}

func TestSelectEmptyInput(t *testing.T) {
	s := NewSelector()
	if _, ok := s.Select(nil); ok {
		t.Fatal("empty SNR vector should select nothing")
	}
	if _, ok := s.SelectFast(nil); ok {
		t.Fatal("empty SNR vector should select nothing (fast)")
	}
}

func TestBitrateBPS(t *testing.T) {
	cfg := modem.DefaultConfig()
	// 19-bin band at 50 Hz spacing with 2/3 coding = 633.33 bps,
	// the paper's median at 5 m.
	b := modem.Band{Lo: 10, Hi: 28}
	if got := BitrateBPS(b, cfg, 2.0/3.0); math.Abs(got-633.333) > 0.01 {
		t.Fatalf("bitrate %g, want 633.33", got)
	}
	// 4 bins -> 133.33 bps, the paper's median at 30 m.
	b = modem.Band{Lo: 0, Hi: 3}
	if got := BitrateBPS(b, cfg, 2.0/3.0); math.Abs(got-133.333) > 0.01 {
		t.Fatalf("bitrate %g, want 133.33", got)
	}
}

func mustModem(t testing.TB) *modem.Modem {
	t.Helper()
	m, err := modem.New(modem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFeedbackRoundTripClean(t *testing.T) {
	m := mustModem(t)
	fb := NewFeedback(m)
	bands := []modem.Band{
		{Lo: 0, Hi: 59}, {Lo: 10, Hi: 28}, {Lo: 5, Hi: 5}, {Lo: 0, Hi: 1}, {Lo: 58, Hi: 59},
	}
	for _, band := range bands {
		sym, err := fb.Encode(band)
		if err != nil {
			t.Fatal(err)
		}
		if len(sym) != m.Config().SymbolLen() {
			t.Fatalf("feedback symbol %d samples", len(sym))
		}
		// Receiver sees it after some unknown delay.
		rx := make([]float64, len(sym)+500)
		dsp.AddAt(rx, sym, 137)
		got, ok := fb.Decode(rx, 400, 8)
		if !ok {
			t.Fatalf("band %+v: feedback not decoded", band)
		}
		if got != band {
			t.Fatalf("band %+v decoded as %+v", band, got)
		}
	}
}

func TestFeedbackRoundTripNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	m := mustModem(t)
	fb := NewFeedback(m)
	band := modem.Band{Lo: 7, Hi: 43}
	sym, err := fb.Encode(band)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		rx := make([]float64, len(sym)+2000)
		for i := range rx {
			rx[i] = 0.1 * rng.NormFloat64()
		}
		dsp.AddAt(rx, sym, 60+int(rng.Int31n(800)))
		got, ok := fb.Decode(rx, 1200, 8)
		if !ok || got != band {
			errs++
		}
	}
	// The paper measures ~1% feedback error; at this SNR we allow a
	// small number of failures out of 50.
	if errs > 2 {
		t.Fatalf("feedback errors %d/%d", errs, trials)
	}
}

func TestFeedbackNoSymbolPresent(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	m := mustModem(t)
	fb := NewFeedback(m)
	rx := make([]float64, 5000)
	for i := range rx {
		rx[i] = rng.NormFloat64()
	}
	if band, ok := fb.Decode(rx, 3000, 8); ok {
		t.Fatalf("noise decoded as feedback %+v", band)
	}
}

func TestFeedbackValidation(t *testing.T) {
	m := mustModem(t)
	fb := NewFeedback(m)
	if _, err := fb.Encode(modem.Band{Lo: -1, Hi: 5}); err == nil {
		t.Fatal("expected invalid band error")
	}
	if _, err := fb.Encode(modem.Band{Lo: 0, Hi: 60}); err == nil {
		t.Fatal("expected out-of-range band error")
	}
}

func TestFeedbackPowerConcentration(t *testing.T) {
	// The design premise: the two marker tones carry (almost) all the
	// symbol energy.
	m := mustModem(t)
	fb := NewFeedback(m)
	band := modem.Band{Lo: 12, Hi: 47}
	sym, err := fb.Encode(band)
	if err != nil {
		t.Fatal(err)
	}
	bins, err := m.DemodSymbol(sym[m.Config().CPLen:])
	if err != nil {
		t.Fatal(err)
	}
	var tones, rest float64
	for i, v := range bins {
		if i == 12 || i == 47 {
			tones += dsp.CAbs2(v)
		} else {
			rest += dsp.CAbs2(v)
		}
	}
	if tones < 1000*rest {
		t.Fatalf("tone power %g vs other-bin power %g", tones, rest)
	}
}

func BenchmarkSelect60Bins(b *testing.B) {
	rng := rand.New(rand.NewSource(94))
	s := NewSelector()
	snr := make([]float64, 60)
	for i := range snr {
		snr[i] = -5 + 30*rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select(snr)
	}
}

func BenchmarkSelectFast60Bins(b *testing.B) {
	rng := rand.New(rand.NewSource(95))
	s := NewSelector()
	snr := make([]float64, 60)
	for i := range snr {
		snr[i] = -5 + 30*rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SelectFast(snr)
	}
}

func BenchmarkFeedbackDecode(b *testing.B) {
	m, err := modem.New(modem.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	fb := NewFeedback(m)
	sym, err := fb.Encode(modem.Band{Lo: 7, Hi: 43})
	if err != nil {
		b.Fatal(err)
	}
	rx := make([]float64, len(sym)+2000)
	dsp.AddAt(rx, sym, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := fb.Decode(rx, 1500, 8); !ok {
			b.Fatal("decode failed")
		}
	}
}
