// Package adapt implements AquaApp's frequency band adaptation: the
// band selection optimization (Algorithm 1 in the paper) that picks
// the widest contiguous set of OFDM subcarriers whose SNR — after
// reallocating the dropped subcarriers' power — clears a threshold,
// and the two-tone feedback symbol that carries the selected band from
// the receiver back to the transmitter.
package adapt

import (
	"math"

	"aquago/internal/modem"
)

// Paper parameter defaults (§2.2.2): SNR threshold epsilon = 7 dB and
// conservative factor lambda = 0.8, both chosen conservatively to
// absorb SNR estimation error and channel drift due to mobility.
const (
	DefaultSNRThresholdDB = 7.0
	DefaultLambda         = 0.8
)

// Selector holds the band selection parameters.
type Selector struct {
	// ThresholdDB is epsilon_SNR: every subcarrier in the chosen band
	// must exceed it after power reallocation.
	ThresholdDB float64
	// Lambda in [0,1] discounts the reallocation gain because real
	// power reallocation is inexact.
	Lambda float64
}

// NewSelector returns a selector with the paper's parameters.
func NewSelector() *Selector {
	return &Selector{ThresholdDB: DefaultSNRThresholdDB, Lambda: DefaultLambda}
}

// Select solves the paper's optimization over per-subcarrier SNR
// estimates (dB):
//
//	max  L = n - m + 1
//	s.t. SNR_k + lambda*10*log10(N0/L) > epsilon   for all k in [m, n]
//
// It scans window lengths L from N0 down to 1 and returns the first
// (widest) window that satisfies the constraint, i.e. the largest
// contiguous band. The boolean is false if even a single subcarrier
// cannot clear the threshold with all power concentrated on it — the
// caller should then refuse to transmit or fall back to the beacon
// rates.
//
// Complexity is O(N0^2) worst case like the paper's Algorithm 1
// (SelectFast is the O(N0 log N0) sliding-minimum variant used where
// throughput matters; they return identical bands).
func (s *Selector) Select(snrDB []float64) (modem.Band, bool) {
	n0 := len(snrDB)
	for l := n0; l >= 1; l-- {
		gain := s.Lambda * 10 * math.Log10(float64(n0)/float64(l))
		for m := 0; m+l <= n0; m++ {
			ok := true
			for k := m; k < m+l; k++ {
				if snrDB[k]+gain <= s.ThresholdDB {
					ok = false
					break
				}
			}
			if ok {
				return modem.Band{Lo: m, Hi: m + l - 1}, true
			}
		}
	}
	return modem.Band{}, false
}

// SelectFast returns the same band as Select using a monotonic-deque
// sliding-window minimum per length, O(N0) per candidate length
// instead of O(N0^2). For each L it finds the window with the largest
// minimum SNR and compares that to the threshold.
func (s *Selector) SelectFast(snrDB []float64) (modem.Band, bool) {
	n0 := len(snrDB)
	if n0 == 0 {
		return modem.Band{}, false
	}
	deque := make([]int, 0, n0) // indices with increasing SNR
	for l := n0; l >= 1; l-- {
		gain := s.Lambda * 10 * math.Log10(float64(n0)/float64(l))
		need := s.ThresholdDB - gain
		deque = deque[:0]
		for i := 0; i < n0; i++ {
			for len(deque) > 0 && snrDB[deque[len(deque)-1]] >= snrDB[i] {
				deque = deque[:len(deque)-1]
			}
			deque = append(deque, i)
			if deque[0] <= i-l {
				deque = deque[1:]
			}
			if i >= l-1 && snrDB[deque[0]] > need {
				// Leftmost qualifying window of this length: Select
				// scans m in ascending order, so find the earliest m.
				// The deque gives us *a* qualifying window ending at
				// i; to match Select exactly, rescan from the start
				// for this length (still O(n) amortized via two-pointer).
				if m, ok := earliestWindow(snrDB, l, need); ok {
					return modem.Band{Lo: m, Hi: m + l - 1}, true
				}
			}
		}
	}
	return modem.Band{}, false
}

// earliestWindow finds the smallest m such that min(snr[m:m+l]) > need.
func earliestWindow(snrDB []float64, l int, need float64) (int, bool) {
	n := len(snrDB)
	deque := make([]int, 0, n)
	for i := 0; i < n; i++ {
		for len(deque) > 0 && snrDB[deque[len(deque)-1]] >= snrDB[i] {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, i)
		if deque[0] <= i-l {
			deque = deque[1:]
		}
		if i >= l-1 && snrDB[deque[0]] > need {
			return i - l + 1, true
		}
	}
	return 0, false
}

// EffectiveSNR returns the post-reallocation SNR of subcarrier k when
// the band has width l out of n0 total bins — the quantity Algorithm 1
// thresholds.
func (s *Selector) EffectiveSNR(snrK float64, l, n0 int) float64 {
	return snrK + s.Lambda*10*math.Log10(float64(n0)/float64(l))
}

// BitrateBPS returns the information bit rate implied by a band under
// the modem configuration and code rate: width * spacing * rate.
// With 50 Hz spacing and the 2/3 code, a 19-bin band gives the
// paper's 633.3 bps median.
func BitrateBPS(b modem.Band, cfg modem.Config, codeRate float64) float64 {
	return float64(b.Width()) * float64(cfg.SpacingHz) * codeRate
}
