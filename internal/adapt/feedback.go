package adapt

import (
	"fmt"
	"math"

	"aquago/internal/dsp"
	"aquago/internal/modem"
)

// Feedback encodes and decodes the post-preamble feedback symbol: a
// single OFDM symbol whose entire transmit power sits in the two
// subcarriers marking f_begin and f_end of the selected band. The
// concentration of power is what makes the feedback decodable on the
// reverse channel without any channel knowledge — the receiver simply
// picks the two strongest bins (§2.2.3).
type Feedback struct {
	m *Modem
}

// Modem is a narrow alias used to keep the adapt package independent
// of the full modem surface in its public signatures.
type Modem = modem.Modem

// NewFeedback returns a feedback codec bound to a modem configuration.
func NewFeedback(m *Modem) *Feedback { return &Feedback{m: m} }

// Encode builds the feedback OFDM symbol for band b. The two marker
// tones split the symbol's unit power; a single-bin band (Lo == Hi)
// places all power on one tone, which Decode recognizes.
func (f *Feedback) Encode(b modem.Band) ([]float64, error) {
	nb := f.m.Config().NumBins()
	if !b.Valid(nb) {
		return nil, fmt.Errorf("adapt: invalid band %+v for %d bins", b, nb)
	}
	bins := make([]complex128, nb)
	if b.Lo == b.Hi {
		bins[b.Lo] = 1
	} else {
		bins[b.Lo] = 1
		bins[b.Hi] = 1
	}
	sym, err := f.m.ModulateSymbol(bins)
	if err != nil {
		return nil, err
	}
	// All power in two tones: normalize to unit RMS like data symbols
	// so the transmit amplifier model treats every symbol equally.
	rms := dsp.RMS(sym)
	if rms > 0 {
		dsp.Scale(sym, 1/rms)
	}
	return sym, nil
}

// Decode searches rx with a sliding FFT window (stride = step samples,
// up to maxDelay samples of search range) for the feedback symbol and
// returns the band encoded by its two strongest bins. The paper sizes
// maxDelay by the maximum round-trip time (30 m); step trades compute
// for alignment accuracy.
//
// It returns ok = false when no window contains a plausible two-tone
// symbol (energy concentration test), which the transmitter treats as
// feedback loss and a packet failure.
func (f *Feedback) Decode(rx []float64, maxDelay, step int) (modem.Band, bool) {
	cfg := f.m.Config()
	n := cfg.N()
	cp := cfg.CPLen
	if step < 1 {
		step = cp / 2
		if step < 1 {
			step = 1
		}
	}
	if maxDelay < 0 {
		maxDelay = 0
	}
	if n > len(rx) {
		return modem.Band{}, false
	}
	// Stage 1: energy alignment. A window fully inside the symbol
	// captures maximal energy; windows hanging over the symbol edge
	// lose energy AND smear tone power into adjacent bins (leakage
	// that can outvote a genuinely faded second tone). Restrict
	// classification to the top-energy plateau.
	var we float64
	for _, v := range rx[:n] {
		we += v * v
	}
	maxE := we
	energies := []float64{we}
	limit := min(maxDelay, len(rx)-n)
	for off := 1; off <= limit; off++ {
		we += rx[off+n-1]*rx[off+n-1] - rx[off-1]*rx[off-1]
		energies = append(energies, we)
		if we > maxE {
			maxE = we
		}
	}
	if maxE <= 0 {
		return modem.Band{}, false
	}
	// Stage 2: score-weighted vote across plateau windows.
	votes := map[modem.Band]float64{}
	bestScore := map[modem.Band]float64{}
	for off := 0; off <= limit; off += step {
		if energies[off] < 0.95*maxE {
			continue
		}
		bins, err := f.m.DemodSymbol(rx[off : off+n])
		if err != nil {
			return modem.Band{}, false
		}
		band, score := f.classify(bins)
		if score <= 0 {
			continue
		}
		votes[band] += score
		if score > bestScore[band] {
			bestScore[band] = score
		}
	}
	var winner modem.Band
	var winnerVotes float64
	for band, v := range votes {
		if v > winnerVotes {
			winner, winnerVotes = band, v
		}
	}
	// Concentration threshold: the top tones must dominate the band.
	// Gaussian noise alone concentrates ~0.15 of its power in the top
	// two of 60 bins; 0.35 rejects it while tolerating one faded tone.
	if winnerVotes == 0 || bestScore[winner] < 0.35 {
		return modem.Band{}, false
	}
	return winner, true
}

// classify finds the top-2 bins and scores the hypothesis by the
// fraction of total band energy they carry. A second tone counts only
// if it clears the noise floor (median bin power) by a wide margin —
// otherwise the symbol is treated as single-tone (Lo == Hi band).
func (f *Feedback) classify(bins []complex128) (modem.Band, float64) {
	powers := make([]float64, len(bins))
	var total float64
	i1, i2 := -1, -1
	var p1, p2 float64
	for i, v := range bins {
		p := dsp.CAbs2(v)
		powers[i] = p
		total += p
		switch {
		case p > p1:
			p2, i2 = p1, i1
			p1, i1 = p, i
		case p > p2:
			p2, i2 = p, i
		}
	}
	if total <= 0 || i1 < 0 {
		return modem.Band{}, 0
	}
	noiseFloor := dsp.Median(powers)
	toneGate := math.Max(8*noiseFloor, p1*1e-4)
	if i2 < 0 || p2 < toneGate {
		return modem.Band{Lo: i1, Hi: i1}, p1 / total
	}
	lo, hi := i1, i2
	if lo > hi {
		lo, hi = hi, lo
	}
	return modem.Band{Lo: lo, Hi: hi}, (p1 + p2) / total
}

// SymbolLen returns the feedback symbol length in samples (CP + body).
func (f *Feedback) SymbolLen() int { return f.m.Config().SymbolLen() }
