package exp

import (
	"fmt"
	"math"

	"aquago/internal/channel"
	"aquago/internal/dsp"
)

func init() {
	register("fig03a", Fig03aFrequencySelectivityDevices)
	register("fig03b", Fig03bFrequencySelectivityLocations)
	register("fig03cd", Fig03cdReciprocity)
}

// spectrumOfLink sounds a link with a chirp and returns its received
// spectrum restricted to [loHz, hiHz], normalized to peak 0 dB and
// decimated for readable output.
func spectrumOfLink(transmit func([]float64) []float64, chirp []float64, sampleRate float64, loHz, hiHz float64) Series {
	rx := transmit(chirp)
	sp := dsp.WelchPSD(rx, 2048, sampleRate, dsp.Hann)
	db := sp.PowerDB()
	var xs, ys []float64
	for i, f := range sp.Freqs {
		if f < loHz || f > hiHz {
			continue
		}
		xs = append(xs, f)
		ys = append(ys, db[i])
	}
	// Decimate to ~24 points.
	step := len(xs)/24 + 1
	var dx, dy []float64
	for i := 0; i < len(xs); i += step {
		dx = append(dx, xs[i])
		dy = append(dy, ys[i])
	}
	return Series{XLabel: "freq Hz", YLabel: "power dB", X: dx, Y: dy}
}

// Fig03aFrequencySelectivityDevices reproduces Fig 3a: the received
// spectrum of a 1-5 kHz chirp at 5 m differs across device pairs,
// with deep notches at device-specific frequencies.
func Fig03aFrequencySelectivityDevices(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig03a",
		Title: "Frequency selectivity across device pairs (1-5 kHz chirp, 5 m, lake)",
	}
	chirp := dsp.Chirp(1000, 5000, 0.5, 48000)
	pairs := []struct {
		name   string
		tx, rx channel.Device
	}{
		{"S9 -> S9", channel.GalaxyS9, channel.GalaxyS9},
		{"S9 -> Pixel4", channel.GalaxyS9, channel.Pixel4},
		{"Pixel4 -> OnePlus8", channel.Pixel4, channel.OnePlus8Pro},
		{"S9 -> Watch4", channel.GalaxyS9, channel.GalaxyWatch4},
	}
	series, err := parallelMap(cfg.Workers, len(pairs), func(i int) (Series, error) {
		p := pairs[i]
		link, err := channel.NewLink(channel.LinkParams{
			Env: channel.Lake, DistanceM: 5, Seed: cfg.Seed,
			TxDevice: p.tx, RxDevice: p.rx, NoiseOff: true,
		})
		if err != nil {
			return Series{}, err
		}
		s := spectrumOfLink(link.Transmit, chirp, 48000, 500, 6000)
		s.Name = p.name
		return s, nil
	})
	if err != nil {
		return rep, err
	}
	rep.Series = append(rep.Series, series...)
	// Headline check: response above 4 kHz diminishes (paper's
	// conclusion motivating the 1-4 kHz band).
	s9 := rep.Series[0]
	var inBand, above float64
	var nIn, nAbove int
	for i, f := range s9.X {
		if f >= 1000 && f <= 4000 {
			inBand += s9.Y[i]
			nIn++
		}
		if f > 4500 {
			above += s9.Y[i]
			nAbove++
		}
	}
	if nIn > 0 && nAbove > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"mean in-band power %.1f dB vs %.1f dB above 4.5 kHz (paper: response diminishes above 4 kHz)",
			inBand/float64(nIn), above/float64(nAbove)))
	}
	return rep, nil
}

// Fig03bFrequencySelectivityLocations reproduces Fig 3b: the same
// device pair (S9 -> S9) at 10 m sees different notch structures at
// different locations (different multipath realizations).
func Fig03bFrequencySelectivityLocations(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig03b",
		Title: "Frequency selectivity across locations (S9 pair, 10 m)",
	}
	chirp := dsp.Chirp(1000, 5000, 0.5, 48000)
	series, err := parallelMap(cfg.Workers, 4, func(loc int) (Series, error) {
		link, err := channel.NewLink(channel.LinkParams{
			Env: channel.Lake, DistanceM: 10, Seed: cfg.Seed + int64(loc)*7907,
			NoiseOff: true,
		})
		if err != nil {
			return Series{}, err
		}
		s := spectrumOfLink(link.Transmit, chirp, 48000, 500, 6000)
		s.Name = fmt.Sprintf("location %d", loc+1)
		return s, nil
	})
	if err != nil {
		return rep, err
	}
	rep.Series = append(rep.Series, series...)
	// Quantify how differently the notches fall: mean absolute dB
	// difference between locations 1 and 2 across the band.
	a, b := rep.Series[0], rep.Series[1]
	var diff float64
	n := min(len(a.Y), len(b.Y))
	for i := 0; i < n; i++ {
		diff += math.Abs(a.Y[i] - b.Y[i])
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"mean |response difference| between locations: %.1f dB (notches move with location)", diff/float64(n)))
	return rep, nil
}

// Fig03cdReciprocity reproduces Fig 3c,d: in air the forward and
// backward responses of an S9 pair at 2 m match closely; underwater
// they differ significantly, motivating explicit feedback.
func Fig03cdReciprocity(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig03cd",
		Title: "Channel reciprocity: air vs water (S9 pair, 2 m, 1-3 kHz chirp)",
	}
	chirp := dsp.Chirp(1000, 3000, 1.0, 48000)

	// Two jobs — the air pair and the water pair — because each
	// backward link derives from its forward sibling.
	pairs, err := parallelMap(cfg.Workers, 2, func(i int) ([2]Series, error) {
		if i == 0 {
			// Air: reciprocal by construction of the physical medium.
			fwdAir := channel.NewAirLink(2, channel.GalaxyS9, channel.GalaxyS9, 48000, cfg.Seed)
			bwdAir := channel.NewAirLink(2, channel.GalaxyS9, channel.GalaxyS9, 48000, cfg.Seed)
			sAirF := spectrumOfLink(fwdAir.Transmit, chirp, 48000, 1000, 3000)
			sAirF.Name = "air forward"
			sAirB := spectrumOfLink(bwdAir.Transmit, chirp, 48000, 1000, 3000)
			sAirB.Name = "air backward"
			return [2]Series{sAirF, sAirB}, nil
		}
		// Water: independent multipath realizations per direction.
		fwdW, err := channel.NewLink(channel.LinkParams{
			Env: channel.Lake, DistanceM: 2, Seed: cfg.Seed, NoiseOff: true,
		})
		if err != nil {
			return [2]Series{}, err
		}
		bwdW, err := fwdW.Reverse()
		if err != nil {
			return [2]Series{}, err
		}
		sWatF := spectrumOfLink(fwdW.Transmit, chirp, 48000, 1000, 3000)
		sWatF.Name = "water forward"
		sWatB := spectrumOfLink(bwdW.Transmit, chirp, 48000, 1000, 3000)
		sWatB.Name = "water backward"
		return [2]Series{sWatF, sWatB}, nil
	})
	if err != nil {
		return rep, err
	}
	sAirF, sAirB := pairs[0][0], pairs[0][1]
	sWatF, sWatB := pairs[1][0], pairs[1][1]

	rep.Series = []Series{sAirF, sAirB, sWatF, sWatB}

	meanAbsDiff := func(a, b Series) float64 {
		n := min(len(a.Y), len(b.Y))
		var d float64
		for i := 0; i < n; i++ {
			d += math.Abs(a.Y[i] - b.Y[i])
		}
		return d / float64(n)
	}
	airDiff := meanAbsDiff(sAirF, sAirB)
	watDiff := meanAbsDiff(sWatF, sWatB)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("air forward/backward mean |response difference|: %.2f dB (paper: near identical)", airDiff),
		fmt.Sprintf("water forward/backward mean |response difference|: %.2f dB (paper: differs significantly)", watDiff),
	)
	if watDiff > airDiff {
		rep.Notes = append(rep.Notes, "reciprocity broken underwater -> explicit feedback required (matches paper)")
	}
	return rep, nil
}
