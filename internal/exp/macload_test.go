package exp

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"aquago"
)

// tinyMacLoadSweep is the golden regression workload: small enough to
// run repeatedly under -race, wide enough to cross every moving part —
// both contention modes, two carrier-sense variants, an overload
// point, and a multi-pod spatial-reuse case that actually exercises
// batched concurrent sends.
func tinyMacLoadSweep() macLoadSweep {
	return macLoadSweep{
		envNodes:   []int{4},
		waveNodes:  []int{3},
		utils:      []float64{0.4, 1.3},
		variants:   []int{0, 1},
		targetMsgs: 6,
		reusePods:  []int{2},
		reuseUtil:  0.5,
	}
}

// TestMacLoadGoldenSeedsWorkers extends the PR 3 seeds×workers pattern
// to the goodput harness: for fixed seeds, the full report — goodput,
// latency and collision tables in both contention modes — must be
// deeply equal whether the measurement points run serially
// (Workers: 1) or fan out across the experiment pool (Workers: 4).
// Inside each point the live Network also runs with its default
// all-cores conflict-graph scheduler, so the test additionally pins
// that network-level concurrency never leaks into results.
func TestMacLoadGoldenSeedsWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the tiny sweep several times")
	}
	for _, seed := range []int64{3, 11} {
		serial, err := macLoadReport(RunConfig{Seed: seed, Quick: true, Workers: 1}, tinyMacLoadSweep())
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		parallel, err := macLoadReport(RunConfig{Seed: seed, Quick: true, Workers: 4}, tinyMacLoadSweep())
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("seed %d: Workers:1 and Workers:4 reports differ\nserial:   %+v\nparallel: %+v",
				seed, serial, parallel)
		}
		// The tables must not be vacuous: goodput present in both modes.
		var envSeen, waveSeen bool
		for _, s := range serial.Series {
			if !strings.HasPrefix(s.Name, "goodput ") {
				continue
			}
			if len(s.X) == 0 {
				t.Fatalf("seed %d: empty goodput series %q", seed, s.Name)
			}
			if strings.Contains(s.Name, "envelope") {
				envSeen = true
			}
			if strings.Contains(s.Name, "waveform") {
				waveSeen = true
			}
		}
		if !envSeen || !waveSeen {
			t.Fatalf("seed %d: goodput series missing a contention mode (envelope %v, waveform %v)",
				seed, envSeen, waveSeen)
		}
	}
}

// TestMacLoadPoissonProperties is the offered-load generator's
// property suite: for any seed, the offered bits total equals the sum
// over nodes of what each node generated (the merge drops and invents
// nothing), arrivals are in-window and strictly increasing, the draw
// is deterministic per seed, and the empirical inter-arrival mean
// reproduces the configured Poisson rate within tolerance.
func TestMacLoadPoissonProperties(t *testing.T) {
	const (
		nodes = 7
		rate  = 2.0
		dur   = 400.0
	)
	for _, seed := range []int64{1, 2, 19, 104729} {
		perNode := poissonArrivals(nodes, rate, dur, seed)
		merged := mergeArrivals(perNode)

		perNodeBits := 0
		for n, times := range perNode {
			perNodeBits += len(times) * messageBits
			last := -1.0
			for _, at := range times {
				if at < 0 || at >= dur {
					t.Fatalf("seed %d node %d: arrival %g outside [0, %g)", seed, n, at, dur)
				}
				if at <= last {
					t.Fatalf("seed %d node %d: arrivals not strictly increasing (%g after %g)", seed, n, at, last)
				}
				last = at
			}
		}
		if total := len(merged) * messageBits; total != perNodeBits {
			t.Fatalf("seed %d: merged schedule offers %d bits, per-node streams generated %d", seed, total, perNodeBits)
		}
		if got := offeredBits(perNode); got != perNodeBits {
			t.Fatalf("seed %d: offeredBits %d != per-node sum %d", seed, got, perNodeBits)
		}
		for i := 1; i < len(merged); i++ {
			a, b := merged[i-1], merged[i]
			if b.atS < a.atS || (b.atS == a.atS && b.node <= a.node) {
				t.Fatalf("seed %d: merge not (time, node)-ordered at %d: %+v then %+v", seed, i, a, b)
			}
		}

		// Empirical rate: pooled inter-arrival gaps (including each
		// node's gap from 0) must average 1/rate. With ~nodes*rate*dur
		// samples the relative standard error is ~1/sqrt(5600) ≈ 1.3%,
		// so 6% is a > 4-sigma allowance.
		var gapSum float64
		var gaps int
		for _, times := range perNode {
			prev := 0.0
			for _, at := range times {
				gapSum += at - prev
				prev = at
				gaps++
			}
		}
		mean := gapSum / float64(gaps)
		if want := 1 / rate; math.Abs(mean-want) > 0.06*want {
			t.Fatalf("seed %d: mean inter-arrival %g s, want %g ± 6%%", seed, mean, want)
		}

		if again := poissonArrivals(nodes, rate, dur, seed); !reflect.DeepEqual(perNode, again) {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
	}
	a := poissonArrivals(nodes, rate, dur, 5)
	b := poissonArrivals(nodes, rate, dur, 6)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical arrival streams")
	}
}

// TestMacLoadPointValidate walks the rejection paths surfaced by the
// CLIs (aquanet -load, aquabench -macload flags funnel into the same
// config type).
func TestMacLoadPointValidate(t *testing.T) {
	good := MacLoadPoint{
		Pods: 1, PodSize: 5, RateHz: 0.1, DurationS: 60,
		Mode: aquago.EnvelopeContention,
	}
	cases := []struct {
		name    string
		mutate  func(*MacLoadPoint)
		wantErr string
	}{
		{"valid", func(*MacLoadPoint) {}, ""},
		{"max nodes", func(p *MacLoadPoint) { p.PodSize = 60; p.RateHz = 0.01 }, ""},
		{"zero pods", func(p *MacLoadPoint) { p.Pods = 0 }, "at least one pod"},
		{"one-node pod", func(p *MacLoadPoint) { p.PodSize = 1 }, "at least 2 nodes"},
		{"over 60 nodes", func(p *MacLoadPoint) { p.PodSize = 61 }, "60-device network limit"},
		{"over 60 across pods", func(p *MacLoadPoint) { p.Pods = 7; p.PodSize = 9 }, "60-device network limit"},
		{"NaN rate", func(p *MacLoadPoint) { p.RateHz = math.NaN() }, "not a finite number"},
		{"infinite rate", func(p *MacLoadPoint) { p.RateHz = math.Inf(1) }, "not a finite number"},
		{"negative rate", func(p *MacLoadPoint) { p.RateHz = -0.5 }, "must be positive"},
		{"zero rate", func(p *MacLoadPoint) { p.RateHz = 0 }, "must be positive"},
		{"NaN duration", func(p *MacLoadPoint) { p.DurationS = math.NaN() }, "not a finite time"},
		{"negative duration", func(p *MacLoadPoint) { p.DurationS = -1 }, "must be positive"},
		{"zero duration", func(p *MacLoadPoint) { p.DurationS = 0 }, "must be positive"},
		{"schedule blow-up", func(p *MacLoadPoint) { p.RateHz = 1000; p.DurationS = 1e5 }, "cap"},
		{"bad mode", func(p *MacLoadPoint) { p.Mode = aquago.ContentionMode(9) }, "unknown contention mode"},
	}
	for _, tc := range cases {
		p := good
		tc.mutate(&p)
		err := p.Validate()
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: error expected, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestMacLoadSpatialReuseBatchesPods: with two pods beyond each
// other's carrier-sense range, the driver must find conflict-free
// batches wider than one send — the deterministic witness that the
// conflict-graph scheduler was actually handed concurrent work.
func TestMacLoadSpatialReuseBatchesPods(t *testing.T) {
	res, err := RunMacLoadPoint(MacLoadPoint{
		Pods: 2, PodSize: 3,
		RateHz:       0.3,
		DurationS:    12,
		Mode:         aquago.EnvelopeContention,
		CarrierSense: true,
		CSRangeM:     40,
		Seed:         7,
		Retries:      -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConflictWidth < 2 {
		t.Fatalf("two isolated pods never batched concurrently (width %d): %+v", res.ConflictWidth, res)
	}
	if res.Sched.Granted < res.Sched.Committed || res.Sched.Committed == 0 {
		t.Fatalf("scheduler counters inconsistent: %+v", res.Sched)
	}
	if res.Sched.AirtimeS <= 0 {
		t.Fatalf("committed airtime not accounted: %+v", res.Sched)
	}
	if res.DeliveredMsgs == 0 {
		t.Fatalf("nothing delivered at light load: %+v", res)
	}
}
