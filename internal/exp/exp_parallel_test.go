package exp

import (
	"errors"
	"reflect"
	"testing"
)

// TestWorkerCount pins the Workers knob semantics: <= 0 means one
// worker per core, anything else is taken literally.
func TestWorkerCount(t *testing.T) {
	if workerCount(1) != 1 {
		t.Fatal("Workers: 1 must stay serial")
	}
	if workerCount(7) != 7 {
		t.Fatal("explicit worker counts must be honored")
	}
	if workerCount(0) < 1 || workerCount(-3) < 1 {
		t.Fatal("all-cores mode must resolve to at least one worker")
	}
}

// TestParallelMapOrderAndValues checks that results land at their
// submission index regardless of worker count.
func TestParallelMapOrderAndValues(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		got, err := parallelMap(workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: index %d holds %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestParallelMapFirstErrorByIndex checks the deterministic error
// contract: the failed job with the smallest index wins, no matter
// which worker hit its error first.
func TestParallelMapFirstErrorByIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		_, err := parallelMap(workers, 50, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errLow
			case 31:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want the smallest-index error", workers, err)
		}
	}
}

// TestParallelMapStateWorkerOwnership checks that per-worker state is
// constructed (not shared across workers) and streams through every
// job exactly once.
func TestParallelMapStateWorkerOwnership(t *testing.T) {
	type state struct{ jobs int }
	n := 40
	got, err := parallelMapState(4, n,
		func() (*state, error) { return &state{}, nil },
		func(s *state, i int) (*state, error) {
			s.jobs++
			return s, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := map[*state]bool{}
	for _, s := range got {
		if !seen[s] {
			seen[s] = true
			total += s.jobs
		}
	}
	if total != n {
		t.Fatalf("worker states processed %d jobs in total, want %d", total, n)
	}
}

// TestRunDeterministicAcrossWorkerCounts is the engine's hard
// constraint: because every measurement point derives its own seed,
// the Report must be byte-identical whether the points run serially
// (Workers: 1) or fan out across the pool (Workers: N). fig09
// exercises runPoints batches, fig19 raw parallelMap jobs, and fig08
// parallelMapState with a shared per-worker modem/detector — the
// shape where result-affecting worker state would corrupt figures,
// since job-to-worker assignment varies with scheduling.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full harnesses twice")
	}
	for _, id := range []string{"fig09", "fig19", "fig08"} {
		id := id
		t.Run(id, func(t *testing.T) {
			serial, err := Run(id, RunConfig{Quick: true, Packets: 8, Seed: 5, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := Run(id, RunConfig{Quick: true, Packets: 8, Seed: 5, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("%s: Workers:1 and Workers:4 reports differ\nserial:   %+v\nparallel: %+v",
					id, serial, parallel)
			}
		})
	}
}
