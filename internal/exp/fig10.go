package exp

import (
	"fmt"

	"aquago/internal/channel"
	"aquago/internal/modem"
)

func init() {
	register("fig10", Fig10Depth)
	register("fig11", Fig11DeepWater)
}

// Fig10Depth reproduces Fig 10: at the 9 m-deep museum site with a
// fixed 5 m horizontal distance, depths near the surface (2 m) and
// near the bottom (7 m) are the hardest multipath environments; the
// adaptive scheme keeps PER far below the fixed bands at every depth.
func Fig10Depth(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig10",
		Title: "Effect of depth (museum, 9 m deep, 5 m distance)",
	}
	depths := []float64{2, 5, 7}
	mcfg := modem.DefaultConfig()
	bands := fixedBands(mcfg)

	var pts []point
	for di, depth := range depths {
		pts = append(pts, point{spec: linkSpec{env: channel.Museum, distanceM: 5, depthM: depth},
			packets: cfg.Packets, seed: cfg.Seed + int64(di)*17})
	}
	for bi := range bands {
		for di, depth := range depths {
			b := bands[bi]
			pts = append(pts, point{
				spec:    linkSpec{env: channel.Museum, distanceM: 5, depthM: depth, fixedBand: &b},
				packets: cfg.Packets, seed: cfg.Seed + int64(di)*17})
		}
	}
	all, err := runPoints(cfg, pts)
	if err != nil {
		return rep, err
	}

	adaptive := Series{Name: "PER adaptive", XLabel: "depth m", YLabel: "PER"}
	for di, depth := range depths {
		stats := all[di]
		rep.Series = append(rep.Series, summarizeCDF(
			fmt.Sprintf("bitrate CDF depth %.0f m", depth), "bitrate bps", stats.BitratesBPS))
		adaptive.X = append(adaptive.X, depth)
		adaptive.Y = append(adaptive.Y, stats.PER())
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"depth %.0f m: median bitrate %.0f bps, adaptive PER %.1f%%",
			depth, median(stats.BitratesBPS), 100*stats.PER()))
	}
	rep.Series = append(rep.Series, adaptive)

	for bi := range bands {
		s := Series{Name: "PER " + fixedBandNames[bi], XLabel: "depth m", YLabel: "PER"}
		for di, depth := range depths {
			stats := all[len(depths)+bi*len(depths)+di]
			s.X = append(s.X, depth)
			s.Y = append(s.Y, stats.PER())
		}
		rep.Series = append(rep.Series, s)
	}
	return rep, nil
}

// Fig11DeepWater reproduces Fig 11: at the bay site with the phones
// 12 m down in the 15 m water column, inside the hard 15 m-rated
// case, communication still works — at a reduced bitrate (paper
// median: 133 bps).
func Fig11DeepWater(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig11",
		Title: "Deeper water: bay at 12 m depth, hard polycarbonate case",
	}
	spec := linkSpec{
		env:       channel.Bay,
		distanceM: 3.5, // either side of the two-person kayak
		depthM:    12,
		casing:    channel.CasingHardCase,
	}
	all, err := runPoints(cfg, []point{{spec: spec, packets: cfg.Packets, seed: cfg.Seed}})
	if err != nil {
		return rep, err
	}
	stats := all[0]
	rep.Series = append(rep.Series,
		summarizeCDF("bitrate CDF (12 m deep, hard case)", "bitrate bps", stats.BitratesBPS))
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("median selected bitrate %.0f bps (paper: 133 bps with the hard case)",
			median(stats.BitratesBPS)),
		fmt.Sprintf("PER %.1f%%, %d/%d packets delivered",
			100*stats.PER(), stats.Delivered, stats.Sent))
	return rep, nil
}
