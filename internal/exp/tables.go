package exp

import (
	"fmt"
	"time"

	"aquago/internal/adapt"
	"aquago/internal/channel"
	"aquago/internal/dsp"
	"aquago/internal/fec"
	"aquago/internal/modem"
)

func init() {
	register("tab-preamble", TabPreambleDetection)
	register("tab-runtime", TabRuntime)
}

// TabPreambleDetection reproduces the §3 text numbers: preamble
// detection rate over 180 transmissions per distance (paper: 0.99,
// 1.0, 1.0, 0.96 at 5/10/20/30 m) and the feedback symbol error rate
// (~1 %, with errors confusing adjacent bins).
func TabPreambleDetection(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "tab-preamble",
		Title: "Preamble detection and feedback decoding rates (lake)",
	}
	preambles := 180
	if cfg.Quick {
		preambles = 30
	}
	distances := []float64{5, 10, 20, 30}

	// One job per (distance, preamble); workers share a
	// modem/detector/selector/feedback quartet.
	type preambleState struct {
		m   *modem.Modem
		det *modem.Detector
		sel *adapt.Selector
		fb  *adapt.Feedback
	}
	type outcome struct {
		detected       bool
		fbTried, fbErr bool
	}
	outcomes, err := parallelMapState(cfg.Workers, len(distances)*preambles,
		func() (preambleState, error) {
			m, err := modem.New(modem.DefaultConfig())
			if err != nil {
				return preambleState{}, err
			}
			return preambleState{m: m, det: modem.NewDetector(m),
				sel: adapt.NewSelector(), fb: adapt.NewFeedback(m)}, nil
		},
		func(st preambleState, i int) (outcome, error) {
			m := st.m
			dist := distances[i/preambles]
			tr := i % preambles
			var o outcome
			link, err := channel.NewLink(channel.LinkParams{
				Env: channel.Lake, DistanceM: dist,
				Seed: cfg.Seed + int64(tr)*53 + int64(dist)*7,
			})
			if err != nil {
				return o, err
			}
			rx := link.TransmitAt(m.Preamble(), float64(tr))
			d, ok := st.det.Detect(rx)
			o.detected = ok
			// Feedback measurement mirrors the protocol: Bob selects a
			// band from the received preamble (the paper's feedback
			// always carries *selected* bands, never arbitrary ones)
			// and signals it over the reverse channel.
			if ok && tr%3 == 0 && d.Offset+m.PreambleLen() <= len(rx) {
				est, err := m.EstimateChannel(rx[d.Offset : d.Offset+m.PreambleLen()])
				if err != nil {
					return o, err
				}
				band, found := st.sel.Select(est.SNRdB)
				if !found {
					return o, nil
				}
				rev, err := link.Reverse()
				if err != nil {
					return o, err
				}
				sym, err := st.fb.Encode(band)
				if err != nil {
					return o, err
				}
				rxFB := rev.TransmitAt(sym, float64(tr))
				got, ok := st.fb.Decode(rxFB, m.Config().N(), 8)
				o.fbTried = true
				o.fbErr = !ok || got != band
			}
			return o, nil
		})
	if err != nil {
		return rep, err
	}

	detection := Series{Name: "preamble detection rate", XLabel: "distance m", YLabel: "rate"}
	fbErrors := Series{Name: "feedback decode error rate", XLabel: "distance m", YLabel: "rate"}
	for di, dist := range distances {
		detected := 0
		fbErrs, fbTot := 0, 0
		for tr := 0; tr < preambles; tr++ {
			o := outcomes[di*preambles+tr]
			if o.detected {
				detected++
			}
			if o.fbTried {
				fbTot++
				if o.fbErr {
					fbErrs++
				}
			}
		}
		rate := float64(detected) / float64(preambles)
		detection.X = append(detection.X, dist)
		detection.Y = append(detection.Y, rate)
		fbRate := float64(fbErrs) / float64(fbTot)
		fbErrors.X = append(fbErrors.X, dist)
		fbErrors.Y = append(fbErrors.Y, fbRate)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%.0f m: detection %.3f (paper 0.96-1.0), feedback errors %.3f (paper ~0.01)",
			dist, rate, fbRate))
	}
	rep.Series = []Series{detection, fbErrors}
	return rep, nil
}

// TabRuntime reproduces the §3 runtime numbers: channel estimation,
// frequency adaptation and feedback decoding each cost 1-2 ms on a
// Galaxy S9, and equalization + Viterbi decode stay under the 20 ms
// symbol duration. Desktop numbers land far below those budgets; the
// point is the ordering and the real-time feasibility margins.
func TabRuntime(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "tab-runtime",
		Title: "Runtime of the real-time code paths (mean over repeated runs)",
	}
	// Deliberately serial: this harness measures wall time per path,
	// and sharing cores with pool workers would corrupt the numbers.
	m, err := modem.New(modem.DefaultConfig())
	if err != nil {
		return rep, err
	}
	iters := 50
	if cfg.Quick {
		iters = 10
	}

	timings := Series{Name: "runtimes", XLabel: "path index", YLabel: "microseconds"}
	timeIt := func(name string, f func()) {
		// Warm up once.
		f()
		//aqualint:wallclock-ok the runtimes table reports real per-call microseconds (the paper's Table 3 reproduction); wall time is the measurement itself
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		us := float64(time.Since(start).Microseconds()) / float64(iters) //aqualint:wallclock-ok wall time is the measurement itself, see start
		rep.Notes = append(rep.Notes, fmt.Sprintf("%-28s %8.0f us", name, us))
		timings.X = append(timings.X, float64(len(timings.X)))
		timings.Y = append(timings.Y, us)
	}

	rxPre := append([]float64(nil), m.Preamble()...)
	timeIt("channel estimation", func() {
		if _, err := m.EstimateChannel(rxPre); err != nil {
			panic(err)
		}
	})

	sel := adapt.NewSelector()
	snr := make([]float64, 60)
	for i := range snr {
		snr[i] = float64(i%25) - 5
	}
	timeIt("band adaptation (Alg. 1)", func() { sel.Select(snr) })
	timeIt("band adaptation (fast)", func() { sel.SelectFast(snr) })

	fb := adapt.NewFeedback(m)
	fbSym, err := fb.Encode(modem.Band{Lo: 7, Hi: 43})
	if err != nil {
		return rep, err
	}
	fbRx := make([]float64, len(fbSym)+1500)
	copy(fbRx[700:], fbSym)
	timeIt("feedback decoding", func() { fb.Decode(fbRx, 960, 8) })

	band := modem.Band{Lo: 5, Hi: 40}
	ref, err := m.TrainingSymbol(band)
	if err != nil {
		return rep, err
	}
	taps := make([]float64, 100)
	taps[0] = 1
	taps[60] = 0.4
	rxTrain := dsp.Convolve(ref, taps)[:len(ref)]
	timeIt("equalizer training (480 taps)", func() {
		if _, err := m.TrainEqualizer(rxTrain, ref, 480, -1); err != nil {
			panic(err)
		}
	})

	codec := fec.NewCodec(fec.Rate23, fec.TailBiting)
	coded := codec.Encode(make([]int, 16))
	timeIt("Viterbi decode (24 bits)", func() {
		if _, err := codec.DecodeHard(coded, 16); err != nil {
			panic(err)
		}
	})

	rep.Notes = append(rep.Notes,
		"paper budgets: estimation/adaptation/feedback 1-2 ms each; equalize+decode < 20 ms/symbol (Galaxy S9)")
	rep.Series = append(rep.Series, timings)
	return rep, nil
}
