package exp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"aquago"
)

func init() {
	register("scale", Scale)
}

// This file is the harbor-scale harness: the paper evaluates up to 60
// devices (the modem's 60-tone address pool), but with a bounded
// carrier-sense range the network reuses tones spatially and the
// interesting question becomes systems-level — does the simulator
// still admit, route and schedule when the water holds a thousand or
// ten thousand devices? The harness lays out a harbor: a lattice of
// pods (boats, reef stations) whose members sit within one
// carrier-sense range of each other, adjacent pods barely audible,
// distant pods silent. Cross-harbor messages then relay pod to pod,
// and the measured quantities are wall-clock, not acoustic: how long
// the build-out (joins + spatial index + incremental route upkeep)
// takes, how long route resolution takes, and how many committed
// exchanges per wall-second the conflict-graph scheduler sustains
// when almost all of the network is mutually inaudible.

// maxScaleNodes bounds one harbor so a misconfigured CLI cannot ask
// for millions of joins; 60 tones per pod also caps pods at
// MaxNetworkDevices/60.
const maxScaleNodes = 12000

// maxScaleMsgs bounds the relayed traffic of one point.
const maxScaleMsgs = 2000

// scalePodColors is the 2x2 tone-coloring of the pod lattice: pods at
// even/odd lattice parity draw tones from disjoint quarters of the
// 60-tone space, so any two pods close enough to hear each other
// (lattice distance 1, or a diagonal) never share a tone, while pods
// two steps apart — the nearest same-color pairs — sit beyond
// audibility by construction. Hence PodSize may use at most a quarter
// of the tone space.
const (
	scalePodColors  = 4
	scaleMaxPodSize = 60 / scalePodColors // 15
)

// Pod geometry in units of the carrier-sense range r: pod centers
// scaleSpacing*r apart, members on a circle of scaleRadius*r. The
// constants are chosen so the lattice is connected but sparse:
//
//   - within a pod every pair is audible (diameter 0.3 r < r);
//   - axis-adjacent pods are always connected (members at equal pod
//     phase sit exactly 0.9 r apart, and facing members as close as
//     0.6 r);
//   - the nearest same-color pods (two lattice steps, 1.8 r) keep
//     every cross pair at >= 1.5 r — inaudible, so tone reuse is safe;
//   - diagonal pods may brush audibility (1.27 r - 0.3 r < r), which
//     is fine: diagonals differ in both parities, so never in color.
const (
	scaleSpacing = 0.9
	scaleRadius  = 0.15
)

// ScalePoint parameterizes one harbor: a PodsX x PodsY lattice of
// pods with PodSize devices each, carrier sense bounded to CSRangeM,
// and Msgs relayed west-to-east cross-harbor transfers.
type ScalePoint struct {
	// PodsX, PodsY size the pod lattice.
	PodsX, PodsY int
	// PodSize is devices per pod (1..15; the 2x2 tone coloring grants
	// each pod a quarter of the 60-tone space).
	PodSize int
	// CSRangeM bounds audibility (default 30 m — the protocol's
	// comfortable per-hop working range; MinHop picks hops near the
	// bound); the whole geometry scales with it.
	CSRangeM float64
	// Msgs is how many cross-harbor messages to relay (default 8):
	// each runs from a random west-column pod member to a random
	// east-column pod member over the routed path.
	Msgs int
	// Seed drives channels, MAC backoffs, member/message draws.
	Seed int64
	// Retries is each node's extra attempt budget (< 0 = default).
	Retries int
	// Workers sizes the network's scheduler pool (deterministic fields
	// of the result are worker-count independent).
	Workers int
	// Env is the deployment site (zero value = Bridge).
	Env aquago.Environment
}

// withDefaults resolves derived knobs.
func (p ScalePoint) withDefaults() ScalePoint {
	if p.CSRangeM == 0 {
		p.CSRangeM = 30
	}
	if p.Msgs == 0 {
		p.Msgs = 8
	}
	return p
}

// Validate rejects harbors that cannot be built; cmd/aquanet -scale
// surfaces these to users.
func (p ScalePoint) Validate() error {
	q := p.withDefaults()
	nodes := q.PodsX * q.PodsY * q.PodSize
	switch {
	case q.PodsX < 2:
		return fmt.Errorf("scale: need at least two pod columns for cross-harbor traffic, got %d", q.PodsX)
	case q.PodsY < 1:
		return fmt.Errorf("scale: need at least one pod row, got %d", q.PodsY)
	case q.PodSize < 1 || q.PodSize > scaleMaxPodSize:
		return fmt.Errorf("scale: pod size %d outside 1..%d (each pod owns a quarter of the 60-tone space)", q.PodSize, scaleMaxPodSize)
	case nodes > maxScaleNodes:
		return fmt.Errorf("scale: %d nodes exceed the %d-node harness cap", nodes, maxScaleNodes)
	case q.PodsX*q.PodsY*60 > aquago.MaxNetworkDevices:
		return fmt.Errorf("scale: %d pods exhaust the %d-device ID space (60 IDs per pod)", q.PodsX*q.PodsY, aquago.MaxNetworkDevices)
	case math.IsNaN(q.CSRangeM) || math.IsInf(q.CSRangeM, 0) || q.CSRangeM <= 0:
		return fmt.Errorf("scale: carrier-sense range %v m is not a usable distance", q.CSRangeM)
	case q.Msgs < 1 || q.Msgs > maxScaleMsgs:
		return fmt.Errorf("scale: message count %d outside 1..%d", q.Msgs, maxScaleMsgs)
	}
	return nil
}

// scaleDeviceID maps (pod, color, member) onto the public ID space:
// 60 IDs per pod, the pod's color selecting which 15-tone quarter its
// members occupy on the air (ID mod 60 = color*15 + member).
func scaleDeviceID(pod, color, member int) aquago.DeviceID {
	return aquago.DeviceID(pod*60 + color*scaleMaxPodSize + member)
}

// scaleLayout returns the harbor geometry: per joined node its device
// ID and position, pod-major, members ascending.
func scaleLayout(p ScalePoint) (ids []aquago.DeviceID, pos []aquago.Position) {
	spacing := scaleSpacing * p.CSRangeM
	radius := scaleRadius * p.CSRangeM
	for py := 0; py < p.PodsY; py++ {
		for px := 0; px < p.PodsX; px++ {
			pod := py*p.PodsX + px
			color := (px%2)*2 + py%2
			cx, cy := float64(px)*spacing, float64(py)*spacing
			for m := 0; m < p.PodSize; m++ {
				a := 2 * math.Pi * float64(m) / float64(p.PodSize)
				ids = append(ids, scaleDeviceID(pod, color, m))
				pos = append(pos, aquago.Position{
					X: cx + radius*math.Cos(a),
					Y: cy + radius*math.Sin(a),
					Z: 1,
				})
			}
		}
	}
	return ids, pos
}

// ScaleResult reports one harbor point. The traffic fields (Delivered
// through MakespanS, plus Granted/Committed/AirtimeS inside Sched)
// are deterministic — identical for any worker count; the *WallS
// fields and CommittedPerWallSec are wall-clock measurements of this
// run on this machine, and Sched.MaxConcurrent/ConflictEdges depend
// on wall-clock overlap.
type ScaleResult struct {
	Nodes, Pods int
	// Msgs counts offered cross-harbor transfers; Delivered the ones
	// whose payload walked the whole path; BusyDrops/NoACKs transfers
	// that died on a hop's MAC deadline / attempt budget.
	Msgs, Delivered, BusyDrops, NoACKs int
	// TotalHops sums delivered messages' path hops.
	TotalHops int
	// MakespanS is the virtual time the last delivery completed at.
	MakespanS float64
	// JoinWallS is the wall-clock build-out time: all joins, including
	// spatial-index and route-cache upkeep. RouteWallS is the
	// wall-clock cost of resolving every message's route. DriveWallS
	// is the wall-clock time driving the relayed traffic.
	JoinWallS, RouteWallS, DriveWallS float64
	// CommittedPerWallSec is committed exchanges over DriveWallS — the
	// headline scheduler-throughput figure.
	CommittedPerWallSec float64
	// Sched snapshots the network's scheduler counters.
	Sched aquago.SchedulerStats
}

// DeterministicKey digests the worker-count-independent fields; runs
// of the same point must produce equal keys for any Workers value
// (the scale determinism test pins this at ~500 nodes).
func (r ScaleResult) DeterministicKey() string {
	return fmt.Sprintf("nodes=%d pods=%d msgs=%d delivered=%d busy=%d noack=%d hops=%d makespan=%.9f granted=%d committed=%d airtime=%.9f",
		r.Nodes, r.Pods, r.Msgs, r.Delivered, r.BusyDrops, r.NoACKs,
		r.TotalHops, r.MakespanS, r.Sched.Granted, r.Sched.Committed, r.Sched.AirtimeS)
}

// RunScalePoint builds the harbor and relays the cross-harbor
// traffic, timing the build-out, the route resolution and the drive.
func RunScalePoint(p ScalePoint) (ScaleResult, error) {
	if err := p.Validate(); err != nil {
		return ScaleResult{}, err
	}
	p = p.withDefaults()
	env := p.Env
	if env.Name == "" {
		env = aquago.Bridge
	}
	opts := []aquago.NetworkOption{
		aquago.WithNetworkSeed(p.Seed),
		aquago.WithCSRange(p.CSRangeM),
		aquago.WithNetworkWorkers(p.Workers),
	}
	if p.Retries >= 0 {
		opts = append(opts, aquago.WithNetworkRetries(p.Retries))
	}
	net, err := aquago.NewNetwork(env, opts...)
	if err != nil {
		return ScaleResult{}, err
	}
	ids, positions := scaleLayout(p)
	res := ScaleResult{
		Nodes: len(ids),
		Pods:  p.PodsX * p.PodsY,
		Msgs:  p.Msgs,
	}

	//aqualint:wallclock-ok JoinWallS is a benchmark record of real elapsed time (BENCH_exp.json); it never feeds simulation state
	joinStart := time.Now()
	for i, id := range ids {
		if _, err := net.Join(id, positions[i], aquago.WithNodeClock(0)); err != nil {
			return ScaleResult{}, fmt.Errorf("scale: join %d of %d: %w", i, len(ids), err)
		}
	}
	res.JoinWallS = time.Since(joinStart).Seconds() //aqualint:wallclock-ok benchmark record, see joinStart

	// Cross-harbor schedule: message m departs a random west-column
	// pod member for a random east-column pod member, arriving on the
	// virtual timeline at half-second spacing so the drive exercises
	// admission rather than one long queue.
	rng := rand.New(rand.NewSource(p.Seed*6521 + 9))
	numMsgs := len(aquago.Codebook())
	type scaleMsg struct {
		atS           float64
		src, dst      aquago.DeviceID
		first, second uint8
		path          []aquago.DeviceID
		pathIdx       []int
	}
	idxOf := make(map[aquago.DeviceID]int, len(ids))
	for i, id := range ids {
		idxOf[id] = i
	}
	pickMember := func(px int) aquago.DeviceID {
		py := rng.Intn(p.PodsY)
		pod := py*p.PodsX + px
		color := (px%2)*2 + py%2
		return scaleDeviceID(pod, color, rng.Intn(p.PodSize))
	}
	schedule := make([]scaleMsg, p.Msgs)
	for m := range schedule {
		schedule[m] = scaleMsg{
			atS:    float64(m) * 0.5,
			src:    pickMember(0),
			dst:    pickMember(p.PodsX - 1),
			first:  uint8(rng.Intn(numMsgs)),
			second: uint8(rng.Intn(numMsgs)),
		}
	}

	//aqualint:wallclock-ok RouteWallS is a benchmark record of real elapsed time; it never feeds simulation state
	routeStart := time.Now()
	for m := range schedule {
		path, err := net.Route(schedule[m].src, schedule[m].dst)
		if err != nil {
			return ScaleResult{}, fmt.Errorf("scale: route %d -> %d: %w", schedule[m].src, schedule[m].dst, err)
		}
		schedule[m].path = path
		idx := make([]int, len(path))
		for i, id := range path {
			idx[i] = idxOf[id]
		}
		schedule[m].pathIdx = idx
	}
	res.RouteWallS = time.Since(routeStart).Seconds() //aqualint:wallclock-ok benchmark record, see routeStart

	// Drive: the deterministic strict-prefix batch driver — the
	// longest leading run of transfers whose whole path footprints are
	// mutually non-interfering runs as one concurrent batch, so
	// arrival order is preserved globally and results are independent
	// of worker count.
	var accMu sync.Mutex
	var firstErr error
	ctx := context.Background()
	runOne := func(m scaleMsg) {
		src, _ := net.Node(m.src)
		src.AdvanceClock(m.atS)
		rres, err := net.SendVia(ctx, m.path, m.first, m.second)
		accMu.Lock()
		defer accMu.Unlock()
		switch {
		case err == nil:
			res.Delivered++
			res.TotalHops += len(m.path) - 1
			if rres.DeliveredS > res.MakespanS {
				res.MakespanS = rres.DeliveredS
			}
		case errors.Is(err, aquago.ErrChannelBusy):
			res.BusyDrops++
		case errors.Is(err, aquago.ErrNoACK):
			res.NoACKs++
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("scale: %d -> %d at %.2fs: %w", m.src, m.dst, m.atS, err)
			}
		}
	}
	//aqualint:wallclock-ok DriveWallS / committed-exchanges-per-wall-second are the scale harness's gated benchmark metrics; they never feed simulation state
	driveStart := time.Now()
	for i := 0; i < len(schedule); {
		j := i + 1
	grow:
		for ; j < len(schedule); j++ {
			for k := i; k < j; k++ {
				if pathsConflict(schedule[k].pathIdx, schedule[j].pathIdx, positions, p.CSRangeM) {
					break grow
				}
			}
		}
		var wg sync.WaitGroup
		for _, m := range schedule[i:j] {
			wg.Add(1)
			go func(m scaleMsg) {
				defer wg.Done()
				runOne(m)
			}(m)
		}
		wg.Wait()
		i = j
		if firstErr != nil {
			return ScaleResult{}, firstErr
		}
	}
	res.DriveWallS = time.Since(driveStart).Seconds() //aqualint:wallclock-ok benchmark record, see driveStart
	res.Sched = net.SchedulerStats()
	if res.DriveWallS > 0 {
		res.CommittedPerWallSec = float64(res.Sched.Committed) / res.DriveWallS
	}
	return res, nil
}

// scaleSweep parameterizes the harness.
type scaleSweep struct {
	points []ScalePoint
}

func defaultScaleSweep(quick bool) scaleSweep {
	if quick {
		return scaleSweep{points: []ScalePoint{
			{PodsX: 5, PodsY: 5, PodSize: 10, Msgs: 4},   // 250 nodes
			{PodsX: 10, PodsY: 10, PodSize: 10, Msgs: 4}, // 1000 nodes
		}}
	}
	return scaleSweep{points: []ScalePoint{
		{PodsX: 5, PodsY: 5, PodSize: 10, Msgs: 8},   // 250 nodes
		{PodsX: 10, PodsY: 10, PodSize: 10, Msgs: 8}, // 1000 nodes
		{PodsX: 20, PodsY: 16, PodSize: 10, Msgs: 8}, // 3200 nodes
		{PodsX: 28, PodsY: 24, PodSize: 15, Msgs: 6}, // 10080 nodes
	}}
}

// Scale is the harbor-scale harness: build-out, routing and scheduler
// wall-clock cost versus node count, 250 to ~10k devices, with
// committed-exchanges-per-wall-second as the headline
// scheduler-throughput series (the bench diff gate watches it).
func Scale(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	return scaleReport(cfg, defaultScaleSweep(cfg.Quick))
}

func scaleReport(cfg RunConfig, sw scaleSweep) (Report, error) {
	rep := Report{
		ID:    "scale",
		Title: "Harbor scale: build-out, routing and committed exchanges/s, 250 to 10k nodes",
	}
	// Points run serially: each is internally parallel (the network's
	// own scheduler pool), and wall-clock timings must not share cores
	// with sibling points.
	committed := Series{Name: "committed exchanges per wall-second vs nodes",
		XLabel: "nodes", YLabel: "committed/s"}
	join := Series{Name: "harbor build-out wall time vs nodes",
		XLabel: "nodes", YLabel: "join s"}
	route := Series{Name: "route resolution wall time vs nodes",
		XLabel: "nodes", YLabel: "route s"}
	edges := Series{Name: "scheduler conflict edges per grant vs nodes",
		XLabel: "nodes", YLabel: "edges/grant"}
	for i, pt := range sw.points {
		pt.Seed = cfg.Seed + int64(i)*7151
		pt.Retries = -1
		pt.Workers = cfg.Workers
		r, err := RunScalePoint(pt)
		if err != nil {
			return rep, err
		}
		committed.X = append(committed.X, float64(r.Nodes))
		committed.Y = append(committed.Y, r.CommittedPerWallSec)
		join.X = append(join.X, float64(r.Nodes))
		join.Y = append(join.Y, r.JoinWallS)
		route.X = append(route.X, float64(r.Nodes))
		route.Y = append(route.Y, r.RouteWallS)
		perGrant := 0.0
		if r.Sched.Granted > 0 {
			perGrant = float64(r.Sched.ConflictEdges) / float64(r.Sched.Granted)
		}
		edges.X = append(edges.X, float64(r.Nodes))
		edges.Y = append(edges.Y, perGrant)
		meanHops := 0.0
		if r.Delivered > 0 {
			meanHops = float64(r.TotalHops) / float64(r.Delivered)
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%d nodes (%d pods): join %.2f s, routes %.3f s, %d/%d relayed (mean %.1f hops, %d busy, %d no-ACK), %d exchanges committed at %.1f/s wall",
			r.Nodes, r.Pods, r.JoinWallS, r.RouteWallS, r.Delivered, r.Msgs,
			meanHops, r.BusyDrops, r.NoACKs, r.Sched.Committed, r.CommittedPerWallSec))
	}
	rep.Series = append(rep.Series, committed, join, route, edges)
	return rep, nil
}
