package exp

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"aquago"
)

// tinyMultiHopSweep is the relay golden workload: small enough for
// repeated -race runs, wide enough to cross both contention modes, a
// genuine multi-hop line, a grid, and a pod topology whose isolated
// collision domains hand the batch driver concurrent work.
func tinyMultiHopSweep() multiHopSweep {
	return multiHopSweep{
		envHops:      []int{1, 3},
		waveHops:     []int{2},
		payloadBytes: 6,
		utils:        []float64{0.5},
		loadTopos: []MultiHopLoadPoint{
			{Topo: "line", A: 4},
			{Topo: "pods", A: 2, B: 3},
		},
		targetMsgs:   6,
		pipeHops:     []int{1, 3},
		pipePersist:  0.7,
		pipeAdaptive: true,
	}
}

// TestMultiHopGoldenSeedsWorkers extends the macload seeds×workers
// pattern to the relay harness: for fixed seeds the full report —
// bulk goodput/latency per hop count in both contention modes, plus
// the relayed offered-load tables — must be deeply equal whether the
// measurement points run serially (Workers: 1) or fan out across the
// experiment pool (Workers: 4). Inside each point the live Network
// runs its own conflict-graph scheduler, so this additionally pins
// that relay forwarding respects ticket order deterministically.
func TestMultiHopGoldenSeedsWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the tiny relay sweep several times")
	}
	for _, seed := range []int64{3, 11} {
		serial, err := multiHopReport(RunConfig{Seed: seed, Quick: true, Workers: 1}, tinyMultiHopSweep())
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		parallel, err := multiHopReport(RunConfig{Seed: seed, Quick: true, Workers: 4}, tinyMultiHopSweep())
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("seed %d: Workers:1 and Workers:4 reports differ\nserial:   %+v\nparallel: %+v",
				seed, serial, parallel)
		}
		// The tables must not be vacuous: goodput present for both
		// contention modes and for the relayed-load axis.
		var envSeen, waveSeen, loadSeen, pipeSeen bool
		for _, s := range serial.Series {
			if !strings.Contains(s.Name, "goodput") {
				continue
			}
			if len(s.X) == 0 {
				t.Fatalf("seed %d: empty goodput series %q", seed, s.Name)
			}
			switch {
			case strings.Contains(s.Name, "pipelined"):
				pipeSeen = true
			case strings.Contains(s.Name, "envelope"):
				envSeen = true
			case strings.Contains(s.Name, "waveform"):
				waveSeen = true
			case strings.Contains(s.Name, "offered load"):
				loadSeen = true
			}
		}
		if !envSeen || !waveSeen || !loadSeen || !pipeSeen {
			t.Fatalf("seed %d: goodput series missing an axis (envelope %v, waveform %v, load %v, pipelined %v)",
				seed, envSeen, waveSeen, loadSeen, pipeSeen)
		}
	}
}

// TestMultiHopBulkConservation: the bulk point must deliver every
// packet and divide goodput by roughly the hop count (store and
// forward: each hop retransmits the full payload).
func TestMultiHopBulkConservation(t *testing.T) {
	one, err := RunMultiHopPoint(MultiHopPoint{
		Hops: 1, PayloadBytes: 6, Mode: aquago.EnvelopeContention, Seed: 3, Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	three, err := RunMultiHopPoint(MultiHopPoint{
		Hops: 3, PayloadBytes: 6, Mode: aquago.EnvelopeContention, Seed: 3, Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []MultiHopResult{one, three} {
		if r.DeliveredPackets != r.Packets || r.Packets != 3 {
			t.Fatalf("bulk transfer dropped packets: %+v", r)
		}
		if r.GoodputBPS <= 0 || r.LatencyS <= 0 {
			t.Fatalf("degenerate measurement: %+v", r)
		}
	}
	if three.Hops != 3 || one.Hops != 1 {
		t.Fatalf("routes have wrong hop counts: %+v / %+v", one, three)
	}
	// 3 hops means >= 3x the transmissions; allow protocol slack but
	// pin the ordering.
	if !(three.LatencyS > 2*one.LatencyS) || !(three.GoodputBPS < one.GoodputBPS/2) {
		t.Fatalf("store-and-forward cost not visible: 1 hop %+v vs 3 hops %+v", one, three)
	}
}

// TestMultiHopPointValidate walks the rejection paths shared with
// cmd/aquanet -relay.
func TestMultiHopPointValidate(t *testing.T) {
	good := MultiHopPoint{Hops: 3, PayloadBytes: 16, Mode: aquago.EnvelopeContention}
	cases := []struct {
		name    string
		mutate  func(*MultiHopPoint)
		wantErr string
	}{
		{"valid", func(*MultiHopPoint) {}, ""},
		{"max hops", func(p *MultiHopPoint) { p.Hops = 59 }, ""},
		{"zero hops", func(p *MultiHopPoint) { p.Hops = 0 }, "at least one hop"},
		{"too many hops", func(p *MultiHopPoint) { p.Hops = 60 }, "60-device limit"},
		{"NaN spacing", func(p *MultiHopPoint) { p.SpacingM = math.NaN() }, "not a usable distance"},
		{"negative spacing", func(p *MultiHopPoint) { p.SpacingM = -4 }, "not a usable distance"},
		{"deaf range", func(p *MultiHopPoint) { p.SpacingM = 25; p.CSRangeM = 10 }, "no route exists"},
		{"no payload", func(p *MultiHopPoint) { p.PayloadBytes = 0 }, "need a payload"},
		{"huge payload", func(p *MultiHopPoint) { p.PayloadBytes = maxBulkBytes + 1 }, "cap"},
		{"bad mode", func(p *MultiHopPoint) { p.Mode = aquago.ContentionMode(9) }, "unknown contention mode"},
		{"bad policy", func(p *MultiHopPoint) { p.Policy = aquago.RoutingPolicy(7) }, "unknown routing policy"},
	}
	for _, tc := range cases {
		p := good
		tc.mutate(&p)
		err := p.Validate()
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: error expected, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestMultiHopLoadPointValidate covers the load-point rejections.
func TestMultiHopLoadPointValidate(t *testing.T) {
	good := MultiHopLoadPoint{Topo: "line", A: 4, RateHz: 0.05, DurationS: 60,
		Mode: aquago.EnvelopeContention}
	cases := []struct {
		name    string
		mutate  func(*MultiHopLoadPoint)
		wantErr string
	}{
		{"valid line", func(*MultiHopLoadPoint) {}, ""},
		{"valid grid", func(p *MultiHopLoadPoint) { p.Topo = "grid"; p.A, p.B = 3, 3 }, ""},
		{"valid pods", func(p *MultiHopLoadPoint) { p.Topo = "pods"; p.A, p.B = 2, 3 }, ""},
		{"bad topo", func(p *MultiHopLoadPoint) { p.Topo = "torus" }, "unknown topology"},
		{"single node line", func(p *MultiHopLoadPoint) { p.A = 1 }, "at least two"},
		{"thin grid", func(p *MultiHopLoadPoint) { p.Topo = "grid"; p.A, p.B = 3, 1 }, "at least two"},
		{"too many nodes", func(p *MultiHopLoadPoint) { p.Topo = "grid"; p.A, p.B = 8, 8 }, "60-device"},
		{"NaN rate", func(p *MultiHopLoadPoint) { p.RateHz = math.NaN() }, "not usable"},
		{"zero duration", func(p *MultiHopLoadPoint) { p.DurationS = 0 }, "not usable"},
		{"schedule blow-up", func(p *MultiHopLoadPoint) { p.RateHz = 1e4; p.DurationS = 1e4 }, "cap"},
		{"bad mode", func(p *MultiHopLoadPoint) { p.Mode = aquago.ContentionMode(5) }, "unknown contention mode"},
	}
	for _, tc := range cases {
		p := good
		tc.mutate(&p)
		err := p.Validate()
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: error expected, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestMultiHopPodsBatchConcurrently: isolated pods must hand the
// relay batch driver conflict-free work wider than one transfer — the
// deterministic witness that relayed sends exercised the scheduler's
// spatial reuse.
func TestMultiHopPodsBatchConcurrently(t *testing.T) {
	res, err := RunMultiHopLoadPoint(MultiHopLoadPoint{
		Topo: "pods", A: 2, B: 3,
		RateHz:    0.3,
		DurationS: 12,
		Mode:      aquago.EnvelopeContention,
		Seed:      7,
		Retries:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConflictWidth < 2 {
		t.Fatalf("two isolated pods never batched concurrently (width %d): %+v", res.ConflictWidth, res)
	}
	if res.DeliveredMsgs == 0 || res.NoRoutes != 0 {
		t.Fatalf("pod-local traffic should deliver with zero NoRoutes: %+v", res)
	}
	if res.Sched.Committed == 0 || res.Sched.AirtimeS <= 0 {
		t.Fatalf("scheduler counters not accounted: %+v", res.Sched)
	}
}
