package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel experiment engine. Every harness reduces
// its workload to independent jobs — most commonly measurement points
// (a linkSpec plus a packet budget and a derived seed) — and submits
// them to a worker pool sized by RunConfig.Workers. Three properties
// make this safe:
//
//  1. Each job derives all of its randomness from its own seed, so
//     results do not depend on execution order. Workers: 1 and
//     Workers: N produce deeply equal Reports (see exp_parallel_test).
//  2. Results are collected by job index, so assembly order equals
//     submission order regardless of which worker finished first.
//  3. Workers never share DSP state: a dsp.Plan (and everything built
//     on one — modem, protocol, link) is not goroutine-safe, so jobs
//     construct their own instances, or use parallelMapState to share
//     one instance per worker across that worker's jobs.

// point is one measurement point: a link configuration plus the packet
// count and seed that drive it. It is the scheduling unit of the
// engine — the paper's evaluation is hundreds of such points, all
// independent by construction.
type point struct {
	spec    linkSpec
	packets int
	seed    int64
}

// runPoints executes every measurement point on the worker pool and
// returns per-point stats in submission order.
func runPoints(cfg RunConfig, pts []point) ([]trialStats, error) {
	return parallelMap(cfg.Workers, len(pts), func(i int) (trialStats, error) {
		return runTrials(pts[i].spec, pts[i].packets, pts[i].seed)
	})
}

// workerCount resolves the Workers knob: <= 0 means one worker per
// CPU core, 1 means legacy serial execution.
func workerCount(w int) int {
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelMap runs n index-addressed jobs across the worker pool and
// returns their results in index order. Jobs must be independent: any
// shared state they touch must be read-only. On error the batch
// reports the failed job with the smallest index (deterministic
// regardless of scheduling); remaining jobs may still have run.
func parallelMap[R any](workers, n int, job func(i int) (R, error)) ([]R, error) {
	return parallelMapState(workers, n,
		func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) (R, error) { return job(i) })
}

// parallelMapState is parallelMap for jobs that stream through
// expensive per-worker state (a modem, a detector, a protocol): each
// worker constructs its own state once and reuses it for every job it
// pulls. The state must act as a pure computation cache — identical
// states must yield identical results — so that worker count and job
// interleaving cannot change the output.
func parallelMapState[S, R any](workers, n int, newState func() (S, error), job func(s S, i int) (R, error)) ([]R, error) {
	workers = workerCount(workers)
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	if workers <= 1 {
		s, err := newState()
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			r, err := job(s, i)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := newState()
			if err != nil {
				// Charge the construction failure to the next
				// unclaimed job so the batch reports it.
				if i := int(next.Add(1)) - 1; i < n {
					errs[i] = err
				}
				failed.Store(true)
				return
			}
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = job(s, i)
				if errs[i] != nil {
					// Fail fast: stop claiming new jobs so a bad
					// batch aborts in one job's latency instead of
					// running to completion. In-flight jobs finish.
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	// Report the recorded failure with the smallest index. With a
	// single failing job this is deterministic; with several, early
	// abort may vary which ones ran, so the reported error can be any
	// of them — acceptable for an exceptional path.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
