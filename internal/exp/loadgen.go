package exp

import (
	"math/rand"
	"sort"
)

// This file is the offered-load generator behind the MAC goodput
// harness (macload.go): per-node Poisson message arrivals over a fixed
// window, merged into one globally time-ordered schedule. Everything
// derives from the seed, so a (nodes, rate, duration, seed) tuple
// names exactly one workload — the property the golden seeds×workers
// regression rides on.

// messageBits is the information content of one offered message: the
// protocol's 16-bit payload (one or two codebook hand signals).
const messageBits = 16

// arrival is one offered message: which node wants to transmit at
// which virtual time.
type arrival struct {
	node int
	atS  float64
}

// poissonArrivals draws each node's message arrival times over
// [0, durS) as an independent Poisson process of rate ratePerNodeHz
// (messages per virtual second): exponential inter-arrival gaps with
// mean 1/rate, from a per-node stream seeded off the base seed so one
// node's draw count never shifts another's sequence.
func poissonArrivals(nodes int, ratePerNodeHz, durS float64, seed int64) [][]float64 {
	out := make([][]float64, nodes)
	for n := 0; n < nodes; n++ {
		rng := rand.New(rand.NewSource(seed*6151 + int64(n)*2654435761 + 17))
		t := rng.ExpFloat64() / ratePerNodeHz
		for t < durS {
			out[n] = append(out[n], t)
			t += rng.ExpFloat64() / ratePerNodeHz
		}
	}
	return out
}

// mergeArrivals flattens per-node arrival streams into one schedule
// ordered by (time, node) — node index breaks exact ties so the order
// is total and deterministic.
func mergeArrivals(perNode [][]float64) []arrival {
	var out []arrival
	for n, times := range perNode {
		for _, t := range times {
			out = append(out, arrival{node: n, atS: t})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].atS != out[j].atS {
			return out[i].atS < out[j].atS
		}
		return out[i].node < out[j].node
	})
	return out
}

// offeredBits totals the load a set of arrival streams offers, in
// information bits (messageBits per arrival).
func offeredBits(perNode [][]float64) int {
	total := 0
	for _, times := range perNode {
		total += len(times) * messageBits
	}
	return total
}
