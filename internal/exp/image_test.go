package exp

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"aquago"
)

// tinyImageSweep is the image golden workload: one point per axis
// family, small blocks, but crossing the healthy range, the marginal
// band where retransmission fires, a relay line, and a contended pod.
func tinyImageSweep() imageSweep {
	return imageSweep{
		blocks: 4, blockBytes: 3, previewBlocks: 1,
		window: aquago.DefaultStreamWindow, retries: 3,
		rangesM:    []float64{25, 72},
		hops:       []int{1, 2},
		streams:    []int{1, 2},
		loadRangeM: 25,
	}
}

// TestImageGoldenSeedsWorkers pins the progressive-image report to
// the seeds×workers determinism contract: for fixed seeds the full
// report — goodput and preview time on the range, hops and load axes
// — must be deeply equal whether points run serially (Workers: 1) or
// across the experiment pool (Workers: 4). Each point's stream rides
// the async transmit queues, so this is also the stream transport's
// worker-count-invariance witness at the harness level.
func TestImageGoldenSeedsWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the tiny image sweep several times")
	}
	for _, seed := range []int64{3, 11} {
		serial, err := imageReport(RunConfig{Seed: seed, Quick: true, Workers: 1}, tinyImageSweep())
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		parallel, err := imageReport(RunConfig{Seed: seed, Quick: true, Workers: 4}, tinyImageSweep())
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("seed %d: Workers:1 and Workers:4 reports differ\nserial:   %+v\nparallel: %+v",
				seed, serial, parallel)
		}
		// Every axis must contribute a goodput and a preview series,
		// and the short-range point must actually carry image data.
		var goodput, preview int
		for _, s := range serial.Series {
			if len(s.X) == 0 {
				t.Fatalf("seed %d: empty series %q", seed, s.Name)
			}
			switch {
			case strings.Contains(s.Name, "goodput"):
				goodput++
				if s.Y[0] <= 0 {
					t.Fatalf("seed %d: %q delivered nothing at its first point", seed, s.Name)
				}
			case strings.Contains(s.Name, "preview"):
				preview++
			}
		}
		if goodput != 3 || preview != 3 {
			t.Fatalf("seed %d: want 3 goodput + 3 preview series, got %d + %d",
				seed, goodput, preview)
		}
	}
}

// TestImageStreamConservation: over a clean link the stream must
// deliver the image exactly — every block CRC-verified, no
// degradation, byte counts conserved — and the preview must land
// strictly before the full transfer.
func TestImageStreamConservation(t *testing.T) {
	r, err := RunImagePoint(ImagePoint{
		Blocks: 4, BlockBytes: 3, Retries: 3, RangeM: 25,
		Mode: aquago.EnvelopeContention, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Degraded || r.UsableBlocks != r.Blocks || r.BadCRCBlocks != 0 {
		t.Fatalf("clean link degraded the image: %+v", r)
	}
	if want := r.Blocks * 4; r.DeliveredBytes != want {
		t.Fatalf("delivered %d wire bytes, want %d: %+v", r.DeliveredBytes, want, r)
	}
	if !(r.FirstPreviewS > 0 && r.FirstPreviewS < r.TotalS) {
		t.Fatalf("preview must land inside the transfer: %+v", r)
	}
	if r.GoodputBPS <= 0 {
		t.Fatalf("degenerate goodput: %+v", r)
	}
}

// TestImageRetransmitOrDegrade drives the marginal band: across seeds
// at 76 m the point must exhibit both halves of the policy — some
// transfer that retransmits and still completes, and some transfer
// that degrades to a verified prefix without erroring out.
func TestImageRetransmitOrDegrade(t *testing.T) {
	var recovered, degraded bool
	for seed := int64(1); seed <= 6; seed++ {
		r, err := RunImagePoint(ImagePoint{
			Blocks: 4, BlockBytes: 3, Retries: 3, RangeM: 76,
			Mode: aquago.EnvelopeContention, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.BadCRCBlocks != 0 {
			t.Fatalf("seed %d: CRC failure on a hop-conserved transport: %+v", seed, r)
		}
		if r.UsableBlocks == r.Blocks && r.Retransmits > 0 {
			recovered = true
		}
		if r.Degraded {
			degraded = true
			if r.UsableBlocks == r.Blocks && r.DeliveredBytes == r.Blocks*4 {
				continue // sender died chasing ACKs; receiver has it all
			}
			if r.UsableBlocks >= r.Blocks {
				t.Fatalf("seed %d: degraded yet whole: %+v", seed, r)
			}
		}
	}
	if !recovered || !degraded {
		t.Fatalf("marginal band must show both policy halves (recovered %v, degraded %v)",
			recovered, degraded)
	}
}

// TestImageRelayPreviewClock: on the relay axis the preview clock
// comes from per-packet arrival times, so it must sit strictly
// between zero and the transfer end, and deepening the line must
// delay it.
func TestImageRelayPreviewClock(t *testing.T) {
	two, err := RunImagePoint(ImagePoint{
		Blocks: 4, BlockBytes: 3, Retries: 3, Hops: 2,
		Mode: aquago.EnvelopeContention, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	three, err := RunImagePoint(ImagePoint{
		Blocks: 4, BlockBytes: 3, Retries: 3, Hops: 3,
		Mode: aquago.EnvelopeContention, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []ImageResult{two, three} {
		if r.Degraded || r.UsableBlocks != r.Blocks {
			t.Fatalf("clean relay degraded the image: %+v", r)
		}
		if !(r.FirstPreviewS > 0 && r.FirstPreviewS < r.TotalS) {
			t.Fatalf("preview must land inside the transfer: %+v", r)
		}
	}
	if !(three.FirstPreviewS > two.FirstPreviewS) {
		t.Fatalf("a deeper line must delay the preview: 2 hops %.2f s vs 3 hops %.2f s",
			two.FirstPreviewS, three.FirstPreviewS)
	}
}

// TestStreamPointValidate walks the rejection paths shared with
// cmd/aquanet -stream.
func TestStreamPointValidate(t *testing.T) {
	good := StreamPoint{Bytes: 16, Retries: 3, Mode: aquago.EnvelopeContention}
	cases := []struct {
		name    string
		mutate  func(*StreamPoint)
		wantErr string
	}{
		{"valid", func(*StreamPoint) {}, ""},
		{"max window", func(p *StreamPoint) { p.Window = aquago.MaxStreamWindow }, ""},
		{"NaN range", func(p *StreamPoint) { p.RangeM = math.NaN() }, "not a usable distance"},
		{"negative range", func(p *StreamPoint) { p.RangeM = -3 }, "not a usable distance"},
		{"no payload", func(p *StreamPoint) { p.Bytes = 0 }, "need a payload"},
		{"huge payload", func(p *StreamPoint) { p.Bytes = maxBulkBytes + 1 }, "cap"},
		{"zero window", func(p *StreamPoint) { p.Window = -1 }, "window"},
		{"oversized window", func(p *StreamPoint) { p.Window = aquago.MaxStreamWindow + 1 }, "window"},
		{"zero retries", func(p *StreamPoint) { p.Retries = 0 }, "at least 1"},
		{"NaN timer", func(p *StreamPoint) { p.RTOS = math.NaN() }, "not a usable duration"},
		{"negative timer", func(p *StreamPoint) { p.RTOS = -1 }, "not a usable duration"},
		{"bad mode", func(p *StreamPoint) { p.Mode = aquago.ContentionMode(9) }, "unknown contention mode"},
	}
	for _, tc := range cases {
		p := good
		tc.mutate(&p)
		err := p.Validate()
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: error expected, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestImagePointValidate covers the image-point rejections shared
// with cmd/aquanet -image.
func TestImagePointValidate(t *testing.T) {
	good := ImagePoint{Blocks: 4, BlockBytes: 3, Retries: 3, Mode: aquago.EnvelopeContention}
	cases := []struct {
		name    string
		mutate  func(*ImagePoint)
		wantErr string
	}{
		{"valid", func(*ImagePoint) {}, ""},
		{"valid relay", func(p *ImagePoint) { p.Hops = 3 }, ""},
		{"valid load", func(p *ImagePoint) { p.Streams = 3 }, ""},
		{"no blocks", func(p *ImagePoint) { p.Blocks = 0 }, "at least one block"},
		{"empty blocks", func(p *ImagePoint) { p.BlockBytes = 0 }, "at least one byte"},
		{"huge image", func(p *ImagePoint) { p.Blocks = 2048; p.BlockBytes = 3 }, "cap"},
		{"preview past end", func(p *ImagePoint) { p.PreviewBlocks = 5 }, "preview threshold"},
		{"negative hops", func(p *ImagePoint) { p.Hops = -1 }, "negative hop count"},
		{"too many hops", func(p *ImagePoint) { p.Hops = 60 }, "60-device limit"},
		{"load on relay", func(p *ImagePoint) { p.Streams = 2; p.Hops = 3 }, "direct links"},
		{"too many streams", func(p *ImagePoint) { p.Streams = 9 }, "outside [1, 8]"},
		{"NaN range", func(p *ImagePoint) { p.RangeM = math.NaN() }, "not a usable distance"},
		{"bad window", func(p *ImagePoint) { p.Window = aquago.MaxStreamWindow + 1 }, "window"},
		{"zero retries", func(p *ImagePoint) { p.Retries = 0 }, "at least 1"},
		{"NaN timer", func(p *ImagePoint) { p.RTOS = math.NaN() }, "not a usable duration"},
		{"bad mode", func(p *ImagePoint) { p.Mode = aquago.ContentionMode(9) }, "unknown contention mode"},
	}
	for _, tc := range cases {
		p := good
		tc.mutate(&p)
		err := p.Validate()
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: error expected, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestImageCRCHelpers pins the block framing: a seeded image must
// verify wholly, a corrupted trailer must be counted bad, and a
// truncated prefix must stop at block granularity.
func TestImageCRCHelpers(t *testing.T) {
	img := imagePayload(4, 3, 7)
	if len(img) != 16 {
		t.Fatalf("4 blocks x (3+1) bytes must be 16 wire bytes, got %d", len(img))
	}
	if u, bad := usableBlocks(img, 4, 3); u != 4 || bad != 0 {
		t.Fatalf("intact image: got %d usable, %d bad", u, bad)
	}
	flipped := append([]byte(nil), img...)
	flipped[7] ^= 0xFF // second block's CRC trailer
	if u, bad := usableBlocks(flipped, 4, 3); u != 3 || bad != 1 {
		t.Fatalf("one corrupted trailer: got %d usable, %d bad", u, bad)
	}
	if u, bad := usableBlocks(img[:9], 4, 3); u != 2 || bad != 0 {
		t.Fatalf("9-byte prefix holds 2 whole blocks: got %d usable, %d bad", u, bad)
	}
}
