package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"aquago"
	"aquago/internal/fec"
)

func init() {
	register("image", Image)
}

// This file is the progressive image transmission harness — the
// AquaScope-style workload the reliable stream transport (stream.go)
// exists to carry. An "image" is Blocks fixed-size blocks, each
// followed by a CRC-8 trailer byte, sent most-significant block
// first; a receiver renders progressively, so the two numbers that
// matter are image goodput (usable image bits over the whole
// transfer) and time-to-first-usable-preview (how long until the
// first PreviewBlocks blocks are delivered and CRC-verified). The
// policy is retransmit-or-degrade: lost segments retransmit under the
// ARQ budget, and when a budget dies mid-image the image degrades to
// the contiguous verified prefix instead of failing outright.
//
// Three axes, all deterministic:
//   - range: one stream over a single widening link — waveform-true
//     loss turns into retransmissions, then degradation;
//   - hops: the same image down a relay line on the ARQ-backed
//     pipelined bulk transfer (per-packet arrival times give the
//     preview clock);
//   - load: concurrent streams crossing one pod, contending for one
//     collision domain.

// imageStride is one block's wire footprint: BlockBytes + the CRC-8
// trailer.
func imageStride(blockBytes int) int { return blockBytes + 1 }

// imageCRC computes a block's CRC-8 trailer.
func imageCRC(block []byte) byte {
	return fec.CRC8(fec.BitsFromBytes(block))
}

// imagePayload builds a seeded image: Blocks blocks of BlockBytes
// random bytes, each with its CRC-8 trailer.
func imagePayload(blocks, blockBytes int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed*7451 + 9))
	out := make([]byte, 0, blocks*imageStride(blockBytes))
	block := make([]byte, blockBytes)
	for b := 0; b < blocks; b++ {
		rng.Read(block)
		out = append(out, block...)
		out = append(out, imageCRC(block))
	}
	return out
}

// usableBlocks walks the contiguously received prefix and counts
// blocks whose CRC-8 verifies (badCRC counts complete blocks that do
// not — with hop-conserved transports that stays zero; the check is
// the receiver's, not the simulator's).
func usableBlocks(received []byte, blocks, blockBytes int) (usable, badCRC int) {
	stride := imageStride(blockBytes)
	for b := 0; b < blocks; b++ {
		if (b+1)*stride > len(received) {
			break
		}
		blk := received[b*stride : b*stride+blockBytes]
		if imageCRC(blk) == received[b*stride+blockBytes] {
			usable++
		} else {
			badCRC++
		}
	}
	return usable, badCRC
}

// StreamPoint parameterizes one reliable stream transfer over a
// single link: Bytes payload bytes from a sender to a receiver RangeM
// meters away, under the selective-repeat ARQ transport.
type StreamPoint struct {
	// RangeM separates the endpoints (default 25 m).
	RangeM float64
	// Bytes sizes the payload.
	Bytes int
	// Window is the ARQ sender window in segments (default
	// aquago.DefaultStreamWindow).
	Window int
	// Retries is the per-segment retransmission budget; at least 1 —
	// a stream without retransmission is the stop-and-wait failure
	// mode the transport exists to fix.
	Retries int
	// RTOS pins the retransmission backoff quantum in virtual seconds
	// (0 = the node's adaptive quantum).
	RTOS float64
	// Mode selects envelope or waveform contention.
	Mode aquago.ContentionMode
	// Seed drives channels, MAC backoffs and the payload bytes.
	Seed int64
	// Workers sizes the network's scheduler pool (results are
	// worker-count independent).
	Workers int
	// Env is the deployment site (zero value = Bridge).
	Env aquago.Environment
}

// withDefaults resolves the derived knobs.
func (p StreamPoint) withDefaults() StreamPoint {
	if p.RangeM == 0 {
		p.RangeM = 25
	}
	if p.Window == 0 {
		p.Window = aquago.DefaultStreamWindow
	}
	return p
}

// Validate rejects parameter combinations that cannot run;
// cmd/aquanet -stream surfaces these to users.
func (p StreamPoint) Validate() error {
	p = p.withDefaults()
	switch {
	case math.IsNaN(p.RangeM) || math.IsInf(p.RangeM, 0) || p.RangeM <= 0:
		return fmt.Errorf("stream: range %v m is not a usable distance", p.RangeM)
	case p.Bytes < 1:
		return fmt.Errorf("stream: need a payload, got %d bytes", p.Bytes)
	case p.Bytes > maxBulkBytes:
		return fmt.Errorf("stream: %d payload bytes exceed the %d cap", p.Bytes, maxBulkBytes)
	case p.Window < 1 || p.Window > aquago.MaxStreamWindow:
		return fmt.Errorf("stream: window %d outside [1, %d]", p.Window, aquago.MaxStreamWindow)
	case p.Retries < 1:
		return fmt.Errorf("stream: retransmission budget must be at least 1, got %d (0 is the stop-and-wait failure mode this transport replaces)", p.Retries)
	case math.IsNaN(p.RTOS) || math.IsInf(p.RTOS, 0) || p.RTOS < 0:
		return fmt.Errorf("stream: retransmission quantum %v s is not a usable duration", p.RTOS)
	case p.Mode != aquago.EnvelopeContention && p.Mode != aquago.WaveformContention:
		return fmt.Errorf("stream: unknown contention mode %d", p.Mode)
	}
	return nil
}

// StreamResult reports one stream transfer. Every field is a
// deterministic function of the point.
type StreamResult struct {
	// Bytes is the payload size; DeliveredBytes the receiver's
	// in-order frontier when the stream finished (== Bytes unless
	// Degraded).
	Bytes, DeliveredBytes int
	// Segments/Attempts/Retransmits/DupSegments mirror
	// aquago.StreamStats.
	Segments, Attempts, Retransmits, DupSegments int
	// Degraded marks a stream that died with its budget exhausted (or
	// another failure) before full acknowledgment; the delivered
	// prefix is still counted.
	Degraded bool
	// FirstByteS is arrival of the first in-order byte; LatencyS the
	// whole transfer's span; GoodputBPS delivered payload bits over
	// it.
	FirstByteS, LatencyS, GoodputBPS float64
}

// RunStreamPoint drives one payload through a stream over a single
// link and measures it.
func RunStreamPoint(p StreamPoint) (StreamResult, error) {
	if err := p.Validate(); err != nil {
		return StreamResult{}, err
	}
	p = p.withDefaults()
	env := p.Env
	if env.Name == "" {
		env = aquago.Bridge
	}
	net, err := aquago.NewNetwork(env,
		aquago.WithNetworkSeed(p.Seed),
		aquago.WithContentionMode(p.Mode),
		aquago.WithNetworkWorkers(p.Workers),
	)
	if err != nil {
		return StreamResult{}, err
	}
	src, err := net.Join(0, aquago.Position{Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		return StreamResult{}, err
	}
	if _, err := net.Join(1, aquago.Position{X: p.RangeM, Z: 1}, aquago.WithNodeClock(0)); err != nil {
		return StreamResult{}, err
	}
	payload := make([]byte, p.Bytes)
	rand.New(rand.NewSource(p.Seed*9241 + 5)).Read(payload)

	st, err := src.OpenStream(context.Background(), 1,
		aquago.WithStreamWindow(p.Window),
		aquago.WithStreamRetries(p.Retries),
		aquago.WithStreamRTO(p.RTOS),
	)
	if err != nil {
		return StreamResult{}, err
	}
	return driveStream(st, payload)
}

// driveStream writes the payload, closes the write side, drains the
// read side and folds the stream's accounting into a StreamResult.
// A stream failure degrades the result instead of erroring: the
// delivered prefix still counts (retransmit-or-degrade).
func driveStream(st *aquago.Stream, payload []byte) (StreamResult, error) {
	if _, err := st.Write(payload); err != nil {
		return StreamResult{}, fmt.Errorf("stream: write: %w", err)
	}
	if err := st.CloseWrite(); err != nil {
		return StreamResult{}, fmt.Errorf("stream: close write: %w", err)
	}
	received, rerr := io.ReadAll(st)
	werr := st.Wait(context.Background())
	stats := st.Stats()
	out := StreamResult{
		Bytes:          len(payload),
		DeliveredBytes: stats.BytesDelivered,
		Segments:       stats.Segments,
		Attempts:       stats.Attempts,
		Retransmits:    stats.Retransmits,
		DupSegments:    stats.DupSegments,
		FirstByteS:     st.FrontierAtS(1),
		LatencyS:       stats.EndS - stats.StartS,
	}
	switch {
	case rerr != nil && !isStreamFailure(rerr):
		return out, fmt.Errorf("stream: read: %w", rerr)
	case rerr != nil || werr != nil:
		out.Degraded = true
	}
	if len(received) != out.DeliveredBytes {
		return out, fmt.Errorf("stream: read %d bytes, frontier says %d", len(received), out.DeliveredBytes)
	}
	for i := range received {
		if received[i] != payload[i] {
			return out, fmt.Errorf("stream: byte %d corrupted in flight", i)
		}
	}
	if out.LatencyS > 0 {
		out.GoodputBPS = float64(8*out.DeliveredBytes) / out.LatencyS
	}
	return out, nil
}

// isStreamFailure reports whether a read error is the stream's own
// failure taxonomy (degrade) rather than a harness bug (error out).
func isStreamFailure(err error) bool {
	var serr *aquago.StreamError
	return errors.As(err, &serr) ||
		errors.Is(err, aquago.ErrStreamClosed) ||
		errors.Is(err, aquago.ErrNoACK) ||
		errors.Is(err, aquago.ErrChannelBusy) ||
		errors.Is(err, aquago.ErrTxCancelled)
}

// ImagePoint parameterizes one progressive image transmission:
// Blocks blocks of BlockBytes bytes (each with a CRC-8 trailer on the
// wire), considered previewable once the first PreviewBlocks blocks
// verify. Hops <= 1 sends the image over a direct stream (Streams of
// them concurrently for the load axis); Hops >= 2 relays it down a
// line on the ARQ-backed pipelined bulk transfer.
type ImagePoint struct {
	// Blocks and BlockBytes shape the image; PreviewBlocks is the
	// usable-preview threshold (default ceil(Blocks/4)).
	Blocks, BlockBytes, PreviewBlocks int
	// Hops selects the transport: <= 1 a direct stream over one link
	// of RangeM meters; >= 2 the pipelined bulk relay down a line of
	// Hops hops spaced RangeM apart.
	Hops int
	// RangeM is the link length (direct) or hop spacing (relay);
	// default 25 m.
	RangeM float64
	// Streams is how many identical images cross the pod concurrently
	// (load axis; only with Hops <= 1). Default 1.
	Streams int
	// Window, Retries, RTOS configure the ARQ exactly as in
	// StreamPoint (Retries doubles as the relay's bulk retry budget
	// on the hops axis).
	Window  int
	Retries int
	RTOS    float64
	// Mode selects envelope or waveform contention.
	Mode aquago.ContentionMode
	// Seed drives channels, MAC backoffs and the image bytes.
	Seed int64
	// Workers sizes the network's scheduler pool.
	Workers int
	// Env is the deployment site (zero value = Bridge).
	Env aquago.Environment
}

// withDefaults resolves the derived knobs.
func (p ImagePoint) withDefaults() ImagePoint {
	if p.RangeM == 0 {
		p.RangeM = 25
	}
	if p.Window == 0 {
		p.Window = aquago.DefaultStreamWindow
	}
	if p.Streams == 0 {
		p.Streams = 1
	}
	if p.PreviewBlocks == 0 {
		p.PreviewBlocks = (p.Blocks + 3) / 4
	}
	return p
}

// Validate rejects unusable image points.
func (p ImagePoint) Validate() error {
	p = p.withDefaults()
	switch {
	case p.Blocks < 1:
		return fmt.Errorf("image: need at least one block, got %d", p.Blocks)
	case p.BlockBytes < 1:
		return fmt.Errorf("image: need at least one byte per block, got %d", p.BlockBytes)
	case p.Blocks*imageStride(p.BlockBytes) > maxBulkBytes:
		return fmt.Errorf("image: %d wire bytes exceed the %d cap", p.Blocks*imageStride(p.BlockBytes), maxBulkBytes)
	case p.PreviewBlocks < 1 || p.PreviewBlocks > p.Blocks:
		return fmt.Errorf("image: preview threshold %d outside [1, %d]", p.PreviewBlocks, p.Blocks)
	case p.Hops < 0:
		return fmt.Errorf("image: negative hop count %d", p.Hops)
	case p.Hops > 59:
		return fmt.Errorf("image: %d hops need %d nodes, over the 60-device limit", p.Hops, p.Hops+1)
	case p.Streams < 1 || p.Streams > 8:
		return fmt.Errorf("image: concurrent stream count %d outside [1, 8]", p.Streams)
	case p.Streams > 1 && p.Hops > 1:
		return fmt.Errorf("image: the load axis (%d streams) runs on direct links, not a %d-hop relay", p.Streams, p.Hops)
	case math.IsNaN(p.RangeM) || math.IsInf(p.RangeM, 0) || p.RangeM <= 0:
		return fmt.Errorf("image: range %v m is not a usable distance", p.RangeM)
	case p.Window < 1 || p.Window > aquago.MaxStreamWindow:
		return fmt.Errorf("image: window %d outside [1, %d]", p.Window, aquago.MaxStreamWindow)
	case p.Retries < 1:
		return fmt.Errorf("image: retransmission budget must be at least 1, got %d", p.Retries)
	case math.IsNaN(p.RTOS) || math.IsInf(p.RTOS, 0) || p.RTOS < 0:
		return fmt.Errorf("image: retransmission quantum %v s is not a usable duration", p.RTOS)
	case p.Mode != aquago.EnvelopeContention && p.Mode != aquago.WaveformContention:
		return fmt.Errorf("image: unknown contention mode %d", p.Mode)
	}
	return nil
}

// ImageResult reports one progressive image transmission (aggregated
// over concurrent streams on the load axis).
type ImageResult struct {
	// Blocks is per image; UsableBlocks/BadCRCBlocks sum over all
	// images in the point.
	Blocks, UsableBlocks, BadCRCBlocks int
	// DeliveredBytes counts wire bytes (CRC trailers included) that
	// arrived in order; Attempts, Retransmits and DupSegments mirror
	// the transport accounting (DupSegments stays 0 on the relay
	// axis — the bulk pipeline has no receive window to absorb into).
	DeliveredBytes, Attempts, Retransmits, DupSegments int
	// Degraded marks a transfer that exhausted a retransmission
	// budget and fell back to its delivered prefix.
	Degraded bool
	// FirstPreviewS is the virtual time until the first PreviewBlocks
	// blocks of every image verified (0 when some image never got
	// there); TotalS the whole transfer's span; GoodputBPS usable
	// image bits (CRC overhead excluded) over TotalS.
	FirstPreviewS, TotalS, GoodputBPS float64
}

// RunImagePoint transmits a progressive image and measures goodput
// and time-to-first-usable-preview.
func RunImagePoint(p ImagePoint) (ImageResult, error) {
	if err := p.Validate(); err != nil {
		return ImageResult{}, err
	}
	p = p.withDefaults()
	if p.Hops > 1 {
		return runImageRelay(p)
	}
	return runImageStreams(p)
}

// runImageStreams sends Streams identical images over direct links
// inside one pod: pair i is nodes (2i, 2i+1), every node within one
// collision domain, so concurrent images contend for the channel.
// Images are written whole, stream by stream, from one goroutine —
// a deterministic enqueue pattern; the dispatch gate interleaves the
// segments by (priority, seq).
func runImageStreams(p ImagePoint) (ImageResult, error) {
	env := p.Env
	if env.Name == "" {
		env = aquago.Bridge
	}
	net, err := aquago.NewNetwork(env,
		aquago.WithNetworkSeed(p.Seed),
		aquago.WithContentionMode(p.Mode),
		aquago.WithNetworkWorkers(p.Workers),
	)
	if err != nil {
		return ImageResult{}, err
	}
	// Pair i sits on its own row, RangeM apart; rows 6 m apart keep
	// every node inside one (unlimited-CS) collision domain without
	// stacking transmitters on top of each other.
	for i := 0; i < p.Streams; i++ {
		if _, err := net.Join(aquago.DeviceID(2*i),
			aquago.Position{Y: float64(i) * 6, Z: 1}, aquago.WithNodeClock(0)); err != nil {
			return ImageResult{}, err
		}
		if _, err := net.Join(aquago.DeviceID(2*i+1),
			aquago.Position{X: p.RangeM, Y: float64(i) * 6, Z: 1}, aquago.WithNodeClock(0)); err != nil {
			return ImageResult{}, err
		}
	}
	payload := imagePayload(p.Blocks, p.BlockBytes, p.Seed)
	previewBytes := p.PreviewBlocks * imageStride(p.BlockBytes)

	streams := make([]*aquago.Stream, p.Streams)
	for i := range streams {
		src, _ := net.Node(aquago.DeviceID(2 * i))
		st, err := src.OpenStream(context.Background(), aquago.DeviceID(2*i+1),
			aquago.WithStreamWindow(p.Window),
			aquago.WithStreamRetries(p.Retries),
			aquago.WithStreamRTO(p.RTOS),
		)
		if err != nil {
			return ImageResult{}, err
		}
		streams[i] = st
	}
	out := ImageResult{Blocks: p.Blocks}
	for _, st := range streams {
		if _, err := st.Write(payload); err != nil {
			return out, fmt.Errorf("image: write: %w", err)
		}
		if err := st.CloseWrite(); err != nil {
			return out, fmt.Errorf("image: close write: %w", err)
		}
	}
	preview := 0.0
	for _, st := range streams {
		if werr := st.Wait(context.Background()); werr != nil {
			if !isStreamFailure(werr) {
				return out, fmt.Errorf("image: stream: %w", werr)
			}
			out.Degraded = true
		}
		stats := st.Stats()
		received := make([]byte, stats.BytesDelivered)
		if _, err := io.ReadFull(st, received); err != nil {
			return out, fmt.Errorf("image: read delivered prefix: %w", err)
		}
		usable, bad := usableBlocks(received, p.Blocks, p.BlockBytes)
		out.UsableBlocks += usable
		out.BadCRCBlocks += bad
		out.DeliveredBytes += stats.BytesDelivered
		out.Attempts += stats.Attempts
		out.Retransmits += stats.Retransmits
		out.DupSegments += stats.DupSegments
		if end := stats.EndS; end > out.TotalS {
			out.TotalS = end
		}
		at := st.FrontierAtS(previewBytes)
		if at == 0 {
			preview = 0
			out.Degraded = true
		} else if preview >= 0 && at > preview {
			preview = at
		}
		if preview == 0 {
			// One image never reached its preview; the point has no
			// time-to-preview. Poison further maxing.
			preview = -1
		}
	}
	if preview > 0 {
		out.FirstPreviewS = preview
	}
	if out.TotalS > 0 {
		out.GoodputBPS = float64(8*out.UsableBlocks*p.BlockBytes) / out.TotalS
	}
	return out, nil
}

// runImageRelay sends the image down a relay line of Hops hops on the
// ARQ-backed pipelined bulk transfer; per-packet arrival times
// (BulkResult.PacketEndS) clock the progressive preview.
func runImageRelay(p ImagePoint) (ImageResult, error) {
	env := p.Env
	if env.Name == "" {
		env = aquago.Bridge
	}
	net, err := aquago.NewNetwork(env,
		aquago.WithNetworkSeed(p.Seed),
		aquago.WithContentionMode(p.Mode),
		aquago.WithCSRange(1.2*p.RangeM),
		aquago.WithBulkRetries(p.Retries),
	)
	if err != nil {
		return ImageResult{}, err
	}
	path := make([]aquago.DeviceID, p.Hops+1)
	for i := range path {
		if _, err := net.Join(aquago.DeviceID(i),
			aquago.Position{X: float64(i) * p.RangeM, Z: 1}, aquago.WithNodeClock(0)); err != nil {
			return ImageResult{}, err
		}
		path[i] = aquago.DeviceID(i)
	}
	payload := imagePayload(p.Blocks, p.BlockBytes, p.Seed)
	previewBytes := p.PreviewBlocks * imageStride(p.BlockBytes)

	res, serr := net.SendBulkViaPipelined(context.Background(), path, payload)
	out := ImageResult{Blocks: p.Blocks}
	if serr != nil {
		var herr *aquago.RelayError
		if !errors.As(serr, &herr) {
			return out, fmt.Errorf("image: relay: %w", serr)
		}
		out.Degraded = true
	}
	usable, bad := usableBlocks(res.Received, p.Blocks, p.BlockBytes)
	out.UsableBlocks = usable
	out.BadCRCBlocks = bad
	out.DeliveredBytes = res.DeliveredBytes
	out.Attempts = res.Attempts
	out.Retransmits = res.Retries
	out.TotalS = res.EndS
	// The preview completes when ALL packets up to the one carrying
	// its last byte have arrived — with per-packet retries the
	// pipeline can finish packet k+1 before packet k, so take the max
	// over the prefix, not the last entry.
	previewPkt := (previewBytes + 1) / 2
	if previewPkt <= len(res.PacketEndS) {
		for _, at := range res.PacketEndS[:previewPkt] {
			if at > out.FirstPreviewS {
				out.FirstPreviewS = at
			}
		}
	} else {
		out.Degraded = true
	}
	if out.TotalS > 0 {
		out.GoodputBPS = float64(8*out.UsableBlocks*p.BlockBytes) / out.TotalS
	}
	return out, nil
}

// imageSweep parameterizes the harness; the golden test runs a
// reduced copy directly.
type imageSweep struct {
	blocks, blockBytes, previewBlocks int
	window, retries                   int
	// rangesM sweeps the direct-stream link length; hops the relay
	// line; streams the concurrent-load axis (at loadRangeM).
	rangesM    []float64
	hops       []int
	streams    []int
	loadRangeM float64
}

func defaultImageSweep(quick bool) imageSweep {
	// The Bridge link is clean to ~70 m and dead past ~80 m; the
	// 72-80 m band is marginal, where per-attempt outcomes differ and
	// retransmission visibly recovers (or the budget dies and the
	// image degrades). The range sweep straddles that band on
	// purpose: healthy, ARQ-recovering, cliff.
	if quick {
		return imageSweep{
			blocks: 4, blockBytes: 3, previewBlocks: 1,
			window: aquago.DefaultStreamWindow, retries: 3,
			rangesM:    []float64{25, 72, 80},
			hops:       []int{1, 2, 3},
			streams:    []int{1, 2},
			loadRangeM: 25,
		}
	}
	return imageSweep{
		blocks: 8, blockBytes: 7, previewBlocks: 2,
		window: aquago.DefaultStreamWindow, retries: 4,
		rangesM:    []float64{25, 50, 65, 72, 76, 80},
		hops:       []int{1, 2, 3, 4, 5},
		streams:    []int{1, 2, 3},
		loadRangeM: 25,
	}
}

// Image is the progressive image transmission harness: image goodput
// and time-to-first-usable-preview versus link range (direct stream),
// hop count (ARQ-backed pipelined relay) and concurrent image count
// (one pod's collision domain).
func Image(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	return imageReport(cfg, defaultImageSweep(cfg.Quick))
}

// imageReport runs the sweep on the experiment worker pool.
func imageReport(cfg RunConfig, sw imageSweep) (Report, error) {
	rep := Report{
		ID:    "image",
		Title: "Progressive image transmission: image goodput and time-to-first-usable-preview vs range, hops and load",
	}
	base := ImagePoint{
		Blocks: sw.blocks, BlockBytes: sw.blockBytes, PreviewBlocks: sw.previewBlocks,
		Window: sw.window, Retries: sw.retries,
		Mode: aquago.EnvelopeContention,
	}

	// Axis 1: one stream vs link range.
	rangeResults, err := parallelMap(cfg.Workers, len(sw.rangesM), func(i int) (ImageResult, error) {
		pt := base
		pt.RangeM = sw.rangesM[i]
		pt.Seed = cfg.Seed + int64(i)*6133
		return RunImagePoint(pt)
	})
	if err != nil {
		return rep, err
	}
	good := Series{Name: "image goodput vs range (stream)", XLabel: "range m", YLabel: "goodput bps"}
	prev := Series{Name: "time to first usable preview vs range (stream)", XLabel: "range m", YLabel: "preview s"}
	for i, r := range rangeResults {
		good.X = append(good.X, sw.rangesM[i])
		good.Y = append(good.Y, r.GoodputBPS)
		prev.X = append(prev.X, sw.rangesM[i])
		prev.Y = append(prev.Y, r.FirstPreviewS)
	}
	rep.Series = append(rep.Series, good, prev)
	first, last := rangeResults[0], rangeResults[len(rangeResults)-1]
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"stream image (%d blocks x %d B + CRC): %.0f m %.1f bps, preview %.1f s -> %.0f m %.1f bps, preview %.1f s (%d/%d blocks usable, %d retransmit(s))",
		sw.blocks, sw.blockBytes, sw.rangesM[0], first.GoodputBPS, first.FirstPreviewS,
		sw.rangesM[len(sw.rangesM)-1], last.GoodputBPS, last.FirstPreviewS,
		last.UsableBlocks, last.Blocks, last.Retransmits))

	// Axis 2: the same image down a relay line (ARQ-backed pipelined
	// bulk; packet arrival times clock the preview).
	hopResults, err := parallelMap(cfg.Workers, len(sw.hops), func(i int) (ImageResult, error) {
		pt := base
		pt.Hops = sw.hops[i]
		pt.Seed = cfg.Seed + int64(i)*4967
		return RunImagePoint(pt)
	})
	if err != nil {
		return rep, err
	}
	good = Series{Name: "image goodput vs hops (relay)", XLabel: "hops", YLabel: "goodput bps"}
	prev = Series{Name: "time to first usable preview vs hops (relay)", XLabel: "hops", YLabel: "preview s"}
	for i, r := range hopResults {
		good.X = append(good.X, float64(sw.hops[i]))
		good.Y = append(good.Y, r.GoodputBPS)
		prev.X = append(prev.X, float64(sw.hops[i]))
		prev.Y = append(prev.Y, r.FirstPreviewS)
	}
	rep.Series = append(rep.Series, good, prev)
	lastHop := hopResults[len(hopResults)-1]
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"relayed image: %d hop(s) %.1f bps, preview %.1f s (%d/%d blocks usable, %d relay retransmit(s))",
		sw.hops[len(sw.hops)-1], lastHop.GoodputBPS, lastHop.FirstPreviewS,
		lastHop.UsableBlocks, lastHop.Blocks, lastHop.Retransmits))

	// Axis 3: concurrent images through one collision domain.
	loadResults, err := parallelMap(cfg.Workers, len(sw.streams), func(i int) (ImageResult, error) {
		pt := base
		pt.RangeM = sw.loadRangeM
		pt.Streams = sw.streams[i]
		pt.Seed = cfg.Seed + int64(i)*5881
		return RunImagePoint(pt)
	})
	if err != nil {
		return rep, err
	}
	good = Series{Name: "image goodput vs concurrent streams (pod)", XLabel: "streams", YLabel: "aggregate goodput bps"}
	prev = Series{Name: "time to first usable preview vs concurrent streams (pod)", XLabel: "streams", YLabel: "worst preview s"}
	for i, r := range loadResults {
		good.X = append(good.X, float64(sw.streams[i]))
		good.Y = append(good.Y, r.GoodputBPS)
		prev.X = append(prev.X, float64(sw.streams[i]))
		prev.Y = append(prev.Y, r.FirstPreviewS)
	}
	rep.Series = append(rep.Series, good, prev)
	lastLoad := loadResults[len(loadResults)-1]
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"concurrent images (%.0f m pod): %d stream(s) aggregate %.1f bps, worst preview %.1f s (%d retransmit(s), %d dup(s) absorbed)",
		sw.loadRangeM, sw.streams[len(sw.streams)-1], lastLoad.GoodputBPS, lastLoad.FirstPreviewS,
		lastLoad.Retransmits, lastLoad.DupSegments))
	return rep, nil
}
