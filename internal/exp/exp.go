// Package exp contains one reproduction harness per figure and table
// of the paper's evaluation (§3). Each harness runs its workload on
// the simulated substrate and returns a Report with the same series
// the paper plots; cmd/aquabench renders them as text and the root
// bench_test.go wraps each one in a testing.B benchmark.
//
// Absolute values differ from the paper (the substrate is a channel
// simulator, not Lake Washington); the reproduction targets are the
// shapes: who wins, by what factor, and where the crossovers fall.
// EXPERIMENTS.md records paper-vs-measured for every harness.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RunConfig sizes a harness run.
type RunConfig struct {
	// Packets per measurement point (the paper uses 100; Quick runs
	// use fewer).
	Packets int
	// Seed drives all randomness; a given (Seed, Packets) pair is
	// fully reproducible.
	Seed int64
	// Quick reduces workloads for smoke tests and benchmarks.
	Quick bool
	// Workers sizes the parallel experiment engine's worker pool:
	// 0 = one worker per CPU core, 1 = legacy serial execution,
	// N > 1 = exactly N workers. Every measurement point derives its
	// own seed, so the Report is identical for any value.
	Workers int
}

// withDefaults fills unset fields.
func (c RunConfig) withDefaults() RunConfig {
	if c.Packets <= 0 {
		if c.Quick {
			c.Packets = 15
		} else {
			c.Packets = 100
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Series is one plottable data series.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X, Y   []float64
}

// Report is a harness's complete output.
type Report struct {
	// ID matches the paper artifact ("fig09", "fig12d", "tab-preamble").
	ID string
	// Title describes the experiment.
	Title string
	// Notes carries headline numbers and paper comparisons.
	Notes []string
	// Series holds the plotted data.
	Series []Series
}

// Harness produces a report.
type Harness func(RunConfig) (Report, error)

// registered harnesses in paper order.
var registry []struct {
	id string
	h  Harness
}

func register(id string, h Harness) {
	registry = append(registry, struct {
		id string
		h  Harness
	}{id, h})
}

// IDs lists registered experiment IDs in paper order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Lookup finds a harness by ID.
func Lookup(id string) (Harness, bool) {
	for _, e := range registry {
		if e.id == id {
			return e.h, true
		}
	}
	return nil, false
}

// Run executes one experiment by ID.
func Run(id string, cfg RunConfig) (Report, error) {
	h, ok := Lookup(id)
	if !ok {
		return Report{}, fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return h(cfg)
}

// Render writes the report as aligned text.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   %s\n", n)
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "\n-- %s --\n", s.Name)
		if len(s.X) == 0 {
			continue
		}
		fmt.Fprintf(w, "%-14s %-14s\n", s.XLabel, s.YLabel)
		for i := range s.X {
			fmt.Fprintf(w, "%-14.4g %-14.4g\n", s.X[i], s.Y[i])
		}
	}
	fmt.Fprintln(w)
}

// cdfSeries converts samples into an empirical CDF series.
func cdfSeries(name, xlabel string, samples []float64) Series {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	x := make([]float64, len(s))
	y := make([]float64, len(s))
	for i, v := range s {
		x[i] = v
		y[i] = float64(i+1) / float64(len(s))
	}
	return Series{Name: name, XLabel: xlabel, YLabel: "CDF", X: x, Y: y}
}

// summarizeCDF reduces a CDF to quartile points for readable output.
func summarizeCDF(name, xlabel string, samples []float64) Series {
	if len(samples) == 0 {
		return Series{Name: name, XLabel: xlabel, YLabel: "CDF"}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	qs := []float64{0.10, 0.25, 0.50, 0.75, 0.90}
	x := make([]float64, len(qs))
	y := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(s)-1))
		x[i] = s[idx]
		y[i] = q
	}
	return Series{Name: name, XLabel: xlabel, YLabel: "CDF", X: x, Y: y}
}

// median of a sample set (0 for empty).
func median(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return 0.5 * (s[n/2-1] + s[n/2])
}
