package exp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"aquago"

	"aquago/internal/modem"
	"aquago/internal/phy"
)

func init() {
	register("macload", MacLoadGoodput)
	register("macsir", MacCaptureSIR)
}

// This file is the MAC goodput harness: the paper stops at Fig 19
// collision fractions, but with waveform-true contention and the
// conflict-graph scheduler (PR 3) the interesting question — how many
// bits per second actually get through as offered load rises — is
// cheap to answer. The harness drives a live Network of N nodes with
// per-node Poisson offered load (loadgen.go), sweeps the load axis in
// both contention modes and per carrier-sense variant, and reports
// delivered goodput, per-message latency percentiles, collision
// fraction and scheduler counters. A companion capture-effect study
// (MacCaptureSIR) bins overlapped waveform exchanges by
// signal-to-interference ratio at the receiver and emits the
// empirical SIR survival curve that envelope mode's all-or-nothing
// collision counting cannot see.

// podGapM separates pod origins: far enough that no carrier-sense
// range used by the harness lets pods hear each other.
const podGapM = 500.0

// maxOfferedMsgs bounds one point's schedule so a misconfigured rate
// or duration cannot allocate unbounded arrivals.
const maxOfferedMsgs = 200000

// MacLoadPoint parameterizes one offered-load measurement on a live
// Network: Pods islands of PodSize nodes each (pods sit podGapM apart
// so a finite carrier-sense range isolates them; traffic stays within
// a pod), every node offering Poisson messages at RateHz over
// DurationS virtual seconds.
type MacLoadPoint struct {
	// Pods and PodSize set the topology: Pods*PodSize nodes total
	// (at most 60, the network's device-ID space). One pod is the
	// paper's single collision domain; several pods plus a finite
	// CSRangeM exercise the conflict-graph scheduler's spatial reuse.
	Pods, PodSize int
	// RateHz is each node's Poisson message rate (messages per virtual
	// second).
	RateHz float64
	// DurationS is the arrival window; traffic may drain later.
	DurationS float64
	// Mode selects envelope or waveform contention.
	Mode aquago.ContentionMode
	// CarrierSense/PreambleAware pick the MAC variant (both false =
	// the paper's no-carrier-sense baseline).
	CarrierSense  bool
	PreambleAware bool
	// CSRangeM bounds carrier-sense audibility (0 = unlimited).
	CSRangeM float64
	// Seed drives arrivals, destinations, channels and MAC backoffs.
	Seed int64
	// Retries is each node's extra attempt budget (< 0 = network
	// default).
	Retries int
	// Workers sizes the network's conflict-graph scheduler pool
	// (0 = one per core). Results are worker-count independent.
	Workers int
	// Env is the deployment site (zero value = Bridge).
	Env aquago.Environment
	// Queued drives the load through the async transmit subsystem
	// instead of one blocking Send per goroutine: the driver enqueues
	// every scheduled message fire-and-forget (NotBeforeS = arrival
	// time) and the per-node transmit daemons do the rest.
	Queued bool
	// QueueCap sizes each node's transmit queue in queued mode
	// (required, at least 1 — aquago.DefaultTxQueueCap is the usual
	// choice); setting it without Queued is an error.
	QueueCap int
}

// Validate rejects parameter combinations that cannot run or would
// silently degenerate; cmd/aquanet -load surfaces these to users.
func (p MacLoadPoint) Validate() error {
	nodes := p.Pods * p.PodSize
	switch {
	case p.Pods < 1:
		return fmt.Errorf("macload: need at least one pod, got %d", p.Pods)
	case p.PodSize < 2:
		return fmt.Errorf("macload: a pod needs at least 2 nodes to exchange messages, got %d", p.PodSize)
	case nodes > 60:
		return fmt.Errorf("macload: %d nodes exceed the 60-device network limit", nodes)
	case math.IsNaN(p.RateHz) || math.IsInf(p.RateHz, 0):
		return fmt.Errorf("macload: offered rate %v is not a finite number", p.RateHz)
	case p.RateHz <= 0:
		return fmt.Errorf("macload: offered rate must be positive, got %g msg/s", p.RateHz)
	case math.IsNaN(p.DurationS) || math.IsInf(p.DurationS, 0):
		return fmt.Errorf("macload: duration %v is not a finite time", p.DurationS)
	case p.DurationS <= 0:
		return fmt.Errorf("macload: duration must be positive, got %g s", p.DurationS)
	case float64(nodes)*p.RateHz*p.DurationS > maxOfferedMsgs:
		return fmt.Errorf("macload: %g expected messages exceed the %d cap (lower -rate or -duration)",
			float64(nodes)*p.RateHz*p.DurationS, maxOfferedMsgs)
	case p.Mode != aquago.EnvelopeContention && p.Mode != aquago.WaveformContention:
		return fmt.Errorf("macload: unknown contention mode %d", p.Mode)
	case p.Queued && p.QueueCap < 1:
		return fmt.Errorf("macload: queued mode needs a transmit queue capacity of at least 1, got %d", p.QueueCap)
	case !p.Queued && p.QueueCap != 0:
		return fmt.Errorf("macload: queue capacity %d set without queued mode", p.QueueCap)
	}
	return nil
}

// MacLoadResult reports one offered-load measurement. Every field
// except Sched.MaxConcurrent and Sched.Workers is a deterministic
// function of the point's parameters (the golden seeds×workers test
// pins the report built from them).
type MacLoadResult struct {
	Nodes int
	// OfferedMsgs counts generated arrivals; DeliveredMsgs the ones
	// whose payload reached the destination; BusyDrops the sends that
	// never won the MAC within the access deadline; NoACKs the sends
	// whose every attempt went unacknowledged.
	OfferedMsgs, DeliveredMsgs, BusyDrops, NoACKs int
	// OfferedBPS is the offered load (bits/s over the arrival window);
	// GoodputBPS the delivered rate (bits/s over the makespan).
	OfferedBPS, GoodputBPS float64
	// Latency percentiles over delivered messages: arrival to the end
	// of the final on-air attempt, in virtual seconds.
	LatencyP50S, LatencyP90S, LatencyP99S float64
	// CollisionFraction is the envelope ledger's transmitter-side
	// accounting (meaningful within one collision domain).
	CollisionFraction float64
	// MakespanS is when the last attempt left the air (at least
	// DurationS).
	MakespanS float64
	// ConflictWidth is the widest batch of mutually non-interfering
	// sends the driver could hand the scheduler at once — the
	// deterministic measure of the concurrency geometry allowed.
	ConflictWidth int
	// Sched snapshots the network's scheduler counters (Granted,
	// Committed and AirtimeS are deterministic; MaxConcurrent is a
	// wall-clock observation).
	Sched aquago.SchedulerStats
}

// loadMsg is one scheduled offered message with its resolved
// destination and payload.
type loadMsg struct {
	arrival
	dst           int
	first, second uint8
}

// podPositions lays out pods*podSize nodes: pod origins podGapM apart
// on the X axis, and within each pod a sunflower spiral of radius
// podRadiusM — every intra-pod distance stays within the protocol's
// working range while spacing grows no tighter than a few meters.
func podPositions(pods, podSize int) []aquago.Position {
	const podRadiusM = 14.0
	const goldenAngle = 2.399963229728653
	out := make([]aquago.Position, 0, pods*podSize)
	for p := 0; p < pods; p++ {
		ox := float64(p) * podGapM
		for j := 0; j < podSize; j++ {
			r := podRadiusM * math.Sqrt((float64(j)+0.5)/float64(podSize))
			th := float64(j) * goldenAngle
			out = append(out, aquago.Position{
				X: ox + r*math.Cos(th),
				Y: r * math.Sin(th),
				Z: 1,
			})
		}
	}
	return out
}

// buildSchedule merges per-node Poisson arrivals into one time-ordered
// message schedule, assigning each message a destination drawn from
// the sender's own pod and a payload of two codebook hand signals.
func buildSchedule(p MacLoadPoint) []loadMsg {
	nodes := p.Pods * p.PodSize
	perNode := poissonArrivals(nodes, p.RateHz, p.DurationS, p.Seed)
	merged := mergeArrivals(perNode)
	numMsgs := len(aquago.Codebook())
	rng := rand.New(rand.NewSource(p.Seed*7907 + 3))
	out := make([]loadMsg, len(merged))
	for i, a := range merged {
		pod := a.node / p.PodSize
		dst := pod*p.PodSize + rng.Intn(p.PodSize-1)
		if dst >= a.node {
			dst++ // skip self, stay in pod
		}
		out[i] = loadMsg{
			arrival: a,
			dst:     dst,
			first:   uint8(rng.Intn(numMsgs)),
			second:  uint8(rng.Intn(numMsgs)),
		}
	}
	return out
}

// msgsConflict mirrors the scheduler's interference rule (sched.go)
// for two scheduled sends: a shared endpoint always conflicts; with an
// unlimited carrier-sense range everything does; with a finite range,
// any cross-pair distance within it.
func msgsConflict(a, b loadMsg, pos []aquago.Position, csRangeM float64) bool {
	if a.node == b.node || a.node == b.dst || a.dst == b.node || a.dst == b.dst {
		return true
	}
	if csRangeM <= 0 {
		return true
	}
	for _, x := range [2]int{a.node, a.dst} {
		for _, y := range [2]int{b.node, b.dst} {
			if pos[x].DistanceTo(pos[y]) <= csRangeM {
				return true
			}
		}
	}
	return false
}

// fullBandAirtime lazily computes the default full-band exchange
// airtime — the harness's unit for converting target channel
// utilization into per-node message rates.
var fullBandAirtime = sync.OnceValues(func() (float64, error) {
	m, err := modem.New(modem.DefaultConfig())
	if err != nil {
		return 0, err
	}
	return phy.New(m, phy.Options{}).PacketAirtimeS(modem.FullBand(m.Config())), nil
})

// RunMacLoadPoint drives one offered-load measurement on a live
// Network. The driver replays the schedule in arrival order, handing
// the conflict-graph scheduler the longest leading run of mutually
// non-interfering sends as one concurrent batch (a batch of one when
// everything shares a collision domain); batches preserve arrival
// order, and within a batch the scheduler's own guarantee — mutually
// non-interfering exchanges share no state — keeps the result
// independent of goroutine interleaving and worker count.
func RunMacLoadPoint(p MacLoadPoint) (MacLoadResult, error) {
	if err := p.Validate(); err != nil {
		return MacLoadResult{}, err
	}
	env := p.Env
	if env.Name == "" {
		env = aquago.Bridge
	}
	opts := []aquago.NetworkOption{
		aquago.WithNetworkSeed(p.Seed),
		aquago.WithContentionMode(p.Mode),
		aquago.WithCSRange(p.CSRangeM),
		aquago.WithNetworkWorkers(p.Workers),
	}
	if !p.CarrierSense {
		opts = append(opts, aquago.WithoutCarrierSense())
	}
	if p.PreambleAware {
		opts = append(opts, aquago.WithPreambleAwareSense())
	}
	if p.Retries >= 0 {
		opts = append(opts, aquago.WithNetworkRetries(p.Retries))
	}
	if p.Queued {
		opts = append(opts, aquago.WithTxQueueCapacity(p.QueueCap))
	}

	// The probe records, per transmitter, when its latest committed
	// attempt left the air — the completion instant latency is measured
	// to. Probe calls are serialized by the network and each send reads
	// only its own node's entry after Send returns, so the map needs
	// just one lock.
	var probeMu sync.Mutex
	lastFinish := make(map[aquago.DeviceID]float64)
	maxFinish := 0.0
	opts = append(opts, aquago.WithExchangeProbe(func(ev aquago.ExchangeEvent) {
		probeMu.Lock()
		end := ev.StartS + ev.AirtimeS
		lastFinish[ev.Tx] = end
		if end > maxFinish {
			maxFinish = end
		}
		probeMu.Unlock()
	}))

	net, err := aquago.NewNetwork(env, opts...)
	if err != nil {
		return MacLoadResult{}, err
	}
	positions := podPositions(p.Pods, p.PodSize)
	nodes := make([]*aquago.Node, len(positions))
	for i, pos := range positions {
		nd, err := net.Join(aquago.DeviceID(i), pos, aquago.WithNodeClock(0))
		if err != nil {
			return MacLoadResult{}, err
		}
		nodes[i] = nd
	}

	schedule := buildSchedule(p)
	res := MacLoadResult{
		Nodes:       len(positions),
		OfferedMsgs: len(schedule),
		OfferedBPS:  float64(len(schedule)*messageBits) / p.DurationS,
		MakespanS:   p.DurationS,
	}

	var accMu sync.Mutex
	var latencies []float64
	var firstErr error
	ctx := context.Background()

	if p.Queued {
		// Fire-and-forget driver: enqueue the whole schedule from this
		// one goroutine in arrival order — the deterministic enqueue
		// pattern the transmit queue's dispatch gate turns into a
		// worker-count-invariant execution — then wait the handles out.
		// No AdvanceClock: each job's NotBeforeS floors its contention
		// start at the arrival instant. Occupancy at enqueue time races
		// with completions, so capacity is prechecked against each
		// node's whole scheduled backlog rather than discovered as a
		// nondeterministic ErrQueueFull.
		perNode := make([]int, len(nodes))
		for _, m := range schedule {
			perNode[m.node]++
		}
		for i, c := range perNode {
			if c > p.QueueCap {
				return MacLoadResult{}, fmt.Errorf(
					"macload: queue capacity %d below node %d's %d scheduled messages (raise -queue or lower the load)",
					p.QueueCap, i, c)
			}
		}
		handles := make([]*aquago.TxHandle, len(schedule))
		for i, m := range schedule {
			h, err := nodes[m.node].Enqueue(ctx, aquago.TxJob{
				Dst:        aquago.DeviceID(m.dst),
				Msgs:       []uint8{m.first, m.second},
				Priority:   aquago.TxNormal,
				NotBeforeS: m.atS,
			})
			if err != nil {
				return MacLoadResult{}, fmt.Errorf("macload: enqueue node %d at %.2fs: %w", m.node, m.atS, err)
			}
			handles[i] = h
		}
		for i, h := range handles {
			m := schedule[i]
			sres, err := h.Wait(ctx)
			switch {
			case err == nil || errors.Is(err, aquago.ErrNoACK):
				if errors.Is(err, aquago.ErrNoACK) {
					res.NoACKs++
				}
				if sres.Delivered {
					res.DeliveredMsgs++
					if sres.Attempts > 0 {
						latencies = append(latencies, h.EndS()-m.atS)
					}
				}
			case errors.Is(err, aquago.ErrChannelBusy):
				res.BusyDrops++
			default:
				return MacLoadResult{}, fmt.Errorf("macload: node %d -> %d at %.2fs: %w", m.node, m.dst, m.atS, err)
			}
		}
		// ConflictWidth stays 0: the queue's dispatch gate, not the
		// prefix batcher, owns concurrency in queued mode.
		probeMu.Lock()
		if maxFinish > res.MakespanS {
			res.MakespanS = maxFinish
		}
		probeMu.Unlock()
		res.GoodputBPS = float64(res.DeliveredMsgs*messageBits) / res.MakespanS
		_, res.CollisionFraction = net.CollisionStats()
		res.Sched = net.SchedulerStats()
		res.LatencyP50S = percentile(latencies, 0.50)
		res.LatencyP90S = percentile(latencies, 0.90)
		res.LatencyP99S = percentile(latencies, 0.99)
		return res, nil
	}

	runOne := func(m loadMsg) {
		nd := nodes[m.node]
		nd.AdvanceClock(m.atS)
		sres, err := nd.Send(ctx, aquago.DeviceID(m.dst), m.first, m.second)
		accMu.Lock()
		defer accMu.Unlock()
		switch {
		case err == nil || errors.Is(err, aquago.ErrNoACK):
			if errors.Is(err, aquago.ErrNoACK) {
				res.NoACKs++
			}
			if sres.Delivered {
				res.DeliveredMsgs++
				if sres.Attempts > 0 {
					probeMu.Lock()
					fin := lastFinish[nd.ID()]
					probeMu.Unlock()
					latencies = append(latencies, fin-m.atS)
				}
			}
		case errors.Is(err, aquago.ErrChannelBusy):
			res.BusyDrops++
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("macload: node %d -> %d at %.2fs: %w", m.node, m.dst, m.atS, err)
			}
		}
	}

	for i := 0; i < len(schedule); {
		// The batch is the longest leading run of pairwise
		// non-interfering sends: strict prefix batching preserves
		// arrival order globally.
		j := i + 1
	grow:
		for ; j < len(schedule); j++ {
			for k := i; k < j; k++ {
				if msgsConflict(schedule[k], schedule[j], positions, p.CSRangeM) {
					break grow
				}
			}
		}
		if w := j - i; w > res.ConflictWidth {
			res.ConflictWidth = w
		}
		var wg sync.WaitGroup
		for _, m := range schedule[i:j] {
			wg.Add(1)
			go func(m loadMsg) {
				defer wg.Done()
				runOne(m)
			}(m)
		}
		wg.Wait()
		i = j
		if firstErr != nil {
			return MacLoadResult{}, firstErr
		}
	}

	probeMu.Lock()
	if maxFinish > res.MakespanS {
		res.MakespanS = maxFinish
	}
	probeMu.Unlock()
	res.GoodputBPS = float64(res.DeliveredMsgs*messageBits) / res.MakespanS
	_, res.CollisionFraction = net.CollisionStats()
	res.Sched = net.SchedulerStats()
	res.LatencyP50S = percentile(latencies, 0.50)
	res.LatencyP90S = percentile(latencies, 0.90)
	res.LatencyP99S = percentile(latencies, 0.99)
	return res, nil
}

// percentile returns the q-quantile of samples (0 for none), nearest
// rank on a sorted copy.
func percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return s[int(q*float64(len(s)-1))]
}

// csVariant is one carrier-sense configuration of the sweep.
type csVariant struct {
	name          string
	carrierSense  bool
	preambleAware bool
}

var csVariants = []csVariant{
	{"no-cs", false, false},
	{"energy-cs", true, false},
	{"preamble-cs", true, true},
}

// macLoadSweep parameterizes the goodput harness; the golden test runs
// a reduced copy directly.
type macLoadSweep struct {
	// envNodes / waveNodes list single-pod node counts per mode
	// (waveform is several times costlier per exchange, so its list is
	// shorter).
	envNodes, waveNodes []int
	// utils are the offered channel-utilization targets the load axis
	// sweeps: offered airtime (full-band exchanges) over elapsed time,
	// aggregated across nodes. > 1 is deliberate overload.
	utils []float64
	// variants indexes csVariants.
	variants []int
	// targetMsgs sizes each point's arrival window.
	targetMsgs int
	// reusePods, when non-empty, adds the spatial-reuse series: pods
	// of 5 at reuseUtil offered utilization per pod, carrier-sense
	// range bounded so pods are independent collision domains.
	reusePods []int
	reuseUtil float64
}

func defaultMacLoadSweep(quick bool) macLoadSweep {
	if quick {
		return macLoadSweep{
			envNodes:   []int{5, 15},
			waveNodes:  []int{5},
			utils:      []float64{0.15, 0.45, 0.9, 1.6},
			variants:   []int{0, 1},
			targetMsgs: 10,
			reusePods:  []int{1, 3},
			reuseUtil:  0.6,
		}
	}
	return macLoadSweep{
		envNodes:   []int{5, 15, 30, 60},
		waveNodes:  []int{5, 15},
		utils:      logspace(0.08, 2.0, 12),
		variants:   []int{0, 1, 2},
		targetMsgs: 48,
		reusePods:  []int{1, 2, 4, 8},
		reuseUtil:  0.6,
	}
}

// logspace returns n log-spaced values from lo to hi inclusive.
func logspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		f := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(hi/lo, f)
	}
	return out
}

// sweepPoint maps one sweep coordinate onto a runnable MacLoadPoint:
// the utilization target u converts to a per-node rate via the
// full-band exchange airtime, and the arrival window stretches to an
// expected targetMsgs messages.
func sweepPoint(seed int64, nodes int, u float64, v csVariant, mode aquago.ContentionMode, targetMsgs int) (MacLoadPoint, error) {
	airtime, err := fullBandAirtime()
	if err != nil {
		return MacLoadPoint{}, err
	}
	rate := u / (airtime * float64(nodes))
	return MacLoadPoint{
		Pods: 1, PodSize: nodes,
		RateHz:        rate,
		DurationS:     float64(targetMsgs) / (rate * float64(nodes)),
		Mode:          mode,
		CarrierSense:  v.carrierSense,
		PreambleAware: v.preambleAware,
		Seed:          seed,
		Retries:       -1,
	}, nil
}

// MacLoadGoodput is the goodput-vs-offered-load harness: delivered
// bits per second against offered bits per second, per node count,
// contention mode and carrier-sense variant, plus a spatial-reuse
// series that scales independent pods across the conflict-graph
// scheduler.
func MacLoadGoodput(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	return macLoadReport(cfg, defaultMacLoadSweep(cfg.Quick))
}

// macLoadReport runs a sweep on the experiment worker pool (one job
// per measurement point) and assembles the report.
func macLoadReport(cfg RunConfig, sw macLoadSweep) (Report, error) {
	rep := Report{
		ID:    "macload",
		Title: "MAC goodput vs offered load (Poisson per-node traffic, live Network)",
	}
	type coord struct {
		mode    aquago.ContentionMode
		nodes   int
		variant int
		u       float64
	}
	var coords []coord
	for _, n := range sw.envNodes {
		for _, v := range sw.variants {
			for _, u := range sw.utils {
				coords = append(coords, coord{aquago.EnvelopeContention, n, v, u})
			}
		}
	}
	for _, n := range sw.waveNodes {
		for _, v := range sw.variants {
			if csVariants[v].preambleAware {
				// Preamble-aware sensing only changes envelope
				// accounting of the quiet window; skip the costly
				// waveform copy of a near-identical curve.
				continue
			}
			for _, u := range sw.utils {
				coords = append(coords, coord{aquago.WaveformContention, n, v, u})
			}
		}
	}

	results, err := parallelMap(cfg.Workers, len(coords), func(i int) (MacLoadResult, error) {
		c := coords[i]
		pt, err := sweepPoint(cfg.Seed+int64(i)*2999, c.nodes, c.u, csVariants[c.variant], c.mode, sw.targetMsgs)
		if err != nil {
			return MacLoadResult{}, err
		}
		return RunMacLoadPoint(pt)
	})
	if err != nil {
		return rep, err
	}

	modeName := map[aquago.ContentionMode]string{
		aquago.EnvelopeContention: "envelope",
		aquago.WaveformContention: "waveform",
	}
	// One goodput series per (mode, N, variant), assembled in coord
	// order; a latency and a collision series ride along per curve.
	type key struct {
		mode    aquago.ContentionMode
		nodes   int
		variant int
	}
	curves := make(map[key][]int) // coord indices in sweep order
	var keys []key
	for i, c := range coords {
		k := key{c.mode, c.nodes, c.variant}
		if _, ok := curves[k]; !ok {
			keys = append(keys, k)
		}
		curves[k] = append(curves[k], i)
	}
	for _, k := range keys {
		label := fmt.Sprintf("N=%d %s %s", k.nodes, modeName[k.mode], csVariants[k.variant].name)
		good := Series{Name: "goodput " + label, XLabel: "offered bps", YLabel: "goodput bps"}
		lat := Series{Name: "latency p90 " + label, XLabel: "offered bps", YLabel: "p90 latency s"}
		coll := Series{Name: "collision fraction " + label, XLabel: "offered bps", YLabel: "collision fraction"}
		peak := 0.0
		for _, i := range curves[k] {
			r := results[i]
			good.X = append(good.X, r.OfferedBPS)
			good.Y = append(good.Y, r.GoodputBPS)
			lat.X = append(lat.X, r.OfferedBPS)
			lat.Y = append(lat.Y, r.LatencyP90S)
			coll.X = append(coll.X, r.OfferedBPS)
			coll.Y = append(coll.Y, r.CollisionFraction)
			if r.GoodputBPS > peak {
				peak = r.GoodputBPS
			}
		}
		rep.Series = append(rep.Series, good, lat, coll)
		last := results[curves[k][len(curves[k])-1]]
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: peak goodput %.1f bps; at top load %.1f bps offered -> %.1f bps, p90 latency %.1f s, collisions %.0f%%, %d/%d delivered (%d busy-drops)",
			label, peak, last.OfferedBPS, last.GoodputBPS, last.LatencyP90S,
			100*last.CollisionFraction, last.DeliveredMsgs, last.OfferedMsgs, last.BusyDrops))
	}

	// Spatial reuse: independent pods on the conflict-graph scheduler.
	if len(sw.reusePods) > 0 {
		airtime, err := fullBandAirtime()
		if err != nil {
			return rep, err
		}
		const podSize = 5
		rate := sw.reuseUtil / (airtime * float64(podSize))
		reuse, err := parallelMap(cfg.Workers, len(sw.reusePods), func(i int) (MacLoadResult, error) {
			return RunMacLoadPoint(MacLoadPoint{
				Pods: sw.reusePods[i], PodSize: podSize,
				RateHz:       rate,
				DurationS:    float64(sw.targetMsgs) / (rate * float64(podSize)),
				Mode:         aquago.EnvelopeContention,
				CarrierSense: true,
				CSRangeM:     40,
				Seed:         cfg.Seed + int64(i)*6607,
				Retries:      -1,
			})
		})
		if err != nil {
			return rep, err
		}
		s := Series{Name: "spatial reuse: goodput vs pods (5 nodes/pod, energy-cs, 40 m cs range)",
			XLabel: "pods", YLabel: "goodput bps"}
		for i, r := range reuse {
			s.X = append(s.X, float64(sw.reusePods[i]))
			s.Y = append(s.Y, r.GoodputBPS)
		}
		rep.Series = append(rep.Series, s)
		lastIdx := len(reuse) - 1
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"spatial reuse: %d pods reach %.1f bps vs %.1f bps for one (conflict width %d — non-interfering pods run concurrently)",
			sw.reusePods[lastIdx], reuse[lastIdx].GoodputBPS, reuse[0].GoodputBPS, reuse[lastIdx].ConflictWidth))
	}
	return rep, nil
}

// captureRun is one forced two-exchange overlap: an interferer pair at
// interfererM from the victim's receiver goes on the air first, and
// the victim exchange is pushed onto the air one sense interval later
// (the scoped commit frontier guarantees the overlap). In waveform
// mode the victim's receive windows mix the interferer's actual
// samples; the SIR probe records each window's signal and interference
// power.
type captureOutcome struct {
	MinSIRdB  float64 // worst window at the victim's receiver (+Inf if never hit)
	Delivered bool
	Collided  bool // envelope ledger counted the overlap
}

func captureRun(interfererM float64, seed int64, mode aquago.ContentionMode) (captureOutcome, error) {
	const victimRx = aquago.DeviceID(0)
	var mu sync.Mutex
	minSIR := math.Inf(1)
	opts := []aquago.NetworkOption{
		aquago.WithNetworkSeed(seed),
		aquago.WithContentionMode(mode),
		aquago.WithoutCarrierSense(),
		aquago.WithNetworkRetries(0),
		aquago.WithNetworkWorkers(1),
		aquago.WithSIRProbe(func(s aquago.SIRSample) {
			if s.Rx != victimRx || s.InterferencePower <= 0 {
				return
			}
			mu.Lock()
			if db := s.SIRdB(); db < minSIR {
				minSIR = db
			}
			mu.Unlock()
		}),
	}
	net, err := aquago.NewNetwork(aquago.Bridge, opts...)
	if err != nil {
		return captureOutcome{}, err
	}
	// Victim pair: 1 -> 0 over 5 m. Interferer pair: 2 -> 3, the
	// interfering transmitter interfererM from the victim's receiver.
	layout := []aquago.Position{
		{X: 0, Z: 1},
		{X: 5, Z: 1},
		{X: -interfererM, Z: 1},
		{X: -interfererM - 5, Z: 1},
	}
	nodes := make([]*aquago.Node, len(layout))
	for i, pos := range layout {
		if nodes[i], err = net.Join(aquago.DeviceID(i), pos, aquago.WithNodeClock(0)); err != nil {
			return captureOutcome{}, err
		}
	}
	numMsgs := len(aquago.Codebook())
	rng := rand.New(rand.NewSource(seed*557 + 1))
	msg := func() uint8 { return uint8(rng.Intn(numMsgs)) }
	ctx := context.Background()
	// Interferer first: its waves are committed traffic when the victim
	// exchange — pushed one sense interval into them by the commit
	// frontier — opens its windows.
	if _, err := nodes[2].Send(ctx, 3, msg(), msg()); err != nil && !errors.Is(err, aquago.ErrNoACK) {
		return captureOutcome{}, err
	}
	vres, err := nodes[1].Send(ctx, 0, msg(), msg())
	if err != nil && !errors.Is(err, aquago.ErrNoACK) {
		return captureOutcome{}, err
	}
	_, frac := net.CollisionStats()
	return captureOutcome{MinSIRdB: minSIR, Delivered: vres.Delivered, Collided: frac > 0}, nil
}

// MacCaptureSIR is the capture-effect study: the same forced overlap
// across interferer distances and seeds, binned by the worst
// signal-to-interference ratio any victim receive window saw. The
// waveform survival curve shows graded capture — exchanges above an
// SIR threshold decode through the collision — where envelope mode's
// transmitter-side ledger counts every overlap as a collision and
// delivers regardless.
func MacCaptureSIR(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "macsir",
		Title: "Capture effect: SIR survival of overlapped waveform exchanges",
	}
	distances := []float64{6, 9, 14, 20, 30, 45, 70, 100}
	seedsPer := 4
	if cfg.Quick {
		distances = []float64{6, 12, 25, 50, 100}
		seedsPer = 2
	}
	type job struct {
		dM   float64
		seed int64
		mode aquago.ContentionMode
	}
	var jobs []job
	for _, mode := range []aquago.ContentionMode{aquago.WaveformContention, aquago.EnvelopeContention} {
		for di, d := range distances {
			for s := 0; s < seedsPer; s++ {
				jobs = append(jobs, job{dM: d, seed: cfg.Seed + int64(di)*131 + int64(s)*17, mode: mode})
			}
		}
	}
	outs, err := parallelMap(cfg.Workers, len(jobs), func(i int) (captureOutcome, error) {
		return captureRun(jobs[i].dM, jobs[i].seed, jobs[i].mode)
	})
	if err != nil {
		return rep, err
	}

	// Waveform: empirical survival curve over observed SIR. Sort the
	// overlapped samples by SIR; at each observed threshold x, report
	// the delivered fraction among samples with SIR >= x.
	type sample struct {
		sir       float64
		delivered bool
	}
	var wave []sample
	var clean, cleanDelivered int
	envDelivered, envCollided, envTotal := 0, 0, 0
	for i, o := range outs {
		if jobs[i].mode == aquago.EnvelopeContention {
			envTotal++
			if o.Delivered {
				envDelivered++
			}
			if o.Collided {
				envCollided++
			}
			continue
		}
		if math.IsInf(o.MinSIRdB, 1) {
			// No victim window ever mixed interference (no overlap
			// materialized); excluded from the curve, counted here so
			// the cap is not silent.
			clean++
			if o.Delivered {
				cleanDelivered++
			}
			continue
		}
		wave = append(wave, sample{sir: o.MinSIRdB, delivered: o.Delivered})
	}
	sort.Slice(wave, func(i, j int) bool { return wave[i].sir < wave[j].sir })
	surv := Series{Name: "waveform survival: delivered fraction above SIR threshold",
		XLabel: "min-window SIR dB", YLabel: "delivered fraction"}
	suffixDelivered := 0
	ys := make([]float64, len(wave))
	for i := len(wave) - 1; i >= 0; i-- {
		if wave[i].delivered {
			suffixDelivered++
		}
		ys[i] = float64(suffixDelivered) / float64(len(wave)-i)
	}
	for i, s := range wave {
		surv.X = append(surv.X, s.sir)
		surv.Y = append(surv.Y, ys[i])
	}
	rep.Series = append(rep.Series, surv)

	// Headline: the lowest SIR that still delivered, and the highest
	// that did not — the empirical capture threshold band.
	lowestOK, highestDead := math.Inf(1), math.Inf(-1)
	delivered := 0
	for _, s := range wave {
		if s.delivered {
			delivered++
			if s.sir < lowestOK {
				lowestOK = s.sir
			}
		} else if s.sir > highestDead {
			highestDead = s.sir
		}
	}
	if len(wave) > 0 {
		note := fmt.Sprintf("waveform: %d/%d overlapped exchanges delivered", delivered, len(wave))
		if delivered > 0 && delivered < len(wave) {
			note += fmt.Sprintf("; highest lost SIR %.1f dB, lowest surviving %.1f dB", highestDead, lowestOK)
		}
		rep.Notes = append(rep.Notes, note)
	}
	if clean > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"waveform: %d runs saw no interference in any victim window (%d delivered); excluded from the curve",
			clean, cleanDelivered))
	}
	if envTotal > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"envelope (all-or-nothing): same scenarios count %d/%d collisions yet deliver %d/%d — no SIR dependence by construction",
			envCollided, envTotal, envDelivered, envTotal))
	}
	return rep, nil
}
