package exp

import (
	"fmt"

	"aquago/internal/channel"
	"aquago/internal/modem"
)

func init() {
	register("fig09", Fig09Environments)
}

// Fig09Environments reproduces Fig 9: at 5 m in three environments of
// increasing difficulty (bridge, park, lake), the adaptive system
// picks its bitrate per packet (a), and its PER stays low while the
// fixed-band baselines degrade with multipath severity (d). Example
// per-subcarrier SNR profiles with the selected band are included for
// the bridge and lake (b, c).
func Fig09Environments(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig09",
		Title: "Effect of environments at 5 m: adaptive vs fixed bands",
	}
	envs := []channel.Environment{channel.Bridge, channel.Park, channel.Lake}
	mcfg := modem.DefaultConfig()
	bands := fixedBands(mcfg)

	// One batch holds every measurement point of the figure: 3
	// adaptive environments, then 3 fixed bands x 3 environments, then
	// the two single-packet SNR-profile probes (Fig 9b,c).
	var pts []point
	for ei, env := range envs {
		pts = append(pts, point{spec: linkSpec{env: env, distanceM: 5},
			packets: cfg.Packets, seed: cfg.Seed + int64(ei)*13})
	}
	for bi := range bands {
		for ei, env := range envs {
			b := bands[bi]
			pts = append(pts, point{spec: linkSpec{env: env, distanceM: 5, fixedBand: &b},
				packets: cfg.Packets, seed: cfg.Seed + int64(ei)*13})
		}
	}
	profileEnvs := []channel.Environment{channel.Bridge, channel.Lake}
	for _, env := range profileEnvs {
		pts = append(pts, point{spec: linkSpec{env: env, distanceM: 5},
			packets: 1, seed: cfg.Seed})
	}
	all, err := runPoints(cfg, pts)
	if err != nil {
		return rep, err
	}

	perSeries := Series{Name: "PER by scheme", XLabel: "env index (0=bridge 1=park 2=lake)", YLabel: "PER"}
	var adaptivePERs []float64
	for ei, env := range envs {
		stats := all[ei]
		rep.Series = append(rep.Series, summarizeCDF(
			fmt.Sprintf("bitrate CDF %s (adaptive)", env.Name), "bitrate bps", stats.BitratesBPS))
		perSeries.X = append(perSeries.X, float64(ei))
		perSeries.Y = append(perSeries.Y, stats.PER())
		adaptivePERs = append(adaptivePERs, stats.PER())
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: adaptive median bitrate %.0f bps, PER %.1f%%",
			env.Name, median(stats.BitratesBPS), 100*stats.PER()))
	}
	rep.Series = append(rep.Series, perSeries)

	// Fixed-band baselines.
	for bi := range bands {
		s := Series{Name: "PER " + fixedBandNames[bi], XLabel: "env index", YLabel: "PER"}
		for ei := range envs {
			stats := all[len(envs)+bi*len(envs)+ei]
			s.X = append(s.X, float64(ei))
			s.Y = append(s.Y, stats.PER())
		}
		rep.Series = append(rep.Series, s)
	}

	// Example SNR profiles with the selected band (Fig 9b,c).
	for pi, env := range profileEnvs {
		stats := all[len(envs)+len(bands)*len(envs)+pi]
		s, bandNote, err := snrProfileFromStats(env, stats)
		if err != nil {
			return rep, err
		}
		s.Name = fmt.Sprintf("SNR profile %s (5 m)", env.Name)
		rep.Series = append(rep.Series, s)
		rep.Notes = append(rep.Notes, bandNote)
	}

	avg := 0.0
	for _, p := range adaptivePERs {
		avg += p
	}
	avg /= float64(len(adaptivePERs))
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"adaptive average PER %.1f%% across environments (paper: ~1%%, fixed schemes far higher at park/lake)",
		100*avg))
	return rep, nil
}

// snrProfileFromStats extracts the estimated per-subcarrier SNR and
// the selected band from a single-packet measurement point.
func snrProfileFromStats(env channel.Environment, stats trialStats) (Series, string, error) {
	if len(stats.Results) == 0 || stats.Results[0].SNRdB == nil {
		return Series{}, "", fmt.Errorf("exp: no SNR estimate for %s", env.Name)
	}
	res := stats.Results[0]
	s := Series{XLabel: "subcarrier", YLabel: "SNR dB"}
	for k, v := range res.SNRdB {
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, v)
	}
	note := fmt.Sprintf("%s: selected band bins [%d, %d] = %.0f-%.0f Hz",
		env.Name, res.Band.Lo, res.Band.Hi,
		1000+float64(res.Band.Lo)*50, 1000+float64(res.Band.Hi)*50)
	return s, note, nil
}
