package exp

import (
	"fmt"

	"aquago/internal/adapt"
	"aquago/internal/channel"
	"aquago/internal/modem"
	"aquago/internal/phy"
)

func init() {
	register("fig14", Fig14Mobility)
	register("fig15", Fig15Orientation)
	register("fig16", Fig16ChannelStability)
}

// motionCases pairs the paper's labels with its accelerometer values.
var motionCases = []struct {
	name   string
	motion channel.Motion
}{
	{"static", channel.Static},
	{"slow (2.5 m/s^2)", channel.SlowMotion},
	{"fast (5.1 m/s^2)", channel.FastMotion},
}

// Fig14Mobility reproduces Fig 14: under motion the selected bitrate
// drops, the PER climbs modestly (paper 1.2 -> 7.6 %), and the
// uncoded BER without differential coding blows up while differential
// coding holds it near 1 %.
func Fig14Mobility(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig14",
		Title: "Effect of mobility (lake, 5 m): differential coding ablation",
	}
	per := Series{Name: "PER adaptive", XLabel: "motion (0=static 1=slow 2=fast)", YLabel: "PER"}
	berDiff := Series{Name: "uncoded BER with differential coding", XLabel: "motion", YLabel: "BER"}
	berNoDiff := Series{Name: "uncoded BER without differential coding", XLabel: "motion", YLabel: "BER"}

	var pts []point
	for mi, mc := range motionCases {
		pts = append(pts, point{spec: linkSpec{env: channel.Lake, distanceM: 5, motion: mc.motion},
			packets: cfg.Packets, seed: cfg.Seed + int64(mi)*29})
	}
	all, err := runPoints(cfg, pts)
	if err != nil {
		return rep, err
	}

	for mi, mc := range motionCases {
		stats := all[mi]
		rep.Series = append(rep.Series, summarizeCDF(
			"bitrate CDF "+mc.name, "bitrate bps", stats.BitratesBPS))
		per.X = append(per.X, float64(mi))
		per.Y = append(per.Y, stats.PER())

		// Uncoded-BER ablation: longer data streams (the paper's BER
		// measurements integrate hundreds of OFDM symbols) decoded
		// both with and without differential coding over the same
		// received audio.
		d, nd, err := mobilityBER(mc.motion, cfg, int64(mi))
		if err != nil {
			return rep, err
		}
		berDiff.X = append(berDiff.X, float64(mi))
		berDiff.Y = append(berDiff.Y, d)
		berNoDiff.X = append(berNoDiff.X, float64(mi))
		berNoDiff.Y = append(berNoDiff.Y, nd)

		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: median bitrate %.0f bps, PER %.1f%%, uncoded BER %.2g (diff) vs %.2g (no diff)",
			mc.name, median(stats.BitratesBPS), 100*stats.PER(), d, nd))
	}
	rep.Series = append(rep.Series, per, berDiff, berNoDiff)
	if len(berNoDiff.Y) == 3 && berNoDiff.Y[2] > berDiff.Y[2] {
		rep.Notes = append(rep.Notes,
			"differential coding holds BER near 1% under fast motion while the ablation blows up (matches Fig 14c)")
	}
	return rep, nil
}

// mobilityBER transmits long data streams through a moving lake
// channel and returns the uncoded BER with and without differential
// coding. The band is selected adaptively per trial from a preamble,
// as the system would. Trials run on the worker pool; each worker owns
// its modem/detector/selector and each trial derives its own payload
// rng, so the tallies are independent of scheduling.
func mobilityBER(motion channel.Motion, cfg RunConfig, caseSeed int64) (withDiff, withoutDiff float64, err error) {
	trials := 6
	symbols := 10
	if cfg.Quick {
		trials = 3
	}
	type mobState struct {
		m   *modem.Modem
		det *modem.Detector
		sel *adapt.Selector
	}
	type tally struct{ errsD, errsND, bits int }
	results, err := parallelMapState(cfg.Workers, trials,
		func() (mobState, error) {
			m, err := modem.New(modem.DefaultConfig())
			if err != nil {
				return mobState{}, err
			}
			return mobState{m: m, det: modem.NewDetector(m), sel: newSelector()}, nil
		},
		func(st mobState, trial int) (tally, error) {
			var t tally
			rng := newRng(cfg.Seed*77 + caseSeed + int64(trial)*524287)
			for _, nd := range []bool{false, true} {
				link, err := channel.NewLink(channel.LinkParams{
					Env: channel.Lake, DistanceM: 5, Motion: motion,
					Seed: cfg.Seed + int64(trial)*131 + caseSeed,
				})
				if err != nil {
					return tally{}, err
				}
				// Band selection from a preamble through this channel.
				rxPre := link.TransmitAt(st.m.Preamble(), 0)
				d, ok := st.det.Detect(rxPre)
				if !ok || d.Offset+st.m.PreambleLen() > len(rxPre) {
					continue
				}
				est, err := st.m.EstimateChannel(rxPre[d.Offset : d.Offset+st.m.PreambleLen()])
				if err != nil {
					continue
				}
				band, ok := st.sel.Select(est.SNRdB)
				if !ok {
					continue
				}
				nBits := band.Width() * symbols
				payload := make([]int, nBits)
				for i := range payload {
					payload[i] = rng.Intn(2)
				}
				opts := modem.DataOptions{NoDifferential: nd}
				tx, err := st.m.ModulateData(payload, band, opts)
				if err != nil {
					return tally{}, err
				}
				rx := link.TransmitAt(tx, 0.4)
				start := findTrainingStart(st.m, rx, band)
				soft, err := st.m.DemodulateData(rx[start:], band, nBits, opts)
				if err != nil {
					continue
				}
				hard := modem.HardBits(soft)
				e := 0
				for i := range payload {
					if hard[i] != payload[i] {
						e++
					}
				}
				if nd {
					t.errsND += e
				} else {
					t.errsD += e
					t.bits += nBits
				}
			}
			return t, nil
		})
	if err != nil {
		return 0, 0, err
	}
	var errsD, errsND, bits int
	for _, t := range results {
		errsD += t.errsD
		errsND += t.errsND
		bits += t.bits
	}
	if bits == 0 {
		return 0, 0, nil
	}
	return float64(errsD) / float64(bits), float64(errsND) / float64(bits), nil
}

// Fig15Orientation reproduces Fig 15: rotating one phone from 0° to
// 180° azimuth at 5 m lowers the median bitrate (paper: 1067 to
// 567 bps) while the adaptive scheme keeps PER low where the fixed
// bands suffer.
func Fig15Orientation(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig15",
		Title: "Effect of phone orientation (bridge, 5 m)",
	}
	angles := []float64{0, 45, 90, 135, 180}
	mcfg := modem.DefaultConfig()
	full := fixedBands(mcfg)[0]
	// Same seed across angles: the paper rotates one phone at one
	// spot, so only the orientation differs between sweeps. The first
	// len(angles) points are adaptive, the rest the full-band baseline.
	var pts []point
	for _, ang := range angles {
		pts = append(pts, point{spec: linkSpec{env: channel.Bridge, distanceM: 5, orientDeg: ang},
			packets: cfg.Packets, seed: cfg.Seed})
	}
	for _, ang := range angles {
		b := full
		pts = append(pts, point{
			spec:    linkSpec{env: channel.Bridge, distanceM: 5, orientDeg: ang, fixedBand: &b},
			packets: cfg.Packets, seed: cfg.Seed})
	}
	all, err := runPoints(cfg, pts)
	if err != nil {
		return rep, err
	}

	medians := Series{Name: "median bitrate vs angle", XLabel: "azimuth deg", YLabel: "bps"}
	per := Series{Name: "PER adaptive", XLabel: "azimuth deg", YLabel: "PER"}
	for ai, ang := range angles {
		stats := all[ai]
		rep.Series = append(rep.Series, summarizeCDF(
			fmt.Sprintf("bitrate CDF %.0f deg", ang), "bitrate bps", stats.BitratesBPS))
		medians.X = append(medians.X, ang)
		medians.Y = append(medians.Y, median(stats.BitratesBPS))
		per.X = append(per.X, ang)
		per.Y = append(per.Y, stats.PER())
	}
	rep.Series = append(rep.Series, medians, per)

	// One fixed baseline for contrast (full band).
	fixedPER := Series{Name: "PER " + fixedBandNames[0], XLabel: "azimuth deg", YLabel: "PER"}
	for ai, ang := range angles {
		stats := all[len(angles)+ai]
		fixedPER.X = append(fixedPER.X, ang)
		fixedPER.Y = append(fixedPER.Y, stats.PER())
	}
	rep.Series = append(rep.Series, fixedPER)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"median bitrate %.0f bps at 0 deg vs %.0f bps at 180 deg (paper: 1067 -> 567)",
		medians.Y[0], medians.Y[len(medians.Y)-1]))
	return rep, nil
}

// Fig16ChannelStability reproduces Fig 16: two preambles separated by
// the feedback interval; the minimum SNR over the band selected from
// the first preamble, evaluated on the second, stays above the 4 dB
// stability reference when static and fluctuates under motion.
func Fig16ChannelStability(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig16",
		Title: "Channel stability: min SNR on a second preamble over the selected band (lake, 10 m)",
	}
	trials := cfg.Packets / 2
	if trials < 8 {
		trials = 8
	}
	// One job per (motion case, trial); each worker owns a protocol
	// instance (the modem's FFT plan is not goroutine-safe).
	type probe struct {
		minSNR float64
		ok     bool
	}
	probes, err := parallelMapState(cfg.Workers, len(motionCases)*trials,
		func() (*phy.Protocol, error) {
			m, err := modem.New(modem.DefaultConfig())
			if err != nil {
				return nil, err
			}
			return newProtocol(m), nil
		},
		func(proto *phy.Protocol, i int) (probe, error) {
			mi, tr := i/trials, i%trials
			med, err := newMedium(linkSpec{env: channel.Lake, distanceM: 10, motion: motionCases[mi].motion},
				cfg.Seed+int64(mi)*37+int64(tr)*411)
			if err != nil {
				return probe{}, err
			}
			minSNR, _, ok := proto.ProbeChannelStability(med, float64(tr)*0.9, 0.2)
			return probe{minSNR: minSNR, ok: ok}, nil
		})
	if err != nil {
		return rep, err
	}
	for mi, mc := range motionCases {
		s := Series{Name: "min SNR " + mc.name, XLabel: "trial", YLabel: "dB"}
		below := 0
		for tr := 0; tr < trials; tr++ {
			p := probes[mi*trials+tr]
			if !p.ok {
				continue
			}
			s.X = append(s.X, float64(len(s.X)))
			s.Y = append(s.Y, p.minSNR)
			if p.minSNR < 4 {
				below++
			}
		}
		rep.Series = append(rep.Series, s)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: %d/%d trials dipped below the 4 dB reference", mc.name, below, len(s.X)))
	}
	return rep, nil
}
