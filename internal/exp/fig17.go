package exp

import (
	"fmt"

	"aquago/internal/channel"
	"aquago/internal/dsp"
	"aquago/internal/mac"
	"aquago/internal/sim"
)

func init() {
	register("fig17", Fig17SubcarrierSpacing)
	register("fig18", Fig18CaseAir)
	register("fig19", Fig19MAC)
}

// Fig17SubcarrierSpacing reproduces Fig 17: at 5 m every spacing is
// fine (~1 % PER); at 20 m the finer 25 and 10 Hz spacings beat 50 Hz
// thanks to higher-resolution SNR estimation and equalization.
func Fig17SubcarrierSpacing(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig17",
		Title: "Effect of OFDM subcarrier spacing (lake, 5 and 20 m)",
	}
	spacings := []int{50, 25, 10}
	distances := []float64{5, 20}
	var pts []point
	for _, dist := range distances {
		for si, sp := range spacings {
			// Finer spacings mean longer symbols; scale packets down
			// to keep runtimes comparable.
			packets := cfg.Packets
			if sp < 50 {
				packets = packets * sp / 50
				if packets < 5 {
					packets = 5
				}
			}
			pts = append(pts, point{spec: linkSpec{env: channel.Lake, distanceM: dist, spacingHz: sp},
				packets: packets, seed: cfg.Seed + int64(si)*41 + int64(dist)})
		}
	}
	all, err := runPoints(cfg, pts)
	if err != nil {
		return rep, err
	}
	for di, dist := range distances {
		per := Series{Name: fmt.Sprintf("PER vs spacing at %.0f m", dist),
			XLabel: "spacing Hz", YLabel: "PER"}
		for si, sp := range spacings {
			stats := all[di*len(spacings)+si]
			per.X = append(per.X, float64(sp))
			per.Y = append(per.Y, stats.PER())
			rep.Series = append(rep.Series, summarizeCDF(
				fmt.Sprintf("bitrate CDF %d Hz spacing, %.0f m", sp, dist),
				"bitrate bps", stats.BitratesBPS))
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%.0f m, %d Hz: PER %.1f%%, median bitrate %.0f bps",
				dist, sp, 100*stats.PER(), median(stats.BitratesBPS)))
		}
		rep.Series = append(rep.Series, per)
	}
	return rep, nil
}

// Fig18CaseAir reproduces Fig 18: expelling vs trapping air in the
// waterproof pouch ripples the frequency response but leaves the
// average 1-4 kHz power close to unchanged.
func Fig18CaseAir(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig18",
		Title: "Effect of air in the waterproof case (frequency response)",
	}
	chirp := dsp.Chirp(1000, 5000, 0.5, 48000)
	cases := []struct {
		name   string
		casing channel.Casing
	}{
		{"air expelled", channel.CasingSoftPouch},
		{"air filled", channel.CasingSoftPouchAir},
	}
	type caseResult struct {
		s     Series
		power float64
	}
	results, err := parallelMap(cfg.Workers, len(cases), func(i int) (caseResult, error) {
		link, err := channel.NewLink(channel.LinkParams{
			Env: channel.Lake, DistanceM: 5, Seed: cfg.Seed,
			Casing: cases[i].casing, NoiseOff: true,
		})
		if err != nil {
			return caseResult{}, err
		}
		s := spectrumOfLink(link.Transmit, chirp, 48000, 500, 6000)
		s.Name = "response " + cases[i].name
		rx := link.Transmit(chirp)
		return caseResult{s: s, power: dsp.BandPower(rx, 48000, 1000, 4000)}, nil
	})
	if err != nil {
		return rep, err
	}
	for _, r := range results {
		rep.Series = append(rep.Series, r.s)
	}
	diff := dsp.DB(results[1].power / results[0].power)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"average 1-4 kHz power difference with air: %.1f dB (paper: not significantly different)", diff))
	return rep, nil
}

// Fig19MAC reproduces Fig 19: collision fractions for two- and
// three-transmitter networks with and without carrier sense
// (paper: 33 % -> 5 % and 53 % -> 7 %).
func Fig19MAC(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig19",
		Title: "Carrier-sense MAC: collision fraction (bridge, 120 packets/tx)",
	}
	packets := 120
	runs := 5
	if cfg.Quick {
		packets = 40
		runs = 2
	}
	// One job per (transmitter count, carrier sense, run); every MAC
	// simulation already derives its own seed.
	txCounts := []int{2, 3}
	senses := []bool{false, true}
	fracs, err := parallelMap(cfg.Workers, len(txCounts)*len(senses)*runs, func(i int) (float64, error) {
		nTx := txCounts[i/(len(senses)*runs)]
		cs := senses[i/runs%len(senses)]
		r := i % runs
		med := sim.New(channel.Bridge)
		med.AddNode(sim.Position{X: 0, Z: 1}) // receiver
		tx := make([]int, nTx)
		for i := range tx {
			tx[i] = med.AddNode(sim.Position{X: 5 + 2.5*float64(i), Y: float64(i), Z: 1})
		}
		res := mac.RunNetwork(med, tx, mac.Config{
			CarrierSense: cs,
			PacketsPerTx: packets,
			Seed:         cfg.Seed + int64(r)*7919 + int64(nTx),
		})
		return res.CollisionFraction, nil
	})
	if err != nil {
		return rep, err
	}
	for ti, nTx := range txCounts {
		s := Series{Name: fmt.Sprintf("%d transmitters", nTx),
			XLabel: "carrier sense (0=off 1=on)", YLabel: "collision fraction"}
		for ci := range senses {
			var sum float64
			for r := 0; r < runs; r++ {
				sum += fracs[(ti*len(senses)+ci)*runs+r]
			}
			s.X = append(s.X, float64(ci))
			s.Y = append(s.Y, sum/float64(runs))
		}
		rep.Series = append(rep.Series, s)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%d tx: %.0f%% without carrier sense -> %.0f%% with (paper: %s)",
			nTx, 100*s.Y[0], 100*s.Y[1],
			map[int]string{2: "33%% -> 5%%", 3: "53%% -> 7%%"}[nTx]))
	}
	return rep, nil
}
