package exp

import (
	"fmt"

	"aquago/internal/adapt"
	"aquago/internal/channel"
	"aquago/internal/mac"
	"aquago/internal/modem"
	"aquago/internal/sim"
)

func init() {
	register("abl-waterfill", AblWaterfill)
	register("abl-macpreamble", AblMACPreamble)
	register("abl-softdecision", AblSoftDecision)
}

// AblSoftDecision isolates a decoder design choice this library makes
// beyond the paper: soft-decision Viterbi discounts subcarriers in
// deep fades, which largely rescues wide fixed bands at short range;
// with hard decisions (the paper implementation's likely behavior,
// given its reported 38-70% fixed-band PER at 5 m) those same bands
// collapse while the adaptive scheme barely cares — it avoided the
// fades before they could matter.
func AblSoftDecision(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "abl-softdecision",
		Title: "Soft vs hard Viterbi decisions (lake, 5 m): why fixed bands fail",
	}
	full := fixedBands(modem.DefaultConfig())[0]
	s := Series{Name: "PER by configuration", XLabel: "cfg (0=adapt/soft 1=adapt/hard 2=fixed/soft 3=fixed/hard)", YLabel: "PER"}
	cases := []struct {
		name  string
		fixed *modem.Band
		hard  bool
	}{
		{"adaptive, soft decisions", nil, false},
		{"adaptive, hard decisions", nil, true},
		{"fixed 3 kHz, soft decisions", &full, false},
		{"fixed 3 kHz, hard decisions", &full, true},
	}
	var pts []point
	for _, c := range cases {
		pts = append(pts, point{
			spec:    linkSpec{env: channel.Lake, distanceM: 5, fixedBand: c.fixed, hardDecision: c.hard},
			packets: cfg.Packets, seed: cfg.Seed})
	}
	all, err := runPoints(cfg, pts)
	if err != nil {
		return rep, err
	}
	for ci, c := range cases {
		stats := all[ci]
		s.X = append(s.X, float64(ci))
		s.Y = append(s.Y, stats.PER())
		rep.Notes = append(rep.Notes, fmt.Sprintf("%-28s PER %.1f%%", c.name, 100*stats.PER()))
	}
	rep.Series = append(rep.Series, s)
	if s.Y[3] > s.Y[1] {
		rep.Notes = append(rep.Notes,
			"with hard decisions the fixed band suffers most — the paper's Fig 9d gap reproduced under its decoder assumptions")
	}
	return rep, nil
}

// AblWaterfill quantifies the design trade the paper makes in §2.2.2:
// ideal water-filling achieves the highest rate but needs O(N0)
// feedback bits; contiguous band selection costs two tones. The
// harness measures, on real estimated SNR profiles at several
// distances, the fraction of the water-filling rate the selected band
// achieves and the feedback payloads of both schemes.
func AblWaterfill(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "abl-waterfill",
		Title: "Band selection vs ideal water-filling (rate achieved vs feedback cost)",
	}
	ratios := Series{Name: "band rate / water-filling rate", XLabel: "distance m", YLabel: "ratio"}
	trials := cfg.Packets / 4
	if trials < 5 {
		trials = 5
	}
	distances := []float64{5, 10, 20, 30}

	// One job per (distance, trial); workers share a
	// modem/detector/selector triple.
	type wfState struct {
		m   *modem.Modem
		det *modem.Detector
		sel *adapt.Selector
	}
	type ratio struct {
		v  float64
		ok bool
	}
	results, err := parallelMapState(cfg.Workers, len(distances)*trials,
		func() (wfState, error) {
			m, err := modem.New(modem.DefaultConfig())
			if err != nil {
				return wfState{}, err
			}
			return wfState{m: m, det: modem.NewDetector(m), sel: adapt.NewSelector()}, nil
		},
		func(st wfState, i int) (ratio, error) {
			m := st.m
			dist := distances[i/trials]
			tr := i % trials
			link, err := channel.NewLink(channel.LinkParams{
				Env: channel.Lake, DistanceM: dist,
				Seed: cfg.Seed + int64(tr)*71 + int64(dist),
			})
			if err != nil {
				return ratio{}, err
			}
			rx := link.TransmitAt(m.Preamble(), float64(tr))
			d, ok := st.det.Detect(rx)
			if !ok || d.Offset+m.PreambleLen() > len(rx) {
				return ratio{}, nil
			}
			est, err := m.EstimateChannel(rx[d.Offset : d.Offset+m.PreambleLen()])
			if err != nil {
				return ratio{}, nil
			}
			band, ok := st.sel.Select(est.SNRdB)
			if !ok {
				return ratio{}, nil
			}
			_, wf := adapt.WaterFill(est.SNRdB)
			if wf <= 0 {
				return ratio{}, nil
			}
			return ratio{v: adapt.BandRateBits(est.SNRdB, band.Lo, band.Hi) / wf, ok: true}, nil
		})
	if err != nil {
		return rep, err
	}
	for di, dist := range distances {
		var sum float64
		var n int
		for tr := 0; tr < trials; tr++ {
			if r := results[di*trials+tr]; r.ok {
				sum += r.v
				n++
			}
		}
		if n == 0 {
			continue
		}
		ratios.X = append(ratios.X, dist)
		ratios.Y = append(ratios.Y, sum/float64(n))
	}
	rep.Series = append(rep.Series, ratios)
	bs, wf := adapt.FeedbackCostBits(modem.DefaultConfig().NumBins(), 6)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("feedback payload: band selection %d bits (one 2-tone symbol) vs water-filling %d bits (~%d OFDM symbols)",
			bs, wf, (wf+59)/60),
		"the paper rejects water-filling because O(60)-bit feedback is significant overhead at these rates (§2.2.2)")
	return rep, nil
}

// AblMACPreamble measures the §2.4 improvement the paper suggests but
// does not implement: adding preamble detection to carrier sense so
// the silent feedback window inside each exchange no longer reads as
// an idle channel.
func AblMACPreamble(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "abl-macpreamble",
		Title: "Carrier sense: energy-only vs preamble-aware (paper's suggested improvement)",
	}
	packets := 120
	runs := 5
	if cfg.Quick {
		packets = 40
		runs = 2
	}
	s := Series{Name: "collision fraction (3 tx)", XLabel: "mode (0=no CS, 1=energy CS, 2=preamble-aware)", YLabel: "fraction"}
	modes := []struct {
		cs, aware bool
	}{{false, false}, {true, false}, {true, true}}
	// One job per (mode, run); every network simulation derives its
	// own seed.
	fracs, err := parallelMap(cfg.Workers, len(modes)*runs, func(i int) (float64, error) {
		mode := modes[i/runs]
		r := i % runs
		med := sim.New(channel.Bridge)
		med.AddNode(sim.Position{X: 0, Z: 1})
		tx := make([]int, 3)
		for i := range tx {
			tx[i] = med.AddNode(sim.Position{X: 5 + 2.5*float64(i), Y: float64(i), Z: 1})
		}
		res := mac.RunNetwork(med, tx, mac.Config{
			CarrierSense:  mode.cs,
			PreambleAware: mode.aware,
			PacketsPerTx:  packets,
			Seed:          cfg.Seed + int64(r)*7919,
		})
		return res.CollisionFraction, nil
	})
	if err != nil {
		return rep, err
	}
	for mi := range modes {
		var sum float64
		for r := 0; r < runs; r++ {
			sum += fracs[mi*runs+r]
		}
		s.X = append(s.X, float64(mi))
		s.Y = append(s.Y, sum/float64(runs))
	}
	rep.Series = append(rep.Series, s)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"collisions: %.0f%% no CS -> %.1f%% energy CS -> %.1f%% preamble-aware",
		100*s.Y[0], 100*s.Y[1], 100*s.Y[2]))
	return rep, nil
}
