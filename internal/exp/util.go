package exp

import (
	"math/rand"

	"aquago/internal/adapt"
	"aquago/internal/channel"
	"aquago/internal/modem"
	"aquago/internal/phy"
)

// linkSpec describes one measurement configuration.
type linkSpec struct {
	env       channel.Environment
	distanceM float64
	depthM    float64 // both devices; 0 -> 1 m (the paper's rig)
	motion    channel.Motion
	orientDeg float64
	casing    channel.Casing
	spacingHz    int // 0 -> 50
	fixedBand    *modem.Band
	dataOpts     modem.DataOptions
	hardDecision bool
	txDevice     channel.Device
	rxDevice     channel.Device
}

// trialStats aggregates protocol results over many packets.
type trialStats struct {
	Results []phy.Result
	// BitratesBPS collects the selected bitrate of each successful
	// band selection.
	BitratesBPS []float64
	// Delivered counts packets decoded without error.
	Delivered int
	// Sent counts attempted packets.
	Sent int
	// CodedErrors/CodedBits accumulate pre-Viterbi statistics.
	CodedErrors, CodedBits int
	// BandLos/BandHis collect selected band edges (subcarrier index).
	BandLos, BandHis []float64
}

// PER returns the packet error rate.
func (s trialStats) PER() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Sent-s.Delivered) / float64(s.Sent)
}

// CodedBER returns the pre-Viterbi bit error rate.
func (s trialStats) CodedBER() float64 {
	if s.CodedBits == 0 {
		return 0
	}
	return float64(s.CodedErrors) / float64(s.CodedBits)
}

// runTrials executes `packets` full protocol exchanges over a link
// described by spec and aggregates the outcomes. Each packet sees the
// channel at a later virtual time; every `rePlacePeriod` packets the
// link is rebuilt with a fresh seed, mirroring the paper's procedure
// of re-submerging the phones every 25 packets.
//
// runTrials is the executor behind the parallel engine's measurement
// points (pool.go): it builds its own modem and protocol, derives all
// randomness from the seed argument, and therefore produces the same
// stats no matter which worker runs it. Harnesses should submit
// points through runPoints rather than calling it directly.
func runTrials(spec linkSpec, packets int, seed int64) (trialStats, error) {
	const rePlacePeriod = 25
	var stats trialStats
	rng := rand.New(rand.NewSource(seed))
	var proto *phy.Protocol
	{
		cfg := modem.DefaultConfig()
		if spec.spacingHz != 0 {
			cfg = cfg.WithSpacing(spec.spacingHz)
		}
		m, err := modem.New(cfg)
		if err != nil {
			return stats, err
		}
		proto = phy.New(m, phy.Options{FixedBand: spec.fixedBand, SkipACK: true,
			DataOpts: spec.dataOpts, HardDecision: spec.hardDecision})
	}
	var med *phy.ChannelMedium
	at := 0.0
	for i := 0; i < packets; i++ {
		if med == nil || i%rePlacePeriod == 0 {
			p := channel.LinkParams{
				Env:            spec.env,
				DistanceM:      spec.distanceM,
				TxDepthM:       spec.depthM,
				RxDepthM:       spec.depthM,
				Motion:         spec.motion,
				OrientationDeg: spec.orientDeg,
				Casing:         spec.casing,
				TxDevice:       spec.txDevice,
				RxDevice:       spec.rxDevice,
				Seed:           seed + int64(i/rePlacePeriod)*104729,
			}
			var err error
			med, err = phy.NewChannelMedium(p)
			if err != nil {
				return stats, err
			}
			at = 0
		}
		// Rotate the destination ID: real networks address different
		// users, so PER statistics average over ID-bin luck (a fixed
		// ID whose subcarrier sits in a channel notch would bias the
		// whole run).
		pkt := phy.Packet{
			Dst:     phy.DeviceID(1 + i%(phy.MaxDeviceID-1)),
			Payload: [2]byte{byte(rng.Intn(256)), byte(rng.Intn(256))},
		}
		res, err := proto.Exchange(med, pkt, at)
		if err != nil {
			return stats, err
		}
		at += proto.PacketAirtimeS(res.Band) + 1.0
		stats.Sent++
		stats.Results = append(stats.Results, res)
		if res.Delivered {
			stats.Delivered++
		}
		if res.BandOK {
			stats.BitratesBPS = append(stats.BitratesBPS, res.BitrateBPS)
			stats.BandLos = append(stats.BandLos, float64(res.Band.Lo))
			stats.BandHis = append(stats.BandHis, float64(res.Band.Hi))
		}
		stats.CodedErrors += res.CodedErrors
		stats.CodedBits += res.CodedBits
	}
	return stats, nil
}

// newProtocol builds a default protocol instance over a modem.
func newProtocol(m *modem.Modem) *phy.Protocol {
	return phy.New(m, phy.Options{SkipACK: true})
}

// newSelector returns the paper-parameter band selector.
func newSelector() *adapt.Selector { return adapt.NewSelector() }

// defaultModemConfig returns the paper numerology (test convenience).
func defaultModemConfig() modem.Config {
	cfg := modem.DefaultConfig()
	return cfg
}

// newRng seeds a deterministic random source.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// newMedium builds a forward/backward medium from a link spec.
func newMedium(spec linkSpec, seed int64) (*phy.ChannelMedium, error) {
	return phy.NewChannelMedium(channel.LinkParams{
		Env:            spec.env,
		DistanceM:      spec.distanceM,
		TxDepthM:       spec.depthM,
		RxDepthM:       spec.depthM,
		Motion:         spec.motion,
		OrientationDeg: spec.orientDeg,
		Casing:         spec.casing,
		TxDevice:       spec.txDevice,
		RxDevice:       spec.rxDevice,
		Seed:           seed,
	})
}

// fixedBands returns the paper's three baseline bands for a config:
// 1-4 kHz (all bins), 1-2.5 kHz, and 1-1.5 kHz.
func fixedBands(cfg modem.Config) []modem.Band {
	nb := cfg.NumBins()
	return []modem.Band{
		{Lo: 0, Hi: nb - 1},     // 3 kHz wide
		{Lo: 0, Hi: nb/2 - 1},   // 1.5 kHz wide
		{Lo: 0, Hi: nb/6 - 1},   // 0.5 kHz wide
	}
}

// fixedBandNames labels the baselines as the paper does.
var fixedBandNames = []string{"fixed 3 kHz (1-4 kHz)", "fixed 1.5 kHz (1-2.5 kHz)", "fixed 0.5 kHz (1-1.5 kHz)"}
