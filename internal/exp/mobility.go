package exp

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"aquago"
)

func init() {
	register("mobility", Mobility)
}

// This file is the drifting-diver harness: the paper's protocol is
// evaluated with *channel* mobility (Fig 14 — Doppler and fading from
// a moving device), but until the motion layer (motion.go) landed,
// the network's geometry was frozen at Join. This harness measures
// what geometric motion costs the relay plane: a diver drifts along a
// fixed relay line while bulk-transferring a payload, and every
// position epoch (Network.AdvanceMotion between chunks) can strand
// the transfer's first hop out of earshot — forcing either an
// in-flight route splice (SendBulkVia's route maintenance) or a fresh
// route per chunk (the pipelined variant, whose path is fixed at
// launch). Goodput and route-repair count versus drift speed is the
// headline.

// maxDriftSpeedMS bounds the diver's drift: the paper bounds safe
// diver motion at 1-2 m/s, so anything past 5 m/s is a boat, not a
// diver.
const maxDriftSpeedMS = 5

// diverLeadFrac places the diver's start this fraction of a spacing
// *before* the first line node, so the initial route enters the line
// at node 0 and the drift can only shorten it.
const diverLeadFrac = 0.4

// MobilityPoint parameterizes one drifting-diver bulk transfer: a
// line of Hops relay nodes SpacingM apart, plus a diver (the source)
// starting just before the line and drifting along it at DriftSpeedMS
// toward the destination — the far end of the line. The payload
// transfers in ChunkBytes chunks, with one motion epoch
// (AdvanceMotion) between chunks, so the route from the diver decays
// and repairs as it drifts.
type MobilityPoint struct {
	// Hops is the initial relay path length: Hops line nodes, so the
	// route diver -> line start -> ... -> line end is Hops hops.
	Hops int
	// SpacingM separates adjacent line nodes (default 25 m).
	SpacingM float64
	// CSRangeM bounds audibility; 0 derives 1.2 * SpacingM so exactly
	// the adjacent line nodes hear each other.
	CSRangeM float64
	// PayloadBytes sizes the whole bulk payload.
	PayloadBytes int
	// ChunkBytes sizes each chunk transfer (default 8); one motion
	// epoch applies between chunks.
	ChunkBytes int
	// DriftSpeedMS is the diver's drift speed along the line in m/s
	// (0 = static baseline; the geometry never changes). The same
	// speed feeds the channel's Doppler/fading model (WithNodeMotion),
	// so physics and geometry agree.
	DriftSpeedMS float64
	// Pipelined runs each chunk through the async transmit subsystem
	// (SendBulkViaPipelined). A pipelined path is fixed at launch, so
	// route repair happens *between* chunks (a fresh route per chunk)
	// instead of mid-transfer.
	Pipelined bool
	// QueueCap sizes each node's transmit queue in pipelined mode
	// (required, at least 1); setting it without Pipelined is an
	// error.
	QueueCap int
	// Seed drives channels, MAC backoffs and the payload bytes.
	Seed int64
	// Retries is each node's extra attempt budget (< 0 = network
	// default).
	Retries int
	// Env is the deployment site (zero value = Bridge).
	Env aquago.Environment
	// Workers sizes the network's scheduler pool (results are
	// worker-count independent — the mobility determinism test pins
	// this).
	Workers int
}

// withDefaults resolves the derived knobs.
func (p MobilityPoint) withDefaults() MobilityPoint {
	if p.SpacingM == 0 {
		p.SpacingM = 25
	}
	if p.CSRangeM == 0 {
		p.CSRangeM = 1.2 * p.SpacingM
	}
	if p.ChunkBytes == 0 {
		p.ChunkBytes = 8
	}
	return p
}

// Validate rejects parameter combinations that cannot run;
// cmd/aquanet -mobility surfaces these to users.
func (p MobilityPoint) Validate() error {
	p = p.withDefaults()
	switch {
	case p.Hops < 2:
		return fmt.Errorf("mobility: need at least two hops so the drift can shorten the route, got %d", p.Hops)
	case p.Hops > 59:
		return fmt.Errorf("mobility: %d hops need %d nodes, over the 60-device limit", p.Hops, p.Hops+1)
	case math.IsNaN(p.SpacingM) || math.IsInf(p.SpacingM, 0) || p.SpacingM <= 0:
		return fmt.Errorf("mobility: node spacing %v m is not a usable distance", p.SpacingM)
	case math.IsNaN(p.CSRangeM) || math.IsInf(p.CSRangeM, 0) || p.CSRangeM < 0:
		return fmt.Errorf("mobility: carrier-sense range %v m is not a usable distance", p.CSRangeM)
	case p.CSRangeM < p.SpacingM:
		return fmt.Errorf("mobility: carrier-sense range %g m below the %g m spacing leaves adjacent nodes deaf — no route exists", p.CSRangeM, p.SpacingM)
	case p.PayloadBytes < 1:
		return fmt.Errorf("mobility: need a payload, got %d bytes", p.PayloadBytes)
	case p.PayloadBytes > maxBulkBytes:
		return fmt.Errorf("mobility: %d payload bytes exceed the %d cap", p.PayloadBytes, maxBulkBytes)
	case p.ChunkBytes < 2:
		return fmt.Errorf("mobility: a chunk needs at least one 2-byte packet, got %d bytes", p.ChunkBytes)
	case math.IsNaN(p.DriftSpeedMS) || math.IsInf(p.DriftSpeedMS, 0) || p.DriftSpeedMS < 0:
		return fmt.Errorf("mobility: drift speed %v m/s is not usable", p.DriftSpeedMS)
	case p.DriftSpeedMS > maxDriftSpeedMS:
		return fmt.Errorf("mobility: drift speed %g m/s exceeds the %d m/s diver bound", p.DriftSpeedMS, maxDriftSpeedMS)
	case p.Pipelined && p.QueueCap < 1:
		return fmt.Errorf("mobility: pipelined mode needs a transmit queue capacity of at least 1, got %d", p.QueueCap)
	case !p.Pipelined && p.QueueCap != 0:
		return fmt.Errorf("mobility: queue capacity %d set without pipelined mode", p.QueueCap)
	}
	return nil
}

// MobilityResult reports one drifting-diver transfer. Every field is
// a deterministic function of the point — the transfer, the motion
// epochs and the route repairs all live on the virtual timeline, so
// no worker count or wall-clock interleaving can leak in
// (DeterministicKey digests them for the cross-worker golden).
type MobilityResult struct {
	// InitialHops / FinalHops bound the route's decay: the first
	// chunk's path length versus the last path walked (the drift
	// shortens the route as the diver overtakes its own relays).
	InitialHops, FinalHops int
	// Chunks counts chunk transfers (one motion epoch between each).
	Chunks int
	// Packets / DeliveredPackets / DeliveredBytes total the protocol
	// packets and payload bytes across chunks.
	Packets, DeliveredPackets, DeliveredBytes int
	// Attempts totals physical transmissions; Retries the relay
	// layer's retransmissions under the bulk retry budget.
	Attempts, Retries int
	// Reroutes counts route repairs: mid-transfer path splices
	// (sequential — BulkResult.Reroutes) plus between-chunk route
	// changes (pipelined — a fresh route that differs from the
	// previous chunk's path). Zero when the diver is static.
	Reroutes int
	// Epochs is how many position epochs the network applied
	// (Network.MotionEpochs after the transfer).
	Epochs uint64
	// LatencyS spans the first chunk's start to the last chunk's
	// final sample at the destination; GoodputBPS the delivered
	// payload bits over it.
	LatencyS, GoodputBPS float64
}

// DeterministicKey digests the worker-count-independent fields; runs
// of the same point must produce equal keys for any Workers value.
func (r MobilityResult) DeterministicKey() string {
	return fmt.Sprintf("hops=%d->%d chunks=%d pkts=%d/%d bytes=%d attempts=%d retries=%d reroutes=%d epochs=%d latency=%.9f goodput=%.9f",
		r.InitialHops, r.FinalHops, r.Chunks, r.DeliveredPackets, r.Packets,
		r.DeliveredBytes, r.Attempts, r.Retries, r.Reroutes, r.Epochs,
		r.LatencyS, r.GoodputBPS)
}

// samePath reports whether two relay paths are identical.
func samePath(a, b []aquago.DeviceID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunMobilityPoint drifts the diver down the relay line while bulk
// transferring, and measures what the motion cost.
func RunMobilityPoint(p MobilityPoint) (MobilityResult, error) {
	if err := p.Validate(); err != nil {
		return MobilityResult{}, err
	}
	p = p.withDefaults()
	env := p.Env
	if env.Name == "" {
		env = aquago.Bridge
	}
	opts := []aquago.NetworkOption{
		aquago.WithNetworkSeed(p.Seed),
		aquago.WithCSRange(p.CSRangeM),
		aquago.WithNetworkWorkers(p.Workers),
	}
	if p.Retries >= 0 {
		opts = append(opts, aquago.WithNetworkRetries(p.Retries))
	}
	if p.Pipelined {
		opts = append(opts, aquago.WithTxQueueCapacity(p.QueueCap))
	}
	net, err := aquago.NewNetwork(env, opts...)
	if err != nil {
		return MobilityResult{}, err
	}
	// The fixed line: nodes 1..Hops at X = 0, SpacingM, ...,
	// (Hops-1)*SpacingM; the last is the destination.
	for i := 1; i <= p.Hops; i++ {
		if _, err := net.Join(aquago.DeviceID(i),
			aquago.Position{X: float64(i-1) * p.SpacingM, Z: 1},
			aquago.WithNodeClock(0)); err != nil {
			return MobilityResult{}, err
		}
	}
	// The diver: starts diverLeadFrac of a spacing before the line
	// and drifts toward the destination, stopping one spacing short
	// of it — close enough that the final route is a single hop. The
	// track feeds the geometry; the matched WithNodeMotion feeds the
	// channel's Doppler/fading model.
	start := aquago.Position{X: -diverLeadFrac * p.SpacingM, Z: 1}
	diverOpts := []aquago.NodeOption{aquago.WithNodeClock(0)}
	if p.DriftSpeedMS > 0 {
		driftM := float64(p.Hops-1) * p.SpacingM
		diverOpts = append(diverOpts,
			aquago.WithNodeMotion(aquago.Motion{SpeedMS: p.DriftSpeedMS}),
			aquago.WithMotionTrack(aquago.DriftTrack(start, p.DriftSpeedMS, 0, 0, driftM/p.DriftSpeedMS)))
	}
	if _, err := net.Join(0, start, diverOpts...); err != nil {
		return MobilityResult{}, err
	}

	payload := make([]byte, p.PayloadBytes)
	rand.New(rand.NewSource(p.Seed*7351 + 11)).Read(payload)
	dst := aquago.DeviceID(p.Hops)
	send := net.SendBulkVia
	if p.Pipelined {
		send = net.SendBulkViaPipelined
	}

	var res MobilityResult
	var path []aquago.DeviceID
	var startS, endS float64
	ctx := context.Background()
	for off := 0; off < len(payload); off += p.ChunkBytes {
		chunkEnd := off + p.ChunkBytes
		if chunkEnd > len(payload) {
			chunkEnd = len(payload)
		}
		// Sequential chunks reuse the previous chunk's path as last
		// walked, leaving repair to SendBulkVia's in-flight route
		// maintenance; pipelined paths are fixed at launch, so each
		// chunk routes fresh and a changed route counts as the repair.
		if p.Pipelined || path == nil {
			fresh, err := net.Route(0, dst)
			if err != nil {
				return res, fmt.Errorf("mobility: routing chunk at byte %d: %w", off, err)
			}
			if path != nil && !samePath(fresh, path) {
				res.Reroutes++
			}
			path = fresh
		}
		if res.Chunks == 0 {
			res.InitialHops = len(path) - 1
		}
		out, err := send(ctx, path, payload[off:chunkEnd])
		res.Chunks++
		res.Packets += out.Packets
		res.DeliveredPackets += out.DeliveredPackets
		res.DeliveredBytes += out.DeliveredBytes
		res.Attempts += out.Attempts
		res.Retries += out.Retries
		res.Reroutes += out.Reroutes
		if err != nil {
			return res, fmt.Errorf("mobility: chunk at byte %d: %w", off, err)
		}
		if res.Chunks == 1 {
			startS = out.StartS
		}
		endS = out.EndS
		path = out.Path
		// One position epoch per chunk boundary: the diver is wherever
		// its track says it is when the chunk's last sample landed.
		if _, err := net.AdvanceMotion(endS); err != nil {
			return res, fmt.Errorf("mobility: motion epoch at %.2fs: %w", endS, err)
		}
	}
	res.FinalHops = len(path) - 1
	res.Epochs = net.MotionEpochs()
	res.LatencyS = endS - startS
	if res.LatencyS > 0 {
		res.GoodputBPS = 8 * float64(res.DeliveredBytes) / res.LatencyS
	}
	return res, nil
}

// mobilitySweep parameterizes the harness; the exp tests run reduced
// points directly.
type mobilitySweep struct {
	// hops is the initial relay path length.
	hops int
	// payloadBytes / chunkBytes size the transfer and its chunks.
	payloadBytes, chunkBytes int
	// speeds lists the drift speeds (m/s) to sweep; include 0 so the
	// static baseline anchors every series.
	speeds []float64
}

func defaultMobilitySweep(quick bool) mobilitySweep {
	if quick {
		return mobilitySweep{
			hops:         4,
			payloadBytes: 24,
			chunkBytes:   4,
			speeds:       []float64{0, 0.5, 2},
		}
	}
	return mobilitySweep{
		hops:         6,
		payloadBytes: 48,
		chunkBytes:   4,
		speeds:       []float64{0, 0.25, 0.5, 1, 2},
	}
}

// Mobility is the drifting-diver harness: bulk relay goodput and
// route-repair count versus drift speed, sequential (in-flight route
// splices) and pipelined (fresh route per chunk).
func Mobility(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	return mobilityReport(cfg, defaultMobilitySweep(cfg.Quick))
}

// mobilityReport runs the sweep on the experiment worker pool.
func mobilityReport(cfg RunConfig, sw mobilitySweep) (Report, error) {
	rep := Report{
		ID:    "mobility",
		Title: "Drifting diver: bulk relay goodput and route repairs vs drift speed",
	}
	type coord struct {
		speed     float64
		pipelined bool
	}
	var coords []coord
	for _, v := range sw.speeds {
		coords = append(coords, coord{v, false})
	}
	for _, v := range sw.speeds {
		coords = append(coords, coord{v, true})
	}
	results, err := parallelMap(cfg.Workers, len(coords), func(i int) (MobilityResult, error) {
		c := coords[i]
		pt := MobilityPoint{
			Hops:         sw.hops,
			PayloadBytes: sw.payloadBytes,
			ChunkBytes:   sw.chunkBytes,
			DriftSpeedMS: c.speed,
			Seed:         cfg.Seed + int64(i)*5407,
			Retries:      -1,
			Pipelined:    c.pipelined,
		}
		if c.pipelined {
			pt.QueueCap = aquago.DefaultTxQueueCap
		}
		return RunMobilityPoint(pt)
	})
	if err != nil {
		return rep, err
	}
	for _, pipe := range []bool{false, true} {
		label := "sequential"
		if pipe {
			label = "pipelined"
		}
		good := Series{Name: fmt.Sprintf("drifting-diver goodput vs drift speed (%s)", label),
			XLabel: "drift m/s", YLabel: "goodput bps"}
		repairs := Series{Name: fmt.Sprintf("route repairs vs drift speed (%s)", label),
			XLabel: "drift m/s", YLabel: "reroutes"}
		var static, fastest MobilityResult
		var fastestV float64
		for i, c := range coords {
			if c.pipelined != pipe {
				continue
			}
			r := results[i]
			good.X = append(good.X, c.speed)
			good.Y = append(good.Y, r.GoodputBPS)
			repairs.X = append(repairs.X, c.speed)
			repairs.Y = append(repairs.Y, float64(r.Reroutes))
			if c.speed == 0 {
				static = r
			}
			if c.speed >= fastestV {
				fastestV, fastest = c.speed, r
			}
		}
		rep.Series = append(rep.Series, good, repairs)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s (%d B over %d hops): static %.1f bps -> %.2g m/s %.1f bps, %d route repair(s) over %d epoch(s), route %d -> %d hops",
			label, sw.payloadBytes, sw.hops, static.GoodputBPS,
			fastestV, fastest.GoodputBPS, fastest.Reroutes, fastest.Epochs,
			fastest.InitialHops, fastest.FinalHops))
	}
	return rep, nil
}
