package exp

import (
	"testing"

	"aquago/internal/channel"
)

// TestAdaptivePERAcrossSites is the end-to-end regression guard for
// the system's headline behavior: the adaptive protocol's packet
// error rate across representative sites, distances and depths stays
// within the regime the paper reports (single digits at short range,
// tens of percent at the 30 m edge). The per-stage histogram in the
// logs localizes failures when a change regresses one stage.
func TestAdaptivePERAcrossSites(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-site PER sweep")
	}
	cases := []struct {
		name   string
		spec   linkSpec
		maxPER float64
	}{
		{"lake5", linkSpec{env: channel.Lake, distanceM: 5}, 0.15},
		{"lake10", linkSpec{env: channel.Lake, distanceM: 10}, 0.20},
		{"lake20", linkSpec{env: channel.Lake, distanceM: 20}, 0.30},
		{"lake30", linkSpec{env: channel.Lake, distanceM: 30}, 0.40},
		{"park5", linkSpec{env: channel.Park, distanceM: 5}, 0.15},
		{"museum2", linkSpec{env: channel.Museum, distanceM: 5, depthM: 2}, 0.30},
		{"museum7", linkSpec{env: channel.Museum, distanceM: 5, depthM: 7}, 0.35},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			stats, err := runTrials(c.spec, 30, 99)
			if err != nil {
				t.Fatal(err)
			}
			hist := map[string]int{}
			for _, r := range stats.Results {
				key := r.String()
				if len(key) > 4 {
					key = key[:4]
				}
				hist[key]++
			}
			t.Logf("%s: PER=%.0f%% stages=%v", c.name, 100*stats.PER(), hist)
			if stats.PER() > c.maxPER {
				t.Errorf("%s: PER %.0f%% exceeds guard %.0f%%",
					c.name, 100*stats.PER(), 100*c.maxPER)
			}
		})
	}
}
