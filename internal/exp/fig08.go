package exp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"aquago/internal/channel"
	"aquago/internal/dsp"
	"aquago/internal/modem"
)

func init() {
	register("fig08", Fig08BERvsSNR)
}

// Fig08BERvsSNR reproduces Fig 8: uncoded per-subcarrier BER as a
// function of that subcarrier's estimated SNR, measured at 5, 10 and
// 20 m with the full 1-4 kHz band, compared against the theoretical
// BPSK curve Q(sqrt(2*SNR)).
func Fig08BERvsSNR(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig08",
		Title: "Uncoded BER vs per-subcarrier SNR (bridge, full band, BPSK)",
	}
	symbolsPerPacket := 20
	packets := cfg.Packets / 4
	if packets < 3 {
		packets = 3
	}
	distances := []float64{5, 10, 20}

	// One job per (distance, packet); workers share a modem/detector
	// pair, each job derives its payload rng from its own cell seed and
	// returns a private histogram that is merged below.
	type bucket struct{ errs, bits int }
	type fig08State struct {
		m   *modem.Modem
		det *modem.Detector
	}
	maps, err := parallelMapState(cfg.Workers, len(distances)*packets,
		func() (fig08State, error) {
			m, err := modem.New(modem.DefaultConfig())
			if err != nil {
				return fig08State{}, err
			}
			return fig08State{m: m, det: modem.NewDetector(m)}, nil
		},
		func(st fig08State, i int) (map[int]bucket, error) {
			m, det := st.m, st.det
			dist := distances[i/packets]
			p := i % packets
			band := modem.FullBand(m.Config())
			link, err := channel.NewLink(channel.LinkParams{
				Env: channel.Bridge, DistanceM: dist,
				Seed: cfg.Seed + int64(p)*31 + int64(dist)*977,
			})
			if err != nil {
				return nil, err
			}
			// SNR estimate from a detected preamble.
			rxPre := link.TransmitAt(m.Preamble(), 0)
			d, ok := det.Detect(rxPre)
			if !ok || d.Offset+m.PreambleLen() > len(rxPre) {
				return nil, nil
			}
			est, err := m.EstimateChannel(rxPre[d.Offset : d.Offset+m.PreambleLen()])
			if err != nil {
				return nil, nil
			}
			// Data on every subcarrier.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*131 + int64(dist)*8429))
			nBits := band.Width() * symbolsPerPacket
			bits := make([]int, nBits)
			for i := range bits {
				bits[i] = rng.Intn(2)
			}
			tx, err := m.ModulateData(bits, band, modem.DataOptions{})
			if err != nil {
				return nil, err
			}
			rxData := link.TransmitAt(tx, 0.5)
			start := findTrainingStart(m, rxData, band)
			soft, err := m.DemodulateData(rxData[start:], band, nBits, modem.DataOptions{})
			if err != nil {
				return nil, nil
			}
			hard := modem.HardBits(soft)
			local := map[int]bucket{}
			for i := range bits {
				bin := i % band.Width()
				key := int(math.Round(est.SNRdB[bin]))
				b := local[key]
				b.bits++
				if hard[i] != bits[i] {
					b.errs++
				}
				local[key] = b
			}
			return local, nil
		})
	if err != nil {
		return rep, err
	}
	buckets := map[int]*bucket{}
	for _, local := range maps {
		//aqualint:order-independent merges worker-local buckets by integer addition per key, which commutes; series rendering sorts the populated keys below
		for key, lb := range local {
			b := buckets[key]
			if b == nil {
				b = &bucket{}
				buckets[key] = b
			}
			b.errs += lb.errs
			b.bits += lb.bits
		}
	}

	// Measured series over populated buckets.
	keys := make([]int, 0, len(buckets))
	for k, b := range buckets {
		if b.bits >= 100 { // require statistics
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	meas := Series{Name: "measured", XLabel: "subcarrier SNR dB", YLabel: "BER"}
	for _, k := range keys {
		b := buckets[k]
		meas.X = append(meas.X, float64(k))
		meas.Y = append(meas.Y, float64(b.errs)/float64(b.bits))
	}
	theory := Series{Name: "BPSK theory Q(sqrt(2 SNR))", XLabel: "subcarrier SNR dB", YLabel: "BER"}
	for snr := -6.0; snr <= 14; snr += 2 {
		lin := math.Pow(10, snr/10)
		theory.X = append(theory.X, snr)
		theory.Y = append(theory.Y, 0.5*math.Erfc(math.Sqrt(lin)))
	}
	rep.Series = []Series{meas, theory}

	// Shape checks matching the paper's reading of the figure.
	if len(meas.Y) >= 2 {
		lowBER := meas.Y[0]
		highBER := meas.Y[len(meas.Y)-1]
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"BER falls from %.3g at %.0f dB to %.3g at %.0f dB (follows the theoretical trend)",
			lowBER, meas.X[0], highBER, meas.X[len(meas.X)-1]))
	}
	return rep, nil
}

// findTrainingStart locates the band-limited training symbol in a
// received data section by normalized cross-correlation.
func findTrainingStart(m *modem.Modem, rx []float64, band modem.Band) int {
	ref, err := m.TrainingSymbol(band)
	if err != nil {
		return 0
	}
	searchLen := min(len(rx), len(ref)+2*m.Config().SymbolLen())
	if searchLen <= len(ref) {
		return 0
	}
	corr := dsp.NormalizedCrossCorrelate(rx[:searchLen], ref)
	best := dsp.ArgMax(corr)
	if best < 0 {
		return 0
	}
	return best
}
