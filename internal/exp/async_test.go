package exp

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"aquago"
)

// normalizeSched zeroes the two wall-clock observation fields so
// deep-equality compares only the deterministic part of a result.
func normalizeSched(r MacLoadResult) MacLoadResult {
	r.Sched.MaxConcurrent = 0
	r.Sched.Workers = 0
	return r
}

// TestMacLoadQueuedGoldenSeedsWorkers is the queued-driver golden:
// the fire-and-forget load driven through the async transmit
// subsystem must produce deeply equal measurements across network
// worker counts, for several seeds, in both contention modes — the
// dispatch gate's determinism contract, pinned end to end.
func TestMacLoadQueuedGoldenSeedsWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs live-network load points repeatedly")
	}
	cases := []struct {
		mode aquago.ContentionMode
		name string
		size int
		rate float64
		dur  float64
	}{
		{aquago.EnvelopeContention, "envelope", 4, 0.05, 60},
		{aquago.WaveformContention, "waveform", 3, 0.04, 50},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{3, 11} {
				var ref MacLoadResult
				for i, workers := range []int{1, 8} {
					got, err := RunMacLoadPoint(MacLoadPoint{
						Pods: 1, PodSize: tc.size,
						RateHz: tc.rate, DurationS: tc.dur,
						Mode:         tc.mode,
						CarrierSense: true,
						Seed:         seed,
						Retries:      -1,
						Workers:      workers,
						Queued:       true,
						QueueCap:     aquago.DefaultTxQueueCap,
					})
					if err != nil {
						t.Fatalf("seed %d workers %d: %v", seed, workers, err)
					}
					got = normalizeSched(got)
					if got.OfferedMsgs == 0 {
						t.Fatalf("seed %d: schedule offered no messages", seed)
					}
					if got.DeliveredMsgs == 0 {
						t.Fatalf("seed %d: nothing delivered: %+v", seed, got)
					}
					if i == 0 {
						ref = got
						continue
					}
					if !reflect.DeepEqual(ref, got) {
						t.Fatalf("seed %d: queued load is worker-count dependent\nworkers=1: %+v\nworkers=%d: %+v",
							seed, ref, workers, got)
					}
				}
			}
		})
	}
}

// TestMacLoadQueuedValidate covers the queued driver's error paths in
// the point taxonomy.
func TestMacLoadQueuedValidate(t *testing.T) {
	base := MacLoadPoint{
		Pods: 1, PodSize: 3, RateHz: 0.05, DurationS: 30,
		Mode: aquago.EnvelopeContention, Seed: 1,
	}
	zeroCap := base
	zeroCap.Queued = true
	if err := zeroCap.Validate(); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("zero queue capacity accepted: %v", err)
	}
	capless := base
	capless.QueueCap = 8
	if err := capless.Validate(); err == nil || !strings.Contains(err.Error(), "without queued") {
		t.Fatalf("queue capacity without queued mode accepted: %v", err)
	}
	nanRate := base
	nanRate.Queued, nanRate.QueueCap = true, 8
	nanRate.RateHz = math.NaN()
	if err := nanRate.Validate(); err == nil {
		t.Fatal("NaN rate accepted in queued mode")
	}
	negRate := base
	negRate.Queued, negRate.QueueCap = true, 8
	negRate.RateHz = -0.5
	if err := negRate.Validate(); err == nil {
		t.Fatal("negative rate accepted in queued mode")
	}
	ok := base
	ok.Queued, ok.QueueCap = true, 1
	if err := ok.Validate(); err != nil {
		t.Fatalf("minimal queued point rejected: %v", err)
	}
}

// TestMacLoadQueuedCapacityPrecheck: a queue capacity below a node's
// scheduled backlog must fail deterministically up front, not as a
// racy ErrQueueFull mid-run.
func TestMacLoadQueuedCapacityPrecheck(t *testing.T) {
	_, err := RunMacLoadPoint(MacLoadPoint{
		Pods: 1, PodSize: 3, RateHz: 0.2, DurationS: 60,
		Mode: aquago.EnvelopeContention, CarrierSense: true,
		Seed: 3, Retries: -1,
		Queued: true, QueueCap: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "below node") {
		t.Fatalf("undersized queue not prechecked: %v", err)
	}
}

// TestMultiHopPipelinedOutpacesSequential pins the tentpole claim:
// on the 3-hop line, the pipelined transfer over per-relay transmit
// queues with the p-persistent MAC and adaptive backoff quanta
// delivers everything and beats the sequential store-and-forward
// goodput.
func TestMultiHopPipelinedOutpacesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full adaptive exchanges per hop")
	}
	base := MultiHopPoint{
		Hops: 3, PayloadBytes: 8, Mode: aquago.EnvelopeContention,
		Seed: 1, Retries: -1,
	}
	seq, err := RunMultiHopPoint(base)
	if err != nil {
		t.Fatal(err)
	}
	pipe := base
	pipe.Pipelined = true
	pipe.QueueCap = aquago.DefaultTxQueueCap
	pipe.Persist = 0.7
	pipe.AdaptiveBackoff = true
	pip, err := RunMultiHopPoint(pipe)
	if err != nil {
		t.Fatal(err)
	}
	if pip.DeliveredPackets != pip.Packets {
		t.Fatalf("pipelined transfer dropped packets: %+v", pip)
	}
	if pip.GoodputBPS <= seq.GoodputBPS {
		t.Fatalf("pipelined goodput %.2f bps does not beat sequential %.2f bps",
			pip.GoodputBPS, seq.GoodputBPS)
	}
	t.Logf("3-hop envelope bulk: pipelined %.2f bps vs sequential %.2f bps", pip.GoodputBPS, seq.GoodputBPS)
}

// TestMultiHopPipelinedValidate covers the pipelined point's error
// paths.
func TestMultiHopPipelinedValidate(t *testing.T) {
	base := MultiHopPoint{Hops: 2, PayloadBytes: 4, Mode: aquago.EnvelopeContention}
	zeroCap := base
	zeroCap.Pipelined = true
	if err := zeroCap.Validate(); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("zero queue capacity accepted: %v", err)
	}
	capless := base
	capless.QueueCap = 8
	if err := capless.Validate(); err == nil || !strings.Contains(err.Error(), "without pipelined") {
		t.Fatalf("queue capacity without pipelined mode accepted: %v", err)
	}
	for _, persist := range []float64{math.NaN(), -0.2, 1.3} {
		p := base
		p.Persist = persist
		if err := p.Validate(); err == nil {
			t.Fatalf("persistence %v accepted", persist)
		}
	}
	ok := base
	ok.Pipelined, ok.QueueCap, ok.Persist = true, 1, 1
	if err := ok.Validate(); err != nil {
		t.Fatalf("minimal pipelined point rejected: %v", err)
	}
}
