package exp

import (
	"fmt"
	"math/rand"

	"aquago/internal/channel"
	"aquago/internal/modem"
	"aquago/internal/phy"
)

func init() {
	register("fig12", Fig12Range)
	register("fig12d", Fig12dLongRange)
	register("fig13", Fig13BandVsDistance)
}

// Fig12Range reproduces Fig 12a-c: in the lake at 5-30 m, the
// adaptive scheme's selected bitrate falls with distance while its
// PER stays low; the fixed bands' BER and PER climb steeply, hitting
// total loss where their subcarriers fade.
func Fig12Range(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig12",
		Title: "Range evaluation (lake, 1 m depth): adaptive vs fixed bands",
	}
	distances := []float64{5, 10, 20, 30}
	mcfg := modem.DefaultConfig()
	bands := fixedBands(mcfg)

	var pts []point
	for di, dist := range distances {
		pts = append(pts, point{spec: linkSpec{env: channel.Lake, distanceM: dist},
			packets: cfg.Packets, seed: cfg.Seed + int64(di)*19})
	}
	for bi := range bands {
		for di, dist := range distances {
			b := bands[bi]
			pts = append(pts, point{spec: linkSpec{env: channel.Lake, distanceM: dist, fixedBand: &b},
				packets: cfg.Packets, seed: cfg.Seed + int64(di)*19})
		}
	}
	all, err := runPoints(cfg, pts)
	if err != nil {
		return rep, err
	}

	adaptPER := Series{Name: "PER adaptive", XLabel: "distance m", YLabel: "PER"}
	adaptBER := Series{Name: "coded BER adaptive", XLabel: "distance m", YLabel: "BER"}
	for di, dist := range distances {
		stats := all[di]
		rep.Series = append(rep.Series, summarizeCDF(
			fmt.Sprintf("bitrate CDF %.0f m", dist), "bitrate bps", stats.BitratesBPS))
		adaptPER.X = append(adaptPER.X, dist)
		adaptPER.Y = append(adaptPER.Y, stats.PER())
		adaptBER.X = append(adaptBER.X, dist)
		adaptBER.Y = append(adaptBER.Y, stats.CodedBER())
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%.0f m: median bitrate %.0f bps, adaptive PER %.1f%%",
			dist, median(stats.BitratesBPS), 100*stats.PER()))
	}
	rep.Series = append(rep.Series, adaptPER, adaptBER)

	for bi := range bands {
		per := Series{Name: "PER " + fixedBandNames[bi], XLabel: "distance m", YLabel: "PER"}
		ber := Series{Name: "coded BER " + fixedBandNames[bi], XLabel: "distance m", YLabel: "BER"}
		for di, dist := range distances {
			stats := all[len(distances)+bi*len(distances)+di]
			per.X = append(per.X, dist)
			per.Y = append(per.Y, stats.PER())
			ber.X = append(ber.X, dist)
			ber.Y = append(ber.Y, stats.CodedBER())
		}
		rep.Series = append(rep.Series, per, ber)
	}
	return rep, nil
}

// Fig12dLongRange reproduces Fig 12d: FSK beacons at 5, 10 and 20 bps
// reach 113 m at the beach; the slower rates hold BER below 1 % at
// the maximum distance.
func Fig12dLongRange(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig12d",
		Title: "Long-range FSK beacons at the beach (5/10/20 bps)",
	}
	distances := []float64{20, 40, 60, 80, 100, 113}
	rates := []int{20, 10, 5}
	bitsPerTrial := 60
	trials := 4
	if cfg.Quick {
		bitsPerTrial = 24
		trials = 2
	}
	// One job per (rate, distance) cell; payload bits derive from the
	// cell's own seed so cells are order-independent.
	type cell struct{ errs, bits int }
	jobs := len(rates) * len(distances)
	cells, err := parallelMap(cfg.Workers, jobs, func(i int) (cell, error) {
		rate := rates[i/len(distances)]
		dist := distances[i%len(distances)]
		b, err := phy.NewBeacon(rate)
		if err != nil {
			return cell{}, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(rate)*65537 + int64(dist)*257))
		var c cell
		for tr := 0; tr < trials; tr++ {
			link, err := channel.NewLink(channel.LinkParams{
				Env: channel.Beach, DistanceM: dist,
				Seed: cfg.Seed + int64(tr)*101 + int64(dist),
			})
			if err != nil {
				return cell{}, err
			}
			payload := make([]int, bitsPerTrial)
			for i := range payload {
				payload[i] = rng.Intn(2)
			}
			tx, err := b.Encode(payload)
			if err != nil {
				return cell{}, err
			}
			rx := link.Transmit(tx)
			got, _, ok := b.Decode(rx, bitsPerTrial)
			if !ok {
				c.errs += bitsPerTrial // sync loss: all bits lost
				c.bits += bitsPerTrial
				continue
			}
			for i := range payload {
				if got[i] != payload[i] {
					c.errs++
				}
			}
			c.bits += bitsPerTrial
		}
		return c, nil
	})
	if err != nil {
		return rep, err
	}
	for ri, rate := range rates {
		s := Series{Name: fmt.Sprintf("BER %d bps", rate), XLabel: "distance m", YLabel: "BER"}
		for di, dist := range distances {
			c := cells[ri*len(distances)+di]
			s.X = append(s.X, dist)
			s.Y = append(s.Y, float64(c.errs)/float64(c.bits))
		}
		rep.Series = append(rep.Series, s)
		last := s.Y[len(s.Y)-1]
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%d bps: BER %.2g at 113 m (paper: < 1%% for 5 and 10 bps)", rate, last))
	}
	return rep, nil
}

// Fig13BandVsDistance reproduces Fig 13: the selected band narrows as
// attenuation grows with distance, concentrating power into fewer
// subcarriers.
func Fig13BandVsDistance(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig13",
		Title: "Selected frequency band vs distance (lake)",
	}
	distances := []float64{5, 10, 20, 30}
	widths := Series{Name: "median band width", XLabel: "distance m", YLabel: "subcarriers"}
	begins := Series{Name: "median f_begin", XLabel: "distance m", YLabel: "Hz"}
	ends := Series{Name: "median f_end", XLabel: "distance m", YLabel: "Hz"}
	packets := cfg.Packets / 2
	if packets < 5 {
		packets = 5
	}
	var pts []point
	for di, dist := range distances {
		pts = append(pts, point{spec: linkSpec{env: channel.Lake, distanceM: dist},
			packets: packets, seed: cfg.Seed + int64(di)*23})
	}
	all, err := runPoints(cfg, pts)
	if err != nil {
		return rep, err
	}
	for di, dist := range distances {
		stats := all[di]
		var ws []float64
		for i := range stats.BandLos {
			ws = append(ws, stats.BandHis[i]-stats.BandLos[i]+1)
		}
		widths.X = append(widths.X, dist)
		widths.Y = append(widths.Y, median(ws))
		begins.X = append(begins.X, dist)
		begins.Y = append(begins.Y, 1000+50*median(stats.BandLos))
		ends.X = append(ends.X, dist)
		ends.Y = append(ends.Y, 1000+50*median(stats.BandHis))
	}
	rep.Series = []Series{widths, begins, ends}
	if len(widths.Y) >= 2 && widths.Y[len(widths.Y)-1] < widths.Y[0] {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"band narrows from %.0f to %.0f subcarriers between 5 and 30 m (matches paper)",
			widths.Y[0], widths.Y[len(widths.Y)-1]))
	}
	return rep, nil
}
