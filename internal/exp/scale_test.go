package exp

import (
	"strings"
	"testing"
)

// TestScaleValidate pins the harness's parameter taxonomy.
func TestScaleValidate(t *testing.T) {
	base := ScalePoint{PodsX: 3, PodsY: 2, PodSize: 5}
	if err := base.Validate(); err != nil {
		t.Fatalf("base point rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*ScalePoint)
		want string
	}{
		{"one column", func(p *ScalePoint) { p.PodsX = 1 }, "two pod columns"},
		{"zero rows", func(p *ScalePoint) { p.PodsY = 0 }, "pod row"},
		{"pod too big", func(p *ScalePoint) { p.PodSize = 16 }, "pod size"},
		{"too many nodes", func(p *ScalePoint) { p.PodsX, p.PodsY, p.PodSize = 100, 100, 15 }, "exceed"},
		{"bad range", func(p *ScalePoint) { p.CSRangeM = -1 }, "carrier-sense range"},
		{"no msgs", func(p *ScalePoint) { p.Msgs = -1 }, "message count"},
	}
	for _, c := range cases {
		p := base
		c.mut(&p)
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestScaleSmallHarbor runs a 30-node harbor end to end: every
// cross-harbor message must route and deliver, and the relayed paths
// must actually relay (no direct west-east hop exists at this
// geometry).
func TestScaleSmallHarbor(t *testing.T) {
	r, err := RunScalePoint(ScalePoint{
		PodsX: 3, PodsY: 2, PodSize: 5, Msgs: 3, Seed: 7, Workers: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 30 || r.Pods != 6 {
		t.Fatalf("geometry: %d nodes / %d pods, want 30 / 6", r.Nodes, r.Pods)
	}
	if r.Delivered != r.Msgs {
		t.Fatalf("delivered %d of %d (busy %d, noack %d)", r.Delivered, r.Msgs, r.BusyDrops, r.NoACKs)
	}
	// West column to east column is two pod spacings (1.8 carrier-sense
	// ranges): no single hop can cross it.
	if r.TotalHops < 2*r.Delivered {
		t.Fatalf("mean hops %.1f: cross-harbor traffic did not relay", float64(r.TotalHops)/float64(r.Delivered))
	}
	if r.Sched.Committed < r.TotalHops {
		t.Fatalf("committed %d exchanges under %d hops walked", r.Sched.Committed, r.TotalHops)
	}
}

// TestScaleDeterminismAcrossWorkers pins the harness's deterministic
// fields at ~500 nodes: a serial run and a fully parallel run must
// agree exchange for exchange (the CI race job runs this as the
// quick-scale golden).
func TestScaleDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("500-node harbor in -short mode")
	}
	pt := ScalePoint{PodsX: 7, PodsY: 7, PodSize: 10, Msgs: 3, Seed: 11}
	pt.Workers = 1
	serial, err := RunScalePoint(pt)
	if err != nil {
		t.Fatal(err)
	}
	pt.Workers = 0 // one per core
	parallel, err := RunScalePoint(pt)
	if err != nil {
		t.Fatal(err)
	}
	if sk, pk := serial.DeterministicKey(), parallel.DeterministicKey(); sk != pk {
		t.Fatalf("workers changed results:\n  serial:   %s\n  parallel: %s", sk, pk)
	}
	if serial.Delivered == 0 {
		t.Fatal("nothing delivered at 490 nodes")
	}
}
