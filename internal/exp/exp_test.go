package exp

import (
	"strings"
	"testing"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	// The per-experiment index in DESIGN.md: every figure and table
	// of the paper's evaluation must have a registered harness, plus
	// the beyond-the-paper studies (MAC goodput, capture-effect SIR).
	want := []string{
		"fig03a", "fig03b", "fig03cd", "fig04", "fig08", "fig09",
		"fig10", "fig11", "fig12", "fig12d", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19",
		"tab-preamble", "tab-runtime",
		"abl-waterfill", "abl-macpreamble", "abl-softdecision",
		"macload", "macsir", "multihop", "scale", "image", "mobility",
	}
	have := IDs()
	if len(have) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(have), len(want), have)
	}
	haveSet := map[string]bool{}
	for _, id := range have {
		haveSet[id] = true
	}
	for _, id := range want {
		if !haveSet[id] {
			t.Fatalf("experiment %s missing from registry (%v)", id, have)
		}
	}
}

func TestLookupAndRunUnknown(t *testing.T) {
	if _, ok := Lookup("fig99"); ok {
		t.Fatal("unknown experiment found")
	}
	if _, err := Run("fig99", RunConfig{}); err == nil {
		t.Fatal("Run of unknown experiment should error")
	}
}

func TestRunConfigDefaults(t *testing.T) {
	c := RunConfig{}.withDefaults()
	if c.Packets != 100 || c.Seed != 1 {
		t.Fatalf("defaults %+v", c)
	}
	q := RunConfig{Quick: true}.withDefaults()
	if q.Packets >= c.Packets {
		t.Fatal("quick mode should reduce packets")
	}
}

// TestEveryHarnessProducesARenderableReport quick-runs each harness
// and checks basic report invariants. This is the integration test
// that keeps all nineteen reproduction paths compiling AND running.
func TestEveryHarnessProducesARenderableReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment harness")
	}
	// The heaviest harnesses get their own subtest timeouts via quick
	// mode; all must succeed.
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, RunConfig{Quick: true, Packets: 8, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id {
				t.Fatalf("report ID %q, want %q", rep.ID, id)
			}
			if rep.Title == "" {
				t.Fatal("empty title")
			}
			if len(rep.Series) == 0 {
				t.Fatal("no series")
			}
			for _, s := range rep.Series {
				if len(s.X) != len(s.Y) {
					t.Fatalf("series %q: len(X)=%d len(Y)=%d", s.Name, len(s.X), len(s.Y))
				}
			}
			var sb strings.Builder
			rep.Render(&sb)
			out := sb.String()
			if !strings.Contains(out, id) || !strings.Contains(out, rep.Title) {
				t.Fatal("render missing header")
			}
		})
	}
}

func TestCDFSeries(t *testing.T) {
	s := cdfSeries("x", "v", []float64{3, 1, 2})
	if len(s.X) != 3 || s.X[0] != 1 || s.X[2] != 3 {
		t.Fatalf("cdf X %v", s.X)
	}
	if s.Y[2] != 1 {
		t.Fatalf("cdf Y %v", s.Y)
	}
	empty := summarizeCDF("e", "v", nil)
	if len(empty.X) != 0 {
		t.Fatal("empty CDF should have no points")
	}
	sum := summarizeCDF("s", "v", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if len(sum.X) != 5 {
		t.Fatalf("summary points %d", len(sum.X))
	}
	if sum.Y[2] != 0.5 {
		t.Fatal("median quantile missing")
	}
}

func TestMedianHelper(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
	if m := median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("median %g", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median %g", m)
	}
}

func TestFixedBandsMatchPaper(t *testing.T) {
	cfg := defaultModemConfig()
	bands := fixedBands(cfg)
	if len(bands) != 3 {
		t.Fatal("three baselines")
	}
	// 60, 30 and 10 subcarriers (3 kHz, 1.5 kHz, 0.5 kHz).
	if bands[0].Width() != 60 || bands[1].Width() != 30 || bands[2].Width() != 10 {
		t.Fatalf("baseline widths: %d %d %d", bands[0].Width(), bands[1].Width(), bands[2].Width())
	}
}
