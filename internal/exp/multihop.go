package exp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"aquago"
)

func init() {
	register("multihop", MultiHop)
}

// This file is the multi-hop relay harness: the paper's protocol is
// single-hop, but the routing/relay subsystem (route.go, relay.go)
// makes the scaling question measurable — what do relaying and
// store-and-forward bulk transfer cost in goodput and end-to-end
// latency as hop count grows, and how does a relay topology carry
// offered load? The harness reuses the PR 4 substrate: Poisson
// arrival schedules from loadgen.go, and the same deterministic
// conflict-free batch driver, widened from single exchanges to whole
// relay paths.

// maxBulkBytes bounds one bulk transfer so a misconfigured CLI cannot
// queue an unbounded packet train.
const maxBulkBytes = 4096

// MultiHopPoint parameterizes one bulk relay transfer on a line of
// Hops+1 nodes, SpacingM apart, with carrier sense bounded to
// CSRangeM so only adjacent nodes are audible and the route must
// relay (CSRangeM 0 derives a just-past-adjacent default).
type MultiHopPoint struct {
	// Hops is the relay path length (nodes = Hops + 1).
	Hops int
	// SpacingM separates adjacent line nodes (default 25 m).
	SpacingM float64
	// CSRangeM bounds audibility; 0 derives 1.2 * SpacingM so exactly
	// the adjacent nodes hear each other.
	CSRangeM float64
	// PayloadBytes sizes the bulk payload (ceil(n/2) packets).
	PayloadBytes int
	// Mode selects envelope or waveform contention.
	Mode aquago.ContentionMode
	// Policy selects the routing policy (MinHop default).
	Policy aquago.RoutingPolicy
	// Seed drives channels, MAC backoffs and the payload bytes.
	Seed int64
	// Retries is each node's extra attempt budget (< 0 = network
	// default).
	Retries int
	// Env is the deployment site (zero value = Bridge).
	Env aquago.Environment
	// Trace, when non-nil, observes every hop exchange's stage events
	// (cmd/aquanet -relay prints per-hop progress through it). It does
	// not influence results.
	Trace aquago.Trace
	// Pipelined runs the transfer through the async transmit
	// subsystem (SendBulkViaPipelined): every relay store-and-forwards
	// from its own transmit queue, so packets overlap wherever hops do
	// not interfere.
	Pipelined bool
	// QueueCap sizes each node's transmit queue in pipelined mode
	// (required, at least 1 — aquago.DefaultTxQueueCap is the usual
	// choice); setting it without Pipelined is an error.
	QueueCap int
	// Persist, in (0, 1], switches the MAC to p-persistent slotted
	// contention with that transmit probability (0 keeps the paper's
	// accumulating random backoff).
	Persist float64
	// AdaptiveBackoff scales each node's backoff quantum to its last
	// committed exchange's actual airtime instead of the full-band
	// worst case.
	AdaptiveBackoff bool
	// Workers sizes the network's scheduler pool (results are
	// worker-count independent).
	Workers int
}

// withDefaults resolves the derived knobs.
func (p MultiHopPoint) withDefaults() MultiHopPoint {
	if p.SpacingM == 0 {
		p.SpacingM = 25
	}
	if p.CSRangeM == 0 {
		p.CSRangeM = 1.2 * p.SpacingM
	}
	return p
}

// Validate rejects parameter combinations that cannot run;
// cmd/aquanet -relay surfaces these to users.
func (p MultiHopPoint) Validate() error {
	p = p.withDefaults()
	switch {
	case p.Hops < 1:
		return fmt.Errorf("multihop: need at least one hop, got %d", p.Hops)
	case p.Hops > 59:
		return fmt.Errorf("multihop: %d hops need %d nodes, over the 60-device limit", p.Hops, p.Hops+1)
	case math.IsNaN(p.SpacingM) || math.IsInf(p.SpacingM, 0) || p.SpacingM <= 0:
		return fmt.Errorf("multihop: node spacing %v m is not a usable distance", p.SpacingM)
	case math.IsNaN(p.CSRangeM) || math.IsInf(p.CSRangeM, 0) || p.CSRangeM < 0:
		return fmt.Errorf("multihop: carrier-sense range %v m is not a usable distance", p.CSRangeM)
	case p.CSRangeM < p.SpacingM:
		return fmt.Errorf("multihop: carrier-sense range %g m below the %g m spacing leaves adjacent nodes deaf — no route exists", p.CSRangeM, p.SpacingM)
	case p.PayloadBytes < 1:
		return fmt.Errorf("multihop: need a payload, got %d bytes", p.PayloadBytes)
	case p.PayloadBytes > maxBulkBytes:
		return fmt.Errorf("multihop: %d payload bytes exceed the %d cap", p.PayloadBytes, maxBulkBytes)
	case p.Mode != aquago.EnvelopeContention && p.Mode != aquago.WaveformContention:
		return fmt.Errorf("multihop: unknown contention mode %d", p.Mode)
	case p.Policy != aquago.MinHop && p.Policy != aquago.MinETX:
		return fmt.Errorf("multihop: unknown routing policy %d", int(p.Policy))
	case math.IsNaN(p.Persist) || p.Persist < 0 || p.Persist > 1:
		return fmt.Errorf("multihop: transmit persistence %v outside (0, 1]", p.Persist)
	case p.Pipelined && p.QueueCap < 1:
		return fmt.Errorf("multihop: pipelined mode needs a transmit queue capacity of at least 1, got %d", p.QueueCap)
	case !p.Pipelined && p.QueueCap != 0:
		return fmt.Errorf("multihop: queue capacity %d set without pipelined mode", p.QueueCap)
	}
	return nil
}

// MultiHopResult reports one bulk relay transfer. Every field is a
// deterministic function of the point (relay hops walk sequentially,
// so no scheduler interleaving can leak in).
type MultiHopResult struct {
	Hops, Packets, DeliveredPackets int
	// Attempts totals physical transmissions across packets and hops
	// (Packets * Hops when nothing retried).
	Attempts int
	// LatencyS is arrival-to-last-sample end-to-end time of the whole
	// payload; GoodputBPS the delivered payload bits over it.
	LatencyS, GoodputBPS float64
}

// RunMultiHopPoint routes a bulk payload down a relay line and
// measures it.
func RunMultiHopPoint(p MultiHopPoint) (MultiHopResult, error) {
	if err := p.Validate(); err != nil {
		return MultiHopResult{}, err
	}
	p = p.withDefaults()
	env := p.Env
	if env.Name == "" {
		env = aquago.Bridge
	}
	opts := []aquago.NetworkOption{
		aquago.WithNetworkSeed(p.Seed),
		aquago.WithContentionMode(p.Mode),
		aquago.WithCSRange(p.CSRangeM),
		aquago.WithRouting(p.Policy),
		aquago.WithNetworkWorkers(p.Workers),
	}
	if p.Retries >= 0 {
		opts = append(opts, aquago.WithNetworkRetries(p.Retries))
	}
	if p.Trace != nil {
		opts = append(opts, aquago.WithNetworkTrace(p.Trace))
	}
	if p.Pipelined {
		opts = append(opts, aquago.WithTxQueueCapacity(p.QueueCap))
	}
	if p.Persist > 0 {
		opts = append(opts, aquago.WithPPersistence(p.Persist))
	}
	if p.AdaptiveBackoff {
		opts = append(opts, aquago.WithAdaptiveBackoff())
	}
	net, err := aquago.NewNetwork(env, opts...)
	if err != nil {
		return MultiHopResult{}, err
	}
	nodes := make([]*aquago.Node, p.Hops+1)
	for i := range nodes {
		nd, err := net.Join(aquago.DeviceID(i),
			aquago.Position{X: float64(i) * p.SpacingM, Z: 1},
			aquago.WithNodeClock(0))
		if err != nil {
			return MultiHopResult{}, err
		}
		nodes[i] = nd
	}
	payload := make([]byte, p.PayloadBytes)
	rand.New(rand.NewSource(p.Seed*9241 + 5)).Read(payload)

	send := nodes[0].SendBulk
	if p.Pipelined {
		send = nodes[0].SendBulkPipelined
	}
	res, err := send(context.Background(), aquago.DeviceID(p.Hops), payload)
	out := MultiHopResult{
		Hops:             len(res.Path) - 1,
		Packets:          res.Packets,
		DeliveredPackets: res.DeliveredPackets,
		Attempts:         res.Attempts,
	}
	if err != nil {
		return out, fmt.Errorf("multihop: %d-hop bulk transfer: %w", p.Hops, err)
	}
	out.LatencyS = res.EndS - res.StartS
	if out.LatencyS > 0 {
		out.GoodputBPS = float64(8*res.DeliveredBytes) / out.LatencyS
	}
	return out, nil
}

// MultiHopLoadPoint parameterizes offered load over a relay topology:
// every node offers Poisson single-packet messages to seeded random
// destinations, each delivered over its routed relay path.
type MultiHopLoadPoint struct {
	// Topo picks the geometry: "line" (A nodes in a row), "grid"
	// (A x B lattice), or "pods" (A pods of B nodes, podGapM apart —
	// mostly-direct routes, but several independent collision domains
	// for the batch driver to run concurrently).
	Topo string
	A, B int
	// SpacingM separates adjacent nodes (line, grid).
	SpacingM float64
	// CSRangeM bounds audibility; 0 derives 1.2 * SpacingM (line,
	// grid) or 30 m (pods).
	CSRangeM float64
	// RateHz is each node's Poisson message rate; DurationS the
	// arrival window.
	RateHz    float64
	DurationS float64
	// Mode selects envelope or waveform contention.
	Mode aquago.ContentionMode
	// Seed drives arrivals, destinations, channels and MAC backoffs.
	Seed int64
	// Retries is each node's extra attempt budget (< 0 = default).
	Retries int
	// Workers sizes the network's scheduler pool (results are
	// worker-count independent).
	Workers int
	// Env is the deployment site (zero value = Bridge).
	Env aquago.Environment
}

// topoPositions lays the load topologies out.
func (p MultiHopLoadPoint) topoPositions() ([]aquago.Position, error) {
	switch p.Topo {
	case "line":
		out := make([]aquago.Position, p.A)
		for i := range out {
			out[i] = aquago.Position{X: float64(i) * p.SpacingM, Z: 1}
		}
		return out, nil
	case "grid":
		out := make([]aquago.Position, 0, p.A*p.B)
		for r := 0; r < p.A; r++ {
			for c := 0; c < p.B; c++ {
				out = append(out, aquago.Position{
					X: float64(c) * p.SpacingM,
					Y: float64(r) * p.SpacingM,
					Z: 1,
				})
			}
		}
		return out, nil
	case "pods":
		return podPositions(p.A, p.B), nil
	}
	return nil, fmt.Errorf("multihop: unknown topology %q (line, grid, pods)", p.Topo)
}

// withDefaults resolves derived knobs.
func (p MultiHopLoadPoint) withDefaults() MultiHopLoadPoint {
	if p.SpacingM == 0 {
		p.SpacingM = 25
	}
	if p.CSRangeM == 0 {
		if p.Topo == "pods" {
			p.CSRangeM = 30
		} else {
			p.CSRangeM = 1.2 * p.SpacingM
		}
	}
	return p
}

// Validate rejects unusable load points.
func (p MultiHopLoadPoint) Validate() error {
	q := p.withDefaults()
	nodes := q.A
	switch q.Topo {
	case "grid", "pods":
		nodes = q.A * q.B
	}
	switch {
	case q.Topo != "line" && q.Topo != "grid" && q.Topo != "pods":
		return fmt.Errorf("multihop: unknown topology %q (line, grid, pods)", q.Topo)
	case q.Topo == "line" && q.A < 2, q.Topo != "line" && (q.A < 1 || q.B < 2):
		return fmt.Errorf("multihop: topology %q needs at least two reachable nodes (A=%d B=%d)", q.Topo, q.A, q.B)
	case nodes > 60:
		return fmt.Errorf("multihop: %d nodes exceed the 60-device network limit", nodes)
	case math.IsNaN(q.SpacingM) || math.IsInf(q.SpacingM, 0) || q.SpacingM <= 0:
		return fmt.Errorf("multihop: node spacing %v m is not a usable distance", q.SpacingM)
	case math.IsNaN(q.RateHz) || math.IsInf(q.RateHz, 0) || q.RateHz <= 0:
		return fmt.Errorf("multihop: offered rate %v msg/s is not usable", q.RateHz)
	case math.IsNaN(q.DurationS) || math.IsInf(q.DurationS, 0) || q.DurationS <= 0:
		return fmt.Errorf("multihop: duration %v s is not usable", q.DurationS)
	case float64(nodes)*q.RateHz*q.DurationS > maxOfferedMsgs:
		return fmt.Errorf("multihop: %g expected messages exceed the %d cap",
			float64(nodes)*q.RateHz*q.DurationS, maxOfferedMsgs)
	case q.Mode != aquago.EnvelopeContention && q.Mode != aquago.WaveformContention:
		return fmt.Errorf("multihop: unknown contention mode %d", q.Mode)
	}
	return nil
}

// MultiHopLoadResult reports one relayed offered-load measurement.
// Everything except Sched.MaxConcurrent/Workers is deterministic.
type MultiHopLoadResult struct {
	Nodes int
	// OfferedMsgs counts arrivals; DeliveredMsgs the ones whose
	// payload walked their whole relay path; BusyDrops transfers that
	// died on a hop's MAC deadline; NoACKs transfers that died with a
	// hop's attempts exhausted; NoRoutes arrivals whose endpoints the
	// audibility graph does not connect (counted, not errored — a
	// partitioned pair is a property of the topology, not a failure of
	// the driver).
	OfferedMsgs, DeliveredMsgs, BusyDrops, NoACKs, NoRoutes int
	// TotalHops sums the delivered messages' path hops (TotalHops /
	// DeliveredMsgs = mean route length).
	TotalHops int
	// OfferedBPS is offered load over the arrival window; GoodputBPS
	// delivered end-to-end bits over the makespan.
	OfferedBPS, GoodputBPS float64
	// Latency percentiles over delivered messages, arrival to the
	// payload's last sample at the final destination.
	LatencyP50S, LatencyP90S, LatencyP99S float64
	// MakespanS is when the last relayed delivery completed.
	MakespanS float64
	// ConflictWidth is the widest batch of mutually non-interfering
	// relay paths the driver handed the scheduler at once.
	ConflictWidth int
	// Sched snapshots the network's scheduler counters.
	Sched aquago.SchedulerStats
}

// relayMsg is one scheduled relayed message with its resolved path
// (and the path pre-flattened to node indices for conflict checks —
// device IDs equal join order here).
type relayMsg struct {
	arrival
	dst           int
	path          []aquago.DeviceID
	pathIdx       []int
	first, second uint8
}

// pathNodes flattens a device path back to node indices.
func pathNodes(path []aquago.DeviceID) []int {
	out := make([]int, len(path))
	for i, id := range path {
		out[i] = int(id)
	}
	return out
}

// pathsConflict widens msgsConflict from single exchanges to whole
// relay paths: two transfers conflict when any node appears on both
// paths, or (finite carrier-sense range) any cross-path node distance
// falls within it. The rule must over-approximate sched.go's per-hop
// rule for every hop pair of the two walks — and it does, because
// every hop's endpoints are path nodes.
func pathsConflict(a, b []int, pos []aquago.Position, csRangeM float64) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
			if csRangeM <= 0 || pos[x].DistanceTo(pos[y]) <= csRangeM {
				return true
			}
		}
	}
	return false
}

// RunMultiHopLoadPoint drives Poisson offered load over a relay
// topology: the driver replays arrivals in schedule order, resolving
// each message's route up front, and hands the network the longest
// leading run of transfers whose *whole paths* are mutually
// non-interfering as one concurrent batch — the macload batch driver
// widened to path footprints, with the same determinism argument.
func RunMultiHopLoadPoint(p MultiHopLoadPoint) (MultiHopLoadResult, error) {
	if err := p.Validate(); err != nil {
		return MultiHopLoadResult{}, err
	}
	p = p.withDefaults()
	env := p.Env
	if env.Name == "" {
		env = aquago.Bridge
	}
	positions, err := p.topoPositions()
	if err != nil {
		return MultiHopLoadResult{}, err
	}
	opts := []aquago.NetworkOption{
		aquago.WithNetworkSeed(p.Seed),
		aquago.WithContentionMode(p.Mode),
		aquago.WithCSRange(p.CSRangeM),
		aquago.WithNetworkWorkers(p.Workers),
	}
	if p.Retries >= 0 {
		opts = append(opts, aquago.WithNetworkRetries(p.Retries))
	}
	net, err := aquago.NewNetwork(env, opts...)
	if err != nil {
		return MultiHopLoadResult{}, err
	}
	nodes := make([]*aquago.Node, len(positions))
	for i, pos := range positions {
		nd, err := net.Join(aquago.DeviceID(i), pos, aquago.WithNodeClock(0))
		if err != nil {
			return MultiHopLoadResult{}, err
		}
		nodes[i] = nd
	}

	// Schedule: merged Poisson arrivals, destinations drawn uniformly
	// among each source's *routable* peers (a pod topology partitions
	// the audibility graph — offering a message across a partition
	// would measure the topology, not the relay), routes resolved up
	// front so batching sees full path footprints.
	reachable := make([][]int, len(nodes))
	for src := range nodes {
		for dst := range nodes {
			if src == dst {
				continue
			}
			_, err := net.Route(aquago.DeviceID(src), aquago.DeviceID(dst))
			switch {
			case err == nil:
				reachable[src] = append(reachable[src], dst)
			case errors.Is(err, aquago.ErrNoRoute):
			default:
				return MultiHopLoadResult{}, err
			}
		}
	}
	perNode := poissonArrivals(len(nodes), p.RateHz, p.DurationS, p.Seed)
	merged := mergeArrivals(perNode)
	numMsgs := len(aquago.Codebook())
	rng := rand.New(rand.NewSource(p.Seed*7907 + 3))
	res := MultiHopLoadResult{
		Nodes:       len(nodes),
		OfferedMsgs: len(merged),
		OfferedBPS:  float64(len(merged)*messageBits) / p.DurationS,
		MakespanS:   p.DurationS,
	}
	var schedule []relayMsg
	for _, a := range merged {
		m := relayMsg{
			arrival: a,
			first:   uint8(rng.Intn(numMsgs)),
			second:  uint8(rng.Intn(numMsgs)),
		}
		reach := reachable[a.node]
		if len(reach) == 0 {
			res.NoRoutes++
			continue
		}
		m.dst = reach[rng.Intn(len(reach))]
		path, err := net.Route(aquago.DeviceID(a.node), aquago.DeviceID(m.dst))
		if err != nil {
			return MultiHopLoadResult{}, err
		}
		m.path = path
		m.pathIdx = pathNodes(path)
		schedule = append(schedule, m)
	}

	var accMu sync.Mutex
	var latencies []float64
	var firstErr error
	makespan := p.DurationS
	ctx := context.Background()
	runOne := func(m relayMsg) {
		nodes[m.node].AdvanceClock(m.atS)
		rres, err := net.SendVia(ctx, m.path, m.first, m.second)
		accMu.Lock()
		defer accMu.Unlock()
		switch {
		case err == nil:
			res.DeliveredMsgs++
			res.TotalHops += len(m.path) - 1
			latencies = append(latencies, rres.DeliveredS-m.atS)
			if rres.DeliveredS > makespan {
				makespan = rres.DeliveredS
			}
		case errors.Is(err, aquago.ErrChannelBusy):
			res.BusyDrops++
		case errors.Is(err, aquago.ErrNoACK):
			res.NoACKs++
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("multihop: %d -> %d at %.2fs: %w", m.node, m.dst, m.atS, err)
			}
		}
	}

	for i := 0; i < len(schedule); {
		// Longest leading run of pairwise non-interfering paths:
		// strict prefix batching preserves arrival order globally.
		j := i + 1
	grow:
		for ; j < len(schedule); j++ {
			for k := i; k < j; k++ {
				if pathsConflict(schedule[k].pathIdx, schedule[j].pathIdx, positions, p.CSRangeM) {
					break grow
				}
			}
		}
		if w := j - i; w > res.ConflictWidth {
			res.ConflictWidth = w
		}
		var wg sync.WaitGroup
		for _, m := range schedule[i:j] {
			wg.Add(1)
			go func(m relayMsg) {
				defer wg.Done()
				runOne(m)
			}(m)
		}
		wg.Wait()
		i = j
		if firstErr != nil {
			return MultiHopLoadResult{}, firstErr
		}
	}

	res.MakespanS = makespan
	res.GoodputBPS = float64(res.DeliveredMsgs*messageBits) / res.MakespanS
	res.Sched = net.SchedulerStats()
	res.LatencyP50S = percentile(latencies, 0.50)
	res.LatencyP90S = percentile(latencies, 0.90)
	res.LatencyP99S = percentile(latencies, 0.99)
	return res, nil
}

// multiHopSweep parameterizes the harness; the golden test runs a
// reduced copy directly.
type multiHopSweep struct {
	// envHops / waveHops list the bulk-transfer hop counts per mode.
	envHops, waveHops []int
	// payloadBytes sizes each bulk transfer.
	payloadBytes int
	// utils are offered channel-utilization targets for the load axis.
	utils []float64
	// loadTopos names the load topologies to sweep.
	loadTopos []MultiHopLoadPoint
	// targetMsgs sizes each load point's arrival window.
	targetMsgs int
	// pipeHops lists hop counts for the pipelined-bulk series
	// (envelope mode, async transmit queues); empty skips it.
	pipeHops []int
	// pipePersist / pipeAdaptive configure the pipelined series' MAC:
	// p-persistent slotted contention and adaptive backoff quanta.
	pipePersist  float64
	pipeAdaptive bool
}

func defaultMultiHopSweep(quick bool) multiHopSweep {
	line := MultiHopLoadPoint{Topo: "line", A: 5}
	grid := MultiHopLoadPoint{Topo: "grid", A: 3, B: 3}
	pods := MultiHopLoadPoint{Topo: "pods", A: 3, B: 4}
	if quick {
		return multiHopSweep{
			envHops:      []int{1, 2, 3},
			waveHops:     []int{2, 3},
			payloadBytes: 8,
			utils:        []float64{0.3, 0.9},
			loadTopos:    []MultiHopLoadPoint{{Topo: "line", A: 4}, grid, pods},
			targetMsgs:   10,
			pipeHops:     []int{1, 2, 3},
			pipePersist:  0.7,
			pipeAdaptive: true,
		}
	}
	return multiHopSweep{
		envHops:      []int{1, 2, 3, 4, 5},
		waveHops:     []int{1, 2, 3},
		payloadBytes: 24,
		utils:        logspace(0.1, 1.5, 8),
		loadTopos:    []MultiHopLoadPoint{line, grid, pods},
		targetMsgs:   24,
		pipeHops:     []int{1, 2, 3, 4, 5},
		pipePersist:  0.7,
		pipeAdaptive: true,
	}
}

// MultiHop is the multi-hop relay harness: bulk-transfer goodput and
// end-to-end latency versus hop count (per contention mode), and
// relayed goodput versus offered load over line, grid and pod
// topologies on the batch driver.
func MultiHop(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	return multiHopReport(cfg, defaultMultiHopSweep(cfg.Quick))
}

// multiHopReport runs the sweep on the experiment worker pool.
func multiHopReport(cfg RunConfig, sw multiHopSweep) (Report, error) {
	rep := Report{
		ID:    "multihop",
		Title: "Multi-hop relay: bulk goodput/latency vs hop count, relayed goodput vs offered load",
	}
	modeName := map[aquago.ContentionMode]string{
		aquago.EnvelopeContention: "envelope",
		aquago.WaveformContention: "waveform",
	}

	// Axis 1: bulk transfer vs hop count.
	type hopCoord struct {
		mode aquago.ContentionMode
		hops int
	}
	var hopCoords []hopCoord
	for _, h := range sw.envHops {
		hopCoords = append(hopCoords, hopCoord{aquago.EnvelopeContention, h})
	}
	for _, h := range sw.waveHops {
		hopCoords = append(hopCoords, hopCoord{aquago.WaveformContention, h})
	}
	hopResults, err := parallelMap(cfg.Workers, len(hopCoords), func(i int) (MultiHopResult, error) {
		c := hopCoords[i]
		return RunMultiHopPoint(MultiHopPoint{
			Hops:         c.hops,
			PayloadBytes: sw.payloadBytes,
			Mode:         c.mode,
			Seed:         cfg.Seed + int64(i)*3571,
			Retries:      -1,
		})
	})
	if err != nil {
		return rep, err
	}
	for _, mode := range []aquago.ContentionMode{aquago.EnvelopeContention, aquago.WaveformContention} {
		good := Series{Name: fmt.Sprintf("bulk goodput vs hops (%s)", modeName[mode]),
			XLabel: "hops", YLabel: "goodput bps"}
		lat := Series{Name: fmt.Sprintf("bulk e2e latency vs hops (%s)", modeName[mode]),
			XLabel: "hops", YLabel: "latency s"}
		for i, c := range hopCoords {
			if c.mode != mode {
				continue
			}
			r := hopResults[i]
			good.X = append(good.X, float64(c.hops))
			good.Y = append(good.Y, r.GoodputBPS)
			lat.X = append(lat.X, float64(c.hops))
			lat.Y = append(lat.Y, r.LatencyS)
		}
		if len(good.X) == 0 {
			continue
		}
		rep.Series = append(rep.Series, good, lat)
		first, last := 0, len(good.X)-1
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s bulk (%d B): %.0f hop(s) %.1f bps / %.1f s -> %.0f hops %.1f bps / %.1f s (store-and-forward divides goodput by path length)",
			modeName[mode], sw.payloadBytes, good.X[first], good.Y[first], lat.Y[first],
			good.X[last], good.Y[last], lat.Y[last]))
	}

	// Axis 1b: the same envelope bulk transfers through the async
	// transmit subsystem — pipelined store-and-forward from per-relay
	// queues, the p-persistent slotted MAC and adaptive backoff quanta.
	if len(sw.pipeHops) > 0 {
		pipeResults, err := parallelMap(cfg.Workers, len(sw.pipeHops), func(i int) (MultiHopResult, error) {
			return RunMultiHopPoint(MultiHopPoint{
				Hops:         sw.pipeHops[i],
				PayloadBytes: sw.payloadBytes,
				Mode:         aquago.EnvelopeContention,
				// Seed matches the sequential envelope point at the same
				// index, so the two series differ only in machinery.
				Seed:            cfg.Seed + int64(i)*3571,
				Retries:         -1,
				Pipelined:       true,
				QueueCap:        aquago.DefaultTxQueueCap,
				Persist:         sw.pipePersist,
				AdaptiveBackoff: sw.pipeAdaptive,
			})
		})
		if err != nil {
			return rep, err
		}
		good := Series{Name: "pipelined bulk goodput vs hops (envelope)",
			XLabel: "hops", YLabel: "goodput bps"}
		lat := Series{Name: "pipelined bulk e2e latency vs hops (envelope)",
			XLabel: "hops", YLabel: "latency s"}
		for i, h := range sw.pipeHops {
			good.X = append(good.X, float64(h))
			good.Y = append(good.Y, pipeResults[i].GoodputBPS)
			lat.X = append(lat.X, float64(h))
			lat.Y = append(lat.Y, pipeResults[i].LatencyS)
		}
		rep.Series = append(rep.Series, good, lat)
		// Headline the deepest hop count both series cover.
		seq := map[int]float64{}
		for i, c := range hopCoords {
			if c.mode == aquago.EnvelopeContention {
				seq[c.hops] = hopResults[i].GoodputBPS
			}
		}
		for i := len(sw.pipeHops) - 1; i >= 0; i-- {
			h := sw.pipeHops[i]
			if s, ok := seq[h]; ok {
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"pipelined envelope bulk (%d B, persist %.2g, adaptive quanta): %d hops %.1f bps vs %.1f bps sequential",
					sw.payloadBytes, sw.pipePersist, h, pipeResults[i].GoodputBPS, s))
				break
			}
		}
	}

	// Axis 2: relayed offered load per topology.
	airtime, err := fullBandAirtime()
	if err != nil {
		return rep, err
	}
	type loadCoord struct {
		topo int
		u    float64
	}
	var loadCoords []loadCoord
	for t := range sw.loadTopos {
		for _, u := range sw.utils {
			loadCoords = append(loadCoords, loadCoord{t, u})
		}
	}
	loadResults, err := parallelMap(cfg.Workers, len(loadCoords), func(i int) (MultiHopLoadResult, error) {
		c := loadCoords[i]
		pt := sw.loadTopos[c.topo].withDefaults()
		nodes := pt.A
		if pt.Topo != "line" {
			nodes = pt.A * pt.B
		}
		rate := c.u / (airtime * float64(nodes))
		pt.RateHz = rate
		pt.DurationS = float64(sw.targetMsgs) / (rate * float64(nodes))
		pt.Mode = aquago.EnvelopeContention
		pt.Seed = cfg.Seed + int64(i)*4391
		pt.Retries = -1
		return RunMultiHopLoadPoint(pt)
	})
	if err != nil {
		return rep, err
	}
	for t, topo := range sw.loadTopos {
		label := fmt.Sprintf("%s %dx%d", topo.Topo, topo.A, topo.B)
		if topo.Topo == "line" {
			label = fmt.Sprintf("line %d", topo.A)
		}
		good := Series{Name: "relayed goodput vs offered load (" + label + ")",
			XLabel: "offered bps", YLabel: "goodput bps"}
		lat := Series{Name: "relayed latency p90 (" + label + ")",
			XLabel: "offered bps", YLabel: "p90 latency s"}
		var last MultiHopLoadResult
		for i, c := range loadCoords {
			if c.topo != t {
				continue
			}
			r := loadResults[i]
			good.X = append(good.X, r.OfferedBPS)
			good.Y = append(good.Y, r.GoodputBPS)
			lat.X = append(lat.X, r.OfferedBPS)
			lat.Y = append(lat.Y, r.LatencyP90S)
			last = r
		}
		rep.Series = append(rep.Series, good, lat)
		meanHops := 0.0
		if last.DeliveredMsgs > 0 {
			meanHops = float64(last.TotalHops) / float64(last.DeliveredMsgs)
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: top load %.1f bps offered -> %.1f bps delivered end-to-end (%d/%d msgs, mean %.1f hops, %d busy-drops, %d no-ACK, p90 %.1f s, conflict width %d)",
			label, last.OfferedBPS, last.GoodputBPS, last.DeliveredMsgs, last.OfferedMsgs,
			meanHops, last.BusyDrops, last.NoACKs, last.LatencyP90S, last.ConflictWidth))
	}
	return rep, nil
}
