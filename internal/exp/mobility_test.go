package exp

import (
	"math"
	"testing"

	"aquago"
)

func TestMobilityValidate(t *testing.T) {
	good := MobilityPoint{Hops: 3, PayloadBytes: 8, DriftSpeedMS: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good point rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*MobilityPoint)
	}{
		{"one hop", func(p *MobilityPoint) { p.Hops = 1 }},
		{"too many nodes", func(p *MobilityPoint) { p.Hops = 60 }},
		{"negative spacing", func(p *MobilityPoint) { p.SpacingM = -1 }},
		{"deaf line", func(p *MobilityPoint) { p.CSRangeM = 10; p.SpacingM = 25 }},
		{"no payload", func(p *MobilityPoint) { p.PayloadBytes = 0 }},
		{"payload over cap", func(p *MobilityPoint) { p.PayloadBytes = maxBulkBytes + 1 }},
		{"sub-packet chunk", func(p *MobilityPoint) { p.ChunkBytes = 1 }},
		{"NaN drift", func(p *MobilityPoint) { p.DriftSpeedMS = math.NaN() }},
		{"negative drift", func(p *MobilityPoint) { p.DriftSpeedMS = -0.5 }},
		{"boat drift", func(p *MobilityPoint) { p.DriftSpeedMS = maxDriftSpeedMS + 1 }},
		{"pipelined without queue", func(p *MobilityPoint) { p.Pipelined = true }},
		{"queue without pipelined", func(p *MobilityPoint) { p.QueueCap = 4 }},
	}
	for _, tc := range bad {
		p := good
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, p)
		}
	}
}

// TestMobilityDriftingDiverReroutes pins the harness's core behavior:
// a fast drift delivers the whole payload anyway, repairs the route
// at least once, and ends on a shorter path than it started
// (everything is deterministic, so these are exact expectations, not
// tendencies).
func TestMobilityDriftingDiverReroutes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk relay transfer in -short mode")
	}
	pt := MobilityPoint{
		Hops:         3,
		PayloadBytes: 24,
		ChunkBytes:   4,
		DriftSpeedMS: 2,
		Seed:         3,
		Retries:      -1,
	}
	res, err := RunMobilityPoint(pt)
	if err != nil {
		t.Fatalf("drifting transfer failed: %v (result %+v)", err, res)
	}
	if res.DeliveredBytes != pt.PayloadBytes {
		t.Errorf("delivered %d of %d bytes", res.DeliveredBytes, pt.PayloadBytes)
	}
	if res.Epochs == 0 {
		t.Error("no position epochs applied — the diver never moved")
	}
	if res.Reroutes == 0 {
		t.Error("no route repairs at 2 m/s over a 3-hop line")
	}
	if res.FinalHops >= res.InitialHops {
		t.Errorf("route did not shorten: %d -> %d hops", res.InitialHops, res.FinalHops)
	}

	// The static baseline never moves, never repairs.
	pt.DriftSpeedMS = 0
	static, err := RunMobilityPoint(pt)
	if err != nil {
		t.Fatalf("static transfer failed: %v", err)
	}
	if static.Epochs != 0 || static.Reroutes != 0 {
		t.Errorf("static run moved: %d epochs, %d reroutes", static.Epochs, static.Reroutes)
	}
	if static.DeliveredBytes != pt.PayloadBytes {
		t.Errorf("static run delivered %d of %d bytes", static.DeliveredBytes, pt.PayloadBytes)
	}
}

// TestMobilityDeterminismAcrossWorkers pins the drifting-diver
// transfer — motion epochs, route repairs and all — as worker-count
// invariant, for both the sequential and the pipelined relay (the CI
// race job runs this under -race).
func TestMobilityDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated relay transfers in -short mode")
	}
	for _, pipelined := range []bool{false, true} {
		pt := MobilityPoint{
			Hops:         3,
			PayloadBytes: 16,
			ChunkBytes:   4,
			DriftSpeedMS: 2,
			Seed:         9,
			Retries:      -1,
			Pipelined:    pipelined,
		}
		if pipelined {
			pt.QueueCap = aquago.DefaultTxQueueCap
		}
		pt.Workers = 1
		serial, err := RunMobilityPoint(pt)
		if err != nil {
			t.Fatalf("pipelined=%v serial: %v", pipelined, err)
		}
		pt.Workers = 0 // one per core
		parallel, err := RunMobilityPoint(pt)
		if err != nil {
			t.Fatalf("pipelined=%v parallel: %v", pipelined, err)
		}
		if sk, pk := serial.DeterministicKey(), parallel.DeterministicKey(); sk != pk {
			t.Fatalf("pipelined=%v: workers changed results:\n  serial:   %s\n  parallel: %s",
				pipelined, sk, pk)
		}
		if serial.DeliveredBytes != pt.PayloadBytes {
			t.Fatalf("pipelined=%v: delivered %d of %d bytes", pipelined,
				serial.DeliveredBytes, pt.PayloadBytes)
		}
	}
}
