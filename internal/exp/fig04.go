package exp

import (
	"fmt"

	"aquago/internal/channel"
	"aquago/internal/dsp"
)

func init() {
	register("fig04", Fig04AmbientNoise)
}

// Fig04AmbientNoise reproduces Fig 4: (a) ambient noise spectra as
// heard by different devices at one location, normalized per plot;
// (b) noise levels across locations on one device, showing the ~9 dB
// spread the paper measures between 0-6 kHz.
func Fig04AmbientNoise(cfg RunConfig) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		ID:    "fig04",
		Title: "Underwater ambient noise across devices and locations (5 s captures)",
	}
	const fs = 48000
	seconds := 5
	if cfg.Quick {
		seconds = 2
	}

	noiseSpectrum := func(env channel.Environment, dev channel.Device, seed int64) Series {
		gen := channel.NewNoiseGen(env, fs, seed)
		raw := gen.Generate(seconds * fs)
		// The device's microphone colors what it records.
		heard := dev.RxFilter(fs).Filter(raw)
		sp := dsp.WelchPSD(heard, 2048, fs, dsp.Hann)
		db := sp.PowerDB()
		var xs, ys []float64
		for i, f := range sp.Freqs {
			if f > 6000 {
				break
			}
			xs = append(xs, f)
			ys = append(ys, db[i])
		}
		step := len(xs)/24 + 1
		var dx, dy []float64
		for i := 0; i < len(xs); i += step {
			dx = append(dx, xs[i])
			dy = append(dy, ys[i])
		}
		return Series{XLabel: "freq Hz", YLabel: "norm power dB", X: dx, Y: dy}
	}

	// (a) Devices at the lake; (b) locations on a Galaxy S9 — one job
	// per spectrum, all independent.
	devices := channel.Devices()
	environments := channel.Environments()
	series, err := parallelMap(cfg.Workers, len(devices)+len(environments), func(i int) (Series, error) {
		if i < len(devices) {
			s := noiseSpectrum(channel.Lake, devices[i], cfg.Seed)
			s.Name = "device " + devices[i].Name
			return s, nil
		}
		ei := i - len(devices)
		s := noiseSpectrum(environments[ei], channel.GalaxyS9, cfg.Seed+int64(ei))
		s.Name = "location " + environments[ei].Name
		return s, nil
	})
	if err != nil {
		return rep, err
	}
	rep.Series = append(rep.Series, series...)

	// In-band noise RMS spread across locations.
	var lo, hi float64
	var loName, hiName string
	for i, env := range environments {
		gen := channel.NewNoiseGen(env, fs, cfg.Seed+int64(i))
		rms := gen.InBandRMS()
		if loName == "" || rms < lo {
			lo, loName = rms, env.Name
		}
		if hiName == "" || rms > hi {
			hi, hiName = rms, env.Name
		}
	}
	spread := dsp.AmpDB(hi / lo)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("noise level spread across locations: %.1f dB (%s quietest, %s loudest; paper: 9 dB)",
			spread, loName, hiName),
		"noise is strongest below 1 kHz at every site (paper: communication below 1 kHz is challenging)",
	)
	return rep, nil
}
