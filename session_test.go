package aquago_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"aquago"
)

// markerMedium tags each direction so tests can see who got called.
type markerMedium struct{ fwd, bwd float64 }

func (m markerMedium) Forward(tx []float64, atS float64) []float64  { return []float64{m.fwd} }
func (m markerMedium) Backward(tx []float64, atS float64) []float64 { return []float64{m.bwd} }

func TestSwapDirectionSwapsBothDirections(t *testing.T) {
	inner := markerMedium{fwd: 1, bwd: 2}
	swapped := aquago.SwapDirection(inner)
	if got := swapped.Forward(nil, 0); !reflect.DeepEqual(got, []float64{2}) {
		t.Fatalf("swapped Forward = %v, want the inner Backward", got)
	}
	if got := swapped.Backward(nil, 0); !reflect.DeepEqual(got, []float64{1}) {
		t.Fatalf("swapped Backward = %v, want the inner Forward", got)
	}
	// Swapping twice restores the original orientation.
	double := aquago.SwapDirection(swapped)
	if got := double.Forward(nil, 0); !reflect.DeepEqual(got, []float64{1}) {
		t.Fatalf("double-swapped Forward = %v, want the inner Forward", got)
	}
}

func TestSwapDirectionDeliversBothWays(t *testing.T) {
	water, err := aquago.SimulatedWater(aquago.Bridge, aquago.AtDistance(5), aquago.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := aquago.Dial(4)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := aquago.Dial(9)
	if err != nil {
		t.Fatal(err)
	}
	okMsg, _ := aquago.LookupMessage("OK?")
	res, err := alice.Send(water, 9, okMsg.ID, aquago.NoMessage)
	if err != nil || !res.Delivered {
		t.Fatalf("forward send failed: %v %+v", err, res)
	}
	// Bob answers over his own view of the same water.
	res, err = bob.Send(aquago.SwapDirection(water), 4, okMsg.ID, aquago.NoMessage)
	if err != nil || !res.Delivered {
		t.Fatalf("reverse send failed: %v %+v", err, res)
	}
}

// TestSessionConcurrentSends exercises the Session mutex: concurrent
// Sends over one session and medium must serialize rather than race
// on the virtual clock (run under -race in CI).
func TestSessionConcurrentSends(t *testing.T) {
	water, err := aquago.SimulatedWater(aquago.Bridge, aquago.AtDistance(5), aquago.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := aquago.Dial(4)
	if err != nil {
		t.Fatal(err)
	}
	okMsg, _ := aquago.LookupMessage("OK?")
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sess.Send(water, 9, okMsg.ID, aquago.NoMessage); err != nil {
				t.Errorf("concurrent send: %v", err)
			}
		}()
	}
	wg.Wait()
}

// silentMedium loses everything in both directions.
type silentMedium struct{}

func (silentMedium) Forward(tx []float64, atS float64) []float64 {
	return make([]float64, len(tx)+512)
}
func (silentMedium) Backward(tx []float64, atS float64) []float64 {
	return make([]float64, len(tx)+512)
}

func TestSessionSendTypedErrors(t *testing.T) {
	sess, err := aquago.Dial(4)
	if err != nil {
		t.Fatal(err)
	}
	// A message ID outside the codebook round-trips as ErrBadMessage.
	if _, err := sess.Send(silentMedium{}, 9, 250, aquago.NoMessage); !errors.Is(err, aquago.ErrBadMessage) {
		t.Fatalf("want ErrBadMessage, got %v", err)
	}
	// A medium that loses everything exhausts retries: ErrNoACK, with
	// the attempts still reported in the result.
	res, err := sess.Send(silentMedium{}, 9, 0, aquago.NoMessage)
	if !errors.Is(err, aquago.ErrNoACK) {
		t.Fatalf("want ErrNoACK, got %v", err)
	}
	if res.Delivered || res.Acknowledged {
		t.Fatalf("silent medium cannot deliver: %+v", res)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts %d, want 3 (1 + 2 retries)", res.Attempts)
	}
}

func TestSessionTraceFires(t *testing.T) {
	water, err := aquago.SimulatedWater(aquago.Bridge, aquago.AtDistance(5), aquago.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := aquago.Dial(4)
	if err != nil {
		t.Fatal(err)
	}
	var stages []aquago.Stage
	sess.SetTrace(aquago.TraceFunc(func(ev aquago.StageEvent) {
		stages = append(stages, ev.Stage)
	}))
	okMsg, _ := aquago.LookupMessage("OK?")
	if _, err := sess.Send(water, 9, okMsg.ID, aquago.NoMessage); err != nil {
		t.Fatal(err)
	}
	if len(stages) == 0 {
		t.Fatal("no stage events on a session send")
	}
	if stages[0] != aquago.StagePreamble {
		t.Fatalf("first stage %v, want preamble", stages[0])
	}
	// Removing the trace stops the callbacks.
	sess.SetTrace(nil)
	n := len(stages)
	if _, err := sess.Send(water, 9, okMsg.ID, aquago.NoMessage); err != nil {
		t.Fatal(err)
	}
	if len(stages) != n {
		t.Fatal("trace fired after removal")
	}
}

func TestDecodeFromWAVTypedError(t *testing.T) {
	m, err := aquago.NewModem()
	if err != nil {
		t.Fatal(err)
	}
	// A silent WAV has no packet in it.
	path := filepath.Join(t.TempDir(), "silence.wav")
	if err := writeSilenceWAV(t, path, m.SampleRate()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DecodeFromWAV(path, 3); !errors.Is(err, aquago.ErrDecodeFailed) {
		t.Fatalf("want ErrDecodeFailed, got %v", err)
	}
}

// writeSilenceWAV emits one second of silence via the public encoder
// path (EncodeToWAV needs a real message, so build the file directly).
func writeSilenceWAV(t *testing.T, path string, rate int) error {
	t.Helper()
	// Minimal PCM16 mono WAV.
	n := rate // one second
	data := make([]byte, 44+2*n)
	copy(data[0:4], "RIFF")
	putU32 := func(off int, v uint32) {
		data[off] = byte(v)
		data[off+1] = byte(v >> 8)
		data[off+2] = byte(v >> 16)
		data[off+3] = byte(v >> 24)
	}
	putU16 := func(off int, v uint16) {
		data[off] = byte(v)
		data[off+1] = byte(v >> 8)
	}
	putU32(4, uint32(36+2*n))
	copy(data[8:12], "WAVE")
	copy(data[12:16], "fmt ")
	putU32(16, 16)
	putU16(20, 1) // PCM
	putU16(22, 1) // mono
	putU32(24, uint32(rate))
	putU32(28, uint32(rate*2))
	putU16(32, 2)
	putU16(34, 16)
	copy(data[36:40], "data")
	putU32(40, uint32(2*n))
	return os.WriteFile(path, data, 0o644)
}
