package aquago_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"aquago"
)

// TestConflictingDispatchOrderDeterministic pins the dispatch gate's
// cross-node ordering: a mixed-priority burst from two senders whose
// exchanges all conflict (they share the receiver) must complete in
// the same sequence on every run — the first job dispatches the moment
// it is enqueued (nothing else is live yet), and every later job
// follows the (priority, enqueue-sequence) dispatch key, whichever
// node it sits on. Before the gate's node scan was sorted by device
// ID, the scan order — and with it the order conflicting dispatches
// reached the scheduler — depended on Go's randomized map layout.
func TestConflictingDispatchOrderDeterministic(t *testing.T) {
	okMsg, _ := aquago.LookupMessage("OK?")

	run := func(rep int) []uint64 {
		net, _, a, b := buildTriangle(t, 29)
		got, stop := drainDeliveries(net.Deliveries())
		defer stop()

		steps := []struct {
			nd  *aquago.Node
			pri aquago.TxPriority
		}{
			{a, aquago.TxBulk},   // seq 1: dispatches immediately
			{b, aquago.TxBulk},   // seq 2
			{a, aquago.TxNormal}, // seq 3
			{b, aquago.TxHigh},   // seq 4
			{a, aquago.TxHigh},   // seq 5
			{b, aquago.TxNormal}, // seq 6
		}
		for _, s := range steps {
			if _, err := s.nd.Enqueue(context.Background(), aquago.TxJob{
				Dst: 0, Msgs: []uint8{okMsg.ID}, Priority: s.pri,
			}); err != nil {
				t.Fatalf("run %d: enqueue %v from %d: %v", rep, s.pri, s.nd.ID(), err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := net.Flush(ctx); err != nil {
			t.Fatalf("run %d: flush: %v", rep, err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for len(got()) < len(steps) && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		ds := got()
		if len(ds) != len(steps) {
			t.Fatalf("run %d: %d of %d deliveries arrived", rep, len(ds), len(steps))
		}
		ids := make([]uint64, len(ds))
		for i, d := range ds {
			ids[i] = d.TxID
		}
		return ids
	}

	// Job 1 is already inflight when the rest enqueue; the remaining
	// five serialize by (priority, seq): highs 4, 5; normals 3, 6;
	// bulk 2.
	want := []uint64{1, 4, 5, 3, 6, 2}
	for rep := 0; rep < 4; rep++ {
		if ids := run(rep); !reflect.DeepEqual(ids, want) {
			t.Fatalf("run %d: completion order %v, want %v", rep, ids, want)
		}
	}
}
