// Command aquascope inspects underwater-modem audio: it renders a
// terminal spectrogram of a WAV file and annotates any AquaApp
// packets it can detect (preamble position and confidence, header ID,
// decoded messages when a band is given).
//
// Usage:
//
//	aquascope -in capture.wav [-band 5:40] [-rows 16]
//
// Generate something to look at with:
//
//	aquawav send -out msg.wav -to 9 -msg "OK?"
//	aquascope -in msg.wav -band 0:59
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aquago/internal/app"
	"aquago/internal/audio"
	"aquago/internal/dsp"
	"aquago/internal/modem"
	"aquago/internal/phy"
)

func main() {
	in := flag.String("in", "", "input WAV file")
	band := flag.String("band", "", "data band LO:HI to attempt packet decode")
	rows := flag.Int("rows", 14, "spectrogram height in rows")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "aquascope: -in is required")
		os.Exit(2)
	}
	if err := run(*in, *band, *rows); err != nil {
		fmt.Fprintln(os.Stderr, "aquascope:", err)
		os.Exit(1)
	}
}

func run(path, bandSpec string, rows int) error {
	samples, rate, err := audio.ReadWAVFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %.2f s at %d Hz\n\n", path, float64(len(samples))/float64(rate), rate)

	// Spectrogram of the modem band.
	const winLen = 1024
	stft := dsp.STFT(samples, winLen, winLen/2, dsp.Hann)
	lines := dsp.SpectrogramASCII(stft, winLen, float64(rate), 500, 4500, rows)
	fmt.Println("spectrogram 0.5-4.5 kHz (top = high frequency):")
	for _, l := range lines {
		fmt.Println("  " + l)
	}
	fmt.Println()

	if rate != modem.DefaultSampleRate {
		fmt.Printf("sample rate %d != %d: packet analysis skipped\n", rate, modem.DefaultSampleRate)
		return nil
	}
	m, err := modem.New(modem.DefaultConfig())
	if err != nil {
		return err
	}
	det := modem.NewDetector(m)
	tones := phy.NewTones(m)
	dets := det.DetectAll(samples)
	if len(dets) == 0 {
		fmt.Println("no preambles detected")
		return nil
	}
	for i, d := range dets {
		fmt.Printf("preamble %d at sample %d (t=%.3f s), confidence %.2f\n",
			i+1, d.Offset, float64(d.Offset)/float64(rate), d.Metric)
		hdrOff := d.Offset + m.PreambleLen()
		if dec, err := tones.DecodeTone(samples, hdrOff); err == nil {
			fmt.Printf("  header tone: bin %d (device ID %d), dominance %.2f\n",
				dec.Bin, dec.Bin, dec.Fraction)
		}
	}
	// Optional full decode at a known band.
	if bandSpec != "" {
		parts := strings.SplitN(bandSpec, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("band %q not in LO:HI form", bandSpec)
		}
		lo, err1 := strconv.Atoi(parts[0])
		hi, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("band %q not numeric", bandSpec)
		}
		shot, err := phy.NewOneShot(m, modem.Band{Lo: lo, Hi: hi})
		if err != nil {
			return err
		}
		if dec, ok := shot.Decode(samples, -1); ok {
			fmt.Printf("\ndecoded packet for device %d:\n", dec.Packet.Dst)
			if msgs, err := app.DecodePayload(dec.Packet.Payload); err == nil {
				for _, msg := range msgs {
					fmt.Printf("  [%s] %s\n", msg.Category, msg.Text)
				}
			} else {
				fmt.Printf("  payload %x (not a codebook pair)\n", dec.Packet.Payload)
			}
		} else {
			fmt.Println("\nno packet decodable on that band")
		}
	}
	return nil
}
