// Command aquabench regenerates the paper's evaluation artifacts:
// every figure and table of §3 has a harness in internal/exp, and
// this tool runs them and prints the same series the paper plots.
//
// Usage:
//
//	aquabench -list
//	aquabench -exp fig09,fig12 [-packets 100] [-seed 1]
//	aquabench -all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aquago/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	all := flag.Bool("all", false, "run every experiment")
	ids := flag.String("exp", "", "comma-separated experiment IDs")
	packets := flag.Int("packets", 0, "packets per measurement point (0 = default 100)")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "reduced workloads for a fast pass")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}
	var selected []string
	switch {
	case *all:
		selected = exp.IDs()
	case *ids != "":
		selected = strings.Split(*ids, ",")
	default:
		fmt.Fprintln(os.Stderr, "aquabench: pass -all, -exp id[,id...] or -list")
		os.Exit(2)
	}

	cfg := exp.RunConfig{Packets: *packets, Seed: *seed, Quick: *quick}
	failed := false
	for _, id := range selected {
		id = strings.TrimSpace(id)
		start := time.Now()
		rep, err := exp.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aquabench: %s: %v\n", id, err)
			failed = true
			continue
		}
		rep.Render(os.Stdout)
		fmt.Printf("   [%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
