// Command aquabench regenerates the paper's evaluation artifacts:
// every figure and table of §3 has a harness in internal/exp, and
// this tool runs them and prints the same series the paper plots.
// Beyond the paper, -macload runs the MAC goodput-vs-offered-load
// sweep and the capture-effect SIR study on the live Network, and
// -multihop runs the relay study (bulk goodput/latency vs hop count,
// relayed goodput vs offered load over line/grid/pod topologies).
//
// Usage:
//
//	aquabench -list
//	aquabench -exp fig09,fig12 [-packets 100] [-seed 1] [-workers 0]
//	aquabench -macload [-quick] [-json]
//	aquabench -multihop [-quick] [-json]
//	aquabench -scale [-quick] [-json]
//	aquabench -image [-quick] [-json]
//	aquabench -mobility [-quick] [-json]
//	aquabench -all [-quick] [-json] [-out BENCH_exp.json] [-diff BENCH_exp.json]
//
// -workers sizes the parallel experiment engine (0 = one worker per
// CPU core, 1 = serial); results are identical for any value. -json
// additionally writes a machine-readable benchmark file with the
// wall time and series of every experiment, the start of the repo's
// performance trajectory across PRs. When the output file already
// exists, experiments not re-run this invocation are carried over, so
// `-macload -json` merges its block into a full BENCH_exp.json
// instead of truncating it. -diff compares every throughput series —
// goodput and the scale harness's committed exchanges per wall-second
// — against a reference bench file and exits non-zero on a > 15 %
// regression (the CI bench job's gate). -scale runs the harbor
// build-out sweep (250 to 10k nodes; quick mode stops at 1k). -image
// runs the progressive image transmission study (ARQ stream goodput
// and time-to-first-usable-preview vs range, hop count and load).
// -mobility runs the drifting-diver study (bulk relay goodput and
// route repairs vs drift speed under position epochs).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"aquago/internal/exp"
)

// maxSeed mirrors cmd/aquanet's bound: derived per-point seeds must
// not overflow.
const maxSeed = math.MaxInt64 / 2

// throughputRegressionTolerance is how far a gated throughput point
// (goodput, committed exchanges per wall-second) may fall below the
// -diff reference before the run fails.
const throughputRegressionTolerance = 0.15

// benchExperiment is one experiment's entry in the -json output.
type benchExperiment struct {
	ID     string     `json:"id"`
	WallMS float64    `json:"wall_ms"`
	Error  string     `json:"error,omitempty"`
	Report exp.Report `json:"report"`
}

// benchFile is the top-level -json document (BENCH_exp.json).
type benchFile struct {
	Timestamp   string            `json:"timestamp"`
	GoVersion   string            `json:"go_version"`
	NumCPU      int               `json:"num_cpu"`
	Workers     int               `json:"workers"`
	Packets     int               `json:"packets"`
	Seed        int64             `json:"seed"`
	Quick       bool              `json:"quick"`
	TotalMS     float64           `json:"total_ms"`
	Experiments []benchExperiment `json:"experiments"`
}

// macloadIDs / multihopIDs / scaleIDs / imageIDs / mobilityIDs are
// the experiments the shorthand flags select.
var (
	macloadIDs  = []string{"macload", "macsir"}
	multihopIDs = []string{"multihop"}
	scaleIDs    = []string{"scale"}
	imageIDs    = []string{"image"}
	mobilityIDs = []string{"mobility"}
)

// selectExperiments resolves the selection flags into experiment IDs,
// de-duplicated in run order.
func selectExperiments(all, macload, multihop, scale, image, mobility bool, ids string) ([]string, error) {
	var selected []string
	switch {
	case all:
		selected = exp.IDs()
	case ids != "":
		for _, id := range strings.Split(ids, ",") {
			selected = append(selected, strings.TrimSpace(id))
		}
	}
	if macload {
		selected = append(selected, macloadIDs...)
	}
	if multihop {
		selected = append(selected, multihopIDs...)
	}
	if scale {
		selected = append(selected, scaleIDs...)
	}
	if image {
		selected = append(selected, imageIDs...)
	}
	if mobility {
		selected = append(selected, mobilityIDs...)
	}
	if len(selected) == 0 {
		return nil, errors.New("pass -all, -exp id[,id...], -macload, -multihop, -scale, -image, -mobility or -list")
	}
	seen := make(map[string]bool, len(selected))
	out := selected[:0]
	for _, id := range selected {
		if id == "" {
			return nil, errors.New("-exp contains an empty experiment ID")
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out, nil
}

// validateBenchFlags rejects flag values the harnesses would quietly
// misread (negative packet budgets fall back to defaults, negative
// seeds break derived-seed reproducibility).
func validateBenchFlags(packets int, seed int64, workers int) error {
	switch {
	case packets < 0:
		return fmt.Errorf("-packets %d: use 0 for the default budget", packets)
	case workers < 0:
		return fmt.Errorf("-workers %d: use 0 for one per core", workers)
	case seed < 0 || seed > maxSeed:
		return fmt.Errorf("-seed %d out of range [0, %d]", seed, int64(maxSeed))
	}
	return nil
}

// readBenchFile loads a previous -json output.
func readBenchFile(path string) (benchFile, error) {
	var bf benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	return bf, nil
}

// mergeBench carries prev's experiments into cur: entries re-run this
// invocation keep their fresh results (in prev's position), entries
// not re-run survive untouched, and brand-new IDs append in run order.
// The header always describes the current invocation.
func mergeBench(prev, cur benchFile) benchFile {
	fresh := make(map[string]benchExperiment, len(cur.Experiments))
	for _, e := range cur.Experiments {
		fresh[e.ID] = e
	}
	merged := make([]benchExperiment, 0, len(prev.Experiments)+len(cur.Experiments))
	seen := make(map[string]bool, len(prev.Experiments))
	for _, e := range prev.Experiments {
		seen[e.ID] = true
		if f, ok := fresh[e.ID]; ok {
			e = f
		}
		merged = append(merged, e)
	}
	for _, e := range cur.Experiments {
		if !seen[e.ID] {
			merged = append(merged, e)
		}
	}
	cur.Experiments = merged
	return cur
}

// gatedSeries reports whether a series name is throughput-gated by
// -diff: the goodput sweeps, plus the scale harness's committed
// exchanges per wall-second (the 1k-10k-node admission/routing hot
// path — a spatial-index regression shows up here first).
func gatedSeries(name string) bool {
	return strings.Contains(name, "goodput") || strings.Contains(name, "committed exchanges")
}

// diffThroughput compares every gated throughput series of cur against
// ref and reports the points that regressed by more than tol
// (relative). Points are matched by series name AND X value (the
// offered load or node count), so a baseline generated at a different
// sweep scale gates only the points both runs measured instead of
// comparing unrelated loads by index. A series or experiment absent
// from ref is skipped — new coverage is not a regression — but an
// experiment cur re-ran must still carry *some* gated series wherever
// ref had one, so the gate cannot be dodged by dropping the block
// (experiments not selected this invocation are exempt: a partial run
// only gates what it measured).
func diffThroughput(ref, cur benchFile, tol float64) error {
	type refSeries struct {
		expID  string
		byX    map[float64]float64
		series exp.Series
	}
	refs := make(map[string]refSeries)
	gatedExps := make(map[string]bool)
	for _, e := range ref.Experiments {
		for _, s := range e.Report.Series {
			if !gatedSeries(s.Name) {
				continue
			}
			byX := make(map[float64]float64, len(s.X))
			for i := range s.X {
				byX[s.X[i]] = s.Y[i]
			}
			refs[e.ID+"/"+s.Name] = refSeries{expID: e.ID, byX: byX, series: s}
			gatedExps[e.ID] = true
		}
	}
	if len(refs) == 0 {
		return nil // reference predates the throughput blocks
	}
	var problems []string
	curGatedExps := make(map[string]bool)
	for _, e := range cur.Experiments {
		for _, s := range e.Report.Series {
			if !gatedSeries(s.Name) {
				continue
			}
			curGatedExps[e.ID] = true
			rs, ok := refs[e.ID+"/"+s.Name]
			if !ok {
				continue
			}
			for i := range s.X {
				refY, ok := rs.byX[s.X[i]]
				if !ok {
					continue // load point not in the reference grid
				}
				if s.Y[i] < refY*(1-tol) {
					problems = append(problems, fmt.Sprintf(
						"%s/%s at x=%.4g: %.4g -> %.4g (-%.0f%%)",
						e.ID, s.Name, s.X[i], refY, s.Y[i], 100*(1-s.Y[i]/refY)))
				}
			}
		}
	}
	for _, e := range cur.Experiments {
		if gatedExps[e.ID] && !curGatedExps[e.ID] {
			problems = append(problems, fmt.Sprintf(
				"%s: reference has throughput series but this run produced none", e.ID))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("throughput regressed beyond %.0f%% vs reference:\n  %s",
			100*tol, strings.Join(problems, "\n  "))
	}
	return nil
}

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	all := flag.Bool("all", false, "run every experiment")
	ids := flag.String("exp", "", "comma-separated experiment IDs")
	macload := flag.Bool("macload", false, "run the MAC goodput sweep and capture-effect SIR study (macload, macsir)")
	multihop := flag.Bool("multihop", false, "run the multi-hop relay study (multihop)")
	scale := flag.Bool("scale", false, "run the 1k-10k-node harbor build-out sweep (scale)")
	image := flag.Bool("image", false, "run the progressive image transmission study (image)")
	mobility := flag.Bool("mobility", false, "run the drifting-diver mobility study (mobility)")
	packets := flag.Int("packets", 0, "packets per measurement point (0 = default 100)")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "reduced workloads for a fast pass")
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores, 1 = serial)")
	jsonOut := flag.Bool("json", false, "write per-experiment timings and series as JSON")
	outPath := flag.String("out", "BENCH_exp.json", "output path for -json")
	diffPath := flag.String("diff", "", "reference bench file; exit non-zero if any throughput series regresses > 15%")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}
	if err := validateBenchFlags(*packets, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "aquabench:", err)
		os.Exit(2)
	}
	selected, err := selectExperiments(*all, *macload, *multihop, *scale, *image, *mobility, *ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aquabench:", err)
		os.Exit(2)
	}
	// Read the regression reference and any previous output up front:
	// -diff and -out may name the same file, and merge must see the
	// pre-run state.
	var refBench *benchFile
	if *diffPath != "" {
		bf, err := readBenchFile(*diffPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aquabench: -diff %s: %v\n", *diffPath, err)
			os.Exit(2)
		}
		refBench = &bf
	}
	var prevBench *benchFile
	if *jsonOut {
		if bf, err := readBenchFile(*outPath); err == nil {
			prevBench = &bf
		}
	}

	cfg := exp.RunConfig{Packets: *packets, Seed: *seed, Quick: *quick, Workers: *workers}
	bench := benchFile{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workers:   *workers,
		Packets:   *packets,
		Seed:      *seed,
		Quick:     *quick,
	}
	failed := false
	totalStart := time.Now()
	for _, id := range selected {
		start := time.Now()
		rep, err := exp.Run(id, cfg)
		wallMS := float64(time.Since(start).Microseconds()) / 1000
		entry := benchExperiment{ID: id, WallMS: wallMS, Report: rep}
		if err != nil {
			fmt.Fprintf(os.Stderr, "aquabench: %s: %v\n", id, err)
			entry.Error = err.Error()
			failed = true
		} else {
			rep.Render(os.Stdout)
			fmt.Printf("   [%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		bench.Experiments = append(bench.Experiments, entry)
	}
	bench.TotalMS = float64(time.Since(totalStart).Microseconds()) / 1000

	if *jsonOut {
		outBench := bench
		if prevBench != nil {
			outBench = mergeBench(*prevBench, bench)
		}
		data, err := json.MarshalIndent(outBench, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "aquabench: marshal: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "aquabench: write %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments, total %.0f ms)\n",
			*outPath, len(outBench.Experiments), bench.TotalMS)
	}
	if refBench != nil {
		if err := diffThroughput(*refBench, bench, throughputRegressionTolerance); err != nil {
			fmt.Fprintln(os.Stderr, "aquabench:", err)
			failed = true
		} else {
			fmt.Printf("throughput within %.0f%% of %s\n", 100*throughputRegressionTolerance, *diffPath)
		}
	}
	if failed {
		os.Exit(1)
	}
}
