// Command aquabench regenerates the paper's evaluation artifacts:
// every figure and table of §3 has a harness in internal/exp, and
// this tool runs them and prints the same series the paper plots.
//
// Usage:
//
//	aquabench -list
//	aquabench -exp fig09,fig12 [-packets 100] [-seed 1] [-workers 0]
//	aquabench -all [-quick] [-json] [-out BENCH_exp.json]
//
// -workers sizes the parallel experiment engine (0 = one worker per
// CPU core, 1 = serial); results are identical for any value. -json
// additionally writes a machine-readable benchmark file with the
// wall time and series of every experiment, the start of the repo's
// performance trajectory across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"aquago/internal/exp"
)

// benchExperiment is one experiment's entry in the -json output.
type benchExperiment struct {
	ID     string     `json:"id"`
	WallMS float64    `json:"wall_ms"`
	Error  string     `json:"error,omitempty"`
	Report exp.Report `json:"report"`
}

// benchFile is the top-level -json document (BENCH_exp.json).
type benchFile struct {
	Timestamp   string            `json:"timestamp"`
	GoVersion   string            `json:"go_version"`
	NumCPU      int               `json:"num_cpu"`
	Workers     int               `json:"workers"`
	Packets     int               `json:"packets"`
	Seed        int64             `json:"seed"`
	Quick       bool              `json:"quick"`
	TotalMS     float64           `json:"total_ms"`
	Experiments []benchExperiment `json:"experiments"`
}

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	all := flag.Bool("all", false, "run every experiment")
	ids := flag.String("exp", "", "comma-separated experiment IDs")
	packets := flag.Int("packets", 0, "packets per measurement point (0 = default 100)")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "reduced workloads for a fast pass")
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores, 1 = serial)")
	jsonOut := flag.Bool("json", false, "write per-experiment timings and series as JSON")
	outPath := flag.String("out", "BENCH_exp.json", "output path for -json")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}
	var selected []string
	switch {
	case *all:
		selected = exp.IDs()
	case *ids != "":
		selected = strings.Split(*ids, ",")
	default:
		fmt.Fprintln(os.Stderr, "aquabench: pass -all, -exp id[,id...] or -list")
		os.Exit(2)
	}

	cfg := exp.RunConfig{Packets: *packets, Seed: *seed, Quick: *quick, Workers: *workers}
	bench := benchFile{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workers:   *workers,
		Packets:   *packets,
		Seed:      *seed,
		Quick:     *quick,
	}
	failed := false
	totalStart := time.Now()
	for _, id := range selected {
		id = strings.TrimSpace(id)
		start := time.Now()
		rep, err := exp.Run(id, cfg)
		wallMS := float64(time.Since(start).Microseconds()) / 1000
		entry := benchExperiment{ID: id, WallMS: wallMS, Report: rep}
		if err != nil {
			fmt.Fprintf(os.Stderr, "aquabench: %s: %v\n", id, err)
			entry.Error = err.Error()
			failed = true
		} else {
			rep.Render(os.Stdout)
			fmt.Printf("   [%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		bench.Experiments = append(bench.Experiments, entry)
	}
	bench.TotalMS = float64(time.Since(totalStart).Microseconds()) / 1000

	if *jsonOut {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "aquabench: marshal: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "aquabench: write %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments, total %.0f ms)\n",
			*outPath, len(bench.Experiments), bench.TotalMS)
	}
	if failed {
		os.Exit(1)
	}
}
