package main

import (
	"math"
	"strings"
	"testing"

	"aquago/internal/exp"
)

func TestSelectExperiments(t *testing.T) {
	cases := []struct {
		name                                           string
		all, macload, multihop, scale, image, mobility bool
		ids                                            string
		want                                           []string
		wantErr                                        string
	}{
		{name: "nothing selected", wantErr: "pass -all"},
		{name: "macload shorthand", macload: true, want: []string{"macload", "macsir"}},
		{name: "multihop shorthand", multihop: true, want: []string{"multihop"}},
		{name: "scale shorthand", scale: true, want: []string{"scale"}},
		{name: "image shorthand", image: true, want: []string{"image"}},
		{name: "mobility shorthand", mobility: true, want: []string{"mobility"}},
		{name: "explicit ids", ids: "fig09, fig12", want: []string{"fig09", "fig12"}},
		{name: "ids plus macload", ids: "fig09", macload: true, want: []string{"fig09", "macload", "macsir"}},
		{name: "macload deduplicates", ids: "macload", macload: true, want: []string{"macload", "macsir"}},
		{name: "all shorthands", macload: true, multihop: true, scale: true, image: true, mobility: true,
			want: []string{"macload", "macsir", "multihop", "scale", "image", "mobility"}},
		{name: "multihop deduplicates", ids: "multihop", multihop: true, want: []string{"multihop"}},
		{name: "scale deduplicates", ids: "scale", scale: true, want: []string{"scale"}},
		{name: "image deduplicates", ids: "image", image: true, want: []string{"image"}},
		{name: "mobility deduplicates", ids: "mobility", mobility: true, want: []string{"mobility"}},
		{name: "empty id", ids: "fig09,,fig12", wantErr: "empty experiment ID"},
	}
	for _, tc := range cases {
		got, err := selectExperiments(tc.all, tc.macload, tc.multihop, tc.scale, tc.image, tc.mobility, tc.ids)
		switch {
		case tc.wantErr != "":
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.wantErr)
			}
		case err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		default:
			if len(got) != len(tc.want) {
				t.Errorf("%s: selected %v, want %v", tc.name, got, tc.want)
				continue
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("%s: selected %v, want %v", tc.name, got, tc.want)
					break
				}
			}
		}
	}
	// -all must include the new experiments (the bench job relies on
	// one invocation covering every gated throughput block).
	all, err := selectExperiments(true, false, false, false, false, false, "")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, id := range all {
		found[id] = true
	}
	if !found["macload"] || !found["macsir"] || !found["multihop"] || !found["scale"] || !found["image"] || !found["mobility"] {
		t.Fatalf("-all selection %v is missing macload/macsir/multihop/scale/image/mobility", all)
	}
}

func TestValidateBenchFlags(t *testing.T) {
	if err := validateBenchFlags(0, 1, 0); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	cases := []struct {
		name    string
		packets int
		seed    int64
		workers int
		wantErr string
	}{
		{"negative packets", -5, 1, 0, "-packets"},
		{"negative workers", 0, 1, -1, "-workers"},
		{"negative seed", 0, -1, 0, "out of range"},
		{"huge seed", 0, math.MaxInt64, 0, "out of range"},
	}
	for _, tc := range cases {
		err := validateBenchFlags(tc.packets, tc.seed, tc.workers)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

// fileWith builds a minimal bench file from (experiment, series, Y
// values) triples for merge/diff tests.
func fileWith(entries ...benchExperiment) benchFile {
	return benchFile{Experiments: entries}
}

func entry(id string, series ...exp.Series) benchExperiment {
	return benchExperiment{ID: id, Report: exp.Report{ID: id, Series: series}}
}

func goodputSeries(name string, ys ...float64) exp.Series {
	s := exp.Series{Name: name}
	for i, y := range ys {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, y)
	}
	return s
}

func TestMergeBenchCarriesUnrunExperiments(t *testing.T) {
	prev := fileWith(
		entry("fig09", goodputSeries("per", 1)),
		entry("macload", goodputSeries("goodput old", 10)),
	)
	cur := fileWith(
		entry("macload", goodputSeries("goodput new", 12)),
		entry("macsir", goodputSeries("survival", 1)),
	)
	got := mergeBench(prev, cur)
	if len(got.Experiments) != 3 {
		t.Fatalf("merged %d experiments, want 3: %+v", len(got.Experiments), got.Experiments)
	}
	if got.Experiments[0].ID != "fig09" {
		t.Fatalf("carried experiment lost its position: %+v", got.Experiments)
	}
	if got.Experiments[1].ID != "macload" || got.Experiments[1].Report.Series[0].Name != "goodput new" {
		t.Fatalf("re-run experiment not replaced in place: %+v", got.Experiments[1])
	}
	if got.Experiments[2].ID != "macsir" {
		t.Fatalf("new experiment not appended: %+v", got.Experiments)
	}
}

func TestDiffThroughput(t *testing.T) {
	ref := fileWith(entry("macload",
		goodputSeries("goodput N=5 envelope energy-cs", 10, 20, 30),
		exp.Series{Name: "latency p90 N=5", Y: []float64{1, 2, 3}},
	))

	// Identical run passes.
	if err := diffThroughput(ref, ref, 0.15); err != nil {
		t.Fatalf("identical runs flagged: %v", err)
	}
	// Within tolerance passes; ungated series are ignored even when
	// they collapse.
	ok := fileWith(entry("macload",
		goodputSeries("goodput N=5 envelope energy-cs", 9, 17.5, 27),
		exp.Series{Name: "latency p90 N=5", Y: []float64{100, 200, 300}},
	))
	if err := diffThroughput(ref, ok, 0.15); err != nil {
		t.Fatalf("within-tolerance run flagged: %v", err)
	}
	// A > 15% drop on any point fails and names the load point.
	bad := fileWith(entry("macload",
		goodputSeries("goodput N=5 envelope energy-cs", 10, 15, 30),
	))
	err := diffThroughput(ref, bad, 0.15)
	if err == nil || !strings.Contains(err.Error(), "x=1") {
		t.Fatalf("regressed point not reported: %v", err)
	}
	// Points are matched by X, not index: a run on a different load
	// grid gates nothing (no common points), even with lower Y values.
	regrid := fileWith(entry("macload",
		exp.Series{Name: "goodput N=5 envelope energy-cs",
			X: []float64{10, 11, 12}, Y: []float64{1, 1, 1}},
	))
	if err := diffThroughput(ref, regrid, 0.15); err != nil {
		t.Fatalf("disjoint load grid flagged: %v", err)
	}
	// Dropping every gated series from a re-run experiment fails.
	dropped := fileWith(entry("macload",
		exp.Series{Name: "latency p90 N=5", Y: []float64{1, 2, 3}},
	))
	if err := diffThroughput(ref, dropped, 0.15); err == nil || !strings.Contains(err.Error(), "produced none") {
		t.Fatalf("dropped goodput series not reported: %v", err)
	}
	// Not running the experiment at all exempts it (partial runs only
	// gate what they measured).
	partial := fileWith(entry("fig09", goodputSeries("per", 1)))
	if err := diffThroughput(ref, partial, 0.15); err != nil {
		t.Fatalf("partial run without macload flagged: %v", err)
	}
	// A reference without gated series gates nothing.
	if err := diffThroughput(fileWith(entry("fig09")), bad, 0.15); err != nil {
		t.Fatalf("throughput-free reference flagged: %v", err)
	}
}

// TestDiffThroughputGatesImageGoodput pins the image block's
// membership in the -diff gate: its goodput series are gated, its
// preview-time series are not (latency, like the relay study's).
func TestDiffThroughputGatesImageGoodput(t *testing.T) {
	ref := fileWith(entry("image",
		goodputSeries("image goodput vs range (stream)", 10, 8),
		exp.Series{Name: "time to first usable preview vs range (stream)", Y: []float64{2, 4}},
	))
	if err := diffThroughput(ref, ref, 0.15); err != nil {
		t.Fatalf("identical image runs flagged: %v", err)
	}
	bad := fileWith(entry("image",
		goodputSeries("image goodput vs range (stream)", 10, 4),
		exp.Series{Name: "time to first usable preview vs range (stream)", Y: []float64{2, 4}},
	))
	err := diffThroughput(ref, bad, 0.15)
	if err == nil || !strings.Contains(err.Error(), "image goodput") {
		t.Fatalf("image goodput regression not reported: %v", err)
	}
	// Slower previews alone do not trip the throughput gate.
	slow := fileWith(entry("image",
		goodputSeries("image goodput vs range (stream)", 10, 8),
		exp.Series{Name: "time to first usable preview vs range (stream)", Y: []float64{20, 40}},
	))
	if err := diffThroughput(ref, slow, 0.15); err != nil {
		t.Fatalf("preview-only slowdown flagged as throughput regression: %v", err)
	}
}

// TestDiffThroughputGatesCommittedExchanges pins the scale block's
// membership in the -diff gate: the committed-exchanges-per-wall-second
// series regressing > 15% fails even with every goodput series intact.
func TestDiffThroughputGatesCommittedExchanges(t *testing.T) {
	ref := fileWith(
		entry("macload", goodputSeries("goodput N=5 envelope energy-cs", 10, 20)),
		entry("scale",
			goodputSeries("committed exchanges per wall-second vs nodes", 40, 30),
			exp.Series{Name: "harbor build-out wall time vs nodes", Y: []float64{1, 2}},
		),
	)
	if err := diffThroughput(ref, ref, 0.15); err != nil {
		t.Fatalf("identical scale runs flagged: %v", err)
	}
	// Wall-time series are not gated (they are wall-clock noise), but
	// the committed-exchanges rate is.
	bad := fileWith(
		entry("macload", goodputSeries("goodput N=5 envelope energy-cs", 10, 20)),
		entry("scale",
			goodputSeries("committed exchanges per wall-second vs nodes", 40, 20),
			exp.Series{Name: "harbor build-out wall time vs nodes", Y: []float64{100, 200}},
		),
	)
	err := diffThroughput(ref, bad, 0.15)
	if err == nil || !strings.Contains(err.Error(), "committed exchanges") {
		t.Fatalf("committed-exchanges regression not reported: %v", err)
	}
	// A scale re-run that silently drops the committed series fails.
	droppedScale := fileWith(
		entry("macload", goodputSeries("goodput N=5 envelope energy-cs", 10, 20)),
		entry("scale", exp.Series{Name: "harbor build-out wall time vs nodes", Y: []float64{1, 2}}),
	)
	if err := diffThroughput(ref, droppedScale, 0.15); err == nil || !strings.Contains(err.Error(), "produced none") {
		t.Fatalf("dropped committed-exchanges series not reported: %v", err)
	}
}
