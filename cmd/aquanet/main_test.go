package main

import (
	"math"
	"strings"
	"testing"

	"aquago"
)

func TestValidateFlags(t *testing.T) {
	type args struct {
		nTx, packets, runs int
		seed               int64
		csRange            float64
	}
	good := args{nTx: 3, packets: 120, runs: 5, seed: 1, csRange: 0}
	cases := []struct {
		name    string
		mutate  func(*args)
		wantErr string
	}{
		{"defaults", func(*args) {}, ""},
		{"max transmitters", func(a *args) { a.nTx = 59 }, ""},
		{"finite csrange", func(a *args) { a.csRange = 12.5 }, ""},
		{"zero transmitters", func(a *args) { a.nTx = 0 }, "at least one transmitter"},
		{"negative transmitters", func(a *args) { a.nTx = -2 }, "at least one transmitter"},
		{"too many transmitters", func(a *args) { a.nTx = 60 }, "59 transmitters"},
		{"zero packets", func(a *args) { a.packets = 0 }, "at least one packet"},
		{"zero runs", func(a *args) { a.runs = 0 }, "at least one run"},
		{"NaN csrange", func(a *args) { a.csRange = math.NaN() }, "not a finite distance"},
		{"infinite csrange", func(a *args) { a.csRange = math.Inf(1) }, "not a finite distance"},
		{"negative csrange", func(a *args) { a.csRange = -5 }, "cannot be negative"},
		{"negative seed", func(a *args) { a.seed = -1 }, "out of range"},
		{"huge seed", func(a *args) { a.seed = math.MaxInt64 }, "out of range"},
	}
	for _, tc := range cases {
		a := good
		tc.mutate(&a)
		err := validateFlags(a.nTx, a.packets, a.runs, a.seed, a.csRange)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: error expected, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestBuildLoadPoint covers the -load flag error paths: nonsense
// rates, node counts, durations, modes and worker budgets must be
// rejected with a message naming the offending flag or limit, and a
// good flag set must map onto the harness point verbatim.
func TestBuildLoadPoint(t *testing.T) {
	type args struct {
		nodes         int
		rate, dur     float64
		mode          string
		noCS          bool
		preambleAware bool
		workers       int
		async         bool
		queueCap      int
		seed          int64
		csRange       float64
	}
	good := args{nodes: 8, rate: 0.05, dur: 120, mode: "envelope",
		queueCap: aquago.DefaultTxQueueCap, seed: 1}
	cases := []struct {
		name    string
		mutate  func(*args)
		wantErr string
	}{
		{"defaults", func(*args) {}, ""},
		{"waveform mode", func(a *args) { a.mode = "waveform" }, ""},
		{"max nodes", func(a *args) { a.nodes = 60 }, ""},
		{"no carrier sense", func(a *args) { a.noCS = true }, ""},
		{"one node", func(a *args) { a.nodes = 1 }, "at least 2 nodes"},
		{"over 60 nodes", func(a *args) { a.nodes = 61 }, "60-device network limit"},
		{"negative rate", func(a *args) { a.rate = -0.1 }, "must be positive"},
		{"NaN rate", func(a *args) { a.rate = math.NaN() }, "not a finite number"},
		{"infinite rate", func(a *args) { a.rate = math.Inf(1) }, "not a finite number"},
		{"zero duration", func(a *args) { a.dur = 0 }, "must be positive"},
		{"negative duration", func(a *args) { a.dur = -5 }, "must be positive"},
		{"NaN duration", func(a *args) { a.dur = math.NaN() }, "not a finite time"},
		{"runaway schedule", func(a *args) { a.rate = 500; a.dur = 1e6 }, "cap"},
		{"bad mode", func(a *args) { a.mode = "acoustic" }, "pick envelope or waveform"},
		{"negative workers", func(a *args) { a.workers = -2 }, "-workers"},
		{"async default queue", func(a *args) { a.async = true }, ""},
		{"async tight queue", func(a *args) { a.async = true; a.queueCap = 16 }, ""},
		{"zero queue capacity", func(a *args) { a.async = true; a.queueCap = 0 }, "capacity"},
		{"negative queue capacity", func(a *args) { a.async = true; a.queueCap = -4 }, "capacity"},
		{"queue without async", func(a *args) { a.queueCap = 16 }, "-async"},
		{"negative seed", func(a *args) { a.seed = -1 }, "out of range"},
		{"NaN csrange", func(a *args) { a.csRange = math.NaN() }, "not a finite distance"},
		{"negative csrange", func(a *args) { a.csRange = -3 }, "cannot be negative"},
	}
	for _, tc := range cases {
		a := good
		tc.mutate(&a)
		pt, err := buildLoadPoint(a.nodes, a.rate, a.dur, a.mode, a.noCS, a.preambleAware,
			a.workers, a.async, a.queueCap, a.seed, a.csRange, aquago.Bridge)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: error expected, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		case tc.wantErr == "":
			if pt.PodSize != a.nodes || pt.Pods != 1 || pt.RateHz != a.rate ||
				pt.DurationS != a.dur || pt.CarrierSense == a.noCS {
				t.Errorf("%s: flags did not map onto the point: %+v", tc.name, pt)
			}
			if pt.Queued != a.async || (a.async && pt.QueueCap != a.queueCap) {
				t.Errorf("%s: async flags did not map onto the point: %+v", tc.name, pt)
			}
		}
	}
}

// TestBuildScalePoint covers the -scale flag error paths, funneled
// through the scale harness point's own Validate so CLI and harness
// cannot drift apart on what is buildable.
func TestBuildScalePoint(t *testing.T) {
	type args struct {
		podsX, podsY, podSize, msgs, workers int
		seed                                 int64
		csRange                              float64
	}
	good := args{podsX: 5, podsY: 5, podSize: 10, msgs: 8, seed: 1}
	cases := []struct {
		name    string
		mutate  func(*args)
		wantErr string
	}{
		{"defaults", func(*args) {}, ""},
		{"csrange 0 maps to harness default", func(a *args) { a.csRange = 0 }, ""},
		{"explicit csrange", func(a *args) { a.csRange = 40 }, ""},
		{"max pod size", func(a *args) { a.podSize = 15 }, ""},
		{"one pod column", func(a *args) { a.podsX = 1 }, "at least two pod columns"},
		{"zero pod rows", func(a *args) { a.podsY = 0 }, "at least one pod row"},
		{"zero pod size", func(a *args) { a.podSize = 0 }, "outside 1..15"},
		{"oversized pod", func(a *args) { a.podSize = 16 }, "outside 1..15"},
		{"too many nodes", func(a *args) { a.podsX = 40; a.podsY = 40 }, "harness cap"},
		{"zero messages is the default", func(a *args) { a.msgs = 0 }, ""},
		{"too many messages", func(a *args) { a.msgs = 5000 }, "outside 1.."},
		{"negative workers", func(a *args) { a.workers = -1 }, "-workers"},
		{"negative seed", func(a *args) { a.seed = -1 }, "out of range"},
		{"NaN csrange", func(a *args) { a.csRange = math.NaN() }, "not a finite distance"},
		{"negative csrange", func(a *args) { a.csRange = -3 }, "cannot be negative"},
	}
	for _, tc := range cases {
		a := good
		tc.mutate(&a)
		pt, err := buildScalePoint(a.podsX, a.podsY, a.podSize, a.msgs, a.workers,
			a.seed, a.csRange, aquago.Bridge)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: error expected, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		case tc.wantErr == "":
			if pt.PodsX != a.podsX || pt.PodsY != a.podsY || pt.PodSize != a.podSize ||
				pt.Msgs != a.msgs || pt.Retries != -1 {
				t.Errorf("%s: flags did not map onto the point: %+v", tc.name, pt)
			}
		}
	}
}

// TestBuildStreamPoint covers the -stream flag error paths, funneled
// through the stream harness point's own Validate so CLI and harness
// cannot drift apart on what is runnable.
func TestBuildStreamPoint(t *testing.T) {
	type args struct {
		rangeM  float64
		bytes   int
		window  int
		retries int
		rto     float64
		mode    string
		workers int
		seed    int64
	}
	good := args{rangeM: 25, bytes: 32, retries: 4, mode: "envelope", seed: 1}
	cases := []struct {
		name    string
		mutate  func(*args)
		wantErr string
	}{
		{"defaults", func(*args) {}, ""},
		{"waveform mode", func(a *args) { a.mode = "waveform" }, ""},
		{"max window", func(a *args) { a.window = aquago.MaxStreamWindow }, ""},
		{"explicit rto", func(a *args) { a.rto = 0.5 }, ""},
		{"NaN range", func(a *args) { a.rangeM = math.NaN() }, "not a usable distance"},
		{"negative range", func(a *args) { a.rangeM = -5 }, "not a usable distance"},
		{"no payload", func(a *args) { a.bytes = 0 }, "need a payload"},
		{"huge payload", func(a *args) { a.bytes = 1 << 20 }, "cap"},
		{"bad window", func(a *args) { a.window = -1 }, "window"},
		{"oversized window", func(a *args) { a.window = aquago.MaxStreamWindow + 1 }, "window"},
		{"zero retries", func(a *args) { a.retries = 0 }, "at least 1"},
		{"NaN timer", func(a *args) { a.rto = math.NaN() }, "not a usable duration"},
		{"negative timer", func(a *args) { a.rto = -2 }, "not a usable duration"},
		{"bad mode", func(a *args) { a.mode = "sonar" }, "pick envelope or waveform"},
		{"negative workers", func(a *args) { a.workers = -1 }, "-workers"},
		{"negative seed", func(a *args) { a.seed = -1 }, "out of range"},
	}
	for _, tc := range cases {
		a := good
		tc.mutate(&a)
		pt, err := buildStreamPoint(a.rangeM, a.bytes, a.window, a.retries, a.rto,
			a.mode, a.workers, a.seed, aquago.Bridge)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: error expected, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		case tc.wantErr == "":
			if pt.RangeM != a.rangeM || pt.Bytes != a.bytes || pt.Window != a.window ||
				pt.Retries != a.retries || pt.RTOS != a.rto {
				t.Errorf("%s: flags did not map onto the point: %+v", tc.name, pt)
			}
		}
	}
}

// TestBuildImagePoint covers the -image flag error paths, including
// the hops/streams axis clash only the CLI can produce.
func TestBuildImagePoint(t *testing.T) {
	type args struct {
		blocks, blockSize, preview int
		hops, streams              int
		rangeM                     float64
		window, retries            int
		rto                        float64
		mode                       string
		workers                    int
		seed                       int64
	}
	good := args{blocks: 16, blockSize: 7, hops: 1, streams: 1,
		rangeM: 25, retries: 4, mode: "envelope", seed: 1}
	cases := []struct {
		name    string
		mutate  func(*args)
		wantErr string
	}{
		{"defaults", func(*args) {}, ""},
		{"relay axis", func(a *args) { a.hops = 3 }, ""},
		{"load axis", func(a *args) { a.streams = 3 }, ""},
		{"explicit preview", func(a *args) { a.preview = 2 }, ""},
		{"no blocks", func(a *args) { a.blocks = 0 }, "at least one block"},
		{"empty blocks", func(a *args) { a.blockSize = 0 }, "at least one byte"},
		{"huge image", func(a *args) { a.blocks = 2048; a.blockSize = 7 }, "cap"},
		{"preview past end", func(a *args) { a.preview = 17 }, "preview threshold"},
		{"too many hops", func(a *args) { a.hops = 60 }, "60-device limit"},
		{"hops and streams", func(a *args) { a.hops = 3; a.streams = 2 }, "direct links"},
		{"too many streams", func(a *args) { a.streams = 9 }, "outside [1, 8]"},
		{"bad window", func(a *args) { a.window = aquago.MaxStreamWindow + 1 }, "window"},
		{"zero retries", func(a *args) { a.retries = 0 }, "at least 1"},
		{"NaN timer", func(a *args) { a.rto = math.NaN() }, "not a usable duration"},
		{"bad mode", func(a *args) { a.mode = "sonar" }, "pick envelope or waveform"},
		{"negative workers", func(a *args) { a.workers = -3 }, "-workers"},
		{"negative seed", func(a *args) { a.seed = -1 }, "out of range"},
	}
	for _, tc := range cases {
		a := good
		tc.mutate(&a)
		pt, err := buildImagePoint(a.blocks, a.blockSize, a.preview, a.hops, a.streams,
			a.rangeM, a.window, a.retries, a.rto, a.mode, a.workers, a.seed, aquago.Bridge)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: error expected, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		case tc.wantErr == "":
			if pt.Blocks != a.blocks || pt.BlockBytes != a.blockSize ||
				pt.Hops != a.hops || pt.Streams != a.streams || pt.Retries != a.retries {
				t.Errorf("%s: flags did not map onto the point: %+v", tc.name, pt)
			}
		}
	}
}

// TestBuildRelayPoint covers the -relay flag error paths, funneled
// through the multihop harness point's own Validate so CLI and
// harness cannot drift apart on what is runnable.
func TestBuildRelayPoint(t *testing.T) {
	type args struct {
		hops      int
		spacing   float64
		bulk      int
		mode      string
		policy    string
		pipelined bool
		queueCap  int
		persist   float64
		adaptive  bool
		seed      int64
		csRange   float64
	}
	good := args{hops: 3, spacing: 25, bulk: 32, mode: "envelope", policy: "minhop",
		queueCap: aquago.DefaultTxQueueCap, seed: 1}
	cases := []struct {
		name    string
		mutate  func(*args)
		wantErr string
	}{
		{"defaults", func(*args) {}, ""},
		{"waveform etx", func(a *args) { a.mode = "waveform"; a.policy = "minetx" }, ""},
		{"explicit csrange", func(a *args) { a.csRange = 40 }, ""},
		{"zero hops", func(a *args) { a.hops = 0 }, "at least one hop"},
		{"too many hops", func(a *args) { a.hops = 60 }, "60-device limit"},
		{"NaN spacing", func(a *args) { a.spacing = math.NaN() }, "not a usable distance"},
		{"negative spacing", func(a *args) { a.spacing = -2 }, "not a usable distance"},
		{"deaf csrange", func(a *args) { a.csRange = 10 }, "no route exists"},
		{"zero payload", func(a *args) { a.bulk = 0 }, "need a payload"},
		{"huge payload", func(a *args) { a.bulk = 1 << 20 }, "cap"},
		{"bad mode", func(a *args) { a.mode = "sonar" }, "pick envelope or waveform"},
		{"bad policy", func(a *args) { a.policy = "hottest-gossip" }, "pick minhop or minetx"},
		{"pipelined defaults", func(a *args) { a.pipelined = true }, ""},
		{"pipelined persistent adaptive", func(a *args) {
			a.pipelined = true
			a.persist = 0.7
			a.adaptive = true
		}, ""},
		{"zero queue capacity", func(a *args) { a.pipelined = true; a.queueCap = 0 }, "capacity"},
		{"queue without pipelined", func(a *args) { a.queueCap = 8 }, "-pipelined"},
		{"NaN persist", func(a *args) { a.persist = math.NaN() }, "persistence"},
		{"negative persist", func(a *args) { a.persist = -0.2 }, "persistence"},
		{"persist above one", func(a *args) { a.persist = 1.5 }, "persistence"},
		{"negative seed", func(a *args) { a.seed = -1 }, "out of range"},
		{"negative csrange", func(a *args) { a.csRange = -3 }, "cannot be negative"},
	}
	for _, tc := range cases {
		a := good
		tc.mutate(&a)
		pt, err := buildRelayPoint(a.hops, a.spacing, a.bulk, a.mode, a.policy,
			a.pipelined, a.queueCap, a.persist, a.adaptive, a.seed, a.csRange, aquago.Bridge)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: error expected, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		case tc.wantErr == "":
			if pt.Hops != a.hops || pt.SpacingM != a.spacing || pt.PayloadBytes != a.bulk ||
				pt.Retries != -1 {
				t.Errorf("%s: flags did not map onto the point: %+v", tc.name, pt)
			}
			if pt.Pipelined != a.pipelined || (a.pipelined && pt.QueueCap != a.queueCap) ||
				pt.Persist != a.persist || pt.AdaptiveBackoff != a.adaptive {
				t.Errorf("%s: pipelined flags did not map onto the point: %+v", tc.name, pt)
			}
		}
	}
}
