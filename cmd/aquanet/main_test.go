package main

import (
	"math"
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	type args struct {
		nTx, packets, runs int
		seed               int64
		csRange            float64
	}
	good := args{nTx: 3, packets: 120, runs: 5, seed: 1, csRange: 0}
	cases := []struct {
		name    string
		mutate  func(*args)
		wantErr string
	}{
		{"defaults", func(*args) {}, ""},
		{"max transmitters", func(a *args) { a.nTx = 59 }, ""},
		{"finite csrange", func(a *args) { a.csRange = 12.5 }, ""},
		{"zero transmitters", func(a *args) { a.nTx = 0 }, "at least one transmitter"},
		{"negative transmitters", func(a *args) { a.nTx = -2 }, "at least one transmitter"},
		{"too many transmitters", func(a *args) { a.nTx = 60 }, "59 transmitters"},
		{"zero packets", func(a *args) { a.packets = 0 }, "at least one packet"},
		{"zero runs", func(a *args) { a.runs = 0 }, "at least one run"},
		{"NaN csrange", func(a *args) { a.csRange = math.NaN() }, "not a finite distance"},
		{"infinite csrange", func(a *args) { a.csRange = math.Inf(1) }, "not a finite distance"},
		{"negative csrange", func(a *args) { a.csRange = -5 }, "cannot be negative"},
		{"negative seed", func(a *args) { a.seed = -1 }, "out of range"},
		{"huge seed", func(a *args) { a.seed = math.MaxInt64 }, "out of range"},
	}
	for _, tc := range cases {
		a := good
		tc.mutate(&a)
		err := validateFlags(a.nTx, a.packets, a.runs, a.seed, a.csRange)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: error expected, got nil", tc.name)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}
