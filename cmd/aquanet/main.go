// Command aquanet simulates an underwater network of AquaApp devices
// contending for the acoustic channel. Its default mode reproduces the
// paper's MAC evaluation (Fig 19): collision fractions with and
// without carrier sense for configurable transmitter counts. The -load
// mode goes beyond the paper: it drives a live Network with Poisson
// offered load per node and reports delivered goodput, latency
// percentiles, collision fraction and scheduler counters for one
// offered-load point (the sweep lives in `aquabench -macload`);
// -async drives the same load fire-and-forget through the per-node
// transmit queues instead of one blocking goroutine per message. The
// -relay mode routes a bulk payload down a multi-hop relay line —
// store-and-forward over the carrier-sense MAC, per-packet band
// re-adaptation, per-hop progress — and reports end-to-end goodput
// and latency (the sweep lives in `aquabench -multihop`); -pipelined
// runs the transfer over per-relay transmit queues so packets overlap
// on non-interfering hops, and -persist/-adaptive-backoff pick the
// p-persistent slotted MAC and airtime-scaled backoff quanta. The -scale
// mode builds a harbor-scale deployment — a pod lattice sized by
// -pods-x/-pods-y/-podsize, spatially reusing the 60-tone space under
// a bounded carrier-sense range — and relays cross-harbor messages,
// reporting delivery counts and the build-out/routing/driving wall
// costs (the sweep lives in `aquabench -scale`). The -stream mode
// opens a reliable selective-repeat ARQ stream over a single link and
// reports delivery, retransmission and goodput accounting; -image
// sends an AquaScope-style progressive image (CRC-8 per block) over a
// stream, a relay line (-hops) or concurrent streams (-streams) and
// reports image goodput and time-to-first-usable-preview (the sweeps
// live in `aquabench -image`). The -mobility mode drifts a diver
// along a fixed relay line while bulk-transferring in chunks — one
// position epoch per chunk — and reports goodput, motion epochs and
// route repairs (the sweep lives in `aquabench -mobility`). All modes
// run entirely on the public Network API.
//
// Usage:
//
//	aquanet [-tx 3] [-packets 120] [-runs 5] [-seed 1] [-env bridge]
//	        [-csrange 0] [-preamble-aware]
//	aquanet -load [-nodes 8] [-rate 0.05] [-duration 120]
//	        [-mode envelope|waveform] [-no-cs] [-workers 0]
//	        [-async] [-queue 64]
//	        [-seed 1] [-env bridge] [-csrange 0] [-preamble-aware]
//	aquanet -relay [-hops 3] [-spacing 25] [-bulk 32] [-policy minhop]
//	        [-pipelined] [-queue 64] [-persist 0] [-adaptive-backoff]
//	        [-mode envelope|waveform] [-seed 1] [-env bridge] [-csrange 0]
//	aquanet -scale [-pods-x 5] [-pods-y 5] [-podsize 10] [-msgs 8]
//	        [-workers 0] [-seed 1] [-env bridge] [-csrange 30]
//	aquanet -stream [-range 25] [-bytes 32] [-window 0] [-stream-retries 4]
//	        [-rto 0] [-mode envelope|waveform] [-workers 0] [-seed 1] [-env bridge]
//	aquanet -image [-blocks 16] [-blocksize 7] [-preview 0] [-hops N]
//	        [-streams 1] [-range 25] [-window 0] [-stream-retries 4] [-rto 0]
//	        [-mode envelope|waveform] [-workers 0] [-seed 1] [-env bridge]
//	aquanet -mobility [-hops 3] [-spacing 25] [-bulk 32] [-chunk 8]
//	        [-drift 1] [-pipelined] [-queue 64] [-workers 0] [-seed 1]
//	        [-env bridge] [-csrange 0]
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"aquago"

	"aquago/internal/channel"
	"aquago/internal/exp"
)

// maxSeed bounds -seed so per-run derived seeds (seed + run*7919)
// cannot overflow, keeping output reproducible across platforms.
const maxSeed = math.MaxInt64 / 2

// validateFlags rejects flag combinations that would silently produce
// garbage output: non-finite or negative carrier-sense ranges,
// nonsensical node/packet/run counts (the network fits at most 59
// transmitters beside the receiver), and seeds outside [0, maxSeed].
func validateFlags(nTx, packets, runs int, seed int64, csRange float64) error {
	switch {
	case nTx < 1:
		return errors.New("need at least one transmitter (-tx >= 1)")
	case nTx > 59:
		return fmt.Errorf("-tx %d exceeds the 59 transmitters a 60-device network can hold", nTx)
	case packets < 1:
		return fmt.Errorf("-packets %d: need at least one packet per transmitter", packets)
	case runs < 1:
		return fmt.Errorf("-runs %d: need at least one run", runs)
	}
	return validateCommonFlags(seed, csRange)
}

// validateCommonFlags covers the flags both modes share.
func validateCommonFlags(seed int64, csRange float64) error {
	switch {
	case math.IsNaN(csRange) || math.IsInf(csRange, 0):
		return fmt.Errorf("-csrange %v is not a finite distance", csRange)
	case csRange < 0:
		return fmt.Errorf("-csrange %g: a carrier-sense range cannot be negative (use 0 for unlimited)", csRange)
	case seed < 0 || seed > maxSeed:
		return fmt.Errorf("-seed %d out of range [0, %d]", seed, int64(maxSeed))
	}
	return nil
}

// parseMode maps the -mode flag onto a contention mode.
func parseMode(mode string) (aquago.ContentionMode, error) {
	switch mode {
	case "envelope":
		return aquago.EnvelopeContention, nil
	case "waveform":
		return aquago.WaveformContention, nil
	default:
		return 0, fmt.Errorf("-mode %q: pick envelope or waveform", mode)
	}
}

// buildLoadPoint turns -load flags into a validated measurement point.
// Node-count, rate and duration abuse (over 60 nodes, negative or NaN
// rates, bad durations) is rejected by the point's own Validate, so
// the CLI and the harness cannot drift apart on what is runnable.
func buildLoadPoint(nodes int, rate, duration float64, mode string, noCS, preambleAware bool,
	workers int, async bool, queueCap int, seed int64, csRange float64,
	env aquago.Environment) (exp.MacLoadPoint, error) {
	if err := validateCommonFlags(seed, csRange); err != nil {
		return exp.MacLoadPoint{}, err
	}
	m, err := parseMode(mode)
	if err != nil {
		return exp.MacLoadPoint{}, err
	}
	if workers < 0 {
		return exp.MacLoadPoint{}, fmt.Errorf("-workers %d: use 0 for one per core", workers)
	}
	if !async && queueCap != aquago.DefaultTxQueueCap {
		return exp.MacLoadPoint{}, fmt.Errorf("-queue %d only matters with -async", queueCap)
	}
	p := exp.MacLoadPoint{
		Pods:          1,
		PodSize:       nodes,
		RateHz:        rate,
		DurationS:     duration,
		Mode:          m,
		CarrierSense:  !noCS,
		PreambleAware: preambleAware,
		CSRangeM:      csRange,
		Seed:          seed,
		Retries:       -1,
		Workers:       workers,
		Env:           env,
	}
	if async {
		p.Queued = true
		p.QueueCap = queueCap
	}
	if err := p.Validate(); err != nil {
		return exp.MacLoadPoint{}, err
	}
	return p, nil
}

// buildScalePoint turns -scale flags into a validated harbor point.
// Lattice, pod-size, message-count and range abuse is rejected by the
// point's own Validate, shared with the scale harness. A -csrange of 0
// maps onto the harness default (30 m): an unlimited range cannot
// reuse tones, so harbor scale requires a bound.
func buildScalePoint(podsX, podsY, podSize, msgs, workers int, seed int64,
	csRange float64, env aquago.Environment) (exp.ScalePoint, error) {
	if err := validateCommonFlags(seed, csRange); err != nil {
		return exp.ScalePoint{}, err
	}
	if workers < 0 {
		return exp.ScalePoint{}, fmt.Errorf("-workers %d: use 0 for one per core", workers)
	}
	p := exp.ScalePoint{
		PodsX:    podsX,
		PodsY:    podsY,
		PodSize:  podSize,
		CSRangeM: csRange,
		Msgs:     msgs,
		Seed:     seed,
		Retries:  -1,
		Workers:  workers,
		Env:      env,
	}
	if err := p.Validate(); err != nil {
		return exp.ScalePoint{}, err
	}
	return p, nil
}

// buildStreamPoint turns -stream flags into a validated stream
// measurement point. Window, retry-budget and timer abuse (windows
// outside [1, MaxStreamWindow], zero retries, NaN quanta) is rejected
// by the point's own Validate, shared with the image harness.
func buildStreamPoint(rangeM float64, bytes, window, retries int, rto float64,
	mode string, workers int, seed int64, env aquago.Environment) (exp.StreamPoint, error) {
	if err := validateCommonFlags(seed, 0); err != nil {
		return exp.StreamPoint{}, err
	}
	m, err := parseMode(mode)
	if err != nil {
		return exp.StreamPoint{}, err
	}
	if workers < 0 {
		return exp.StreamPoint{}, fmt.Errorf("-workers %d: use 0 for one per core", workers)
	}
	p := exp.StreamPoint{
		RangeM:  rangeM,
		Bytes:   bytes,
		Window:  window,
		Retries: retries,
		RTOS:    rto,
		Mode:    m,
		Seed:    seed,
		Workers: workers,
		Env:     env,
	}
	if err := p.Validate(); err != nil {
		return exp.StreamPoint{}, err
	}
	return p, nil
}

// buildImagePoint turns -image flags into a validated progressive
// image point. Block geometry, preview thresholds, the hops/streams
// axis clash and ARQ knob abuse are rejected by the point's own
// Validate, shared with the image harness.
func buildImagePoint(blocks, blockBytes, preview, hops, streams int,
	rangeM float64, window, retries int, rto float64,
	mode string, workers int, seed int64, env aquago.Environment) (exp.ImagePoint, error) {
	if err := validateCommonFlags(seed, 0); err != nil {
		return exp.ImagePoint{}, err
	}
	m, err := parseMode(mode)
	if err != nil {
		return exp.ImagePoint{}, err
	}
	if workers < 0 {
		return exp.ImagePoint{}, fmt.Errorf("-workers %d: use 0 for one per core", workers)
	}
	p := exp.ImagePoint{
		Blocks:        blocks,
		BlockBytes:    blockBytes,
		PreviewBlocks: preview,
		Hops:          hops,
		Streams:       streams,
		RangeM:        rangeM,
		Window:        window,
		Retries:       retries,
		RTOS:          rto,
		Mode:          m,
		Seed:          seed,
		Workers:       workers,
		Env:           env,
	}
	if err := p.Validate(); err != nil {
		return exp.ImagePoint{}, err
	}
	return p, nil
}

// parsePolicy maps the -policy flag onto a routing policy.
func parsePolicy(policy string) (aquago.RoutingPolicy, error) {
	switch policy {
	case "minhop":
		return aquago.MinHop, nil
	case "minetx":
		return aquago.MinETX, nil
	default:
		return 0, fmt.Errorf("-policy %q: pick minhop or minetx", policy)
	}
}

// buildRelayPoint turns -relay flags into a validated relay
// measurement point. Hop-count, spacing and payload abuse is rejected
// by the point's own Validate, shared with the multihop harness.
func buildRelayPoint(hops int, spacing float64, bulk int, mode, policy string,
	pipelined bool, queueCap int, persist float64, adaptiveBackoff bool,
	seed int64, csRange float64, env aquago.Environment) (exp.MultiHopPoint, error) {
	if err := validateCommonFlags(seed, csRange); err != nil {
		return exp.MultiHopPoint{}, err
	}
	m, err := parseMode(mode)
	if err != nil {
		return exp.MultiHopPoint{}, err
	}
	pol, err := parsePolicy(policy)
	if err != nil {
		return exp.MultiHopPoint{}, err
	}
	if !pipelined && queueCap != aquago.DefaultTxQueueCap {
		return exp.MultiHopPoint{}, fmt.Errorf("-queue %d only matters with -pipelined", queueCap)
	}
	p := exp.MultiHopPoint{
		Hops:            hops,
		SpacingM:        spacing,
		CSRangeM:        csRange,
		PayloadBytes:    bulk,
		Mode:            m,
		Policy:          pol,
		Persist:         persist,
		AdaptiveBackoff: adaptiveBackoff,
		Seed:            seed,
		Retries:         -1,
		Env:             env,
	}
	if pipelined {
		p.Pipelined = true
		p.QueueCap = queueCap
	}
	if err := p.Validate(); err != nil {
		return exp.MultiHopPoint{}, err
	}
	return p, nil
}

// buildMobilityPoint turns -mobility flags into a validated
// drifting-diver measurement point; the point's own Validate (shared
// with the mobility harness) rejects hop/spacing/payload/drift abuse.
func buildMobilityPoint(hops int, spacing float64, bulk, chunk int, drift float64,
	pipelined bool, queueCap, workers int, seed int64, csRange float64,
	env aquago.Environment) (exp.MobilityPoint, error) {
	if err := validateCommonFlags(seed, csRange); err != nil {
		return exp.MobilityPoint{}, err
	}
	if !pipelined && queueCap != aquago.DefaultTxQueueCap {
		return exp.MobilityPoint{}, fmt.Errorf("-queue %d only matters with -pipelined", queueCap)
	}
	p := exp.MobilityPoint{
		Hops:         hops,
		SpacingM:     spacing,
		CSRangeM:     csRange,
		PayloadBytes: bulk,
		ChunkBytes:   chunk,
		DriftSpeedMS: drift,
		Seed:         seed,
		Retries:      -1,
		Env:          env,
		Workers:      workers,
	}
	if pipelined {
		p.Pipelined = true
		p.QueueCap = queueCap
	}
	if err := p.Validate(); err != nil {
		return exp.MobilityPoint{}, err
	}
	return p, nil
}

func main() {
	nTx := flag.Int("tx", 3, "number of transmitters (Fig 19 mode)")
	packets := flag.Int("packets", 120, "packets per transmitter (Fig 19 mode)")
	runs := flag.Int("runs", 5, "independent runs to average (Fig 19 mode)")
	seed := flag.Int64("seed", 1, "base random seed")
	envName := flag.String("env", "bridge", "environment (bridge/park/lake/beach/museum/bay)")
	csRange := flag.Float64("csrange", 0, "carrier-sense audibility range in meters (0 = unlimited)")
	preambleAware := flag.Bool("preamble-aware", false,
		"carrier sense also detects preambles (hears through the silent feedback window, §2.4)")
	load := flag.Bool("load", false, "offered-load mode: drive a live Network with Poisson traffic")
	nodes := flag.Int("nodes", 8, "node count, all offering traffic (-load)")
	rate := flag.Float64("rate", 0.05, "Poisson message rate per node, msg/s (-load)")
	duration := flag.Float64("duration", 120, "arrival window in virtual seconds (-load)")
	mode := flag.String("mode", "envelope", "contention mode: envelope or waveform (-load)")
	noCS := flag.Bool("no-cs", false, "disable carrier sense (-load; Fig 19 mode always runs both)")
	workers := flag.Int("workers", 0, "network scheduler worker slots, 0 = one per core (-load)")
	async := flag.Bool("async", false, "drive the load through the async transmit queues, fire-and-forget (-load)")
	queueCap := flag.Int("queue", aquago.DefaultTxQueueCap,
		"per-node transmit queue capacity (-load -async, -relay -pipelined)")
	relay := flag.Bool("relay", false, "relay mode: route a bulk payload down a multi-hop line")
	pipelined := flag.Bool("pipelined", false, "pipeline the bulk transfer over per-relay transmit queues (-relay)")
	persist := flag.Float64("persist", 0, "p-persistent MAC transmit probability in (0,1], 0 = classic backoff (-relay)")
	adaptiveBackoff := flag.Bool("adaptive-backoff", false, "scale MAC backoff quanta to the adapted band's airtime (-relay)")
	hops := flag.Int("hops", 3, "relay path length in hops (-relay)")
	spacing := flag.Float64("spacing", 25, "distance between adjacent relay nodes in meters (-relay)")
	bulk := flag.Int("bulk", 32, "bulk payload size in bytes (-relay)")
	policy := flag.String("policy", "minhop", "routing policy: minhop or minetx (-relay)")
	scale := flag.Bool("scale", false, "scale mode: build a harbor-sized pod lattice and relay cross-harbor traffic")
	podsX := flag.Int("pods-x", 5, "pod lattice columns (-scale)")
	podsY := flag.Int("pods-y", 5, "pod lattice rows (-scale)")
	podSize := flag.Int("podsize", 10, "devices per pod, 1..15 (-scale)")
	msgs := flag.Int("msgs", 8, "cross-harbor messages to relay (-scale)")
	stream := flag.Bool("stream", false, "stream mode: reliable selective-repeat ARQ transfer over one link")
	image := flag.Bool("image", false, "image mode: progressive image transmission over a stream, relay line or concurrent streams")
	rangeM := flag.Float64("range", 25, "link length / hop spacing in meters (-stream, -image)")
	streamBytes := flag.Int("bytes", 32, "stream payload size in bytes (-stream)")
	window := flag.Int("window", 0, "ARQ sender window in segments, 0 = default (-stream, -image)")
	streamRetries := flag.Int("stream-retries", 4, "per-segment retransmission budget, >= 1 (-stream, -image)")
	rto := flag.Float64("rto", 0, "retransmission backoff quantum in virtual seconds, 0 = adaptive (-stream, -image)")
	blocks := flag.Int("blocks", 16, "image blocks (-image)")
	blockSize := flag.Int("blocksize", 7, "bytes per image block before its CRC-8 trailer (-image)")
	preview := flag.Int("preview", 0, "blocks needed for a usable preview, 0 = a quarter of the image (-image)")
	streams := flag.Int("streams", 1, "concurrent image streams through one pod (-image)")
	mobility := flag.Bool("mobility", false, "mobility mode: drift a diver along a relay line while bulk-transferring")
	drift := flag.Float64("drift", 1, "diver drift speed in m/s, 0 = static baseline (-mobility)")
	chunk := flag.Int("chunk", 8, "bulk chunk size in bytes, one motion epoch per chunk (-mobility)")
	flag.Parse()

	env, ok := channel.ByName(*envName)
	if !ok {
		fmt.Fprintf(os.Stderr, "aquanet: unknown environment %q\n", *envName)
		os.Exit(1)
	}
	modes := 0
	for _, on := range []bool{*relay, *load, *scale, *stream, *image, *mobility} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fatal(errors.New("pick one of -relay, -load, -scale, -stream, -image and -mobility"))
	}
	if *mobility {
		pt, err := buildMobilityPoint(*hops, *spacing, *bulk, *chunk, *drift,
			*pipelined, *queueCap, *workers, *seed, *csRange, env)
		if err != nil {
			fatal(err)
		}
		runMobility(pt, env.Name)
		return
	}
	if *stream {
		pt, err := buildStreamPoint(*rangeM, *streamBytes, *window, *streamRetries, *rto,
			*mode, *workers, *seed, env)
		if err != nil {
			fatal(err)
		}
		runStream(pt, env.Name)
		return
	}
	if *image {
		// -hops opts the image onto the relay line; unset, it rides a
		// direct stream (the -relay default of 3 must not leak in).
		imageHops := 1
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "hops" {
				imageHops = *hops
			}
		})
		pt, err := buildImagePoint(*blocks, *blockSize, *preview, imageHops, *streams,
			*rangeM, *window, *streamRetries, *rto, *mode, *workers, *seed, env)
		if err != nil {
			fatal(err)
		}
		runImage(pt, env.Name)
		return
	}
	if *scale {
		pt, err := buildScalePoint(*podsX, *podsY, *podSize, *msgs, *workers, *seed, *csRange, env)
		if err != nil {
			fatal(err)
		}
		runScale(pt, env.Name)
		return
	}
	if *relay {
		pt, err := buildRelayPoint(*hops, *spacing, *bulk, *mode, *policy,
			*pipelined, *queueCap, *persist, *adaptiveBackoff, *seed, *csRange, env)
		if err != nil {
			fatal(err)
		}
		runRelay(pt, env.Name)
		return
	}
	if *load {
		pt, err := buildLoadPoint(*nodes, *rate, *duration, *mode, *noCS, *preambleAware,
			*workers, *async, *queueCap, *seed, *csRange, env)
		if err != nil {
			fatal(err)
		}
		runLoad(pt, env.Name)
		return
	}
	if err := validateFlags(*nTx, *packets, *runs, *seed, *csRange); err != nil {
		fatal(err)
	}
	runFig19(*nTx, *packets, *runs, *seed, *csRange, *preambleAware, env)
}

// runLoad measures one offered-load point and prints the same numbers
// the macload harness tabulates.
func runLoad(pt exp.MacLoadPoint, envName string) {
	modeName := "envelope"
	if pt.Mode == aquago.WaveformContention {
		modeName = "waveform"
	}
	sensing := "carrier sense"
	switch {
	case !pt.CarrierSense:
		sensing = "no carrier sense"
	case pt.PreambleAware:
		sensing = "preamble-aware carrier sense"
	}
	driver := "blocking sends"
	if pt.Queued {
		driver = fmt.Sprintf("async transmit queues (cap %d)", pt.QueueCap)
	}
	fmt.Printf("Offered-load simulation: %d nodes, %.3g msg/s/node over %.4g s, %s, %s mode, %s, %s\n",
		pt.PodSize, pt.RateHz, pt.DurationS, envName, modeName, sensing, driver)
	res, err := exp.RunMacLoadPoint(pt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("offered     %6d msgs %10.2f bps\n", res.OfferedMsgs, res.OfferedBPS)
	fmt.Printf("goodput     %6d msgs %10.2f bps  (makespan %.1f s)\n",
		res.DeliveredMsgs, res.GoodputBPS, res.MakespanS)
	fmt.Printf("latency     p50 %.2f s   p90 %.2f s   p99 %.2f s\n",
		res.LatencyP50S, res.LatencyP90S, res.LatencyP99S)
	fmt.Printf("losses      %d busy-drops, %d unacked, collisions %.1f%%\n",
		res.BusyDrops, res.NoACKs, 100*res.CollisionFraction)
	util := 0.0
	if res.MakespanS > 0 {
		util = res.Sched.AirtimeS / res.MakespanS
	}
	fmt.Printf("scheduler   %d granted, %d committed, airtime %.1f s (util %.0f%%), peak concurrency %d on %d workers, conflict width %d\n",
		res.Sched.Granted, res.Sched.Committed, res.Sched.AirtimeS, 100*util,
		res.Sched.MaxConcurrent, res.Sched.Workers, res.ConflictWidth)
}

// runRelay measures one bulk relay transfer, printing per-hop
// progress as the payload store-and-forwards down the line.
func runRelay(pt exp.MultiHopPoint, envName string) {
	modeName := "envelope"
	if pt.Mode == aquago.WaveformContention {
		modeName = "waveform"
	}
	transfer := "store-and-forward"
	if pt.Pipelined {
		transfer = fmt.Sprintf("pipelined (queue cap %d)", pt.QueueCap)
	}
	fmt.Printf("Relay simulation: %d bytes over %d hops (%g m spacing), %s, %s mode, %v routing, %s\n",
		pt.PayloadBytes, pt.Hops, pt.SpacingM, envName, modeName, pt.Policy, transfer)
	// Per-hop progress: one line per completed hop exchange (the data
	// stage carries the band the packet re-adapted onto).
	pt.Trace = aquago.TraceFunc(func(ev aquago.StageEvent) {
		if ev.Stage != aquago.StageData {
			return
		}
		status := "lost"
		if ev.OK {
			status = "ok"
		}
		fmt.Printf("  pkt %2d/%d  hop %d/%d  data %-4s  band [%d..%d]\n",
			ev.BulkPkt+1, ev.BulkPkts, ev.Hop+1, ev.PathHops, status, ev.Band.Lo, ev.Band.Hi)
	})
	res, err := exp.RunMultiHopPoint(pt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("delivered   %d/%d packets (%d attempts) over %d hops\n",
		res.DeliveredPackets, res.Packets, res.Attempts, res.Hops)
	fmt.Printf("end-to-end  %.2f s latency, %.2f bps goodput\n", res.LatencyS, res.GoodputBPS)
}

// runMobility drifts the diver down the relay line and prints the
// same numbers the mobility harness tabulates.
func runMobility(pt exp.MobilityPoint, envName string) {
	transfer := "store-and-forward with in-flight route splices"
	if pt.Pipelined {
		transfer = fmt.Sprintf("pipelined (queue cap %d), fresh route per chunk", pt.QueueCap)
	}
	fmt.Printf("Mobility simulation: %d bytes in %d-byte chunks over %d hops (%g m spacing), diver drifting %g m/s, %s, %s\n",
		pt.PayloadBytes, pt.ChunkBytes, pt.Hops, pt.SpacingM, pt.DriftSpeedMS, envName, transfer)
	res, err := exp.RunMobilityPoint(pt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("delivered   %d/%d packets (%d attempts, %d retries) in %d chunks\n",
		res.DeliveredPackets, res.Packets, res.Attempts, res.Retries, res.Chunks)
	fmt.Printf("motion      %d position epoch(s), %d route repair(s), route %d -> %d hops\n",
		res.Epochs, res.Reroutes, res.InitialHops, res.FinalHops)
	fmt.Printf("end-to-end  %.2f s latency, %.2f bps goodput\n", res.LatencyS, res.GoodputBPS)
}

// runScale builds one harbor point and prints the same numbers the
// scale harness tabulates, splitting the deterministic traffic outcome
// from this machine's wall-clock costs.
func runScale(pt exp.ScalePoint, envName string) {
	nodes := pt.PodsX * pt.PodsY * pt.PodSize
	cs := pt.CSRangeM
	if cs == 0 {
		cs = 30
	}
	fmt.Printf("Harbor simulation: %dx%d pods of %d devices (%d nodes), %g m carrier sense, %s\n",
		pt.PodsX, pt.PodsY, pt.PodSize, nodes, cs, envName)
	res, err := exp.RunScalePoint(pt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("delivered   %d/%d cross-harbor messages over %d total hops (makespan %.1f s)\n",
		res.Delivered, res.Msgs, res.TotalHops, res.MakespanS)
	fmt.Printf("losses      %d busy-drops, %d unacked\n", res.BusyDrops, res.NoACKs)
	fmt.Printf("wall costs  join %.2f s, route %.2f s, drive %.2f s\n",
		res.JoinWallS, res.RouteWallS, res.DriveWallS)
	fmt.Printf("scheduler   %d granted, %d committed (%.1f exchanges/wall-s), airtime %.1f s, %d conflict edges\n",
		res.Sched.Granted, res.Sched.Committed, res.CommittedPerWallSec,
		res.Sched.AirtimeS, res.Sched.ConflictEdges)
}

// runStream measures one reliable stream transfer and prints the ARQ
// accounting the image harness aggregates.
func runStream(pt exp.StreamPoint, envName string) {
	modeName := "envelope"
	if pt.Mode == aquago.WaveformContention {
		modeName = "waveform"
	}
	window := pt.Window
	if window == 0 {
		window = aquago.DefaultStreamWindow
	}
	fmt.Printf("Stream simulation: %d bytes over %g m, %s, %s mode, window %d, %d retransmission(s) per segment\n",
		pt.Bytes, pt.RangeM, envName, modeName, window, pt.Retries)
	res, err := exp.RunStreamPoint(pt)
	if err != nil {
		fatal(err)
	}
	outcome := "complete"
	if res.Degraded {
		outcome = "degraded (budget exhausted; delivered prefix kept)"
	}
	fmt.Printf("delivered   %d/%d bytes in order, %s\n", res.DeliveredBytes, res.Bytes, outcome)
	fmt.Printf("arq         %d segments, %d attempts, %d retransmit(s), %d duplicate(s) absorbed\n",
		res.Segments, res.Attempts, res.Retransmits, res.DupSegments)
	fmt.Printf("end-to-end  first byte %.2f s, %.2f s latency, %.2f bps goodput\n",
		res.FirstByteS, res.LatencyS, res.GoodputBPS)
}

// runImage measures one progressive image transmission and prints the
// goodput and preview numbers the image harness sweeps.
func runImage(pt exp.ImagePoint, envName string) {
	modeName := "envelope"
	if pt.Mode == aquago.WaveformContention {
		modeName = "waveform"
	}
	transport := "direct stream"
	switch {
	case pt.Hops > 1:
		transport = fmt.Sprintf("%d-hop pipelined relay", pt.Hops)
	case pt.Streams > 1:
		transport = fmt.Sprintf("%d concurrent streams", pt.Streams)
	}
	fmt.Printf("Image simulation: %d blocks x %d B (+CRC-8) over %g m, %s, %s mode, %s\n",
		pt.Blocks, pt.BlockBytes, pt.RangeM, envName, modeName, transport)
	res, err := exp.RunImagePoint(pt)
	if err != nil {
		fatal(err)
	}
	outcome := "complete"
	if res.Degraded {
		outcome = "degraded to the verified prefix"
	}
	totalBlocks := res.Blocks
	if pt.Streams > 1 {
		totalBlocks *= pt.Streams
	}
	fmt.Printf("image       %d/%d blocks usable, %d bad CRC, %s\n",
		res.UsableBlocks, totalBlocks, res.BadCRCBlocks, outcome)
	fmt.Printf("transport   %d bytes delivered, %d attempts, %d retransmit(s), %d duplicate(s)\n",
		res.DeliveredBytes, res.Attempts, res.Retransmits, res.DupSegments)
	preview := "never"
	if res.FirstPreviewS > 0 {
		preview = fmt.Sprintf("%.2f s", res.FirstPreviewS)
	}
	fmt.Printf("end-to-end  first usable preview %s, %.2f s total, %.2f bps image goodput\n",
		preview, res.TotalS, res.GoodputBPS)
}

// runFig19 is the original batch contention mode.
func runFig19(nTx, packets, runs int, seed int64, csRange float64, preambleAware bool, env aquago.Environment) {
	// One network per run: a receiver at the origin plus nTx
	// transmitters 5-10 m out (Fig 19's deployment).
	build := func() (*aquago.Network, []*aquago.Node) {
		net, err := aquago.NewNetwork(env, aquago.WithCSRange(csRange))
		if err != nil {
			fatal(err)
		}
		if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
			fatal(err)
		}
		tx := make([]*aquago.Node, nTx)
		for i := range tx {
			nd, err := net.Join(aquago.DeviceID(i+1),
				aquago.Position{X: 5 + 2.5*float64(i), Y: float64(i), Z: 1})
			if err != nil {
				fatal(err)
			}
			tx[i] = nd
		}
		return net, tx
	}

	fmt.Printf("MAC simulation: %d transmitters + 1 receiver, %d packets each, %s\n",
		nTx, packets, env.Name)
	fmt.Printf("%-16s %12s %12s %10s\n", "mode", "collisions", "packets", "fraction")

	for _, cs := range []bool{false, true} {
		var fracSum float64
		var collided, total int
		for r := 0; r < runs; r++ {
			net, tx := build()
			res := net.SimulateContention(tx, aquago.ContentionConfig{
				CarrierSense:  cs,
				PacketsPerTx:  packets,
				PreambleAware: preambleAware,
				Seed:          seed + int64(r)*7919,
			})
			fracSum += res.CollisionFraction
			for _, c := range res.PerNode {
				collided += c[0]
				total += c[1]
			}
		}
		mode := "no carrier sense"
		if cs {
			mode = "carrier sense"
		}
		fmt.Printf("%-16s %12d %12d %9.1f%%\n", mode, collided, total, 100*fracSum/float64(runs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aquanet:", err)
	os.Exit(1)
}
