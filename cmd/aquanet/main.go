// Command aquanet simulates an underwater network of AquaApp devices
// contending for the acoustic channel, reproducing the paper's MAC
// evaluation (Fig 19): collision fractions with and without carrier
// sense for configurable transmitter counts. It runs entirely on the
// public Network API.
//
// Usage:
//
//	aquanet [-tx 3] [-packets 120] [-runs 5] [-seed 1] [-env bridge]
//	        [-csrange 0] [-preamble-aware]
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"aquago"

	"aquago/internal/channel"
)

// maxSeed bounds -seed so per-run derived seeds (seed + run*7919)
// cannot overflow, keeping output reproducible across platforms.
const maxSeed = math.MaxInt64 / 2

// validateFlags rejects flag combinations that would silently produce
// garbage output: non-finite or negative carrier-sense ranges,
// nonsensical node/packet/run counts (the network fits at most 59
// transmitters beside the receiver), and seeds outside [0, maxSeed].
func validateFlags(nTx, packets, runs int, seed int64, csRange float64) error {
	switch {
	case nTx < 1:
		return errors.New("need at least one transmitter (-tx >= 1)")
	case nTx > 59:
		return fmt.Errorf("-tx %d exceeds the 59 transmitters a 60-device network can hold", nTx)
	case packets < 1:
		return fmt.Errorf("-packets %d: need at least one packet per transmitter", packets)
	case runs < 1:
		return fmt.Errorf("-runs %d: need at least one run", runs)
	case math.IsNaN(csRange) || math.IsInf(csRange, 0):
		return fmt.Errorf("-csrange %v is not a finite distance", csRange)
	case csRange < 0:
		return fmt.Errorf("-csrange %g: a carrier-sense range cannot be negative (use 0 for unlimited)", csRange)
	case seed < 0 || seed > maxSeed:
		return fmt.Errorf("-seed %d out of range [0, %d]", seed, int64(maxSeed))
	}
	return nil
}

func main() {
	nTx := flag.Int("tx", 3, "number of transmitters")
	packets := flag.Int("packets", 120, "packets per transmitter")
	runs := flag.Int("runs", 5, "independent runs to average")
	seed := flag.Int64("seed", 1, "base random seed")
	envName := flag.String("env", "bridge", "environment (bridge/park/lake/beach/museum/bay)")
	csRange := flag.Float64("csrange", 0, "carrier-sense audibility range in meters (0 = unlimited)")
	preambleAware := flag.Bool("preamble-aware", false,
		"carrier sense also detects preambles (hears through the silent feedback window, §2.4)")
	flag.Parse()

	env, ok := channel.ByName(*envName)
	if !ok {
		fmt.Fprintf(os.Stderr, "aquanet: unknown environment %q\n", *envName)
		os.Exit(1)
	}
	if err := validateFlags(*nTx, *packets, *runs, *seed, *csRange); err != nil {
		fmt.Fprintln(os.Stderr, "aquanet:", err)
		os.Exit(1)
	}

	// One network per run: a receiver at the origin plus nTx
	// transmitters 5-10 m out (Fig 19's deployment).
	build := func() (*aquago.Network, []*aquago.Node) {
		net, err := aquago.NewNetwork(env, aquago.WithCSRange(*csRange))
		if err != nil {
			fatal(err)
		}
		if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
			fatal(err)
		}
		tx := make([]*aquago.Node, *nTx)
		for i := range tx {
			nd, err := net.Join(aquago.DeviceID(i+1),
				aquago.Position{X: 5 + 2.5*float64(i), Y: float64(i), Z: 1})
			if err != nil {
				fatal(err)
			}
			tx[i] = nd
		}
		return net, tx
	}

	fmt.Printf("MAC simulation: %d transmitters + 1 receiver, %d packets each, %s\n",
		*nTx, *packets, env.Name)
	fmt.Printf("%-16s %12s %12s %10s\n", "mode", "collisions", "packets", "fraction")

	for _, cs := range []bool{false, true} {
		var fracSum float64
		var collided, total int
		for r := 0; r < *runs; r++ {
			net, tx := build()
			res := net.SimulateContention(tx, aquago.ContentionConfig{
				CarrierSense:  cs,
				PacketsPerTx:  *packets,
				PreambleAware: *preambleAware,
				Seed:          *seed + int64(r)*7919,
			})
			fracSum += res.CollisionFraction
			for _, c := range res.PerNode {
				collided += c[0]
				total += c[1]
			}
		}
		mode := "no carrier sense"
		if cs {
			mode = "carrier sense"
		}
		fmt.Printf("%-16s %12d %12d %9.1f%%\n", mode, collided, total, 100*fracSum/float64(*runs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aquanet:", err)
	os.Exit(1)
}
