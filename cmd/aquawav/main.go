// Command aquawav encodes AquaApp messages into WAV files and decodes
// them back — the offline, fixed-band messaging path. A phone playing
// the produced file through its speaker transmits a real AquaApp
// packet.
//
// Usage:
//
//	aquawav send -out msg.wav -to 9 -msg "OK?" [-msg2 "Go up"] [-band 5:40]
//	aquawav recv -in msg.wav -self 9
//	aquawav list [-category safety] [-search air]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aquago"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "send":
		err = cmdSend(os.Args[2:])
	case "recv":
		err = cmdRecv(os.Args[2:])
	case "list":
		err = cmdList(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aquawav:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  aquawav send -out msg.wav -to ID -msg TEXT [-msg2 TEXT] [-band LO:HI]
  aquawav recv -in msg.wav -self ID
  aquawav list [-category NAME] [-search QUERY]`)
}

func parseBand(s string) (lo, hi int, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("band %q not in LO:HI form", s)
	}
	lo, err = strconv.Atoi(parts[0])
	if err != nil {
		return
	}
	hi, err = strconv.Atoi(parts[1])
	return
}

func cmdSend(args []string) error {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	out := fs.String("out", "message.wav", "output WAV path")
	to := fs.Int("to", 0, "destination device ID (0-59)")
	msg := fs.String("msg", "", "message text (exact, see 'aquawav list')")
	msg2 := fs.String("msg2", "", "optional second message text")
	band := fs.String("band", "", "fixed band LO:HI in subcarrier indices (default full)")
	fs.Parse(args)
	if *msg == "" {
		return fmt.Errorf("-msg is required")
	}
	m1, ok := aquago.LookupMessage(*msg)
	if !ok {
		return fmt.Errorf("unknown message %q (try 'aquawav list -search ...')", *msg)
	}
	second := uint8(aquago.NoMessage)
	if *msg2 != "" {
		m2, ok := aquago.LookupMessage(*msg2)
		if !ok {
			return fmt.Errorf("unknown message %q", *msg2)
		}
		second = m2.ID
	}
	var opts []aquago.ModemOption
	if *band != "" {
		lo, hi, err := parseBand(*band)
		if err != nil {
			return err
		}
		opts = append(opts, aquago.WithBand(lo, hi))
	}
	modem, err := aquago.NewModem(opts...)
	if err != nil {
		return err
	}
	if err := modem.EncodeToWAV(*out, aquago.DeviceID(*to), m1.ID, second); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %q", *out, m1.Text)
	if second != aquago.NoMessage {
		fmt.Printf(" + %q", *msg2)
	}
	fmt.Printf(" -> device %d, band %v, %.0f bps\n", *to, modem.Band(), modem.BitrateBPS())
	return nil
}

func cmdRecv(args []string) error {
	fs := flag.NewFlagSet("recv", flag.ExitOnError)
	in := fs.String("in", "", "input WAV path")
	self := fs.Int("self", -1, "own device ID (-1 = accept any)")
	band := fs.String("band", "", "fixed band LO:HI (must match the sender)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	var opts []aquago.ModemOption
	if *band != "" {
		lo, hi, err := parseBand(*band)
		if err != nil {
			return err
		}
		opts = append(opts, aquago.WithBand(lo, hi))
	}
	modem, err := aquago.NewModem(opts...)
	if err != nil {
		return err
	}
	msgs, err := modem.DecodeFromWAV(*in, aquago.DeviceID(*self))
	if err != nil {
		return err
	}
	for _, m := range msgs {
		fmt.Printf("[%s] %s\n", m.Category, m.Text)
	}
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	category := fs.String("category", "", "filter by category name")
	search := fs.String("search", "", "filter by substring")
	common := fs.Bool("common", false, "only the 20 most common signals")
	fs.Parse(args)
	msgs := aquago.Codebook()
	if *common {
		msgs = aquago.CommonMessages()
	}
	if *search != "" {
		msgs = aquago.SearchMessages(*search)
	}
	for _, m := range msgs {
		if *category != "" && m.Category.String() != *category {
			continue
		}
		star := " "
		if m.Common {
			star = "*"
		}
		fmt.Printf("%3d %s [%-12s] %s\n", m.ID, star, m.Category, m.Text)
	}
	return nil
}
