// Command aqualint is the multichecker driver for aquago's static
// determinism and concurrency analyzers (internal/analysis): mapiter,
// wallclock, lockorder and chansend.
//
// Standalone, it loads packages itself (offline, via `go list
// -export` and the compiler's export data — the module deliberately
// has no golang.org/x/tools dependency):
//
//	go run ./cmd/aqualint ./...
//	go run ./cmd/aqualint -list          # describe the analyzers
//
// It also speaks the go vet vettool protocol (-V=full, -flags, and
// *.cfg invocations), so the suite runs inside ordinary vet
// workflows, picking up test-variant packages too:
//
//	go build -o /tmp/aqualint ./cmd/aqualint
//	go vet -vettool=/tmp/aqualint ./...
//
// Exit status: 0 clean, 1 findings (standalone), 2 findings (vettool,
// matching cmd/vet), 3 operational error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"aquago/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("aqualint", flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (go vet handshake; use -V=full)")
	printFlags := fs.Bool("flags", false, "print analyzer flags as JSON (go vet handshake)")
	list := fs.Bool("list", false, "describe the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: aqualint [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(args)

	switch {
	case *version != "":
		// go vet runs `aqualint -V=full` and caches on the reported
		// fingerprint; hash the executable like x/tools' unitchecker.
		return printVersion()
	case *printFlags:
		// go vet runs `aqualint -flags` to learn the analyzer flags it
		// may forward. The suite is not individually toggleable: every
		// invariant holds or the build is wrong.
		fmt.Println("[]")
		return 0
	case *list:
		for _, a := range analysis.All {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0])
	}
	return runStandalone(rest)
}

// runStandalone loads the named patterns (default ./...) and reports
// findings in file:line:col form.
func runStandalone(patterns []string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqualint:", err)
		return 3
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqualint:", err)
		return 3
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "aqualint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON cmd/go hands a vettool per package (the
// fields this driver consumes; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package unit under the go vet protocol.
func runVetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqualint:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "aqualint: parsing %s: %v\n", cfgFile, err)
		return 3
	}
	// The vet driver requires the facts file to exist even though the
	// suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("aqualint-no-facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "aqualint:", err)
			return 3
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := analysis.ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		goFiles = append(goFiles, f)
	}
	// Import paths of test variants arrive as "pkg [pkg.test]";
	// analyzers scope on the plain path.
	path, _, _ := strings.Cut(cfg.ImportPath, " ")
	pkg, err := analysis.CheckFiles(path, fset, goFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "aqualint:", err)
		return 3
	}
	diags, err := analysis.RunPackage(pkg, analysis.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqualint:", err)
		return 3
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printVersion emits the go vet tool-identity handshake line.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqualint:", err)
		return 3
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqualint:", err)
		return 3
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "aqualint:", err)
		return 3
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), h.Sum(nil))
	return 0
}
