package aquago

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"aquago/internal/mac"
	"aquago/internal/modem"
	"aquago/internal/phy"
	"aquago/internal/sim"
)

// joinStaggerS bounds the default seed-derived initial clock stagger
// drawn at Join (see WithNodeClock).
const joinStaggerS = 1.5

// MaxNetworkDevices bounds the device IDs a Network accepts (Join).
// The on-air address space is still the modem's 60 ID-tone
// subcarriers (phy.MaxDeviceID) — the paper's hard limit — but a
// network reuses it spatially: a node's tone is its ID modulo 60, and
// Join only requires the tone to be unique within carrier-sense
// audibility, the distance inside which two exchanges could ever
// confuse addresses. Distant pods therefore recycle tones the way
// cellular systems recycle frequencies, and a bounded-audibility
// deployment scales to thousands of devices; with an unlimited
// carrier-sense range every node hears every other, so the effective
// cap remains 60, as in the paper's pool.
const MaxNetworkDevices = 1 << 16

// Position locates a node in meters; Z is depth below the surface.
type Position = sim.Position

// ContentionConfig parameterizes a batch contention simulation
// (SimulateContention); zero values take the paper defaults (120
// packets per transmitter, 0.6 s packets, 3.2 s mean gap, the
// energy-only quiet window).
type ContentionConfig = mac.Config

// ContentionResult reports a batch contention simulation: per-node
// (collided, sent) counts, the overall collision fraction, and the
// simulated duration.
type ContentionResult = mac.Result

// ContentionMode selects how concurrent Node.Send exchanges interact
// on the shared medium (WithContentionMode).
type ContentionMode int

const (
	// EnvelopeContention is the default fast path: overlapping
	// transmissions are *counted* as collisions by the envelope medium
	// (carrier sense, CollisionStats — the paper's Fig 19 accounting)
	// but each exchange still decodes over its own clean pair channel.
	// Cheap, and byte-identical to the pre-scheduler behavior.
	EnvelopeContention ContentionMode = iota
	// WaveformContention routes every exchange through sample-level
	// superposition (sim.WaveBank): each protocol stage's waveform is
	// registered on the air, and every receive window is the sum of
	// the direct signal and all audible concurrent transmissions,
	// convolved through their pairwise channels. Overlaps corrupt the
	// actual samples, so collisions surface as decode failures
	// (ErrNoACK with Result showing the lost stage) instead of only
	// counter increments. Several times costlier per exchange.
	WaveformContention
)

// ExchangeEvent describes one committed transmission attempt: who
// transmitted to whom, when it went on the air, and its actual on-air
// duration (known only after the exchange, once the feedback band —
// and with it the data-section length — is fixed). Aggregate airtime
// is also available through SchedulerStats.
type ExchangeEvent struct {
	// Tx and Rx are the attempt's endpoints.
	Tx, Rx DeviceID
	// StartS is the MAC-granted transmit time (virtual seconds).
	StartS float64
	// AirtimeS is the attempt's actual on-air duration.
	AirtimeS float64
}

// SIRSample is the signal-to-interference accounting of one
// waveform-mode receive window: the direct signal's power at the
// receiver's ear versus the summed power of every audible concurrent
// transmission mixed into the same window (both after per-pair channel
// convolution and propagation, before ambient noise). Only emitted
// under WithContentionMode(WaveformContention).
type SIRSample struct {
	// Tx and Rx are the window's endpoints (Rx is listening).
	Tx, Rx DeviceID
	// AtS is the window start at the receiver (virtual seconds).
	AtS float64
	// SignalPower is the direct signal's mean-square power over the
	// window; InterferencePower is the summed interferers' (0 when the
	// window was clean).
	SignalPower, InterferencePower float64
}

// SIRdB returns the window's signal-to-interference ratio in dB
// (+Inf for a clean window).
func (s SIRSample) SIRdB() float64 {
	if s.InterferencePower <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(s.SignalPower/s.InterferencePower)
}

// NetworkOption customizes NewNetwork.
type NetworkOption func(*networkConfig)

type networkConfig struct {
	seed            int64
	csRangeM        float64
	carrierSense    bool
	preambleAware   bool
	accessDeadlineS float64
	retries         int
	trace           Trace
	mode            ContentionMode
	workers         int
	routing         RoutingPolicy
	exchangeProbe   func(ExchangeEvent)
	sirProbe        func(SIRSample)
	txQueueCap      int
	deliveryBuffer  int
	persist         float64
	adaptiveBackoff bool
	bulkRetries     int
	bulkRetriesSet  bool
}

// WithNetworkSeed fixes the random realization of every channel and
// every node's MAC backoff draws (default 1).
func WithNetworkSeed(seed int64) NetworkOption {
	return func(c *networkConfig) { c.seed = seed }
}

// WithCSRange bounds carrier-sense audibility to the given distance
// in meters (default 0 = unlimited; real deployments hear well past
// the 5-10 m node spacing).
func WithCSRange(meters float64) NetworkOption {
	return func(c *networkConfig) { c.csRangeM = meters }
}

// WithoutCarrierSense disables the MAC: nodes transmit as soon as
// they are ready (the paper's Fig 19 baseline).
func WithoutCarrierSense() NetworkOption {
	return func(c *networkConfig) { c.carrierSense = false }
}

// WithPreambleAwareSense upgrades carrier sense with preamble
// detection (§2.4's suggested improvement): an exchange's silent
// feedback window still reads as busy, eliminating the residual
// collisions of energy-only sensing.
func WithPreambleAwareSense() NetworkOption {
	return func(c *networkConfig) { c.preambleAware = true }
}

// WithAccessDeadline bounds how long (in virtual seconds) a Send may
// wait for the MAC to grant the channel before failing with
// ErrChannelBusy (default 300; <= 0 waits without bound).
func WithAccessDeadline(virtualSeconds float64) NetworkOption {
	return func(c *networkConfig) { c.accessDeadlineS = virtualSeconds }
}

// WithNetworkRetries sets every node's extra attempt budget after an
// unacknowledged transmission (default 2).
func WithNetworkRetries(n int) NetworkOption {
	return func(c *networkConfig) { c.retries = n }
}

// WithNetworkTrace installs a stage trace on every node that does not
// carry its own (WithNodeTrace wins per node).
func WithNetworkTrace(t Trace) NetworkOption {
	return func(c *networkConfig) { c.trace = t }
}

// WithContentionMode selects envelope (default) or waveform contention
// — see the ContentionMode constants for the trade-off.
func WithContentionMode(m ContentionMode) NetworkOption {
	return func(c *networkConfig) { c.mode = m }
}

// WithExchangeProbe installs fn, called once per committed
// transmission attempt with its endpoints, granted start time and
// actual on-air airtime. Calls are serialized (never concurrent with
// themselves or a network-wide Trace) but may arrive in any order
// across non-interfering exchanges; fn must return quickly and must
// not call back into the network. Load harnesses use it to turn
// attempt airtimes into latency and utilization without re-deriving
// protocol timing.
func WithExchangeProbe(fn func(ExchangeEvent)) NetworkOption {
	return func(c *networkConfig) { c.exchangeProbe = fn }
}

// WithSIRProbe installs fn, called for every waveform-mode receive
// window with its per-window signal and interference power (see
// SIRSample). No-op under EnvelopeContention, where windows are never
// mixed. The same serialization and no-reentrancy rules as
// WithExchangeProbe apply.
func WithSIRProbe(fn func(SIRSample)) NetworkOption {
	return func(c *networkConfig) { c.sirProbe = fn }
}

// DefaultTxQueueCap is the per-node transmit queue capacity when
// WithTxQueueCapacity is not given.
const DefaultTxQueueCap = 64

// WithTxQueueCapacity bounds every node's async transmit queue
// (SendAsync/Enqueue) to cap jobs across all priorities (default
// DefaultTxQueueCap). A full queue rejects new jobs with ErrQueueFull
// — enqueueing never blocks, so the caller owns the backpressure
// policy. cap must be at least 1 (NewNetwork errors otherwise).
func WithTxQueueCapacity(cap int) NetworkOption {
	return func(c *networkConfig) { c.txQueueCap = cap }
}

// WithDeliveryBuffer sizes the Deliveries channel (default
// DefaultTxQueueCap). Completions beyond the buffer stall the
// network's delivery pump — never the transmit daemons — until the
// consumer catches up. n must be at least 1 (NewNetwork errors
// otherwise).
func WithDeliveryBuffer(n int) NetworkOption {
	return func(c *networkConfig) { c.deliveryBuffer = n }
}

// WithPPersistence switches every node's MAC from the paper's
// multi-packet random backoff to p-persistent slotted access: a node
// waits for the channel to fall idle, then transmits with probability
// p at each slot boundary (one sense interval), deferring one slot
// otherwise. The paper's backoff grows by a whole packet duration on
// every busy poll — a heavy tax behind a busy relay chain, where
// p-persistence re-contends within a few slots of the channel
// clearing. p must be in (0, 1] (NewNetwork errors otherwise).
// Changing the MAC discipline changes every grant time, so results
// are not comparable point-for-point with the default MAC (they
// remain deterministic and worker-count invariant).
func WithPPersistence(p float64) NetworkOption {
	return func(c *networkConfig) { c.persist = p }
}

// DefaultBulkRetries is the bulk relay's per-packet-per-hop
// retransmission budget when WithBulkRetries is not given.
const DefaultBulkRetries = 2

// WithBulkRetries sets how many times the bulk relay layer
// (SendBulkVia and the pipelined variant) retransmits one packet's
// hop after a transient failure — a lost ACK or a busy channel —
// before the transfer dies with a *RelayError. Each retransmission
// re-enters the MAC and the conflict-graph scheduler with an
// exponentially backed virtual-clock floor scaled by the node's
// backoff quantum. 0 restores the old abort-on-first-loss behavior;
// n must not be negative (NewNetwork errors otherwise). Default
// DefaultBulkRetries.
func WithBulkRetries(n int) NetworkOption {
	return func(c *networkConfig) { c.bulkRetries, c.bulkRetriesSet = n, true }
}

// WithAdaptiveBackoff scales each node's MAC backoff quantum to its
// last committed attempt's actual on-air duration — the adapted
// band's airtime — instead of the worst-case full-band airtime. A
// node on a good channel then serves proportionally shorter backoffs
// (the carried ROADMAP item). The first attempt, with no adaptation
// history, still uses the conservative full-band quantum. Like
// WithPPersistence this changes grant times (deterministically) and
// so is off by default to keep existing results byte-identical.
func WithAdaptiveBackoff() NetworkOption {
	return func(c *networkConfig) { c.adaptiveBackoff = true }
}

// WithNetworkWorkers bounds how many exchanges may execute
// concurrently on the conflict-graph scheduler (default 0 = one per
// CPU core; 1 serializes every exchange). Only exchanges whose node
// pairs cannot interfere — disjoint nodes, all cross distances beyond
// the carrier-sense range — ever run in parallel, so the knob trades
// wall-clock speed for nothing: results are identical for any worker
// count.
func WithNetworkWorkers(workers int) NetworkOption {
	return func(c *networkConfig) { c.workers = workers }
}

// Network is a shared body of simulated water that contending devices
// inhabit (§2.4 of the paper evaluates up to 60; with a bounded
// carrier-sense range the 60-tone on-air address space is reused
// spatially and the network scales to thousands of nodes — see
// MaxNetworkDevices). It owns:
//
//   - an envelope-mode acoustic medium tracking what is on the air
//     where and when (carrier sense, collision accounting — Fig 19),
//   - a lazily built channel link for every directed node pair,
//     derived from node geometry,
//   - a uniform spatial grid over node positions (cell size = the
//     carrier-sense range) backing audibility adjacency, scheduler
//     conflict edges and route expansion, and
//   - per-node protocol stacks on one shared virtual timeline.
//
// Nodes enter with Join; Node.Send runs the full adaptive protocol
// through the carrier-sense MAC. The two-endpoint SimulatedWater +
// Session API is the 2-node special case of this surface (a Session
// can run over Node.MediumTo's pair medium directly).
//
// All methods are safe for concurrent use. Virtual-time bookkeeping
// (MAC grants, envelope registration, frontiers) is serialized under
// one lock, but the exchanges themselves run on a conflict-graph
// scheduler (see sched.go): sends whose node pairs cannot interfere —
// disjoint nodes, every cross distance beyond the carrier-sense range
// — execute concurrently on a bounded worker pool, while interfering
// sends are ordered deterministically by grant sequence.
type Network struct {
	env Environment
	cfg networkConfig

	mu    sync.Mutex
	med   *sim.Medium
	links *sim.Links
	// bank holds per-stage waveforms for sample-level superposition;
	// nil in envelope mode.
	bank  *sim.WaveBank
	nodes map[DeviceID]*Node
	order []*Node
	// grid is the uniform spatial index over node positions, cell size
	// = carrier-sense range (disabled when the range is unlimited —
	// then everyone is everyone's neighbor and brute force is exact).
	grid *sim.Grid
	// neighbors is the audibility adjacency, per node index, ascending
	// — maintained incrementally at Join from the grid. nil as a whole
	// when the carrier-sense range is unlimited (brute-force mode).
	neighbors [][]int
	// gridScratch is a reusable candidate buffer for grid queries
	// under mu.
	gridScratch []int
	// frontier is the scoped virtual commit frontier, per node index:
	// one sense interval past the latest committed transmission start
	// the node could have heard. Sends resolve in grant order, which
	// need not match virtual-time order; bumping an attempt's ready
	// time to its node's frontier keeps the simulation causal — a send
	// can never start in the already-simulated past, where carrier
	// sense could not have heard transmissions committed after it.
	// Nodes out of carrier-sense range keep independent timelines.
	frontier []float64
	// wcAirtimeS is the worst-case (narrowest-band) exchange airtime
	// across joined nodes — Prune's bound on future durations.
	wcAirtimeS float64
	// Routing caches (route.go): shortest paths (with their policy
	// cost) and ETX edge weights per node-index pair. Entries stay
	// valid until the geometry under them changes: a Join invalidates
	// only the routes the new node could have shortened
	// (noteJoinLocked), a position epoch drops the mover's ETX entries
	// and re-prices routes against its new position (noteMoveLocked),
	// and a Leave drops routes through the departed node
	// (noteLeaveLocked).
	routeCache map[[2]int]cachedRoute
	etxCache   map[[2]int]float64
	// Motion layer state (motion.go): geoEpoch counts applied position
	// epochs (0 = Join-time geometry, the static fast paths), and
	// motionClockS is the monotone virtual time tracks were last
	// evaluated at (AdvanceMotion).
	geoEpoch     uint64
	motionClockS float64

	// Conflict-graph scheduler state (sched.go).
	gateSeq uint64
	tickets []*ticket
	sem     chan struct{}
	running int
	stats   SchedulerStats
	// sincePrune counts attempts admitted since the last log prune;
	// pruning amortizes its O(nodes) bound scan across a batch of
	// admissions (results are prune-schedule independent).
	sincePrune int

	// tx is the async transmit subsystem's shared state (txq.go):
	// per-node priority queues, the deterministic dispatch gate, the
	// transmit daemons and the delivery pump. It has its own lock;
	// the lock order is tx.mu before mu, never the reverse.
	tx txState

	// traceMu serializes the shared network-wide trace across
	// concurrently executing exchanges (see Trace).
	traceMu sync.Mutex
}

// NewNetwork creates an empty network in the given environment.
func NewNetwork(env Environment, opts ...NetworkOption) (*Network, error) {
	cfg := networkConfig{
		seed:            1,
		carrierSense:    true,
		accessDeadlineS: 300,
		retries:         2,
		txQueueCap:      DefaultTxQueueCap,
		deliveryBuffer:  DefaultTxQueueCap,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.mode != EnvelopeContention && cfg.mode != WaveformContention {
		return nil, fmt.Errorf("aquago: unknown contention mode %d", cfg.mode)
	}
	if cfg.routing != MinHop && cfg.routing != MinETX {
		return nil, fmt.Errorf("aquago: unknown routing policy %d", int(cfg.routing))
	}
	if cfg.txQueueCap < 1 {
		return nil, fmt.Errorf("aquago: transmit queue capacity %d must be at least 1", cfg.txQueueCap)
	}
	if cfg.deliveryBuffer < 1 {
		return nil, fmt.Errorf("aquago: delivery buffer %d must be at least 1", cfg.deliveryBuffer)
	}
	if cfg.persist < 0 || cfg.persist > 1 || math.IsNaN(cfg.persist) {
		return nil, fmt.Errorf("aquago: p-persistence %v outside (0, 1]", cfg.persist)
	}
	if !cfg.bulkRetriesSet {
		cfg.bulkRetries = DefaultBulkRetries
	}
	if cfg.bulkRetries < 0 {
		return nil, fmt.Errorf("aquago: bulk retry budget %d must not be negative", cfg.bulkRetries)
	}
	med := sim.New(env)
	med.CSRangeM = cfg.csRangeM
	sampleRate := modem.DefaultConfig().SampleRate
	n := &Network{
		env:   env,
		cfg:   cfg,
		med:   med,
		links: sim.NewLinks(med, sampleRate, cfg.seed, false),
		nodes: make(map[DeviceID]*Node),
		grid:  sim.NewGrid(cfg.csRangeM),
		sem:   make(chan struct{}, schedWorkers(cfg.workers)),
	}
	if cfg.csRangeM > 0 {
		n.neighbors = [][]int{}
	}
	if cfg.mode == WaveformContention {
		n.bank = sim.NewWaveBank(med, sampleRate, cfg.seed)
	}
	return n, nil
}

// schedWorkers resolves the worker knob: <= 0 means one slot per CPU
// core, never fewer than one.
func schedWorkers(w int) int {
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Environment returns the network's deployment site.
func (n *Network) Environment() Environment { return n.env }

// NumNodes returns how many devices have joined.
func (n *Network) NumNodes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.order)
}

// Join adds a device at the given position and returns its Node. IDs
// must be unique and in [0, MaxNetworkDevices); positions with Z
// outside the water column are clamped to it. The on-air address is
// the ID modulo 60 (the modem's ID-tone space), and Join additionally
// requires that tone to be unique among nodes within carrier-sense
// audibility of the new position (ErrAddressClash otherwise) — with
// an unlimited carrier-sense range that keeps the paper's 60-device
// cap, while a bounded range reuses tones spatially and scales to
// thousands of devices (see MaxNetworkDevices).
func (n *Network) Join(id DeviceID, pos Position, opts ...NodeOption) (*Node, error) {
	nc := nodeConfig{}
	for _, o := range opts {
		o(&nc)
	}
	m, err := modem.New(modem.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if id < 0 || int(id) >= MaxNetworkDevices {
		return nil, fmt.Errorf("%w: %d (IDs are [0, %d); the on-air tone is ID mod %d)",
			ErrBadDeviceID, id, MaxNetworkDevices, phy.MaxDeviceID)
	}
	tone := DeviceID(int(id) % phy.MaxDeviceID)
	if !tone.Valid(m.Config()) {
		return nil, fmt.Errorf("%w: %d", ErrBadDeviceID, id)
	}
	if nc.trackSet {
		if err := nc.track.validate(); err != nil {
			return nil, fmt.Errorf("joining %d: %w", id, err)
		}
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateDevice, id)
	}
	// Audible candidates of the new position: the per-cell candidate
	// sets when the grid is live, every joined node under an unlimited
	// range. They double as the tone-clash check set and the new
	// node's adjacency row.
	var audible []int
	if n.grid.Enabled() {
		n.gridScratch = n.grid.AppendWithin(n.gridScratch[:0], pos, n.cfg.csRangeM)
		audible = n.gridScratch
	} else {
		for j := range n.order {
			audible = append(audible, j)
		}
	}
	for _, j := range audible {
		if other := n.order[j]; other.tone == tone {
			return nil, fmt.Errorf("%w: ID %d and ID %d share on-air tone %d within %s",
				ErrAddressClash, id, other.id, tone, audibleRangeLabel(n.cfg.csRangeM))
		}
	}
	var idx int
	addNode := func() {
		idx = n.med.AddNode(pos)
		n.links.SetEndpoint(idx, sim.Endpoint{Device: nc.device, Motion: nc.motion})
		if n.bank != nil {
			n.bank.SetEndpoint(idx, sim.Endpoint{Device: nc.device, Motion: nc.motion})
		}
	}
	if n.bank != nil {
		// Concurrent waveform mixes read medium geometry under the
		// bank's lock; joins mutate it under both locks.
		n.bank.Sync(addNode)
	} else {
		addNode()
	}
	n.grid.Add(idx, pos)
	if n.neighbors != nil {
		// Incremental adjacency: the new node's row is exactly the
		// audible candidate set (already ascending); existing rows gain
		// the new node by appending its index, which is the maximum so
		// far, keeping every row sorted.
		row := append([]int(nil), audible...)
		n.neighbors = append(n.neighbors, row)
		for _, j := range row {
			n.neighbors[j] = append(n.neighbors[j], idx)
		}
	}
	n.frontier = append(n.frontier, 0)

	nd := &Node{
		net:      n,
		id:       id,
		tone:     tone,
		idx:      idx,
		pos:      pos,
		trace:    nc.trace,
		track:    nc.track,
		hasTrack: nc.trackSet,
	}
	if nc.clockSet {
		nd.clockS = nc.clockS
	} else {
		staggerRng := rand.New(rand.NewSource(n.cfg.seed*40503 + int64(idx)*997 + 11))
		nd.clockS = staggerRng.Float64() * joinStaggerS
	}
	nd.proto = phy.New(m, phy.Options{OnStage: nd.onStage})
	// The messenger speaks on-air tones, not public IDs: packets carry
	// Src/Dst in the 60-tone space the modem can actually modulate.
	nd.msgr = newNodeMessenger(nd.proto, tone, n.cfg.retries)
	nd.cont = mac.NewContender(mac.Config{
		CarrierSense:  n.cfg.carrierSense,
		PreambleAware: n.cfg.preambleAware,
		Persist:       n.cfg.persist,
		Seed:          n.cfg.seed*31 + int64(idx)*1009 + 7,
	})
	nd.txq = newNodeTxq()
	// The MAC quantum uses the full-band exchange airtime: the actual
	// on-air duration depends on the band Bob picks mid-exchange,
	// which the transmitter cannot know when it reserves the channel
	// (registration happens post-exchange with the real duration). A
	// width-1 band bounds any duration a future exchange can register.
	nd.airtimeS = nd.proto.PacketAirtimeS(modem.FullBand(m.Config()))
	if wc := nd.proto.PacketAirtimeS(modem.Band{Lo: 0, Hi: 0}); wc > n.wcAirtimeS {
		n.wcAirtimeS = wc
	}
	n.nodes[id] = nd
	n.order = append(n.order, nd)
	n.noteJoinLocked(idx)
	return nd, nil
}

// audibleRangeLabel names the audibility bound in error messages.
func audibleRangeLabel(csRangeM float64) string {
	if csRangeM <= 0 {
		return "unlimited carrier-sense range"
	}
	return fmt.Sprintf("carrier-sense range %g m", csRangeM)
}

// forEachAudibleLocked calls fn with every node index audible from
// node i (within the carrier-sense range; every other node when the
// range is unlimited), in ascending order. Callers hold n.mu.
func (n *Network) forEachAudibleLocked(i int, fn func(j int)) {
	if n.neighbors != nil {
		for _, j := range n.neighbors[i] {
			fn(j)
		}
		return
	}
	for j := range n.order {
		if j != i {
			fn(j)
		}
	}
}

// Node returns the joined node with the given ID.
func (n *Network) Node(id DeviceID) (*Node, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	return nd, ok
}

// CollisionStats reports envelope-mode collision accounting over all
// live sends so far, keyed by device ID: per device (collided, sent)
// packet counts, plus the overall collided fraction. Two packets
// collide when their transmit times fall within one packet duration
// of each other (the paper's transmitter-side definition).
func (n *Network) CollisionStats() (perDevice map[DeviceID][2]int, fraction float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	perIdx, frac := n.med.CollisionStats()
	perDevice = make(map[DeviceID][2]int, len(perIdx))
	for _, nd := range n.order {
		if c, ok := perIdx[nd.idx]; ok {
			perDevice[nd.id] = c
		}
	}
	return perDevice, frac
}

// SimulateContention runs a batch scripted-traffic contention
// simulation (the paper's Fig 19 methodology): each tx node sends
// cfg.PacketsPerTx packets with random inter-packet gaps, contending
// under the network's carrier-sense settings, and the envelope medium
// counts collisions. The run uses a scratch copy of the medium with
// the same node geometry, so live state — node clocks, the on-air
// transmission log, CollisionStats — is untouched.
//
// The per-node counts in the result are keyed by node index
// (Node.Index), matching the live medium's numbering.
func (n *Network) SimulateContention(tx []*Node, cfg ContentionConfig) ContentionResult {
	n.mu.Lock()
	defer n.mu.Unlock()
	scratch := sim.New(n.env)
	scratch.CSRangeM = n.cfg.csRangeM
	for _, nd := range n.order {
		scratch.AddNode(nd.pos)
	}
	ids := make([]int, len(tx))
	for i, nd := range tx {
		ids[i] = nd.idx
	}
	return mac.RunNetwork(scratch, ids, cfg)
}
