package aquago

import (
	"fmt"
	"math/rand"
	"sync"

	"aquago/internal/mac"
	"aquago/internal/modem"
	"aquago/internal/phy"
	"aquago/internal/sim"
)

// joinStaggerS bounds the default seed-derived initial clock stagger
// drawn at Join (see WithNodeClock).
const joinStaggerS = 1.5

// Position locates a node in meters; Z is depth below the surface.
type Position = sim.Position

// ContentionConfig parameterizes a batch contention simulation
// (SimulateContention); zero values take the paper defaults (120
// packets per transmitter, 0.6 s packets, 3.2 s mean gap, the
// energy-only quiet window).
type ContentionConfig = mac.Config

// ContentionResult reports a batch contention simulation: per-node
// (collided, sent) counts, the overall collision fraction, and the
// simulated duration.
type ContentionResult = mac.Result

// NetworkOption customizes NewNetwork.
type NetworkOption func(*networkConfig)

type networkConfig struct {
	seed            int64
	csRangeM        float64
	carrierSense    bool
	preambleAware   bool
	accessDeadlineS float64
	retries         int
	trace           Trace
}

// WithNetworkSeed fixes the random realization of every channel and
// every node's MAC backoff draws (default 1).
func WithNetworkSeed(seed int64) NetworkOption {
	return func(c *networkConfig) { c.seed = seed }
}

// WithCSRange bounds carrier-sense audibility to the given distance
// in meters (default 0 = unlimited; real deployments hear well past
// the 5-10 m node spacing).
func WithCSRange(meters float64) NetworkOption {
	return func(c *networkConfig) { c.csRangeM = meters }
}

// WithoutCarrierSense disables the MAC: nodes transmit as soon as
// they are ready (the paper's Fig 19 baseline).
func WithoutCarrierSense() NetworkOption {
	return func(c *networkConfig) { c.carrierSense = false }
}

// WithPreambleAwareSense upgrades carrier sense with preamble
// detection (§2.4's suggested improvement): an exchange's silent
// feedback window still reads as busy, eliminating the residual
// collisions of energy-only sensing.
func WithPreambleAwareSense() NetworkOption {
	return func(c *networkConfig) { c.preambleAware = true }
}

// WithAccessDeadline bounds how long (in virtual seconds) a Send may
// wait for the MAC to grant the channel before failing with
// ErrChannelBusy (default 300; <= 0 waits without bound).
func WithAccessDeadline(virtualSeconds float64) NetworkOption {
	return func(c *networkConfig) { c.accessDeadlineS = virtualSeconds }
}

// WithNetworkRetries sets every node's extra attempt budget after an
// unacknowledged transmission (default 2).
func WithNetworkRetries(n int) NetworkOption {
	return func(c *networkConfig) { c.retries = n }
}

// WithNetworkTrace installs a stage trace on every node that does not
// carry its own (WithNodeTrace wins per node).
func WithNetworkTrace(t Trace) NetworkOption {
	return func(c *networkConfig) { c.trace = t }
}

// Network is a shared body of simulated water that up to 60 devices
// contend for (§2.4 of the paper). It owns:
//
//   - an envelope-mode acoustic medium tracking what is on the air
//     where and when (carrier sense, collision accounting — Fig 19),
//   - a lazily built channel link for every directed node pair,
//     derived from node geometry, and
//   - per-node protocol stacks on one shared virtual timeline.
//
// Nodes enter with Join; Node.Send runs the full adaptive protocol
// through the carrier-sense MAC. The two-endpoint SimulatedWater +
// Session API is the 2-node special case of this surface (a Session
// can run over Node.MediumTo's pair medium directly).
//
// All methods are safe for concurrent use; one network-wide lock
// serializes virtual-time bookkeeping, so concurrency buys API
// convenience (nodes sending from independent goroutines), not
// parallel simulation throughput.
type Network struct {
	env Environment
	cfg networkConfig

	mu    sync.Mutex
	med   *sim.Medium
	links *sim.Links
	nodes map[DeviceID]*Node
	order []*Node
	// frontierS is the virtual commit frontier: one sense interval
	// past the latest committed transmission start. Sends resolve
	// under the lock in call order, which need not match virtual-time
	// order; bumping every attempt's ready time to the frontier keeps
	// the simulation causal — a send can never start in the
	// already-simulated past, where carrier sense could not have heard
	// transmissions that were committed after it.
	frontierS float64
	// wcAirtimeS is the worst-case (narrowest-band) exchange airtime
	// across joined nodes — Prune's bound on future durations.
	wcAirtimeS float64
}

// NewNetwork creates an empty network in the given environment.
func NewNetwork(env Environment, opts ...NetworkOption) (*Network, error) {
	cfg := networkConfig{
		seed:            1,
		carrierSense:    true,
		accessDeadlineS: 300,
		retries:         2,
	}
	for _, o := range opts {
		o(&cfg)
	}
	med := sim.New(env)
	med.CSRangeM = cfg.csRangeM
	return &Network{
		env:   env,
		cfg:   cfg,
		med:   med,
		links: sim.NewLinks(med, modem.DefaultConfig().SampleRate, cfg.seed, false),
		nodes: make(map[DeviceID]*Node),
	}, nil
}

// Environment returns the network's deployment site.
func (n *Network) Environment() Environment { return n.env }

// NumNodes returns how many devices have joined.
func (n *Network) NumNodes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.order)
}

// Join adds a device at the given position and returns its Node. IDs
// must be unique and in [0, 60); positions with Z outside the water
// column are clamped to it.
func (n *Network) Join(id DeviceID, pos Position, opts ...NodeOption) (*Node, error) {
	nc := nodeConfig{}
	for _, o := range opts {
		o(&nc)
	}
	m, err := modem.New(modem.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if !id.Valid(m.Config()) {
		return nil, fmt.Errorf("%w: %d", ErrBadDeviceID, id)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateDevice, id)
	}
	idx := n.med.AddNode(pos)
	n.links.SetEndpoint(idx, sim.Endpoint{Device: nc.device, Motion: nc.motion})

	nd := &Node{
		net:   n,
		id:    id,
		idx:   idx,
		pos:   pos,
		trace: nc.trace,
	}
	if nc.clockSet {
		nd.clockS = nc.clockS
	} else {
		staggerRng := rand.New(rand.NewSource(n.cfg.seed*40503 + int64(idx)*997 + 11))
		nd.clockS = staggerRng.Float64() * joinStaggerS
	}
	nd.proto = phy.New(m, phy.Options{OnStage: nd.onStage})
	nd.msgr = newNodeMessenger(nd.proto, id, n.cfg.retries)
	nd.cont = mac.NewContender(mac.Config{
		CarrierSense:  n.cfg.carrierSense,
		PreambleAware: n.cfg.preambleAware,
		Seed:          n.cfg.seed*31 + int64(idx)*1009 + 7,
	})
	// The MAC quantum uses the full-band exchange airtime: the actual
	// on-air duration depends on the band Bob picks mid-exchange,
	// which the transmitter cannot know when it reserves the channel
	// (registration happens post-exchange with the real duration). A
	// width-1 band bounds any duration a future exchange can register.
	nd.airtimeS = nd.proto.PacketAirtimeS(modem.FullBand(m.Config()))
	if wc := nd.proto.PacketAirtimeS(modem.Band{Lo: 0, Hi: 0}); wc > n.wcAirtimeS {
		n.wcAirtimeS = wc
	}
	n.nodes[id] = nd
	n.order = append(n.order, nd)
	return nd, nil
}

// Node returns the joined node with the given ID.
func (n *Network) Node(id DeviceID) (*Node, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	return nd, ok
}

// CollisionStats reports envelope-mode collision accounting over all
// live sends so far, keyed by device ID: per device (collided, sent)
// packet counts, plus the overall collided fraction. Two packets
// collide when their transmit times fall within one packet duration
// of each other (the paper's transmitter-side definition).
func (n *Network) CollisionStats() (perDevice map[DeviceID][2]int, fraction float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	perIdx, frac := n.med.CollisionStats()
	perDevice = make(map[DeviceID][2]int, len(perIdx))
	for _, nd := range n.order {
		if c, ok := perIdx[nd.idx]; ok {
			perDevice[nd.id] = c
		}
	}
	return perDevice, frac
}

// SimulateContention runs a batch scripted-traffic contention
// simulation (the paper's Fig 19 methodology): each tx node sends
// cfg.PacketsPerTx packets with random inter-packet gaps, contending
// under the network's carrier-sense settings, and the envelope medium
// counts collisions. The run uses a scratch copy of the medium with
// the same node geometry, so live state — node clocks, the on-air
// transmission log, CollisionStats — is untouched.
//
// The per-node counts in the result are keyed by node index
// (Node.Index), matching the live medium's numbering.
func (n *Network) SimulateContention(tx []*Node, cfg ContentionConfig) ContentionResult {
	n.mu.Lock()
	defer n.mu.Unlock()
	scratch := sim.New(n.env)
	scratch.CSRangeM = n.cfg.csRangeM
	for _, nd := range n.order {
		scratch.AddNode(nd.pos)
	}
	ids := make([]int, len(tx))
	for i, nd := range tx {
		ids[i] = nd.idx
	}
	return mac.RunNetwork(scratch, ids, cfg)
}
