package aquago_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"aquago"
)

// Stream tests run on a two-node Bridge link. streamCleanRangeM
// decodes every attempt; streamMarginalRangeM sits in the 72-80 m
// band where individual attempts fail and the selective-repeat
// machinery — retransmission, out-of-order buffering, duplicate
// absorption — actually has work to do.
const (
	streamCleanRangeM    = 25.0
	streamMarginalRangeM = 76.0
)

// streamOutcome is everything observable about one stream transfer,
// collected so golden tests can deep-equal whole runs.
type streamOutcome struct {
	Received []byte
	Stats    aquago.StreamStats
	WaitErr  string
}

// runStream opens a stream over a rangeM link, pushes the payload
// through it, and collects the outcome. Streams ride the async
// transmit queues, so workers is the determinism axis under test.
func runStream(t *testing.T, rangeM float64, seed int64, mode aquago.ContentionMode,
	workers int, payload []byte, opts ...aquago.StreamOption) streamOutcome {
	t.Helper()
	net, err := aquago.NewNetwork(aquago.Bridge,
		aquago.WithNetworkSeed(seed),
		aquago.WithContentionMode(mode),
		aquago.WithNetworkWorkers(workers),
	)
	if err != nil {
		t.Fatal(err)
	}
	src, err := net.Join(0, aquago.Position{Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(1, aquago.Position{X: rangeM, Z: 1}, aquago.WithNodeClock(0)); err != nil {
		t.Fatal(err)
	}
	st, err := src.OpenStream(context.Background(), 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := st.Write(payload); n != len(payload) || err != nil {
		t.Fatalf("Write wrote %d/%d bytes: %v", n, len(payload), err)
	}
	if err := st.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	received, err := io.ReadAll(st)
	if err != nil && !isStreamTermination(err) {
		t.Fatalf("Read: %v", err)
	}
	// Read drains to EOF once everything is DELIVERED; the final ACK
	// may still be on the air, so settle with Wait before snapshotting
	// the accounting.
	out := streamOutcome{Received: received}
	if werr := st.Wait(context.Background()); werr != nil {
		out.WaitErr = werr.Error()
	}
	out.Stats = st.Stats()
	return out
}

// isStreamTermination reports whether a read error is the stream's
// own failure taxonomy rather than a harness bug.
func isStreamTermination(err error) bool {
	var serr *aquago.StreamError
	return errors.As(err, &serr)
}

// checkStreamInvariants asserts what must hold of EVERY transfer,
// delivered or degraded: the receiver holds a contiguous prefix of
// the payload (selective repeat buffers out-of-order segments but
// releases only in order — no holes, no corruption), the accounting
// is conserved, and a clean finish means a complete payload.
func checkStreamInvariants(t *testing.T, payload []byte, out streamOutcome) {
	t.Helper()
	if !bytes.Equal(out.Received, payload[:len(out.Received)]) {
		t.Fatalf("received bytes are not a payload prefix:\nsent     %q\nreceived %q", payload, out.Received)
	}
	if out.Stats.BytesDelivered != len(out.Received) {
		t.Fatalf("frontier says %d bytes, Read drained %d", out.Stats.BytesDelivered, len(out.Received))
	}
	if out.Stats.BytesWritten != len(payload) || out.Stats.Segments > len(payload) {
		t.Fatalf("write-side accounting wrong for %d payload bytes: %+v", len(payload), out.Stats)
	}
	if out.Stats.Attempts < out.Stats.Segments {
		t.Fatalf("fewer attempts than segments sent: %+v", out.Stats)
	}
	if out.Stats.DupSegments > 0 && out.Stats.Retransmits == 0 {
		t.Fatalf("duplicates without retransmissions: %+v", out.Stats)
	}
	if out.WaitErr == "" {
		if !bytes.Equal(out.Received, payload) {
			t.Fatalf("clean finish with missing bytes: %d of %d", len(out.Received), len(payload))
		}
		if out.Stats.BytesAcked != len(payload) {
			t.Fatalf("clean finish without full acknowledgment: %+v", out.Stats)
		}
	}
	if !(out.Stats.EndS >= out.Stats.StartS) {
		t.Fatalf("degenerate transfer window: %+v", out.Stats)
	}
}

// TestStreamGoldenSeedsWorkers is the transport's worker-count
// invariance witness: for fixed seeds, in both contention modes, the
// whole outcome — received bytes, every stat counter, the failure
// text if any — must be deeply equal with 1 worker and with 4. The
// envelope leg runs on the marginal link so retransmission and
// reordering paths are inside the golden, not just the happy path.
func TestStreamGoldenSeedsWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs marginal-link streams repeatedly")
	}
	payload := []byte("selective repeat!")
	legs := []struct {
		name   string
		rangeM float64
		mode   aquago.ContentionMode
	}{
		{"envelope-marginal", streamMarginalRangeM, aquago.EnvelopeContention},
		{"waveform-clean", streamCleanRangeM, aquago.WaveformContention},
	}
	for _, leg := range legs {
		t.Run(leg.name, func(t *testing.T) {
			for _, seed := range []int64{3, 11} {
				serial := runStream(t, leg.rangeM, seed, leg.mode, 1, payload)
				parallel := runStream(t, leg.rangeM, seed, leg.mode, 4, payload)
				if !reflect.DeepEqual(serial, parallel) {
					t.Fatalf("seed %d: Workers:1 and Workers:4 outcomes differ\nserial:   %+v\nparallel: %+v",
						seed, serial, parallel)
				}
				checkStreamInvariants(t, payload, serial)
			}
		})
	}
}

// TestStreamLossMatrix sweeps the marginal band across seeds and
// window sizes and checks the transfer invariants on every point.
// The matrix must also produce evidence that each selective-repeat
// mechanism fired somewhere: a retransmission that still completed
// the transfer, a retry-budget death that degraded it, and
// out-of-order arrival absorbed by the receive window.
func TestStreamLossMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a stream per (range, seed, window) point")
	}
	payload := make([]byte, 24)
	rand.New(rand.NewSource(41)).Read(payload)
	var recovered, degraded, reordered bool
	for _, rangeM := range []float64{72, 76, 78} {
		for _, window := range []int{4, 16} {
			for seed := int64(1); seed <= 4; seed++ {
				out := runStream(t, rangeM, seed, aquago.EnvelopeContention, 2, payload,
					aquago.WithStreamWindow(window))
				checkStreamInvariants(t, payload, out)
				if out.Stats.MaxReorder > window {
					t.Fatalf("receive buffer exceeded the window: %+v", out.Stats)
				}
				if out.WaitErr == "" && out.Stats.Retransmits > 0 {
					recovered = true
				}
				if out.WaitErr != "" {
					degraded = true
				}
				if out.Stats.MaxReorder > 1 {
					reordered = true
				}
			}
		}
	}
	if !recovered || !degraded || !reordered {
		t.Fatalf("matrix never exercised the machinery (recovered %v, degraded %v, reordered %v)",
			recovered, degraded, reordered)
	}
}

// TestStreamCancelMidTransfer: cancelling the OpenStream context
// after the first byte lands must fail the stream — Wait reports a
// *StreamError unwrapping to the cancellation — while the bytes
// already released to Read stay a valid prefix.
func TestStreamCancelMidTransfer(t *testing.T) {
	net, err := aquago.NewNetwork(aquago.Bridge, aquago.WithNetworkSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	src, err := net.Join(0, aquago.Position{Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(1, aquago.Position{X: streamCleanRangeM, Z: 1}, aquago.WithNodeClock(0)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	payload := make([]byte, 48)
	rand.New(rand.NewSource(17)).Read(payload)
	st, err := src.OpenStream(ctx, 1, aquago.WithStreamWindow(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	first := make([]byte, 1)
	if _, err := io.ReadFull(st, first); err != nil {
		t.Fatalf("first byte never arrived: %v", err)
	}
	if first[0] != payload[0] {
		t.Fatalf("first byte corrupted: %x != %x", first[0], payload[0])
	}
	cancel()
	werr := st.Wait(context.Background())
	if werr == nil {
		t.Fatal("cancelled stream completed cleanly")
	}
	var serr *aquago.StreamError
	if !errors.As(werr, &serr) {
		t.Fatalf("failure %v does not carry *StreamError", werr)
	}
	if !errors.Is(werr, aquago.ErrTxCancelled) && !errors.Is(werr, context.Canceled) {
		t.Fatalf("failure %v does not unwrap to the cancellation", werr)
	}
	rest, rerr := io.ReadAll(st)
	if rerr != nil && !isStreamTermination(rerr) {
		t.Fatalf("draining a cancelled stream: %v", rerr)
	}
	got := append(first, rest...)
	if !bytes.Equal(got, payload[:len(got)]) {
		t.Fatalf("delivered bytes are not a payload prefix after cancel")
	}
	if len(got) == len(payload) {
		t.Fatal("a 2-segment window cannot have delivered all 48 bytes before the cancel")
	}
}

// TestStreamCloseAndMisuse pins the lifecycle edges: writing after
// CloseWrite refuses with ErrStreamClosed, Close on a live stream
// fails it with the same sentinel, and both are visible through Wait.
func TestStreamCloseAndMisuse(t *testing.T) {
	net, err := aquago.NewNetwork(aquago.Bridge, aquago.WithNetworkSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	src, err := net.Join(0, aquago.Position{Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(1, aquago.Position{X: streamCleanRangeM, Z: 1}, aquago.WithNodeClock(0)); err != nil {
		t.Fatal(err)
	}

	t.Run("write-after-closewrite", func(t *testing.T) {
		st, err := src.OpenStream(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Write([]byte("ok")); err != nil {
			t.Fatal(err)
		}
		if err := st.CloseWrite(); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Write([]byte("more")); !errors.Is(err, aquago.ErrStreamClosed) {
			t.Fatalf("write after CloseWrite: %v", err)
		}
		if err := st.Wait(context.Background()); err != nil {
			t.Fatalf("2-byte stream on a clean link failed: %v", err)
		}
	})

	t.Run("close-live-stream", func(t *testing.T) {
		st, err := src.OpenStream(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Write(make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		werr := st.Wait(context.Background())
		if !errors.Is(werr, aquago.ErrStreamClosed) {
			t.Fatalf("closed live stream must fail with ErrStreamClosed, got %v", werr)
		}
		if _, err := st.Write([]byte("x")); !errors.Is(err, aquago.ErrStreamClosed) {
			t.Fatalf("write after Close: %v", err)
		}
	})
}

// TestStreamOpenValidation walks OpenStream's rejection paths: every
// bad option is ErrBadStream before any traffic moves, and unknown
// peers are refused with the network's own taxonomy.
func TestStreamOpenValidation(t *testing.T) {
	net, err := aquago.NewNetwork(aquago.Bridge, aquago.WithNetworkSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	src, err := net.Join(0, aquago.Position{Z: 1}, aquago.WithNodeClock(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(1, aquago.Position{X: streamCleanRangeM, Z: 1}, aquago.WithNodeClock(0)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name string
		opts []aquago.StreamOption
	}{
		{"zero window", []aquago.StreamOption{aquago.WithStreamWindow(0)}},
		{"oversized window", []aquago.StreamOption{aquago.WithStreamWindow(aquago.MaxStreamWindow + 1)}},
		{"negative retries", []aquago.StreamOption{aquago.WithStreamRetries(-1)}},
		{"NaN timer", []aquago.StreamOption{aquago.WithStreamRTO(math.NaN())}},
		{"negative timer", []aquago.StreamOption{aquago.WithStreamRTO(-1)}},
	}
	for _, tc := range cases {
		if _, err := src.OpenStream(ctx, 1, tc.opts...); !errors.Is(err, aquago.ErrBadStream) {
			t.Errorf("%s: want ErrBadStream, got %v", tc.name, err)
		}
	}
	if _, err := src.OpenStream(ctx, 42); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Errorf("unknown peer: want ErrUnknownDevice, got %v", err)
	}
}

// TestStreamRetransmissionRecovers is the transport's headline: on a
// marginal link where attempts genuinely fail, the stream must spend
// retransmissions and still deliver the payload byte-for-byte —
// exactly the loss that kills an unprotected bulk transfer.
func TestStreamRetransmissionRecovers(t *testing.T) {
	payload := []byte("one lost packet must not kill this")
	// Seed 2 at 76 m: attempts fail, the budget covers them (seed
	// scanned once, then pinned — the channel is deterministic).
	out := runStream(t, streamMarginalRangeM, 2, aquago.EnvelopeContention, 2, payload,
		aquago.WithStreamRetries(4))
	checkStreamInvariants(t, payload, out)
	if out.WaitErr != "" {
		t.Fatalf("stream failed despite its budget: %v (%+v)", out.WaitErr, out.Stats)
	}
	if !bytes.Equal(out.Received, payload) {
		t.Fatalf("payload not conserved: %q", out.Received)
	}
	if out.Stats.Retransmits == 0 {
		t.Fatalf("marginal link spent no retransmissions — scenario lost its teeth: %+v", out.Stats)
	}
}
