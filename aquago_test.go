package aquago

import (
	"path/filepath"
	"testing"
)

func TestCodebookSurface(t *testing.T) {
	if len(Codebook()) != 240 {
		t.Fatal("codebook size")
	}
	if len(CommonMessages()) != 20 {
		t.Fatal("common messages")
	}
	if _, ok := LookupMessage("OK?"); !ok {
		t.Fatal("LookupMessage")
	}
	if len(SearchMessages("shark")) == 0 {
		t.Fatal("SearchMessages")
	}
}

func TestModemEncodeDecode(t *testing.T) {
	m, err := NewModem(WithBand(5, 40))
	if err != nil {
		t.Fatal(err)
	}
	if m.SampleRate() != 48000 {
		t.Fatal("sample rate")
	}
	if m.Band() != (Band{Lo: 5, Hi: 40}) {
		t.Fatal("band")
	}
	if m.BitrateBPS() <= 0 {
		t.Fatal("bitrate")
	}
	ok, _ := LookupMessage("OK?")
	up, _ := LookupMessage("Go up")
	wave, err := m.EncodeMessages(7, ok.ID, up.ID)
	if err != nil {
		t.Fatal(err)
	}
	msgs, decoded := m.DecodeMessages(wave, 7)
	if !decoded {
		t.Fatal("clean loopback failed")
	}
	if len(msgs) != 2 || msgs[0].Text != "OK?" || msgs[1].Text != "Go up" {
		t.Fatalf("decoded %v", msgs)
	}
}

func TestModemWAVRoundTrip(t *testing.T) {
	m, err := NewModem()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "msg.wav")
	help, _ := LookupMessage("Help me")
	if err := m.EncodeToWAV(path, 3, help.ID, NoMessage); err != nil {
		t.Fatal(err)
	}
	msgs, err := m.DecodeFromWAV(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Text != "Help me" {
		t.Fatalf("decoded %v", msgs)
	}
}

func TestSessionOverSimulatedWater(t *testing.T) {
	med, err := SimulatedWater(Bridge, AtDistance(5), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Dial(4)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := LookupMessage("OK?")
	res, err := sess.Send(med, 9, ok.ID, NoMessage)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || !res.Acknowledged {
		t.Fatalf("send failed: %+v", res)
	}
}

func TestSessionExchangeResult(t *testing.T) {
	med, err := SimulatedWater(Lake, AtDistance(10), WithSeed(12), WithMotion(SlowMotion))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Dial(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exchange(med, Packet{Dst: 9, Payload: [2]byte{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PreambleDetected {
		t.Fatal("preamble lost at 10 m lake")
	}
	if res.Band.Width() < 1 {
		t.Fatal("no band selected")
	}
}

func TestBeaconSurface(t *testing.T) {
	b, err := NewBeacon(10)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := b.EncodeID(13)
	if err != nil {
		t.Fatal(err)
	}
	rx := make([]float64, len(tx)+2000)
	copy(rx[500:], tx)
	bits, _, ok := b.Decode(rx, 6)
	if !ok {
		t.Fatal("beacon decode failed")
	}
	id := 0
	for _, bit := range bits {
		id = id<<1 | bit
	}
	if id != 13 {
		t.Fatalf("beacon ID %d, want 13", id)
	}
	if _, err := NewBeacon(3); err == nil {
		t.Fatal("invalid beacon rate accepted")
	}
}

func TestSimulatedWaterOptions(t *testing.T) {
	// Every option must compose without error.
	med, err := SimulatedWater(Bay,
		AtDistance(12), AtDepth(2), WithDevices(GalaxyS9, Pixel4),
		WithMotion(FastMotion), WithOrientation(90), WithHardCase(),
		WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if med == nil {
		t.Fatal("nil medium")
	}
}
