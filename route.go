package aquago

import (
	"fmt"
	"math"
)

// This file is the network's routing layer: it turns node geometry and
// per-pair channel quality into relay paths. The paper's protocol is
// single-hop by construction (one MAC, one collision domain), but its
// own range results — tens of meters of working range against
// hundreds of meters of deployment — make relaying the obvious scaling
// move. Routing runs entirely above the MAC: a chosen path is walked
// hop by hop by the relay layer (relay.go), and every hop re-enters
// the carrier-sense MAC and the conflict-graph scheduler like any
// other Send.
//
// The link graph is the *audibility* graph: a directed edge exists
// between two nodes exactly when they sit within the carrier-sense
// range (WithCSRange; an unlimited range connects everything, so
// routing degenerates to the direct path). That bound is the honest
// one — it is both how far carrier sense coordinates transmitters and
// how far waveform-mode interference reaches, so a hop outside it
// could neither defer to nor be heard by its receiver's neighborhood.

// RoutingPolicy selects how WithRouting picks relay paths.
type RoutingPolicy int

const (
	// MinHop routes over the fewest hops, breaking ties by total
	// geometric path length and then by node index — fully determined
	// by node geometry.
	MinHop RoutingPolicy = iota
	// MinETX routes by minimum expected transmission count: each hop
	// is weighted by 1/(p_fwd * p_bwd), delivery probabilities derived
	// from the pair's channel quality (impulse-response energy over
	// ambient noise, the same seeded realization exchanges use — see
	// sim.Links.PairSNRdB). A marginal long hop loses to two clean
	// short ones exactly when its expected retransmissions cost more.
	MinETX
)

// String names the policy for logs.
func (p RoutingPolicy) String() string {
	switch p {
	case MinHop:
		return "min-hop"
	case MinETX:
		return "min-etx"
	}
	return fmt.Sprintf("RoutingPolicy(%d)", int(p))
}

// WithRouting selects the path-selection policy used by Network.Route
// and the automatic-path entry points (Node.SendBulk). The default is
// MinHop; MinETX additionally weighs per-pair channel quality.
func WithRouting(policy RoutingPolicy) NetworkOption {
	return func(c *networkConfig) { c.routing = policy }
}

// ETX delivery-probability model: a logistic in the pair's estimated
// in-band SNR. The midpoint and scale are calibrated against the
// channel simulator's working range (comfortable delivery at the
// paper's 5-10 m spacings, graded decay towards ~100 m), and the
// floor keeps a terrible-but-audible hop finitely expensive so MinETX
// still returns *a* path when nothing better exists.
const (
	etxMidSNRdB   = 8.0
	etxScaleSNRdB = 4.0
	etxFloorP     = 0.01
)

// hopProbability maps a directed link's estimated SNR onto a delivery
// probability in [etxFloorP, 1].
func hopProbability(snrDB float64) float64 {
	if math.IsInf(snrDB, 1) {
		return 1
	}
	p := 1 / (1 + math.Exp(-(snrDB-etxMidSNRdB)/etxScaleSNRdB))
	if p < etxFloorP {
		p = etxFloorP
	}
	return p
}

// Route computes a relay path from src to dst under the network's
// routing policy (WithRouting; MinHop by default): the returned slice
// starts at src, ends at dst, visits no node twice, and every
// consecutive pair is audible (within the carrier-sense range — with
// an unlimited range this is always the direct [src dst] path).
// Unknown endpoints return ErrUnknownDevice, src == dst returns
// ErrBadDeviceID, and a partitioned audibility graph returns
// ErrNoRoute. Paths and edge weights are cached per geometry (joins
// invalidate), so repeated sends pay for one shortest-path run.
func (n *Network) Route(src, dst DeviceID) ([]DeviceID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	from, ok := n.nodes[src]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownDevice, src)
	}
	to, err := n.peerLocked(from, dst)
	if err != nil {
		return nil, err
	}
	idxPath, err := n.routeLocked(from.idx, to.idx)
	if err != nil {
		return nil, err
	}
	path := make([]DeviceID, len(idxPath))
	for i, idx := range idxPath {
		path[i] = n.order[idx].id
	}
	return path, nil
}

// audibleLocked reports whether nodes i and j can hear each other:
// within the carrier-sense range, or always when the range is
// unlimited. Callers hold n.mu.
func (n *Network) audibleLocked(i, j int) bool {
	if i == j {
		return false
	}
	r := n.cfg.csRangeM
	if r <= 0 {
		return true
	}
	return n.order[i].pos.DistanceTo(n.order[j].pos) <= r
}

// hopWeightLocked returns the policy cost of the directed hop
// u -> v. MinHop charges 1 per hop; MinETX charges the expected
// transmission count 1/(p_fwd * p_bwd) — data rides the forward
// link, the ACK the backward one. ETX weights are cached per pair
// (the realization is seeded, so the quality never changes under a
// fixed geometry). Callers hold n.mu.
func (n *Network) hopWeightLocked(u, v int) (float64, error) {
	if n.cfg.routing != MinETX {
		return 1, nil
	}
	key := [2]int{u, v}
	if w, ok := n.etxCache[key]; ok {
		return w, nil
	}
	fwd, bwd, err := n.links.PairSNRdB(u, v)
	if err != nil {
		return 0, err
	}
	w := 1 / (hopProbability(fwd) * hopProbability(bwd))
	if n.etxCache == nil {
		n.etxCache = make(map[[2]int]float64)
	}
	n.etxCache[key] = w
	// The reverse hop multiplies the same two link probabilities.
	n.etxCache[[2]int{v, u}] = w
	return w, nil
}

// routeLocked runs deterministic Dijkstra on the audibility graph
// from node index src to dst. Ties break by (cost, hop count, total
// geometric length, node index), so the chosen path is a pure
// function of geometry and seeds — independent of map iteration
// order, worker counts and wall-clock interleaving. Callers hold
// n.mu.
func (n *Network) routeLocked(src, dst int) ([]int, error) {
	key := [2]int{src, dst}
	if p, ok := n.routeCache[key]; ok {
		return p, nil
	}
	const unreached = math.MaxFloat64
	nn := len(n.order)
	cost := make([]float64, nn)
	hops := make([]int, nn)
	lenM := make([]float64, nn)
	prev := make([]int, nn)
	done := make([]bool, nn)
	for i := range cost {
		cost[i] = unreached
		prev[i] = -1
	}
	cost[src], hops[src], lenM[src] = 0, 0, 0

	better := func(c float64, h int, l float64, at int, than int) bool {
		switch {
		case c != cost[than]:
			return c < cost[than]
		case h != hops[than]:
			return h < hops[than]
		case l != lenM[than]:
			return l < lenM[than]
		}
		return at < prev[than]
	}
	for {
		// Linear extraction keeps the selection order total: the
		// smallest (cost, hops, length, index) unsettled node wins. At
		// the network's 60-node cap, O(n^2) is noise next to one
		// exchange.
		u := -1
		for i := 0; i < nn; i++ {
			if done[i] || cost[i] == unreached {
				continue
			}
			if u < 0 || cost[i] < cost[u] ||
				(cost[i] == cost[u] && (hops[i] < hops[u] ||
					(hops[i] == hops[u] && (lenM[i] < lenM[u] ||
						(lenM[i] == lenM[u] && i < u))))) {
				u = i
			}
		}
		if u < 0 || u == dst {
			break
		}
		done[u] = true
		for v := 0; v < nn; v++ {
			if done[v] || !n.audibleLocked(u, v) {
				continue
			}
			w, err := n.hopWeightLocked(u, v)
			if err != nil {
				return nil, err
			}
			c := cost[u] + w
			h := hops[u] + 1
			l := lenM[u] + n.order[u].pos.DistanceTo(n.order[v].pos)
			if c < cost[v] || (c == cost[v] && better(c, h, l, u, v)) {
				cost[v], hops[v], lenM[v], prev[v] = c, h, l, u
			}
		}
	}
	if cost[dst] == unreached {
		return nil, fmt.Errorf("%w: %d -> %d (carrier-sense range %g m)",
			ErrNoRoute, n.order[src].id, n.order[dst].id, n.cfg.csRangeM)
	}
	var path []int
	for at := dst; at != -1; at = prev[at] {
		path = append(path, at)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if n.routeCache == nil {
		n.routeCache = make(map[[2]int][]int)
	}
	n.routeCache[key] = path
	return path, nil
}

// invalidateRoutesLocked drops the route and ETX caches; Join calls
// it, since new nodes add edges (quality never changes otherwise —
// positions are fixed at Join). Callers hold n.mu.
func (n *Network) invalidateRoutesLocked() {
	n.routeCache = nil
	n.etxCache = nil
}
