package aquago

import (
	"container/heap"
	"fmt"
	"math"
)

// This file is the network's routing layer: it turns node geometry and
// per-pair channel quality into relay paths. The paper's protocol is
// single-hop by construction (one MAC, one collision domain), but its
// own range results — tens of meters of working range against
// hundreds of meters of deployment — make relaying the obvious scaling
// move. Routing runs entirely above the MAC: a chosen path is walked
// hop by hop by the relay layer (relay.go), and every hop re-enters
// the carrier-sense MAC and the conflict-graph scheduler like any
// other Send.
//
// The link graph is the *audibility* graph: a directed edge exists
// between two nodes exactly when they sit within the carrier-sense
// range (WithCSRange; an unlimited range connects everything, so
// routing degenerates to the direct path). That bound is the honest
// one — it is both how far carrier sense coordinates transmitters and
// how far waveform-mode interference reaches, so a hop outside it
// could neither defer to nor be heard by its receiver's neighborhood.

// RoutingPolicy selects how WithRouting picks relay paths.
type RoutingPolicy int

const (
	// MinHop routes over the fewest hops, breaking ties by total
	// geometric path length and then by node index — fully determined
	// by node geometry.
	MinHop RoutingPolicy = iota
	// MinETX routes by minimum expected transmission count: each hop
	// is weighted by 1/(p_fwd * p_bwd), delivery probabilities derived
	// from the pair's channel quality (impulse-response energy over
	// ambient noise, the same seeded realization exchanges use — see
	// sim.Links.PairSNRdB). A marginal long hop loses to two clean
	// short ones exactly when its expected retransmissions cost more.
	MinETX
)

// String names the policy for logs.
func (p RoutingPolicy) String() string {
	switch p {
	case MinHop:
		return "min-hop"
	case MinETX:
		return "min-etx"
	}
	return fmt.Sprintf("RoutingPolicy(%d)", int(p))
}

// WithRouting selects the path-selection policy used by Network.Route
// and the automatic-path entry points (Node.SendBulk). The default is
// MinHop; MinETX additionally weighs per-pair channel quality.
func WithRouting(policy RoutingPolicy) NetworkOption {
	return func(c *networkConfig) { c.routing = policy }
}

// ETX delivery-probability model: a logistic in the pair's estimated
// in-band SNR. The midpoint and scale are calibrated against the
// channel simulator's working range (comfortable delivery at the
// paper's 5-10 m spacings, graded decay towards ~100 m), and the
// floor keeps a terrible-but-audible hop finitely expensive so MinETX
// still returns *a* path when nothing better exists.
const (
	etxMidSNRdB   = 8.0
	etxScaleSNRdB = 4.0
	etxFloorP     = 0.01
)

// hopProbability maps a directed link's estimated SNR onto a delivery
// probability in [etxFloorP, 1].
func hopProbability(snrDB float64) float64 {
	if math.IsInf(snrDB, 1) {
		return 1
	}
	p := 1 / (1 + math.Exp(-(snrDB-etxMidSNRdB)/etxScaleSNRdB))
	if p < etxFloorP {
		p = etxFloorP
	}
	return p
}

// cachedRoute is one routeCache entry: the shortest path and its
// policy cost, kept so a later Join can decide — from one scalar
// Dijkstra rooted at the new node — whether the entry could possibly
// have been beaten (see noteJoinLocked).
type cachedRoute struct {
	path []int
	cost float64
}

// Route computes a relay path from src to dst under the network's
// routing policy (WithRouting; MinHop by default): the returned slice
// starts at src, ends at dst, visits no node twice, and every
// consecutive pair is audible (within the carrier-sense range — with
// an unlimited range this is always the direct [src dst] path).
// Unknown endpoints return ErrUnknownDevice, departed endpoints
// ErrNodeLeft, src == dst ErrBadDeviceID, and a partitioned audibility
// graph ErrNoRoute. Paths never relay through departed nodes. Paths
// and edge weights are cached per geometry; a Join invalidates only
// the paths the new node could actually shorten, a position epoch only
// what the mover made stale (noteMoveLocked), a Leave only the paths
// through the departed node — so repeated sends pay for one
// shortest-path run.
func (n *Network) Route(src, dst DeviceID) ([]DeviceID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	from, ok := n.nodes[src]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownDevice, src)
	}
	if from.departed {
		return nil, fmt.Errorf("%w: source %d", ErrNodeLeft, src)
	}
	to, err := n.peerLocked(from, dst)
	if err != nil {
		return nil, err
	}
	idxPath, err := n.routeLocked(from.idx, to.idx)
	if err != nil {
		return nil, err
	}
	path := make([]DeviceID, len(idxPath))
	for i, idx := range idxPath {
		path[i] = n.order[idx].id
	}
	return path, nil
}

// audibleLocked reports whether nodes i and j can hear each other:
// within the carrier-sense range, or always when the range is
// unlimited. Callers hold n.mu.
func (n *Network) audibleLocked(i, j int) bool {
	if i == j {
		return false
	}
	r := n.cfg.csRangeM
	if r <= 0 {
		return true
	}
	return n.order[i].pos.DistanceTo(n.order[j].pos) <= r
}

// hopWeightLocked returns the policy cost of the directed hop
// u -> v. MinHop charges 1 per hop; MinETX charges the expected
// transmission count 1/(p_fwd * p_bwd) — data rides the forward
// link, the ACK the backward one. ETX weights are cached per pair:
// the realization is seeded, so under a fixed geometry the quality
// never changes — pair weights are a function of the two endpoints'
// positions alone, which is why Join never drops this cache and why a
// position epoch drops exactly the mover's pairs (noteMoveLocked)
// before re-probing them. Callers hold n.mu.
func (n *Network) hopWeightLocked(u, v int) (float64, error) {
	if n.cfg.routing != MinETX {
		return 1, nil
	}
	key := [2]int{u, v}
	if w, ok := n.etxCache[key]; ok {
		return w, nil
	}
	fwd, bwd, err := n.links.PairSNRdB(u, v)
	if err != nil {
		return 0, err
	}
	w := 1 / (hopProbability(fwd) * hopProbability(bwd))
	if n.etxCache == nil {
		n.etxCache = make(map[[2]int]float64)
	}
	n.etxCache[key] = w
	// The reverse hop multiplies the same two link probabilities.
	n.etxCache[[2]int{v, u}] = w
	return w, nil
}

// routeItem is one heap entry of the deterministic Dijkstra: the
// labels node idx carried when it was pushed. The comparator is the
// full deterministic selection order (cost, hops, length, index), so
// popping the heap visits nodes exactly as the former global-minimum
// scan did.
type routeItem struct {
	cost float64
	hops int
	lenM float64
	idx  int
}

// routeHeap implements container/heap ordered by (cost, hops, lenM,
// idx) ascending.
type routeHeap []routeItem

func (h routeHeap) Len() int { return len(h) }
func (h routeHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	switch {
	case a.cost != b.cost:
		return a.cost < b.cost
	case a.hops != b.hops:
		return a.hops < b.hops
	case a.lenM != b.lenM:
		return a.lenM < b.lenM
	}
	return a.idx < b.idx
}
func (h routeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *routeHeap) Push(x interface{}) { *h = append(*h, x.(routeItem)) }
func (h *routeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// routeLocked runs deterministic Dijkstra on the audibility graph
// from node index src to dst. Ties break by (cost, hop count, total
// geometric length, node index), so the chosen path is a pure
// function of geometry and seeds — independent of map iteration
// order, worker counts and wall-clock interleaving. Extraction uses a
// lazy-deletion heap keyed by that same order, and relaxation scans
// only the audibility adjacency (the spatial grid's neighbor rows),
// so a build costs O(E log V) on the neighbor graph instead of the
// former O(V^2) scan — the nodes it settles, and the paths it
// returns, are identical. Callers hold n.mu.
func (n *Network) routeLocked(src, dst int) ([]int, error) {
	key := [2]int{src, dst}
	if r, ok := n.routeCache[key]; ok {
		return r.path, nil
	}
	const unreached = math.MaxFloat64
	nn := len(n.order)
	cost := make([]float64, nn)
	hops := make([]int, nn)
	lenM := make([]float64, nn)
	prev := make([]int, nn)
	done := make([]bool, nn)
	for i := range cost {
		cost[i] = unreached
		prev[i] = -1
	}
	cost[src], hops[src], lenM[src] = 0, 0, 0

	better := func(c float64, h int, l float64, at int, than int) bool {
		switch {
		case c != cost[than]:
			return c < cost[than]
		case h != hops[than]:
			return h < hops[than]
		case l != lenM[than]:
			return l < lenM[than]
		}
		return at < prev[than]
	}
	pq := &routeHeap{{cost: 0, hops: 0, lenM: 0, idx: src}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(routeItem)
		u := it.idx
		if done[u] {
			// A better label was pushed after this entry and, having a
			// smaller key, already settled the node (lazy deletion).
			continue
		}
		if u == dst {
			break
		}
		done[u] = true
		var werr error
		n.forEachAudibleLocked(u, func(v int) {
			// A departed node's radio is gone: no path may relay through
			// it (Leave keeps it in the index structures — the water
			// doesn't move — but the route layer must not).
			if done[v] || n.order[v].departed || werr != nil {
				return
			}
			w, err := n.hopWeightLocked(u, v)
			if err != nil {
				werr = err
				return
			}
			c := cost[u] + w
			h := hops[u] + 1
			l := lenM[u] + n.order[u].pos.DistanceTo(n.order[v].pos)
			if c < cost[v] || (c == cost[v] && better(c, h, l, u, v)) {
				cost[v], hops[v], lenM[v], prev[v] = c, h, l, u
				heap.Push(pq, routeItem{cost: c, hops: h, lenM: l, idx: v})
			}
		})
		if werr != nil {
			return nil, werr
		}
	}
	if cost[dst] == unreached {
		return nil, fmt.Errorf("%w: %d -> %d (carrier-sense range %g m)",
			ErrNoRoute, n.order[src].id, n.order[dst].id, n.cfg.csRangeM)
	}
	var path []int
	for at := dst; at != -1; at = prev[at] {
		path = append(path, at)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if n.routeCache == nil {
		n.routeCache = make(map[[2]int]cachedRoute)
	}
	n.routeCache[key] = cachedRoute{path: path, cost: cost[dst]}
	return path, nil
}

// distFromLocked runs a cost-only Dijkstra from node index src over
// the audibility adjacency, returning the policy distance to every
// node (math.MaxFloat64 where unreachable). Both policies' hop
// weights are symmetric, so the result reads as distance either to or
// from src. Callers hold n.mu.
func (n *Network) distFromLocked(src int) ([]float64, error) {
	const unreached = math.MaxFloat64
	dist := make([]float64, len(n.order))
	done := make([]bool, len(n.order))
	for i := range dist {
		dist[i] = unreached
	}
	dist[src] = 0
	pq := &routeHeap{{idx: src}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(routeItem)
		u := it.idx
		if done[u] {
			continue
		}
		done[u] = true
		var werr error
		n.forEachAudibleLocked(u, func(v int) {
			// Departed nodes relay nothing (see routeLocked).
			if done[v] || n.order[v].departed || werr != nil {
				return
			}
			w, err := n.hopWeightLocked(u, v)
			if err != nil {
				werr = err
				return
			}
			if c := dist[u] + w; c < dist[v] {
				dist[v] = c
				heap.Push(pq, routeItem{cost: c, idx: v})
			}
		})
		if werr != nil {
			return nil, werr
		}
	}
	return dist, nil
}

// noteJoinLocked invalidates exactly the cached routes the node that
// just joined (index newIdx) could have changed. A former
// implementation dropped the route *and* ETX caches wholesale on
// every Join — quadratically wasteful during a large build-out, and
// wrong about the ETX cache, whose pair weights depend only on the
// two endpoints' geometry and never go stale.
//
// A cached (a, b) entry was optimal on the old graph. Any strictly
// better path on the new graph must pass through the new node (a path
// avoiding it existed before and could not beat the optimum), and
// such a path costs at least d[a] + d[b], the new node's policy
// distances to the endpoints — both policies' weights are symmetric.
// So an entry is stale only if d[a] + d[b] <= its cached cost; the
// equality case guards the deterministic tie-break, which an
// equal-cost path through the new node can win on hops, length or
// index. One scalar Dijkstra rooted at the new node prices every
// cached entry. If edge weights cannot be computed (a link refuses to
// build), the route cache is dropped wholesale — correct, merely
// slower. Callers hold n.mu.
func (n *Network) noteJoinLocked(newIdx int) {
	if len(n.routeCache) == 0 {
		return
	}
	joinable := false
	n.forEachAudibleLocked(newIdx, func(int) { joinable = true })
	if !joinable {
		// An isolated node adds no edges; every cached path stands.
		return
	}
	dist, err := n.distFromLocked(newIdx)
	if err != nil {
		n.routeCache = nil
		return
	}
	//aqualint:order-independent each entry is tested against the joiner's distance vector and deleted or kept independently; the surviving set is the same whatever order the entries are visited in
	for key, r := range n.routeCache {
		if dist[key[0]]+dist[key[1]] <= r.cost {
			delete(n.routeCache, key)
		}
	}
}

// noteMoveLocked invalidates what a position epoch of node idx made
// stale, without touching the rest of the caches:
//
//   - every ETX pair weight touching the mover (pair weights are a
//     function of the two endpoints' positions — the mover's changed);
//   - every cached route that *walks through* the mover (its hop
//     geometry changed, and hops into or out of it may no longer be
//     audible);
//   - and, by the same symmetric-weight pricing argument as
//     noteJoinLocked, every surviving entry the mover's new position
//     could beat: a strictly better path on the new graph must pass
//     through the mover, costing at least d[a] + d[b] from its new
//     position (<= also invalidates, guarding the tie-break).
//
// The pricing Dijkstra runs over the already-patched adjacency and
// lazily re-probes the mover's ETX weights at the new position through
// hopWeightLocked — the per-epoch ETX re-probe. Entries avoiding the
// mover and priced safe kept their exact old cost: no other pair's
// geometry changed. Callers hold n.mu, after patchAdjacencyLocked.
func (n *Network) noteMoveLocked(idx int) {
	//aqualint:order-independent each key is tested against the mover and deleted independently; the surviving cache is the same whatever order the entries are visited in
	for key := range n.etxCache {
		if key[0] == idx || key[1] == idx {
			delete(n.etxCache, key)
		}
	}
	if len(n.routeCache) == 0 {
		return
	}
	//aqualint:order-independent each entry's path is tested for the mover and deleted independently; the surviving set is the same whatever order the entries are visited in
	for key, r := range n.routeCache {
		if pathContains(r.path, idx) {
			delete(n.routeCache, key)
		}
	}
	if len(n.routeCache) == 0 {
		return
	}
	reachable := false
	n.forEachAudibleLocked(idx, func(int) { reachable = true })
	if !reachable {
		// The mover is isolated at its new position: it offers no new
		// edges, and every path through it is already gone.
		return
	}
	dist, err := n.distFromLocked(idx)
	if err != nil {
		n.routeCache = nil
		return
	}
	//aqualint:order-independent each entry is tested against the mover's distance vector and deleted or kept independently; the surviving set is the same whatever order the entries are visited in
	for key, r := range n.routeCache {
		if dist[key[0]]+dist[key[1]] <= r.cost {
			delete(n.routeCache, key)
		}
	}
}

// noteLeaveLocked invalidates the cached routes that relay through the
// node that just departed (index idx) — the Leave-time counterpart of
// noteJoinLocked, fixing the stale-path bug where Route kept returning
// cached paths through departed radios. Only paths *through* the node
// go: a departure adds no edges, so every other cached path is still
// optimal. ETX pair weights stay — they are pure pair geometry, and
// routeLocked's departed-skip already keeps the dead node out of new
// paths. Callers hold n.mu.
func (n *Network) noteLeaveLocked(idx int) {
	//aqualint:order-independent each entry's path is tested for the departed node and deleted independently; the surviving set is the same whatever order the entries are visited in
	for key, r := range n.routeCache {
		if pathContains(r.path, idx) {
			delete(n.routeCache, key)
		}
	}
}

// pathContains reports whether the node index appears on the path.
func pathContains(path []int, idx int) bool {
	for _, p := range path {
		if p == idx {
			return true
		}
	}
	return false
}
